// tibsim_lint — CLI driver for the repo's determinism & sim-safety linter.
// Exit codes: 0 clean, 1 findings, 2 usage/IO error (CI treats 1 and 2 as
// red). See lint.hpp for the rule model and the suppression grammar.

#include <chrono>  // tibsim-lint: allow(wall-clock)
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

void printUsage(std::ostream& out) {
  out << "tibsim_lint — determinism & sim-safety static analysis for the "
         "tibsim tree\n\n"
         "usage:\n"
         "  tibsim_lint [--root DIR] [--rules id,id,...] [--jobs N]\n"
         "              [--sarif OUT] [--verbose] [--fix-suggestions] "
         "[file...]\n"
         "  tibsim_lint --list-rules\n\n"
         "With no files, walks DIR/{src,include,bench,tests,tools,examples} "
         "(DIR defaults to the\n"
         "current directory) and runs the cross-file registry-docs check "
         "against DIR/EXPERIMENTS.md.\n"
         "With explicit files, lints just those (registry-docs is skipped).\n"
         "Suppressions: // tibsim-lint: allow(rule) on or above the line, "
         "// tibsim-lint: allowfile(rule)\n"
         "anywhere in a file. --fix-suggestions prints a remediation hint "
         "under every finding.\n"
         "--jobs N lints files on N worker threads (0 = hardware "
         "concurrency; findings are\n"
         "identical for every value). --sarif OUT additionally writes a "
         "SARIF 2.1.0 document\n"
         "for code-scanning upload. --verbose reports wall-clock and "
         "thread count to stderr.\n";
}

int listRules() {
  for (const tibsim::lint::RuleInfo& rule : tibsim::lint::rules()) {
    std::cout << rule.id << "\n    " << rule.summary << "\n    why: "
              << rule.rationale << "\n";
  }
  return 0;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) try {
  std::string root = ".";
  std::string sarifPath;
  bool fixSuggestions = false;
  bool verbose = false;
  tibsim::lint::Options options;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printUsage(std::cout);
      return 0;
    }
    if (arg == "--list-rules") return listRules();
    if (arg == "--fix-suggestions") {
      fixSuggestions = true;
    } else if (arg == "--verbose") {
      verbose = true;
    } else if (arg == "--jobs") {
      if (++i >= argc) {
        std::cerr << "tibsim_lint: --jobs needs a value\n";
        return 2;
      }
      try {
        options.jobs = static_cast<std::size_t>(std::stoul(argv[i]));
      } catch (const std::exception&) {
        std::cerr << "tibsim_lint: --jobs needs a number, got '" << argv[i]
                  << "'\n";
        return 2;
      }
    } else if (arg == "--sarif") {
      if (++i >= argc) {
        std::cerr << "tibsim_lint: --sarif needs a value\n";
        return 2;
      }
      sarifPath = argv[i];
    } else if (arg == "--root") {
      if (++i >= argc) {
        std::cerr << "tibsim_lint: --root needs a value\n";
        return 2;
      }
      root = argv[i];
    } else if (arg == "--rules") {
      if (++i >= argc) {
        std::cerr << "tibsim_lint: --rules needs a value\n";
        return 2;
      }
      std::stringstream ids(argv[i]);
      std::string id;
      while (std::getline(ids, id, ','))
        if (!id.empty()) options.onlyRules.push_back(id);
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "tibsim_lint: unknown flag " << arg << "\n";
      printUsage(std::cerr);
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  // Host-side instrumentation only; findings and exit code never depend
  // on it.
  const auto started =
      std::chrono::steady_clock::now();  // tibsim-lint: allow(wall-clock)

  std::vector<tibsim::lint::Finding> findings;
  std::size_t scanned = 0;
  if (files.empty()) {
    findings = tibsim::lint::lintTree(root, options);
    namespace fs = std::filesystem;
    for (const char* dir :
         {"src", "include", "bench", "tests", "tools", "examples"}) {
      const fs::path base = fs::path(root) / dir;
      if (!fs::exists(base)) continue;
      for (const auto& entry : fs::recursive_directory_iterator(base)) {
        const std::string ext = entry.path().extension().string();
        if (entry.is_regular_file() &&
            (ext == ".cpp" || ext == ".hpp" || ext == ".h"))
          ++scanned;
      }
    }
  } else {
    for (const std::string& file : files) {
      auto local =
          tibsim::lint::lintSource(file, readFile(file), options);
      findings.insert(findings.end(), local.begin(), local.end());
      ++scanned;
    }
  }

  if (!sarifPath.empty()) {
    std::ofstream sarif(sarifPath, std::ios::binary);
    if (!sarif.good())
      throw std::runtime_error("cannot write " + sarifPath);
    sarif << tibsim::lint::formatSarif(findings);
  }

  std::cout << tibsim::lint::formatFindings(findings, fixSuggestions);
  std::cout << "tibsim_lint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << " across " << scanned
            << " file" << (scanned == 1 ? "" : "s") << " scanned\n";
  if (verbose) {
    const auto elapsed =
        std::chrono::steady_clock::now() -  // tibsim-lint: allow(wall-clock)
        started;
    std::cerr << "tibsim_lint: "
              << std::chrono::duration<double>(elapsed).count() << " s, "
              << (options.jobs == 0 ? "hardware-concurrency"
                                    : std::to_string(options.jobs))
              << " jobs\n";
  }
  return findings.empty() ? 0 : 1;
} catch (const std::exception& error) {
  std::cerr << "tibsim_lint: " << error.what() << "\n";
  return 2;
}
