#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "tibsim/common/thread_pool.hpp"

namespace tibsim::lint {

namespace {

// ---------------------------------------------------------------------------
// Source preprocessing: strip comments and literals, parse annotations
// ---------------------------------------------------------------------------

// Replace comments, string literals and character literals with spaces while
// preserving line structure, so rule patterns match code only. Handles //,
// /* */, "..." (with escapes), '...' and raw strings R"delim(...)delim".
std::string stripCommentsAndLiterals(const std::string& text) {
  std::string out = text;
  enum class State { Code, Line, Block, Str, Chr, Raw };
  State state = State::Code;
  std::string rawDelim;  // ")delim\"" terminator for raw strings
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::Code:
        if (c == '/' && next == '/') {
          state = State::Line;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::Block;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // R"delim( ... )delim"
          std::size_t open = text.find('(', i + 2);
          if (open == std::string::npos) break;  // malformed; give up
          rawDelim = ")" + text.substr(i + 2, open - i - 2) + "\"";
          for (std::size_t k = i; k <= open; ++k)
            if (text[k] != '\n') out[k] = ' ';
          i = open;
          state = State::Raw;
        } else if (c == '"') {
          state = State::Str;
          out[i] = ' ';
        } else if (c == '\'' &&
                   (i == 0 ||
                    (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                     text[i - 1] != '_'))) {
          // Skip digit separators like 1'000'000 via the preceding-char test.
          state = State::Chr;
          out[i] = ' ';
        }
        break;
      case State::Line:
        if (c == '\n')
          state = State::Code;
        else
          out[i] = ' ';
        break;
      case State::Block:
        if (c == '*' && next == '/') {
          out[i] = out[i + 1] = ' ';
          ++i;
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Str:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          out[i] = ' ';
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Chr:
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::Raw:
        if (text.compare(i, rawDelim.size(), rawDelim) == 0) {
          for (std::size_t k = 0; k < rawDelim.size(); ++k)
            if (text[i + k] != '\n') out[i + k] = ' ';
          i += rawDelim.size() - 1;
          state = State::Code;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> splitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::string::size_type pos = 0;
  while (pos <= text.size()) {
    const auto nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      lines.push_back(text.substr(pos));
      break;
    }
    lines.push_back(text.substr(pos, nl - pos));
    pos = nl + 1;
  }
  return lines;
}

bool isBlank(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

/// Everything a source-level rule checker needs about one file.
struct FileContext {
  std::string path;  ///< normalised with forward slashes
  bool isHeader = false;
  bool isSimPath = false;  ///< code that runs inside fiber process bodies
  std::vector<std::string> raw;   ///< original lines
  std::vector<std::string> code;  ///< comment/string-stripped lines
  std::vector<std::set<std::string>> lineAllows;  ///< per-line suppressions
  std::set<std::string> fileAllows;               ///< allowfile suppressions
};

// Parse "tibsim-lint: allow(a, b) allowfile(c)" directives out of one raw
// line into ctx. A standalone annotation (no code left after stripping)
// also applies to the following line.
void parseAnnotations(FileContext& ctx, std::size_t lineIdx) {
  const std::string& line = ctx.raw[lineIdx];
  const auto marker = line.find("tibsim-lint:");
  if (marker == std::string::npos) return;
  static const std::regex kDirective("(allowfile|allow)\\s*\\(([^)]*)\\)");
  const std::string tail = line.substr(marker);
  const bool standalone = isBlank(ctx.code[lineIdx]);
  for (std::sregex_iterator it(tail.begin(), tail.end(), kDirective), end;
       it != end; ++it) {
    const bool fileScope = (*it)[1].str() == "allowfile";
    std::stringstream ids((*it)[2].str());
    std::string id;
    while (std::getline(ids, id, ',')) {
      id.erase(std::remove_if(id.begin(), id.end(),
                              [](unsigned char c) {
                                return std::isspace(c) != 0;
                              }),
               id.end());
      if (id.empty()) continue;
      if (fileScope) {
        ctx.fileAllows.insert(id);
      } else {
        ctx.lineAllows[lineIdx].insert(id);
        if (standalone && lineIdx + 1 < ctx.lineAllows.size())
          ctx.lineAllows[lineIdx + 1].insert(id);
      }
    }
  }
}

std::string normalisePath(std::string path) {
  std::replace(path.begin(), path.end(), '\\', '/');
  while (path.rfind("./", 0) == 0) path.erase(0, 2);
  return path;
}

bool pathContains(const std::string& path, const char* needle) {
  return path.find(needle) != std::string::npos;
}

FileContext makeContext(const std::string& path, const std::string& content) {
  FileContext ctx;
  ctx.path = normalisePath(path);
  ctx.isHeader = ctx.path.size() >= 4 &&
                 (ctx.path.rfind(".hpp") == ctx.path.size() - 4 ||
                  ctx.path.rfind(".h") == ctx.path.size() - 2);
  // Sim paths: everything that executes inside fiber-run rank/process
  // bodies — the engine, simMPI, the network models they drive, the MPI
  // applications, and the observability layer they record into (trace
  // sinks, link telemetry, critical-path state all mutate from inside the
  // event loop). cluster/ and core/ orchestrate from the host thread;
  // that includes core/result_cache (host filesystem I/O — getpid temp
  // suffixes, directory scans — whose determinism obligation is only that
  // replayed artefact bytes match a fresh run) and the campaign driver's
  // worker-process spawning. The everywhere rules (wall-clock,
  // random-source, unordered-iter, pointer-key) still apply to them.
  for (const char* dir :
       {"src/sim/", "src/mpi/", "src/apps/", "src/net/", "src/obs/",
        "include/tibsim/sim/", "include/tibsim/mpi/", "include/tibsim/apps/",
        "include/tibsim/net/", "include/tibsim/obs/"}) {
    if (pathContains(ctx.path, dir)) {
      ctx.isSimPath = true;
      break;
    }
  }
  ctx.raw = splitLines(content);
  ctx.code = splitLines(stripCommentsAndLiterals(content));
  ctx.lineAllows.resize(ctx.raw.size());
  for (std::size_t i = 0; i < ctx.raw.size(); ++i) parseAnnotations(ctx, i);
  return ctx;
}

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

struct Rule {
  const char* id;
  const char* summary;
  const char* rationale;
};

void emit(const FileContext& ctx, std::size_t lineIdx, const Rule& rule,
          std::string message, std::string suggestion,
          std::vector<Finding>& out) {
  if (ctx.fileAllows.count(rule.id) != 0) return;
  if (ctx.lineAllows[lineIdx].count(rule.id) != 0) return;
  out.push_back(Finding{ctx.path, static_cast<int>(lineIdx) + 1, rule.id,
                        std::move(message), std::move(suggestion)});
}

void checkWallClock(const FileContext& ctx, const Rule& rule,
                    std::vector<Finding>& out) {
  // Argless time() would also match innocent `double time() const`
  // accessors, so the libc form is matched only with its argument.
  static const std::regex kClock(
      "steady_clock|system_clock|high_resolution_clock|gettimeofday|"
      "clock_gettime|\\btime\\s*\\(\\s*(?:0|nullptr|NULL)\\s*\\)|"
      "std::clock\\b");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (!std::regex_search(ctx.code[i], kClock)) continue;
    emit(ctx, i, rule,
         "wall-clock source in simulation code breaks byte-identical "
         "reruns; simulated time must come from Simulation::now()",
         "use simulated time, or mark a host-side measurement that is "
         "never serialised with // tibsim-lint: allow(wall-clock)",
         out);
  }
}

void checkRandomSource(const FileContext& ctx, const Rule& rule,
                       std::vector<Finding>& out) {
  static const std::regex kRandom(
      "random_device|\\brand\\s*\\(\\s*\\)|\\bsrand\\s*\\(|\\bdrand48\\b|"
      "\\blrand48\\b|\\bmrand48\\b");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (!std::regex_search(ctx.code[i], kRandom)) continue;
    emit(ctx, i, rule,
         "nondeterministic random source; all randomness must flow from "
         "the campaign seed",
         "use common/rng.hpp seeded from ExperimentContext::rng()", out);
  }
}

void checkUnorderedIteration(const FileContext& ctx, const Rule& rule,
                             std::vector<Finding>& out) {
  // Pass 1: names declared (variables or returning functions) with an
  // unordered container type in this file. Heuristic: the last identifier
  // followed by ; = { or ( on a line that mentions the type.
  static const std::regex kId("([A-Za-z_]\\w*)\\s*[;={(]");
  std::set<std::string> names;
  for (const std::string& line : ctx.code) {
    if (line.find("unordered_map") == std::string::npos &&
        line.find("unordered_set") == std::string::npos)
      continue;
    std::string last;
    for (std::sregex_iterator it(line.begin(), line.end(), kId), end;
         it != end; ++it)
      last = (*it)[1].str();
    if (!last.empty()) names.insert(last);
  }
  if (names.empty()) return;
  // Pass 2: iteration over any of those names.
  static const std::regex kRangeFor("for\\s*\\(.*:");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    for (const std::string& name : names) {
      const std::regex kName("\\b" + name + "\\b");
      const std::regex kBeginEnd("\\b" + name +
                                 "\\s*\\.\\s*c?r?(?:begin|end)\\s*\\(");
      const bool iterates =
          (std::regex_search(line, kRangeFor) &&
           std::regex_search(line, kName)) ||
          std::regex_search(line, kBeginEnd);
      if (!iterates) continue;
      emit(ctx, i, rule,
           "iteration over unordered container '" + name +
               "' has hash-order traversal; any result emission or trace "
               "export fed from it is nondeterministic",
           "iterate a sorted key vector, or switch '" + name +
               "' to std::map / a sorted std::vector",
           out);
      break;  // one finding per line is enough
    }
  }
}

void checkPointerKeyedContainer(const FileContext& ctx, const Rule& rule,
                                std::vector<Finding>& out) {
  static const std::regex kPtrKey(
      "\\b(?:std::)?(?:unordered_)?(?:multi)?(?:map|set)\\s*<\\s*"
      "[^,<>]*?\\*");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (!std::regex_search(ctx.code[i], kPtrKey)) continue;
    emit(ctx, i, rule,
         "pointer-keyed ordered container: traversal follows allocation "
         "addresses, which differ run to run, so any serialised output "
         "keyed on it is nondeterministic",
         "key on a stable id (rank, name, sequence number) instead of the "
         "object's address",
         out);
  }
}

void checkFiberBlocking(const FileContext& ctx, const Rule& rule,
                        std::vector<Finding>& out) {
  if (!ctx.isSimPath) return;
  static const std::regex kBlocking(
      "this_thread::|\\busleep\\s*\\(|\\bnanosleep\\s*\\(|"
      "\\bsleep\\s*\\(|\\bsystem\\s*\\(");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (!std::regex_search(ctx.code[i], kBlocking)) continue;
    emit(ctx, i, rule,
         "blocking host call inside fiber-run simulation code: a fiber "
         "that blocks the host thread stalls every other rank in the "
         "world",
         "advance simulated time with Process::delay()/suspend() instead "
         "of blocking the host",
         out);
  }
}

void checkThreadLocal(const FileContext& ctx, const Rule& rule,
                      std::vector<Finding>& out) {
  if (!ctx.isSimPath) return;
  static const std::regex kTls("\\bthread_local\\b");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (!std::regex_search(ctx.code[i], kTls)) continue;
    emit(ctx, i, rule,
         "thread_local inside fiber-run simulation code: all fibers of a "
         "world share one host thread (and the thread backend uses one "
         "thread per rank), so the storage is silently shared or silently "
         "per-rank depending on backend",
         "keep per-rank state in the rank body or in MpiContext", out);
  }
}

void checkShardShared(const FileContext& ctx, const Rule& rule,
                      std::vector<Finding>& out) {
  if (!ctx.isSimPath) return;
  // The event loop and the shard scheduler implement the queue and the
  // cross-shard channel; only they may touch the raw primitives.
  const bool engineFile =
      pathContains(ctx.path, "src/sim/simulation.cpp") ||
      pathContains(ctx.path, "src/sim/shard_scheduler.cpp");
  // Raw event-queue pushes bypass the canonical (time, ordinal) keying that
  // keeps shard merges byte-identical to the single-queue schedule.
  static const std::regex kQueuePush(
      "\\bqueue_\\s*\\.\\s*push\\s*\\(|\\bEventQueue::push\\b|"
      "(?:\\.|->)\\s*scheduleChannel\\s*\\(");
  // Function-local mutable statics are shared by every shard once the gang
  // runs windows on multiple host threads. Heuristic: a `static` followed
  // by a declarator that reaches `=` or `;` without an intervening paren
  // (so function declarations and brace-init-with-call escape; const and
  // constexpr statics are immutable and fine).
  static const std::regex kMutableStatic(
      "\\bstatic\\s+(?!const\\b|constexpr\\b)[^=;()]*[=;]");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (!engineFile && std::regex_search(ctx.code[i], kQueuePush)) {
      emit(ctx, i, rule,
           "direct event-queue access from shardable simulation code: "
           "events pushed outside the engine bypass the canonical "
           "(time, ordinal) keying and the cross-shard channel replay, so "
           "sharded runs diverge from the single-queue schedule",
           "route cross-shard work through ShardScheduler::channelPush "
           "(or Simulation::scheduleAt within a shard)",
           out);
    }
    if (std::regex_search(ctx.code[i], kMutableStatic)) {
      emit(ctx, i, rule,
           "mutable static in shardable simulation code: shard gang "
           "threads run windows concurrently, so function-local static "
           "state is shared across shards and races (or orders "
           "nondeterministically) once --sim-shards > 1 meets a "
           "multi-core host",
           "move the state into Simulation/MpiWorld members (per-shard), "
           "or annotate a mutex-guarded process-wide singleton with "
           "tibsim-lint: allow(shard-shared)",
           out);
    }
  }
}

void checkPragmaOnce(const FileContext& ctx, const Rule& rule,
                     std::vector<Finding>& out) {
  if (!ctx.isHeader) return;
  const std::size_t limit = std::min<std::size_t>(ctx.raw.size(), 5);
  for (std::size_t i = 0; i < limit; ++i) {
    if (ctx.raw[i].find("#pragma once") != std::string::npos) return;
  }
  emit(ctx, 0, rule,
       "header does not start with #pragma once (repo convention: first "
       "line)",
       "add #pragma once as the first line", out);
}

void checkUsingNamespaceHeader(const FileContext& ctx, const Rule& rule,
                               std::vector<Finding>& out) {
  if (!ctx.isHeader) return;
  static const std::regex kUsing("^\\s*using\\s+namespace\\b");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (!std::regex_search(ctx.code[i], kUsing)) continue;
    emit(ctx, i, rule,
         "using namespace in a header leaks into every includer",
         "qualify names or move the using-directive into a .cpp", out);
  }
}

void checkMpiContract(const FileContext& ctx, const Rule& rule,
                      std::vector<Finding>& out) {
  static const std::regex kRawDoubleSend("\\bi?send\\s*\\(");
  static const std::regex kSizeofDouble("sizeof\\s*\\(\\s*double\\s*\\)");
  static const std::regex kCastDouble(
      "reinterpret_cast\\s*<\\s*(?:const\\s+)?double");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    const std::string& line = ctx.code[i];
    if (std::regex_search(line, kRawDoubleSend) &&
        std::regex_search(line, kSizeofDouble)) {
      emit(ctx, i, rule,
           "raw byte-count send of doubles: recvDoubles' multiple-of-"
           "sizeof(double) contract is only checked at runtime on this "
           "path",
           "use sendDoubles(span<const double>) so the size contract "
           "holds by construction",
           out);
      continue;
    }
    if (std::regex_search(line, kCastDouble)) {
      emit(ctx, i, rule,
           "reinterpret_cast of a payload to double*: bypasses the "
           "recvDoubles size/alignment contract",
           "receive with recvDoubles(), which validates the payload size "
           "and memcpy-safes the element access",
           out);
    }
  }
}

void checkWildcardRecv(const FileContext& ctx, const Rule& rule,
                       std::vector<Finding>& out) {
  if (!ctx.isSimPath) return;
  static const std::regex kWildcard("\\bkAny(?:Source|Tag)\\b");
  for (std::size_t i = 0; i < ctx.code.size(); ++i) {
    if (!std::regex_search(ctx.code[i], kWildcard)) continue;
    emit(ctx, i, rule,
         "wildcard receive (kAnySource/kAnyTag) in simulation code: the "
         "match is deterministic only because it follows canonical mailbox "
         "delivery order, and casual wildcards make message races "
         "invisible in review",
         "prefer an explicit (source, tag) pair; a deliberate wildcard "
         "(self-scheduling masters, drain loops) is waived with "
         "// tibsim-lint: allow(wildcard-recv)",
         out);
  }
}

// ---------------------------------------------------------------------------
// Rule 12 (collective-match): lightweight statement/CFG model
// ---------------------------------------------------------------------------
//
// A brace-matched statement model over the comment/string-stripped text:
// just enough control-flow structure (if/else arms, loop bodies,
// return/continue/break edges) to compare the collective sequences
// reachable from the two arms of a branch, PARCOACH-style, without a real
// C++ front-end. The model is deliberately syntactic — rank taint and
// communicator membership are word-level heuristics over assignment
// chunks — and every deliberate asymmetry (taskfarm master/worker split,
// membership-scoped sub-communicators the heuristic cannot see) is waived
// in source with the standard annotation grammar. The runtime verifier
// (mpi/collective_verify.hpp) is the ground truth this pass is
// cross-checked against: a site the lint flags without a waiver either
// mismatches under --verify-collectives or documents why it cannot.

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when the whole word `word` starts at code[pos].
bool wordAt(const std::string& code, std::size_t pos, const char* word) {
  const std::size_t n = std::strlen(word);
  if (code.compare(pos, n, word) != 0) return false;
  if (pos > 0 && isIdentChar(code[pos - 1])) return false;
  if (pos + n < code.size() && isIdentChar(code[pos + n])) return false;
  return true;
}

std::size_t skipSpace(const std::string& code, std::size_t pos) {
  while (pos < code.size() &&
         std::isspace(static_cast<unsigned char>(code[pos])) != 0)
    ++pos;
  return pos;
}

/// One past the bracket matching code[pos] (code[pos] is '(' or '{').
std::size_t matchBracket(const std::string& code, std::size_t pos) {
  const char open = code[pos];
  const char close = open == '(' ? ')' : '}';
  int depth = 0;
  for (; pos < code.size(); ++pos) {
    if (code[pos] == open) {
      ++depth;
    } else if (code[pos] == close && --depth == 0) {
      return pos + 1;
    }
  }
  return code.size();
}

/// One past the end of the statement starting at (or after) pos: a brace
/// block, an if/else chain, a loop with its body, or a plain `...;`
/// statement. Purely bracket-driven — declarations and expressions are
/// indistinguishable, which is fine for arm-extent recovery.
std::size_t parseStatement(const std::string& code, std::size_t pos) {
  pos = skipSpace(code, pos);
  if (pos >= code.size()) return pos;
  if (code[pos] == '{') return matchBracket(code, pos);
  if (wordAt(code, pos, "if")) {
    std::size_t p = skipSpace(code, pos + 2);
    if (wordAt(code, p, "constexpr")) p = skipSpace(code, p + 9);
    if (p < code.size() && code[p] == '(') p = matchBracket(code, p);
    p = parseStatement(code, p);  // then-arm
    const std::size_t q = skipSpace(code, p);
    if (wordAt(code, q, "else")) return parseStatement(code, q + 4);
    return p;
  }
  for (const char* kw : {"for", "while", "switch"}) {
    if (wordAt(code, pos, kw)) {
      std::size_t p = skipSpace(code, pos + std::strlen(kw));
      if (p < code.size() && code[p] == '(') p = matchBracket(code, p);
      return parseStatement(code, p);
    }
  }
  if (wordAt(code, pos, "do")) {
    std::size_t p = parseStatement(code, pos + 2);  // body
    const std::size_t semi = code.find(';', p);     // trailing while(...)
    return semi == std::string::npos ? code.size() : semi + 1;
  }
  // Plain statement: to the first ';' outside brackets. A '}' at depth 0
  // means we ran off the enclosing block (malformed tail) — stop there.
  int paren = 0;
  int brace = 0;
  for (; pos < code.size(); ++pos) {
    const char c = code[pos];
    if (c == '(') {
      ++paren;
    } else if (c == ')') {
      --paren;
    } else if (c == '{') {
      ++brace;
    } else if (c == '}') {
      if (brace == 0) return pos;
      --brace;
    } else if (c == ';' && paren == 0 && brace == 0) {
      return pos + 1;
    }
  }
  return pos;
}

/// One `if (...) ... [else ...]` site with arm extents.
struct BranchSite {
  std::size_t ifPos = 0;      ///< offset of the `if` keyword
  std::size_t condBegin = 0;  ///< inside the condition parens
  std::size_t condEnd = 0;
  std::size_t thenBegin = 0;
  std::size_t thenEnd = 0;
  bool hasElse = false;
  std::size_t elseBegin = 0;
  std::size_t elseEnd = 0;
  std::size_t stmtEnd = 0;  ///< one past the whole if/else statement
};

std::vector<BranchSite> collectBranches(const std::string& code) {
  std::vector<BranchSite> sites;
  for (std::size_t i = 0; i + 1 < code.size(); ++i) {
    if (code[i] != 'i' || !wordAt(code, i, "if")) continue;
    // Skip preprocessor conditionals (#if/#ifdef survive stripping).
    std::size_t lineStart = code.rfind('\n', i);
    lineStart = lineStart == std::string::npos ? 0 : lineStart + 1;
    if (code.find('#', lineStart) < i) continue;
    std::size_t p = skipSpace(code, i + 2);
    // `if constexpr` selects one arm at compile time, identically on
    // every rank — never a divergence site.
    if (wordAt(code, p, "constexpr")) continue;
    if (p >= code.size() || code[p] != '(') continue;
    BranchSite site;
    site.ifPos = i;
    site.condBegin = p + 1;
    const std::size_t condClose = matchBracket(code, p);
    site.condEnd = condClose - 1;
    site.thenBegin = condClose;
    site.thenEnd = parseStatement(code, condClose);
    const std::size_t q = skipSpace(code, site.thenEnd);
    if (wordAt(code, q, "else")) {
      site.hasElse = true;
      site.elseBegin = q + 4;
      site.elseEnd = parseStatement(code, site.elseBegin);
      site.stmtEnd = site.elseEnd;
    } else {
      site.stmtEnd = site.thenEnd;
    }
    sites.push_back(site);
  }
  return sites;
}

bool containsTaintedWord(const std::string& text,
                         const std::set<std::string>& tainted) {
  static const std::regex kIdent("[A-Za-z_]\\w*");
  for (std::sregex_iterator it(text.begin(), text.end(), kIdent), end;
       it != end; ++it) {
    if (tainted.count(it->str()) != 0) return true;
  }
  return false;
}

/// Names holding rank-derived values: seeded by the canonical rank
/// accessors and wildcard-recv results, then propagated through
/// assignments/initialisations to a fixpoint. Chunk granularity (split on
/// ; { }) keeps the regex work linear in file size.
std::set<std::string> rankTaintedNames(const std::string& code) {
  // rank_ covers the MpiContext member; kAnySource/kAnyTag taint the
  // result of a wildcard receive (its .src is rank-dependent data).
  static const std::regex kSeedRhs(
      "\\brank\\s*\\(|\\bworldRank\\s*\\(|\\bcommRankOf\\s*\\(|"
      "\\bkAnySource\\b|\\bkAnyTag\\b|\\brank_\\b");
  static const std::regex kAssign(
      "([A-Za-z_]\\w*)\\s*(?:[+\\-*/%&|^]|<<|>>)?=(?![=])");
  std::set<std::string> tainted = {"rank", "myRank", "worldRank", "commRank"};
  // Collect (lhs, rhs) pairs once; the fixpoint then re-scans only them.
  std::vector<std::pair<std::string, std::string>> assigns;
  std::size_t chunkStart = 0;
  for (std::size_t i = 0; i <= code.size(); ++i) {
    if (i < code.size() && code[i] != ';' && code[i] != '{' && code[i] != '}')
      continue;
    const std::string chunk = code.substr(chunkStart, i - chunkStart);
    chunkStart = i + 1;
    std::smatch m;
    if (!std::regex_search(chunk, m, kAssign)) continue;
    assigns.emplace_back(
        m[1].str(),
        chunk.substr(static_cast<std::size_t>(m.position(0)) + m.length(0)));
  }
  for (int pass = 0; pass < 8; ++pass) {
    bool changed = false;
    for (const auto& [lhs, rhs] : assigns) {
      if (tainted.count(lhs) != 0) continue;
      if (std::regex_search(rhs, kSeedRhs) ||
          containsTaintedWord(rhs, tainted)) {
        tainted.insert(lhs);
        changed = true;
      }
    }
    if (!changed) break;
  }
  return tainted;
}

bool isRankDerivedCondition(const std::string& cond,
                            const std::set<std::string>& tainted) {
  static const std::regex kCondSeed(
      "\\brank\\s*\\(|\\bworldRank\\s*\\(|\\bcommRankOf\\s*\\(|"
      "\\brank_\\b");
  return std::regex_search(cond, kCondSeed) ||
         containsTaintedWord(cond, tainted);
}

/// Communicators built with rank-dependent membership — split() colours
/// using kUndefinedColor or a conditional expression. Only the ranks that
/// joined hold a live handle, so collectives on them are legitimately
/// guarded by the membership condition.
std::set<std::string> membershipScopedComms(const std::string& code) {
  std::set<std::string> comms;
  for (std::size_t pos = code.find(".split"); pos != std::string::npos;
       pos = code.find(".split", pos + 1)) {
    std::size_t p = pos + 6;
    if (p < code.size() && isIdentChar(code[p])) continue;
    p = skipSpace(code, p);
    if (p >= code.size() || code[p] != '(') continue;
    const std::size_t close = matchBracket(code, p);
    const std::string colourArgs = code.substr(p + 1, close - p - 2);
    if (colourArgs.find("kUndefinedColor") == std::string::npos &&
        colourArgs.find('?') == std::string::npos)
      continue;
    // Walk back over `name = receiver.split(...)` to the assigned name
    // (declarations span lines; the stripped text keeps the newlines).
    std::size_t r = pos;
    while (r > 0 && isIdentChar(code[r - 1])) --r;  // the receiver
    std::size_t e = r;
    while (e > 0 && std::isspace(static_cast<unsigned char>(code[e - 1])) != 0)
      --e;
    if (e == 0 || code[e - 1] != '=') continue;
    --e;
    if (e > 0 && std::strchr("=<>!+-*/%&|^", code[e - 1]) != nullptr)
      continue;  // comparison/compound operator, not an assignment
    while (e > 0 && std::isspace(static_cast<unsigned char>(code[e - 1])) != 0)
      --e;
    const std::size_t nameEnd = e;
    while (e > 0 && isIdentChar(code[e - 1])) --e;
    if (e < nameEnd) comms.insert(code.substr(e, nameEnd - e));
  }
  return comms;
}

struct CollectiveCall {
  std::size_t offset = 0;
  std::string receiver;
  std::string method;
};

/// Every `<receiver>.<collective>(` site, in source order. The alternation
/// lists longer names before their prefixes so std::regex picks the full
/// method name.
std::vector<CollectiveCall> collectCollectiveCalls(const std::string& code) {
  static const std::regex kCall(
      "([A-Za-z_]\\w*)\\s*(?:\\.|->)\\s*(ibarrier|ibcast|iallreduce|"
      "barrier|bcastBytes|pipelinedBcastBytes|bcast|reduceSum|"
      "allreduceSum|allreduceMax|allreduce|reduce|allgatherBytes|"
      "allgather|gatherBytes|gather|alltoallBytes|split|dup)\\s*\\(");
  std::vector<CollectiveCall> calls;
  for (std::sregex_iterator it(code.begin(), code.end(), kCall), end;
       it != end; ++it) {
    calls.push_back(CollectiveCall{static_cast<std::size_t>(it->position(0)),
                                   (*it)[1].str(), (*it)[2].str()});
  }
  return calls;
}

bool exitsEarly(const std::string& code, std::size_t begin, std::size_t end) {
  for (const char* kw : {"return", "continue", "break"}) {
    for (std::size_t pos = code.find(kw, begin);
         pos != std::string::npos && pos < end;
         pos = code.find(kw, pos + 1)) {
      if (wordAt(code, pos, kw)) return true;
    }
  }
  return false;
}

/// Offset of the '}' closing the block containing pos.
std::size_t enclosingBlockEnd(const std::string& code, std::size_t pos) {
  int depth = 0;
  for (; pos < code.size(); ++pos) {
    const char c = code[pos];
    if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (depth == 0) return pos;
      --depth;
    }
  }
  return code.size();
}

std::string renderCollectiveSeq(const std::vector<std::string>& seq) {
  if (seq.empty()) return "no collective";
  std::string out;
  for (const std::string& s : seq) {
    if (!out.empty()) out += " -> ";
    out += s;
  }
  return out;
}

void checkCollectiveMatch(const FileContext& ctx, const Rule& rule,
                          std::vector<Finding>& out) {
  // Join the stripped lines back into one offset-addressed string; a
  // prefix table maps offsets back to line indices for emission.
  std::string code;
  std::vector<std::size_t> lineStarts;
  lineStarts.reserve(ctx.code.size());
  for (const std::string& line : ctx.code) {
    lineStarts.push_back(code.size());
    code += line;
    code += '\n';
  }
  const std::vector<CollectiveCall> calls = collectCollectiveCalls(code);
  if (calls.empty()) return;
  const std::set<std::string> tainted = rankTaintedNames(code);
  const std::set<std::string> scoped = membershipScopedComms(code);
  const auto lineOf = [&lineStarts](std::size_t offset) {
    const auto it = std::upper_bound(lineStarts.begin(), lineStarts.end(),
                                     offset);
    return static_cast<std::size_t>(it - lineStarts.begin()) - 1;
  };
  const auto callsIn = [&calls](std::size_t begin, std::size_t end) {
    std::vector<const CollectiveCall*> seq;
    for (const CollectiveCall& call : calls)
      if (call.offset >= begin && call.offset < end) seq.push_back(&call);
    return seq;
  };
  for (const BranchSite& site : collectBranches(code)) {
    const std::string cond =
        code.substr(site.condBegin, site.condEnd - site.condBegin);
    if (!isRankDerivedCondition(cond, tainted)) continue;
    std::vector<const CollectiveCall*> thenSeq =
        callsIn(site.thenBegin, site.thenEnd);
    std::vector<const CollectiveCall*> elseSeq =
        site.hasElse ? callsIn(site.elseBegin, site.elseEnd)
                     : std::vector<const CollectiveCall*>{};
    // When exactly one arm exits early (return/continue/break), the
    // falling-through arm continues into the rest of the enclosing block:
    // its reachable collective sequence extends past the branch. This is
    // what catches `if (rank(...)) return;` skipping a later barrier.
    const bool thenExits = exitsEarly(code, site.thenBegin, site.thenEnd);
    const bool elseExits =
        site.hasElse && exitsEarly(code, site.elseBegin, site.elseEnd);
    if (thenExits != elseExits) {
      const std::vector<const CollectiveCall*> rest =
          callsIn(site.stmtEnd, enclosingBlockEnd(code, site.stmtEnd));
      std::vector<const CollectiveCall*>& fallthrough =
          thenExits ? elseSeq : thenSeq;
      fallthrough.insert(fallthrough.end(), rest.begin(), rest.end());
    }
    std::set<std::string> receivers;
    for (const CollectiveCall* call : thenSeq) receivers.insert(call->receiver);
    for (const CollectiveCall* call : elseSeq) receivers.insert(call->receiver);
    for (const std::string& receiver : receivers) {
      if (scoped.count(receiver) != 0) continue;  // membership-scoped comm
      std::vector<std::string> thenMethods;
      std::vector<std::string> elseMethods;
      for (const CollectiveCall* call : thenSeq)
        if (call->receiver == receiver) thenMethods.push_back(call->method);
      for (const CollectiveCall* call : elseSeq)
        if (call->receiver == receiver) elseMethods.push_back(call->method);
      if (thenMethods == elseMethods) continue;
      emit(ctx, lineOf(site.ifPos), rule,
           "collective sequence on '" + receiver +
               "' diverges across a rank-derived branch: one arm reaches [" +
               renderCollectiveSeq(thenMethods) + "], the other [" +
               renderCollectiveSeq(elseMethods) +
               "] — ranks taking different arms enter different collectives "
               "on the same communicator",
           "hoist the collective out of the branch so every member runs it, "
           "scope it to a membership communicator (split() with "
           "kUndefinedColor for non-members), or waive a deliberate "
           "asymmetry with // tibsim-lint: allow(collective-match)",
           out);
    }
  }
}

// Order is the report order; registry-docs is appended by rules() (it is a
// tree-level rule with no per-file checker).
constexpr std::array<Rule, 12> kSourceRules = {{
    {"wall-clock",
     "no wall-clock reads (steady_clock/system_clock/time()) outside "
     "annotated host-side measurement",
     "campaign artefacts must be byte-identical across reruns, --jobs and "
     "backends; host clocks differ every run"},
    {"random-source",
     "no rand()/std::random_device/drand48 anywhere",
     "all stochastic components must seed from the campaign seed via "
     "common/rng.hpp, or reruns diverge"},
    {"unordered-iter",
     "no iteration over unordered_map/unordered_set",
     "hash-order traversal feeding JSON/CSV/trace emitters makes output "
     "ordering implementation-defined"},
    {"pointer-key",
     "no pointer-keyed map/set",
     "address-based ordering differs run to run, so serialised output "
     "derived from it is nondeterministic"},
    {"fiber-block",
     "no blocking host calls (sleep/this_thread/system) in sim paths",
     "a fiber that blocks the host thread stalls every rank of the "
     "world; simulated waiting goes through Process::delay/suspend"},
    {"thread-local",
     "no thread_local in sim paths",
     "fiber and thread backends map ranks to host threads differently, "
     "so thread_local state silently changes meaning between backends"},
    {"pragma-once",
     "headers start with #pragma once",
     "double inclusion breaks the single-library build; include guards "
     "are not used in this repo"},
    {"using-namespace",
     "no using namespace in headers",
     "a header-level using-directive leaks into every includer and can "
     "change overload resolution at a distance"},
    {"mpi-contract",
     "double payloads go through sendDoubles/recvDoubles",
     "the helpers enforce the multiple-of-sizeof(double) payload "
     "contract; raw send()/reinterpret_cast paths only fail at runtime"},
    {"shard-shared",
     "no raw EventQueue pushes or mutable statics in shardable sim code "
     "outside the engine/channel API",
     "per-subtree shards replay cross-shard effects through the channel "
     "to stay byte-identical; raw pushes and cross-shard mutable state "
     "break the canonical order (and race on multi-core gangs)"},
    {"wildcard-recv",
     "wildcard receives (kAnySource/kAnyTag) in sim paths carry an "
     "explicit waiver",
     "a wildcard match is only deterministic through the engine's "
     "canonical delivery order; each use must be a reviewed, deliberate "
     "choice — unannotated wildcards hide message races"},
    {"collective-match",
     "collectives control-dependent on a rank-derived condition run the "
     "same sequence on both arms of the branch",
     "every rank of a communicator must enter the same collective "
     "sequence; a branch on rank()/wildcard-recv data whose arms reach "
     "different collectives deadlocks (or mis-pairs) at scale — the "
     "static mirror of the --verify-collectives runtime check"},
}};

constexpr std::array<void (*)(const FileContext&, const Rule&,
                              std::vector<Finding>&),
                     12>
    kCheckers = {{checkWallClock, checkRandomSource, checkUnorderedIteration,
                  checkPointerKeyedContainer, checkFiberBlocking,
                  checkThreadLocal, checkPragmaOnce,
                  checkUsingNamespaceHeader, checkMpiContract,
                  checkShardShared, checkWildcardRecv,
                  checkCollectiveMatch}};

bool ruleSelected(const Options& options, const char* id) {
  if (options.onlyRules.empty()) return true;
  return std::find(options.onlyRules.begin(), options.onlyRules.end(), id) !=
         options.onlyRules.end();
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string readFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good())
    throw std::runtime_error("tibsim-lint: cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::vector<RuleInfo> rules() {
  std::vector<RuleInfo> out;
  out.reserve(kSourceRules.size() + 1);
  for (const Rule& rule : kSourceRules)
    out.push_back(RuleInfo{rule.id, rule.summary, rule.rationale});
  out.push_back(RuleInfo{
      "registry-docs",
      "every ExperimentRegistry entry has an EXPERIMENTS.md section",
      "an experiment nobody can find in the docs is an experiment whose "
      "numbers nobody re-checks against the paper"});
  return out;
}

std::vector<Finding> lintSource(const std::string& path,
                                const std::string& content,
                                const Options& options) {
  const FileContext ctx = makeContext(path, content);
  std::vector<Finding> findings;
  for (std::size_t r = 0; r < kSourceRules.size(); ++r) {
    if (!ruleSelected(options, kSourceRules[r].id)) continue;
    kCheckers[r](ctx, kSourceRules[r], findings);
  }
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

std::vector<Finding> lintRegistryDocs(const std::string& root,
                                      const Options& options) {
  std::vector<Finding> findings;
  if (!ruleSelected(options, "registry-docs")) return findings;
  namespace fs = std::filesystem;
  const fs::path docPath = fs::path(root) / "EXPERIMENTS.md";
  const fs::path coreDir = fs::path(root) / "src" / "core";
  if (!fs::exists(docPath) || !fs::exists(coreDir)) return findings;
  const std::string doc = readFile(docPath);

  // A registered name counts as documented when EXPERIMENTS.md mentions it
  // backticked — either exactly (`campaign`) or as the prefix of a compat
  // binary name (`fig01_top500_transitions` documents fig01).
  const auto documented = [&doc](const std::string& name) {
    std::string::size_type pos = 0;
    const std::string needle = "`" + name;
    while ((pos = doc.find(needle, pos)) != std::string::npos) {
      const std::size_t after = pos + needle.size();
      if (after < doc.size() && (doc[after] == '`' || doc[after] == '_'))
        return true;
      pos += 1;
    }
    return false;
  };

  std::vector<fs::path> sources;
  for (const auto& entry : fs::directory_iterator(coreDir))
    if (entry.is_regular_file() && entry.path().extension() == ".cpp")
      sources.push_back(entry.path());
  std::sort(sources.begin(), sources.end());

  static const std::string kMarker = "make_unique<LambdaExperiment>(";
  for (const fs::path& source : sources) {
    const std::string text = readFile(source);
    std::string::size_type pos = 0;
    while ((pos = text.find(kMarker, pos)) != std::string::npos) {
      const auto open = text.find('"', pos);
      pos += kMarker.size();
      if (open == std::string::npos) break;
      const auto close = text.find('"', open + 1);
      if (close == std::string::npos) break;
      const std::string name = text.substr(open + 1, close - open - 1);
      if (name.empty() || documented(name)) continue;
      const int line = static_cast<int>(
                           std::count(text.begin(), text.begin() +
                                          static_cast<std::ptrdiff_t>(open),
                                      '\n')) +
                       1;
      findings.push_back(Finding{
          normalisePath(fs::relative(source, root).string()), line,
          "registry-docs",
          "experiment '" + name +
              "' is registered but EXPERIMENTS.md has no `" + name +
              "` section",
          "document the reproduced artefact (inputs, headline numbers, "
          "paper deltas) in EXPERIMENTS.md under `" +
              name + "`"});
    }
  }
  return findings;
}

std::vector<Finding> lintTree(const std::string& root,
                              const Options& options) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const char* dir :
       {"src", "include", "bench", "tests", "tools", "examples"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string rel =
          normalisePath(fs::relative(entry.path(), root).string());
      // Fixtures are deliberate violations; build trees are not ours.
      if (rel.find("lint_fixtures") != std::string::npos) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  // Lint files in parallel: each file's findings land in its own slot, so
  // the merged order is a pure function of the sorted file list and the
  // final stable_sort — identical for every job count.
  std::vector<std::vector<Finding>> perFile(files.size());
  TaskPool pool(options.jobs);
  pool.parallelFor(files.size(), [&](std::size_t i) {
    const std::string rel =
        normalisePath(fs::relative(files[i], root).string());
    perFile[i] = lintSource(rel, readFile(files[i]), options);
  });
  std::vector<Finding> findings;
  for (std::vector<Finding>& local : perFile) {
    findings.insert(findings.end(),
                    std::make_move_iterator(local.begin()),
                    std::make_move_iterator(local.end()));
  }
  std::vector<Finding> docs = lintRegistryDocs(root, options);
  findings.insert(findings.end(), std::make_move_iterator(docs.begin()),
                  std::make_move_iterator(docs.end()));
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     return a.line < b.line;
                   });
  return findings;
}

std::string formatFindings(const std::vector<Finding>& findings,
                           bool fixSuggestions) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ':' << f.line << ": [" << f.rule << "] " << f.message
        << '\n';
    if (fixSuggestions && !f.suggestion.empty())
      out << "    suggestion: " << f.suggestion << '\n';
  }
  return out.str();
}

std::string formatSarif(const std::vector<Finding>& findings) {
  // Minimal SARIF 2.1.0: one run, the full rule table, one result per
  // finding. Hand-rolled emission (the lint library keeps zero deps);
  // deterministic because findings arrive sorted and the rule table has a
  // fixed order.
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n    {\n"
      << "      \"tool\": {\n        \"driver\": {\n"
      << "          \"name\": \"tibsim-lint\",\n"
      << "          \"rules\": [\n";
  const std::vector<RuleInfo> table = rules();
  for (std::size_t i = 0; i < table.size(); ++i) {
    out << "            {\"id\": \"" << jsonEscape(table[i].id)
        << "\", \"shortDescription\": {\"text\": \""
        << jsonEscape(table[i].summary)
        << "\"}, \"fullDescription\": {\"text\": \""
        << jsonEscape(table[i].rationale) << "\"}}"
        << (i + 1 < table.size() ? "," : "") << '\n';
  }
  out << "          ]\n        }\n      },\n"
      << "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << "        {\"ruleId\": \"" << jsonEscape(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << jsonEscape(f.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << jsonEscape(f.file) << "\"}, \"region\": {\"startLine\": " << f.line
        << "}}}]}" << (i + 1 < findings.size() ? "," : "") << '\n';
  }
  out << "      ]\n    }\n  ]\n}\n";
  return out.str();
}

}  // namespace tibsim::lint
