#pragma once
// tibsim-lint — repo-specific determinism & sim-safety static analysis.
//
// The campaign's headline guarantees (byte-identical reruns across --jobs,
// backend-identical JSON between fiber and thread execution contexts,
// platform tables faithful to the paper's Table 1) are end-to-end properties
// that CI reruns catch late and point nowhere near the offending line. This
// linter enforces the source-level invariants that make those guarantees
// hold, token/line-based with no libclang dependency, so it builds as part
// of the normal CMake tree and runs in milliseconds over the whole repo.
//
// Rules are table-driven (see rules() / sourceRules() in lint.cpp) and every
// finding can be suppressed with an explicit, auditable annotation:
//
//   code();            // tibsim-lint: allow(wall-clock)       same line
//   // tibsim-lint: allow(wall-clock)                          next line
//   code();
//   // tibsim-lint: allowfile(wall-clock)                      whole file
//
// Multiple rule ids separate with commas: allow(wall-clock, random-source).
// Matching runs on comment- and string-stripped text, so rule patterns in
// string literals (including this linter's own sources) never self-trigger.

#include <string>
#include <vector>

namespace tibsim::lint {

/// One diagnostic. `line` is 1-based; `file` is the path as given (relative
/// to the tree root when produced by lintTree).
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string suggestion;  ///< printed by --fix-suggestions
};

/// Rule metadata for --list-rules and the docs. The checker implementations
/// live in the table in lint.cpp next to this metadata.
struct RuleInfo {
  std::string id;
  std::string summary;
  std::string rationale;
};

/// Options shared by lintSource/lintTree.
struct Options {
  /// When non-empty, only these rule ids run.
  std::vector<std::string> onlyRules;
  /// Worker threads for the tree walk (0 = hardware concurrency). Findings
  /// are slot-merged per file then sorted, so output is identical for
  /// every value.
  std::size_t jobs = 0;
};

/// Every implemented rule, in canonical (report) order. At least eight.
std::vector<RuleInfo> rules();

/// Lint one translation unit from memory. `path` drives the path-scoped
/// rules (header hygiene for *.hpp, sim-path rules for src/{sim,mpi,apps,
/// net} and their include/ mirrors), so tests can lint fixture content under
/// any virtual path.
std::vector<Finding> lintSource(const std::string& path,
                                const std::string& content,
                                const Options& options = {});

/// Cross-file rule: every ExperimentRegistry registration in root/src/core
/// must have a matching backticked mention in root/EXPERIMENTS.md (the exact
/// name, or a compat-binary name it prefixes, e.g. fig01 ->
/// `fig01_top500_transitions`).
std::vector<Finding> lintRegistryDocs(const std::string& root,
                                      const Options& options = {});

/// Walk root/{src,include,bench,tests,tools,examples}, lint every
/// .cpp/.hpp/.h (tests/lint_fixtures is excluded — it holds deliberate
/// violations), then run the cross-file registry-docs rule. Findings are
/// sorted by file then line, so output is deterministic.
std::vector<Finding> lintTree(const std::string& root,
                              const Options& options = {});

/// Render findings in "file:line: [rule] message" form, one per line, with
/// an indented "suggestion:" line each when fixSuggestions is set.
std::string formatFindings(const std::vector<Finding>& findings,
                           bool fixSuggestions);

/// Render findings as a SARIF 2.1.0 document (one run, the full rule table
/// under tool.driver.rules, one result per finding) for code-scanning
/// upload. Deterministic: same findings, same bytes.
std::string formatSarif(const std::vector<Finding>& findings);

}  // namespace tibsim::lint
