#pragma once
// Observability counters for the discrete-event engine.
//
// Every Simulation tracks how much machinery it turned over: events
// dispatched, process context switches, peak concurrently-live processes,
// the event-queue high-water mark, and how much host wall-clock each
// simulated second cost. The counters are backend-independent (fiber and
// thread backends dispatch the identical event sequence), so everything
// except `hostSeconds` is deterministic and safe to serialise into campaign
// artefacts. `hostSeconds` is a host measurement and must stay out of the
// byte-identical JSON; it only feeds the human-facing run summary.

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace tibsim::sim {

struct EngineStats {
  std::uint64_t eventsDispatched = 0;
  std::uint64_t contextSwitches = 0;
  std::uint64_t processesSpawned = 0;
  std::size_t peakLiveProcesses = 0;
  std::size_t queueHighWater = 0;
  double simSeconds = 0.0;
  double hostSeconds = 0.0;  // wall-clock; nondeterministic, never serialised
  /// Largest per-process stack configured on the fiber backend (0 on the
  /// thread backend, whose stacks belong to the OS).
  std::size_t fiberStackBytes = 0;
  /// Deepest fiber stack use observed across all finished processes
  /// (pattern-scan high-water mark). Depends on compiler frame layout, so —
  /// like hostSeconds — it feeds the run summary, never the serialised
  /// artefacts.
  std::size_t stackHighWaterBytes = 0;
  // Sharded-engine counters (1 / 0 / 0 on the single-queue engine). Window
  // counts depend on how work happened to spread over shards, so — like
  // hostSeconds — they feed the run summary only, never the serialised
  // artefacts.
  std::size_t shardCount = 1;       ///< logical-process shards in the run
  std::uint64_t shardWindows = 0;   ///< conservative windows executed
  std::uint64_t shardParallelWindows = 0;  ///< windows with >1 active shard
  // Shard-gang profiling (zero on the single-queue engine): what the
  // window barriers actually cost and how much merge work they did, so
  // --sim-shards tuning is measurable. Barrier host time is wall-clock and
  // stays out of serialised artefacts, like hostSeconds.
  std::uint64_t shardBarrierCalls = 0;  ///< barriers that ran a merge
  std::uint64_t shardBarrierSkips = 0;  ///< barriers batched away (no merge)
  std::uint64_t shardMergeRecords = 0;  ///< dispatch records merged
  double shardBarrierHostSeconds = 0.0;  ///< host time inside merges

  /// Fold another simulation's stats into this one. Order-independent
  /// (sums and maxes only) so accumulation across parallelFor cells yields
  /// the same totals for any --jobs value.
  void accumulate(const EngineStats& other) {
    eventsDispatched += other.eventsDispatched;
    contextSwitches += other.contextSwitches;
    processesSpawned += other.processesSpawned;
    peakLiveProcesses = std::max(peakLiveProcesses, other.peakLiveProcesses);
    queueHighWater = std::max(queueHighWater, other.queueHighWater);
    simSeconds += other.simSeconds;
    hostSeconds += other.hostSeconds;
    fiberStackBytes = std::max(fiberStackBytes, other.fiberStackBytes);
    stackHighWaterBytes =
        std::max(stackHighWaterBytes, other.stackHighWaterBytes);
    shardCount = std::max(shardCount, other.shardCount);
    shardWindows += other.shardWindows;
    shardParallelWindows += other.shardParallelWindows;
    shardBarrierCalls += other.shardBarrierCalls;
    shardBarrierSkips += other.shardBarrierSkips;
    shardMergeRecords += other.shardMergeRecords;
    shardBarrierHostSeconds += other.shardBarrierHostSeconds;
  }

  /// Mean events per conservative window — the lookahead-efficiency
  /// figure: higher means the shards amortise each barrier better.
  double eventsPerShardWindow() const {
    return shardWindows > 0
               ? static_cast<double>(eventsDispatched) /
                     static_cast<double>(shardWindows)
               : 0.0;
  }

  /// Host wall-clock cost per simulated second (0 when nothing simulated).
  double hostSecondsPerSimSecond() const {
    return simSeconds > 0.0 ? hostSeconds / simSeconds : 0.0;
  }
};

}  // namespace tibsim::sim
