#pragma once
// Discrete-event simulation engine.
//
// tibsim runs distributed applications (real control flow, modelled costs)
// against simulated hardware. Application code executes inside cooperative
// `Process`es: each process is backed by a dedicated OS thread, but exactly
// one thread — either the scheduler or a single process — runs at any moment,
// with the baton handed over under a per-process mutex. This gives
// deterministic, data-race-free simulation while letting application code be
// written as straight-line code (SimGrid-style) instead of event callbacks.
//
// Time is a double in seconds. Events with equal timestamps fire in the
// order they were scheduled (FIFO tie-break via a sequence number).

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

namespace tibsim::sim {

class Simulation;

/// Thrown inside a process body when the simulation is torn down while the
/// process is still blocked; unwinds the fiber stack. Never catch it.
class ProcessKilled {};

/// A cooperative simulation process. Created via Simulation::spawn; the
/// body receives a reference to its Process and may call delay()/suspend().
class Process {
 public:
  using Body = std::function<void(Process&)>;

  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Advance simulated time by dt seconds (dt >= 0). Callable only from
  /// inside this process's body.
  void delay(double dt);

  /// Block until another party calls Simulation::resume on this process.
  /// Callable only from inside this process's body.
  void suspend();

  /// Current simulated time, in seconds.
  double now() const;

  Simulation& simulation() { return sim_; }
  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool finished() const { return finished_; }
  /// True while the process is suspended waiting for an external resume.
  bool suspended() const { return suspended_; }
  /// Identifier of the current (or most recent) suspension; resumes are
  /// tagged with this so stale wake-ups cannot disturb a later suspension.
  std::uint64_t suspendId() const { return suspendSeq_; }
  /// Exception that escaped the body, if any (rethrow with std::rethrow).
  std::exception_ptr exception() const { return exception_; }

 private:
  friend class Simulation;
  Process(Simulation& sim, std::uint64_t id, std::string name, Body body);

  void start();
  void switchIn();      // scheduler -> process; blocks scheduler until yield
  void yieldToHost();   // process -> scheduler
  void kill();          // request unwind and join
  std::uint64_t beginSuspend();  // mark suspended, mint a suspension id

  Simulation& sim_;
  std::uint64_t id_;
  std::string name_;
  Body body_;

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool batonWithProcess_ = false;
  bool finished_ = false;
  std::exception_ptr exception_;
  bool killRequested_ = false;
  bool suspended_ = false;
  std::uint64_t suspendSeq_ = 0;
};

/// The event loop: a time-ordered queue of callbacks plus the set of spawned
/// processes. Not thread-safe: drive it from a single thread.
class Simulation {
 public:
  Simulation() = default;
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  double now() const { return now_; }

  /// Schedule a callback at absolute time t (>= now()).
  void scheduleAt(double t, std::function<void()> fn);

  /// Schedule a callback dt seconds from now (dt >= 0).
  void scheduleIn(double dt, std::function<void()> fn);

  /// Create a process and schedule it to start at the current time.
  Process& spawn(std::string name, Process::Body body);

  /// Wake a suspended process at time t (>= now()).
  void resumeAt(double t, Process& p);

  /// Wake a suspended process at the current time (after pending events at
  /// this timestamp that were scheduled earlier).
  void resume(Process& p);

  /// Run until the event queue drains. Returns the final simulation time.
  double run();

  /// Run until the event queue drains or time would exceed `deadline`.
  double runUntil(double deadline);

  std::size_t liveProcessCount() const;
  std::uint64_t processedEvents() const { return processedEvents_; }

 private:
  struct Event {
    double t;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  void dispatch(Event& ev);

  double now_ = 0.0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t nextProcessId_ = 0;
  std::uint64_t processedEvents_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace tibsim::sim
