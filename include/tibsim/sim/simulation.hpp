#pragma once
// Discrete-event simulation engine.
//
// tibsim runs distributed applications (real control flow, modelled costs)
// against simulated hardware. Application code executes inside cooperative
// `Process`es scheduled one-at-a-time by the event loop; the mechanics of a
// context switch live behind the pluggable ExecutionContext interface
// (user-space fibers by default, one-OS-thread-per-process as a portable
// fallback — see execution_context.hpp). Either way exactly one party — the
// scheduler or a single process — runs at any moment, giving deterministic,
// data-race-free simulation while letting application code be written as
// straight-line code (SimGrid-style) instead of event callbacks.
//
// Time is a double in seconds. Events with equal timestamps fire in the
// order they were scheduled (FIFO tie-break via a sequence number).

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tibsim/common/unique_function.hpp"
#include "tibsim/sim/engine_stats.hpp"
#include "tibsim/sim/execution_context.hpp"

namespace tibsim::sim {

class Simulation;

/// Thrown inside a process body when the simulation is torn down while the
/// process is still blocked; unwinds the fiber stack. Never catch it.
class ProcessKilled {};

/// A cooperative simulation process. Created via Simulation::spawn; the
/// body receives a reference to its Process and may call delay()/suspend().
class Process {
 public:
  using Body = std::function<void(Process&)>;

  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Advance simulated time by dt seconds (dt >= 0). Callable only from
  /// inside this process's body.
  void delay(double dt);

  /// Block until another party calls Simulation::resume on this process.
  /// Callable only from inside this process's body.
  void suspend();

  /// Current simulated time, in seconds.
  double now() const;

  Simulation& simulation() { return sim_; }
  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool finished() const { return finished_; }
  /// True while the process is suspended waiting for an external resume.
  bool suspended() const { return suspended_; }
  /// Identifier of the current (or most recent) suspension; resumes are
  /// tagged with this so stale wake-ups cannot disturb a later suspension.
  std::uint64_t suspendId() const { return suspendSeq_; }
  /// Exception that escaped the body, if any (rethrow with std::rethrow).
  std::exception_ptr exception() const { return exception_; }

 private:
  friend class Simulation;
  Process(Simulation& sim, std::uint64_t id, std::string name, Body body);

  void start(ExecBackend backend, std::size_t stackBytes);
  void switchIn();      // scheduler -> process; blocks scheduler until yield
  void yieldToHost();   // process -> scheduler
  void kill();          // request ProcessKilled unwind and run it to the end
  std::uint64_t beginSuspend();  // mark suspended, mint a suspension id

  Simulation& sim_;
  std::uint64_t id_;
  std::string name_;
  Body body_;

  std::unique_ptr<ExecutionContext> context_;
  bool finished_ = false;
  std::exception_ptr exception_;
  bool killRequested_ = false;
  bool suspended_ = false;
  std::uint64_t suspendSeq_ = 0;
};

/// The event loop: a time-ordered queue of callbacks plus the set of spawned
/// processes. Not thread-safe: drive it from a single thread.
class Simulation {
 public:
  Simulation() : Simulation(defaultExecBackend()) {}
  /// `stackBytes` sizes each process's fiber stack; 0 means the engine
  /// default (TIBSIM_FIBER_STACK_KB or 256 KiB). Thread backend ignores it.
  explicit Simulation(ExecBackend backend, std::size_t stackBytes = 0)
      : backend_(backend), stackBytes_(stackBytes) {}
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  double now() const { return now_; }

  /// Execution backend new processes are created on.
  ExecBackend backend() const { return backend_; }

  /// Configured per-process stack size (0 = engine default).
  std::size_t stackBytes() const { return stackBytes_; }

  /// Schedule a callback at absolute time t (>= now()). The callback type
  /// is move-only with 48 bytes of inline storage (UniqueFunction), so the
  /// hot-path closures — message delivery, process wake-ups — never touch
  /// the heap.
  void scheduleAt(double t, UniqueFunction fn);

  /// Schedule a callback dt seconds from now (dt >= 0).
  void scheduleIn(double dt, UniqueFunction fn);

  /// Create a process and schedule it to start at the current time.
  Process& spawn(std::string name, Process::Body body);

  /// Wake a suspended process at time t (>= now()).
  void resumeAt(double t, Process& p);

  /// Wake a suspended process at the current time (after pending events at
  /// this timestamp that were scheduled earlier).
  void resume(Process& p);

  /// Run until the event queue drains. Returns the final simulation time.
  double run();

  /// Run until the event queue drains or time would exceed `deadline`.
  double runUntil(double deadline);

  /// Pre-size the event queue (e.g. to ~4x the expected process count).
  void reserveEvents(std::size_t n) {
    queue_.reserve(n);
    closures_.reserve(n);
  }

  std::size_t liveProcessCount() const;
  std::uint64_t processedEvents() const { return stats_.eventsDispatched; }

  /// Engine observability counters accumulated so far (simSeconds = now()).
  EngineStats engineStats() const;

 private:
  friend class Process;

  /// One queued event, 32 trivially-copyable bytes: the binary-heap sift
  /// moves entries by value, so keeping closures out of the heap (and the
  /// entry POD) is what makes push/pop cheap. A process wake-up — the
  /// dominant event type, one per delay()/resume() — is encoded directly as
  /// (proc, suspendSeq tag) and never touches a closure; callback events
  /// set proc to nullptr and point `aux` at a slot in the closure slab.
  struct Event {
    double t;
    std::uint64_t seq;
    Process* proc;      ///< non-null: wake this process
    std::uint64_t aux;  ///< proc ? suspension tag : closure slab slot
  };

  /// Explicit binary min-heap over a reserved vector, ordered by (t, seq).
  /// Unlike std::priority_queue it hands out the popped element by value
  /// (no const_cast of top()) and exposes its size for high-water tracking.
  class EventQueue {
   public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }
    void reserve(std::size_t n) { heap_.reserve(n); }
    const Event& top() const { return heap_.front(); }
    void push(Event ev);
    Event pop();

   private:
    static bool before(const Event& a, const Event& b) {
      if (a.t != b.t) return a.t < b.t;
      return a.seq < b.seq;
    }
    std::vector<Event> heap_;
  };

  void dispatch(const Event& ev);
  std::uint32_t stashClosure(UniqueFunction fn);
  void noteContextSwitch() { ++stats_.contextSwitches; }
  void noteProcessFinished(Process& p);

  double now_ = 0.0;
  ExecBackend backend_;
  std::size_t stackBytes_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t nextProcessId_ = 0;
  std::size_t liveNow_ = 0;
  EngineStats stats_;
  EventQueue queue_;
  // Closure slab for callback events; slots are recycled LIFO, so a steady
  // stream of scheduleIn() calls reuses the same few slots with no
  // allocator traffic.
  std::vector<UniqueFunction> closures_;
  std::vector<std::uint32_t> freeClosureSlots_;
  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace tibsim::sim
