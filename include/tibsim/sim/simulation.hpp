#pragma once
// Discrete-event simulation engine.
//
// tibsim runs distributed applications (real control flow, modelled costs)
// against simulated hardware. Application code executes inside cooperative
// `Process`es scheduled one-at-a-time by the event loop; the mechanics of a
// context switch live behind the pluggable ExecutionContext interface
// (user-space fibers by default, one-OS-thread-per-process as a portable
// fallback — see execution_context.hpp). Either way exactly one party — the
// scheduler or a single process — runs at any moment, giving deterministic,
// data-race-free simulation while letting application code be written as
// straight-line code (SimGrid-style) instead of event callbacks.
//
// Time is a double in seconds. Events with equal timestamps fire in the
// order they were scheduled (FIFO tie-break via a sequence number).
//
// Sharded (logical-process) mode: a Simulation can also act as one shard of
// a partitioned world (see shard_scheduler.hpp). In shard mode every event
// carries a *canonical key* — (push time, owner id, per-owner sequence) —
// instead of the single global sequence, so the merged event order across
// shards is a pure function of the simulated workload and not of how many
// shards executed it. The single-shard queue order (t, 0, global seq) is
// bit-identical to the legacy order, so shard mode never perturbs existing
// single-queue runs.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tibsim/common/unique_function.hpp"
#include "tibsim/sim/engine_stats.hpp"
#include "tibsim/sim/execution_context.hpp"

namespace tibsim::sim {

class Simulation;

/// Thrown inside a process body when the simulation is torn down while the
/// process is still blocked; unwinds the fiber stack. Never catch it.
class ProcessKilled {};

/// A cooperative simulation process. Created via Simulation::spawn; the
/// body receives a reference to its Process and may call delay()/suspend().
class Process {
 public:
  using Body = std::function<void(Process&)>;

  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Advance simulated time by dt seconds (dt >= 0). Callable only from
  /// inside this process's body.
  void delay(double dt);

  /// Block until another party calls Simulation::resume on this process.
  /// Callable only from inside this process's body.
  void suspend();

  /// Current simulated time, in seconds.
  double now() const;

  Simulation& simulation() { return sim_; }
  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool finished() const { return finished_; }
  /// True while the process is suspended waiting for an external resume.
  bool suspended() const { return suspended_; }
  /// Identifier of the current (or most recent) suspension; resumes are
  /// tagged with this so stale wake-ups cannot disturb a later suspension.
  std::uint64_t suspendId() const { return suspendSeq_; }
  /// Exception that escaped the body, if any (rethrow with std::rethrow).
  std::exception_ptr exception() const { return exception_; }

 private:
  friend class Simulation;
  Process(Simulation& sim, std::uint64_t id, std::string name, Body body);

  void start(ExecBackend backend, std::size_t stackBytes, bool pooledStack);
  void switchIn();      // scheduler -> process; blocks scheduler until yield
  void yieldToHost();   // process -> scheduler
  void kill();          // request ProcessKilled unwind and run it to the end
  std::uint64_t beginSuspend();  // mark suspended, mint a suspension id

  Simulation& sim_;
  std::uint64_t id_;
  std::string name_;
  Body body_;

  std::unique_ptr<ExecutionContext> context_;
  bool finished_ = false;
  std::exception_ptr exception_;
  bool killRequested_ = false;
  bool suspended_ = false;
  std::uint64_t suspendSeq_ = 0;
};

/// The event loop: a time-ordered queue of callbacks plus the set of spawned
/// processes. Not thread-safe: drive it from a single thread.
class Simulation {
 public:
  Simulation() : Simulation(defaultExecBackend()) {}
  /// `stackBytes` sizes each process's fiber stack; 0 means the engine
  /// default (TIBSIM_FIBER_STACK_KB or 256 KiB). Thread backend ignores it.
  explicit Simulation(ExecBackend backend, std::size_t stackBytes = 0)
      : backend_(backend), stackBytes_(stackBytes) {}
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  double now() const { return now_; }

  /// Execution backend new processes are created on.
  ExecBackend backend() const { return backend_; }

  /// Configured per-process stack size (0 = engine default).
  std::size_t stackBytes() const { return stackBytes_; }

  /// When enabled, fiber processes lease their stacks from the process-wide
  /// slab arena instead of mmap'ing private guarded stacks (2 kernel VMAs
  /// each — a 65,536-rank world would exceed vm.max_map_count). Worlds turn
  /// this on at/above kPooledStacksMinRanks. Call before the first spawn.
  void setPooledStacks(bool on) { pooledStacks_ = on; }
  bool pooledStacks() const { return pooledStacks_; }

  /// Schedule a callback at absolute time t (>= now()). The callback type
  /// is move-only with 48 bytes of inline storage (UniqueFunction), so the
  /// hot-path closures — message delivery, process wake-ups — never touch
  /// the heap.
  void scheduleAt(double t, UniqueFunction fn);

  /// Schedule a callback dt seconds from now (dt >= 0).
  void scheduleIn(double dt, UniqueFunction fn);

  /// Create a process and schedule it to start at the current time.
  Process& spawn(std::string name, Process::Body body);

  /// Wake a suspended process at time t (>= now()).
  void resumeAt(double t, Process& p);

  /// Wake a suspended process at the current time (after pending events at
  /// this timestamp that were scheduled earlier).
  void resume(Process& p);

  /// Run until the event queue drains. Returns the final simulation time.
  double run();

  /// Run until the event queue drains or time would exceed `deadline`.
  double runUntil(double deadline);

  // -- sharded (logical-process) mode --------------------------------------
  // See shard_scheduler.hpp for the window loop that drives these.
  //
  // Ordering model. The legacy engine's tie-break at equal t is push order
  // (a global sequence). Shard mode reconstructs that order exactly: the
  // window barrier merges the shards' dispatch logs and assigns every
  // dispatch a global ordinal G in merged order — which IS the legacy
  // dispatch order, because conservative windows partition simulated time
  // (every event of window W+1 is later than every event of window W).
  // An event pushed during dispatch D with per-dispatch push index i sorts
  // at (t, G(D), i): exactly the legacy (t, seq) order, since legacy seqs
  // at equal t are grouped by pushing dispatch in dispatch order.
  //
  // G(D) is only known once D's window has been merged, so in-window
  // pushes carry a *provisional* key — kProvisionalOrd | local dispatch
  // index — which orders correctly against everything dispatchable before
  // the next barrier (provisional sorts after final at equal t: final keys
  // come from earlier windows, hence smaller G). At the barrier, surviving
  // provisional entries are resolved to their final G and the heap is
  // rebuilt. Cross-shard (channel) pushes are performed at the barrier
  // itself, where G of the submitting dispatch is already final.

  /// Provisional-key tag: ord1 = kProvisionalOrd | local dispatch index.
  /// Global ordinals stay far below this bit for any realistic run.
  static constexpr std::uint64_t kProvisionalOrd = 1ull << 62;

  /// One dispatched event, as recorded by the shard-mode dispatch log: its
  /// queue ordering key plus how many pushes it caused (own-queue pushes
  /// made during the dispatch plus deferred cross-shard pushes declared via
  /// notePendingPush). The barrier merges these logs in key order to
  /// reconstruct the exact single-queue dispatch sequence and its size
  /// evolution.
  struct DispatchRecord {
    double t;
    std::uint64_t ord1;  ///< final G(pusher) or kProvisionalOrd | pusher D
    std::uint64_t ord2;  ///< push index within the pushing dispatch
    std::uint32_t pushes;
  };

  /// Switch this Simulation into shard mode. Process ids start at
  /// `firstProcessId`, which must be the shard's first global rank so spawn
  /// start events (keyed by process id) merge in global rank order — the
  /// legacy spawn-order tie-break. Call before the first spawn.
  void enableShardMode(std::uint64_t firstProcessId);
  bool shardMode() const { return shardMode_; }

  bool hasEvents() const { return !queue_.empty(); }
  /// Timestamp of the earliest queued event. Requires hasEvents().
  double nextEventTime() const;

  /// Dispatch every event with t strictly below `windowEnd` (the
  /// conservative-synchronisation window bound); returns the number of
  /// events dispatched. Does not measure host time — the shard scheduler
  /// accounts wall-clock once for the whole window loop.
  std::uint64_t runWindow(double windowEnd);

  /// Shard-mode dispatch log for the current window (cleared by the barrier
  /// after merging). Entries are in dispatch order, which within one shard
  /// is canonical key order.
  const std::vector<DispatchRecord>& dispatchLog() const {
    return dispatchLog_;
  }
  void clearDispatchLog() { dispatchLog_.clear(); }
  /// Index of the dispatch currently executing (log.size() - 1). Callers
  /// attribute deferred side effects (cross-shard ops, trace spans) to it.
  std::uint32_t currentDispatchIndex() const {
    return static_cast<std::uint32_t>(dispatchLog_.size() - 1);
  }
  /// Declare that the current dispatch will push one more event later (a
  /// deferred cross-shard push executed at the window barrier). Returns the
  /// push's index within this dispatch — its legacy intra-dispatch push
  /// position — and counts it for the canonical queue-size replay exactly
  /// like the legacy engine counted the immediate push.
  std::uint32_t notePendingPush() { return dispatchLog_.back().pushes++; }

  /// Barrier-side push of a callback under a final key: `g` is the global
  /// ordinal the barrier merge assigned to the submitting dispatch and
  /// `pushIdx` the value notePendingPush() returned there. Used only by the
  /// cross-shard channel, never from inside a dispatch; bypasses the
  /// dispatch log.
  void scheduleChannel(double t, std::uint64_t g, std::uint64_t pushIdx,
                       UniqueFunction fn);

  /// Barrier epilogue: resolve surviving provisional keys against this
  /// window's dispatch-ordinal map (`gByD[d]` = global ordinal of local
  /// dispatch d) and restore the heap order. Also resets the dispatch log.
  void finalizeWindowKeys(const std::vector<std::uint64_t>& gByD);

  /// Pre-size the event queue (e.g. to ~4x the expected process count).
  void reserveEvents(std::size_t n) {
    queue_.reserve(n);
    closures_.reserve(n);
  }

  std::size_t liveProcessCount() const;
  std::uint64_t processedEvents() const { return stats_.eventsDispatched; }

  /// Engine observability counters accumulated so far (simSeconds = now()).
  EngineStats engineStats() const;

 private:
  friend class Process;

  /// One queued event, 40 trivially-copyable bytes: the binary-heap sift
  /// moves entries by value, so keeping closures out of the heap (and the
  /// entry POD) is what makes push/pop cheap. A process wake-up — the
  /// dominant event type, one per delay()/resume() — is encoded directly as
  /// (proc, suspendSeq tag) and never touches a closure; callback events
  /// set proc to nullptr and point `aux` at a slot in the closure slab.
  ///
  /// Ordering is (t, ord1, ord2). Legacy single-queue pushes use
  /// ord1 = global sequence, ord2 = 0 — exactly the historical (t, seq)
  /// order. Shard-mode pushes use ord1 = pushing dispatch's global ordinal
  /// (or its provisional stand-in, see kProvisionalOrd) and ord2 = push
  /// index within that dispatch, which reconstructs the legacy order
  /// exactly once the barrier resolves ordinals.
  struct Event {
    double t;
    std::uint64_t ord1;  ///< legacy: global seq; shard: G(pusher)
    std::uint64_t ord2;  ///< legacy: 0; shard: intra-dispatch push index
    Process* proc;       ///< non-null: wake this process
    std::uint64_t aux;   ///< proc ? suspension tag : closure slab slot
  };

  /// Explicit binary min-heap over a reserved vector, ordered by
  /// (t, ord1, ord2). Unlike std::priority_queue it hands out the popped
  /// element by value (no const_cast of top()) and exposes its size for
  /// high-water tracking.
  class EventQueue {
   public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }
    void reserve(std::size_t n) { heap_.reserve(n); }
    const Event& top() const { return heap_.front(); }
    void push(Event ev);
    Event pop();
    /// Rewrite provisional ord1 values via `gByD` and restore heap order
    /// (shard-mode barrier epilogue).
    void finalizeKeys(const std::vector<std::uint64_t>& gByD);

   private:
    static bool before(const Event& a, const Event& b) {
      if (a.t != b.t) return a.t < b.t;
      if (a.ord1 != b.ord1) return a.ord1 < b.ord1;
      return a.ord2 < b.ord2;
    }
    std::vector<Event> heap_;
    std::size_t provisional_ = 0;  ///< heap entries with a provisional ord1
  };

  void dispatch(const Event& ev);
  std::uint32_t stashClosure(UniqueFunction fn);
  void noteContextSwitch() { ++stats_.contextSwitches; }
  void noteProcessFinished(Process& p);
  /// Keyed (seq) outside shard mode; (G(pusher)|provisional, push index)
  /// inside it — see the shard-mode ordering model above.
  void pushQueue(double t, Process* proc, std::uint64_t aux);

  double now_ = 0.0;
  ExecBackend backend_;
  std::size_t stackBytes_ = 0;
  bool pooledStacks_ = false;
  std::uint64_t nextSeq_ = 0;
  std::uint64_t nextProcessId_ = 0;
  std::size_t liveNow_ = 0;
  EngineStats stats_;
  EventQueue queue_;
  // Shard mode (see enableShardMode): canonical key bookkeeping.
  bool shardMode_ = false;
  bool inDispatch_ = false;
  std::uint64_t idBase_ = 0;   ///< first process id (the shard's first rank)
  std::uint64_t hostSeq_ = 0;  ///< tie-break for host pushes (ord1 = 0)
  /// Process id whose spawn start event is being pushed (spawn() only):
  /// spawn events sort by process id so shards merge them in global rank
  /// order, matching the legacy spawn-order tie-break.
  std::uint64_t spawnOrdHint_ = 0;
  bool inSpawnPush_ = false;
  std::vector<DispatchRecord> dispatchLog_;
  // Closure slab for callback events; slots are recycled LIFO, so a steady
  // stream of scheduleIn() calls reuses the same few slots with no
  // allocator traffic.
  std::vector<UniqueFunction> closures_;
  std::vector<std::uint32_t> freeClosureSlots_;
  std::vector<std::unique_ptr<Process>> processes_;
};

}  // namespace tibsim::sim
