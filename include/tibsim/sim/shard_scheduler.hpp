#pragma once
// Conservative (lookahead / null-message) synchronisation for sharded
// logical-process simulation.
//
// A world partitioned at switch-subtree cut points becomes a set of shard
// Simulations (each with its own event queue and fiber scheduler) plus one
// ShardScheduler driving them in *windows*: every shard may safely dispatch
// all events strictly below
//
//     windowEnd = min(earliest event over all shards) + lookahead
//
// because any event one shard can cause in another is delayed by at least
// the inter-shard link latency (the lookahead bound, taken from the fabric
// topology — see net::Fabric::lookaheadSeconds). After each window a serial
// barrier runs: the world merges the shards' dispatch logs in canonical key
// order and replays deferred cross-shard side effects (fabric occupancy,
// message deliveries, stats folds) exactly as the single-queue engine would
// have interleaved them — which is what keeps campaign artefacts
// byte-identical for any shard count.
//
// Windows are microseconds of simulated time, so the fork-join must cost
// far less than a thread wake. Shards with work in a window run on a
// dedicated gang of spin-then-sleep workers owned by the scheduler: the
// gang spins briefly across the serial barrier (staying hot through
// communication bursts) and parks on a condition variable through long
// single-shard phases, where windows run inline on the calling thread
// instead. On a single-core host the gang is empty and every window runs
// inline — sharding then costs only the barrier, and the schedule (hence
// every artefact) is identical either way.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "tibsim/common/unique_function.hpp"
#include "tibsim/sim/simulation.hpp"

namespace tibsim::sim {

/// Process-wide default shard count used by WorldConfig. Initialised once
/// from the TIBSIM_SIM_SHARDS environment variable; 1 (single-queue legacy
/// engine) when unset or unparsable. Values are clamped to [1, 1024].
int defaultSimShards();
void setDefaultSimShards(int shards);

/// RAII override of the process-wide default shard count (tests, campaigns).
class ScopedSimShards {
 public:
  explicit ScopedSimShards(int shards) : previous_(defaultSimShards()) {
    setDefaultSimShards(shards);
  }
  ~ScopedSimShards() { setDefaultSimShards(previous_); }
  ScopedSimShards(const ScopedSimShards&) = delete;
  ScopedSimShards& operator=(const ScopedSimShards&) = delete;

 private:
  int previous_;
};

/// The window loop plus the *only* sanctioned channel for putting events
/// into another shard's queue. Shards are registered non-owning; a shard
/// that has been torn down (teardownShard) rejects channel traffic with a
/// contract violation — routing a rank to a dead shard is a bug in the
/// partitioning policy, never something to paper over.
class ShardScheduler {
 public:
  /// `lookaheadSeconds` must be positive: a zero-latency fabric has no
  /// conservative window and the world must fall back to one shard.
  explicit ShardScheduler(double lookaheadSeconds);
  ~ShardScheduler();

  ShardScheduler(const ShardScheduler&) = delete;
  ShardScheduler& operator=(const ShardScheduler&) = delete;

  /// Register a shard; index = registration order. The scheduler does not
  /// take ownership.
  std::size_t addShard(Simulation* shard);

  /// Detach a shard (teardown). Channel pushes to it become contract
  /// violations; the window loop skips it.
  void teardownShard(std::size_t shard);

  std::size_t shardCount() const { return shards_.size(); }
  double lookaheadSeconds() const { return lookahead_; }
  Simulation& shard(std::size_t index);

  /// Cross-shard channel: push a callback event into `dstShard` under the
  /// final canonical key (`g` = global ordinal of the submitting dispatch,
  /// `pushIdx` = its notePendingPush() index). Call only from the serial
  /// window barrier.
  void channelPush(std::size_t dstShard, double t, std::uint64_t g,
                   std::uint64_t pushIdx, UniqueFunction fn);

  /// Drive windows until every shard's queue drains and a final barrier
  /// flushes nothing. `barrier` runs serially on the calling thread after
  /// every window (merge dispatch logs, replay deferred ops). Returns the
  /// final simulated time (max over shards).
  double run(const std::function<void()>& barrier);

  std::uint64_t windowsRun() const { return windowsRun_; }
  std::uint64_t parallelWindowsRun() const { return parallelWindowsRun_; }

  /// Gang participants for this scheduler (calling thread included):
  /// min(shards, hardware cores), or the TIBSIM_SHARD_THREADS override
  /// (clamped to [1, shards] — tests force a multi-threaded gang on
  /// single-core CI hosts with it).
  std::size_t gangParticipants() const;

 private:
  void startGang();
  void stopGang();
  void gangLoop();
  /// Claim and run window shards (shared by workers and the caller).
  void runClaimedShards();

  double lookahead_;
  std::vector<Simulation*> shards_;
  std::vector<std::size_t> active_;  ///< scratch: shards busy this window
  std::uint64_t windowsRun_ = 0;
  std::uint64_t parallelWindowsRun_ = 0;

  // Window gang. The caller publishes active_ / windowEnd_, bumps epoch_,
  // and participates; workers claim shard indices via nextShard_ and report
  // through doneWorkers_. Workers spin ~tens of µs before parking so that
  // back-to-back windows never pay a futex wake.
  std::vector<std::thread> gang_;
  double windowEnd_ = 0.0;  ///< published before the epoch_ release bump
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> nextShard_{0};
  std::atomic<std::uint32_t> doneWorkers_{0};
  std::atomic<std::uint32_t> sleepers_{0};
  std::atomic<bool> gangStop_{false};
  std::mutex gangMutex_;
  std::condition_variable gangWake_;
  std::exception_ptr gangError_;  ///< first window exception (gangMutex_)
};

}  // namespace tibsim::sim
