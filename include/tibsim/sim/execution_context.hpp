#pragma once
// Pluggable execution backends for cooperative simulation processes.
//
// A Process needs exactly three transfers of control: host -> process
// (switchIn), process -> host (yieldToHost), and the initial entry into the
// process body (start + first switchIn). ExecutionContext abstracts how
// those transfers happen:
//
//  * ExecBackend::Fiber — stackful user-space fibers (ucontext/swapcontext)
//    with an owned, configurable-size stack per process. A switch is two
//    register-file swaps in user space; no kernel wake-up, no OS thread per
//    process. This is the default: it makes 1024-node (2048-rank) cluster
//    runs feasible.
//  * ExecBackend::Thread — the original one-OS-thread-per-process baton
//    handoff through a mutex/condition-variable pair. Portable to platforms
//    without a usable <ucontext.h> and the only backend ThreadSanitizer can
//    reason about; kept as a fallback and as a differential oracle.
//
// Both backends uphold the same contract: exactly one party (host or
// process) runs at any moment, transfers are synchronous, and the entry
// function runs to completion before the context is destroyed (Process
// guarantees this by unwinding via ProcessKilled on teardown).

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace tibsim::sim {

enum class ExecBackend {
  Fiber,   // user-space stackful fibers (default)
  Thread,  // one OS thread per process, condvar baton (portable fallback)
};

/// Smallest usable fiber stack. Low enough that stack-sizing experiments
/// guided by the high-water telemetry can go well below the 256 KiB engine
/// default; high enough that the entry thunk itself always fits.
inline constexpr std::size_t kMinFiberStackBytes = 16 * 1024;

/// The host's VM page size (sysconf(_SC_PAGESIZE); 4096 when unavailable).
/// Fiber stacks and their guard pages are page-granular.
std::size_t pageBytes();

/// Worlds with at least this many ranks lease fiber stacks from the shared
/// slab arena (2 kernel VMAs per multi-megabyte slab, pattern sentinel page
/// under each stack, stacks recycled across worlds) instead of mmap'ing a
/// private guarded stack per fiber (2 VMAs each). A 65,536-rank world needs
/// ~131k private mappings — past the kernel's default vm.max_map_count of
/// 65530, so the per-fiber guard mprotect would fail mid-spawn.
inline constexpr int kPooledStacksMinRanks = 16384;

/// Stack size to use for a sweep whose probe run measured
/// `highWaterBytes` of peak stack use: 2x headroom, rounded up to a whole
/// page, floored at kMinFiberStackBytes. Returns 0 when highWaterBytes is 0
/// (no telemetry — e.g. the thread backend), meaning "keep the default".
std::size_t recommendedStackBytes(std::size_t highWaterBytes);

/// "fiber" or "thread".
const char* toString(ExecBackend backend);

/// Parse "fiber"/"thread" (case-sensitive). Throws ContractError otherwise.
ExecBackend parseExecBackend(const std::string& name);

/// Process-wide default backend used by Simulation() and WorldConfig.
/// Initialised once from the TIBSIM_SIM_BACKEND environment variable
/// ("fiber" or "thread"); Fiber when unset or unrecognised.
ExecBackend defaultExecBackend();
void setDefaultExecBackend(ExecBackend backend);

/// RAII override of the process-wide default backend (tests, campaigns).
class ScopedExecBackend {
 public:
  explicit ScopedExecBackend(ExecBackend backend)
      : previous_(defaultExecBackend()) {
    setDefaultExecBackend(backend);
  }
  ~ScopedExecBackend() { setDefaultExecBackend(previous_); }
  ScopedExecBackend(const ScopedExecBackend&) = delete;
  ScopedExecBackend& operator=(const ScopedExecBackend&) = delete;

 private:
  ExecBackend previous_;
};

/// One cooperative execution context (the "how" of a Process). Not
/// thread-safe: the host side drives start/switchIn from one thread.
class ExecutionContext {
 public:
  using Entry = std::function<void()>;

  virtual ~ExecutionContext() = default;
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  /// Arm the context with its entry function. The entry does not run until
  /// the first switchIn(). Must be called exactly once, before switchIn().
  virtual void start(Entry entry) = 0;

  /// Host -> context. Runs the context until it yields or its entry
  /// returns; blocks the host for the duration.
  virtual void switchIn() = 0;

  /// Context -> host. Callable only from inside the running entry.
  virtual void yieldToHost() = 0;

  /// Which backend actually services this context. May differ from the
  /// requested one (Fiber falls back to Thread under ThreadSanitizer,
  /// which cannot follow swapcontext).
  virtual ExecBackend backend() const = 0;

  /// Size of the owned stack, or 0 for backends whose stacks belong to the
  /// OS (thread backend).
  virtual std::size_t stackBytes() const { return 0; }

  /// Deepest observed use of the owned stack, measured by scanning for the
  /// first overwritten fill byte (obs::scanStackHighWater). 0 when the
  /// backend cannot measure it. A value equal to stackBytes() means the
  /// whole stack was scribbled — treat the stack as undersized.
  virtual std::size_t stackHighWaterBytes() const { return 0; }

  /// Fiber stack size: TIBSIM_FIBER_STACK_KB (KiB) when set, else 256 KiB.
  static std::size_t defaultStackBytes();

  /// Build a context for `backend`. stackBytes == 0 means
  /// defaultStackBytes(); only the fiber backend uses it. When pooledStack
  /// is true the fiber backend leases its stack from the process-wide slab
  /// arena (see kPooledStacksMinRanks) instead of owning a private guarded
  /// mapping; overflow detection moves from an immediate guard-page fault
  /// to a sentinel-page check when the stack is released.
  static std::unique_ptr<ExecutionContext> create(ExecBackend backend,
                                                  std::size_t stackBytes = 0,
                                                  bool pooledStack = false);

 protected:
  ExecutionContext() = default;
};

}  // namespace tibsim::sim
