#pragma once
// The span vocabulary of the observability layer: what a Paraver-style
// timeline is made of. One TraceSpan is one contiguous interval of one
// rank's simulated time attributed to a SpanKind. The types live here (not
// in mpi/) so sinks and exporters need no dependency on the simMPI runtime;
// mpi/trace.hpp aliases them back into tibsim::mpi for source compatibility.

#include <cstddef>
#include <cstdint>
#include <string>

namespace tibsim::obs {

enum class SpanKind {
  Compute,  ///< application work charged via compute()
  Send,     ///< sender-side protocol CPU time
  Recv,     ///< receiver-side protocol CPU time
  Wait,     ///< blocked in recv with no matching message
};

inline constexpr int kSpanKinds = 4;

std::string toString(SpanKind kind);

struct TraceSpan {
  int rank = 0;
  SpanKind kind = SpanKind::Compute;
  double begin = 0.0;
  double end = 0.0;
  int peer = -1;           ///< other rank for Send/Recv, -1 otherwise
  std::size_t bytes = 0;   ///< message size for Send/Recv
  /// Communicator the traffic ran on (0 = world); lets a timeline separate
  /// e.g. halo traffic on a dup()ed communicator from CFL reductions.
  std::uint64_t comm = 0;

  double duration() const { return end - begin; }
};

/// Per-rank time breakdown over [0, wallClock] — the first thing a
/// scalability post-mortem looks at.
struct RankSummary {
  int rank = 0;
  double computeSeconds = 0.0;
  double sendSeconds = 0.0;
  double recvSeconds = 0.0;
  double waitSeconds = 0.0;
  double otherSeconds = 0.0;  ///< wallclock not covered by spans (>= 0)

  double commSeconds() const { return sendSeconds + recvSeconds; }
};

}  // namespace tibsim::obs
