#pragma once
// Per-link fabric telemetry — which wire actually saturated.
//
// The fabric keeps one counter block per physical resource (every node
// uplink, every node downlink, the shared core), so memory is O(links).
// For export they are folded into one LinkKindCounters per link class:
// scalar totals plus the busiest single link, and a log2 queueing-delay
// histogram per class (per-link histograms would cost ~10 KiB/node at
// 32,768 nodes for no analytic gain — contention is a class property).
//
// Everything here is derived from simulated time only, and every
// scheduleWire call is made in canonical order (inline on the single
// queue, or serially replayed at the shard barrier), so the counters are
// shard-invariant by construction and safe to serialise into artefacts.

#include <cstdint>

#include "tibsim/obs/trace_sink.hpp"

namespace tibsim::obs {

/// Aggregated occupancy counters for one class of fabric link.
struct LinkKindCounters {
  double busySeconds = 0.0;   ///< serialisation time summed over links
  double bytes = 0.0;         ///< wire bytes pushed through this class
  std::uint64_t transfers = 0;  ///< occupancies (one per hop traversal)
  double queueSeconds = 0.0;  ///< time transfers waited for a busy link
  double maxLinkBusySeconds = 0.0;  ///< busiest single link of the class
  DurationHistogram queueDelay;     ///< log2 buckets of per-transfer delay

  void accumulate(const LinkKindCounters& other) {
    busySeconds += other.busySeconds;
    bytes += other.bytes;
    transfers += other.transfers;
    queueSeconds += other.queueSeconds;
    if (other.maxLinkBusySeconds > maxLinkBusySeconds)
      maxLinkBusySeconds = other.maxLinkBusySeconds;
    for (int b = 0; b < DurationHistogram::kBuckets; ++b)
      queueDelay.counts[static_cast<std::size_t>(b)] +=
          other.queueDelay.counts[static_cast<std::size_t>(b)];
  }
};

/// Per-world link telemetry, one counter block per link class.
struct LinkStats {
  LinkKindCounters uplink;    ///< node NIC -> leaf switch
  LinkKindCounters core;      ///< shared bisection capacity
  LinkKindCounters downlink;  ///< leaf switch -> node NIC

  void accumulate(const LinkStats& other) {
    uplink.accumulate(other.uplink);
    core.accumulate(other.core);
    downlink.accumulate(other.downlink);
  }

  std::uint64_t transfers() const {
    return uplink.transfers + core.transfers + downlink.transfers;
  }
  bool any() const { return transfers() > 0; }
};

}  // namespace tibsim::obs
