#pragma once
// Deterministic stall watchdog — an all-ranks-blocked world becomes a
// per-rank wait-state report instead of a bare "deadlock" one-liner.
//
// When the event queue drains while fibers are still blocked, the engine
// already throws ContractError. With the stall report enabled
// (--stall-report / TIBSIM_STALL_REPORT=1) that error carries one line
// per blocked rank — rank, node, communicator, pending operation, peer,
// tag, the simulated time it has been blocked, and the rank's most
// recent retained trace spans — sorted by rank, derived from simulated
// state only, so the report is byte-stable across backends and shard
// counts and can be pinned in tests.

#include <cstdint>
#include <string>
#include <vector>

#include "tibsim/obs/span.hpp"

namespace tibsim::obs {

/// Process-wide default for WorldConfig::stallReport. Initialised once
/// from TIBSIM_STALL_REPORT ("1"/"on"/"true" enable); off otherwise.
bool defaultStallReport();
void setDefaultStallReport(bool on);

/// RAII override of the process-wide default (campaigns, tests).
class ScopedStallReport {
 public:
  explicit ScopedStallReport(bool on) : previous_(defaultStallReport()) {
    setDefaultStallReport(on);
  }
  ~ScopedStallReport() { setDefaultStallReport(previous_); }
  ScopedStallReport(const ScopedStallReport&) = delete;
  ScopedStallReport& operator=(const ScopedStallReport&) = delete;

 private:
  bool previous_;
};

/// One blocked rank's wait state at the moment the world stalled.
struct StallEntry {
  int rank = -1;
  int node = -1;
  std::uint64_t comm = 0;    ///< communicator id of the pending op
  std::string op;            ///< "recv", "rendezvous-send", ...
  int peer = -1;             ///< kAnySource wildcards render as '*'
  int tag = 0;               ///< kAnyTag wildcards render as '*'
  double blockedSince = 0.0;  ///< sim time the rank entered the wait
  std::vector<TraceSpan> lastSpans;  ///< most recent retained spans
};

/// Render the report, sorted by rank. `now` is the stalled world's
/// simulated time (every rank's blocked duration is now - blockedSince).
std::string formatStallReport(const std::vector<StallEntry>& entries,
                              double now);

}  // namespace tibsim::obs
