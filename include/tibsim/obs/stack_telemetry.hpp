#pragma once
// Fiber stack telemetry: pattern-fill a stack at creation, scan it on
// teardown to find the high-water mark. The fiber backend owns plain heap
// stacks, so "how much did this rank actually use" is one linear scan for
// the first overwritten fill byte — no guard pages, no signal handlers.
// High-water marks feed EngineStats and let TIBSIM_FIBER_STACK_KB be
// shrunk below 64 KiB with evidence instead of hope (ROADMAP item).

#include <cstddef>

namespace tibsim::obs {

/// The fill byte. Chosen not to collide with common stack contents
/// (0x00/0xff) so an untouched word is recognisably untouched.
inline constexpr unsigned char kStackFillByte = 0xA5;

/// Fill [base, base + bytes) with the pattern. Call before the stack is
/// armed (makecontext), never after the fiber has run.
void patternFillStack(void* base, std::size_t bytes);

/// Bytes used from the top of a downward-growing stack: scans from the low
/// address (the deep end) for the first non-pattern byte. A fiber that
/// never ran reports 0; a fully-scribbled stack reports `bytes` (overflow —
/// the caller should treat HWM == bytes as "undersized").
std::size_t scanStackHighWater(const void* base, std::size_t bytes);

}  // namespace tibsim::obs
