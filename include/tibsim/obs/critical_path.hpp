#pragma once
// Sim-time critical-path attribution.
//
// Each rank carries a running attribution of the longest dependency chain
// that ends at its current point in simulated time. The chain is extended
// by compute and protocol CPU locally, and hops between ranks whenever a
// receive actually waited for the matching message (the sender's chain,
// plus the wire time, bounded the receiver). At world teardown the chain
// of the last-finishing rank IS the world's critical path, decomposed
// into compute / send / recv / link segments with the residual blocked
// time reported as wait. The piggyback state is O(1) per rank and every
// update happens at canonical delivery points, so the result is
// byte-identical across shard counts, backends and --jobs.

#include <cstdint>

namespace tibsim::obs {

/// Per-rank running chain attribution, piggybacked on messages. Fixed
/// size (40 B) so it rides in the in-flight message slab cheaply.
struct PathSnapshot {
  double computeSeconds = 0.0;
  double sendSeconds = 0.0;
  double recvSeconds = 0.0;
  double linkSeconds = 0.0;
  std::uint64_t edges = 0;

  double lengthSeconds() const {
    return computeSeconds + sendSeconds + recvSeconds + linkSeconds;
  }
};

/// Decomposition of the world-bounding dependency chain.
struct CriticalPath {
  double computeSeconds = 0.0;  ///< application compute on the path
  double sendSeconds = 0.0;     ///< sender-side protocol CPU on the path
  double recvSeconds = 0.0;     ///< receiver-side protocol CPU on the path
  double linkSeconds = 0.0;     ///< wire + switch time of path-forming hops
  double waitSeconds = 0.0;     ///< residual blocked time (end rank)
  std::uint64_t edges = 0;      ///< cross-rank hops the path takes
  int endRank = -1;             ///< rank whose finish bounds the world

  double lengthSeconds() const {
    return computeSeconds + sendSeconds + recvSeconds + linkSeconds +
           waitSeconds;
  }

  /// Fold another world's path into an experiment-level roll-up. Segment
  /// sums stay meaningful across worlds; endRank only survives while the
  /// roll-up covers a single world (an accumulator that already holds any
  /// path drops to -1 and stays there).
  void accumulate(const CriticalPath& other) {
    endRank = (edges == 0 && lengthSeconds() == 0.0) ? other.endRank : -1;
    computeSeconds += other.computeSeconds;
    sendSeconds += other.sendSeconds;
    recvSeconds += other.recvSeconds;
    linkSeconds += other.linkSeconds;
    waitSeconds += other.waitSeconds;
    edges += other.edges;
  }
};

}  // namespace tibsim::obs
