#pragma once
// Bounded-memory trace sinks — the observability layer's answer to "record
// every span" not surviving 2048 ranks.
//
// A TraceSink consumes the span stream a traced run produces. Every sink
// keeps exact per-(rank, kind) duration totals (O(ranks) memory), so the
// Paraver-style per-rank breakdown is always exact; the modes differ only
// in which raw spans are retained for timeline export:
//
//  * Full      — every span, today's behaviour. Memory grows with the
//                span count (~32 B/span: the 2048-rank memory bottleneck).
//  * Sampled   — a deterministic reservoir of K spans per rank
//                (Algorithm R, per-rank RNG streams derived from a seed),
//                so a representative timeline survives at O(ranks * K).
//  * Aggregate — no spans at all; per-(rank, kind) log2 duration
//                histograms + counters. O(ranks) memory, the only mode
//                that is feasible and cheap at any scale.
//
// Sampling is seeded explicitly (SinkConfig::seed, fed from the campaign
// RNG), never from global state, so artefacts are byte-identical across
// --jobs values and both execution backends.

#include <array>
#include <cstddef>
#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "tibsim/common/assert.hpp"
#include "tibsim/obs/span.hpp"

namespace tibsim::obs {

enum class TraceMode {
  Full,       ///< retain every span (unbounded memory)
  Sampled,    ///< deterministic reservoir of K spans per rank
  Aggregate,  ///< streaming histograms + counters only, O(ranks)
};

/// "full", "sampled" or "aggregate".
const char* toString(TraceMode mode);

/// Parse "full"/"sampled"/"aggregate". Throws ContractError otherwise.
TraceMode parseTraceMode(const std::string& name);

/// Process-wide default mode used by WorldConfig. Initialised once from the
/// TIBSIM_TRACE_MODE environment variable; Full when unset or unrecognised
/// (tracing itself stays opt-in per world — the mode only says how a traced
/// world records).
TraceMode defaultTraceMode();
void setDefaultTraceMode(TraceMode mode);

/// RAII override of the process-wide default mode (campaigns, tests).
class ScopedTraceMode {
 public:
  explicit ScopedTraceMode(TraceMode mode) : previous_(defaultTraceMode()) {
    setDefaultTraceMode(mode);
  }
  ~ScopedTraceMode() { setDefaultTraceMode(previous_); }
  ScopedTraceMode(const ScopedTraceMode&) = delete;
  ScopedTraceMode& operator=(const ScopedTraceMode&) = delete;

 private:
  TraceMode previous_;
};

struct SinkConfig {
  TraceMode mode = TraceMode::Full;
  std::size_t reservoirPerRank = 512;  ///< sampled mode: K spans kept/rank
  std::uint64_t seed = 0;  ///< sampled mode: reservoir RNG seed
};

/// Streaming histogram of span durations in power-of-two buckets from 1 ns
/// upward (bucket i covers [2^i, 2^(i+1)) ns; the last bucket absorbs the
/// tail). Fixed size, so a (rank, kind) grid of these stays O(ranks).
struct DurationHistogram {
  static constexpr int kBuckets = 36;  ///< 1 ns .. ~68 s
  std::array<std::uint64_t, kBuckets> counts{};

  void record(double seconds) { ++counts[static_cast<std::size_t>(bucketFor(seconds))]; }
  /// Bucket index for a duration. Inline because it sits on the per-span
  /// aggregate-mode hot path: floor(log2(ns)) straight from the exponent
  /// bits — ns > 1 here, so the value is a positive normal double (or
  /// +inf, whose biased exponent lands in the clamped tail) and the biased
  /// exponent IS the floor, exact at every power-of-two boundary.
  static int bucketFor(double seconds) {
    const double ns = seconds * 1e9;
    if (!(ns > 1.0)) return 0;  // sub-nanosecond, zero, NaN
    std::uint64_t bits = 0;
    std::memcpy(&bits, &ns, sizeof bits);
    const int bucket = static_cast<int>((bits >> 52) & 0x7ffU) - 1023;
    return bucket >= kBuckets ? kBuckets - 1 : bucket;
  }
  /// Inclusive lower edge of a bucket, in seconds.
  static double bucketLowerSeconds(int bucket);
  std::uint64_t total() const;
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Consume one span. Exact totals are always updated; retention depends
  /// on the mode. Inline: this is the one call every traced simMPI event
  /// makes, and the base bookkeeping is a handful of adds. Aggregate mode —
  /// the always-on campaign setting — is handled here too (the sink
  /// installs its histogram grid via aggGrid_), so the per-span cost in
  /// that mode is pure arithmetic with no virtual dispatch.
  void record(const TraceSpan& span) {
    TIB_REQUIRE(span.end >= span.begin);
    ++recorded_;
    if (span.rank >= 0) {
      const auto r = static_cast<std::size_t>(span.rank);
      if (r >= totals_.size()) totals_.resize(r + 1);
      const auto k = static_cast<std::size_t>(span.kind);
      const double duration = span.duration();
      totals_[r].seconds[k] += duration;
      if (aggGrid_ != nullptr) {
        if (r >= aggGrid_->size()) aggGrid_->resize(r + 1);
        (*aggGrid_)[r][k].record(duration);
        return;  // aggregate retains no spans
      }
    } else if (aggGrid_ != nullptr) {
      return;
    }
    onRecord(span);
  }
  void clear();

  TraceMode mode() const { return mode_; }

  /// Spans retained for timeline export: everything (full), the per-rank
  /// reservoirs in rank-major, arrival order (sampled), none (aggregate).
  virtual std::vector<TraceSpan> retainedSpans() const = 0;

  /// Total spans seen — identical in every mode (exactness witness).
  std::uint64_t spansRecorded() const { return recorded_; }
  virtual std::size_t spansRetained() const = 0;

  /// Approximate resident footprint of this sink, in bytes. Deterministic
  /// (derived from counts and capacities, not from the allocator).
  std::size_t memoryBytes() const { return totalsBytes() + retainedBytes(); }

  /// Exact per-rank time breakdown over [0, wallClock]; otherSeconds is
  /// clamped at zero when spans overlap or exceed the wall clock.
  std::vector<RankSummary> summarize(int ranks, double wallClock) const;

  /// Fraction of total rank-time spent outside compute.
  double nonComputeFraction(int ranks, double wallClock) const;

  /// Per-(rank, kind) duration histogram; nullptr unless mode()==Aggregate
  /// or the rank was never seen.
  virtual const DurationHistogram* histogram(int rank, SpanKind kind) const {
    (void)rank;
    (void)kind;
    return nullptr;
  }

  static std::unique_ptr<TraceSink> create(const SinkConfig& config);

 protected:
  explicit TraceSink(TraceMode mode) : mode_(mode) {}
  virtual void onRecord(const TraceSpan& span) = 0;
  virtual void onClear() = 0;
  virtual std::size_t retainedBytes() const = 0;

  /// Per-(rank, kind) histogram grid, grown on demand by rank.
  using HistogramGrid = std::vector<std::array<DurationHistogram, kSpanKinds>>;
  /// Installed by the aggregate sink so record() can update the grid
  /// inline; every other mode leaves it null and takes the virtual path.
  HistogramGrid* aggGrid_ = nullptr;

 private:
  std::size_t totalsBytes() const;

  struct RankTotals {
    std::array<double, kSpanKinds> seconds{};
  };

  TraceMode mode_;
  std::uint64_t recorded_ = 0;
  std::vector<RankTotals> totals_;  ///< indexed by rank, grown on demand
};

}  // namespace tibsim::obs
