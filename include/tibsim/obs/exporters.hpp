#pragma once
// Trace exporters: serialise a span timeline (or its per-rank summary) into
// the formats a post-mortem actually uses. All output is deterministic —
// byte-identical for identical input — so exported artefacts can be diffed
// across runs, --jobs values and execution backends.

#include <span>
#include <string>
#include <vector>

#include "tibsim/obs/span.hpp"

namespace tibsim::obs {

/// One line per span: rank,kind,begin,end,peer,bytes — the historical
/// Tracer CSV, header included.
std::string exportCsv(std::span<const TraceSpan> spans);

/// Chrome trace_event JSON ("X" complete events, ts/dur in microseconds,
/// tid = rank), loadable in chrome://tracing and Perfetto. All strings —
/// including the optional process name, which may contain quotes,
/// backslashes or control characters — are emitted through the
/// common/json.hpp document model, so the output is always valid JSON.
std::string exportChromeJson(std::span<const TraceSpan> spans);
/// Same, labelling pid 0 with `processName` via a process_name metadata
/// event (empty name = no metadata event).
std::string exportChromeJson(std::span<const TraceSpan> spans,
                             const std::string& processName);

/// Paraver-convertible .prv trace: header plus one state record per span
/// (1:cpu:appl:task:thread:begin:end:state, times in ns). State mapping:
/// Compute -> 1 (Running), Wait -> 3 (Waiting a message), Send -> 4
/// (Blocking send), Recv -> 5 (Immediate receive).
std::string exportPrv(std::span<const TraceSpan> spans, int ranks,
                      double wallClockSeconds);

/// Per-rank breakdown CSV: one row per rank with the per-kind second
/// totals — the O(ranks) artefact aggregate mode emits at scale.
std::string exportBreakdownCsv(const std::vector<RankSummary>& summaries);

}  // namespace tibsim::obs
