#pragma once
// Deterministic per-world accounting rolled up across an experiment. Every
// simMPI world a campaign builds — traced or not — contributes one
// RunCounters record, so campaign artefacts account for all message traffic
// and trace memory, not just the worlds an experiment chose to showcase
// (the imb_suite under-reporting the ROADMAP called out).
//
// All fields are functions of the simulated run only (no host clocks, no
// allocator introspection), so they are safe to serialise into the
// byte-identical campaign JSON/CSV.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "tibsim/obs/critical_path.hpp"
#include "tibsim/obs/link_stats.hpp"

namespace tibsim::obs {

/// Per-size-class payload-pool activity rolled up across worlds (the
/// RunCounters analogue of PayloadPool::ClassStats; index = log2 of the
/// class capacity). Serialised into the campaign __worlds.csv class table.
struct PayloadClassCounters {
  std::size_t classBytes = 0;
  std::uint64_t acquires = 0;
  std::uint64_t reuses = 0;
  std::uint64_t allocations = 0;
  std::uint64_t parked = 0;
};

struct RunCounters {
  std::uint64_t worlds = 0;  ///< simMPI worlds accounted
  std::uint64_t messages = 0;
  /// Collective-verifier stamp comparisons (mpi/collective_verify.hpp);
  /// zero unless the runs executed with --verify-collectives.
  std::uint64_t collectiveChecks = 0;
  double payloadBytes = 0.0;
  double wireBytes = 0.0;
  std::uint64_t spansRecorded = 0;  ///< spans seen by trace sinks
  std::uint64_t spansRetained = 0;  ///< spans still resident after the runs
  std::uint64_t traceMemoryPeakBytes = 0;  ///< largest single-world sink
  // Payload memory behaviour (see mpi/payload_pool.hpp): how many messages
  // carried real bytes inline vs in a pooled buffer, and whether the pool
  // served sends from warm buffers (reuses) or had to allocate.
  std::uint64_t payloadInlineMessages = 0;
  std::uint64_t payloadPooledMessages = 0;
  std::uint64_t payloadPoolReuses = 0;
  std::uint64_t payloadPoolAllocations = 0;
  std::uint64_t payloadPoolReturns = 0;
  std::uint64_t payloadPoolTrimmedBuffers = 0;  ///< freed at teardown trims
  std::uint64_t payloadPoolLiveHighWater = 0;   ///< worst single-world peak
  /// Per-class pool activity (grows to the largest class any world used).
  std::vector<PayloadClassCounters> payloadPoolClasses;
  /// Per-link-kind fabric telemetry summed across worlds (net/fabric.hpp).
  LinkStats links;
  /// Sim-time critical-path attribution summed across worlds
  /// (obs/critical_path.hpp); endRank survives only single-world roll-ups.
  CriticalPath criticalPath;

  /// Fold another record into this one. Sums and maxes only, so the total
  /// is order-independent up to floating-point rounding; accumulate in a
  /// canonical order (ExperimentContext does) for byte-determinism.
  void accumulate(const RunCounters& other) {
    worlds += other.worlds;
    messages += other.messages;
    collectiveChecks += other.collectiveChecks;
    payloadBytes += other.payloadBytes;
    wireBytes += other.wireBytes;
    spansRecorded += other.spansRecorded;
    spansRetained += other.spansRetained;
    traceMemoryPeakBytes =
        std::max(traceMemoryPeakBytes, other.traceMemoryPeakBytes);
    payloadInlineMessages += other.payloadInlineMessages;
    payloadPooledMessages += other.payloadPooledMessages;
    payloadPoolReuses += other.payloadPoolReuses;
    payloadPoolAllocations += other.payloadPoolAllocations;
    payloadPoolReturns += other.payloadPoolReturns;
    payloadPoolTrimmedBuffers += other.payloadPoolTrimmedBuffers;
    payloadPoolLiveHighWater =
        std::max(payloadPoolLiveHighWater, other.payloadPoolLiveHighWater);
    if (payloadPoolClasses.size() < other.payloadPoolClasses.size())
      payloadPoolClasses.resize(other.payloadPoolClasses.size());
    for (std::size_t c = 0; c < other.payloadPoolClasses.size(); ++c) {
      PayloadClassCounters& mine = payloadPoolClasses[c];
      const PayloadClassCounters& theirs = other.payloadPoolClasses[c];
      if (mine.classBytes == 0) mine.classBytes = theirs.classBytes;
      mine.acquires += theirs.acquires;
      mine.reuses += theirs.reuses;
      mine.allocations += theirs.allocations;
      mine.parked += theirs.parked;
    }
    links.accumulate(other.links);
    criticalPath.accumulate(other.criticalPath);
  }
};

}  // namespace tibsim::obs
