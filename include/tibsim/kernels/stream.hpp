#pragma once
// STREAM memory-bandwidth benchmark (McCalpin), as used for Figure 5.
// Provides both a real runnable implementation (copy/scale/add/triad over
// host arrays, with verification) and the modelled per-platform bandwidth
// the figure reproduction uses.

#include <string>
#include <vector>

#include "tibsim/arch/platform.hpp"
#include "tibsim/common/thread_pool.hpp"
#include "tibsim/perfmodel/work_profile.hpp"

namespace tibsim::kernels {

enum class StreamOp { Copy, Scale, Add, Triad };

std::string toString(StreamOp op);

/// Bytes moved per element by each STREAM operation.
double streamBytesPerElement(StreamOp op);
/// FLOPs per element (copy: 0, scale/add: 1, triad: 2).
double streamFlopsPerElement(StreamOp op);

class StreamBenchmark {
 public:
  /// Allocate the a/b/c arrays with n doubles each.
  void setup(std::size_t n, double scalar = 3.0);

  /// Execute one pass of the operation serially.
  void runSerial(StreamOp op);
  /// Execute one pass using all threads of the pool.
  void runParallel(StreamOp op, ThreadPool& pool);

  /// Check the output of the last run of `op` against the definition.
  bool verify(StreamOp op) const;

  std::size_t size() const { return a_.size(); }

  /// Work profile of one pass of `op` at the current size.
  perfmodel::WorkProfile profile(StreamOp op) const;

  /// Modelled achievable bandwidth (bytes/s) for a platform — this is what
  /// Figure 5 plots. `cores` = 1 reproduces Fig 5(a); all cores, Fig 5(b).
  static double modeledBandwidth(const arch::Platform& platform, StreamOp op,
                                 int cores, double frequencyHz);

 private:
  double scalar_ = 3.0;
  std::vector<double> a_, b_, c_;
};

}  // namespace tibsim::kernels
