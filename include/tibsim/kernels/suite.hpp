#pragma once
// Concrete micro-kernel classes (Table 2). Most users go through makeSuite()
// / makeKernel(); the concrete types are exposed for targeted tests.

#include <complex>
#include <cstdint>
#include <vector>

#include "tibsim/kernels/microkernel.hpp"

namespace tibsim::kernels {

/// vecop — z = alpha*x + y over n doubles (regular numerical codes).
class VecOp final : public MicroKernel {
 public:
  std::string tag() const override { return "vecop"; }
  std::string fullName() const override { return "Vector operation"; }
  std::string properties() const override {
    return "Common operation in regular numerical codes";
  }
  void setup(std::size_t n, std::uint64_t seed) override;
  void runSerial() override;
  void runParallel(ThreadPool& pool) override;
  bool verify() const override;
  perfmodel::WorkProfile currentProfile() const override;

 private:
  double alpha_ = 0.0;
  std::vector<double> x_, y_, z_;
};

/// dmmm — dense matrix-matrix multiply C = A*B, cache-blocked.
class Dmmm final : public MicroKernel {
 public:
  std::string tag() const override { return "dmmm"; }
  std::string fullName() const override {
    return "Dense matrix-matrix multiplication";
  }
  std::string properties() const override {
    return "Data reuse and compute performance";
  }
  void setup(std::size_t n, std::uint64_t seed) override;
  void runSerial() override;
  void runParallel(ThreadPool& pool) override;
  bool verify() const override;
  perfmodel::WorkProfile currentProfile() const override;

 private:
  void multiplyRows(std::size_t rowBegin, std::size_t rowEnd);
  std::size_t n_ = 0;
  std::vector<double> a_, b_, c_;
};

/// 3dstc — 7-point 3-D stencil sweep (strided memory accesses).
class Stencil3D final : public MicroKernel {
 public:
  std::string tag() const override { return "3dstc"; }
  std::string fullName() const override {
    return "3D volume stencil computation";
  }
  std::string properties() const override {
    return "Strided memory accesses (7-point 3D stencil)";
  }
  void setup(std::size_t n, std::uint64_t seed) override;
  void runSerial() override;
  void runParallel(ThreadPool& pool) override;
  bool verify() const override;
  perfmodel::WorkProfile currentProfile() const override;

 private:
  void sweepPlanes(std::size_t zBegin, std::size_t zEnd);
  std::size_t n_ = 0;  ///< grid edge length
  std::vector<double> in_, out_;
};

/// 2dcon — 5x5 2-D convolution (spatial locality).
class Conv2D final : public MicroKernel {
 public:
  std::string tag() const override { return "2dcon"; }
  std::string fullName() const override { return "2D convolution"; }
  std::string properties() const override { return "Spatial locality"; }
  void setup(std::size_t n, std::uint64_t seed) override;
  void runSerial() override;
  void runParallel(ThreadPool& pool) override;
  bool verify() const override;
  perfmodel::WorkProfile currentProfile() const override;

 private:
  void convolveRows(std::size_t rowBegin, std::size_t rowEnd);
  std::size_t n_ = 0;  ///< image edge length
  std::vector<double> image_, result_;
  double filter_[5][5] = {};
};

/// fft — 1-D iterative radix-2 complex FFT (peak FP, variable stride).
class Fft1D final : public MicroKernel {
 public:
  std::string tag() const override { return "fft"; }
  std::string fullName() const override {
    return "One-dimensional Fast Fourier Transform";
  }
  std::string properties() const override {
    return "Peak floating-point, variable-stride accesses";
  }
  void setup(std::size_t n, std::uint64_t seed) override;
  void runSerial() override;
  void runParallel(ThreadPool& pool) override;
  bool verify() const override;
  perfmodel::WorkProfile currentProfile() const override;

 private:
  void bitReverse();
  void stages(ThreadPool* pool);
  std::size_t n_ = 0;  ///< transform length (power of two)
  std::vector<std::complex<double>> data_, original_;
};

/// red — scalar sum reduction (varying levels of parallelism).
class Reduction final : public MicroKernel {
 public:
  std::string tag() const override { return "red"; }
  std::string fullName() const override { return "Reduction operation"; }
  std::string properties() const override {
    return "Varying levels of parallelism (scalar sum)";
  }
  void setup(std::size_t n, std::uint64_t seed) override;
  void runSerial() override;
  void runParallel(ThreadPool& pool) override;
  bool verify() const override;
  perfmodel::WorkProfile currentProfile() const override;

 private:
  std::vector<double> data_;
  double sum_ = 0.0;
  double expected_ = 0.0;
};

/// hist — histogram with per-thread privatisation and a reduction stage.
class Histogram final : public MicroKernel {
 public:
  static constexpr std::size_t kBins = 256;
  std::string tag() const override { return "hist"; }
  std::string fullName() const override { return "Histogram calculation"; }
  std::string properties() const override {
    return "Histogram with local privatisation, requires reduction stage";
  }
  void setup(std::size_t n, std::uint64_t seed) override;
  void runSerial() override;
  void runParallel(ThreadPool& pool) override;
  bool verify() const override;
  perfmodel::WorkProfile currentProfile() const override;

 private:
  std::vector<std::uint32_t> keys_;
  std::vector<std::uint64_t> bins_;
  std::vector<std::uint64_t> expected_;
};

/// msort — bottom-up merge sort (barrier operations).
class MergeSort final : public MicroKernel {
 public:
  std::string tag() const override { return "msort"; }
  std::string fullName() const override { return "Generic merge sort"; }
  std::string properties() const override { return "Barrier operations"; }
  void setup(std::size_t n, std::uint64_t seed) override;
  void runSerial() override;
  void runParallel(ThreadPool& pool) override;
  bool verify() const override;
  perfmodel::WorkProfile currentProfile() const override;

 private:
  std::vector<double> data_, scratch_, original_;
};

/// nbody — all-pairs gravitational accelerations (irregular accesses).
class NBody final : public MicroKernel {
 public:
  std::string tag() const override { return "nbody"; }
  std::string fullName() const override { return "N-body calculation"; }
  std::string properties() const override {
    return "Irregular memory accesses";
  }
  void setup(std::size_t n, std::uint64_t seed) override;
  void runSerial() override;
  void runParallel(ThreadPool& pool) override;
  bool verify() const override;
  perfmodel::WorkProfile currentProfile() const override;

 private:
  void accelerate(std::size_t begin, std::size_t end);
  std::vector<double> px_, py_, pz_, mass_;
  std::vector<double> ax_, ay_, az_;
};

/// amcd — Markov Chain Monte Carlo (embarrassingly parallel compute).
class Amcd final : public MicroKernel {
 public:
  std::string tag() const override { return "amcd"; }
  std::string fullName() const override {
    return "Markov Chain Monte Carlo method";
  }
  std::string properties() const override {
    return "Embarrassingly parallel: peak compute performance";
  }
  void setup(std::size_t n, std::uint64_t seed) override;
  void runSerial() override;
  void runParallel(ThreadPool& pool) override;
  bool verify() const override;
  perfmodel::WorkProfile currentProfile() const override;

 private:
  double chain(std::uint64_t seed, std::size_t steps) const;
  std::size_t samples_ = 0;
  std::uint64_t seed_ = 0;
  double estimate_ = 0.0;
};

/// spvm — CSR sparse matrix-vector multiply with skewed rows (imbalance).
class Spvm final : public MicroKernel {
 public:
  std::string tag() const override { return "spvm"; }
  std::string fullName() const override {
    return "Sparse Vector-Matrix Multiplication";
  }
  std::string properties() const override { return "Load imbalance"; }
  void setup(std::size_t n, std::uint64_t seed) override;
  void runSerial() override;
  void runParallel(ThreadPool& pool) override;
  bool verify() const override;
  perfmodel::WorkProfile currentProfile() const override;

 private:
  void multiplyRows(std::size_t rowBegin, std::size_t rowEnd);
  std::size_t rows_ = 0;
  std::vector<std::size_t> rowPtr_;
  std::vector<std::uint32_t> cols_;
  std::vector<double> vals_, x_, y_, expected_;
};

}  // namespace tibsim::kernels
