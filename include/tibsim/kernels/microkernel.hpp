#pragma once
// The micro-kernel suite of Table 2: eleven small HPC kernels that stress
// different architectural features. Each kernel has a real, verifiable
// implementation (serial + fork-join parallel) used by the native benchmarks
// and the test suite, plus a machine-independent reference WorkProfile at the
// Section-3 evaluation size, which the execution model converts into
// per-platform time and energy for Figures 3 and 4.

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tibsim/common/thread_pool.hpp"
#include "tibsim/perfmodel/work_profile.hpp"

namespace tibsim::kernels {

class MicroKernel {
 public:
  virtual ~MicroKernel() = default;

  /// Short tag from Table 2, e.g. "vecop".
  virtual std::string tag() const = 0;
  virtual std::string fullName() const = 0;
  /// The "Properties" column of Table 2.
  virtual std::string properties() const = 0;

  /// Allocate and initialise working data for problem size n (meaning is
  /// kernel-specific: element count, matrix dimension, body count, ...).
  virtual void setup(std::size_t n, std::uint64_t seed) = 0;

  /// One iteration on one thread. Requires setup() first.
  virtual void runSerial() = 0;

  /// One iteration using all threads of the pool (OpenMP-style fork-join).
  virtual void runParallel(ThreadPool& pool) = 0;

  /// Validate the output of the most recent run. Requires a prior run.
  virtual bool verify() const = 0;

  /// Work characterisation of one iteration at the *currently configured*
  /// size (flops, DRAM bytes, pattern).
  virtual perfmodel::WorkProfile currentProfile() const = 0;

  /// Work characterisation at the fixed evaluation size used by the paper's
  /// Section 3 experiments (identical across platforms).
  perfmodel::WorkProfile referenceProfile() const;
};

/// All 11 kernels, in Table 2 order.
std::vector<std::unique_ptr<MicroKernel>> makeSuite();

/// Kernel by tag ("vecop", "dmmm", ...). Throws ContractError if unknown.
std::unique_ptr<MicroKernel> makeKernel(std::string_view tag);

/// The 11 tags in Table 2 order.
const std::vector<std::string>& suiteTags();

/// Reference profile lookup without instantiating the kernel.
perfmodel::WorkProfile referenceProfileFor(std::string_view tag);

}  // namespace tibsim::kernels
