#pragma once
// Switched-Ethernet fabric model: the Tibidabo network is a tree of 48-port
// 1 GbE switches with 8 Gb/s bisection bandwidth and at most three switch
// hops (Section 4). The fabric owns per-node uplink/downlink occupancy and
// a shared core capacity so concurrent transfers contend realistically.

#include <cstdint>
#include <vector>

#include "tibsim/common/assert.hpp"
#include "tibsim/obs/link_stats.hpp"

namespace tibsim::net {

struct TopologySpec {
  int nodes = 2;
  int nodesPerLeafSwitch = 32;         ///< ports used for nodes on each leaf
  double linkRateBytesPerS = 125.0e6;  ///< 1 GbE
  double bisectionBytesPerS = 1.0e9;   ///< 8 Gb/s core capacity
  double switchLatency = 2.0e-6;       ///< per-hop cut-through latency
};

/// Tracks wire-level occupancy. Not tied to the DES: callers pass the
/// current simulated time and get back the arrival time; the class keeps
/// per-resource next-free bookkeeping, which is valid because simulation
/// events execute in time order.
class Fabric {
 public:
  /// `telemetry` enables the per-link counter blocks; the structural
  /// occupancy model (and every arrival time) is identical either way.
  explicit Fabric(TopologySpec spec, bool telemetry = true);

  /// Reserve the path src -> dst for `wireBytes` starting no earlier than
  /// `startTime`; returns the time the last byte arrives at dst's NIC.
  double scheduleWire(int src, int dst, double wireBytes, double startTime);

  /// Switch hops between two nodes (1 within a leaf, 3 across the core).
  int hopCount(int src, int dst) const;

  /// Conservative-synchronisation lookahead for sharded simulation: every
  /// wire transfer (any node pair, any size) arrives no earlier than
  /// submit + one cut-through hop, so a shard scheduler may safely dispatch
  /// all events below min(next event) + lookaheadSeconds(). Zero or
  /// negative (degenerate topologies) means sharding must be disabled.
  double lookaheadSeconds() const { return spec_.switchLatency; }

  bool sameLeaf(int src, int dst) const;

  const TopologySpec& spec() const { return spec_; }
  double totalWireBytes() const { return totalWireBytes_; }
  std::uint64_t transferCount() const { return transferCount_; }
  /// Total time transfers spent queued behind busy links (contention).
  double totalQueueingSeconds() const { return totalQueueingSeconds_; }

  bool telemetryEnabled() const { return telemetry_; }

  /// Per-link occupancy counters folded per link class. Every counter is
  /// zero when the fabric was built with telemetry disabled.
  obs::LinkStats linkStats() const;

 private:
  struct Resource {
    double rateBytesPerS = 0.0;
    double nextFree = 0.0;
    // Telemetry block (only written when telemetry_ is set).
    double busySeconds = 0.0;
    double bytes = 0.0;
    double queueSeconds = 0.0;
    std::uint64_t transfers = 0;
  };

  /// Serialise through one resource; returns completion time. Queueing
  /// delay for this occupancy lands in `delayHistogram`.
  double occupy(Resource& resource, obs::DurationHistogram& delayHistogram,
                double bytes, double earliest);

  static void fold(const Resource& resource, obs::LinkKindCounters& into);

  TopologySpec spec_;
  bool telemetry_;
  std::vector<Resource> uplink_;    // node NIC -> leaf switch
  std::vector<Resource> downlink_;  // leaf switch -> node NIC
  Resource core_;                   // shared bisection capacity
  obs::DurationHistogram uplinkDelay_;
  obs::DurationHistogram coreDelay_;
  obs::DurationHistogram downlinkDelay_;
  double totalWireBytes_ = 0.0;
  double totalQueueingSeconds_ = 0.0;
  std::uint64_t transferCount_ = 0;
};

}  // namespace tibsim::net
