#pragma once
// Communication protocol stack models (Section 4.1).
//
// The paper compares MPI over TCP/IP with MPI over Open-MX on two board
// types. The measurable differences come from four places, all modelled
// explicitly:
//   1. per-message software cost (syscalls, interrupts, stack traversal),
//      which scales with 1/f and with the core's micro-architecture;
//   2. per-segment software cost (TCP segments at the 1500-byte MTU and
//      pays a large per-packet price; Open-MX uses 4 KiB MX frames with a
//      tiny per-frame cost), which sets the large-message bandwidth;
//   3. copy passes (TCP: two per side; Open-MX eager: one per side;
//      Open-MX rendezvous >= 32 KiB: zero-copy send, single-copy receive);
//   4. NIC attachment: PCIe adds ~1 us per message; the Arndale's USB 3.0
//      path adds a large frequency-insensitive per-message cost and a
//      per-byte cost that caps bandwidth well below line rate.

#include <cstddef>
#include <string>

#include "tibsim/arch/platform.hpp"

namespace tibsim::net {

enum class Protocol { TcpIp, OpenMx };

std::string toString(Protocol protocol);

/// Software/hardware cost of one message on one endpoint pair.
struct MessageCosts {
  double senderSeconds = 0.0;    ///< host CPU time on the sender
  double receiverSeconds = 0.0;  ///< host CPU time on the receiver
  double wireSeconds = 0.0;      ///< serialisation time on the slowest stage
  bool rendezvous = false;       ///< requires matching recv before data moves

  double total() const { return senderSeconds + wireSeconds + receiverSeconds; }
};

/// Cost model for (protocol, platform, frequency). Stateless; cheap to copy.
class ProtocolModel {
 public:
  ProtocolModel(Protocol protocol, const arch::Platform& platform,
                double frequencyHz);

  Protocol protocol() const { return protocol_; }
  double frequencyHz() const { return frequencyHz_; }
  std::size_t rendezvousThreshold() const { return rendezvousThreshold_; }

  /// Endpoint costs of a message of `bytes` payload (excluding switches).
  MessageCosts messageCosts(std::size_t bytes) const;

  /// One-way small-to-large message latency between two directly connected
  /// boards through one switch — what the IMB ping-pong test reports.
  double pingPongLatency(std::size_t bytes) const;

  /// Sustained bandwidth (payload bytes/s) for back-to-back messages of the
  /// given size — the pipelined bottleneck stage.
  double effectiveBandwidth(std::size_t bytes) const;

 private:
  double cyclesToSeconds(double cycles) const;
  double stackArchFactor() const;  ///< cycle-count scaling vs Cortex-A9
  double memcpyBytesPerS() const;

  Protocol protocol_;
  arch::Platform platform_;
  double frequencyHz_;

  // Protocol constants (set from `protocol_`):
  double baseCyclesPerSide_ = 0.0;  ///< per-message, in Cortex-A9 cycles
  double perSegmentCycles_ = 0.0;   ///< per-segment, per side
  double segmentBytes_ = 1500.0;
  double wireEfficiency_ = 0.94;    ///< goodput fraction of link rate
  std::size_t rendezvousThreshold_ = 0;
  double copyPassesSender_ = 0.0;
  double copyPassesReceiver_ = 0.0;

  // NIC attachment constants:
  double nicPerMessageSeconds_ = 0.0;   ///< frequency-insensitive
  double nicPerByteSeconds_ = 0.0;      ///< controller DMA path
  double nicPerByteCycles_ = 0.0;       ///< host-stack per byte (USB)
};

/// Latency-penalty estimate from Section 4.1: a given total communication
/// latency inflates application execution time by roughly this factor,
/// scaled from the EEE study's Sandy Bridge result (100 us => +90 %) by the
/// ratio of single-core performance.
double latencyExecutionTimePenalty(double latencySeconds,
                                   double relativeSingleCorePerformance);

}  // namespace tibsim::net
