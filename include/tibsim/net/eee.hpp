#pragma once
// Energy Efficient Ethernet (IEEE 802.3az) model.
//
// The Section 4.1 latency-penalty estimate comes from Saravanan, Carpenter
// and Ramirez's EEE study (ISPASS'13): putting the PHY into Low Power Idle
// between messages saves link power but every message that finds the link
// asleep pays the wake transition. This module models that trade-off for a
// 1000BASE-T link so the consequence for HPC traffic (frequent small
// messages) can be quantified against the power saved.

#include <cstddef>

namespace tibsim::net {

class EnergyEfficientEthernet {
 public:
  struct Config {
    // 802.3az 1000BASE-T transition times.
    double wakeSeconds = 16.5e-6;   ///< LPI -> active (Tw)
    double sleepSeconds = 182.0e-6; ///< active -> LPI entry (Ts)
    /// The PHY enters LPI after this much idle (driver policy).
    double idleEntrySeconds = 40.0e-6;
    double activePhyWatts = 0.7;    ///< one side of a 1000BASE-T link
    double lpiPowerFraction = 0.10; ///< LPI power relative to active
    bool enabled = true;
  };

  EnergyEfficientEthernet() : EnergyEfficientEthernet(Config{}) {}
  explicit EnergyEfficientEthernet(Config config);

  const Config& config() const { return config_; }

  /// Extra latency experienced by a message that arrives `gapSeconds`
  /// after the previous one (0 if the link had no time to enter LPI).
  double addedLatencySeconds(double gapSeconds) const;

  /// Average PHY power for periodic traffic: messages of `wireSeconds`
  /// duration every `intervalSeconds`.
  double averagePhyWatts(double wireSeconds, double intervalSeconds) const;

  /// Fraction of link energy saved vs an always-on PHY for that pattern.
  double energySavingFraction(double wireSeconds,
                              double intervalSeconds) const;

  /// Effective one-way message latency including the expected wake cost.
  double effectiveLatencySeconds(double baseLatencySeconds,
                                 double intervalSeconds) const;

 private:
  Config config_;
};

}  // namespace tibsim::net
