#pragma once
// The socbench campaign driver: selects experiments from the registry by
// glob, schedules them (and their inner sweep cells) on a shared TaskPool,
// emits per-experiment JSON/CSV artefacts, and prints the run summary with
// per-experiment wall-clock and cell-count instrumentation. The emitted
// JSON contains no timings, so campaign output is byte-identical across
// runs and job counts.

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "tibsim/common/result_set.hpp"
#include "tibsim/core/experiment.hpp"

namespace tibsim::core {

struct CampaignOptions {
  std::vector<std::string> patterns;  ///< globs over names; empty = all
  int jobs = 1;                       ///< <1 means hardware concurrency
  std::uint64_t seed = 42;
  std::string jsonDir;  ///< write <dir>/<name>.json when non-empty
  std::string csvDir;   ///< write <dir>/<name>__<artefact>.csv when non-empty
  /// Export trace timelines from traced jobs (--trace-export): experiments
  /// that run traced worlds write Chrome-JSON / Paraver .prv / breakdown
  /// CSV artefacts into this directory via ExperimentContext::
  /// exportArtefact. Empty disables export (the default).
  std::string traceExportDir;
  bool compat = false;  ///< render each experiment's full text report
  bool summary = true;  ///< print the campaign run summary
  /// Execution backend for simulation processes: "" keeps the process-wide
  /// default (fiber, or TIBSIM_SIM_BACKEND), else "fiber"/"thread".
  std::string simBackend;
  /// Trace recording mode for traced worlds: "" keeps the process-wide
  /// default (full, or TIBSIM_TRACE_MODE), else "full"/"sampled"/
  /// "aggregate".
  std::string traceMode;
  /// Event-engine shards per simulated world (--sim-shards): 0 keeps the
  /// process-wide default (1, or TIBSIM_SIM_SHARDS). Campaign artefacts
  /// are byte-identical for any value; >1 partitions each world's switch
  /// tree into conservatively synchronised per-subtree event engines.
  int simShards = 0;
  /// Enable the deterministic stall watchdog (--stall-report): a world
  /// whose event queue drains with ranks still blocked throws with a
  /// per-rank wait-state report instead of the bare deadlock one-liner.
  /// false keeps the process-wide default (off, or TIBSIM_STALL_REPORT).
  bool stallReport = false;
  /// Arm the runtime collective-matching verifier (--verify-collectives):
  /// every collective entry stamps its traffic and any rank matching a
  /// stamp that disagrees with its own active collective throws a
  /// deterministic mismatch report (mpi/collective_verify.hpp). false
  /// keeps the process-wide default (off, or TIBSIM_VERIFY_COLLECTIVES).
  bool verifyCollectives = false;
  /// Content-addressed result cache directory (--cache). When non-empty,
  /// each experiment cell is keyed by core/result_cache.hpp's digest
  /// (experiment + version tag, platform spec bytes, seed, resolved
  /// backend/trace/shard/stall options, binary fingerprint); hits replay
  /// their JSON/CSV byte-identically from disk and misses are stored
  /// atomically after computing. Ignored (with a summary note) when
  /// --trace-export is set: exported timeline artefacts are written
  /// during the run and cannot be replayed. Empty disables caching.
  std::string cacheDir;
  /// Worker processes for uncached cells (--procs). The parent partitions
  /// cache misses across N re-invocations of this binary (an internal
  /// --worker-cells spec), workers write into the cache, and the parent
  /// folds everything in canonical order — artefacts stay byte-identical
  /// for every --procs value. Requires cacheDir; 1 (the default) computes
  /// misses in-process.
  int procs = 1;
  /// Internal (set by the parent via --worker-cells): comma-separated
  /// exact experiment names this process must compute and store into
  /// cacheDir. Non-empty selects exactly these cells, ignoring patterns.
  std::string workerCells;
};

struct ExperimentRun {
  std::string name;
  std::string paperRef;
  std::string title;
  double wallSeconds = 0.0;  ///< instrumentation only; never serialised
  std::size_t cells = 0;     ///< sweep cells executed via ctx.parallelFor
  sim::EngineStats engine;   ///< engine counters over the experiment's sims
  obs::RunCounters counters;  ///< world traffic/trace accounting
  ResultSet results;
  std::string json;  ///< the deterministic result document
  /// True when this run replayed from the result cache (or from a worker
  /// process that stored it there) instead of executing in-process. The
  /// host-only engine fields (hostSeconds, stack high-water, shard-gang
  /// counters) are zero then: no engine ran here.
  bool fromCache = false;
};

struct CampaignResult {
  std::vector<ExperimentRun> runs;  ///< in selection (sorted-name) order
  double wallSeconds = 0.0;
  int jobs = 1;
  std::uint64_t seed = 42;
  std::size_t cacheHits = 0;    ///< cells replayed from the result cache
  std::size_t cacheMisses = 0;  ///< cells computed (in-process or workers)
};

/// Run every experiment matching options.patterns. Reports go to `out`;
/// throws ContractError when a pattern matches nothing.
CampaignResult runCampaign(const CampaignOptions& options, std::ostream& out);

/// The deterministic per-experiment JSON document (schema
/// "socbench-result-v1"): name, paper reference, title, seed, results, and
/// — when the pointers are non-null — the deterministic engine counters
/// (hostSeconds and the host-dependent stack high-water marks are
/// deliberately excluded) and the world traffic/trace accounting.
std::string resultDocument(const Experiment& experiment, std::uint64_t seed,
                           const ResultSet& results,
                           const sim::EngineStats* engine = nullptr,
                           const obs::RunCounters* counters = nullptr);

/// The `socbench` CLI:
///   socbench list [glob...]
///   socbench run [glob...] [--json DIR] [--csv DIR] [--jobs N] [--seed S]
///                [--cache DIR] [--procs N]
///                [--sim-backend fiber|thread]
///                [--trace-mode full|sampled|aggregate]
///                [--trace-export DIR] [--stall-report]
///                [--compat] [--no-summary]
/// Flags accept both "--flag value" and "--flag=value". Numeric flags are
/// validated (a usage error, not an uncaught std::stoi abort). Returns the
/// process exit code.
int socbenchMain(int argc, const char* const* argv);

/// Entry point for the legacy single-figure binaries: behaves like
/// `socbench run <pattern> --compat` with any extra argv flags appended
/// (so `fig03_singlecore --json out/` still works).
int runCompatBinary(const std::string& pattern, int argc,
                    const char* const* argv);

}  // namespace tibsim::core
