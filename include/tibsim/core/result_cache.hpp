#pragma once
// Content-addressed result cache for the socbench campaign driver.
//
// Each experiment cell is keyed by a stable 64-bit digest over everything
// that could change its byte-exact artefacts: the experiment name and its
// version tag, the constexpr Table-1 platform-spec *bytes* (arch/table1.hpp
// field values, not version strings), the campaign seed, the
// trace/shard/stack-relevant campaign options, and a fingerprint of the
// running executable's bytes. On a hit the cell's JSON document, engine
// counters and world accounting replay from disk byte-identically; on a
// miss the freshly computed cell is stored atomically (write-temp +
// rename) so concurrent worker processes never expose torn entries. A
// corrupt or truncated entry is indistinguishable from a miss: load()
// validates the whole document and returns nothing rather than trusting
// partial bytes.
//
// Everything here is host-side I/O running on the campaign driver thread
// (never inside fiber-run simulation code), so host clocks/getpid are fine;
// determinism obligations are only that replayed artefacts match a fresh
// run byte-for-byte, which the cache guarantees by storing the result
// document verbatim and the counters in exact round-trip JSON numbers.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tibsim/common/result_set.hpp"
#include "tibsim/obs/run_counters.hpp"
#include "tibsim/sim/engine_stats.hpp"

namespace tibsim::core {

/// Entry/index schema tag; bump to invalidate every existing cache entry
/// (it participates in the key, so old entries simply stop matching).
inline constexpr const char* kResultCacheSchema = "socbench-cache-v1";

/// FNV-1a 64-bit over an explicit byte stream. Strings are length-prefixed
/// and numbers are folded as fixed-width little-endian bytes, so distinct
/// ingredient sequences cannot collide by concatenation.
class CacheHasher {
 public:
  void bytes(const void* data, std::size_t n);
  void u64(std::uint64_t v);
  void f64(double v);  ///< bit pattern, so -0.0 and 0.0 differ
  void i64(long long v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u64(v ? 1 : 0); }
  void str(const std::string& s);
  std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 1469598103934665603ULL;  // FNV offset basis
};

/// Every ingredient of one cell's cache key. The caller resolves the
/// effective settings (after --sim-backend/--trace-mode/--sim-shards
/// overrides and environment defaults) so "--trace-mode full" and an
/// unset flag that defaults to full produce the same key.
struct CacheKeyInputs {
  std::string experiment;   ///< registry name
  std::string versionTag;   ///< Experiment::versionTag()
  std::uint64_t seed = 0;   ///< campaign seed (pre experiment mixing)
  std::string simBackend;   ///< resolved backend name ("fiber"/"thread")
  std::string traceMode;    ///< resolved trace mode name
  int simShards = 1;        ///< resolved shard count
  bool stallReport = false; ///< resolved watchdog arming
  bool verifyCollectives = false;  ///< resolved collective-verifier arming
  std::uint64_t platformSpecHash = 0;  ///< hashPlatformSpecs()
  std::uint64_t binaryFingerprint = 0; ///< executableFingerprint()
};

/// Digest of every constexpr platform spec in arch/table1.hpp, folded
/// field by field in Table-1 order. Any edited spec number — a frequency,
/// a cache size, a power parameter — changes this hash and therefore
/// invalidates every cached cell, without trusting any version string.
std::uint64_t hashPlatformSpecs();

/// Digest of the running executable's bytes (/proc/self/exe), computed
/// once per process. A rebuilt binary — new code, new compiler, new flags
/// — never replays stale cells. Returns 0 when the executable cannot be
/// read (non-procfs hosts); callers may still cache, just without binary
/// discrimination.
std::uint64_t executableFingerprint();

/// The cell's content address: 16 lowercase hex digits.
std::string cacheKey(const CacheKeyInputs& inputs);

/// Everything needed to replay one experiment cell byte-identically: the
/// result document verbatim, the ResultSet (for CSV/compat rendering), the
/// deterministic engine counters and the world accounting (for the
/// __engine/__worlds/__links CSV artefacts and the run summary). Host-only
/// measurements (wall clock, stack high-water, shard-gang counters) are
/// deliberately absent — a replayed cell ran no engine.
struct CachedRun {
  std::size_t cells = 0;
  sim::EngineStats engine;    ///< deterministic fields only
  obs::RunCounters counters;
  ResultSet results;
  std::string resultJson;     ///< the cold run's document, byte-exact
};

class ResultCache {
 public:
  explicit ResultCache(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Entry file name for a cell ("<experiment>-<key>.json").
  static std::string entryFileName(const std::string& experiment,
                                   const std::string& key);

  /// Replay a cell. Returns nothing on a miss, on a truncated/corrupt
  /// entry, or on any schema/field mismatch — a bad entry is never
  /// trusted and the caller recomputes (and overwrites) it.
  std::optional<CachedRun> load(const std::string& experiment,
                                const std::string& key) const;

  /// Store a freshly computed cell atomically: the entry is written to a
  /// temp file in the cache directory and renamed into place, so a
  /// concurrent reader sees either the old bytes or the new bytes, never
  /// a prefix. Creates the directory on first use.
  void store(const std::string& experiment, const std::string& key,
             const CachedRun& run) const;

  /// Rewrite <dir>/index.json from the entries on disk: every valid entry
  /// in sorted file-name order with its experiment and key. The index is
  /// a deterministic function of the cache content (same entries -> same
  /// bytes), written atomically like the entries themselves.
  void writeIndex() const;

 private:
  std::string dir_;
};

}  // namespace tibsim::core
