#pragma once
// socbench: the evaluation framework that regenerates the paper's figures.
//
// Each experiment couples the platform models (arch), the roofline
// execution model (perfmodel), the power model + simulated meter (power),
// the protocol/fabric models (net) and the cluster simulator (mpi/cluster)
// into the exact measurement procedure the paper describes, and returns
// plain data series the bench binaries print/chart.

#include <array>
#include <string>
#include <vector>

#include "tibsim/arch/platform.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/kernels/stream.hpp"
#include "tibsim/net/protocol.hpp"

namespace tibsim::core {

class ExperimentContext;  // experiment.hpp; sweeps only need parallelFor

// ---------------------------------------------------------------------------
// Figures 3 & 4: micro-kernel suite, frequency sweep
// ---------------------------------------------------------------------------

struct KernelMeasurement {
  std::string kernel;
  double seconds = 0.0;  ///< one iteration
  double watts = 0.0;    ///< platform draw during the kernel
  double energyJ = 0.0;
};

struct SweepPoint {
  double frequencyHz = 0.0;
  double suiteSeconds = 0.0;       ///< one suite iteration (all 11 kernels)
  double suiteEnergyJ = 0.0;       ///< metered energy of one iteration
  double speedupVsBaseline = 0.0;  ///< geomean per-kernel speedup
  double energyVsBaseline = 0.0;   ///< suite energy / baseline suite energy
  std::vector<KernelMeasurement> kernels;
};

struct PlatformSweep {
  std::string platform;
  std::vector<SweepPoint> points;
};

/// Runs the Section 3.1 experiment: every evaluated platform, every DVFS
/// point, serial (Figure 3) or all-cores (Figure 4). Both figures are
/// normalised to the *serial* Tegra 2 @ 1 GHz baseline, as in the paper.
class MicroKernelExperiment {
 public:
  enum class Mode { SingleCore, MultiCore };

  explicit MicroKernelExperiment(Mode mode) : mode_(mode) {}

  /// Serial sweep over every (platform, DVFS point) cell.
  std::vector<PlatformSweep> run() const;

  /// Same sweep with independent cells scheduled through
  /// ctx.parallelFor; results are identical to the serial run.
  std::vector<PlatformSweep> run(const ExperimentContext& ctx) const;

  /// Per-kernel modelled measurements on one configuration.
  static std::vector<KernelMeasurement> measureSuite(
      const arch::Platform& platform, double frequencyHz, int cores);

  /// The Tegra2 @ 1 GHz single-core baseline used by both figures.
  static std::vector<KernelMeasurement> baseline();

 private:
  Mode mode_;
};

// ---------------------------------------------------------------------------
// Figure 5: STREAM
// ---------------------------------------------------------------------------

struct StreamRow {
  /// Index into the per-operation bandwidth arrays, in STREAM's canonical
  /// reporting order (the order Figure 5's panels list them).
  enum Op : std::size_t { Copy = 0, Scale = 1, Add = 2, Triad = 3 };
  static constexpr std::size_t kOps = 4;

  std::string platform;
  std::array<double, kOps> singleCoreBytesPerS{};
  std::array<double, kOps> multiCoreBytesPerS{};
  double efficiencyVsPeak = 0.0;  ///< multicore triad / datasheet peak

  static const char* opName(std::size_t op);          ///< "Copy".."Triad"
  static kernels::StreamOp streamOp(std::size_t op);  ///< kernel-level op
};

std::vector<StreamRow> streamExperiment();

// ---------------------------------------------------------------------------
// Figure 7: interconnect latency / effective bandwidth
// ---------------------------------------------------------------------------

struct PingPongSeries {
  std::string label;  ///< e.g. "Tegra2 OpenMX"
  std::vector<double> messageBytes;
  std::vector<double> latencySeconds;     ///< one-way, IMB convention
  std::vector<double> bandwidthBytesPerS;
};

/// Analytic (protocol-model) ping-pong, matching the IMB measurement.
PingPongSeries pingPongSweep(const arch::Platform& platform,
                             net::Protocol protocol, double frequencyHz,
                             const std::vector<std::size_t>& sizes);

/// End-to-end validation: run the real ping-pong through simMPI on a
/// two-node cluster and report the measured one-way latency.
double simulatedPingPongLatency(const arch::Platform& platform,
                                net::Protocol protocol, double frequencyHz,
                                std::size_t bytes, int repetitions = 16);

/// The sizes used by the latency panels (0..64 B) and bandwidth panels
/// (1 B..16 MiB) of Figure 7.
std::vector<std::size_t> latencyMessageSizes();
std::vector<std::size_t> bandwidthMessageSizes();

// ---------------------------------------------------------------------------
// Figure 6: application scalability on Tibidabo
// ---------------------------------------------------------------------------

struct ScalingPoint {
  int nodes = 0;
  double wallClockSeconds = 0.0;
  double speedup = 0.0;  ///< relative to the smallest feasible node count,
                         ///< assuming linear scaling up to it (paper method)
};

struct ScalingCurve {
  std::string application;
  int baseNodes = 1;  ///< smallest node count that fits the input
  std::vector<ScalingPoint> points;
};

/// Run the five applications of Table 3 on the given cluster at the given
/// node counts (infeasible points are skipped, as on the real machine).
/// With a context, independent (application, node count) cells run through
/// ctx.parallelFor, each on its own ClusterSimulation; the curves are
/// assembled in deterministic order afterwards.
std::vector<ScalingCurve> scalabilityExperiment(
    const cluster::ClusterSpec& spec, const std::vector<int>& nodeCounts);
std::vector<ScalingCurve> scalabilityExperiment(
    const cluster::ClusterSpec& spec, const std::vector<int>& nodeCounts,
    const ExperimentContext& ctx);

// ---------------------------------------------------------------------------
// Table 4: network bytes per FLOP
// ---------------------------------------------------------------------------

struct BytesPerFlopRow {
  std::string platform;
  double gbe1 = 0.0;
  double gbe10 = 0.0;
  double ib40 = 0.0;
};

std::vector<BytesPerFlopRow> bytesPerFlopTable();

}  // namespace tibsim::core
