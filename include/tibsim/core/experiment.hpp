#pragma once
// The socbench experiment framework: every reproduced figure, table and
// ablation study is an Experiment registered in the ExperimentRegistry and
// run through one campaign driver (bench/socbench) instead of a standalone
// main(). An experiment receives an ExperimentContext — deterministic seed,
// shared TaskPool for independent sweep cells, cell accounting — and
// returns a ResultSet.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "tibsim/common/result_set.hpp"
#include "tibsim/common/rng.hpp"
#include "tibsim/common/thread_pool.hpp"
#include "tibsim/obs/run_counters.hpp"
#include "tibsim/sim/engine_stats.hpp"

namespace tibsim::core {

/// Per-run services handed to Experiment::run. Results must not depend on
/// the number of worker threads: parallelFor cells write into pre-sized
/// slots and every stochastic component seeds from rng()/seed().
class ExperimentContext {
 public:
  explicit ExperimentContext(std::uint64_t seed, TaskPool* pool = nullptr)
      : seed_(seed), pool_(pool) {}

  /// The experiment's own deterministic seed (campaign seed mixed with the
  /// experiment name, so experiments never share RNG streams).
  std::uint64_t seed() const { return seed_; }

  /// An independent RNG stream for this experiment; distinct `stream`
  /// values give uncorrelated generators within one experiment.
  Rng rng(std::uint64_t stream = 0) const {
    return Rng(seed_ ^ (0x6a09e667f3bcc909ULL * (stream + 1)));
  }

  /// Run fn(i) for i in [0, n): the parallel-sweep primitive for
  /// independent cells (platform x DVFS point, application x node count).
  /// Runs on the campaign TaskPool when one is attached, serially
  /// otherwise; either way fn must only write to its own slot i.
  void parallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& fn) const;

  /// Total sweep cells executed through parallelFor, for the run summary.
  std::size_t cellsExecuted() const { return cells_.load(); }

  /// Fold a simulation's engine counters into this experiment's totals.
  /// Call once per Simulation/MpiWorld run (typically from a parallelFor
  /// cell with `result.stats.engine`). Thread-safe, and totals do not
  /// depend on --jobs: records are re-sorted into a canonical order before
  /// the (rounding-sensitive) double sums are taken.
  void recordEngineStats(const sim::EngineStats& stats) const;

  /// Engine counters accumulated so far across every recorded simulation.
  sim::EngineStats engineStats() const;

  /// Fold one world's traffic/trace accounting into this experiment's
  /// totals. Thread-safe; totals are --jobs-independent (canonical-order
  /// folding, like recordEngineStats).
  void recordRunCounters(const obs::RunCounters& counters) const;

  /// Traffic/trace accounting accumulated across every recorded world.
  obs::RunCounters runCounters() const;

  /// Directory for exported trace artefacts (--trace-export). Empty means
  /// export is disabled; experiments should skip rendering exports then.
  void setTraceExportDir(std::string dir) { traceExportDir_ = std::move(dir); }
  const std::string& traceExportDir() const { return traceExportDir_; }
  bool traceExportEnabled() const { return !traceExportDir_.empty(); }

  /// Write one exported trace artefact (Chrome JSON, Paraver .prv,
  /// breakdown CSV, ...) to <traceExportDir>/<filename>. Creates the
  /// directory on first use; thread-safe, so traced-job observers inside
  /// parallelFor cells can call it directly. Returns false (and writes
  /// nothing) when export is disabled.
  bool exportArtefact(const std::string& filename,
                      const std::string& content) const;

  /// Record a full mpi::WorldStats in one call: engine counters plus the
  /// message/trace accounting. Templated so core/ needs no mpi/ dependency;
  /// any type with the WorldStats field set works.
  template <typename WorldStatsT>
  void recordWorldStats(const WorldStatsT& stats) const {
    recordEngineStats(stats.engine);
    obs::RunCounters counters;
    counters.worlds = 1;
    counters.messages = stats.messageCount;
    counters.collectiveChecks = stats.collectiveChecks;
    counters.payloadBytes = stats.payloadBytes;
    counters.wireBytes = stats.wireBytes;
    counters.spansRecorded = stats.traceSpansRecorded;
    counters.spansRetained = stats.traceSpansRetained;
    counters.traceMemoryPeakBytes = stats.traceMemoryBytes;
    counters.payloadInlineMessages = stats.payloadInlineMessages;
    counters.payloadPooledMessages = stats.payloadPooledMessages;
    counters.payloadPoolReuses = stats.payloadPoolReuses;
    counters.payloadPoolAllocations = stats.payloadPoolAllocations;
    counters.payloadPoolReturns = stats.payloadPoolReturns;
    counters.payloadPoolTrimmedBuffers = stats.payloadPoolTrimmedBuffers;
    counters.payloadPoolLiveHighWater = stats.payloadPoolLiveHighWater;
    counters.payloadPoolClasses.resize(stats.payloadPoolClassStats.size());
    for (std::size_t c = 0; c < stats.payloadPoolClassStats.size(); ++c) {
      const auto& cs = stats.payloadPoolClassStats[c];
      obs::PayloadClassCounters& out = counters.payloadPoolClasses[c];
      out.classBytes = cs.classBytes;
      out.acquires = cs.acquires;
      out.reuses = cs.reuses;
      out.allocations = cs.allocations;
      out.parked = cs.parked;
    }
    counters.links = stats.linkStats;
    counters.criticalPath = stats.criticalPath;
    recordRunCounters(counters);
  }

 private:
  std::uint64_t seed_;
  TaskPool* pool_;
  std::string traceExportDir_;
  mutable std::atomic<std::size_t> cells_{0};
  mutable std::mutex engineMutex_;
  mutable std::vector<sim::EngineStats> engineRecords_;
  mutable std::vector<obs::RunCounters> counterRecords_;
  mutable std::mutex exportMutex_;
};

/// One reproduced artefact (figure / table / ablation / campaign).
/// Implementations are stateless: run() may be called concurrently on
/// distinct contexts.
class Experiment {
 public:
  virtual ~Experiment() = default;

  /// Registry id, e.g. "fig03" — what `socbench run <glob>` matches.
  virtual std::string name() const = 0;
  /// Where in the paper this artefact lives, e.g. "Figure 3".
  virtual std::string paperRef() const = 0;
  /// One-line human description for `socbench list` and report headings.
  virtual std::string title() const = 0;

  /// Cache-invalidation tag for the result cache (core/result_cache.hpp).
  /// The binary fingerprint already invalidates cached cells on any
  /// rebuild; this tag additionally lets an experiment declare a semantic
  /// version, so external inputs the fingerprint cannot see (a data file
  /// an experiment reads, a deliberate re-measurement) can force a miss
  /// without code changes. Bump it whenever the experiment's output
  /// changes for a reason the key's other ingredients do not capture.
  virtual std::string versionTag() const { return "1"; }

  virtual ResultSet run(ExperimentContext& ctx) const = 0;
};

/// Name-indexed collection of experiments. global() returns the process
/// registry with all built-in experiments registered (lazily, so static
/// library link order cannot drop registrations).
class ExperimentRegistry {
 public:
  ExperimentRegistry() = default;

  ExperimentRegistry(const ExperimentRegistry&) = delete;
  ExperimentRegistry& operator=(const ExperimentRegistry&) = delete;

  static ExperimentRegistry& global();

  /// Register an experiment; duplicate names are a contract violation.
  void add(std::unique_ptr<Experiment> experiment);

  std::size_t size() const { return experiments_.size(); }
  /// All registered names, sorted.
  std::vector<std::string> names() const;
  /// nullptr when no experiment has that exact name.
  const Experiment* find(const std::string& name) const;
  /// Experiments whose name matches any of the glob patterns ('*'/'?'),
  /// in sorted name order, each at most once. An empty pattern list
  /// matches everything.
  std::vector<const Experiment*> match(
      const std::vector<std::string>& patterns) const;

  /// Glob match with '*' (any run) and '?' (any one char).
  static bool globMatch(const std::string& pattern, const std::string& text);

 private:
  std::map<std::string, std::unique_ptr<Experiment>> experiments_;
};

/// Convenience base: experiments built from three strings and a run
/// function, the form every built-in registration uses.
class LambdaExperiment final : public Experiment {
 public:
  using RunFn = std::function<ResultSet(ExperimentContext&)>;

  LambdaExperiment(std::string name, std::string paperRef, std::string title,
                   RunFn run, std::string versionTag = "1")
      : name_(std::move(name)),
        paperRef_(std::move(paperRef)),
        title_(std::move(title)),
        run_(std::move(run)),
        versionTag_(std::move(versionTag)) {}

  std::string name() const override { return name_; }
  std::string paperRef() const override { return paperRef_; }
  std::string title() const override { return title_; }
  std::string versionTag() const override { return versionTag_; }
  ResultSet run(ExperimentContext& ctx) const override { return run_(ctx); }

 private:
  std::string name_;
  std::string paperRef_;
  std::string title_;
  RunFn run_;
  std::string versionTag_;
};

/// Mix a campaign-level seed with an experiment name into the
/// experiment-level seed (FNV-1a over the name, xor-folded with the seed).
std::uint64_t experimentSeed(std::uint64_t campaignSeed,
                             const std::string& name);

}  // namespace tibsim::core
