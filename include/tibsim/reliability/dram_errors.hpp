#pragma once
// DRAM reliability model (Section 6.3).
//
// The paper cites Schroeder et al. ("DRAM errors in the wild"): 4-20 % of
// DIMMs encounter a correctable error per year, and concludes that a
// 1,500-node machine with 2 DIMMs per node has a ~30 % probability of an
// error on any given day — which is why the lack of ECC in mobile memory
// controllers matters. This module reproduces that estimate analytically
// and with a Monte-Carlo cross-check, and models the consequence of
// uncorrected errors on long-running jobs.

#include <cstdint>

#include "tibsim/common/rng.hpp"

namespace tibsim::reliability {

struct DramErrorModel {
  /// Probability that one DIMM sees at least one correctable error per
  /// year. Schroeder et al. report 4-20 % depending on platform; the
  /// paper's "~30 % per day for 1,500 nodes" arithmetic corresponds to the
  /// low end of that band, which is the default here.
  double dimmAnnualErrorProbability = 0.045;
  int dimmsPerNode = 2;

  /// Per-DIMM daily error probability (constant hazard rate).
  double dimmDailyErrorProbability() const;

  /// P(at least one error anywhere in the system on a given day).
  double systemDailyErrorProbability(int nodes) const;

  /// Expected errors per day across the system.
  double expectedErrorsPerDay(int nodes) const;

  /// Monte-Carlo estimate of the system daily error probability (for
  /// validating the closed form; `days` trials).
  double monteCarloDailyErrorProbability(int nodes, int days,
                                         std::uint64_t seed) const;

  /// Without ECC a correctable error becomes silent data corruption or a
  /// crash; assuming any error kills the job, this is the probability a
  /// job of `hours` on `nodes` nodes completes unharmed.
  double jobSurvivalProbability(int nodes, double hours) const;

  /// Expected useful work fraction with checkpoint/restart every
  /// `checkpointHours` given the above failure process (first-order model:
  /// each failure loses half a checkpoint interval plus the restart cost).
  double effectiveThroughput(int nodes, double checkpointHours,
                             double checkpointCostHours) const;
};

}  // namespace tibsim::reliability
