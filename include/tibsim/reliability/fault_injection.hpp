#pragma once
// Fault-injection harness closing the loop on Section 6.3: the DRAM
// reliability model says how often a non-ECC mobile memory system takes a
// bit flip; this module injects one such fault into a live stepped
// collective run and demonstrates that the runtime collective verifier
// (--verify-collectives) turns the resulting silent control-flow
// divergence into a deterministic, attributed mismatch report instead of
// a hang. The divergence is data-driven (the flip corrupts a convergence
// residual, which then skips the step's allreduce), so the static
// collective-match lint rule cannot see it — exactly the class of defect
// the dynamic verifier exists to catch.

#include <cstdint>
#include <string>

#include "tibsim/mpi/simmpi.hpp"
#include "tibsim/reliability/dram_errors.hpp"

namespace tibsim::reliability {

/// Where the injected fault strikes, sampled deterministically from a
/// seeded Rng so the same (ranks, steps, seed) always plans the same
/// strike. The DRAM model's system-level hazard rides along for reporting.
struct FaultPlan {
  int victimRank = 0;
  int victimStep = 1;
  double dailyErrorProbability = 0.0;  ///< model hazard backing the draw
};

/// Plan one bit-flip strike: a uniform victim rank and a uniform step in
/// [1, steps) — never step 0, so the verifier always sees a clean prefix
/// before the divergence.
FaultPlan planCollectiveFault(const DramErrorModel& model, int ranks,
                              int steps, std::uint64_t seed);

/// Run a hydro-style stepped loop (compute, allreduceMax convergence
/// test, barrier) of `steps` iterations with the planned fault injected:
/// at the victim's step the flip zeroes its residual, its control flow
/// takes the "already converged" branch and skips the allreduce while
/// still entering the barrier. The world runs with verifyCollectives
/// forced on; returns the mismatch report starting at its
/// "collective mismatch" marker (empty if the run — unexpectedly —
/// completes). Every byte of the report is simulation-derived, so it is
/// identical across backends and shard counts.
std::string runCollectiveFaultDemo(mpi::WorldConfig config, int ranks,
                                   int steps, const FaultPlan& plan);

}  // namespace tibsim::reliability
