#pragma once
// GROMACS-style molecular dynamics (short-range Lennard-Jones).
//
//  * LennardJonesMd — a real cell-list MD engine with velocity-Verlet
//    integration in a periodic box, validated by the tests (momentum
//    conservation, bounded energy drift);
//  * MdBenchmark — the distributed skeleton: spatial domain decomposition,
//    per-step boundary-particle exchange with the neighbour ranks and a
//    global energy reduction. The reference input fits in the memory of
//    two Tibidabo nodes (as in the paper), and scalability improves as the
//    input grows.

#include <cstddef>
#include <vector>

#include "tibsim/cluster/cluster.hpp"
#include "tibsim/mpi/simmpi.hpp"

namespace tibsim::apps {

/// Real cell-list Lennard-Jones MD in a cubic periodic box.
class LennardJonesMd {
 public:
  struct Params {
    std::size_t particles = 256;
    double boxSize = 8.0;      ///< in units of sigma
    double cutoff = 2.5;       ///< interaction cutoff (sigma)
    double dt = 0.004;         ///< integration step (LJ time units)
    std::uint64_t seed = 1234;
  };

  explicit LennardJonesMd(Params params);

  /// Advance one velocity-Verlet step.
  void step();

  double kineticEnergy() const;
  double potentialEnergy() const;
  double totalEnergy() const { return kineticEnergy() + potentialEnergy(); }
  /// Total momentum magnitude (should stay ~0).
  double momentumNorm() const;
  std::size_t size() const { return px_.size(); }
  const Params& params() const { return params_; }

 private:
  void computeForces();
  void buildCells();
  double minimumImage(double d) const;

  Params params_;
  std::size_t cellsPerSide_ = 1;
  std::vector<double> px_, py_, pz_;
  std::vector<double> vx_, vy_, vz_;
  std::vector<double> fx_, fy_, fz_;
  std::vector<std::vector<int>> cells_;
  double potential_ = 0.0;
};

/// Distributed GROMACS-like benchmark skeleton (strong scaling).
class MdBenchmark {
 public:
  struct Params {
    std::size_t atoms = 300'000;  ///< fits two Tibidabo nodes
    int steps = 50;
  };

  /// GROMACS keeps far more than the bare coordinates per atom: neighbour
  /// lists, exclusions, force buffers per thread, and communication
  /// staging — ~5 KB/atom at this input's density.
  static double bytesPerAtom() { return 5000.0; }
  static int minimumNodes(const cluster::ClusterSpec& spec,
                          std::size_t atoms);
  static mpi::MpiWorld::RankBody rankBody(Params params);
};

}  // namespace tibsim::apps
