#pragma once
// Task farm: the master/worker throughput proxy (Monte Carlo batches,
// parameter sweeps, render farms — the other canonical cluster workload
// next to the paper's tightly-coupled HPC codes).
//
// Rank 0 is the master. It seeds every worker with one task, then sits in a
// wildcard receive (kAnySource): whichever worker finishes first gets the
// next task — classic self-scheduling work-stealing, so faster-draining
// workers automatically take more of the queue. Task costs are drawn
// deterministically from the farm seed, and the wildcard match order is the
// engine's canonical delivery order, so the whole farm is byte-reproducible
// for every --sim-shards value and both execution backends even at
// thousands of workers.

#include <cstdint>
#include <vector>

#include "tibsim/mpi/simmpi.hpp"

namespace tibsim::apps {

class TaskFarm {
 public:
  /// Master rank; everyone else is a worker (needs >= 2 ranks).
  static constexpr int kMasterRank = 0;

  struct Params {
    int tasks = 256;                 ///< total tasks in the queue
    double meanTaskSeconds = 1e-3;   ///< costs ~ Uniform(0.5, 1.5) * mean
    std::uint64_t seed = 42;         ///< task-cost stream seed
    /// Optional result sink (single-threaded sim, so a plain pointer is
    /// safe): tasks completed per world rank, filled by the master.
    std::vector<std::uint64_t>* tasksPerWorkerOut = nullptr;
  };

  static mpi::MpiWorld::RankBody rankBody(Params params);
};

}  // namespace tibsim::apps
