#pragma once
// HYDRO: a 2-D Eulerian hydrodynamics code (RAMSES-derived in the paper).
//
//  * EulerSolver2D — a real 2-D compressible-Euler solver (Lax–Friedrichs
//    with a CFL-limited time step), validated on a Sod shock tube by the
//    tests (exact mass conservation, positivity, sensible wave speeds);
//  * HydroBenchmark — the distributed skeleton: row-striped domain, two
//    halo exchanges and one global dt reduction per step. Strong scaling
//    degrades past ~16 nodes as halo traffic and the latency-bound
//    reduction stop shrinking with the per-rank compute.

#include <cstddef>
#include <vector>

#include "tibsim/cluster/cluster.hpp"
#include "tibsim/mpi/simmpi.hpp"

namespace tibsim::apps {

/// Real 2-D compressible Euler solver (first-order Lax-Friedrichs).
class EulerSolver2D {
 public:
  /// Conserved variables per cell.
  struct State {
    double rho = 1.0;   ///< density
    double momx = 0.0;  ///< x-momentum
    double momy = 0.0;  ///< y-momentum
    double energy = 2.5;  ///< total energy
  };

  EulerSolver2D(std::size_t nx, std::size_t ny, double gamma = 1.4);

  /// Initialise the classic Sod shock tube along x.
  void initSodShockTube();

  State& at(std::size_t i, std::size_t j);
  const State& at(std::size_t i, std::size_t j) const;

  /// Advance one step with the given CFL number; returns the dt used.
  double step(double cfl = 0.4);

  double totalMass() const;
  double totalEnergy() const;
  /// Largest signal speed currently on the grid (|u| + sound speed).
  double maxWaveSpeed() const;

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  double time() const { return time_; }

 private:
  struct Flux {
    double rho, momx, momy, energy;
  };
  Flux physicalFluxX(const State& s) const;
  Flux physicalFluxY(const State& s) const;
  double pressure(const State& s) const;
  double soundSpeed(const State& s) const;

  std::size_t nx_, ny_;
  double gamma_;
  double dx_ = 1.0, dy_ = 1.0;
  double time_ = 0.0;
  std::vector<State> cells_, next_;
};

/// Distributed HYDRO-like benchmark skeleton (strong scaling).
class HydroBenchmark {
 public:
  struct Params {
    std::size_t nx = 4096;  ///< the paper-scale global grid
    std::size_t ny = 4096;
    int steps = 20;
    /// asyncRankBody: ranks per row-group communicator (the two-level CFL
    /// reduction runs group-local, then across group leaders).
    int groupSize = 8;
  };

  static mpi::MpiWorld::RankBody rankBody(Params params);

  /// Communication-avoiding variant of rankBody: halo exchanges run as
  /// isend/irecv on a dup()ed communicator with the interior update
  /// overlapping the in-flight ghosts, and the per-step CFL reduction is
  /// two-level — a row-group reduce (split() by rank/groupSize), a
  /// non-blocking iallreduce across the group leaders, then a group-local
  /// broadcast. Same FLOPs and halo bytes as rankBody; only the schedule
  /// differs, so the wall-clock delta is pure overlap + reduction shape.
  static mpi::MpiWorld::RankBody asyncRankBody(Params params);
};

}  // namespace tibsim::apps
