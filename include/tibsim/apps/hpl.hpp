#pragma once
// High-Performance Linpack (Section 4): solve a random dense system in
// double precision.
//
// Two layers:
//  * DenseLu — a real, verifiable right-looking LU factorisation with
//    partial pivoting and triangular solves (the numerics the benchmark is
//    made of), used by the test suite and the quickstart example;
//  * HplBenchmark — the distributed benchmark skeleton: 1-D row
//    block-cyclic LU whose panel broadcasts and trailing updates run on
//    simMPI with modelled costs. This produces the paper's weak-scaling
//    curve (51 % efficiency / ~97 GFLOPS / ~120 MFLOPS/W at 96 nodes).

#include <cstddef>
#include <vector>

#include "tibsim/cluster/cluster.hpp"
#include "tibsim/mpi/simmpi.hpp"

namespace tibsim::apps {

/// Dense LU with partial pivoting on a row-major n x n matrix.
class DenseLu {
 public:
  /// Factor A in place into L\U with row pivoting. Returns false if a zero
  /// pivot made the matrix numerically singular.
  static bool factor(std::vector<double>& a, std::size_t n,
                     std::vector<std::size_t>& pivots);

  /// Solve A x = b given the output of factor(). b is overwritten with x.
  static void solve(const std::vector<double>& lu, std::size_t n,
                    const std::vector<std::size_t>& pivots,
                    std::vector<double>& b);

  /// HPL-style scaled residual ||Ax-b|| / (||A|| ||x|| n eps).
  static double scaledResidual(const std::vector<double>& a,
                               const std::vector<double>& x,
                               const std::vector<double>& b, std::size_t n);
};

/// The distributed benchmark.
class HplBenchmark {
 public:
  struct Params {
    std::size_t n = 0;   ///< global matrix dimension
    std::size_t nb = 128;  ///< panel/block width
  };

  /// FLOP count credited by the HPL rules: 2/3 n^3 + 2 n^2.
  static double flopCount(std::size_t n);

  /// Largest n whose matrix fits the memory of `nodes` nodes of the
  /// cluster at `memoryFraction` of usable DRAM (weak-scaling sizing).
  static std::size_t problemSizeForNodes(const cluster::ClusterSpec& spec,
                                         int nodes,
                                         double memoryFraction = 0.8);

  /// The rank body implementing 1-D row block-cyclic LU.
  static mpi::MpiWorld::RankBody rankBody(Params params);

  /// Run HPL on `nodes` nodes of the cluster (weak-scaled problem) and
  /// return the job result with GFLOPS / efficiency / MFLOPS-per-watt.
  static cluster::JobResult run(cluster::ClusterSimulation& sim, int nodes,
                                double memoryFraction = 0.8);

  /// As above, with per-job options (tracing, auto-sized fiber stacks,
  /// observer) forwarded to ClusterSimulation::runJob.
  static cluster::JobResult run(cluster::ClusterSimulation& sim, int nodes,
                                double memoryFraction,
                                const cluster::JobOptions& options);
};

}  // namespace tibsim::apps
