#pragma once
// SPECFEM3D: spectral-element seismic wave propagation.
//
//  * AcousticWave2D — a real 2-D acoustic wave-equation solver (4th-order
//    space, 2nd-order leapfrog time, Ricker source), validated by the tests
//    (bounded energy after source cutoff, correct propagation speed);
//  * SpecfemBenchmark — the distributed skeleton: per element the
//    spectral-element operator costs thousands of FLOPs while only surface
//    data is exchanged, so compute dominates and strong scaling stays near
//    ideal to 96+ nodes — exactly the behaviour Figure 6 shows.

#include <cstddef>
#include <vector>

#include "tibsim/cluster/cluster.hpp"
#include "tibsim/mpi/simmpi.hpp"

namespace tibsim::apps {

/// Real 2-D acoustic wave solver on a uniform grid.
class AcousticWave2D {
 public:
  struct Params {
    std::size_t n = 128;        ///< grid edge
    double waveSpeed = 1.0;     ///< homogeneous medium speed
    double dx = 1.0;
    double cfl = 0.4;
    double sourceFrequency = 0.05;  ///< Ricker centre frequency (1/steps)
  };

  explicit AcousticWave2D(Params params);

  /// Advance one time step (Ricker source injected at the grid centre).
  void step();

  double time() const { return time_; }
  int stepsTaken() const { return steps_; }
  /// Discrete field energy (kinetic + strain).
  double energy() const;
  /// Radius of the wavefront: distance from the source to the farthest
  /// point whose |u| exceeds 1 % of the field maximum.
  double wavefrontRadius() const;
  double at(std::size_t i, std::size_t j) const;

 private:
  Params params_;
  double dt_ = 0.0;
  double time_ = 0.0;
  int steps_ = 0;
  std::vector<double> prev_, curr_, next_;
};

/// Distributed SPECFEM3D-like benchmark skeleton (strong scaling).
class SpecfemBenchmark {
 public:
  struct Params {
    std::size_t elements = 60'000;  ///< fits one Tibidabo node
    int steps = 40;
  };

  static double bytesPerElement() { return 10'000.0; }
  static int minimumNodes(const cluster::ClusterSpec& spec,
                          std::size_t elements);
  static mpi::MpiWorld::RankBody rankBody(Params params);
};

}  // namespace tibsim::apps
