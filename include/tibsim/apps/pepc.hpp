#pragma once
// PEPC: a tree code for the N-body problem (long-range Coulomb forces).
//
//  * BarnesHutTree — a real octree force solver with a multipole acceptance
//    criterion, validated against direct summation in the tests;
//  * PepcBenchmark — the distributed skeleton: per step, local tree build,
//    branch-node exchange with every peer (this all-to-all-ish traffic and
//    the tree's load imbalance are what limits PEPC's strong scaling), and
//    the tree-walk force evaluation. The reference input is sized so it
//    needs at least 24 Tibidabo nodes, as in the paper.

#include <cstddef>
#include <vector>

#include "tibsim/cluster/cluster.hpp"
#include "tibsim/mpi/simmpi.hpp"

namespace tibsim::apps {

/// Real serial Barnes-Hut octree for gravitational/Coulomb forces.
class BarnesHutTree {
 public:
  struct Body {
    double x = 0.0, y = 0.0, z = 0.0;
    double charge = 0.0;  ///< mass/charge (sign allowed)
  };
  struct Force {
    double fx = 0.0, fy = 0.0, fz = 0.0;
  };

  /// Build the tree over the bodies (positions must be finite).
  explicit BarnesHutTree(std::vector<Body> bodies);

  /// Force on body i with opening angle theta (0 = exact direct sum).
  Force forceOn(std::size_t i, double theta) const;

  /// All forces; theta = 0.5 is the usual accuracy/speed tradeoff.
  std::vector<Force> allForces(double theta) const;

  /// Direct O(n^2) reference.
  std::vector<Force> directForces() const;

  std::size_t size() const { return bodies_.size(); }
  std::size_t nodeCount() const { return nodes_.size(); }

 private:
  struct Node {
    double cx = 0.0, cy = 0.0, cz = 0.0;  ///< cell centre
    double half = 0.0;                    ///< half edge length
    double mx = 0.0, my = 0.0, mz = 0.0;  ///< charge-weighted centroid
    double charge = 0.0;
    int children[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    int body = -1;  ///< leaf body index, -1 if internal/empty
    int count = 0;
  };

  int build(std::vector<int> indices, double cx, double cy, double cz,
            double half, int depth);
  void accumulate(int nodeIndex, std::size_t i, double theta,
                  Force& force) const;

  std::vector<Body> bodies_;
  std::vector<Node> nodes_;
  int root_ = -1;
};

/// Distributed PEPC-like benchmark skeleton.
class PepcBenchmark {
 public:
  struct Params {
    std::size_t particles = 25'000'000;  ///< the >= 24-node reference input
    int steps = 5;
  };

  /// Approximate tree-code memory footprint (particles + tree nodes).
  static double bytesPerParticle() { return 700.0; }

  /// Smallest node count whose memory fits the input (the paper could not
  /// run the reference set below 24 nodes).
  static int minimumNodes(const cluster::ClusterSpec& spec,
                          std::size_t particles);

  static mpi::MpiWorld::RankBody rankBody(Params params);
};

}  // namespace tibsim::apps
