#pragma once
// Roofline-style execution model.
//
//   time = max( flops / achievable_flops , bytes / achievable_bandwidth )
//
// with achievable FLOP rate reduced by a per-micro-architecture scalar-code
// efficiency (compiled HPC kernels reach a small fraction of AVX/NEON peak)
// and by the kernel's own computeEfficiency; achievable bandwidth reduced by
// the platform's measured stream efficiency, a per-pattern factor, and a
// single-core outstanding-miss cap. Multicore time applies Amdahl's law and
// load imbalance. The model's constants are calibrated against the paper's
// Figures 3-5 (see tests/test_calibration.cpp).

#include "tibsim/arch/platform.hpp"
#include "tibsim/perfmodel/work_profile.hpp"

namespace tibsim::perfmodel {

/// Per-micro-architecture efficiency constants.
struct MicroarchEfficiency {
  /// Fraction of per-core peak FP64 a compiled scalar/auto-vectorised HPC
  /// kernel sustains (pipeline hazards, non-FMA ops, address arithmetic).
  double scalarFpEfficiency = 0.5;
  /// Additional multiplier for Irregular/Random-pattern compute (deeper
  /// out-of-order windows hide more of the latency).
  double irregularCodeFactor = 0.9;
};

MicroarchEfficiency efficiencyOf(arch::Microarch microarch);

/// Fraction of *stream* bandwidth a given access pattern achieves.
double patternBandwidthFactor(AccessPattern pattern);

class ExecutionModel {
 public:
  ExecutionModel() = default;

  /// Achievable DRAM bandwidth (bytes/s) for `cores` active cores at CPU
  /// frequency `frequencyHz` with the given access pattern.
  double achievableBandwidth(const arch::Platform& platform,
                             AccessPattern pattern, int cores,
                             double frequencyHz) const;

  /// Achievable FP64 rate (FLOP/s) for one core at `frequencyHz`.
  double achievableFlops(const arch::Platform& platform,
                         const WorkProfile& work, double frequencyHz) const;

  /// Execution time of one iteration of `work` on `cores` cores.
  double time(const arch::Platform& platform, const WorkProfile& work,
              double frequencyHz, int cores) const;

  /// DRAM bandwidth actually consumed while executing `work` (for power).
  double consumedBandwidth(const arch::Platform& platform,
                           const WorkProfile& work, double frequencyHz,
                           int cores) const;
};

}  // namespace tibsim::perfmodel
