#pragma once
// Work characterisation: what a kernel (or an application phase) does, in
// machine-independent terms. The execution model turns a WorkProfile plus a
// Platform into time; the power model turns time plus load into energy.

#include <string>

namespace tibsim::perfmodel {

/// Dominant DRAM access pattern of a piece of work. Determines the fraction
/// of a platform's stream bandwidth the work can realise.
enum class AccessPattern {
  Streaming,  ///< unit-stride reads/writes (vecop, red, STREAM)
  Strided,    ///< constant non-unit stride (3-D stencil planes, FFT stages)
  Blocked,    ///< cache-tiled, high reuse (dmmm, msort runs)
  Spatial,    ///< 2-D neighbourhoods with good locality (2dcon)
  Irregular,  ///< pointer-chasing / indexed gathers (nbody, spvm)
  Random,     ///< near-uniform random (hist updates)
  Resident,   ///< working set fits in cache; DRAM traffic negligible
};

std::string toString(AccessPattern pattern);

/// Machine-independent description of one iteration of a workload.
struct WorkProfile {
  double flops = 0.0;  ///< useful FP64 operations (or ALU ops for int codes)
  double bytes = 0.0;  ///< DRAM traffic generated (read + write)
  AccessPattern pattern = AccessPattern::Streaming;

  /// Kernel-intrinsic fraction of the core's peak issue rate this code can
  /// use even with a perfect memory system (dependency chains, branches,
  /// non-FMA shapes). 1.0 = perfectly dense FMA stream.
  double computeEfficiency = 1.0;

  /// Amdahl parallel fraction of the iteration (msort's merge tail and red's
  /// final reduction are partly serial).
  double parallelFraction = 1.0;

  /// Relative load imbalance across threads: 0 = perfectly balanced,
  /// 0.3 = slowest thread does 30 % more work than the mean (spvm).
  double loadImbalance = 0.0;

  /// Arithmetic intensity in FLOP per DRAM byte.
  double intensity() const { return bytes > 0.0 ? flops / bytes : 1e30; }

  /// Profile for a scaled copy of this work (n x flops and bytes).
  WorkProfile scaled(double factor) const {
    WorkProfile p = *this;
    p.flops *= factor;
    p.bytes *= factor;
    return p;
  }
};

}  // namespace tibsim::perfmodel
