#pragma once
// Compile-time Table 1.
//
// The five platform descriptions (Tegra 2, Tegra 3, Exynos 5250, the Core
// i7-2760QM laptop reference, and the Section 3.1.2 ARMv8 projection) as
// constexpr aggregates, with static_asserts pinning the derived figures to
// the paper's published values:
//
//   * peak FP64 FLOPS  = cores x fmax x FLOPs/cycle  (Table 1 column)
//   * memory bandwidth = the datasheet peak, cross-checked against the
//     channels x width x DDR-rate product
//   * DVFS tables      = ascending frequency, monotone non-decreasing voltage
//
// A typo in any number — a frequency in MHz where Hz was meant, a voltage
// step that goes backwards, a bandwidth that the memory geometry cannot
// deliver — fails the build instead of silently skewing every downstream
// experiment. The runtime Platform objects (src/arch/registry.cpp) are built
// from these specs via fromSpec(), so the values the models consume are
// exactly the values asserted here.

#include <array>
#include <cstddef>

#include "tibsim/arch/platform.hpp"
#include "tibsim/common/units.hpp"

namespace tibsim::arch::table1 {

inline constexpr std::size_t kMaxDvfsPoints = 8;
inline constexpr std::size_t kMaxCacheLevels = 3;

/// Fixed-capacity, constexpr-friendly mirror of SocModel (which needs
/// std::string/std::vector and therefore cannot be a compile-time constant).
struct SocSpec {
  CpuCoreModel core;
  int cores = 1;
  int threadsPerCore = 1;
  std::size_t cacheCount = 0;
  std::array<CacheLevel, kMaxCacheLevels> caches{};
  MemorySystemModel memory;
  bool computeCapableGpu = false;
  std::size_t dvfsCount = 0;
  std::array<OperatingPoint, kMaxDvfsPoints> dvfs{};
};

struct PlatformSpec {
  const char* name = "";
  const char* shortName = "";
  const char* socName = "";
  SocSpec soc;
  double dramBytes = 0.0;
  const char* dramType = "";
  NicAttachment nicAttachment = NicAttachment::Pcie;
  double nicLinkRateBytesPerS = 0.0;
  BoardPowerParams power;
};

// --- compile-time helpers ---------------------------------------------------

constexpr double cAbs(double v) { return v < 0.0 ? -v : v; }

/// Relative floating-point comparison usable in static_assert: products like
/// 1.3e9 x 4 are not bit-equal to the literal 5.2e9.
constexpr bool approxEq(double a, double b, double rel = 1e-9) {
  const double mag = cAbs(a) > cAbs(b) ? cAbs(a) : cAbs(b);
  return cAbs(a - b) <= rel * (mag > 1.0 ? mag : 1.0);
}

constexpr double maxFrequencyHz(const SocSpec& s) {
  return s.dvfs[s.dvfsCount - 1].frequencyHz;
}

/// Peak FP64 FLOP/s of the whole SoC at fmax — the Table 1 GFLOPS column.
constexpr double peakFlops(const SocSpec& s) {
  return s.core.fp64FlopsPerCycle * static_cast<double>(s.cores) *
         maxFrequencyHz(s);
}

/// DVFS table sanity: within capacity, strictly ascending frequencies,
/// monotone non-decreasing positive voltages.
constexpr bool dvfsValid(const SocSpec& s) {
  if (s.dvfsCount == 0 || s.dvfsCount > kMaxDvfsPoints) return false;
  for (std::size_t i = 0; i < s.dvfsCount; ++i) {
    if (s.dvfs[i].frequencyHz <= 0.0 || s.dvfs[i].voltage <= 0.0) return false;
    if (i > 0 && s.dvfs[i].frequencyHz <= s.dvfs[i - 1].frequencyHz)
      return false;
    if (i > 0 && s.dvfs[i].voltage < s.dvfs[i - 1].voltage) return false;
  }
  return true;
}

/// Memory system sanity: positive bandwidths, single-core <= aggregate peak,
/// stream efficiency a fraction, and the quoted peak consistent with what the
/// DDR geometry can deliver (channels x width x 2 transfers/clock x fmem).
/// The band is [0.5, 1.05]: controllers never exceed the wire rate, and a
/// quoted peak under half of it means a units slip somewhere.
constexpr bool memoryValid(const MemorySystemModel& m) {
  if (m.channels <= 0 || m.widthBits <= 0 || m.frequencyHz <= 0.0)
    return false;
  if (m.peakBandwidthBytesPerS <= 0.0 ||
      m.singleCoreBandwidthBytesPerS <= 0.0)
    return false;
  if (m.singleCoreBandwidthBytesPerS > m.peakBandwidthBytesPerS) return false;
  if (m.streamEfficiency <= 0.0 || m.streamEfficiency > 1.0) return false;
  const double wireRate = static_cast<double>(m.channels) *
                          (static_cast<double>(m.widthBits) / 8.0) * 2.0 *
                          m.frequencyHz;
  return m.peakBandwidthBytesPerS >= 0.5 * wireRate &&
         m.peakBandwidthBytesPerS <= 1.05 * wireRate;
}

/// Cache hierarchy sanity: within capacity, strictly growing level sizes,
/// outermost level shared.
constexpr bool cachesValid(const SocSpec& s) {
  if (s.cacheCount == 0 || s.cacheCount > kMaxCacheLevels) return false;
  for (std::size_t i = 0; i < s.cacheCount; ++i) {
    if (s.caches[i].sizeBytes == 0) return false;
    if (i > 0 && s.caches[i].sizeBytes <= s.caches[i - 1].sizeBytes)
      return false;
  }
  return s.caches[s.cacheCount - 1].shared;
}

constexpr bool powerValid(const BoardPowerParams& p) {
  return p.boardStaticW > 0.0 && p.socStaticW > 0.0 &&
         p.corePeakDynamicW > 0.0 && p.memDynamicWPerGBs > 0.0 &&
         p.nicActiveW > 0.0;
}

constexpr bool platformValid(const PlatformSpec& p) {
  return p.soc.cores >= 1 && p.soc.threadsPerCore >= 1 &&
         p.soc.core.fp64FlopsPerCycle > 0.0 && dvfsValid(p.soc) &&
         memoryValid(p.soc.memory) && cachesValid(p.soc) &&
         p.dramBytes > 0.0 && p.nicLinkRateBytesPerS > 0.0 &&
         powerValid(p.power);
}

// --- the specs --------------------------------------------------------------

namespace detail {
using units::gbPerS;
using units::gbps;
using units::ghz;
using units::gib;
using units::mhz;
}  // namespace detail

inline constexpr PlatformSpec kTegra2{
    "NVIDIA Tegra 2 (SECO Q7 module + carrier)",
    "Tegra2",
    "NVIDIA Tegra 2",
    SocSpec{
        CpuCoreModel{Microarch::CortexA9, /*fp64FlopsPerCycle=*/1.0,
                     /*maxOutstandingMisses=*/4, /*issueWidth=*/2.0,
                     /*outOfOrder=*/true},
        /*cores=*/2,
        /*threadsPerCore=*/1,
        /*cacheCount=*/2,
        {{{32 * 1024, false}, {1024 * 1024, true}, {}}},
        MemorySystemModel{/*channels=*/1, /*widthBits=*/32, detail::mhz(333),
                          detail::gbPerS(2.6), /*ecc=*/false,
                          /*streamEfficiency=*/0.62,
                          /*singleCoreBandwidth=*/detail::gbPerS(1.25)},
        /*computeCapableGpu=*/false,
        /*dvfsCount=*/6,
        {{{detail::mhz(216), 0.77},
          {detail::mhz(456), 0.85},
          {detail::mhz(608), 0.91},
          {detail::mhz(760), 0.98},
          {detail::mhz(912), 1.03},
          {detail::ghz(1.0), 1.08},
          {},
          {}}},
    },
    detail::gib(1.0),
    "DDR2-667",
    NicAttachment::Pcie,
    detail::gbps(1.0),
    BoardPowerParams{/*boardStaticW=*/5.2, /*socStaticW=*/1.6,
                     /*corePeakDynamicW=*/0.85, /*memDynamicWPerGBs=*/0.25,
                     /*nicActiveW=*/0.6},
};

inline constexpr PlatformSpec kTegra3{
    "NVIDIA Tegra 3 (SECO CARMA)",
    "Tegra3",
    "NVIDIA Tegra 3",
    SocSpec{
        CpuCoreModel{Microarch::CortexA9, 1.0, 5, 2.0, true},
        /*cores=*/4,
        /*threadsPerCore=*/1,
        /*cacheCount=*/2,
        {{{32 * 1024, false}, {1024 * 1024, true}, {}}},
        MemorySystemModel{1, 32, detail::mhz(750), detail::gbPerS(5.86),
                          false, 0.27, detail::gbPerS(1.9)},
        /*computeCapableGpu=*/false,
        /*dvfsCount=*/7,
        {{{detail::mhz(204), 0.75},
          {detail::mhz(475), 0.84},
          {detail::mhz(640), 0.90},
          {detail::mhz(860), 0.98},
          {detail::ghz(1.0), 1.03},
          {detail::ghz(1.2), 1.11},
          {detail::ghz(1.3), 1.15},
          {}}},
    },
    detail::gib(2.0),
    "DDR3L-1600",
    NicAttachment::Pcie,
    detail::gbps(1.0),
    BoardPowerParams{4.6, 1.5, 1.05, 0.22, 0.6},
};

inline constexpr PlatformSpec kExynos5250{
    "Samsung Exynos 5250 (Arndale 5)",
    "Exynos5250",
    "Samsung Exynos 5 Dual",
    SocSpec{
        CpuCoreModel{Microarch::CortexA15, 2.0, 6, 3.0, true},
        /*cores=*/2,
        /*threadsPerCore=*/1,
        /*cacheCount=*/2,
        {{{32 * 1024, false}, {1024 * 1024, true}, {}}},
        MemorySystemModel{2, 32, detail::mhz(800), detail::gbPerS(12.8),
                          false, 0.52, detail::gbPerS(3.4)},
        /*computeCapableGpu=*/true,  // Mali-T604, experimental OpenCL driver
        /*dvfsCount=*/8,
        {{{detail::mhz(200), 0.85},
          {detail::mhz(400), 0.90},
          {detail::mhz(600), 0.95},
          {detail::mhz(800), 1.00},
          {detail::ghz(1.0), 1.05},
          {detail::ghz(1.2), 1.11},
          {detail::ghz(1.4), 1.17},
          {detail::ghz(1.7), 1.25}}},
    },
    detail::gib(2.0),
    "DDR3L-1600",
    // The Arndale's GbE is reached through the USB 3.0 stack (Table 1 /
    // Figure 7); the board itself exposes only 100 Mb Ethernet.
    NicAttachment::Usb3,
    detail::gbps(1.0),
    BoardPowerParams{4.4, 1.8, 1.9, 0.18, 0.7},
};

inline constexpr PlatformSpec kCorei7_2760qm{
    "Intel Core i7-2760QM (Dell Latitude E6420)",
    "Corei7",
    "Intel Core i7-2760QM",
    SocSpec{
        CpuCoreModel{Microarch::SandyBridge, 8.0, 10, 4.0, true},
        /*cores=*/4,
        /*threadsPerCore=*/2,
        /*cacheCount=*/3,
        {{{32 * 1024, false}, {256 * 1024, false}, {6 * 1024 * 1024, true}}},
        MemorySystemModel{2, 64, detail::mhz(800), detail::gbPerS(25.6),
                          false, 0.57, detail::gbPerS(9.5)},
        /*computeCapableGpu=*/false,  // HD 3000, graphics only
        /*dvfsCount=*/5,
        {{{detail::mhz(800), 0.80},
          {detail::ghz(1.2), 0.88},
          {detail::ghz(1.6), 0.95},
          {detail::ghz(2.0), 1.05},
          {detail::ghz(2.4), 1.15},
          {},
          {},
          {}}},
    },
    detail::gib(8.0),
    "DDR3-1133",
    NicAttachment::OnChip,
    detail::gbps(1.0),
    BoardPowerParams{48.0, 8.0, 9.5, 0.30, 0.8},
};

inline constexpr PlatformSpec kArmv8Quad2GHz{
    "Hypothetical 4-core ARMv8 @ 2 GHz",
    "ARMv8x4",
    "ARMv8 quad (projection)",
    SocSpec{
        // Cortex-A15-class core with FP64 in the NEON SIMD unit: double the
        // per-cycle FP64 throughput (Section 1).
        CpuCoreModel{Microarch::CortexA57, 4.0, 8, 3.0, true},
        /*cores=*/4,
        /*threadsPerCore=*/1,
        /*cacheCount=*/2,
        {{{32 * 1024, false}, {2 * 1024 * 1024, true}, {}}},
        MemorySystemModel{2, 64, detail::mhz(933), detail::gbPerS(25.6),
                          false, 0.60, detail::gbPerS(10.0)},
        /*computeCapableGpu=*/true,
        /*dvfsCount=*/4,
        {{{detail::mhz(500), 0.85},
          {detail::ghz(1.0), 0.95},
          {detail::ghz(1.5), 1.05},
          {detail::ghz(2.0), 1.15},
          {},
          {},
          {},
          {}}},
    },
    detail::gib(4.0),
    "LPDDR4 (projected)",
    NicAttachment::OnChip,
    detail::gbps(10.0),
    BoardPowerParams{4.0, 2.0, 2.2, 0.15, 0.9},
};

/// The evaluated boards, in Table 1 order, plus the projection — the same
/// order PlatformRegistry::all() returns.
inline constexpr std::array<const PlatformSpec*, 5> kAll{
    &kTegra2, &kTegra3, &kExynos5250, &kCorei7_2760qm, &kArmv8Quad2GHz};

// --- compile-time validation ------------------------------------------------

static_assert(platformValid(kTegra2));
static_assert(platformValid(kTegra3));
static_assert(platformValid(kExynos5250));
static_assert(platformValid(kCorei7_2760qm));
static_assert(platformValid(kArmv8Quad2GHz));

// Peak FP64 anchors — the Table 1 GFLOPS column (ARMv8 from Section 3.1.2:
// 4 cores x 2 GHz x 4 FLOPs/cycle = 32 GFLOPS).
static_assert(approxEq(peakFlops(kTegra2.soc), units::gflops(2.0)));
static_assert(approxEq(peakFlops(kTegra3.soc), units::gflops(5.2)));
static_assert(approxEq(peakFlops(kExynos5250.soc), units::gflops(6.8)));
static_assert(approxEq(peakFlops(kCorei7_2760qm.soc), units::gflops(76.8)));
static_assert(approxEq(peakFlops(kArmv8Quad2GHz.soc), units::gflops(32.0)));

// Peak memory bandwidth anchors — the Table 1 GB/s column.
static_assert(approxEq(kTegra2.soc.memory.peakBandwidthBytesPerS,
                       units::gbPerS(2.6)));
static_assert(approxEq(kTegra3.soc.memory.peakBandwidthBytesPerS,
                       units::gbPerS(5.86)));
static_assert(approxEq(kExynos5250.soc.memory.peakBandwidthBytesPerS,
                       units::gbPerS(12.8)));
static_assert(approxEq(kCorei7_2760qm.soc.memory.peakBandwidthBytesPerS,
                       units::gbPerS(25.6)));
static_assert(approxEq(kArmv8Quad2GHz.soc.memory.peakBandwidthBytesPerS,
                       units::gbPerS(25.6)));

// Fmax anchors (Table 1 frequency column).
static_assert(approxEq(maxFrequencyHz(kTegra2.soc), units::ghz(1.0)));
static_assert(approxEq(maxFrequencyHz(kTegra3.soc), units::ghz(1.3)));
static_assert(approxEq(maxFrequencyHz(kExynos5250.soc), units::ghz(1.7)));
static_assert(approxEq(maxFrequencyHz(kCorei7_2760qm.soc), units::ghz(2.4)));
static_assert(approxEq(maxFrequencyHz(kArmv8Quad2GHz.soc), units::ghz(2.0)));

// None of the mobile parts supports ECC (Section 6.3's reliability argument
// depends on this).
static_assert(!kTegra2.soc.memory.eccCapable &&
              !kTegra3.soc.memory.eccCapable &&
              !kExynos5250.soc.memory.eccCapable);

}  // namespace tibsim::arch::table1
