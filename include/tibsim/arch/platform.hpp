#pragma once
// Architectural description of the evaluated platforms (the paper's Table 1).
//
// A Platform = SoC (cores + caches + memory system) + developer-board
// properties (DRAM, NIC attachment, board power). All figures are the
// published datasheet/paper values; the execution and power models consume
// them, so a user can evaluate a hypothetical SoC simply by constructing a
// Platform with different numbers (see PlatformRegistry::armv8Quad2GHz).

#include <cstdint>
#include <string>
#include <vector>

namespace tibsim::arch {

/// CPU micro-architectures that appear in the study.
enum class Microarch {
  CortexA9,     ///< FMA every 2 cycles (1 FLOP/cycle FP64)
  CortexA15,    ///< fully pipelined FMA (2 FLOP/cycle FP64)
  CortexA57,    ///< hypothetical ARMv8: FP64 in NEON (4 FLOP/cycle)
  SandyBridge,  ///< 256-bit AVX: 8 FLOP/cycle FP64
};

std::string toString(Microarch arch);

/// How the Ethernet NIC is attached to the SoC. This dominates small-message
/// latency: the Arndale board reaches its GbE port through the USB 3.0
/// stack, which costs far more host CPU time per message than PCIe.
enum class NicAttachment {
  Pcie,  ///< SECO Q7 / CARMA boards (Tegra 2 / Tegra 3)
  Usb3,  ///< Arndale board (Exynos 5250)
  OnChip ///< integrated controller (server parts, Calxeda/KeyStone-style)
};

std::string toString(NicAttachment attach);

/// One DVFS operating point.
struct OperatingPoint {
  double frequencyHz = 0.0;
  double voltage = 0.0;
};

struct CpuCoreModel {
  Microarch microarch = Microarch::CortexA9;
  double fp64FlopsPerCycle = 1.0;  ///< peak, per core
  int maxOutstandingMisses = 4;    ///< limits achievable memory bandwidth
  double issueWidth = 2.0;
  bool outOfOrder = true;
};

struct CacheLevel {
  std::size_t sizeBytes = 0;
  bool shared = false;
};

struct MemorySystemModel {
  int channels = 1;
  int widthBits = 32;
  double frequencyHz = 0.0;        ///< memory controller clock
  double peakBandwidthBytesPerS = 0.0;
  bool eccCapable = false;         ///< none of the mobile parts support ECC
  /// Fraction of peak bandwidth all cores together achieve on a streaming
  /// (STREAM-like) access pattern; a memory-controller quality figure.
  /// Tegra 3's controller raises the peak far more than the achievable rate,
  /// which is why its efficiency is the lowest of the four (Figure 5).
  double streamEfficiency = 0.6;
  /// Bandwidth one core can extract at the maximum CPU frequency, limited by
  /// outstanding misses x line size / memory latency.
  double singleCoreBandwidthBytesPerS = 0.0;
};

struct SocModel {
  std::string name;
  CpuCoreModel core;
  int cores = 1;
  int threadsPerCore = 1;
  std::vector<CacheLevel> caches;  ///< L1D, L2, [L3]
  MemorySystemModel memory;
  bool computeCapableGpu = false;  ///< Mali-T604 has OpenCL but no driver
  std::vector<OperatingPoint> dvfs;  ///< ascending frequency

  /// Peak FP64 FLOP/s with `activeCores` running at `frequencyHz`.
  double peakFlops(double frequencyHz, int activeCores) const;
  /// Peak FP64 FLOP/s of the whole SoC at its maximum frequency.
  double peakFlops() const;
  double maxFrequencyHz() const;
  double minFrequencyHz() const;
  /// Voltage at a given frequency (linear interpolation between DVFS points).
  double voltageAt(double frequencyHz) const;
};

/// Board-level power parameters, calibrated against the paper's wall-plug
/// measurements (see src/arch/platform_registry.cpp for the derivation).
struct BoardPowerParams {
  double boardStaticW = 0.0;   ///< everything that is not the SoC
  double socStaticW = 0.0;     ///< SoC leakage + uncore at any frequency
  double corePeakDynamicW = 0.0;  ///< one core, 100% busy, at max freq/voltage
  double memDynamicWPerGBs = 0.0; ///< DRAM+controller power per GB/s moved
  double nicActiveW = 0.0;        ///< extra power while NIC is busy
};

struct Platform {
  std::string name;       ///< e.g. "Tegra2 (SECO Q7)"
  std::string shortName;  ///< e.g. "Tegra2"
  SocModel soc;
  std::size_t dramBytes = 0;
  std::string dramType;
  NicAttachment nicAttachment = NicAttachment::Pcie;
  double nicLinkRateBytesPerS = 0.0;  ///< fastest Ethernet port on the board
  BoardPowerParams power;

  double maxFrequencyHz() const { return soc.maxFrequencyHz(); }
  double peakFlops() const { return soc.peakFlops(); }
  /// Network bytes per FLOP for a given link rate (the paper's Table 4).
  double bytesPerFlop(double linkRateBytesPerS) const;
};

}  // namespace tibsim::arch
