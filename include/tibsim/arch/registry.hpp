#pragma once
// The concrete platforms from the paper's Table 1, plus the hypothetical
// ARMv8 part from Figure 2(b).

#include <vector>

#include "tibsim/arch/platform.hpp"

namespace tibsim::arch {

class PlatformRegistry {
 public:
  /// NVIDIA Tegra 2 on a SECO Q7 module (2x Cortex-A9 @ 1.0 GHz).
  static Platform tegra2();
  /// NVIDIA Tegra 3 on a SECO CARMA kit (4x Cortex-A9 @ 1.3 GHz).
  static Platform tegra3();
  /// Samsung Exynos 5250 on an Arndale board (2x Cortex-A15 @ 1.7 GHz).
  static Platform exynos5250();
  /// Intel Core i7-2760QM in a Dell Latitude E6420 (4x Sandy Bridge @ 2.4).
  static Platform corei7_2760qm();
  /// Hypothetical quad-core ARMv8 @ 2 GHz (Figure 2(b) projection): same
  /// micro-architecture class as Cortex-A15 with FP64 in the NEON unit.
  static Platform armv8Quad2GHz();

  /// The four platforms evaluated in Section 3, in the paper's order.
  static std::vector<Platform> evaluated();
  /// All platforms, including the ARMv8 projection.
  static std::vector<Platform> all();
};

}  // namespace tibsim::arch
