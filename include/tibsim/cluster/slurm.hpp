#pragma once
// Batch scheduler for the cluster: Tibidabo nodes ran a SLURM client for
// job scheduling (Section 5 / Figure 8). This models the scheduler side —
// FCFS with EASY backfilling over a fixed node pool — so whole-machine
// studies (utilisation, wait times, energy of a job mix) can be run on top
// of the per-job cluster simulation.

#include <string>
#include <vector>

#include "tibsim/cluster/cluster.hpp"

namespace tibsim::cluster {

struct BatchJob {
  std::string name;
  int nodes = 1;
  double durationSeconds = 0.0;   ///< actual runtime once started
  double requestedSeconds = 0.0;  ///< user wall-time estimate (>= duration);
                                  ///< 0 means exact (= durationSeconds)
  double submitSeconds = 0.0;     ///< submission time
};

struct ScheduledJob {
  BatchJob job;
  double startSeconds = 0.0;
  double endSeconds = 0.0;

  double waitSeconds() const { return startSeconds - job.submitSeconds; }
};

class SlurmScheduler {
 public:
  /// `totalNodes` in the partition; EASY backfilling can be disabled to
  /// get plain conservative FCFS.
  explicit SlurmScheduler(int totalNodes, bool enableBackfill = true);

  /// Add a job to the workload (any submit order; sorted internally).
  void submit(BatchJob job);

  struct Result {
    std::vector<ScheduledJob> jobs;  ///< in start order
    double makespanSeconds = 0.0;
    double nodeUtilization = 0.0;  ///< busy node-seconds / (nodes*makespan)
    double averageWaitSeconds = 0.0;
    double maxWaitSeconds = 0.0;
    int backfilledJobs = 0;  ///< jobs that jumped the FCFS queue
  };

  /// Run the scheduling simulation over all submitted jobs.
  Result schedule() const;

  /// Energy of running this job mix on a cluster of the given spec:
  /// busy nodes draw loaded power, free nodes idle power, for the makespan.
  static double estimateEnergyJ(const Result& result,
                                const ClusterSpec& spec, int totalNodes);

 private:
  int totalNodes_;
  bool backfill_;
  std::vector<BatchJob> jobs_;
};

}  // namespace tibsim::cluster
