#pragma once
// The HPC software stack deployed on the ARM clusters (Figure 8): the paper
// argues the ARM ecosystem already carries a complete HPC stack. This
// module records that inventory as structured data — with each component's
// ARM status and the paper's caveats (softfp ABI, experimental CUDA/OpenCL)
// — so the Figure 8 reproduction and the readiness checklist are queryable.

#include <string>
#include <vector>

namespace tibsim::cluster {

enum class StackLayer {
  Compiler,
  RuntimeLibrary,
  ScientificLibrary,
  PerformanceTool,
  Debugger,
  ClusterManagement,
  OperatingSystem,
};

std::string toString(StackLayer layer);

enum class ArmSupport {
  Full,          ///< works out of the box
  PortedByTeam,  ///< required local patches/builds (e.g. ATLAS, hardfp)
  Experimental,  ///< unstable vendor preview (CUDA 4.2, Mali OpenCL)
};

std::string toString(ArmSupport support);

struct StackComponent {
  std::string name;
  StackLayer layer = StackLayer::RuntimeLibrary;
  ArmSupport support = ArmSupport::Full;
  std::string notes;  ///< the paper's Section 5 remarks
};

/// The Figure 8 inventory.
const std::vector<StackComponent>& softwareStack();

/// Components at a given layer.
std::vector<StackComponent> componentsAt(StackLayer layer);

/// Fraction of components with full out-of-the-box ARM support — the
/// quantitative version of Section 5's "the software stack ... is the same
/// as would be found on a normal HPC cluster".
double fullSupportFraction();

}  // namespace tibsim::cluster
