#pragma once
// Cluster-level simulation: a named machine built from identical SoC nodes
// and a switched Ethernet tree, with whole-cluster energy integration.
// ClusterSpec::tibidabo() reproduces the paper's 192-node Tegra 2 machine.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "tibsim/arch/platform.hpp"
#include "tibsim/mpi/simmpi.hpp"
#include "tibsim/net/fabric.hpp"
#include "tibsim/net/protocol.hpp"

namespace tibsim::cluster {

struct ClusterSpec {
  std::string name;
  arch::Platform nodePlatform;
  int nodes = 1;
  double frequencyHz = 0.0;  ///< 0 = platform maximum
  net::Protocol protocol = net::Protocol::TcpIp;
  int ranksPerNode = 1;
  net::TopologySpec topology;  ///< .nodes is filled per job

  /// Fraction of node DRAM usable by an application (the rest is OS, MPI
  /// buffers, NFS cache — Tibidabo nodes ran a full Debian).
  double usableMemoryFraction = 0.75;

  /// The paper's prototype: 192 SECO Q7 Tegra 2 boards, 1 GbE tree of
  /// 48-port switches, 8 Gb/s bisection, MPI over TCP/IP, 2 ranks/node.
  static ClusterSpec tibidabo();

  /// Variant with Open-MX instead of TCP/IP (the Section 4.1 ablation).
  static ClusterSpec tibidaboOpenMx();

  /// A Tibidabo-style machine scaled to `nodes` (same Tegra 2 boards, same
  /// switched tree recipe, bisection grown proportionally with the leaf
  /// count so the fabric keeps the prototype's oversubscription ratio).
  /// The paper's own arguments assume such machines — §6.3's ECC estimate
  /// uses 1,500 nodes — so this is the spec behind `scale_bigcluster`.
  static ClusterSpec tibidaboScaled(int nodes);

  /// Hypothetical Exynos 5250 cluster (Arndale boards, USB-attached GbE).
  static ClusterSpec arndaleCluster(int nodes);

  double usableBytesPerNode() const {
    return static_cast<double>(nodePlatform.dramBytes) * usableMemoryFraction;
  }
};

/// Outcome of one job on the cluster.
struct JobResult {
  mpi::WorldStats stats;
  int nodes = 0;
  int ranks = 0;
  double wallClockSeconds = 0.0;
  double energyJ = 0.0;        ///< whole-cluster energy over the job
  double averagePowerW = 0.0;  ///< whole-cluster average draw
  double gflops = 0.0;         ///< achieved (totalFlops / wallclock)
  double peakGflops = 0.0;     ///< nodes x per-node peak at job frequency
  double mflopsPerWatt = 0.0;  ///< the Green500 metric

  double efficiency() const {
    return peakGflops > 0.0 ? gflops / peakGflops : 0.0;
  }
};

/// Per-job observability knobs for ClusterSimulation::runJob. The world a
/// job runs on is built and torn down inside runJob, so anything that must
/// inspect it (the tracer, above all) goes through the observer callback.
struct JobOptions {
  /// Record spans during the job; the recording mode comes from the
  /// process-wide default (obs::defaultTraceMode / --trace-mode).
  bool enableTracing = false;
  std::uint64_t traceSeed = 0;      ///< sampled-mode reservoir seed
  std::size_t fiberStackBytes = 0;  ///< per-rank stack override (0 = default)
  /// Called once, after the run, while the world (and its tracer) is still
  /// alive.
  std::function<void(const mpi::MpiWorld&, const JobResult&)> observer;
};

class ClusterSimulation {
 public:
  explicit ClusterSimulation(ClusterSpec spec);

  /// Run `body` on `nodesUsed` nodes (ranks = nodesUsed * ranksPerNode).
  JobResult runJob(int nodesUsed, const mpi::MpiWorld::RankBody& body);

  /// As above, with tracing/stack-telemetry options.
  JobResult runJob(int nodesUsed, const mpi::MpiWorld::RankBody& body,
                   const JobOptions& options);

  const ClusterSpec& spec() const { return spec_; }
  double frequencyHz() const;

 private:
  ClusterSpec spec_;
};

/// Probe-then-sweep stack auto-sizing: run `body` once on a `probeNodes`
/// slice of `spec`, read the execution backend's stack high-water
/// telemetry, and return sim::recommendedStackBytes(hwm) — the value to
/// put in JobOptions::fiberStackBytes for the full-scale sweep. Returns 0
/// (keep the backend default) when the backend reports no telemetry (the
/// thread backend does not). The result depends on the host ABI and
/// backend, so use it only for runtime sizing — never serialise it into
/// campaign artefacts. When `probeResult` is non-null the probe job's
/// JobResult is copied out so callers can fold its (deterministic) world
/// accounting into their experiment totals.
std::size_t autoFiberStackBytes(const ClusterSpec& spec, int probeNodes,
                                const mpi::MpiWorld::RankBody& body,
                                JobResult* probeResult = nullptr);

}  // namespace tibsim::cluster
