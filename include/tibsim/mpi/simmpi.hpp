#pragma once
// simMPI: an MPI-like message-passing runtime whose ranks are cooperative
// simulation processes. Applications are written as ordinary blocking
// message-passing code (the real control flow, real payloads if desired);
// computation is charged through the roofline execution model and
// communication through the protocol + fabric models. This is how the
// Figure 6 scalability study and the HPL/Green500 numbers are produced.
//
// Semantics implemented:
//  * eager sends (buffered): the sender pays its stack cost and continues;
//    the message is delivered to the receiver's mailbox when the wire is
//    done;
//  * rendezvous sends (Open-MX >= 32 KiB): RTS/CTS handshake; the sender
//    blocks until the receiver posts a matching recv;
//  * (communicator, tag, source) matching, including deterministic
//    wildcard receives: kAnySource/kAnyTag match the first message in
//    canonical delivery order, which the engine reconstructs identically
//    for every --sim-shards value and both backends (communicator.hpp);
//  * collectives built from point-to-point with the textbook algorithms
//    (binomial bcast/reduce, dissemination barrier, ring alltoall), all
//    routed through mpi::Communicator — the world is communicator id 0.
//
// tibsim-lint: allowfile(wildcard-recv) — this header defines the shared
// (comm, source, tag) matching predicate the wildcard rule guards.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <source_location>
#include <span>
#include <vector>

#include "tibsim/arch/platform.hpp"
#include "tibsim/net/fabric.hpp"
#include "tibsim/mpi/collective_verify.hpp"
#include "tibsim/mpi/communicator.hpp"
#include "tibsim/mpi/payload_pool.hpp"
#include "tibsim/mpi/trace.hpp"
#include "tibsim/obs/critical_path.hpp"
#include "tibsim/obs/stall_report.hpp"
#include "tibsim/net/protocol.hpp"
#include "tibsim/perfmodel/execution_model.hpp"
#include "tibsim/perfmodel/work_profile.hpp"
#include "tibsim/sim/shard_scheduler.hpp"
#include "tibsim/sim/simulation.hpp"

namespace tibsim::mpi {

struct WorldConfig {
  arch::Platform platform;
  double frequencyHz = 0.0;  ///< 0 = platform maximum
  net::Protocol protocol = net::Protocol::TcpIp;
  int ranksPerNode = 1;
  net::TopologySpec topology;  ///< .nodes is derived from the rank count
  /// Execution backend for the rank processes (fiber by default; see
  /// sim/execution_context.hpp). Snapshot of the process-wide default at
  /// config construction so a campaign-level override flows through.
  sim::ExecBackend simBackend = sim::defaultExecBackend();
  /// How a traced run records spans (obs layer sink: full / sampled /
  /// aggregate). Snapshot of the process-wide default so --trace-mode and
  /// TIBSIM_TRACE_MODE flow through. Tracing itself stays opt-in via
  /// MpiWorld::enableTracing().
  obs::TraceMode traceMode = obs::defaultTraceMode();
  std::size_t traceReservoirPerRank = 512;  ///< sampled mode: spans kept/rank
  std::uint64_t traceSeed = 0;              ///< sampled mode reservoir seed
  /// Per-rank fiber stack size; 0 = engine default (TIBSIM_FIBER_STACK_KB
  /// or 256 KiB). The thread backend ignores it.
  std::size_t fiberStackBytes = 0;
  /// Logical-process shards for the event engine (see sim/shard_scheduler).
  /// Snapshot of the process-wide default (--sim-shards / TIBSIM_SIM_SHARDS)
  /// so a campaign-level override flows through. The world clamps to the
  /// leaf-switch count and falls back to the single-queue engine when the
  /// topology has no lookahead (zero switch latency) or fewer than two leaf
  /// subtrees. Campaign artefacts are byte-identical for every value.
  int simShards = sim::defaultSimShards();
  /// Per-link fabric telemetry (WorldStats::linkStats). On by default —
  /// O(links) counters with no event-order effect; the bench harness turns
  /// it off to measure its cost.
  bool linkTelemetry = true;
  /// Deadlocked-world wait-state report (obs/stall_report.hpp). Snapshot
  /// of the process-wide default (--stall-report / TIBSIM_STALL_REPORT).
  bool stallReport = obs::defaultStallReport();
  /// Runtime collective-matching verifier (mpi/collective_verify.hpp).
  /// Snapshot of the process-wide default (--verify-collectives /
  /// TIBSIM_VERIFY_COLLECTIVES). Stamps ride inside Message, so enabling
  /// it never changes the event schedule or the artefact bytes.
  bool verifyCollectives = defaultVerifyCollectives();

  static WorldConfig tibidaboNode();  ///< Tegra2 node, 1 GbE, TCP/IP
};

struct WorldStats {
  double wallClockSeconds = 0.0;
  std::vector<double> rankFinishSeconds;
  std::vector<double> nodeBusySeconds;     ///< compute + protocol CPU time
  std::vector<double> nodeCommCpuSeconds;  ///< protocol CPU time only
  double totalFlops = 0.0;
  double totalDramBytes = 0.0;
  std::uint64_t messageCount = 0;
  double payloadBytes = 0.0;
  double wireBytes = 0.0;
  double fabricQueueingSeconds = 0.0;
  /// Stamp comparisons performed by the collective verifier (zero when
  /// WorldConfig::verifyCollectives is off). Summed over per-rank counters
  /// after the run, so the value is shard- and backend-invariant.
  std::uint64_t collectiveChecks = 0;
  int nodes = 0;
  sim::EngineStats engine;  ///< discrete-event engine counters for the run
  // Trace accounting (zero when tracing was not enabled). Recorded counts
  // are mode-independent; retained/memory reflect the sink's bound.
  std::uint64_t traceSpansRecorded = 0;
  std::uint64_t traceSpansRetained = 0;
  std::size_t traceMemoryBytes = 0;
  // Payload memory accounting (see payload_pool.hpp). Steady-state sends
  // are zero-allocation when poolAllocations stays flat against
  // pooledMessages; all five are deterministic and serialisable.
  std::uint64_t payloadInlineMessages = 0;  ///< stored in the Message itself
  std::uint64_t payloadPooledMessages = 0;  ///< backed by a pool buffer
  std::uint64_t payloadPoolReuses = 0;      ///< pooled sends with no alloc
  std::uint64_t payloadPoolAllocations = 0; ///< pooled sends that allocated
  std::uint64_t payloadPoolReturns = 0;     ///< buffers recycled by recv/wait
  std::uint64_t payloadPoolTrimmedBuffers = 0;  ///< freed by teardown trim
  std::uint64_t payloadPoolLiveHighWater = 0;   ///< peak buffers in use
  /// Per-size-class pool activity (power-of-two classes; index = log2 of
  /// the class capacity, entries below the smallest class stay zero).
  /// Serialised into the campaign __worlds.csv per-class table, so sharded
  /// runs produce it canonically (PayloadPool::ClassModel replayed at the
  /// window barriers) and it is byte-identical for every --sim-shards value.
  std::vector<PayloadPool::ClassStats> payloadPoolClassStats;
  /// Per-link fabric telemetry folded per link class (all zero when
  /// WorldConfig::linkTelemetry is off). Shard-invariant by construction:
  /// every fabric occupancy runs in canonical dispatch order.
  obs::LinkStats linkStats;
  /// Sim-time critical path of the run (obs/critical_path.hpp).
  obs::CriticalPath criticalPath;

  double achievedFlopsPerSecond() const {
    return wallClockSeconds > 0.0 ? totalFlops / wallClockSeconds : 0.0;
  }
};

class MpiWorld;

/// Per-rank handle passed to the rank body. All methods are blocking in
/// simulated time and may only be called from inside the rank body.
class MpiContext {
 public:
  int rank() const { return rank_; }
  int size() const;
  int node() const { return node_; }
  double now() const;

  /// Charge compute work to this rank's core (advances simulated time).
  void compute(const perfmodel::WorkProfile& work);
  void computeSeconds(double seconds);

  /// Blocking send of `bytes` with optional real payload.
  void send(int dst, int tag, std::size_t bytes,
            std::span<const std::byte> payload = {});
  void sendDoubles(int dst, int tag, std::span<const double> values);

  /// Blocking receive; returns the payload (empty if size-only message).
  /// receivedBytes (if non-null) gets the modelled message size.
  std::vector<std::byte> recv(int src, int tag,
                              std::size_t* receivedBytes = nullptr);
  std::vector<double> recvDoubles(int src, int tag);

  /// The world communicator (id 0, identity rank mapping). Sub-communicators
  /// derive from it via Communicator::split()/dup().
  Communicator commWorld() { return Communicator(this, 0, rank_, nullptr); }

  /// Deadlock-free paired exchange (ordered by rank id).
  void sendrecv(int peer, int tag, std::size_t sendBytes,
                std::size_t* recvBytes = nullptr);

  /// Halo exchange with both chain neighbours (rank-1, rank+1) using a
  /// red-black schedule: even ranks exchange right first, odd ranks left
  /// first, so all pairs run in two parallel phases instead of an O(p)
  /// serialisation chain down the ring.
  void neighborExchange(std::size_t bytes, int tag);

  // -- non-blocking operations --------------------------------------------
  /// Handle for a pending non-blocking operation.
  using Request = std::uint64_t;

  /// Non-blocking send. The sender's stack cost is charged immediately and
  /// the message is always buffered eagerly (an implementation with enough
  /// bounce buffers) — the returned request is complete by construction
  /// but must still be passed to wait()/waitall().
  Request isend(int dst, int tag, std::size_t bytes,
                std::span<const std::byte> payload = {});

  /// Non-blocking receive: registers interest in (src, tag); the match is
  /// performed by wait(). Lets a rank overlap computation with the arrival
  /// of in-flight messages.
  Request irecv(int src, int tag);

  /// Complete a pending operation. For irecv requests, blocks until the
  /// message arrives and returns its payload (and size via receivedBytes).
  std::vector<std::byte> wait(Request request,
                              std::size_t* receivedBytes = nullptr);

  /// Complete a set of requests (in request order).
  void waitall(std::span<const Request> requests);

  // -- collectives -------------------------------------------------------
  // World-communicator delegations; the defaulted std::source_location
  // records the call site for the collective verifier's mismatch report.
  void barrier(std::source_location loc = std::source_location::current());
  /// Broadcast `values` from root; every rank returns the root's data.
  std::vector<double> bcast(
      std::vector<double> values, int root,
      std::source_location loc = std::source_location::current());
  /// Size-only broadcast (models the traffic without carrying data).
  void bcastBytes(std::size_t bytes, int root,
                  std::source_location loc = std::source_location::current());
  /// Pipelined ring broadcast of a large buffer (HPL-style): a small
  /// binomial control message enforces causality, then every rank streams
  /// the payload through once at the protocol's sustained rate. Use for
  /// bulk broadcasts where the binomial tree's log(p) root fan-out would
  /// be unrealistic.
  void pipelinedBcastBytes(
      std::size_t bytes, int root,
      std::source_location loc = std::source_location::current());
  std::vector<double> reduceSum(
      std::span<const double> values, int root,
      std::source_location loc = std::source_location::current());
  std::vector<double> allreduceSum(
      std::span<const double> values,
      std::source_location loc = std::source_location::current());
  double allreduceSum(
      double value, std::source_location loc = std::source_location::current());
  double allreduceMax(
      double value, std::source_location loc = std::source_location::current());
  /// Gather one double per rank to root (returned in rank order at root).
  std::vector<double> gather(
      double value, int root,
      std::source_location loc = std::source_location::current());
  std::vector<double> allgather(
      double value, std::source_location loc = std::source_location::current());
  /// Ring all-to-all of size-only messages (bytesPerPeer to every rank).
  void alltoallBytes(
      std::size_t bytesPerPeer,
      std::source_location loc = std::source_location::current());

  MpiWorld& world() { return world_; }

 private:
  friend class MpiWorld;
  friend class Communicator;
  MpiContext(MpiWorld& world, sim::Process& process, int rank, int node);

  struct PendingOp {
    enum class Kind : std::uint8_t { Send, Recv, Barrier, Bcast, Allreduce };
    Request request = 0;
    Kind kind = Kind::Send;
    int peer = 0;  ///< world rank (or kAnySource) for Send/Recv
    int tag = 0;   ///< or kAnyTag
    /// Scope for Recv matching and for executing a lazy collective at
    /// wait(). Default (null) means the world for Recv (id() == 0).
    Communicator comm;
    int root = 0;                   ///< Bcast root (comm-local)
    ReduceOp op = ReduceOp::Sum;    ///< Allreduce combiner
    std::vector<double> values;     ///< Bcast / Allreduce operand
    /// Call site of the i-collective that queued this op, replayed into
    /// the verifier stamp when wait() executes the lazy collective.
    const char* file = nullptr;
    std::uint32_t line = 0;
  };

  /// Mint a request id for `op` and register it. Used by isend/irecv and
  /// by Communicator for comm-scoped and collective requests.
  Request pushPending(PendingOp&& op) {
    op.request = nextRequest_++;
    pending_.push_back(std::move(op));
    return pending_.back().request;
  }

  /// RAII scope of one collective entry (collective_verify.hpp). Engages
  /// only at the outermost level, so building-block collectives (allreduce
  /// = reduce + bcast, split = 3x allgather, ...) inherit the outer stamp,
  /// and only when the world runs with verifyCollectives — otherwise the
  /// guard is a no-op and collective traffic stays stamp-free.
  class CollectiveGuard {
   public:
    CollectiveGuard(MpiContext& ctx, std::uint64_t comm, CollectiveKind kind,
                    std::uint8_t op, std::uint64_t count, const char* file,
                    std::uint32_t line);
    ~CollectiveGuard();
    CollectiveGuard(const CollectiveGuard&) = delete;
    CollectiveGuard& operator=(const CollectiveGuard&) = delete;

   private:
    MpiContext& ctx_;
    bool tracking_ = false;  ///< verification on: depth is counted
    bool engaged_ = false;   ///< outermost level: stamp pinned/cleared
  };

  /// Next per-(rank, communicator) collective ordinal. Flat vector, not a
  /// hash map: a rank talks on a handful of communicators.
  std::uint32_t nextCollectiveSeq(std::uint64_t comm) {
    for (auto& [id, next] : collectiveSeq_)
      if (id == comm) return next++;
    collectiveSeq_.emplace_back(comm, 1u);
    return 0;
  }

  /// Adopt `snapshot` + the hop's wire time as this rank's chain — the
  /// matched message (or CTS) arrived after the rank started waiting, so
  /// the peer's chain bounded this rank.
  void adoptPath(const obs::PathSnapshot& snapshot, double linkSeconds) {
    path_ = snapshot;
    path_.linkSeconds += linkSeconds;
    ++path_.edges;
  }

  MpiWorld& world_;
  sim::Process& process_;
  int rank_;
  int node_;
  /// Running critical-path chain ending at this rank's current sim time.
  obs::PathSnapshot path_;
  // Stall-watchdog state: set while the rank is blocked in a rendezvous
  // send (recv-side waits live in the mailbox).
  bool sendBlocked_ = false;
  int sendPeer_ = -1;
  int sendTag_ = 0;
  std::uint64_t sendComm_ = 0;
  double sendBlockedSince_ = 0.0;
  std::uint64_t nextRequest_ = 1;
  /// Per-rank communicator-creation counter: each split()/dup() this rank
  /// participates in consumes one ordinal, and the new communicator's id is
  /// derived from the *leader's* ordinal — learned through the collective
  /// itself, never from shared state, so ids are shard- and
  /// backend-invariant. Starts at 1: (leader 0, ordinal 0) would collide
  /// with the world id.
  std::uint64_t nextCommOrdinal_ = 1;
  // Flat vector, not a hash map: a rank has a handful of requests in
  // flight, and wait() usually completes them in issue order, so the linear
  // scan is cheaper than hashing and never allocates at steady state.
  std::vector<PendingOp> pending_;
  // Collective-verifier state (all idle unless config.verifyCollectives).
  // The active stamp is copied into every message this rank sends and
  // compared against every stamped message it matches; each rank's state
  // is touched only by its own fiber, so sharded windows never race.
  CollectiveStamp activeCollective_{};
  int collectiveDepth_ = 0;
  std::uint64_t collectiveChecks_ = 0;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> collectiveSeq_;
};

class MpiWorld {
 public:
  using RankBody = std::function<void(MpiContext&)>;

  MpiWorld(WorldConfig config, int ranks);
  ~MpiWorld();

  MpiWorld(const MpiWorld&) = delete;
  MpiWorld& operator=(const MpiWorld&) = delete;

  /// Run `body` on every rank to completion; throws ContractError on
  /// deadlock (ranks still blocked when no events remain).
  WorldStats run(const RankBody& body);

  int ranks() const { return ranks_; }
  const net::ProtocolModel& protocolModel() const { return *protocol_; }

  /// Record per-rank compute/send/recv/wait spans during run() — the
  /// Paraver-style post-mortem view. Off by default. The sink is rebuilt
  /// from the config's trace mode, so call before run(); memory cost is
  /// bounded in sampled/aggregate modes.
  void enableTracing() {
    tracing_ = true;
    tracer_.configure({config_.traceMode, config_.traceReservoirPerRank,
                       config_.traceSeed});
  }
  const Tracer& tracer() const { return tracer_; }
  int nodes() const { return nodes_; }
  const WorldConfig& config() const { return config_; }
  double frequencyHz() const { return frequencyHz_; }
  const arch::Platform& platform() const { return config_.platform; }

 private:
  friend class MpiContext;
  friend class Communicator;

  enum class Stage : std::uint8_t { Delivered, RtsPending, AwaitingData };

  static constexpr std::uint64_t kNoPoolTicket = ~0ull;

  struct Message {
    int src = 0;
    int tag = 0;
    std::size_t bytes = 0;
    MessagePayload payload;  ///< inline or pooled; see payload_pool.hpp
    Stage stage = Stage::Delivered;
    double receiverCost = 0.0;
    sim::Process* sender = nullptr;  ///< for rendezvous CTS wake-up
    std::uint64_t id = 0;
    /// True when delivery already charged receiverCost and folded it into
    /// the wake-up time, so doRecv must not delay again (see deliver()).
    bool receiverCharged = false;
    /// Sharded runs: world-level pool-compat ticket pairing this message's
    /// payload acquire with its release (kNoPoolTicket when inline or when
    /// running on the single-queue engine). See payload_pool.hpp.
    std::uint64_t poolTicket = kNoPoolTicket;
    /// Communicator the message was sent on; part of the match key. The
    /// world is id 0, so legacy world traffic is unchanged byte-for-byte.
    std::uint64_t comm = 0;
    /// Collective-verifier stamp of the sender at doSend time (disengaged
    /// for point-to-point traffic and when verification is off). Rides the
    /// message wholesale through the sharded DeferredOp path, so no extra
    /// shard plumbing and no schedule effect.
    CollectiveStamp verify{};
    /// Critical-path piggyback: the sender's chain when the payload left,
    /// and the wire interval, so a receiver that waited can adopt the
    /// sender's chain plus the link time (obs/critical_path.hpp).
    obs::PathSnapshot path{};
    double departTime = 0.0;   ///< sim time the transfer was committed
    double arrivalTime = 0.0;  ///< sim time deliver() ran (mailbox entry)
  };

  /// The one matching predicate, shared by doRecv's scan, deliver()'s
  /// wake-up check and dataArrived()'s first-match fold, so all three agree
  /// on wildcard semantics: first match in delivery order wins.
  static bool matches(const Message& m, std::uint64_t comm, int src,
                      int tag) {
    return m.comm == comm && (src == kAnySource || m.src == src) &&
           (tag == kAnyTag || m.tag == tag);
  }

  struct Mailbox {
    Mailbox() = default;
    // Explicitly noexcept moves: libstdc++'s deque move is not noexcept,
    // so vector growth would otherwise copy every mailbox.
    Mailbox(Mailbox&&) noexcept = default;
    Mailbox& operator=(Mailbox&&) noexcept = default;

    /// In-flight slab slots of messages delivered to this rank but not yet
    /// consumed, in delivery order. Queueing slot indices (not Messages)
    /// keeps mailbox traffic move-free, and slots stay valid across slab
    /// growth where references would not.
    std::deque<std::uint32_t> messages;
    // A rank blocked in recv(comm, src, tag); waitSrc/waitTag may be the
    // kAnySource/kAnyTag wildcards.
    bool waiting = false;
    std::uint64_t waitComm = 0;
    int waitSrc = 0;
    int waitTag = 0;
    sim::Process* waiter = nullptr;
    /// Sim time the rank entered the wait (stall-watchdog bookkeeping).
    double blockedSince = 0.0;
  };

  // -- sharded logical-process execution (simShards > 1) -------------------
  // The world is partitioned into leaf-switch-contiguous shards, each with
  // its own Simulation (event queue + fiber scheduler), in-flight slab and
  // payload pool. Shards advance concurrently inside conservative windows
  // (sim::ShardScheduler); everything whose result depends on *global*
  // order — fabric occupancy, totalFlops/totalDramBytes folds, trace spans,
  // the serialised payload-pool counters, and every event pushed into
  // another shard — is recorded as a DeferredOp / PendingSpan against the
  // submitting dispatch and replayed serially at the window barrier in
  // canonical merged dispatch order. That replay is what keeps campaign
  // artefacts byte-identical for every shard count.

  /// One trace span captured in-window, flushed to the world tracer at the
  /// barrier in canonical dispatch order (span order and the sink's memory
  /// evolution are serialised, so they must not depend on shard count).
  struct PendingSpan {
    TraceSpan span;
    std::uint32_t dispatchIndex = 0;
  };

  /// A side effect deferred from in-window execution to the barrier.
  struct DeferredOp {
    enum class Kind : std::uint8_t {
      Deliver,      ///< fabric transfer + message into dst shard's slab
      DataArrival,  ///< rendezvous data wire + completion in dst shard
      CtsResume,    ///< CTS wire + sender wake-up in the sender's shard
      StatFold,     ///< totalFlops/totalDramBytes accumulation
      PoolAcquire,  ///< world pool-compat acquire (serialised counters)
      PoolRelease,  ///< world pool-compat release
    };
    Kind kind = Kind::StatFold;
    std::uint32_t dispatchIndex = 0;  ///< submitting dispatch (this shard)
    int fromNode = 0;                 ///< fabric source endpoint
    int toNode = 0;                   ///< fabric destination endpoint
    int dstRank = 0;                  ///< Deliver / DataArrival target
    int targetShard = 0;              ///< CtsResume: the sender's shard
    double wireBytes = 0.0;
    double submitT = 0.0;       ///< submit-time sim clock: fabric start
    std::uint32_t pushIdx = 0;  ///< push index within the submitting dispatch
    std::uint64_t id = 0;  ///< message id (DataArrival) / ticket (Pool*)
    double flops = 0.0;
    double dramBytes = 0.0;
    std::size_t bytes = 0;  ///< PoolAcquire payload size
    sim::Process* sender = nullptr;  ///< CtsResume wake-up target
    /// CtsResume: the receiver's chain when the CTS left, adopted by the
    /// blocked sender (plus the CTS wire time) at wake-up.
    obs::PathSnapshot path{};
    MpiContext* senderCtx = nullptr;  ///< CtsResume adoption target
    bool hasMessage = false;
    Message message;  ///< Deliver: moved here until stashed at the barrier
  };

  /// Per-shard engine state. The single-queue path keeps using the legacy
  /// members below; engines_ exists only while sharded_ is true.
  struct Engine {
    std::unique_ptr<sim::Simulation> sim;
    int firstRank = 0;
    int endRank = 0;  ///< one past the last rank
    std::vector<Message> inflight;
    std::vector<std::uint32_t> freeSlots;
    std::uint64_t nextMessageId = 0;
    std::uint64_t nextPoolTicket = 0;
    std::uint64_t messageCount = 0;  ///< order-free partial of stats_
    double payloadBytes = 0.0;       ///< exact integer-valued partial sum
    std::vector<DeferredOp> ops;
    std::vector<PendingSpan> spans;
    // Barrier merge cursors (reset per window).
    std::size_t logCursor = 0;
    std::size_t opCursor = 0;
    std::size_t spanCursor = 0;
  };

  int nodeOfRank(int rank) const { return rank / config_.ranksPerNode; }
  int shardOfRank(int rank) const {
    return sharded_ ? shardOfRank_[static_cast<std::size_t>(rank)] : 0;
  }
  sim::Simulation& simFor(int rank) {
    return sharded_ ? *engines_[static_cast<std::size_t>(shardOfRank(rank))].sim
                    : *sim_;
  }
  Engine& engineOf(int rank) {
    return engines_[static_cast<std::size_t>(shardOfRank(rank))];
  }
  Message& messageAt(int rank, std::uint32_t slot) {
    return sharded_ ? engineOf(rank).inflight[slot] : inflight_[slot];
  }

  /// Shard count this world will actually run with (policy: config value
  /// clamped to the leaf-switch count; 1 when the fabric has no lookahead).
  int effectiveSimShards() const;

  /// Message id unique within any destination mailbox: the legacy global
  /// counter, or (shard-first-rank << 40 | per-shard counter) so shards
  /// mint ids without coordination.
  std::uint64_t nextLocalMessageId(Engine* eng) {
    if (eng == nullptr) return nextMessageId_++;
    return (static_cast<std::uint64_t>(eng->firstRank) << 40) |
           eng->nextMessageId++;
  }

  WorldStats runSharded(const RankBody& body, int shards);
  /// Serial window barrier: merge the shards' dispatch logs in canonical
  /// key order — assigning each dispatch its global ordinal, i.e. the exact
  /// legacy dispatch sequence — replay deferred ops and flush trace spans
  /// in that order, advance the virtual global-queue high-water replay, and
  /// resolve surviving provisional event keys.
  void shardBarrier();
  void executeOp(DeferredOp& op, std::uint64_t g);
  /// Reserve the op's intra-dispatch push position, then queue it.
  void submitWireOp(Engine& eng, DeferredOp&& op);
  void foldCompute(int rank, double flops, double dramBytes);
  /// Rendezvous data-arrival completion (legacy closure body, shard-safe).
  /// `path`/`departTime` are the sender's chain when the data left, stamped
  /// into the message here — in the destination shard — so the receiver's
  /// adoption never reads cross-shard state.
  void dataArrived(int dstRank, std::uint64_t id,
                   const obs::PathSnapshot& path, double departTime);

  void doSend(MpiContext& ctx, std::uint64_t comm, int dst, int tag,
              std::size_t bytes, std::span<const std::byte> payload,
              bool allowRendezvous = true);
  /// src is a world rank or kAnySource; tag may be kAnyTag. srcOut/tagOut
  /// (if non-null) receive the matched message's world source and tag.
  std::vector<std::byte> doRecv(MpiContext& ctx, std::uint64_t comm, int src,
                                int tag, std::size_t* receivedBytes,
                                int* srcOut = nullptr, int* tagOut = nullptr);
  /// Collective verifier: compare the matched message's stamp against the
  /// receiver's active collective; throws ContractError on divergence.
  void verifyCollectiveMatch(MpiContext& ctx, const Message& message);
  void deliver(int dstRank, std::uint32_t slot);
  // In-flight message slab: a scheduled delivery captures [this, dst, slot]
  // (16 bytes, inline in the event closure) instead of the Message itself,
  // so scheduling never heap-allocates. A message lives in its slot from
  // send to consumption; slots are recycled LIFO by consumeSlot(). Sharded
  // runs keep one slab per shard (slots in a rank's mailbox always index
  // its own shard's slab).
  std::uint32_t stashInflight(Message&& message);
  std::uint32_t stashFor(int dstRank, Message&& message);
  /// Hand the slot's payload to the application and recycle the slot.
  std::vector<std::byte> consumeSlot(int rank, std::uint32_t slot);
  void chargeCpu(int node, double seconds);
  void traceSpan(int rank, SpanKind kind, double begin, double end,
                 int peer = -1, std::size_t bytes = 0,
                 std::uint64_t comm = 0);
  /// Fold fabric link telemetry and the end rank's chain into stats_
  /// (called at the end of run()/runSharded() before teardown).
  void harvestPathAndLinks();
  /// The ContractError text for an all-ranks-blocked world: the bare
  /// deadlock line, plus the per-rank wait-state report when
  /// config_.stallReport is set.
  std::string deadlockMessage(double now);

  WorldConfig config_;
  int ranks_;
  int nodes_;
  double frequencyHz_;
  perfmodel::ExecutionModel execModel_;
  std::unique_ptr<net::ProtocolModel> protocol_;
  double sameNodeCopyBandwidth_ = 0.0;  ///< bytes/s, constant per world

  // Rebuilt for every run():
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::Fabric> fabric_;
  std::vector<Mailbox> mailboxes_;
  std::vector<std::unique_ptr<MpiContext>> contexts_;
  WorldStats stats_;
  std::uint64_t nextMessageId_ = 0;
  bool tracing_ = false;
  Tracer tracer_;
  // Payload buffers survive across run() calls (stats are reset per run),
  // so repeated runs on one world start with a warm pool.
  PayloadPool pool_;
  std::vector<Message> inflight_;
  std::vector<std::uint32_t> freeSlots_;

  // Sharded execution state (unused while sharded_ is false).
  bool sharded_ = false;
  std::vector<Engine> engines_;   // rebuilt per run()
  std::vector<int> shardOfRank_;  // rank -> shard index
  std::unique_ptr<sim::ShardScheduler> scheduler_;
  /// Per-shard payload pools (compat disabled; the canonical counters come
  /// from worldPoolCompat_). Persistent across runs, like pool_.
  std::vector<PayloadPool> shardPools_;
  /// Legacy pool accounting replayed in canonical order at the barriers —
  /// the source of the serialised pool counters on sharded runs. Persists
  /// across runs so repeat runs mirror the warm-pool behaviour of pool_.
  PayloadPool::CompatModel worldPoolCompat_;
  /// Canonical size-class accounting replayed alongside worldPoolCompat_ at
  /// the barriers: an exact capacity-only mirror of the size-classed pool
  /// the single-queue path runs, so the serialised per-class counters are
  /// shard-count-invariant too. Persists across runs, like pool_.
  PayloadPool::ClassModel worldPoolClass_;
  /// poolTicketCaps_[shard][seq] = model capacities of that acquire, handed
  /// back to the matching release.
  struct PoolTicketCaps {
    std::size_t legacy = 0;   ///< CompatModel capacity
    std::size_t classed = 0;  ///< ClassModel capacity
  };
  std::vector<std::vector<PoolTicketCaps>> poolTicketCaps_;
  // Virtual global-queue replay (what the single queue's size would have
  // been at each merged dispatch) for the serialised queueHighWater.
  std::uint64_t mergedQueueSize_ = 0;
  std::uint64_t mergedQueueHighWater_ = 0;
  /// Next global dispatch ordinal (the barrier merge numbers every dispatch
  /// in exact legacy order; ordinal 0 is reserved for pre-run spawns).
  std::uint64_t nextGlobalOrd_ = 1;
  /// Scratch, per shard: global ordinal of each local dispatch this window.
  std::vector<std::vector<std::uint64_t>> shardOrdByDispatch_;
  /// Scratch: shards with unmerged dispatch records this barrier.
  std::vector<std::size_t> mergeScratch_;
  /// Submitted Deliver/DataArrival/CtsResume ops not yet replayed. While
  /// zero, window barriers batch: dispatch logs and order-insensitive ops
  /// accumulate and one deferred merge replays them, still in exact global
  /// order (windows are time-partitioned whether or not a merge ran).
  std::uint64_t pendingChannelOps_ = 0;
  /// Dispatch records merged across all shardBarrier() calls this run
  /// (EngineStats::shardMergeRecords).
  std::uint64_t shardMergeRecords_ = 0;
};

}  // namespace tibsim::mpi
