#pragma once
// First-class communicators for simMPI.
//
// A Communicator scopes point-to-point matching and collectives to a
// subset of the world's ranks with its own dense rank numbering, the way
// MPI_Comm does: the world is simply communicator id 0 with the identity
// rank translation, and `split(color, key)` / `dup()` derive new
// communicators collectively. Every message carries its communicator id and
// is matched against (comm, source, tag), so traffic on two communicators
// never interferes even when tags collide.
//
// Determinism contract — the part that makes this simulator-grade:
//  * Communicator ids are derived from traffic, not from shared mutable
//    state: a split performs allgathers of (color, key, creation-ordinal)
//    over the parent communicator and every member computes
//    id = (leader world rank << 32) | leader ordinal locally. No global
//    counter exists, so sharded runs mint identical ids in any interleaving.
//  * Wildcard receives (kAnySource / kAnyTag) match in mailbox delivery
//    order, which the engine already reconstructs canonically — exact
//    single-queue (sim-time, sender-ordinal) order — for every --sim-shards
//    value and both execution backends. A wildcard receive therefore
//    returns the same message everywhere, byte-for-byte.
//  * Non-blocking collectives (ibarrier/ibcast/iallreduce) are lazy: the
//    request records the operation and wait() executes it, mirroring how
//    irecv defers its match. All members must eventually wait, and must
//    wait outstanding collectives on one communicator in the same order.
//
// tibsim-lint: allowfile(wildcard-recv) — this header defines the wildcard
// constants themselves.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <source_location>
#include <span>
#include <vector>

namespace tibsim::mpi {

class MpiContext;

/// Match any sending rank (Communicator::recv / irecv).
inline constexpr int kAnySource = -1;
/// Match any tag (Communicator::recv / irecv).
inline constexpr int kAnyTag = -1;
/// split() color for ranks that want no communicator (MPI_UNDEFINED).
inline constexpr int kUndefinedColor = -1;

/// Built-in reduction combiners. All element-wise over doubles; Sum keeps
/// the historical left-fold order so world-communicator reductions stay
/// byte-identical to the legacy reduceSum.
enum class ReduceOp : std::uint8_t { Sum, Min, Max, Prod };

/// User-supplied combiner: must be deterministic and associative enough for
/// the caller's purposes; applied as acc = combine(acc, incoming) in the
/// fixed binomial-tree order, so the fold order is reproducible.
using CombineFn = double (*)(double, double);

/// A communication scope: a subset of world ranks with dense comm-local
/// numbering. Cheap to copy (shared group table); methods may only be
/// called from inside the owning rank's body, like MpiContext itself.
class Communicator {
 public:
  using Request = std::uint64_t;

  /// Default-constructed = null communicator (not a member of anything):
  /// what split() returns for kUndefinedColor. Only isNull() is valid.
  Communicator() = default;

  bool isNull() const { return ctx_ == nullptr; }
  bool isWorld() const { return ctx_ != nullptr && id_ == 0; }

  /// This rank's number within the communicator.
  int rank() const { return rank_; }
  int size() const;
  /// Stable identity: 0 for the world, (leader world rank << 32) | leader
  /// creation ordinal for derived communicators.
  std::uint64_t id() const { return id_; }

  /// commRank -> world rank (identity for the world communicator).
  int worldRank(int commRank) const;
  /// world rank -> commRank, or -1 when that rank is not a member.
  int commRankOf(int worldRank) const;

  // -- construction (collective over the parent) ---------------------------
  /// Partition the communicator: members with equal color form a new
  /// communicator, ordered by (key, world rank). kUndefinedColor (or any
  /// negative color) yields the null communicator for that member. Every
  /// member must call split (it is a collective).
  Communicator split(
      int color, int key,
      std::source_location loc = std::source_location::current()) const;
  /// A new communicator with the same group and a distinct id, so its
  /// traffic cannot match the parent's. Collective; shares the group table.
  Communicator dup(
      std::source_location loc = std::source_location::current()) const;

  // -- point-to-point (ranks are comm-local) -------------------------------
  void send(int dst, int tag, std::size_t bytes,
            std::span<const std::byte> payload = {}) const;
  void sendDoubles(int dst, int tag, std::span<const double> values) const;
  /// Blocking receive; src may be kAnySource and tag kAnyTag. The matched
  /// message is the first match in canonical delivery order. srcOut/tagOut
  /// (if non-null) receive the actual comm-local source and tag.
  std::vector<std::byte> recv(int src, int tag,
                              std::size_t* receivedBytes = nullptr,
                              int* srcOut = nullptr,
                              int* tagOut = nullptr) const;
  std::vector<double> recvDoubles(int src, int tag,
                                  int* srcOut = nullptr) const;
  void sendrecv(int peer, int tag, std::size_t sendBytes,
                std::size_t* recvBytes = nullptr) const;

  Request isend(int dst, int tag, std::size_t bytes,
                std::span<const std::byte> payload = {}) const;
  Request irecv(int src, int tag) const;
  /// Complete any request minted through this context (send, recv, or a
  /// non-blocking collective). Collective requests execute here.
  std::vector<std::byte> wait(Request request,
                              std::size_t* receivedBytes = nullptr) const;
  void waitall(std::span<const Request> requests) const;
  /// wait() for requests whose payload is doubles (irecv of sendDoubles,
  /// ibcast, iallreduce).
  std::vector<double> waitDoubles(Request request) const;

  // -- collectives ---------------------------------------------------------
  // Every entry records its call site (defaulted std::source_location) for
  // the runtime verifier's mismatch report; call them as before.
  void barrier(
      std::source_location loc = std::source_location::current()) const;
  std::vector<double> bcast(
      std::vector<double> values, int root,
      std::source_location loc = std::source_location::current()) const;
  void bcastBytes(
      std::size_t bytes, int root,
      std::source_location loc = std::source_location::current()) const;
  void pipelinedBcastBytes(
      std::size_t bytes, int root,
      std::source_location loc = std::source_location::current()) const;
  /// Binomial-tree reduction to root; non-root members return empty.
  std::vector<double> reduce(
      std::span<const double> values, ReduceOp op, int root,
      std::source_location loc = std::source_location::current()) const;
  std::vector<double> reduce(
      std::span<const double> values, CombineFn combine, int root,
      std::source_location loc = std::source_location::current()) const;
  std::vector<double> allreduce(
      std::span<const double> values, ReduceOp op,
      std::source_location loc = std::source_location::current()) const;
  double allreduce(
      double value, ReduceOp op,
      std::source_location loc = std::source_location::current()) const;
  std::vector<double> gather(
      double value, int root,
      std::source_location loc = std::source_location::current()) const;
  std::vector<double> allgather(
      double value,
      std::source_location loc = std::source_location::current()) const;
  void alltoallBytes(
      std::size_t bytesPerPeer,
      std::source_location loc = std::source_location::current()) const;

  // -- non-blocking collectives (lazy: executed by wait()) -----------------
  Request ibarrier(
      std::source_location loc = std::source_location::current()) const;
  Request ibcast(
      std::vector<double> values, int root,
      std::source_location loc = std::source_location::current()) const;
  Request iallreduce(
      std::span<const double> values, ReduceOp op = ReduceOp::Sum,
      std::source_location loc = std::source_location::current()) const;

 private:
  friend class MpiContext;
  Communicator(MpiContext* ctx, std::uint64_t id, int rank,
               std::shared_ptr<const std::vector<int>> group)
      : ctx_(ctx), id_(id), rank_(rank), group_(std::move(group)) {}

  void requireMember() const;

  MpiContext* ctx_ = nullptr;
  std::uint64_t id_ = 0;
  int rank_ = -1;
  /// commRank -> world rank; null means the world identity mapping.
  std::shared_ptr<const std::vector<int>> group_;
};

}  // namespace tibsim::mpi
