#pragma once
// Deterministic runtime collective-matching verifier (PARCOACH-style).
//
// With verification enabled (--verify-collectives /
// TIBSIM_VERIFY_COLLECTIVES=1) every message sent from inside a collective
// carries a CollectiveStamp — the (communicator, collective kind, reduce
// op, per-communicator sequence number, element/byte count, call site)
// tuple of the collective the sender is executing. The receiving rank
// compares that stamp against its own active collective at match time: the
// first tuple a rank pins for a given (communicator, sequence) slot must
// equal every peer's, and any divergence raises ContractError with a
// report naming both ranks, both tuples, the call sites and the simulated
// time. The comparison happens on the existing match path in canonical
// delivery order, so the report is byte-identical across --sim-shards
// values and both execution backends — the dynamic cross-check for the
// static `collective-match` lint rule.
//
// Mismatches whose tag subspaces never meet (e.g. barrier vs gather) do
// not match any message and therefore stall; those are caught by the
// complementary --stall-report watchdog instead.

#include <cstdint>
#include <string>

namespace tibsim::mpi {

/// Process-wide default for WorldConfig::verifyCollectives. Initialised
/// once from TIBSIM_VERIFY_COLLECTIVES ("1"/"on"/"true" enable).
bool defaultVerifyCollectives();
void setDefaultVerifyCollectives(bool on);

/// RAII override of the process-wide default (campaigns, tests).
class ScopedVerifyCollectives {
 public:
  explicit ScopedVerifyCollectives(bool on)
      : previous_(defaultVerifyCollectives()) {
    setDefaultVerifyCollectives(on);
  }
  ~ScopedVerifyCollectives() { setDefaultVerifyCollectives(previous_); }
  ScopedVerifyCollectives(const ScopedVerifyCollectives&) = delete;
  ScopedVerifyCollectives& operator=(const ScopedVerifyCollectives&) = delete;

 private:
  bool previous_;
};

/// Which collective a stamp belongs to. `None` marks point-to-point
/// traffic (and collective traffic when verification is off).
enum class CollectiveKind : std::uint8_t {
  None = 0,
  Barrier,
  Bcast,
  BcastBytes,
  PipelinedBcastBytes,
  Reduce,
  Allreduce,
  AllreduceMax,
  Gather,
  Allgather,
  AlltoallBytes,
  Split,
  Dup,
};

const char* toString(CollectiveKind kind);

/// CollectiveStamp::op for collectives that are not reductions.
inline constexpr std::uint8_t kNoReduceOp = 0xfe;
/// CollectiveStamp::op for reductions with a user-supplied CombineFn
/// (opaque callables cannot be compared, only their presence).
inline constexpr std::uint8_t kCustomCombineOp = 0xff;

const char* reduceOpName(std::uint8_t op);

/// The verification tuple one collective entry pins. Building-block
/// collectives (allreduce = reduce + bcast, split = 3x allgather, ...)
/// inherit the outermost entry's stamp, so nesting is invisible to peers.
struct CollectiveStamp {
  CollectiveKind kind = CollectiveKind::None;
  std::uint8_t op = kNoReduceOp;  ///< ReduceOp value or a sentinel above
  std::uint32_t seq = 0;   ///< per-(rank, communicator) collective ordinal
  std::uint64_t count = 0;  ///< element or byte count, kind-specific
  const char* file = nullptr;  ///< call site (std::source_location)
  std::uint32_t line = 0;

  bool engaged() const { return kind != CollectiveKind::None; }
  bool matches(const CollectiveStamp& other) const {
    return kind == other.kind && op == other.op && seq == other.seq &&
           count == other.count;
  }
};

/// Render one stamp as `kind #seq (op=..., count=...) at file:line`.
/// Point-to-point (disengaged) stamps render as `point-to-point traffic`.
std::string describeStamp(const CollectiveStamp& stamp);

/// Render the mismatch report carried by the ContractError. Derived from
/// simulated state only: byte-stable across backends and shard counts.
std::string formatCollectiveMismatch(int rank, int node, int sender,
                                     std::uint64_t comm,
                                     const CollectiveStamp& local,
                                     const CollectiveStamp& remote,
                                     double now);

}  // namespace tibsim::mpi
