#pragma once
// Message payload memory for the simMPI hot path.
//
// Every send used to construct a fresh std::vector<std::byte> for its
// payload and every receive freed it — one allocator round-trip per message,
// millions of times per big-cluster sweep. Two layers remove that:
//
//  * MessagePayload stores payloads of up to kInlineCapacity (64) bytes
//    inline in the Message itself — covering the control traffic (doubles,
//    counters, CTS-sized frames) that dominates message counts — and backs
//    larger payloads with a buffer acquired from the world's PayloadPool.
//  * PayloadPool is a LIFO free-list of byte buffers owned by one MpiWorld.
//    doRecv()/wait() return each pooled buffer after copying the bytes out,
//    so steady-state sends reuse warm buffers and perform zero heap
//    allocations (the pool-stats counters in WorldStats prove it per run).
//
// Single-threaded by design: a world's sends and receives all run on the
// simulation thread, like the mailboxes.

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

namespace tibsim::mpi {

/// Free-list of payload buffers. Buffers keep their capacity while parked,
/// so a steady-state acquire is a pop + memcpy with no allocator traffic.
///
/// Sizing policy (ROADMAP "payload pool sizing"): the pool tracks how many
/// buffers were ever checked out *simultaneously* (the live high-water mark).
/// trimToHighWater() — called at world-teardown checkpoints — frees parked
/// buffers beyond that mark, so a burst of large messages early in a run
/// cannot pin its buffer memory for the rest of the campaign. The trim pops
/// from the *front* of the free list: the back of the LIFO is the warm end
/// that steady-state traffic reuses.
class PayloadPool {
 public:
  /// Deterministic accounting (functions of the simulated run only, safe to
  /// serialise): how payload storage was obtained and returned.
  struct Stats {
    std::uint64_t inlineMessages = 0;  ///< payloads stored in the Message
    std::uint64_t pooledMessages = 0;  ///< payloads backed by a pool buffer
    std::uint64_t reuses = 0;        ///< acquires served without allocating
    std::uint64_t allocations = 0;   ///< acquires that hit the allocator
    std::uint64_t returns = 0;       ///< buffers recycled into the free list
    std::uint64_t trimmedBuffers = 0;  ///< parked buffers freed by trims
    std::uint64_t liveHighWater = 0;   ///< max buffers checked out at once
  };

  /// A buffer holding a copy of `data`. Reuses a parked buffer when one
  /// with enough capacity is available; Stats record which case happened.
  std::vector<std::byte> acquire(std::span<const std::byte> data);

  /// Park a buffer for reuse. Contents are discarded, capacity is kept.
  void release(std::vector<std::byte>&& buffer);

  /// Free parked buffers beyond what the observed peak demand can use:
  /// keeps at most (liveHighWater - currently outstanding) buffers parked.
  /// Returns the number of buffers freed (also accumulated in Stats).
  std::size_t trimToHighWater();

  const Stats& stats() const { return stats_; }
  /// Resets counters for the next accounting window. The live high-water
  /// restarts from the buffers still outstanding now, not from zero.
  void resetStats() {
    stats_ = Stats{};
    stats_.liveHighWater = outstanding_;
  }

  std::size_t freeBuffers() const { return free_.size(); }
  std::size_t outstandingBuffers() const { return outstanding_; }

 private:
  friend class MessagePayload;
  std::vector<std::vector<std::byte>> free_;
  std::size_t outstanding_ = 0;  ///< buffers acquired and not yet released
  Stats stats_;
};

/// Payload storage for one in-flight message: empty, inline (<= 64 bytes,
/// no separate storage), or pooled (buffer borrowed from a PayloadPool).
/// Move-only so a pooled buffer has exactly one owner; the receive path
/// must call intoVector() to hand the bytes to the application and give the
/// buffer back to the pool it came from.
class MessagePayload {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  MessagePayload() = default;

  /// Copy `data` into inline storage or a pool buffer (counted in Stats).
  MessagePayload(std::span<const std::byte> data, PayloadPool& pool);

  // Moves reset the source to the empty state (a defaulted move would leave
  // its size_/pooled_ behind, making the moved-from payload look live).
  // Only the live prefix of the inline array is copied: a Message is moved
  // several times between send and receive (in-flight slab, mailbox), and
  // size-only traffic would otherwise pay for 64 bytes it never wrote.
  MessagePayload(MessagePayload&& other) noexcept
      : size_(std::exchange(other.size_, 0)),
        pooled_(std::exchange(other.pooled_, false)),
        buffer_(std::move(other.buffer_)) {
    if (!pooled_ && size_ > 0)
      std::memcpy(inline_.data(), other.inline_.data(), size_);
  }
  MessagePayload& operator=(MessagePayload&& other) noexcept {
    size_ = std::exchange(other.size_, 0);
    pooled_ = std::exchange(other.pooled_, false);
    buffer_ = std::move(other.buffer_);
    if (!pooled_ && size_ > 0)
      std::memcpy(inline_.data(), other.inline_.data(), size_);
    return *this;
  }
  MessagePayload(const MessagePayload&) = delete;
  MessagePayload& operator=(const MessagePayload&) = delete;

  std::size_t size() const { return size_; }
  bool pooled() const { return pooled_; }

  std::span<const std::byte> view() const {
    return pooled_ ? std::span<const std::byte>(buffer_.data(), size_)
                   : std::span<const std::byte>(inline_.data(), size_);
  }

  /// The application-facing copy: a fresh vector with the bytes, with any
  /// pooled buffer returned to `pool` for the next send to reuse.
  std::vector<std::byte> intoVector(PayloadPool& pool);

 private:
  std::size_t size_ = 0;
  bool pooled_ = false;
  // Deliberately not zero-initialised: only the first size_ bytes are ever
  // written (ctor) and read (view/moves), and zeroing 64 bytes per Message
  // construction is measurable on the ping-pong hot path.
  std::array<std::byte, kInlineCapacity> inline_;
  std::vector<std::byte> buffer_;
};

}  // namespace tibsim::mpi
