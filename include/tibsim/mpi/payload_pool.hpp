#pragma once
// Message payload memory for the simMPI hot path.
//
// Every send used to construct a fresh std::vector<std::byte> for its
// payload and every receive freed it — one allocator round-trip per message,
// millions of times per big-cluster sweep. Two layers remove that:
//
//  * MessagePayload stores payloads of up to kInlineCapacity (64) bytes
//    inline in the Message itself — covering the control traffic (doubles,
//    counters, CTS-sized frames) that dominates message counts — and backs
//    larger payloads with a buffer acquired from the world's PayloadPool.
//  * PayloadPool parks returned buffers in power-of-two *size classes*
//    (128 B, 256 B, ... — anything smaller rides inline). An acquire is
//    served from the request's own class when possible, then from the
//    smallest larger class (no copy-growth), and only as a last resort from
//    a smaller class (which reallocates, exactly like the old single free
//    list did). Apps cycling through many distinct large payload sizes
//    therefore stop thrashing one LIFO: each size class keeps its warm
//    buffers. Buffer capacities are rounded up to the class size so parked
//    buffers stay interchangeable within a class.
//
// Accounting: the serialised WorldStats counters (reuses, allocations,
// returns, trimmedBuffers, liveHighWater) predate the size classes and are
// part of the byte-identical campaign artefact contract, so they are
// produced by CompatModel — an exact count/capacity replica of the original
// single-LIFO pool fed with the same acquire/release sequence. The size
// classes additionally expose per-class counters (ClassStats) describing
// what the pool actually did; those are serialised into the campaign
// __worlds.csv per-class table, so sharded runs reproduce them canonically
// through ClassModel — the same capacity-only-mirror trick, replayed at the
// window barriers in merged dispatch order.
//
// Single-threaded by design: a world's sends and receives all run on the
// simulation thread, like the mailboxes. Sharded worlds give each shard its
// own pool with the compat model disabled and instead replay the canonical
// acquire/release order through one world-level CompatModel at the window
// barriers (see simmpi_sharded.cpp), so the serialised counters stay
// shard-count-invariant.

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <utility>
#include <vector>

namespace tibsim::mpi {

/// Size-classed free lists of payload buffers with legacy-exact accounting.
class PayloadPool {
 public:
  /// Deterministic accounting (functions of the simulated run only, safe to
  /// serialise): how payload storage was obtained and returned, in the
  /// original single-free-list model (see CompatModel).
  struct Stats {
    std::uint64_t inlineMessages = 0;  ///< payloads stored in the Message
    std::uint64_t pooledMessages = 0;  ///< payloads backed by a pool buffer
    std::uint64_t reuses = 0;        ///< acquires served without allocating
    std::uint64_t allocations = 0;   ///< acquires that hit the allocator
    std::uint64_t returns = 0;       ///< buffers recycled into the free list
    std::uint64_t trimmedBuffers = 0;  ///< parked buffers freed by trims
    std::uint64_t liveHighWater = 0;   ///< max buffers checked out at once
  };

  /// What the size-classed pool actually did, per power-of-two class.
  /// Serialised (campaign __worlds.csv per-class table): sharded runs must
  /// produce these through ClassModel so they stay shard-count-invariant.
  struct ClassStats {
    std::size_t classBytes = 0;      ///< buffer capacity of this class
    std::uint64_t acquires = 0;      ///< requests that mapped to this class
    std::uint64_t reuses = 0;        ///< served by a parked buffer (any class)
    std::uint64_t allocations = 0;   ///< paid an allocation or copy-growth
    std::uint64_t parked = 0;        ///< buffers returned into this class
  };

  /// Ticket pairing an acquire with its release for the compat model.
  static constexpr std::uint32_t kNoTicket = 0xffffffffu;

  /// Exact replica of the pre-size-class pool's accounting: one LIFO of
  /// buffer capacities, reuse iff the popped capacity fits, trim from the
  /// cold front. Fed with the same acquire/release sequence it reproduces
  /// the historical serialised counters bit-for-bit — which is the contract
  /// that keeps existing campaign artefacts byte-identical.
  class CompatModel {
   public:
    /// Legacy-model capacity of the acquired buffer; the caller keeps it
    /// per live buffer and hands it back to release().
    std::size_t acquire(std::size_t bytes);
    void release(std::size_t capacity);
    std::size_t trimToHighWater();
    void resetStats() {
      stats_ = Stats{};
      stats_.liveHighWater = outstanding_;
    }
    const Stats& stats() const { return stats_; }
    std::size_t freeCount() const { return freeCaps_.size(); }
    std::size_t outstandingCount() const { return outstanding_; }

   private:
    friend class PayloadPool;
    std::vector<std::size_t> freeCaps_;  ///< parked capacities, LIFO back
    std::size_t outstanding_ = 0;
    Stats stats_;
  };

  /// Capacity-only mirror of the size-classed pool itself — the ClassStats
  /// analogue of CompatModel. Fed the canonical acquire/release sequence at
  /// the shard barriers it reproduces exactly the per-class counters the
  /// single-queue pool produces, because the pool's behaviour depends only
  /// on buffer capacities (always rounded to a class size) and per-class
  /// LIFO order, both of which this model tracks.
  class ClassModel {
   public:
    /// Model capacity of the acquired buffer; hand it back to release().
    std::size_t acquire(std::size_t bytes);
    void release(std::size_t capacity);
    /// Mirrors PayloadPool::trimToHighWater (same keep policy and order).
    std::size_t trimToHighWater();
    void resetStats();
    const std::vector<ClassStats>& classStats() const { return classStats_; }

   private:
    void ensureClass(std::size_t index);
    std::vector<std::vector<std::size_t>> freeCaps_;  ///< by class, LIFO back
    std::vector<ClassStats> classStats_;
    std::size_t freeTotal_ = 0;
    std::size_t outstanding_ = 0;
    std::size_t liveHighWater_ = 0;
  };

  /// Smallest pooled class: one step above the inline capacity.
  static constexpr std::size_t kMinClassIndex = 7;  // 128 bytes

  /// Power-of-two class for a payload of `bytes` (>= 65).
  static std::size_t classIndex(std::size_t bytes);
  static std::size_t classBytes(std::size_t index) {
    return std::size_t{1} << index;
  }

  /// A buffer holding a copy of `data`, with capacity rounded up to the
  /// class size. `ticket` receives the pairing token for release (kNoTicket
  /// when the compat model is disabled).
  std::vector<std::byte> acquire(std::span<const std::byte> data,
                                 std::uint32_t& ticket);

  /// Park a buffer for reuse. Contents are discarded, capacity is kept.
  void release(std::vector<std::byte>&& buffer, std::uint32_t ticket);

  /// Free parked buffers beyond what the observed peak demand can use:
  /// keeps at most (liveHighWater - currently outstanding) buffers parked,
  /// dropping the smallest classes' coldest buffers first. Returns the
  /// number of buffers actually freed from the class lists.
  std::size_t trimToHighWater();

  /// Serialised accounting (legacy model — see CompatModel).
  const Stats& stats() const { return compat_.stats(); }
  /// Per-class accounting of what the size-classed pool actually did.
  const std::vector<ClassStats>& classStats() const { return classStats_; }

  /// Resets counters for the next accounting window. The live high-water
  /// restarts from the buffers still outstanding now, not from zero.
  void resetStats();

  /// Per-shard pools in a sharded world: the serialised counters are
  /// replayed canonically at the world level instead, so the per-pool
  /// compat model (whose order would be shard-local) is switched off.
  void disableCompat() { compatEnabled_ = false; }

  std::size_t freeBuffers() const { return freeTotal_; }
  std::size_t outstandingBuffers() const { return outstanding_; }

 private:
  friend class MessagePayload;

  void ensureClass(std::size_t index);
  std::uint32_t mintTicket(std::size_t compatCap);
  void noteInlineMessage() { ++compat_.stats_.inlineMessages; }
  void notePooledMessage() { ++compat_.stats_.pooledMessages; }

  std::vector<std::vector<std::vector<std::byte>>> free_;  ///< by class
  std::vector<ClassStats> classStats_;
  std::size_t freeTotal_ = 0;
  std::size_t outstanding_ = 0;  ///< buffers acquired and not yet released
  std::size_t liveHighWater_ = 0;
  bool compatEnabled_ = true;
  CompatModel compat_;
  std::vector<std::size_t> ticketCaps_;  ///< ticket -> legacy-model capacity
  std::vector<std::uint32_t> freeTickets_;
};

/// Payload storage for one in-flight message: empty, inline (<= 64 bytes,
/// no separate storage), or pooled (buffer borrowed from a PayloadPool).
/// Move-only so a pooled buffer has exactly one owner; the receive path
/// must call intoVector() to hand the bytes to the application and give the
/// buffer back to a pool (in a sharded world: the *consuming* shard's pool,
/// which is how warm buffers migrate toward the ranks that use them).
class MessagePayload {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  MessagePayload() = default;

  /// Copy `data` into inline storage or a pool buffer (counted in Stats).
  MessagePayload(std::span<const std::byte> data, PayloadPool& pool);

  // Moves reset the source to the empty state (a defaulted move would leave
  // its size_/pooled_ behind, making the moved-from payload look live).
  // Only the live prefix of the inline array is copied: a Message is moved
  // several times between send and receive (in-flight slab, mailbox), and
  // size-only traffic would otherwise pay for 64 bytes it never wrote.
  MessagePayload(MessagePayload&& other) noexcept
      : size_(std::exchange(other.size_, 0)),
        pooled_(std::exchange(other.pooled_, false)),
        ticket_(std::exchange(other.ticket_, PayloadPool::kNoTicket)),
        buffer_(std::move(other.buffer_)) {
    if (!pooled_ && size_ > 0)
      std::memcpy(inline_.data(), other.inline_.data(), size_);
  }
  MessagePayload& operator=(MessagePayload&& other) noexcept {
    size_ = std::exchange(other.size_, 0);
    pooled_ = std::exchange(other.pooled_, false);
    ticket_ = std::exchange(other.ticket_, PayloadPool::kNoTicket);
    buffer_ = std::move(other.buffer_);
    if (!pooled_ && size_ > 0)
      std::memcpy(inline_.data(), other.inline_.data(), size_);
    return *this;
  }
  MessagePayload(const MessagePayload&) = delete;
  MessagePayload& operator=(const MessagePayload&) = delete;

  std::size_t size() const { return size_; }
  bool pooled() const { return pooled_; }

  std::span<const std::byte> view() const {
    return pooled_ ? std::span<const std::byte>(buffer_.data(), size_)
                   : std::span<const std::byte>(inline_.data(), size_);
  }

  /// The application-facing copy: a fresh vector with the bytes, with any
  /// pooled buffer returned to `pool` for the next send to reuse.
  std::vector<std::byte> intoVector(PayloadPool& pool);

 private:
  std::size_t size_ = 0;
  bool pooled_ = false;
  std::uint32_t ticket_ = PayloadPool::kNoTicket;
  // Deliberately not zero-initialised: only the first size_ bytes are ever
  // written (ctor) and read (view/moves), and zeroing 64 bytes per Message
  // construction is measurable on the ping-pong hot path.
  std::array<std::byte, kInlineCapacity> inline_;
  std::vector<std::byte> buffer_;
};

}  // namespace tibsim::mpi
