#pragma once
// The Intel MPI Benchmarks (IMB), as used in Section 4.1 ("the latency and
// bandwidth results were measured using the ping-pong test from the Intel
// MPI Benchmark suite"), implemented over simMPI. Beyond PingPong this
// provides the other classic IMB patterns so an interconnect configuration
// can be characterised the way a real deployment would be.

#include <cstddef>
#include <functional>
#include <vector>

#include "tibsim/mpi/simmpi.hpp"

namespace tibsim::mpi::imb {

/// Observer invoked with every MpiWorld's WorldStats as a benchmark sweeps
/// its message sizes. Lets callers (the imb_suite experiment) account for
/// engine counters and message traffic that the per-operation Result
/// timings would otherwise discard.
using StatsHook = std::function<void(const WorldStats&)>;

struct Result {
  std::size_t bytes = 0;
  double seconds = 0.0;             ///< per-operation time (IMB convention)
  double bandwidthBytesPerS = 0.0;  ///< payload moved per second (0 if n/a)
};

/// The standard IMB message-size ladder: 0, 1, 2, 4, ... maxBytes.
std::vector<std::size_t> messageSizes(std::size_t maxBytes = 1 << 22);

/// PingPong between ranks 0 and 1: reported time is half the round trip.
std::vector<Result> pingPong(const WorldConfig& config,
                             const std::vector<std::size_t>& sizes,
                             int repetitions = 8,
                             const StatsHook& hook = {});

/// PingPing: both ranks send simultaneously, stressing the full-duplex
/// path; reported time is the per-message completion time.
std::vector<Result> pingPing(const WorldConfig& config,
                             const std::vector<std::size_t>& sizes,
                             int repetitions = 8,
                             const StatsHook& hook = {});

/// Exchange: every rank exchanges with both chain neighbours per
/// iteration (the halo pattern); 4 messages per rank per iteration.
std::vector<Result> exchange(const WorldConfig& config, int ranks,
                             const std::vector<std::size_t>& sizes,
                             int repetitions = 4,
                             const StatsHook& hook = {});

/// Allreduce on a vector of doubles across `ranks` ranks.
std::vector<Result> allreduce(const WorldConfig& config, int ranks,
                              const std::vector<std::size_t>& sizes,
                              int repetitions = 4,
                              const StatsHook& hook = {});

/// Bcast from rank 0 across `ranks` ranks.
std::vector<Result> bcast(const WorldConfig& config, int ranks,
                          const std::vector<std::size_t>& sizes,
                          int repetitions = 4,
                          const StatsHook& hook = {});

/// Barrier across `ranks` ranks; a single Result (bytes = 0).
Result barrier(const WorldConfig& config, int ranks, int repetitions = 16,
               const StatsHook& hook = {});

}  // namespace tibsim::mpi::imb
