#pragma once
// Paraver-style execution tracing for simMPI.
//
// The paper's team found Tibidabo's HPL scalability problem through
// "post-mortem application trace analysis" (Section 4) with Paraver
// (Figure 8). This module provides the equivalent for simulated runs: each
// rank's timeline is recorded as typed spans (compute, protocol CPU, wait)
// and summarised into the per-rank breakdowns that make a scalability
// bottleneck visible.
//
// Storage and exporters live in the obs layer (tibsim/obs/): Tracer is a
// thin facade over a pluggable obs::TraceSink, so the recording cost can be
// bounded (sampled reservoir, streaming aggregates) without the simMPI
// runtime knowing the difference. The span vocabulary is aliased back into
// tibsim::mpi for source compatibility.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tibsim/obs/exporters.hpp"
#include "tibsim/obs/trace_sink.hpp"

namespace tibsim::mpi {

using SpanKind = obs::SpanKind;
using TraceSpan = obs::TraceSpan;
using obs::toString;

class Tracer {
 public:
  using RankSummary = obs::RankSummary;

  /// Default: full-fidelity recording (every span retained).
  Tracer() : sink_(obs::TraceSink::create({})) {}

  /// Swap the sink for one built from `config`. Discards anything already
  /// recorded — call before the traced run, not during.
  void configure(const obs::SinkConfig& config) {
    sink_ = obs::TraceSink::create(config);
  }

  void record(const TraceSpan& span) { sink_->record(span); }
  void clear() { sink_->clear(); }

  obs::TraceMode mode() const { return sink_->mode(); }

  /// Spans retained for timeline export. Everything in full mode, the
  /// per-rank reservoirs in sampled mode, empty in aggregate mode.
  std::vector<TraceSpan> retainedSpans() const {
    return sink_->retainedSpans();
  }

  /// Total spans ever recorded — identical across modes.
  std::uint64_t spansRecorded() const { return sink_->spansRecorded(); }
  std::size_t spansRetained() const { return sink_->spansRetained(); }
  bool empty() const { return sink_->spansRecorded() == 0; }

  /// Approximate resident bytes held by the sink (deterministic).
  std::size_t memoryBytes() const { return sink_->memoryBytes(); }

  /// Per-rank time breakdown over [0, wallClock] — exact in every mode.
  std::vector<RankSummary> summarize(int ranks, double wallClock) const {
    return sink_->summarize(ranks, wallClock);
  }

  /// Fraction of total rank-time spent outside compute — the first number
  /// a scalability post-mortem looks at. Exact in every mode.
  double nonComputeFraction(int ranks, double wallClock) const {
    return sink_->nonComputeFraction(ranks, wallClock);
  }

  /// Per-(rank, kind) duration histogram; nullptr outside aggregate mode.
  const obs::DurationHistogram* histogram(int rank, SpanKind kind) const {
    return sink_->histogram(rank, kind);
  }

  /// One line per span: rank,kind,begin,end,peer,bytes (header included).
  std::string exportCsv() const { return obs::exportCsv(retainedSpans()); }

  /// Chrome trace_event JSON (chrome://tracing, Perfetto). The optional
  /// process name is JSON-escaped by the exporter, so experiment titles
  /// with quotes or backslashes stay loadable.
  std::string exportChromeJson(const std::string& processName = {}) const {
    return obs::exportChromeJson(retainedSpans(), processName);
  }

  /// Paraver .prv state records over the retained spans.
  std::string exportPrv(int ranks, double wallClockSeconds) const {
    return obs::exportPrv(retainedSpans(), ranks, wallClockSeconds);
  }

 private:
  std::unique_ptr<obs::TraceSink> sink_;
};

}  // namespace tibsim::mpi
