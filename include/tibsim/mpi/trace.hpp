#pragma once
// Paraver-style execution tracing for simMPI.
//
// The paper's team found Tibidabo's HPL scalability problem through
// "post-mortem application trace analysis" (Section 4) with Paraver
// (Figure 8). This module provides the equivalent for simulated runs: each
// rank's timeline is recorded as typed spans (compute, protocol CPU, wait)
// and summarised into the per-rank breakdowns that make a scalability
// bottleneck visible — plus a CSV export a real trace viewer could ingest.

#include <cstddef>
#include <string>
#include <vector>

namespace tibsim::mpi {

enum class SpanKind {
  Compute,  ///< application work charged via compute()
  Send,     ///< sender-side protocol CPU time
  Recv,     ///< receiver-side protocol CPU time
  Wait,     ///< blocked in recv with no matching message
};

std::string toString(SpanKind kind);

struct TraceSpan {
  int rank = 0;
  SpanKind kind = SpanKind::Compute;
  double begin = 0.0;
  double end = 0.0;
  int peer = -1;           ///< other rank for Send/Recv, -1 otherwise
  std::size_t bytes = 0;   ///< message size for Send/Recv

  double duration() const { return end - begin; }
};

class Tracer {
 public:
  void record(TraceSpan span);
  void clear();

  const std::vector<TraceSpan>& spans() const { return spans_; }
  bool empty() const { return spans_.empty(); }

  /// Per-rank time breakdown over [0, wallClock].
  struct RankSummary {
    int rank = 0;
    double computeSeconds = 0.0;
    double sendSeconds = 0.0;
    double recvSeconds = 0.0;
    double waitSeconds = 0.0;
    double otherSeconds = 0.0;  ///< wallclock not covered by spans

    double commSeconds() const { return sendSeconds + recvSeconds; }
  };

  std::vector<RankSummary> summarize(int ranks, double wallClock) const;

  /// Fraction of total rank-time spent outside compute — the first number
  /// a scalability post-mortem looks at.
  double nonComputeFraction(int ranks, double wallClock) const;

  /// One line per span: rank,kind,begin,end,peer,bytes (Paraver-convertible).
  std::string exportCsv() const;

 private:
  std::vector<TraceSpan> spans_;
};

}  // namespace tibsim::mpi
