#pragma once
// Unit helpers. tibsim stores quantities as doubles in SI base units
// (seconds, bytes, FLOPs, hertz, watts, joules); these constexpr factors and
// literal-style helpers keep call sites readable and conversion-bug free.

namespace tibsim::units {

// --- time ---
inline constexpr double kSecond = 1.0;
inline constexpr double kMilli = 1e-3;
inline constexpr double kMicro = 1e-6;
inline constexpr double kNano = 1e-9;

constexpr double ms(double v) { return v * kMilli; }
constexpr double us(double v) { return v * kMicro; }
constexpr double ns(double v) { return v * kNano; }

constexpr double toMs(double seconds) { return seconds / kMilli; }
constexpr double toUs(double seconds) { return seconds / kMicro; }
constexpr double toNs(double seconds) { return seconds / kNano; }

// --- data sizes (binary for buffers, decimal for link rates) ---
inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
inline constexpr double kKB = 1e3;
inline constexpr double kMB = 1e6;
inline constexpr double kGB = 1e9;

constexpr double kib(double v) { return v * kKiB; }
constexpr double mib(double v) { return v * kMiB; }
constexpr double gib(double v) { return v * kGiB; }

// --- rates ---
inline constexpr double kKbps = 1e3 / 8.0;  // bytes/s per kilobit/s
inline constexpr double kMbps = 1e6 / 8.0;
inline constexpr double kGbps = 1e9 / 8.0;

/// Link rate in bytes/s from a gigabits-per-second figure.
constexpr double gbps(double v) { return v * kGbps; }
constexpr double mbps(double v) { return v * kMbps; }

/// Bandwidth in bytes/s from GB/s (decimal, as memory vendors quote).
constexpr double gbPerS(double v) { return v * kGB; }

// --- frequency ---
inline constexpr double kMHz = 1e6;
inline constexpr double kGHz = 1e9;

constexpr double mhz(double v) { return v * kMHz; }
constexpr double ghz(double v) { return v * kGHz; }
constexpr double toGhz(double hertz) { return hertz / kGHz; }

// --- compute ---
inline constexpr double kMFLOPS = 1e6;
inline constexpr double kGFLOPS = 1e9;

constexpr double gflops(double v) { return v * kGFLOPS; }
constexpr double toGflops(double flopsPerS) { return flopsPerS / kGFLOPS; }
constexpr double toMflops(double flopsPerS) { return flopsPerS / kMFLOPS; }

}  // namespace tibsim::units
