#pragma once
// ASCII chart rendering so every bench binary can show the *shape* of a
// paper figure directly in the terminal (speedup curves, latency/bandwidth
// vs message size, scalability lines).

#include <string>
#include <vector>

namespace tibsim {

/// One named line of (x, y) points.
struct Series {
  std::string name;
  std::vector<double> x;
  std::vector<double> y;
};

struct ChartOptions {
  int width = 72;        ///< plot area width in characters
  int height = 20;       ///< plot area height in characters
  bool logX = false;     ///< log-scale the x axis (requires x > 0)
  bool logY = false;     ///< log-scale the y axis (requires y > 0)
  std::string xLabel;
  std::string yLabel;
  std::string title;
};

/// Render one or more series as a scatter/line chart. Each series is drawn
/// with its own marker character and listed in a legend below the plot.
std::string renderChart(const std::vector<Series>& series,
                        const ChartOptions& options);

/// Render a horizontal bar chart (one bar per label).
std::string renderBars(const std::vector<std::pair<std::string, double>>& bars,
                       const std::string& title, int width = 50);

}  // namespace tibsim
