#pragma once
// ResultSet: the structured result model every socbench experiment returns —
// named tables, named charts (series + axis options), scalar metrics and
// free-text notes — with deterministic JSON/CSV emitters next to the
// existing TextTable/ASCII-chart renderers. The JSON form is byte-stable
// for a given ResultSet, so campaign output can be diffed across runs and
// job counts.

#include <string>
#include <utility>
#include <vector>

#include "tibsim/common/chart.hpp"
#include "tibsim/common/json.hpp"
#include "tibsim/common/table.hpp"

namespace tibsim {

struct ResultTable {
  std::string name;
  TextTable table;
};

struct ResultChart {
  std::string name;
  std::vector<Series> series;
  ChartOptions options;
};

struct ResultMetric {
  std::string name;
  double value = 0.0;
  std::string unit;  ///< free-form: "GFLOPS", "x", "%", "" for plain counts
};

class ResultSet {
 public:
  void addTable(std::string name, TextTable table) {
    tables_.push_back({std::move(name), std::move(table)});
  }
  void addChart(std::string name, std::vector<Series> series,
                ChartOptions options) {
    charts_.push_back({std::move(name), std::move(series),
                       std::move(options)});
  }
  void addMetric(std::string name, double value, std::string unit = "") {
    metrics_.push_back({std::move(name), value, std::move(unit)});
  }
  void addNote(std::string text) { notes_.push_back(std::move(text)); }

  /// Append every artefact of `other`, keeping insertion order. Lets an
  /// experiment build independent panels in parallel cells and stitch the
  /// report together deterministically afterwards.
  void merge(ResultSet other) {
    for (auto& t : other.tables_) tables_.push_back(std::move(t));
    for (auto& c : other.charts_) charts_.push_back(std::move(c));
    for (auto& m : other.metrics_) metrics_.push_back(std::move(m));
    for (auto& n : other.notes_) notes_.push_back(std::move(n));
  }

  const std::vector<ResultTable>& tables() const { return tables_; }
  const std::vector<ResultChart>& charts() const { return charts_; }
  const std::vector<ResultMetric>& metrics() const { return metrics_; }
  const std::vector<std::string>& notes() const { return notes_; }

  bool empty() const {
    return tables_.empty() && charts_.empty() && metrics_.empty() &&
           notes_.empty();
  }

  friend bool operator==(const ResultSet& a, const ResultSet& b) {
    return toJson(a) == toJson(b);
  }

  /// Structured form: {"tables": [...], "charts": [...], "metrics": [...],
  /// "notes": [...]}; containers keep insertion order.
  static json::Value toJson(const ResultSet& results);

  /// Inverse of toJson; throws json::ParseError / ContractError on
  /// documents that do not describe a ResultSet.
  static ResultSet fromJson(const json::Value& document);

  /// Tables and charts as (file-stem, csv-content) pairs: tables export
  /// their cells, charts export x plus one column per series.
  std::vector<std::pair<std::string, std::string>> toCsvFiles() const;

  /// Terminal rendering: tables, ASCII charts, metrics, then notes — the
  /// format the standalone figure binaries print.
  std::string renderText() const;

 private:
  std::vector<ResultTable> tables_;
  std::vector<ResultChart> charts_;
  std::vector<ResultMetric> metrics_;
  std::vector<std::string> notes_;
};

}  // namespace tibsim
