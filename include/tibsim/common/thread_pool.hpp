#pragma once
// Minimal OpenMP-style fork-join thread pool for the native micro-kernel
// implementations. parallelFor splits an index range into contiguous chunks
// (static schedule), mirroring `#pragma omp parallel for`.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tibsim {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size() + 1; }

  /// Run body(begin, end, threadIndex) over [0, n) split into one contiguous
  /// chunk per thread; the calling thread executes chunk 0. Blocks until all
  /// chunks complete (fork-join barrier, like an OpenMP parallel-for).
  void parallelFor(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

 private:
  struct Task {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t thread = 0;
  };

  void workerLoop(std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body_ =
      nullptr;
  std::vector<Task> tasks_;
  std::size_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace tibsim
