#pragma once
// Minimal OpenMP-style fork-join thread pool for the native micro-kernel
// implementations. parallelFor splits an index range into contiguous chunks
// (static schedule), mirroring `#pragma omp parallel for`.

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tibsim {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threadCount() const { return workers_.size() + 1; }

  /// Run body(begin, end, threadIndex) over [0, n) split into one contiguous
  /// chunk per thread; the calling thread executes chunk 0. Blocks until all
  /// chunks complete (fork-join barrier, like an OpenMP parallel-for).
  void parallelFor(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

 private:
  struct Task {
    std::size_t begin = 0;
    std::size_t end = 0;
    std::size_t thread = 0;
  };

  void workerLoop(std::size_t index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body_ =
      nullptr;
  std::vector<Task> tasks_;
  std::size_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
};

/// Dynamic task scheduler for the socbench campaign driver. Unlike
/// ThreadPool's static fork-join split, parallelFor hands out indices one
/// at a time (experiments and sweep cells have wildly unequal runtimes),
/// and it is safe to call from *inside* a running task: the nested caller
/// claims its own batch's indices itself, so an experiment scheduled on the
/// pool can parallelise its inner sweep over the same workers without
/// deadlock. The first exception thrown by a task is rethrown to the
/// caller after the batch drains.
class TaskPool {
 public:
  /// Creates `threads` workers total (including the calling thread);
  /// 0 means std::thread::hardware_concurrency().
  explicit TaskPool(std::size_t threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  std::size_t threadCount() const { return workers_.size() + 1; }

  /// Run fn(i) for every i in [0, n), pulling indices dynamically. Blocks
  /// until the whole batch has completed.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Batch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t next = 0;  ///< next unclaimed index (guarded by pool mutex)
    std::size_t done = 0;  ///< completed indices (guarded by pool mutex)
    std::exception_ptr error;
  };

  void workerLoop();
  /// Claim and run one index of `batch`; returns false if none were left.
  bool runOneIndex(std::unique_lock<std::mutex>& lock,
                   const std::shared_ptr<Batch>& batch);

  std::mutex mutex_;
  std::condition_variable wake_;  ///< workers: a batch has unclaimed work
  std::condition_variable done_;  ///< callers: some batch index completed
  std::vector<std::shared_ptr<Batch>> open_;  ///< batches with unclaimed work
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace tibsim
