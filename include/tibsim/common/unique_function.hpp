#pragma once
// Move-only callable wrapper with a larger inline buffer than std::function.
//
// The discrete-event engine schedules millions of closures per run, and the
// hot ones (message delivery, process wake-ups) capture a handful of words.
// libstdc++'s std::function only stores trivially-copyable captures of up to
// 16 bytes inline, so a 24-byte [this, dst, id] capture — or anything
// holding a move-only payload handle — costs a heap allocation per event.
// UniqueFunction stores any nothrow-move-constructible callable of up to 32
// bytes inline — covering every engine hot-path capture — and falls back to
// the heap above that. With the two dispatch pointers that makes the whole
// wrapper 48 bytes, so a queued Event (t, seq, fn) stays within one cache
// line; a bigger buffer measurably slows the binary-heap sift, which moves
// Events by value. Being move-only it also accepts captures std::function
// rejects outright.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace tibsim {

class UniqueFunction {
 public:
  static constexpr std::size_t kInlineBytes = 32;

  UniqueFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); };
      manage_ = [](Op op, UniqueFunction* self, UniqueFunction* to) {
        Fn* fn = std::launder(reinterpret_cast<Fn*>(self->storage_));
        if (op == Op::MoveTo)
          ::new (static_cast<void*>(to->storage_)) Fn(std::move(*fn));
        fn->~Fn();
      };
    } else {
      // Heap fallback: the storage holds a single owning pointer.
      auto* heap = new Fn(std::forward<F>(f));
      ::new (static_cast<void*>(storage_)) Fn*(heap);
      invoke_ = [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); };
      manage_ = [](Op op, UniqueFunction* self, UniqueFunction* to) {
        Fn** slot = std::launder(reinterpret_cast<Fn**>(self->storage_));
        if (op == Op::MoveTo) {
          ::new (static_cast<void*>(to->storage_)) Fn*(*slot);
          *slot = nullptr;
        } else {
          delete *slot;
        }
      };
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { moveFrom(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(storage_); }

  void reset() {
    if (manage_ != nullptr) manage_(Op::Destroy, this, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  enum class Op : unsigned char { MoveTo, Destroy };
  using Invoke = void (*)(void*);
  using Manage = void (*)(Op, UniqueFunction*, UniqueFunction*);

  void moveFrom(UniqueFunction& other) noexcept {
    if (other.manage_ != nullptr) {
      // MoveTo transfers the callable into our storage and destroys the
      // source object (for the heap case it just moves the pointer).
      other.manage_(Op::MoveTo, &other, this);
    }
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace tibsim
