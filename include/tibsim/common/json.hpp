#pragma once
// Minimal JSON document model for the socbench result emitters: an ordered
// object (insertion order is preserved so emitted documents are byte-stable
// across runs and job counts), arrays, strings, numbers, booleans and null.
// Numbers serialise via std::to_chars shortest-round-trip so parse(dump(v))
// reproduces v exactly.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace tibsim::json {

class Value;

/// Thrown by Value::parse on malformed input.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  enum class Type { Null, Boolean, Number, String, Array, Object };

  using Array = std::vector<Value>;
  using Member = std::pair<std::string, Value>;
  using Object = std::vector<Member>;

  Value() : type_(Type::Null) {}
  Value(std::nullptr_t) : type_(Type::Null) {}
  Value(bool b) : type_(Type::Boolean), bool_(b) {}
  Value(double n) : type_(Type::Number), number_(n) {}
  Value(int n) : type_(Type::Number), number_(n) {}
  Value(unsigned n) : type_(Type::Number), number_(n) {}
  Value(long long n) : type_(Type::Number), number_(static_cast<double>(n)) {}
  Value(unsigned long n)
      : type_(Type::Number), number_(static_cast<double>(n)) {}
  Value(unsigned long long n)
      : type_(Type::Number), number_(static_cast<double>(n)) {}
  Value(const char* s) : type_(Type::String), string_(s) {}
  Value(std::string s) : type_(Type::String), string_(std::move(s)) {}

  static Value array() {
    Value v;
    v.type_ = Type::Array;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::Object;
    return v;
  }

  Type type() const { return type_; }
  bool isNull() const { return type_ == Type::Null; }
  bool isBool() const { return type_ == Type::Boolean; }
  bool isNumber() const { return type_ == Type::Number; }
  bool isString() const { return type_ == Type::String; }
  bool isArray() const { return type_ == Type::Array; }
  bool isObject() const { return type_ == Type::Object; }

  bool asBool() const;
  double asDouble() const;
  const std::string& asString() const;

  // --- array access ---------------------------------------------------------
  std::size_t size() const;
  /// Append to an array (a null value becomes an array first).
  Value& push(Value element);
  const Value& at(std::size_t index) const;
  const Array& items() const;

  // --- object access --------------------------------------------------------
  /// Insert-or-fetch a member (a null value becomes an object first).
  Value& operator[](const std::string& key);
  /// Member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
  const Object& members() const;

  /// Serialise. indent < 0 yields the compact single-line form; otherwise
  /// nested containers are broken across lines with `indent` spaces/level.
  std::string dump(int indent = -1) const;

  /// Parse a complete JSON document (trailing garbage is an error).
  static Value parse(const std::string& text);

  friend bool operator==(const Value& a, const Value& b);

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Shortest round-trip decimal representation of a finite double
/// ("42", "0.1", "1e+20"); the socbench JSON number format.
std::string formatNumber(double value);

}  // namespace tibsim::json
