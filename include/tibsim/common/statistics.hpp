#pragma once
// Small descriptive-statistics helpers used by the evaluation framework
// (per-kernel aggregation uses geometric means, as the paper averages
// speedups across the micro-kernel suite).

#include <span>
#include <vector>

namespace tibsim::stats {

/// Arithmetic mean. Requires a non-empty range.
double mean(std::span<const double> xs);

/// Geometric mean. Requires all values > 0.
double geomean(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator). Requires size >= 2.
double stddev(std::span<const double> xs);

/// Median (copies and partially sorts). Requires non-empty.
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Requires non-empty.
double percentile(std::span<const double> xs, double p);

double min(std::span<const double> xs);
double max(std::span<const double> xs);
double sum(std::span<const double> xs);

/// Weighted harmonic mean — the right way to average rates (e.g. FLOP/s
/// across kernels weighted by work).
double harmonicMean(std::span<const double> xs);

/// Running mean/variance accumulator (Welford). Numerically stable.
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< sample variance; requires count() >= 2
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace tibsim::stats
