#pragma once
// Deterministic, seedable PRNG (xoshiro256**). Every stochastic component in
// tibsim takes an explicit seed so simulations replay bit-identically;
// std::mt19937 is avoided because its state is heavyweight to copy around.

#include <cstdint>

namespace tibsim {

/// xoshiro256** by Blackman & Vigna — fast, high quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise state from a 64-bit seed via SplitMix64 expansion.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t nextU64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * nextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t nextBelow(std::uint64_t n) { return nextU64() % n; }

  /// Standard normal via Box–Muller (one value per call; simple over fast).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return nextDouble() < p; }

  /// Exponentially distributed value with the given rate (lambda).
  double exponential(double rate);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace tibsim
