#pragma once
// Least-squares regression used by the trend module: the paper fits
// exponential regressions to peak-FLOPS-vs-year series (Figure 2) and reads
// off growth rates and the projected mobile/server crossover.

#include <span>

namespace tibsim {

/// Result of an ordinary least-squares fit y = intercept + slope * x.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;  ///< coefficient of determination

  double at(double x) const { return intercept + slope * x; }
};

/// Fit a straight line through (xs, ys). Requires >= 2 distinct x values.
LinearFit fitLinear(std::span<const double> xs, std::span<const double> ys);

/// Result of an exponential fit y = a * exp(b * x), obtained by linear
/// regression of log(y) on x. All y values must be positive.
struct ExponentialFit {
  double a = 0.0;   ///< multiplier at x = x0
  double b = 0.0;   ///< growth rate per unit x
  double r2 = 0.0;  ///< r^2 of the underlying log-linear fit
  double x0 = 0.0;  ///< centring offset (mean of the fitted x values),
                    ///< keeps exp() in range for large x such as years

  double at(double x) const;
  /// x-interval over which y grows by a factor of two (negative b => decay).
  double doublingTime() const;
  /// Growth factor over one unit of x (e.g. yearly improvement factor).
  double growthPerUnit() const;
};

ExponentialFit fitExponential(std::span<const double> xs,
                              std::span<const double> ys);

/// Solve for the x at which two exponential fits intersect.
/// Requires the growth rates to differ.
double crossover(const ExponentialFit& lhs, const ExponentialFit& rhs);

}  // namespace tibsim
