#pragma once
// Result rendering: fixed-column text tables (what the bench binaries print)
// and CSV export (what a plotting script would consume).

#include <iosfwd>
#include <string>
#include <vector>

namespace tibsim {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with a fixed precision. Rendered with a header rule, suitable for
/// terminal output of paper tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; it must have exactly as many cells as there are headers.
  void addRow(std::vector<std::string> cells);

  std::size_t rowCount() const { return rows_.size(); }
  std::size_t columnCount() const { return headers_.size(); }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Render with 2-space gutters, headers underlined with dashes.
  std::string render() const;

  /// Comma-separated export (quotes cells containing commas/quotes).
  std::string toCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `precision` digits after the point.
std::string fmt(double value, int precision = 2);

/// Format a double in engineering style with a unit suffix, e.g. 1.25 GB/s.
std::string fmtSi(double value, const std::string& unit, int precision = 2);

}  // namespace tibsim
