#pragma once
// Precondition / invariant checking for tibsim.
//
// TIB_REQUIRE is used for API preconditions (throws tibsim::ContractError so
// callers and tests can observe violations); TIB_ASSERT is for internal
// invariants and is compiled out in NDEBUG builds.

#include <stdexcept>
#include <string>

namespace tibsim {

/// Thrown when a TIB_REQUIRE precondition fails.
class ContractError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contractFailure(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::string what = std::string("contract violation: ") + expr + " at " +
                     file + ":" + std::to_string(line);
  if (!msg.empty()) what += " — " + msg;
  throw ContractError(what);
}
}  // namespace detail

}  // namespace tibsim

#define TIB_REQUIRE(expr)                                                 \
  do {                                                                    \
    if (!(expr))                                                          \
      ::tibsim::detail::contractFailure(#expr, __FILE__, __LINE__, "");   \
  } while (false)

#define TIB_REQUIRE_MSG(expr, msg)                                        \
  do {                                                                    \
    if (!(expr))                                                          \
      ::tibsim::detail::contractFailure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define TIB_ASSERT(expr) ((void)0)
#else
#define TIB_ASSERT(expr) TIB_REQUIRE(expr)
#endif
