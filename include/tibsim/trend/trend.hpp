#pragma once
// Historical trend analysis (Section 1, Figures 1 and 2).
//
// Embedded public datasets: TOP500 system counts by architecture class
// (1993-2013) and peak double-precision MFLOPS of representative processors
// (vector, commodity micro, server, mobile). Exponential regression on the
// FLOPS series yields the growth rates the paper discusses and the
// projected mobile/server crossover.

#include <string>
#include <vector>

#include "tibsim/common/regression.hpp"

namespace tibsim::trend {

/// One TOP500 list edition: systems per architecture class.
struct Top500Entry {
  double year = 0.0;  ///< e.g. 1997.5 for the June list
  int x86 = 0;
  int risc = 0;
  int vectorSimd = 0;
};

/// The Figure 1 dataset (approximate counts read from the TOP500 archives).
const std::vector<Top500Entry>& top500ArchitectureShare();

/// The list edition in which `x86` first overtakes `risc` (and similar
/// questions) — helpers for the Figure 1 narrative.
double yearX86OvertakesRisc();
double yearRiscOvertakesVector();

/// One processor's peak FP64 rating.
struct ProcessorPoint {
  std::string name;
  double year = 0.0;
  double peakMflops = 0.0;
};

enum class ProcessorClass { Vector, Commodity, Server, Mobile };

/// Figure 2(a)/(b) datasets.
const std::vector<ProcessorPoint>& processorPoints(ProcessorClass cls);

/// Exponential fit of peak MFLOPS vs year for one class.
ExponentialFit fitClass(ProcessorClass cls);

/// Performance gap between two classes at a given year (lhs / rhs).
double gapAt(ProcessorClass lhs, ProcessorClass rhs, double year);

/// Projected year at which the (faster-growing) `challenger` class matches
/// the `incumbent` class.
double projectedCrossover(ProcessorClass challenger,
                          ProcessorClass incumbent);

}  // namespace tibsim::trend
