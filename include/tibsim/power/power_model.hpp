#pragma once
// Platform power model and simulated wall-plug power meter.
//
// The paper measures whole-platform power with a Yokogawa WT230 between the
// power socket and the device (10 Hz sampling, 0.1 % precision) and reports
// energy-to-solution for the parallel region only. The model decomposes
// platform power as
//
//   P = board_static + soc_static
//     + sum(active cores) core_dynamic * (f/f_max) * (V/V_max)^2
//     + mem_W_per_GBs * achieved_bandwidth
//     + nic_active (while the NIC is moving data)
//
// The board static term dominates on every evaluated platform, which is what
// produces the paper's counter-intuitive headline: raising the CPU frequency
// raises CPU power superlinearly yet *improves* platform energy efficiency.

#include <functional>

#include "tibsim/arch/platform.hpp"
#include "tibsim/common/rng.hpp"

namespace tibsim::power {

/// Instantaneous load placed on a platform.
struct LoadState {
  int activeCores = 1;
  double coreUtilization = 1.0;   ///< [0,1] busy fraction of active cores
  double memBandwidthBytesPerS = 0.0;  ///< achieved DRAM traffic
  bool nicActive = false;

  static LoadState idle() { return LoadState{0, 0.0, 0.0, false}; }
};

class PowerModel {
 public:
  explicit PowerModel(arch::Platform platform);

  /// Whole-platform power draw in watts at the given core frequency/load.
  double watts(double frequencyHz, const LoadState& load) const;

  /// Platform power with CPUs idle at the lowest DVFS point.
  double idleWatts() const;

  /// Dynamic power of a single fully-busy core at the given frequency.
  double coreDynamicWatts(double frequencyHz) const;

  const arch::Platform& platform() const { return platform_; }

 private:
  arch::Platform platform_;
};

/// Simulated Yokogawa WT230: samples a power trace at a fixed rate with
/// multiplicative Gaussian noise, integrates energy by the rectangle rule —
/// the same thing the real meter does internally.
class SimulatedPowerMeter {
 public:
  struct Config {
    double sampleRateHz = 10.0;   ///< WT230 samples at 10 Hz
    double relativeError = 1e-3;  ///< 0.1 % precision
    std::uint64_t seed = 42;
  };

  SimulatedPowerMeter() : SimulatedPowerMeter(Config{}) {}
  explicit SimulatedPowerMeter(Config config);

  /// Measurement of the interval [t0, t1) of a power trace.
  struct Reading {
    double energyJ = 0.0;
    double averageW = 0.0;
    std::size_t samples = 0;
  };

  /// Sample powerAt(t) over [t0, t1) and integrate. Requires t1 > t0.
  Reading measure(const std::function<double(double)>& powerAtTime, double t0,
                  double t1);

 private:
  Config config_;
  Rng rng_;
};

/// Green500-style metric: MFLOPS achieved per watt.
double mflopsPerWatt(double flops, double seconds, double averageWatts);

}  // namespace tibsim::power
