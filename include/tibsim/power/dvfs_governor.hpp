#pragma once
// DVFS governor simulation.
//
// Section 5: "All Linux kernels were tuned for HPC by ... setting the
// default DVFS policy to performance." This module shows why: it simulates
// the classic cpufreq governors over a bursty compute trace and reports
// time-to-solution and platform energy. On board-static-dominated mobile
// platforms the performance governor wins both metrics for HPC phases —
// the same race-to-idle effect as the Figure 3(b) frequency sweep.

#include <span>
#include <string>
#include <vector>

#include "tibsim/arch/platform.hpp"
#include "tibsim/perfmodel/work_profile.hpp"

namespace tibsim::power {

enum class GovernorPolicy {
  Performance,   ///< pin to the highest operating point
  Powersave,     ///< pin to the lowest operating point
  OnDemand,      ///< jump to max when busy, decay towards min when idle
  Conservative,  ///< step one operating point up/down per sample
};

std::string toString(GovernorPolicy policy);

/// One phase of an application: a burst of compute demand followed by an
/// idle gap (I/O, communication wait).
struct WorkPhase {
  double flops = 0.0;
  double idleSeconds = 0.0;
};

class DvfsGovernor {
 public:
  struct Config {
    GovernorPolicy policy = GovernorPolicy::Performance;
    double samplePeriodSeconds = 0.1;  ///< governor tick (Linux: ~10-100 ms)
    double upThreshold = 0.80;  ///< ondemand: busy fraction that triggers max
  };

  DvfsGovernor(arch::Platform platform, Config config);

  struct RunResult {
    double seconds = 0.0;   ///< wall clock to complete all phases
    double energyJ = 0.0;   ///< whole-platform energy over the run
    double averageFrequencyHz = 0.0;  ///< time-weighted
    double busyFraction = 0.0;
    std::vector<double> frequencyTrace;  ///< one entry per governor tick
  };

  /// Execute the phases; compute progresses at the roofline rate for
  /// `shape` at the governor-selected frequency on one core.
  RunResult run(std::span<const WorkPhase> phases,
                const perfmodel::WorkProfile& shape) const;

  const Config& config() const { return config_; }

 private:
  double nextFrequency(double currentHz, double utilization) const;
  std::size_t opIndexAtOrBelow(double frequencyHz) const;

  arch::Platform platform_;
  Config config_;
};

}  // namespace tibsim::power
