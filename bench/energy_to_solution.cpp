// Compat wrapper: equivalent to `socbench run energy_to_solution --compat`. The
// experiment body lives in the registry (src/core/experiments_*.cpp).

#include "tibsim/core/campaign.hpp"

int main(int argc, char** argv) {
  return tibsim::core::runCompatBinary("energy_to_solution", argc, argv);
}
