// Section 4's energy-to-solution claim (from the Goddeke et al. JCP'13
// study the paper summarises): running PDE solvers, Tibidabo took ~4x
// longer than an Intel Nehalem-based cluster but used up to 3x less
// energy. Reproduced here with the SPECFEM3D proxy on the simulated
// Tibidabo vs a Nehalem-class x86 cluster sized to the study's throughput.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/apps/hydro.hpp"
#include "tibsim/apps/specfem.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"

namespace {

using namespace tibsim;
using namespace tibsim::units;

/// A dual-socket Nehalem-class compute node: the laptop's core model
/// downgraded to the Nehalem generation (128-bit SSE, 2.26 GHz) with
/// server-node power: redundant PSUs, fans, BMC, registered DIMMs.
cluster::ClusterSpec nehalemCluster(int nodes) {
  cluster::ClusterSpec spec;
  spec.name = "Nehalem-class x86 cluster";
  spec.nodePlatform = arch::PlatformRegistry::corei7_2760qm();
  spec.nodePlatform.name = "2-socket Nehalem-class node";
  spec.nodePlatform.shortName = "x86node";
  // Nehalem generation: 128-bit SSE (4 FP64/cycle), 2.26 GHz parts,
  // two sockets per node.
  spec.nodePlatform.soc.core.fp64FlopsPerCycle = 4.0;
  spec.nodePlatform.soc.cores = 8;
  spec.nodePlatform.soc.dvfs = {{ghz(1.6), 0.9}, {ghz(2.26), 1.1}};
  spec.nodePlatform.dramBytes = static_cast<std::size_t>(gib(24.0));
  spec.nodePlatform.power =
      arch::BoardPowerParams{/*boardStaticW=*/240.0, /*socStaticW=*/30.0,
                             /*corePeakDynamicW=*/15.0,
                             /*memDynamicWPerGBs=*/0.4, /*nicActiveW=*/2.0};
  spec.nodePlatform.nicAttachment = arch::NicAttachment::OnChip;
  spec.nodes = nodes;
  spec.frequencyHz = spec.nodePlatform.maxFrequencyHz();
  spec.protocol = net::Protocol::TcpIp;
  spec.ranksPerNode = 8;
  spec.topology.linkRateBytesPerS = gbps(1.0);
  spec.topology.bisectionBytesPerS = gbps(8.0);
  return spec;
}

}  // namespace

int main() {
  benchutil::heading("Energy to solution",
                     "Tibidabo vs Nehalem-class cluster (Section 4, "
                     "PDE-solver study)");

  apps::SpecfemBenchmark::Params specfem;
  specfem.steps = 60;
  apps::HydroBenchmark::Params hydro;
  hydro.steps = 40;

  cluster::ClusterSimulation tibidabo(cluster::ClusterSpec::tibidabo());
  cluster::ClusterSimulation nehalem(nehalemCluster(24));

  TextTable table({"application", "cluster", "nodes", "time s",
                   "avg power W", "energy kJ"});
  struct Row {
    double time, energy;
  };
  auto runBoth = [&](const std::string& app,
                     const mpi::MpiWorld::RankBody& tibBody,
                     const mpi::MpiWorld::RankBody& nehBody, int tibNodes,
                     int nehNodes) {
    const auto tib = tibidabo.runJob(tibNodes, tibBody);
    const auto neh = nehalem.runJob(nehNodes, nehBody);
    table.addRow({app, "Tibidabo (96 x Tegra2)", std::to_string(tibNodes),
                  fmt(tib.wallClockSeconds, 1), fmt(tib.averagePowerW, 0),
                  fmt(tib.energyJ / 1e3, 1)});
    table.addRow({app, "Nehalem-class x86", std::to_string(nehNodes),
                  fmt(neh.wallClockSeconds, 1), fmt(neh.averagePowerW, 0),
                  fmt(neh.energyJ / 1e3, 1)});
    return std::pair<Row, Row>{{tib.wallClockSeconds, tib.energyJ},
                               {neh.wallClockSeconds, neh.energyJ}};
  };

  const auto [tibS, nehS] =
      runBoth("SPECFEM3D", apps::SpecfemBenchmark::rankBody(specfem),
              apps::SpecfemBenchmark::rankBody(specfem), 96, 24);
  const auto [tibH, nehH] =
      runBoth("HYDRO", apps::HydroBenchmark::rankBody(hydro),
              apps::HydroBenchmark::rankBody(hydro), 96, 24);
  std::cout << table.render() << '\n';

  TextTable summary(
      {"application", "time ratio (ARM/x86)", "energy ratio (x86/ARM)"});
  summary.addRow({"SPECFEM3D", fmt(tibS.time / nehS.time, 1) + "x",
                  fmt(nehS.energy / tibS.energy, 1) + "x lower on ARM"});
  summary.addRow({"HYDRO", fmt(tibH.time / nehH.time, 1) + "x",
                  fmt(nehH.energy / tibH.energy, 1) + "x lower on ARM"});
  std::cout << summary.render() << '\n';

  benchutil::note(
      "paper (citing the JCP'13 study): ~4x longer time-to-solution on "
      "Tibidabo, up to 3x lower energy-to-solution — the trade the "
      "Conclusions section calls the opening for mobile SoCs.");
  return 0;
}
