// The full IMB-style interconnect characterisation of a Tibidabo node pair
// and partition — the measurement suite behind Figure 7, extended to the
// patterns a deployment would run: PingPong, PingPing, Exchange,
// Allreduce, Bcast, Barrier, with per-rank trace breakdown.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/mpi/imb.hpp"

int main() {
  using namespace tibsim;
  using namespace tibsim::units;
  benchutil::heading("IMB suite",
                     "Intel-MPI-Benchmarks-style characterisation of the "
                     "Tibidabo interconnect");

  mpi::WorldConfig cfg = mpi::WorldConfig::tibidaboNode();
  cfg.ranksPerNode = 1;  // one rank per node: pure network measurement

  const std::vector<std::size_t> sizes = {0,    64,    1024,
                                          16384, 262144, 1 << 20};

  std::cout << "-- two nodes --\n";
  TextTable p2p({"bytes", "PingPong us", "PingPong MB/s", "PingPing us",
                 "PingPing MB/s"});
  const auto pong = mpi::imb::pingPong(cfg, sizes);
  const auto ping = mpi::imb::pingPing(cfg, sizes);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    p2p.addRow({std::to_string(sizes[i]), fmt(toUs(pong[i].seconds), 1),
                fmt(pong[i].bandwidthBytesPerS / 1e6, 1),
                fmt(toUs(ping[i].seconds), 1),
                fmt(ping[i].bandwidthBytesPerS / 1e6, 1)});
  }
  std::cout << p2p.render() << '\n';

  std::cout << "-- 32-node partition --\n";
  const std::vector<std::size_t> collSizes = {8, 1024, 65536};
  TextTable coll({"bytes", "Exchange us", "Allreduce us", "Bcast us"});
  const auto ex = mpi::imb::exchange(cfg, 32, collSizes);
  const auto ar = mpi::imb::allreduce(cfg, 32, collSizes);
  const auto bc = mpi::imb::bcast(cfg, 32, collSizes);
  for (std::size_t i = 0; i < collSizes.size(); ++i) {
    coll.addRow({std::to_string(collSizes[i]), fmt(toUs(ex[i].seconds), 1),
                 fmt(toUs(ar[i].seconds), 1), fmt(toUs(bc[i].seconds), 1)});
  }
  std::cout << coll.render() << '\n';

  TextTable barrier({"ranks", "Barrier us"});
  for (int ranks : {2, 8, 32, 128}) {
    barrier.addRow({std::to_string(ranks),
                    fmt(toUs(mpi::imb::barrier(cfg, ranks).seconds), 1)});
  }
  std::cout << barrier.render() << '\n';

  // Trace-based breakdown of one Exchange run (the Paraver view).
  std::cout << "-- post-mortem trace: 8-rank Exchange, 64 KiB halos --\n";
  mpi::MpiWorld world(cfg, 8);
  world.enableTracing();
  const auto stats = world.run([](mpi::MpiContext& ctx) {
    for (int i = 0; i < 4; ++i) {
      ctx.computeSeconds(1e-3);
      ctx.neighborExchange(65536, 4);
    }
  });
  TextTable trace({"rank", "compute ms", "send ms", "recv ms", "wait ms"});
  for (const auto& s :
       world.tracer().summarize(8, stats.wallClockSeconds)) {
    trace.addRow({std::to_string(s.rank), fmt(toMs(s.computeSeconds), 2),
                  fmt(toMs(s.sendSeconds), 2), fmt(toMs(s.recvSeconds), 2),
                  fmt(toMs(s.waitSeconds), 2)});
  }
  std::cout << trace.render() << '\n';
  std::cout << "non-compute fraction: "
            << fmt(100 * world.tracer().nonComputeFraction(
                             8, stats.wallClockSeconds),
                   1)
            << "%  (" << world.tracer().spans().size()
            << " spans recorded; exportCsv() feeds a trace viewer)\n";
  return 0;
}
