// Ablation: DVFS governor policy. Section 5 states the kernels were tuned
// for HPC by "setting the default DVFS policy to performance" — this study
// quantifies that decision across the evaluated platforms for a bursty
// HPC-style trace (compute bursts separated by communication/IO waits).

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/power/dvfs_governor.hpp"

int main() {
  using namespace tibsim;
  using namespace tibsim::units;
  benchutil::heading("Ablation", "DVFS governor policy (Section 5 tuning)");

  const perfmodel::WorkProfile shape{
      1.0, 0.0, perfmodel::AccessPattern::Resident, 0.9, 1.0, 0.0};
  // 20 bursts of 1 GFLOP with 0.2 s gaps: an MPI application iterating.
  const std::vector<power::WorkPhase> trace(20, power::WorkPhase{1e9, 0.2});

  for (const auto& platform : {arch::PlatformRegistry::tegra2(),
                               arch::PlatformRegistry::exynos5250(),
                               arch::PlatformRegistry::corei7_2760qm()}) {
    std::cout << "-- " << platform.name << " --\n";
    TextTable table({"governor", "time s", "energy J", "avg freq GHz",
                     "vs performance"});
    double baseEnergy = 0.0;
    for (auto policy :
         {power::GovernorPolicy::Performance, power::GovernorPolicy::OnDemand,
          power::GovernorPolicy::Conservative,
          power::GovernorPolicy::Powersave}) {
      power::DvfsGovernor::Config cfg;
      cfg.policy = policy;
      const auto result =
          power::DvfsGovernor(platform, cfg).run(trace, shape);
      if (baseEnergy == 0.0) baseEnergy = result.energyJ;
      table.addRow({toString(policy), fmt(result.seconds, 2),
                    fmt(result.energyJ, 1),
                    fmt(toGhz(result.averageFrequencyHz), 2),
                    fmt(result.energyJ / baseEnergy, 2) + "x energy"});
    }
    std::cout << table.render() << '\n';
  }

  benchutil::note(
      "on the board-static-dominated mobile platforms the performance "
      "governor is fastest AND most energy-efficient (race-to-idle) — the "
      "same effect as the Figure 3(b) frequency sweep, and the reason the "
      "paper pinned the performance governor for its measurements.");
  return 0;
}
