// Compat wrapper: equivalent to `socbench run ablation_dvfs --compat`. The
// experiment body lives in the registry (src/core/experiments_*.cpp).

#include "tibsim/core/campaign.hpp"

int main(int argc, char** argv) {
  return tibsim::core::runCompatBinary("ablation_dvfs", argc, argv);
}
