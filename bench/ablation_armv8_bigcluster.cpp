// Compat wrapper: equivalent to `socbench run ablation_armv8_bigcluster
// --compat`. The experiment body lives in the registry
// (src/core/experiments_*.cpp).

#include "tibsim/core/campaign.hpp"

int main(int argc, char** argv) {
  return tibsim::core::runCompatBinary("ablation_armv8_bigcluster", argc,
                                       argv);
}
