// Ablation: Energy Efficient Ethernet (802.3az). The Section 4.1 latency
// penalty estimate cites the EEE study (Saravanan et al., ISPASS'13):
// saving link power by sleeping the PHY adds wake latency to sparse
// traffic. This study quantifies the trade-off for Tibidabo-class traffic.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/net/eee.hpp"
#include "tibsim/net/protocol.hpp"

int main() {
  using namespace tibsim;
  using namespace tibsim::units;
  benchutil::heading("Ablation",
                     "Energy Efficient Ethernet vs HPC traffic (the "
                     "Section 4.1 EEE study)");

  const net::EnergyEfficientEthernet eee;
  const auto tegra2 = arch::PlatformRegistry::tegra2();
  const net::ProtocolModel tcp(net::Protocol::TcpIp, tegra2, ghz(1.0));
  const double baseLatency = tcp.pingPongLatency(64);
  const double frameWire = 1500.0 / tegra2.nicLinkRateBytesPerS;

  TextTable table({"message interval", "PHY energy saved",
                   "one-way latency us", "est. app slowdown (Arndale)"});
  for (double interval : {200e-6, 1e-3, 10e-3, 100e-3, 1.0}) {
    const double latency = eee.effectiveLatencySeconds(baseLatency, interval);
    table.addRow(
        {fmtSi(interval, "s", 1),
         fmt(100 * eee.energySavingFraction(frameWire, interval), 1) + "%",
         fmt(toUs(latency), 1),
         "+" + fmt(100 * net::latencyExecutionTimePenalty(latency, 0.55),
                   0) +
             "%"});
  }
  std::cout << table.render() << '\n';

  // Whole-cluster view: 192 nodes x 2 PHY sides per link.
  const double phys = 192 * 2;
  std::cout << "Tibidabo network PHY power, always-on: "
            << fmt(phys * eee.config().activePhyWatts, 0) << " W of ~"
            << fmt(192 * 8.5, 0) << " W total — EEE can recover up to "
            << fmt(phys * eee.config().activePhyWatts *
                       (1.0 - eee.config().lpiPowerFraction),
                   0)
            << " W on an idle machine.\n\n";

  benchutil::note(
      "for HPC traffic (sub-millisecond message intervals) EEE saves "
      "almost nothing and charges a wake penalty on exactly the "
      "latency-critical messages; for idle/bursty clusters the PHY saving "
      "is real. This is why the paper treats interconnect latency, not "
      "link power, as the binding constraint for mobile-SoC clusters.");
  return 0;
}
