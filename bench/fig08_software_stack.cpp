// Compat wrapper: equivalent to `socbench run fig08 --compat`. The
// experiment body lives in the registry (src/core/experiments_*.cpp).

#include "tibsim/core/campaign.hpp"

int main(int argc, char** argv) {
  return tibsim::core::runCompatBinary("fig08", argc, argv);
}
