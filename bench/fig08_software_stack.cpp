// Figure 8: the software stack deployed on the ARM-based clusters, plus
// the Section 5 readiness assessment (what worked out of the box, what the
// team had to port, what was still experimental in 2013).

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/cluster/software_stack.hpp"
#include "tibsim/common/table.hpp"

int main() {
  using namespace tibsim;
  benchutil::heading("Figure 8", "software stack deployed on the clusters");

  for (auto layer : {cluster::StackLayer::Compiler,
                     cluster::StackLayer::RuntimeLibrary,
                     cluster::StackLayer::ScientificLibrary,
                     cluster::StackLayer::PerformanceTool,
                     cluster::StackLayer::Debugger,
                     cluster::StackLayer::ClusterManagement,
                     cluster::StackLayer::OperatingSystem}) {
    std::cout << "-- " << toString(layer) << " --\n";
    TextTable table({"component", "ARM status", "notes"});
    for (const auto& c : cluster::componentsAt(layer))
      table.addRow({c.name, toString(c.support), c.notes});
    std::cout << table.render() << '\n';
  }

  std::cout << "Out-of-the-box ARM support: "
            << fmt(100 * cluster::fullSupportFraction(), 0)
            << "% of the stack; the rest needed team porting (hardfp "
               "images, ATLAS patches) or was an experimental vendor "
               "preview (CUDA, Mali OpenCL).\n";
  return 0;
}
