// socbench: the registry-driven campaign driver. `socbench list` shows
// every registered experiment; `socbench run <glob>` executes a selection
// with optional JSON/CSV artefacts and parallel scheduling. See
// tibsim/core/campaign.hpp for the full interface.

#include "tibsim/core/campaign.hpp"

int main(int argc, char** argv) {
  return tibsim::core::socbenchMain(argc, argv);
}
