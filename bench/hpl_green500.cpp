// Section 4 headline numbers: HPL weak scaling on Tibidabo up to 96 nodes —
// ~97 GFLOPS, ~51 % efficiency, ~120 MFLOPS/W (Green500 metric) — plus the
// comparison points the paper quotes.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/apps/hpl.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/table.hpp"

int main() {
  using namespace tibsim;
  benchutil::heading("HPL / Green500",
                     "weak-scaling Linpack on Tibidabo (Section 4)");

  cluster::ClusterSimulation sim(cluster::ClusterSpec::tibidabo());
  TextTable table({"nodes", "N", "wallclock s", "GFLOPS", "efficiency",
                   "avg power W", "MFLOPS/W"});
  for (int nodes : {4, 8, 16, 32, 64, 96}) {
    const std::size_t n =
        apps::HplBenchmark::problemSizeForNodes(sim.spec(), nodes);
    const auto result = apps::HplBenchmark::run(sim, nodes);
    table.addRow({std::to_string(nodes), std::to_string(n),
                  fmt(result.wallClockSeconds, 0), fmt(result.gflops, 1),
                  fmt(result.efficiency() * 100, 0) + "%",
                  fmt(result.averagePowerW, 0),
                  fmt(result.mflopsPerWatt, 0)});
    std::cout << "  completed " << nodes << " nodes\n";
  }
  std::cout << '\n' << table.render() << '\n';

  std::cout
      << "Paper anchors at 96 nodes: ~97 GFLOPS, 51 % efficiency, "
         "~120 MFLOPS/W.\n"
         "Context from the June 2013 Green500 (paper Section 4):\n"
         "  BlueGene/Q (best homogeneous):      ~2,300 MFLOPS/W (19x)\n"
         "  Eurora (Xeon + K20 GPUs, #1):       ~3,200 MFLOPS/W (27x)\n"
         "  AMD Opteron / Xeon E5660 clusters:  comparable to Tibidabo\n";
  return 0;
}
