// Ablation: how much of Tibidabo's application performance is lost to the
// interconnect software stack and the NIC attachment?
//   1. TCP/IP vs Open-MX on the same hardware (the paper's Section 4.1
//      motivation for bypassing the socket stack);
//   2. PCIe vs USB NIC attachment at fixed protocol;
//   3. a KeyStone-II-style protocol-offload NIC (on-chip, minimal host
//      cost) as the "what the SoC vendors should build" upper bound.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/apps/hpl.hpp"
#include "tibsim/apps/hydro.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"

int main() {
  using namespace tibsim;
  using namespace tibsim::units;
  benchutil::heading("Ablation", "interconnect stack and NIC attachment");

  // --- 1. protocol stack, application level --------------------------------
  {
    std::cout << "-- TCP/IP vs Open-MX on Tibidabo (32 nodes) --\n";
    apps::HydroBenchmark::Params hydro;
    hydro.nx = 2048;
    hydro.ny = 2048;
    hydro.steps = 10;

    TextTable table({"protocol", "HYDRO wallclock s", "HPL GFLOPS",
                     "HPL efficiency"});
    for (const auto& spec : {cluster::ClusterSpec::tibidabo(),
                             cluster::ClusterSpec::tibidaboOpenMx()}) {
      cluster::ClusterSimulation sim(spec);
      const auto hydroResult =
          sim.runJob(32, apps::HydroBenchmark::rankBody(hydro));
      const auto hplResult = apps::HplBenchmark::run(sim, 32, 0.3);
      table.addRow({net::toString(spec.protocol),
                    fmt(hydroResult.wallClockSeconds, 2),
                    fmt(hplResult.gflops, 1),
                    fmt(hplResult.efficiency() * 100, 0) + "%"});
    }
    std::cout << table.render() << '\n';
  }

  // --- 2. NIC attachment, message level ------------------------------------
  {
    std::cout << "-- NIC attachment (Open-MX small-message latency) --\n";
    auto exynosPcie = arch::PlatformRegistry::exynos5250();
    exynosPcie.nicAttachment = arch::NicAttachment::Pcie;
    auto exynosOnChip = arch::PlatformRegistry::exynos5250();
    exynosOnChip.nicAttachment = arch::NicAttachment::OnChip;

    TextTable table({"attachment", "latency us", "bandwidth MB/s"});
    for (const auto& [label, platform] :
         {std::pair<std::string, arch::Platform>{
              "USB 3.0 (Arndale as built)",
              arch::PlatformRegistry::exynos5250()},
          {"PCIe (hypothetical)", exynosPcie},
          {"on-chip + offload (KeyStone-II-style)", exynosOnChip}}) {
      const net::ProtocolModel model(net::Protocol::OpenMx, platform,
                                     ghz(1.7));
      table.addRow({label, fmt(toUs(model.pingPongLatency(1)), 1),
                    fmt(model.effectiveBandwidth(4 << 20) / 1e6, 1)});
    }
    std::cout << table.render() << '\n';
  }

  // --- 3. offload NIC at cluster level --------------------------------------
  {
    std::cout << "-- Offload NIC on the whole cluster (HYDRO, 64 nodes) --\n";
    apps::HydroBenchmark::Params hydro;
    hydro.nx = 2048;
    hydro.ny = 2048;
    hydro.steps = 10;

    cluster::ClusterSpec offload = cluster::ClusterSpec::tibidaboOpenMx();
    offload.name = "Tibidabo (offload NIC)";
    offload.nodePlatform.nicAttachment = arch::NicAttachment::OnChip;

    TextTable table({"cluster", "HYDRO wallclock s", "speedup vs TCP"});
    double base = 0.0;
    for (const auto& spec : {cluster::ClusterSpec::tibidabo(),
                             cluster::ClusterSpec::tibidaboOpenMx(),
                             offload}) {
      cluster::ClusterSimulation sim(spec);
      const auto result =
          sim.runJob(64, apps::HydroBenchmark::rankBody(hydro));
      if (base == 0.0) base = result.wallClockSeconds;
      table.addRow({spec.name, fmt(result.wallClockSeconds, 2),
                    fmt(base / result.wallClockSeconds, 2) + "x"});
    }
    std::cout << table.render() << '\n';
  }

  benchutil::note(
      "shape: Open-MX helps most where messages are frequent and small; "
      "the USB attachment costs more than the protocol choice on Arndale "
      "boards; hardware offload recovers most of the remaining stack cost.");
  return 0;
}
