// Table 4: network bytes/FLOPS ratios (FP64, excluding GPU) for 1 GbE,
// 10 GbE and 40 Gb InfiniBand on each evaluated platform.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/core/experiments.hpp"

int main() {
  using namespace tibsim;
  benchutil::heading("Table 4", "network bytes per FLOP");

  TextTable table({"platform", "1GbE", "10GbE", "40Gb InfiniBand"});
  for (const auto& row : core::bytesPerFlopTable()) {
    table.addRow({row.platform, fmt(row.gbe1, 2), fmt(row.gbe10, 2),
                  fmt(row.ib40, 2)});
  }
  std::cout << table.render() << '\n';
  std::cout << "Paper values:\n"
               "  Tegra 2        0.06  0.63  2.50\n"
               "  Tegra 3        0.02  0.24  0.96\n"
               "  Exynos 5250    0.02  0.18  0.74\n"
               "  Sandy Bridge   0.00  0.02  0.07\n\n";
  benchutil::note(
      "a plain 1 GbE NIC gives a Tegra 3 / Exynos 5250 a bytes-per-FLOP "
      "ratio close to a dual-socket Sandy Bridge with 40 Gb InfiniBand — "
      "the balance argument of Section 4.1.");
  return 0;
}
