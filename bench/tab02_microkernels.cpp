// Table 2: the micro-kernel suite used for platform evaluation — printed
// from the live registry, with every kernel executed natively (serial and
// parallel) and verified, plus its machine-independent work profile.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/thread_pool.hpp"
#include "tibsim/kernels/microkernel.hpp"
#include "tibsim/kernels/suite.hpp"

namespace {
std::size_t verifySize(const std::string& tag) {
  if (tag == "dmmm") return 48;
  if (tag == "3dstc") return 16;
  if (tag == "2dcon") return 64;
  if (tag == "fft") return 1024;
  if (tag == "nbody") return 96;
  if (tag == "amcd") return 50000;
  if (tag == "spvm") return 200;
  return 5000;
}
}  // namespace

int main() {
  using namespace tibsim;
  benchutil::heading("Table 2", "micro-kernels used for platform evaluation");

  ThreadPool pool(2);
  TextTable table({"tag", "full name", "properties", "MFLOP/iter",
                   "MB/iter", "pattern", "verified"});
  for (const auto& tag : kernels::suiteTags()) {
    auto kernel = kernels::makeKernel(tag);
    kernel->setup(verifySize(tag), 7);
    kernel->runSerial();
    const bool serialOk = kernel->verify();
    kernel->runParallel(pool);
    const bool parallelOk = kernel->verify();
    const auto profile = kernel->referenceProfile();
    table.addRow({tag, kernel->fullName(), kernel->properties(),
                  fmt(profile.flops / 1e6, 0), fmt(profile.bytes / 1e6, 0),
                  toString(profile.pattern),
                  serialOk && parallelOk ? "yes" : "NO"});
  }
  std::cout << table.render() << '\n';
  benchutil::note(
      "profiles are the Section-3 evaluation sizes; the native runs above "
      "execute the real implementations at test sizes and verify their "
      "output (see bench/kernels_native for host-machine timings).");
  return 0;
}
