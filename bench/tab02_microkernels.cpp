// Compat wrapper: equivalent to `socbench run tab02 --compat`. The
// experiment body lives in the registry (src/core/experiments_*.cpp).

#include "tibsim/core/campaign.hpp"

int main(int argc, char** argv) {
  return tibsim::core::runCompatBinary("tab02", argc, argv);
}
