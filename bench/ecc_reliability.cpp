// Section 6.3's ECC argument: mobile memory controllers lack ECC; using the
// Schroeder et al. field-study rates, a production-scale machine sees
// memory errors daily. Reproduces the paper's "1,500 nodes, 2 DIMMs/node
// => ~30 % daily error probability" estimate and extends it with job
// survival and checkpoint-throughput consequences.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/reliability/dram_errors.hpp"

int main() {
  using namespace tibsim;
  benchutil::heading("ECC / DRAM reliability",
                     "Section 6.3 memory-error estimates");

  reliability::DramErrorModel model;  // paper-arithmetic default (4.5 %/yr)

  TextTable daily({"nodes", "P(error today)", "expected errors/day",
                   "Monte-Carlo check"});
  for (int nodes : {192, 500, 1000, 1500, 5000}) {
    daily.addRow({std::to_string(nodes),
                  fmt(100 * model.systemDailyErrorProbability(nodes), 1) +
                      "%",
                  fmt(model.expectedErrorsPerDay(nodes), 2),
                  fmt(100 * model.monteCarloDailyErrorProbability(
                                nodes, 2000, 7),
                      1) +
                      "%"});
  }
  std::cout << daily.render() << '\n';
  std::cout << "Paper: \"a 1,500 node system, with 2 DIMMs per node, has a "
               "30% error probability on any given day\" -> model gives "
            << fmt(100 * model.systemDailyErrorProbability(1500), 1)
            << "%\n\n";

  std::cout << "Sensitivity over the Schroeder et al. 4-20 % annual band "
               "(1,500 nodes):\n";
  TextTable band({"annual DIMM error rate", "P(error today)"});
  for (double annual : {0.04, 0.08, 0.12, 0.20}) {
    reliability::DramErrorModel m;
    m.dimmAnnualErrorProbability = annual;
    band.addRow({fmt(100 * annual, 0) + "%",
                 fmt(100 * m.systemDailyErrorProbability(1500), 1) + "%"});
  }
  std::cout << band.render() << '\n';

  std::cout << "Consequence without ECC (any error kills the job):\n";
  TextTable jobs({"nodes", "job hours", "P(survive)"});
  for (int nodes : {192, 1500}) {
    for (double hours : {1.0, 12.0, 48.0}) {
      jobs.addRow({std::to_string(nodes), fmt(hours, 0),
                   fmt(100 * model.jobSurvivalProbability(nodes, hours), 1) +
                       "%"});
    }
  }
  std::cout << jobs.render() << '\n';

  std::cout << "Checkpoint/restart throughput (checkpoint costs 3 min):\n";
  TextTable ckpt({"checkpoint interval h", "useful-work fraction"});
  for (double interval : {0.5, 2.0, 8.0, 24.0}) {
    ckpt.addRow({fmt(interval, 1),
                 fmt(100 * model.effectiveThroughput(1500, interval, 0.05),
                     1) +
                     "%"});
  }
  std::cout << ckpt.render() << '\n';
  benchutil::note(
      "ECC-capable controllers exist in server-class ARM SoCs (Calxeda "
      "EnergyCore, TI KeyStone II) — a design decision, not a technical "
      "limitation (Section 6.3).");
  return 0;
}
