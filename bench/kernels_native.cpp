// Native google-benchmark runs of the real Table-2 micro-kernel
// implementations on the host machine. These do not reproduce a paper
// figure (the paper's numbers come from the modelled platforms); they
// exist to benchmark the real code paths the test suite verifies.

#include <benchmark/benchmark.h>

#include "tibsim/common/thread_pool.hpp"
#include "tibsim/kernels/microkernel.hpp"
#include "tibsim/kernels/stream.hpp"

namespace {

using tibsim::kernels::makeKernel;

std::size_t nativeSize(const std::string& tag) {
  if (tag == "dmmm") return 96;
  if (tag == "3dstc") return 32;
  if (tag == "2dcon") return 160;
  if (tag == "fft") return 8192;
  if (tag == "nbody") return 384;
  if (tag == "amcd") return 200000;
  if (tag == "spvm") return 2000;
  return 100000;
}

void BM_KernelSerial(benchmark::State& state, const std::string& tag) {
  auto kernel = makeKernel(tag);
  kernel->setup(nativeSize(tag), 42);
  for (auto _ : state) {
    kernel->runSerial();
    benchmark::ClobberMemory();
  }
  const auto profile = kernel->currentProfile();
  state.counters["flops"] = profile.flops;
  state.SetItemsProcessed(state.iterations());
}

void BM_KernelParallel(benchmark::State& state, const std::string& tag) {
  static tibsim::ThreadPool pool(0);
  auto kernel = makeKernel(tag);
  kernel->setup(nativeSize(tag), 42);
  for (auto _ : state) {
    kernel->runParallel(pool);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_StreamTriad(benchmark::State& state) {
  tibsim::kernels::StreamBenchmark bench;
  bench.setup(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bench.runSerial(tibsim::kernels::StreamOp::Triad);
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * state.range(0) * 24);
}

struct Registrar {
  Registrar() {
    for (const auto& tag : tibsim::kernels::suiteTags()) {
      benchmark::RegisterBenchmark(("serial/" + tag).c_str(),
                                   [tag](benchmark::State& st) {
                                     BM_KernelSerial(st, tag);
                                   });
      benchmark::RegisterBenchmark(("parallel/" + tag).c_str(),
                                   [tag](benchmark::State& st) {
                                     BM_KernelParallel(st, tag);
                                   });
    }
  }
} registrar;

BENCHMARK(BM_StreamTriad)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

}  // namespace

BENCHMARK_MAIN();
