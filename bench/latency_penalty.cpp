// Section 4.1's latency-penalty estimate: a total communication latency of
// 100 us costs ~+90 % execution time on a Sandy Bridge-class core (EEE
// study, geometric mean over nine MPI applications at 64-256 nodes); a
// core that computes k times slower sees the relative penalty shrink.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/net/protocol.hpp"

int main() {
  using namespace tibsim;
  using namespace tibsim::units;
  benchutil::heading("Latency penalty",
                     "estimated execution-time inflation from interconnect "
                     "latency (Section 4.1)");

  // Relative single-core performance vs the Sandy Bridge reference, from
  // the Figure 3 results. The paper quotes "~50 % and 40 %" for the Arndale
  // at 100 us and 65 us; its first-order scaling uses a performance ratio
  // of roughly 0.55 rather than the stricter 1/3 suite geomean.
  const struct {
    const char* core;
    double relativePerf;
  } cores[] = {
      {"Sandy Bridge-class", 1.0},
      {"Arndale (Cortex-A15), paper scaling", 0.55},
      {"Arndale (Cortex-A15), suite geomean", 1.0 / 3.0},
      {"Tegra 2 (Cortex-A9)", 1.0 / 7.0},
  };

  TextTable table({"core", "latency us", "est. execution-time penalty"});
  for (const auto& core : cores) {
    for (double latency : {65e-6, 100e-6}) {
      table.addRow({core.core, fmt(toUs(latency), 0),
                    "+" + fmt(100.0 * net::latencyExecutionTimePenalty(
                                          latency, core.relativePerf),
                              0) +
                        "%"});
    }
  }
  std::cout << table.render() << '\n';

  // And the measured protocol latencies feeding that estimate:
  TextTable measured({"platform / protocol", "small-message latency us"});
  const auto tegra2 = arch::PlatformRegistry::tegra2();
  measured.addRow({"Tegra2 TCP/IP",
                   fmt(toUs(net::ProtocolModel(net::Protocol::TcpIp, tegra2,
                                               ghz(1.0))
                                .pingPongLatency(1)),
                       0)});
  measured.addRow({"Tegra2 Open-MX",
                   fmt(toUs(net::ProtocolModel(net::Protocol::OpenMx, tegra2,
                                               ghz(1.0))
                                .pingPongLatency(1)),
                       0)});
  std::cout << measured.render() << '\n';

  benchutil::note(
      "paper: 100 us => ~+90 % (Sandy Bridge); first-order estimate "
      "~+50 % / ~+40 % on the Arndale for 100 us / 65 us.");
  return 0;
}
