// Figure 2: evolution of peak double-precision floating-point performance.
//   (a) HPC vector processors vs commodity microprocessors, 1975-2000;
//   (b) server processors vs mobile SoCs, 1990-2015, with exponential
//       regressions and the projected crossover.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/common/chart.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/trend/trend.hpp"

namespace {

using namespace tibsim;
using trend::ProcessorClass;

Series toSeries(ProcessorClass cls, const std::string& name) {
  Series s{name, {}, {}};
  for (const auto& p : trend::processorPoints(cls)) {
    s.x.push_back(p.year);
    s.y.push_back(p.peakMflops);
  }
  return s;
}

void printClassTable(ProcessorClass cls, const std::string& name) {
  TextTable table({"processor", "year", "peak MFLOPS"});
  for (const auto& p : trend::processorPoints(cls))
    table.addRow({p.name, fmt(p.year, 0), fmt(p.peakMflops, 0)});
  std::cout << "-- " << name << " --\n" << table.render();
  const ExponentialFit fit = trend::fitClass(cls);
  std::cout << "  exponential fit: x" << fmt(fit.growthPerUnit(), 2)
            << " per year, doubling every " << fmt(fit.doublingTime(), 2)
            << " years (r^2 = " << fmt(fit.r2, 2) << ")\n\n";
}

}  // namespace

int main() {
  benchutil::heading("Figure 2",
                     "peak FP64 performance: vector vs commodity (a), "
                     "server vs mobile (b)");

  std::cout << "--- Figure 2(a): 1975-2000 ---\n\n";
  printClassTable(ProcessorClass::Vector, "HPC vector processors");
  printClassTable(ProcessorClass::Commodity, "commodity microprocessors");
  ChartOptions optsA;
  optsA.title = "Figure 2(a): MFLOPS vs year (log y)";
  optsA.logY = true;
  optsA.xLabel = "year";
  optsA.yLabel = "MFLOPS";
  std::cout << renderChart({toSeries(ProcessorClass::Vector, "vector"),
                            toSeries(ProcessorClass::Commodity, "commodity")},
                           optsA)
            << '\n';
  std::cout << "Gap in 1995 (vector / commodity): "
            << fmt(trend::gapAt(ProcessorClass::Vector,
                                ProcessorClass::Commodity, 1995.0),
                   1)
            << "x   (paper: \"around ten times slower\")\n\n";

  std::cout << "--- Figure 2(b): 1990-2015 ---\n\n";
  printClassTable(ProcessorClass::Server, "server processors");
  printClassTable(ProcessorClass::Mobile, "mobile SoCs");
  ChartOptions optsB;
  optsB.title = "Figure 2(b): MFLOPS vs year (log y)";
  optsB.logY = true;
  optsB.xLabel = "year";
  optsB.yLabel = "MFLOPS";
  std::cout << renderChart({toSeries(ProcessorClass::Server, "server"),
                            toSeries(ProcessorClass::Mobile, "mobile")},
                           optsB)
            << '\n';

  std::cout << "Gap in 2013 (server / mobile): "
            << fmt(trend::gapAt(ProcessorClass::Server,
                                ProcessorClass::Mobile, 2013.0),
                   1)
            << "x   (paper: \"still ten times slower, but the gap is "
               "quickly being closed\")\n";
  std::cout << "Projected crossover year (mobile matches server): "
            << fmt(trend::projectedCrossover(ProcessorClass::Mobile,
                                             ProcessorClass::Server),
                   1)
            << '\n';
  return 0;
}
