// Figure 1: TOP500 — special-purpose HPC replaced by RISC microprocessors,
// in turn displaced by x86 (system counts per architecture class, 1993-2013).

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/common/chart.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/trend/trend.hpp"

int main() {
  using namespace tibsim;
  benchutil::heading("Figure 1", "TOP500 architecture transitions");

  const auto& data = trend::top500ArchitectureShare();

  Series x86{"x86", {}, {}};
  Series risc{"RISC", {}, {}};
  Series vec{"Vector/SIMD", {}, {}};
  TextTable table({"year", "x86", "RISC", "Vector/SIMD"});
  for (const auto& e : data) {
    x86.x.push_back(e.year);
    x86.y.push_back(e.x86);
    risc.x.push_back(e.year);
    risc.y.push_back(e.risc);
    vec.x.push_back(e.year);
    vec.y.push_back(e.vectorSimd);
    table.addRow({fmt(e.year, 1), std::to_string(e.x86),
                  std::to_string(e.risc), std::to_string(e.vectorSimd)});
  }
  std::cout << table.render() << '\n';

  ChartOptions opts;
  opts.title = "Number of systems in TOP500";
  opts.xLabel = "year";
  opts.yLabel = "systems";
  std::cout << renderChart({x86, risc, vec}, opts) << '\n';

  std::cout << "RISC overtakes Vector/SIMD: "
            << fmt(trend::yearRiscOvertakesVector(), 1)
            << "  (paper narrative: mid 1990s)\n";
  std::cout << "x86 overtakes RISC:         "
            << fmt(trend::yearX86OvertakesRisc(), 1)
            << "  (paper narrative: mid 2000s)\n";
  std::cout << "June 2013 list: " << data.back().x86
            << " x86 systems — \"still dominated by x86\"\n";
  return 0;
}
