// Figure 3: single-core performance and energy efficiency of the Table-2
// micro-kernel suite under a DVFS frequency sweep, on the four Table-1
// platforms. Baseline: Tegra 2 @ 1 GHz.
//
// Also prints the platform inventory (Table 1) for reference.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/common/chart.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiments.hpp"

namespace {

using namespace tibsim;
using namespace tibsim::units;

void printTable1() {
  TextTable table({"platform", "uarch", "cores", "fmax GHz", "FP64 GFLOPS",
                   "mem peak GB/s", "DRAM", "NIC attach"});
  for (const auto& p : arch::PlatformRegistry::evaluated()) {
    table.addRow({p.shortName, arch::toString(p.soc.core.microarch),
                  std::to_string(p.soc.cores), fmt(toGhz(p.maxFrequencyHz()), 1),
                  fmt(toGflops(p.peakFlops()), 1),
                  fmt(p.soc.memory.peakBandwidthBytesPerS / kGB, 2),
                  p.dramType, arch::toString(p.nicAttachment)});
  }
  std::cout << "Table 1 (platform inventory):\n" << table.render() << '\n';
}

void printSweeps(core::MicroKernelExperiment::Mode mode,
                 const std::string& figure) {
  const auto sweeps = core::MicroKernelExperiment(mode).run();

  TextTable table({"platform", "freq GHz", "suite s/iter", "energy J/iter",
                   "speedup vs Tegra2@1GHz", "energy vs baseline"});
  std::vector<Series> perf, energy;
  for (const auto& sweep : sweeps) {
    Series sp{sweep.platform, {}, {}};
    Series se{sweep.platform, {}, {}};
    for (const auto& pt : sweep.points) {
      table.addRow({sweep.platform, fmt(toGhz(pt.frequencyHz), 2),
                    fmt(pt.suiteSeconds, 3), fmt(pt.suiteEnergyJ, 2),
                    fmt(pt.speedupVsBaseline, 2),
                    fmt(pt.energyVsBaseline, 2)});
      sp.x.push_back(toGhz(pt.frequencyHz));
      sp.y.push_back(pt.speedupVsBaseline);
      se.x.push_back(toGhz(pt.frequencyHz));
      se.y.push_back(pt.energyVsBaseline);
    }
    perf.push_back(std::move(sp));
    energy.push_back(std::move(se));
  }
  std::cout << table.render() << '\n';

  ChartOptions perfOpts;
  perfOpts.title = figure + "(a): speedup vs Tegra2@1GHz (log y)";
  perfOpts.logY = true;
  perfOpts.xLabel = "frequency (GHz)";
  perfOpts.yLabel = "speedup";
  std::cout << renderChart(perf, perfOpts) << '\n';

  ChartOptions energyOpts;
  energyOpts.title = figure + "(b): per-iteration energy vs baseline";
  energyOpts.xLabel = "frequency (GHz)";
  energyOpts.yLabel = "normalised energy";
  std::cout << renderChart(energy, energyOpts) << '\n';
}

}  // namespace

int main() {
  benchutil::heading("Figure 3",
                     "single-core micro-kernel performance & energy, "
                     "frequency sweep");
  printTable1();
  printSweeps(core::MicroKernelExperiment::Mode::SingleCore, "Figure 3");

  std::cout
      << "Paper anchors: Tegra3@1GHz +9%, Arndale@1GHz +30%; at max\n"
         "frequency Tegra3 1.36x, Arndale 2.3x, Intel ~3x Arndale; energies\n"
         "23.93 / 19.62 / 16.95 / 28.57 J per iteration.\n";
  return 0;
}
