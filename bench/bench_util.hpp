#pragma once
// Shared helpers for the figure-reproduction binaries.

#include <iostream>
#include <string>

namespace benchutil {

inline void heading(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n"
            << "(reproduction of \"Supercomputing with Commodity CPUs: Are "
               "Mobile SoCs Ready for HPC?\", SC'13)\n\n";
}

inline void note(const std::string& text) {
  std::cout << "  NOTE: " << text << "\n";
}

}  // namespace benchutil
