// Ablation / projection: the paper argues ARMv8 brings FP64 into the NEON
// SIMD unit, doubling per-cycle FP64 throughput at similar power. Compare a
// hypothetical quad-core ARMv8 @ 2 GHz against the evaluated platforms at
// the micro-kernel, STREAM, and cluster level.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/apps/hpl.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/statistics.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiments.hpp"
#include "tibsim/kernels/microkernel.hpp"
#include "tibsim/kernels/stream.hpp"
#include "tibsim/power/power_model.hpp"

int main() {
  using namespace tibsim;
  using namespace tibsim::units;
  benchutil::heading("Ablation", "ARMv8 projection (Section 3.1.2 outlook)");

  const auto armv8 = arch::PlatformRegistry::armv8Quad2GHz();
  auto platforms = arch::PlatformRegistry::evaluated();
  platforms.push_back(armv8);

  // Suite speedups vs the usual baseline.
  const auto base = core::MicroKernelExperiment::baseline();
  TextTable table({"platform", "peak GFLOPS", "suite speedup (1 core)",
                   "suite speedup (all cores)", "platform W (loaded)",
                   "suite GFLOPS/W"});
  for (const auto& platform : platforms) {
    const double f = platform.maxFrequencyHz();
    const auto one = core::MicroKernelExperiment::measureSuite(platform, f, 1);
    const auto all = core::MicroKernelExperiment::measureSuite(
        platform, f, platform.soc.cores);
    auto geo = [&](const auto& suite) {
      std::vector<double> r;
      for (std::size_t i = 0; i < suite.size(); ++i)
        r.push_back(base[i].seconds / suite[i].seconds);
      return stats::geomean(r);
    };
    double watts = 0.0, seconds = 0.0, flops = 0.0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      watts += all[i].watts * all[i].seconds;
      seconds += all[i].seconds;
      flops += kernels::referenceProfileFor(kernels::suiteTags()[i]).flops;
    }
    watts /= seconds;
    table.addRow({platform.shortName, fmt(toGflops(platform.peakFlops()), 1),
                  fmt(geo(one), 2) + "x", fmt(geo(all), 2) + "x",
                  fmt(watts, 1),
                  fmt(toGflops(flops / seconds) / watts, 3)});
  }
  std::cout << table.render() << '\n';

  // Cluster projection: replace Tibidabo's Tegra 2 nodes with ARMv8 nodes.
  std::cout << "-- 96-node HPL: Tegra2 cluster vs ARMv8 cluster --\n";
  cluster::ClusterSpec armv8Cluster = cluster::ClusterSpec::tibidabo();
  armv8Cluster.name = "ARMv8 cluster (projected)";
  armv8Cluster.nodePlatform = armv8;
  armv8Cluster.protocol = net::Protocol::OpenMx;
  armv8Cluster.topology.linkRateBytesPerS = gbps(10.0);
  armv8Cluster.topology.bisectionBytesPerS = gbps(80.0);

  TextTable hpl({"cluster", "GFLOPS", "efficiency", "MFLOPS/W"});
  for (auto spec : {cluster::ClusterSpec::tibidabo(), armv8Cluster}) {
    cluster::ClusterSimulation sim(spec);
    const auto result = apps::HplBenchmark::run(sim, 96, 0.5);
    hpl.addRow({spec.name, fmt(result.gflops, 1),
                fmt(result.efficiency() * 100, 0) + "%",
                fmt(result.mflopsPerWatt, 0)});
  }
  std::cout << hpl.render() << '\n';

  benchutil::note(
      "the ARMv8 part doubles per-cycle FP64 (NEON), adds an on-chip 10 GbE "
      "NIC and ECC-capable memory path — the Section 6.3 wish list — and "
      "the Green500 metric responds accordingly.");
  return 0;
}
