// Figure 7: interconnect measurements — IMB ping-pong latency (panels a-c)
// and effective bandwidth (panels d-f) for MPI over TCP/IP vs Open-MX on
// Tegra 2 @ 1 GHz (PCIe NIC) and Exynos 5 @ 1.0 / 1.4 GHz (USB NIC).
// Includes an end-to-end cross-check through the simMPI/fabric stack.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/common/chart.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiments.hpp"

namespace {

using namespace tibsim;
using namespace tibsim::units;

struct Panel {
  std::string name;
  arch::Platform platform;
  double frequencyHz;
};

void latencyPanel(const Panel& panel) {
  std::cout << "-- " << panel.name << " latency --\n";
  const auto sizes = core::latencyMessageSizes();
  TextTable table({"bytes", "TCP/IP us", "Open-MX us"});
  Series tcp{"TCP/IP", {}, {}}, omx{"Open-MX", {}, {}};
  const auto tcpSweep = core::pingPongSweep(panel.platform,
                                            net::Protocol::TcpIp,
                                            panel.frequencyHz, sizes);
  const auto omxSweep = core::pingPongSweep(panel.platform,
                                            net::Protocol::OpenMx,
                                            panel.frequencyHz, sizes);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    table.addRow({std::to_string(sizes[i]),
                  fmt(toUs(tcpSweep.latencySeconds[i]), 1),
                  fmt(toUs(omxSweep.latencySeconds[i]), 1)});
    tcp.x.push_back(static_cast<double>(sizes[i]));
    tcp.y.push_back(toUs(tcpSweep.latencySeconds[i]));
    omx.x.push_back(static_cast<double>(sizes[i]));
    omx.y.push_back(toUs(omxSweep.latencySeconds[i]));
  }
  std::cout << table.render();
  ChartOptions opts;
  opts.title = panel.name + ": latency (us) vs message size (B)";
  opts.height = 12;
  std::cout << renderChart({tcp, omx}, opts) << '\n';
}

void bandwidthPanel(const Panel& panel) {
  std::cout << "-- " << panel.name << " bandwidth --\n";
  const auto sizes = core::bandwidthMessageSizes();
  TextTable table({"bytes", "TCP/IP MB/s", "Open-MX MB/s"});
  Series tcp{"TCP/IP", {}, {}}, omx{"Open-MX", {}, {}};
  const auto tcpSweep = core::pingPongSweep(panel.platform,
                                            net::Protocol::TcpIp,
                                            panel.frequencyHz, sizes);
  const auto omxSweep = core::pingPongSweep(panel.platform,
                                            net::Protocol::OpenMx,
                                            panel.frequencyHz, sizes);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    table.addRow({std::to_string(sizes[i]),
                  fmt(tcpSweep.bandwidthBytesPerS[i] / 1e6, 1),
                  fmt(omxSweep.bandwidthBytesPerS[i] / 1e6, 1)});
    tcp.x.push_back(static_cast<double>(sizes[i]));
    tcp.y.push_back(tcpSweep.bandwidthBytesPerS[i] / 1e6);
    omx.x.push_back(static_cast<double>(sizes[i]));
    omx.y.push_back(omxSweep.bandwidthBytesPerS[i] / 1e6);
  }
  std::cout << table.render();
  ChartOptions opts;
  opts.title = panel.name + ": bandwidth (MB/s) vs message size (log x)";
  opts.logX = true;
  opts.height = 12;
  std::cout << renderChart({tcp, omx}, opts) << '\n';
}

}  // namespace

int main() {
  benchutil::heading("Figure 7", "interconnect latency and bandwidth");

  const Panel panels[] = {
      {"(a/d) Tegra 2 @ 1.0 GHz", arch::PlatformRegistry::tegra2(),
       ghz(1.0)},
      {"(b/e) Exynos 5 @ 1.0 GHz", arch::PlatformRegistry::exynos5250(),
       ghz(1.0)},
      {"(c/f) Exynos 5 @ 1.4 GHz", arch::PlatformRegistry::exynos5250(),
       ghz(1.4)},
  };
  for (const auto& panel : panels) latencyPanel(panel);
  for (const auto& panel : panels) bandwidthPanel(panel);

  std::cout << "-- End-to-end cross-check (simMPI over the fabric model) --\n";
  TextTable check({"config", "analytic us", "simulated us"});
  for (const auto& panel : panels) {
    for (net::Protocol proto :
         {net::Protocol::TcpIp, net::Protocol::OpenMx}) {
      const double analytic =
          net::ProtocolModel(proto, panel.platform, panel.frequencyHz)
              .pingPongLatency(64);
      const double simulated = core::simulatedPingPongLatency(
          panel.platform, proto, panel.frequencyHz, 64);
      check.addRow({panel.name + " " + net::toString(proto),
                    fmt(toUs(analytic), 1), fmt(toUs(simulated), 1)});
    }
  }
  std::cout << check.render() << '\n';

  benchutil::note(
      "paper anchors: Tegra2 ~100 us TCP / ~65 us Open-MX, 65 / 117 MB/s; "
      "Exynos5 ~125 / ~93 us at 1 GHz, ~10 % lower at 1.4 GHz; Open-MX "
      "bandwidth 69 MB/s (1.0 GHz) and 75 MB/s (1.4 GHz), USB-limited.");
  return 0;
}
