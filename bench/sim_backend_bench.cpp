// Microbenchmark: cost per simulated context switch, fiber vs thread
// execution backend. Probes:
//
//  * raw engine: one process delay()ing in a tight loop — each iteration is
//    one scheduler->process switch, one process->scheduler yield and one
//    event dispatch, i.e. the engine's floor;
//  * simMPI ping-pong: the Section 4.1 two-rank ping-pong through the full
//    protocol stack — what a rank-level context switch costs in situ. Run
//    size-only (pure engine + protocol overhead), with the paper's 64-byte
//    payload (inline small-message storage), and with a 4 KiB payload
//    (pool-backed buffer, recycled by every recv).
//
// Host timings are inherently machine-dependent, so this is a standalone
// binary (like kernels_native) and never part of the deterministic
// campaign artefacts. `--json OUT` writes the numbers to a
// machine-readable file (BENCH_sim.json in-repo) so successive PRs have a
// perf trajectory to compare against; headline numbers also land in
// EXPERIMENTS.md.
//
// Wall-clock reads are this benchmark's entire purpose, so the rule is
// waived for the whole file rather than per call site.
// tibsim-lint: allowfile(wall-clock)

#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tibsim/common/json.hpp"
#include "tibsim/core/campaign.hpp"
#include "tibsim/mpi/simmpi.hpp"
#include "tibsim/obs/trace_sink.hpp"
#include "tibsim/sim/execution_context.hpp"
#include "tibsim/sim/simulation.hpp"

namespace {

using tibsim::sim::ExecBackend;

struct Probe {
  double seconds = 0.0;
  std::uint64_t switches = 0;
  int reps = 0;  ///< ping-pong round trips (0 for the raw engine probe)
  double nsPerSwitch() const {
    return switches > 0 ? seconds * 1e9 / static_cast<double>(switches) : 0.0;
  }
  double nsPerRep() const {
    return reps > 0 ? seconds * 1e9 / static_cast<double>(reps) : 0.0;
  }
};

Probe rawEngineProbe(ExecBackend backend, int iterations) {
  tibsim::sim::Simulation sim(backend);
  sim.spawn("spinner", [iterations](tibsim::sim::Process& p) {
    for (int i = 0; i < iterations; ++i) p.delay(1e-6);
  });
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return {seconds, sim.engineStats().contextSwitches};
}

/// Two ranks on one node exchanging `bytes`-sized messages. payloadBytes
/// controls how much real data rides along: 0 = size-only, <= 64 exercises
/// the inline small-message path, larger sizes the payload pool.
Probe pingPongProbe(ExecBackend backend, int repetitions,
                    std::size_t payloadBytes) {
  tibsim::mpi::WorldConfig cfg = tibsim::mpi::WorldConfig::tibidaboNode();
  cfg.simBackend = backend;
  tibsim::mpi::MpiWorld world(cfg, 2);
  std::vector<std::byte> payload(payloadBytes, std::byte{0x5a});
  const std::size_t bytes = payloadBytes > 0 ? payloadBytes : 64;
  const auto start = std::chrono::steady_clock::now();
  const tibsim::mpi::WorldStats stats = world.run(
      [repetitions, bytes, &payload](tibsim::mpi::MpiContext& ctx) {
        for (int i = 0; i < repetitions; ++i) {
          if (ctx.rank() == 0) {
            ctx.send(1, 7, bytes, payload);
            ctx.recv(1, 8);
          } else {
            ctx.recv(0, 7);
            ctx.send(0, 8, bytes, payload);
          }
        }
      });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return {seconds, stats.engine.contextSwitches, repetitions};
}

/// The size-only ping-pong with the observability layers dialled through
/// their settings: span tracing off / aggregate / sampled / full, and the
/// per-link fabric telemetry on or off. The delta against the plain
/// size-only probe is the tax each recording mode puts on every simulated
/// message — the number that justifies leaving aggregate tracing and link
/// telemetry on for campaign runs.
Probe observedPingPongProbe(ExecBackend backend, int repetitions,
                            const tibsim::obs::TraceMode* traceMode,
                            bool linkTelemetry) {
  tibsim::mpi::WorldConfig cfg = tibsim::mpi::WorldConfig::tibidaboNode();
  cfg.simBackend = backend;
  cfg.linkTelemetry = linkTelemetry;
  if (traceMode) cfg.traceMode = *traceMode;
  tibsim::mpi::MpiWorld world(cfg, 2);
  if (traceMode) world.enableTracing();
  const auto start = std::chrono::steady_clock::now();
  const tibsim::mpi::WorldStats stats =
      world.run([repetitions](tibsim::mpi::MpiContext& ctx) {
        for (int i = 0; i < repetitions; ++i) {
          if (ctx.rank() == 0) {
            ctx.send(1, 7, 64);
            ctx.recv(1, 8);
          } else {
            ctx.recv(0, 7);
            ctx.send(0, 8, 64);
          }
        }
      });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return {seconds, stats.engine.contextSwitches, repetitions};
}

/// The ping-pong with the receiver matching on kAnySource/kAnyTag instead
/// of the explicit (source, tag): what the wildcard scan over the mailbox
/// costs on top of the exact-match path. Two ranks, size-only messages.
Probe wildcardPingPongProbe(ExecBackend backend, int repetitions) {
  tibsim::mpi::WorldConfig cfg = tibsim::mpi::WorldConfig::tibidaboNode();
  cfg.simBackend = backend;
  tibsim::mpi::MpiWorld world(cfg, 2);
  const auto start = std::chrono::steady_clock::now();
  const tibsim::mpi::WorldStats stats =
      world.run([repetitions](tibsim::mpi::MpiContext& ctx) {
        const tibsim::mpi::Communicator comm = ctx.commWorld();
        for (int i = 0; i < repetitions; ++i) {
          if (ctx.rank() == 0) {
            comm.send(1, 7, 64);
            comm.recv(tibsim::mpi::kAnySource,  // tibsim-lint: allow(wildcard-recv)
                      tibsim::mpi::kAnyTag);
          } else {
            comm.recv(tibsim::mpi::kAnySource,  // tibsim-lint: allow(wildcard-recv)
                      tibsim::mpi::kAnyTag);
            comm.send(0, 8, 64);
          }
        }
      });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return {seconds, stats.engine.contextSwitches, repetitions};
}

/// Non-blocking allreduce over 8 ranks (4 Tegra 2 nodes x 2 ranks): the
/// request/wait machinery plus the binomial reduce + bcast per repetition.
/// `reps` counts iallreduce/waitDoubles pairs.
Probe iallreduceProbe(ExecBackend backend, int repetitions) {
  tibsim::mpi::WorldConfig cfg = tibsim::mpi::WorldConfig::tibidaboNode();
  cfg.simBackend = backend;
  tibsim::mpi::MpiWorld world(cfg, 8);
  const auto start = std::chrono::steady_clock::now();
  const tibsim::mpi::WorldStats stats =
      world.run([repetitions](tibsim::mpi::MpiContext& ctx) {
        const tibsim::mpi::Communicator comm = ctx.commWorld();
        const double mine[1] = {static_cast<double>(ctx.rank())};
        for (int i = 0; i < repetitions; ++i) {
          const tibsim::mpi::Communicator::Request req =
              comm.iallreduce(std::span<const double>(mine, 1));
          comm.waitDoubles(req);
        }
      });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return {seconds, stats.engine.contextSwitches, repetitions};
}

/// Campaign throughput: the same fixed experiment subset run cold (fresh
/// cache, every cell computed), warm (same cache, every cell replayed)
/// and cold again across two worker processes. Tracks the result cache's
/// speedup and the --procs scheduling overhead as numbers in
/// BENCH_sim.json, not anecdotes.
struct CampaignProbe {
  std::size_t experiments = 0;
  double coldSeconds = 0.0;
  double warmSeconds = 0.0;
  double procs2Seconds = 0.0;
};

CampaignProbe campaignThroughputProbe() {
  namespace fs = std::filesystem;
  const fs::path base = fs::temp_directory_path() / "tibsim_bench_campaign";
  fs::remove_all(base);
  const std::vector<std::string> subset = {"tab01", "tab04", "imb_suite",
                                           "latency_penalty"};
  const auto timedRun = [&](const fs::path& cache, int procs) {
    tibsim::core::CampaignOptions options;
    options.patterns = subset;
    options.summary = false;
    options.cacheDir = cache.string();
    options.procs = procs;
    std::ostringstream sink;
    const auto start = std::chrono::steady_clock::now();
    tibsim::core::runCampaign(options, sink);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  CampaignProbe probe;
  probe.experiments = subset.size();
  probe.coldSeconds = timedRun(base / "cache", 1);
  probe.warmSeconds = timedRun(base / "cache", 1);
  probe.procs2Seconds = timedRun(base / "cache2", 2);
  fs::remove_all(base);
  return probe;
}

void report(const char* name, const Probe& fiber, const Probe& thread) {
  std::printf("%-22s %12llu switches   fiber %8.1f ns/switch   thread "
              "%8.1f ns/switch   ratio %.1fx",
              name, static_cast<unsigned long long>(fiber.switches),
              fiber.nsPerSwitch(), thread.nsPerSwitch(),
              fiber.nsPerSwitch() > 0.0
                  ? thread.nsPerSwitch() / fiber.nsPerSwitch()
                  : 0.0);
  if (fiber.reps > 0)
    std::printf("   fiber %8.1f ns/round-trip", fiber.nsPerRep());
  std::printf("\n");
}

tibsim::json::Value probeJson(const Probe& fiber, const Probe& thread) {
  tibsim::json::Value v = tibsim::json::Value::object();
  v["switches"] = static_cast<double>(fiber.switches);
  v["fiberNsPerSwitch"] = fiber.nsPerSwitch();
  v["threadNsPerSwitch"] = thread.nsPerSwitch();
  if (fiber.reps > 0) v["fiberNsPerRoundTrip"] = fiber.nsPerRep();
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  // The --procs scheduler re-invokes /proc/self/exe: when the campaign
  // probe below spawns workers, that is THIS binary, so a leading "run"
  // forwards straight to the campaign driver.
  if (argc > 1 && std::strcmp(argv[1], "run") == 0)
    return tibsim::core::socbenchMain(argc, argv);

  std::string jsonPath;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      jsonPath = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--json OUT]\n", argv[0]);
      return 2;
    }
  }

  constexpr int kRawIterations = 200000;
  constexpr int kPingPongReps = 50000;

  // Warm both paths once so first-touch page faults don't skew either side.
  rawEngineProbe(ExecBackend::Fiber, 1000);
  rawEngineProbe(ExecBackend::Thread, 1000);

  std::printf("sim backend microbenchmark (cost per simulated context "
              "switch)\n\n");
  const Probe rawFiber = rawEngineProbe(ExecBackend::Fiber, kRawIterations);
  const Probe rawThread = rawEngineProbe(ExecBackend::Thread, kRawIterations);
  report("raw engine", rawFiber, rawThread);
  const Probe ppFiber = pingPongProbe(ExecBackend::Fiber, kPingPongReps, 0);
  const Probe ppThread = pingPongProbe(ExecBackend::Thread, kPingPongReps, 0);
  report("ping-pong size-only", ppFiber, ppThread);
  const Probe pp64Fiber = pingPongProbe(ExecBackend::Fiber, kPingPongReps, 64);
  const Probe pp64Thread =
      pingPongProbe(ExecBackend::Thread, kPingPongReps, 64);
  report("ping-pong 64 B inline", pp64Fiber, pp64Thread);
  const Probe pp4kFiber =
      pingPongProbe(ExecBackend::Fiber, kPingPongReps, 4096);
  const Probe pp4kThread =
      pingPongProbe(ExecBackend::Thread, kPingPongReps, 4096);
  report("ping-pong 4 KiB pooled", pp4kFiber, pp4kThread);
  const Probe wcFiber =
      wildcardPingPongProbe(ExecBackend::Fiber, kPingPongReps);
  const Probe wcThread =
      wildcardPingPongProbe(ExecBackend::Thread, kPingPongReps);
  report("ping-pong wildcard", wcFiber, wcThread);
  constexpr int kIallreduceReps = 10000;
  const Probe iarFiber = iallreduceProbe(ExecBackend::Fiber, kIallreduceReps);
  const Probe iarThread =
      iallreduceProbe(ExecBackend::Thread, kIallreduceReps);
  report("iallreduce 8 ranks", iarFiber, iarThread);

  // Observability tax: the same size-only ping-pong with the recording
  // layers dialled up one at a time (fiber backend only — the thread
  // backend's kernel wake-ups drown the deltas). Baseline is everything
  // off; campaign defaults are link telemetry on, tracing off. Best-of-3
  // because the deltas are within single-run scheduler jitter.
  using tibsim::obs::TraceMode;
  constexpr int kObsRuns = 7;
  constexpr int kObsReps = 100000;
  constexpr TraceMode kAggregate = TraceMode::Aggregate;
  constexpr TraceMode kSampled = TraceMode::Sampled;
  constexpr TraceMode kFull = TraceMode::Full;
  struct ObsConfig {
    const TraceMode* mode = nullptr;
    bool links = false;
  };
  // Round-robin over the configurations and keep each one's fastest run:
  // interleaving means a host-load burst hits every configuration equally
  // instead of biasing whichever block it lands on.
  const std::array<ObsConfig, 5> obsConfigs = {{{nullptr, false},
                                                {nullptr, true},
                                                {&kAggregate, true},
                                                {&kSampled, true},
                                                {&kFull, true}}};
  std::array<Probe, 5> obsBest{};
  for (int run = 0; run < kObsRuns; ++run) {
    for (std::size_t i = 0; i < obsConfigs.size(); ++i) {
      const Probe probe = observedPingPongProbe(
          ExecBackend::Fiber, kObsReps, obsConfigs[i].mode,
          obsConfigs[i].links);
      if (run == 0 || probe.seconds < obsBest[i].seconds) obsBest[i] = probe;
    }
  }
  const Probe& obsOff = obsBest[0];
  const Probe& obsLinks = obsBest[1];
  const Probe& obsAgg = obsBest[2];
  const Probe& obsSampled = obsBest[3];
  const Probe& obsFull = obsBest[4];
  std::printf("\nobservability tax (fiber, size-only ping-pong, %d reps, "
              "best of %d interleaved, vs all recording off)\n",
              kObsReps, kObsRuns);
  const auto taxLine = [&](const char* name, const Probe& probe) {
    std::printf("%-22s %8.1f ns/round-trip   %+6.1f%%\n", name,
                probe.nsPerRep(),
                obsOff.nsPerRep() > 0.0
                    ? 100.0 * (probe.nsPerRep() / obsOff.nsPerRep() - 1.0)
                    : 0.0);
  };
  taxLine("all off", obsOff);
  taxLine("link telemetry", obsLinks);
  taxLine("+trace aggregate", obsAgg);
  taxLine("+trace sampled", obsSampled);
  taxLine("+trace full", obsFull);

  const CampaignProbe campaign = campaignThroughputProbe();
  std::printf("\ncampaign throughput (%zu experiments, result cache)\n"
              "%-22s %8.3f s\n%-22s %8.3f s   %0.1fx vs cold\n"
              "%-22s %8.3f s   %0.1fx vs cold\n",
              campaign.experiments, "cold", campaign.coldSeconds, "warm",
              campaign.warmSeconds,
              campaign.warmSeconds > 0.0
                  ? campaign.coldSeconds / campaign.warmSeconds
                  : 0.0,
              "cold --procs 2", campaign.procs2Seconds,
              campaign.procs2Seconds > 0.0
                  ? campaign.coldSeconds / campaign.procs2Seconds
                  : 0.0);

  std::printf(
      "\nfiber = user-space swapcontext on owned stacks; thread = one OS "
      "thread per process with a mutex/condvar baton (two kernel wake-ups "
      "per switch).\n");

  if (!jsonPath.empty()) {
    tibsim::json::Value doc = tibsim::json::Value::object();
    doc["schema"] = "tibsim-bench-sim-v1";
    doc["rawEngine"] = probeJson(rawFiber, rawThread);
    doc["pingPongSizeOnly"] = probeJson(ppFiber, ppThread);
    doc["pingPong64BInline"] = probeJson(pp64Fiber, pp64Thread);
    doc["pingPong4KiBPooled"] = probeJson(pp4kFiber, pp4kThread);
    doc["pingPongWildcard"] = probeJson(wcFiber, wcThread);
    doc["iallreduce8Ranks"] = probeJson(iarFiber, iarThread);
    tibsim::json::Value obs = tibsim::json::Value::object();
    const auto obsEntry = [&](const Probe& probe) {
      tibsim::json::Value v = tibsim::json::Value::object();
      v["fiberNsPerRoundTrip"] = probe.nsPerRep();
      v["overheadPercent"] =
          obsOff.nsPerRep() > 0.0
              ? 100.0 * (probe.nsPerRep() / obsOff.nsPerRep() - 1.0)
              : 0.0;
      return v;
    };
    obs["allOff"] = obsEntry(obsOff);
    obs["linkTelemetry"] = obsEntry(obsLinks);
    obs["traceAggregate"] = obsEntry(obsAgg);
    obs["traceSampled"] = obsEntry(obsSampled);
    obs["traceFull"] = obsEntry(obsFull);
    doc["observabilityTax"] = obs;
    tibsim::json::Value ct = tibsim::json::Value::object();
    ct["experiments"] = static_cast<double>(campaign.experiments);
    ct["coldSeconds"] = campaign.coldSeconds;
    ct["warmSeconds"] = campaign.warmSeconds;
    ct["procs2Seconds"] = campaign.procs2Seconds;
    ct["warmSpeedup"] = campaign.warmSeconds > 0.0
                            ? campaign.coldSeconds / campaign.warmSeconds
                            : 0.0;
    ct["procs2Speedup"] =
        campaign.procs2Seconds > 0.0
            ? campaign.coldSeconds / campaign.procs2Seconds
            : 0.0;
    doc["campaignThroughput"] = ct;
    std::ofstream out(jsonPath);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
      return 1;
    }
    out << doc.dump(2) << "\n";
    std::printf("\nwrote %s\n", jsonPath.c_str());
  }
  return 0;
}
