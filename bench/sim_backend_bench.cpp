// Microbenchmark: cost per simulated context switch, fiber vs thread
// execution backend. Two probes:
//
//  * raw engine: one process delay()ing in a tight loop — each iteration is
//    one scheduler->process switch, one process->scheduler yield and one
//    event dispatch, i.e. the engine's floor;
//  * simMPI ping-pong: the Section 4.1 two-rank 64-byte ping-pong through
//    the full protocol stack — what a rank-level context switch costs in
//    situ.
//
// Host timings are inherently machine-dependent, so this is a standalone
// binary (like kernels_native) and never part of the deterministic
// campaign artefacts. Numbers are recorded in EXPERIMENTS.md.

#include <chrono>
#include <cstdio>

#include "tibsim/mpi/simmpi.hpp"
#include "tibsim/sim/execution_context.hpp"
#include "tibsim/sim/simulation.hpp"

namespace {

using tibsim::sim::ExecBackend;

struct Probe {
  double seconds = 0.0;
  std::uint64_t switches = 0;
  double nsPerSwitch() const {
    return switches > 0 ? seconds * 1e9 / static_cast<double>(switches) : 0.0;
  }
};

Probe rawEngineProbe(ExecBackend backend, int iterations) {
  tibsim::sim::Simulation sim(backend);
  sim.spawn("spinner", [iterations](tibsim::sim::Process& p) {
    for (int i = 0; i < iterations; ++i) p.delay(1e-6);
  });
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return {seconds, sim.engineStats().contextSwitches};
}

Probe pingPongProbe(ExecBackend backend, int repetitions) {
  tibsim::mpi::WorldConfig cfg = tibsim::mpi::WorldConfig::tibidaboNode();
  cfg.simBackend = backend;
  tibsim::mpi::MpiWorld world(cfg, 2);
  const auto start = std::chrono::steady_clock::now();
  const tibsim::mpi::WorldStats stats =
      world.run([repetitions](tibsim::mpi::MpiContext& ctx) {
        for (int i = 0; i < repetitions; ++i) {
          if (ctx.rank() == 0) {
            ctx.send(1, 7, 64);
            ctx.recv(1, 8);
          } else {
            ctx.recv(0, 7);
            ctx.send(0, 8, 64);
          }
        }
      });
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return {seconds, stats.engine.contextSwitches};
}

void report(const char* name, const Probe& fiber, const Probe& thread) {
  std::printf("%-16s %12llu switches   fiber %8.1f ns/switch   thread "
              "%8.1f ns/switch   ratio %.1fx\n",
              name, static_cast<unsigned long long>(fiber.switches),
              fiber.nsPerSwitch(), thread.nsPerSwitch(),
              fiber.nsPerSwitch() > 0.0
                  ? thread.nsPerSwitch() / fiber.nsPerSwitch()
                  : 0.0);
}

}  // namespace

int main() {
  constexpr int kRawIterations = 200000;
  constexpr int kPingPongReps = 50000;

  // Warm both paths once so first-touch page faults don't skew either side.
  rawEngineProbe(ExecBackend::Fiber, 1000);
  rawEngineProbe(ExecBackend::Thread, 1000);

  std::printf("sim backend microbenchmark (cost per simulated context "
              "switch)\n\n");
  report("raw engine", rawEngineProbe(ExecBackend::Fiber, kRawIterations),
         rawEngineProbe(ExecBackend::Thread, kRawIterations));
  report("simMPI ping-pong", pingPongProbe(ExecBackend::Fiber, kPingPongReps),
         pingPongProbe(ExecBackend::Thread, kPingPongReps));
  std::printf(
      "\nfiber = user-space swapcontext on owned stacks; thread = one OS "
      "thread per process with a mutex/condvar baton (two kernel wake-ups "
      "per switch).\n");
  return 0;
}
