// Figure 4: multi-core (OpenMP-style, all cores) micro-kernel performance
// and energy efficiency under a frequency sweep. Baseline remains the
// serial Tegra 2 @ 1 GHz run, as in the paper.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/common/chart.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiments.hpp"

int main() {
  using namespace tibsim;
  using namespace tibsim::units;
  benchutil::heading("Figure 4",
                     "multi-core micro-kernel performance & energy, "
                     "frequency sweep");

  const auto multi =
      core::MicroKernelExperiment(core::MicroKernelExperiment::Mode::MultiCore)
          .run();
  const auto single =
      core::MicroKernelExperiment(
          core::MicroKernelExperiment::Mode::SingleCore)
          .run();

  TextTable table({"platform", "freq GHz", "speedup vs Tegra2@1GHz",
                   "energy vs baseline"});
  std::vector<Series> perf, energy;
  for (const auto& sweep : multi) {
    Series sp{sweep.platform, {}, {}};
    Series se{sweep.platform, {}, {}};
    for (const auto& pt : sweep.points) {
      table.addRow({sweep.platform, fmt(toGhz(pt.frequencyHz), 2),
                    fmt(pt.speedupVsBaseline, 2),
                    fmt(pt.energyVsBaseline, 2)});
      sp.x.push_back(toGhz(pt.frequencyHz));
      sp.y.push_back(pt.speedupVsBaseline);
      se.x.push_back(toGhz(pt.frequencyHz));
      se.y.push_back(pt.energyVsBaseline);
    }
    perf.push_back(std::move(sp));
    energy.push_back(std::move(se));
  }
  std::cout << table.render() << '\n';

  ChartOptions perfOpts;
  perfOpts.title = "Figure 4(a): multicore speedup vs Tegra2@1GHz (log y)";
  perfOpts.logY = true;
  perfOpts.xLabel = "frequency (GHz)";
  std::cout << renderChart(perf, perfOpts) << '\n';
  ChartOptions energyOpts;
  energyOpts.title = "Figure 4(b): per-iteration energy vs baseline";
  energyOpts.xLabel = "frequency (GHz)";
  std::cout << renderChart(energy, energyOpts) << '\n';

  // The paper's headline multicore observation: OpenMP versions use less
  // energy than serial, by roughly 1.7x (Tegra2/3), 2.25x (Arndale) and
  // 2.5x (Intel).
  TextTable gains({"platform", "serial J/iter", "multicore J/iter",
                   "energy gain (paper)"});
  const char* paperGain[] = {"1.7x", "1.7x", "2.25x", "2.5x"};
  for (std::size_t i = 0; i < multi.size(); ++i) {
    const double es = single[i].points.back().suiteEnergyJ;
    const double em = multi[i].points.back().suiteEnergyJ;
    gains.addRow({multi[i].platform, fmt(es, 2), fmt(em, 2),
                  fmt(es / em, 2) + "x (" + paperGain[i] + ")"});
  }
  std::cout << gains.render() << '\n';
  benchutil::note(
      "the Arndale's paper value (2.25x with 2 cores) implies superlinear "
      "scaling the roofline model does not reproduce; see EXPERIMENTS.md");
  return 0;
}
