// Figure 6: scalability of the five Table-3 applications on the simulated
// Tibidabo cluster (192 x Tegra 2, 1 GbE tree, MPI over TCP/IP).
// HPL runs weak scaling; SPECFEM3D / HYDRO / PEPC / GROMACS run strong
// scaling with the paper's input-fits-memory constraints.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/chart.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/core/experiments.hpp"

int main() {
  using namespace tibsim;
  benchutil::heading("Figure 6", "application scalability on Tibidabo");

  // Table 3: applications for scalability evaluation.
  TextTable table3({"application", "description", "scaling"});
  table3.addRow({"HPL", "High-Performance LINPACK", "weak"});
  table3.addRow({"PEPC", "Tree code for N-body problem", "strong"});
  table3.addRow({"HYDRO", "2D Eulerian code for hydrodynamics", "strong"});
  table3.addRow({"GROMACS", "Molecular dynamics", "strong"});
  table3.addRow(
      {"SPECFEM3D", "3D seismic wave propagation (spectral elements)",
       "strong"});
  std::cout << "Table 3 (applications):\n" << table3.render() << '\n';

  const cluster::ClusterSpec spec = cluster::ClusterSpec::tibidabo();
  const std::vector<int> nodeCounts = {4, 8, 16, 24, 32, 48, 64, 96};

  std::cout << "Running " << spec.name << " (" << spec.nodes << " x "
            << spec.nodePlatform.shortName << ", "
            << net::toString(spec.protocol) << ", " << spec.ranksPerNode
            << " ranks/node)...\n\n";

  const auto curves = core::scalabilityExperiment(spec, nodeCounts);

  TextTable table({"application", "nodes", "wallclock s", "speedup",
                   "efficiency"});
  std::vector<Series> chartSeries;
  Series ideal{"ideal", {}, {}};
  for (int n : nodeCounts) {
    ideal.x.push_back(n);
    ideal.y.push_back(n);
  }
  chartSeries.push_back(ideal);

  for (const auto& curve : curves) {
    Series s{curve.application, {}, {}};
    for (const auto& pt : curve.points) {
      table.addRow({curve.application, std::to_string(pt.nodes),
                    fmt(pt.wallClockSeconds, 2), fmt(pt.speedup, 1),
                    fmt(pt.speedup / pt.nodes, 2)});
      s.x.push_back(pt.nodes);
      s.y.push_back(pt.speedup);
    }
    chartSeries.push_back(std::move(s));
  }
  std::cout << table.render() << '\n';

  ChartOptions opts;
  opts.title = "Figure 6: speed-up vs number of nodes (log-log)";
  opts.logX = true;
  opts.logY = true;
  opts.xLabel = "nodes";
  opts.yLabel = "speed-up";
  std::cout << renderChart(chartSeries, opts) << '\n';

  benchutil::note(
      "paper shape: SPECFEM3D near-ideal; HYDRO departs after ~16 nodes; "
      "GROMACS limited by its 2-node-sized input; PEPC (needs >= 24 nodes) "
      "scales poorly; HPL weak-scales at ~51 % efficiency.");
  return 0;
}
