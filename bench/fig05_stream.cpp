// Figure 5: STREAM memory bandwidth (copy/scale/add/triad) per platform,
// single-core and whole-SoC, plus efficiency vs the datasheet peak.

#include <iostream>

#include "bench_util.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/common/chart.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiments.hpp"

int main() {
  using namespace tibsim;
  using namespace tibsim::units;
  benchutil::heading("Figure 5", "STREAM memory bandwidth");

  const auto rows = core::streamExperiment();
  const char* ops[4] = {"Copy", "Scale", "Add", "Triad"};

  std::cout << "-- Figure 5(a): single core (GB/s) --\n";
  TextTable single({"platform", "Copy", "Scale", "Add", "Triad"});
  for (const auto& row : rows) {
    single.addRow({row.platform, fmt(row.singleCoreBytesPerS[0] / kGB, 2),
                   fmt(row.singleCoreBytesPerS[1] / kGB, 2),
                   fmt(row.singleCoreBytesPerS[2] / kGB, 2),
                   fmt(row.singleCoreBytesPerS[3] / kGB, 2)});
  }
  std::cout << single.render() << '\n';

  std::cout << "-- Figure 5(b): all cores / MPSoC (GB/s) --\n";
  TextTable multi({"platform", "Copy", "Scale", "Add", "Triad",
                   "peak GB/s", "efficiency (paper)"});
  const char* paperEff[4] = {"62%", "27%", "52%", "57%"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto platform = arch::PlatformRegistry::evaluated()[i];
    multi.addRow({row.platform, fmt(row.multiCoreBytesPerS[0] / kGB, 2),
                  fmt(row.multiCoreBytesPerS[1] / kGB, 2),
                  fmt(row.multiCoreBytesPerS[2] / kGB, 2),
                  fmt(row.multiCoreBytesPerS[3] / kGB, 2),
                  fmt(platform.soc.memory.peakBandwidthBytesPerS / kGB, 2),
                  fmt(row.efficiencyVsPeak * 100, 0) + "% (" + paperEff[i] +
                      ")"});
  }
  std::cout << multi.render() << '\n';

  std::vector<std::pair<std::string, double>> bars;
  for (std::size_t op = 0; op < 4; ++op)
    for (const auto& row : rows)
      bars.emplace_back(std::string(ops[op]) + " " + row.platform,
                        row.multiCoreBytesPerS[op] / kGB);
  std::cout << renderBars(bars, "MPSoC bandwidth (GB/s)") << '\n';

  std::cout << "Exynos5250 / Tegra2 multicore triad ratio: "
            << fmt(rows[2].multiCoreBytesPerS[3] /
                       rows[0].multiCoreBytesPerS[3],
                   1)
            << "x   (paper: \"about 4.5 times\")\n";
  return 0;
}
