// Run a week-in-the-life batch campaign on the simulated Tibidabo: a mix
// of the paper's applications submitted through the SLURM-style scheduler
// (Section 5 / Figure 8), with per-job runtimes measured by the cluster
// simulation and machine-level utilisation and energy reported.

#include <iostream>

#include "tibsim/apps/hpl.hpp"
#include "tibsim/apps/hydro.hpp"
#include "tibsim/apps/specfem.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/cluster/slurm.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"

int main() {
  using namespace tibsim;
  using namespace tibsim::units;

  const cluster::ClusterSpec spec = cluster::ClusterSpec::tibidabo();
  cluster::ClusterSimulation sim(spec);
  std::cout << "Measuring job runtimes on " << spec.name << "...\n";

  // Measure each job type once through the cluster simulation; the
  // scheduler then works with realistic durations.
  apps::HydroBenchmark::Params hydro;
  hydro.steps = 50;
  const double hydroOn16 =
      sim.runJob(16, apps::HydroBenchmark::rankBody(hydro)).wallClockSeconds;
  apps::SpecfemBenchmark::Params specfem;
  specfem.steps = 100;
  const double specfemOn32 =
      sim.runJob(32, apps::SpecfemBenchmark::rankBody(specfem))
          .wallClockSeconds;
  const double hplOn64 =
      apps::HplBenchmark::run(sim, 64, 0.2).wallClockSeconds;

  // A morning's submissions: users over-request wall time, as users do.
  cluster::SlurmScheduler slurm(spec.nodes);
  auto submit = [&](const std::string& name, int nodes, double duration,
                    double submitAt) {
    cluster::BatchJob job;
    job.name = name;
    job.nodes = nodes;
    job.durationSeconds = duration;
    job.requestedSeconds = duration * 1.8;
    job.submitSeconds = submitAt;
    slurm.submit(job);
  };
  submit("hpl-64", 64, hplOn64, 0.0);
  submit("hydro-16-a", 16, hydroOn16, 10.0);
  submit("specfem-32", 32, specfemOn32, 20.0);
  submit("hpl-192", 192, hplOn64 * 1.4, 30.0);  // full-machine job queues
  submit("hydro-16-b", 16, hydroOn16, 40.0);
  submit("hydro-16-c", 16, hydroOn16, 41.0);
  submit("specfem-32-b", 32, specfemOn32, 60.0);

  const auto result = slurm.schedule();

  TextTable table({"job", "nodes", "submit s", "start s", "end s",
                   "wait s"});
  for (const auto& s : result.jobs) {
    table.addRow({s.job.name, std::to_string(s.job.nodes),
                  fmt(s.job.submitSeconds, 0), fmt(s.startSeconds, 1),
                  fmt(s.endSeconds, 1), fmt(s.waitSeconds(), 1)});
  }
  std::cout << '\n' << table.render() << '\n';

  const double energy =
      cluster::SlurmScheduler::estimateEnergyJ(result, spec, spec.nodes);
  TextTable summary({"metric", "value"});
  summary.addRow({"makespan", fmt(result.makespanSeconds / 60.0, 1) + " min"});
  summary.addRow({"node utilisation",
                  fmt(100 * result.nodeUtilization, 1) + " %"});
  summary.addRow({"backfilled jobs", std::to_string(result.backfilledJobs)});
  summary.addRow({"average wait", fmt(result.averageWaitSeconds, 1) + " s"});
  summary.addRow({"campaign energy", fmt(energy / 1e6, 2) + " MJ"});
  std::cout << summary.render() << '\n';
  return 0;
}
