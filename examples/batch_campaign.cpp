// Run a week-in-the-life batch campaign on the simulated Tibidabo. The
// study now lives in the experiment registry as "campaign"
// (src/core/experiments_cluster.cpp); this example drives it the same way
// `socbench run campaign --compat` would.

#include "tibsim/core/campaign.hpp"

int main(int argc, char** argv) {
  return tibsim::core::runCompatBinary("campaign", argc, argv);
}
