// Deploy a virtual mobile-SoC cluster and run a production-style workload —
// the Section 4 experience, end to end:
//
//   $ ./deploy_cluster [nodes] [tcp|openmx]     (default: 32 openmx)
//
// Builds a Tibidabo-style machine, runs the HYDRO solver proxy and an HPL
// weak-scaling point on it, and reports wallclock, energy, and the
// Green500 metric.

#include <iostream>
#include <string>

#include "tibsim/apps/hpl.hpp"
#include "tibsim/apps/hydro.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"

int main(int argc, char** argv) {
  using namespace tibsim;
  using namespace tibsim::units;

  const int nodes = argc > 1 ? std::stoi(argv[1]) : 32;
  const bool openmx = argc > 2 ? std::string(argv[2]) == "openmx" : true;

  cluster::ClusterSpec spec = openmx ? cluster::ClusterSpec::tibidaboOpenMx()
                                     : cluster::ClusterSpec::tibidabo();
  std::cout << "Deploying " << spec.name << ": " << nodes << " x "
            << spec.nodePlatform.name << '\n'
            << "  network: 1 GbE tree, "
            << fmt(spec.topology.bisectionBytesPerS * 8 / 1e9, 0)
            << " Gb/s bisection, MPI over " << net::toString(spec.protocol)
            << '\n'
            << "  per node: "
            << fmt(toGflops(spec.nodePlatform.peakFlops()), 1)
            << " GFLOPS peak, "
            << fmt(static_cast<double>(spec.nodePlatform.dramBytes) / kGiB, 0)
            << " GiB " << spec.nodePlatform.dramType << "\n\n";

  cluster::ClusterSimulation sim(spec);

  // --- HYDRO strong scaling point ---
  apps::HydroBenchmark::Params hydro;
  hydro.nx = 2048;
  hydro.ny = 2048;
  hydro.steps = 25;
  std::cout << "Running HYDRO (" << hydro.nx << "x" << hydro.ny << ", "
            << hydro.steps << " steps)...\n";
  const auto hydroResult =
      sim.runJob(nodes, apps::HydroBenchmark::rankBody(hydro));
  std::cout << "  wallclock " << fmt(hydroResult.wallClockSeconds, 2)
            << " s, energy " << fmt(hydroResult.energyJ / 1e3, 2)
            << " kJ, average draw " << fmt(hydroResult.averagePowerW, 0)
            << " W\n\n";

  // --- HPL weak scaling point ---
  std::cout << "Running HPL (weak-scaled, N = "
            << apps::HplBenchmark::problemSizeForNodes(spec, nodes)
            << ")...\n";
  const auto hpl = apps::HplBenchmark::run(sim, nodes);
  TextTable table({"metric", "value"});
  table.addRow({"achieved", fmt(hpl.gflops, 1) + " GFLOPS"});
  table.addRow({"peak", fmt(hpl.peakGflops, 1) + " GFLOPS"});
  table.addRow({"efficiency", fmt(hpl.efficiency() * 100, 1) + " %"});
  table.addRow({"average power", fmt(hpl.averagePowerW, 0) + " W"});
  table.addRow({"Green500 metric", fmt(hpl.mflopsPerWatt, 0) + " MFLOPS/W"});
  table.addRow({"wallclock", fmt(hpl.wallClockSeconds / 60.0, 1) + " min"});
  std::cout << table.render() << '\n';

  std::cout << "(paper, 96 nodes over TCP/IP: ~97 GFLOPS, 51 % efficiency, "
               "~120 MFLOPS/W)\n";
  return 0;
}
