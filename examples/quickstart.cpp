// Quickstart: evaluate a micro-kernel on every modelled platform, run the
// real kernel natively to verify it, and print a small comparison table.
//
//   $ ./quickstart [kernel-tag]     (default: dmmm)
//
// This walks the three layers of tibsim:
//   1. real kernels   — run & verify the actual computation;
//   2. platform models — Table-1 SoC descriptions;
//   3. execution/power models — modelled time and energy per platform.

#include <iostream>
#include <string>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/thread_pool.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/kernels/microkernel.hpp"
#include "tibsim/perfmodel/execution_model.hpp"
#include "tibsim/power/power_model.hpp"

int main(int argc, char** argv) {
  using namespace tibsim;
  using namespace tibsim::units;

  const std::string tag = argc > 1 ? argv[1] : "dmmm";
  std::cout << "tibsim quickstart — kernel '" << tag << "'\n\n";

  // 1. Run the real kernel on this machine and verify its output.
  auto kernel = kernels::makeKernel(tag);
  kernel->setup(tag == "dmmm" ? 64 : 4096, /*seed=*/1);
  kernel->runSerial();
  std::cout << kernel->fullName() << " (" << kernel->properties() << ")\n"
            << "native serial run verifies: "
            << (kernel->verify() ? "yes" : "NO") << '\n';
  ThreadPool pool(2);
  kernel->runParallel(pool);
  std::cout << "native parallel run verifies: "
            << (kernel->verify() ? "yes" : "NO") << "\n\n";

  // 2 + 3. Model the paper-sized kernel on each Table-1 platform.
  const perfmodel::WorkProfile work = kernels::referenceProfileFor(tag);
  std::cout << "reference profile: " << fmt(work.flops / 1e6, 1)
            << " MFLOP, " << fmt(work.bytes / 1e6, 1) << " MB DRAM traffic, "
            << toString(work.pattern) << " pattern\n\n";

  const perfmodel::ExecutionModel exec;
  TextTable table({"platform", "freq GHz", "1-core ms", "all-core ms",
                   "platform W", "energy J (1 core)"});
  for (const auto& platform : arch::PlatformRegistry::all()) {
    const double f = platform.maxFrequencyHz();
    const double t1 = exec.time(platform, work, f, 1);
    const double tn = exec.time(platform, work, f, platform.soc.cores);
    const power::PowerModel powerModel(platform);
    power::LoadState load;
    load.activeCores = 1;
    load.memBandwidthBytesPerS = exec.consumedBandwidth(platform, work, f, 1);
    const double watts = powerModel.watts(f, load);
    table.addRow({platform.shortName, fmt(toGhz(f), 1), fmt(toMs(t1), 1),
                  fmt(toMs(tn), 1), fmt(watts, 1), fmt(watts * t1, 2)});
  }
  std::cout << table.render() << '\n';
  std::cout << "Available kernels:";
  for (const auto& t : kernels::suiteTags()) std::cout << ' ' << t;
  std::cout << '\n';
  return 0;
}
