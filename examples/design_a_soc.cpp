// Design-space exploration: describe your own mobile SoC and see whether it
// is "ready for HPC" — the forward-looking question of Sections 6.3 / 7.
//
// Builds a custom Platform (the same structure the Table-1 parts use),
// evaluates it against the micro-kernel suite and the interconnect models,
// and projects a 192-node cluster built from it.

#include <iostream>

#include "tibsim/apps/hpl.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/statistics.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiments.hpp"

int main() {
  using namespace tibsim;
  using namespace tibsim::units;

  // ------------------------------------------------------------------
  // 1. Describe the SoC. Start from the Cortex-A15 part and apply the
  //    paper's Section 6.3 wish list: ARMv8 FP64-in-NEON cores, more of
  //    them, ECC, an on-chip 10 GbE NIC, and a server-grade thermal budget.
  // ------------------------------------------------------------------
  arch::Platform mySoc = arch::PlatformRegistry::exynos5250();
  mySoc.name = "MySoC-HPC (custom)";
  mySoc.shortName = "MySoC";
  mySoc.soc.name = "MySoC-HPC";
  mySoc.soc.core = arch::CpuCoreModel{arch::Microarch::CortexA57,
                                      /*fp64FlopsPerCycle=*/4.0,
                                      /*maxOutstandingMisses=*/10,
                                      /*issueWidth=*/3.0, true};
  mySoc.soc.cores = 8;
  mySoc.soc.dvfs = {{mhz(600), 0.80}, {ghz(1.2), 0.95}, {ghz(1.8), 1.08},
                    {ghz(2.2), 1.18}};
  mySoc.soc.memory = arch::MemorySystemModel{
      4, 64, mhz(1600), gbPerS(51.2), /*ecc=*/true,
      /*streamEfficiency=*/0.65, gbPerS(12.0)};
  mySoc.dramBytes = static_cast<std::size_t>(gib(16.0));
  mySoc.dramType = "DDR4-3200 ECC";
  mySoc.nicAttachment = arch::NicAttachment::OnChip;
  mySoc.nicLinkRateBytesPerS = gbps(10.0);
  mySoc.power = arch::BoardPowerParams{6.0, 3.0, 2.8, 0.12, 1.5};

  std::cout << "Evaluating " << mySoc.name << " ("
            << arch::toString(mySoc.soc.core.microarch) << ", "
            << mySoc.soc.cores << " cores @ "
            << fmt(toGhz(mySoc.maxFrequencyHz()), 1) << " GHz, "
            << fmt(toGflops(mySoc.peakFlops()), 0) << " GFLOPS peak)\n\n";

  // ------------------------------------------------------------------
  // 2. Single-SoC evaluation vs the Table-1 parts.
  // ------------------------------------------------------------------
  const auto base = core::MicroKernelExperiment::baseline();
  auto platforms = arch::PlatformRegistry::evaluated();
  platforms.push_back(mySoc);
  TextTable table({"platform", "suite speedup (all cores)",
                   "bytes/FLOP @ own NIC", "ECC"});
  for (const auto& platform : platforms) {
    const auto suite = core::MicroKernelExperiment::measureSuite(
        platform, platform.maxFrequencyHz(), platform.soc.cores);
    std::vector<double> ratios;
    for (std::size_t i = 0; i < suite.size(); ++i)
      ratios.push_back(base[i].seconds / suite[i].seconds);
    table.addRow({platform.shortName, fmt(stats::geomean(ratios), 2) + "x",
                  fmt(platform.bytesPerFlop(platform.nicLinkRateBytesPerS),
                      3),
                  platform.soc.memory.eccCapable ? "yes" : "no"});
  }
  std::cout << table.render() << '\n';

  // ------------------------------------------------------------------
  // 3. Project a 192-node cluster (the Tibidabo footprint, rebuilt).
  // ------------------------------------------------------------------
  cluster::ClusterSpec spec = cluster::ClusterSpec::tibidaboOpenMx();
  spec.name = "MySoC cluster";
  spec.nodePlatform = mySoc;
  spec.ranksPerNode = 4;
  spec.topology.linkRateBytesPerS = mySoc.nicLinkRateBytesPerS;
  spec.topology.bisectionBytesPerS = gbps(160.0);

  cluster::ClusterSimulation sim(spec);
  std::cout << "Projected 96-node HPL (weak-scaled):\n";
  const auto hpl = apps::HplBenchmark::run(sim, 96, 0.4);
  TextTable result({"metric", "MySoC cluster", "Tibidabo (paper)"});
  result.addRow({"GFLOPS", fmt(hpl.gflops, 0), "~97"});
  result.addRow({"efficiency",
                 fmt(hpl.efficiency() * 100, 0) + " %", "51 %"});
  result.addRow({"MFLOPS/W", fmt(hpl.mflopsPerWatt, 0), "~120"});
  std::cout << result.render() << '\n';

  std::cout << "Note: a faster SoC makes HPL *network*-bound — the 10 GbE\n"
               "link that balanced a Tegra 2 (Table 4) is thin for 70\n"
               "GFLOPS nodes, so efficiency drops even as GFLOPS and\n"
               "MFLOPS/W rise. Exactly the balance argument of Section 4.1.\n\n";
  std::cout << "Checklist from Section 6.3: ECC "
            << (mySoc.soc.memory.eccCapable ? "[x]" : "[ ]")
            << ", fast NIC attach "
            << (mySoc.nicAttachment == arch::NicAttachment::OnChip ? "[x]"
                                                                   : "[ ]")
            << ", >4 GiB addressing "
            << (mySoc.dramBytes > gib(4.0) ? "[x]" : "[ ]") << '\n';
  return 0;
}
