// Interconnect study: run the IMB-style ping-pong through the full
// simulation stack (simMPI over the protocol + fabric models) and compare
// TCP/IP against Open-MX — the Section 4.1 experiment as a library user
// would script it.
//
//   $ ./interconnect_study [tegra2|exynos5250] [freq-ghz]

#include <iostream>
#include <string>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/chart.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiments.hpp"
#include "tibsim/net/protocol.hpp"

int main(int argc, char** argv) {
  using namespace tibsim;
  using namespace tibsim::units;

  const std::string which = argc > 1 ? argv[1] : "tegra2";
  const arch::Platform platform =
      which == "exynos5250" ? arch::PlatformRegistry::exynos5250()
                            : arch::PlatformRegistry::tegra2();
  const double freq = argc > 2 ? ghz(std::stod(argv[2]))
                               : platform.maxFrequencyHz();

  std::cout << "Ping-pong between two " << platform.name << " boards @ "
            << fmt(toGhz(freq), 1) << " GHz ("
            << arch::toString(platform.nicAttachment) << "-attached 1 GbE)"
            << "\n\n";

  TextTable table({"bytes", "TCP/IP lat us", "Open-MX lat us",
                   "TCP/IP MB/s", "Open-MX MB/s", "simMPI TCP us"});
  Series tcpBw{"TCP/IP", {}, {}}, omxBw{"Open-MX", {}, {}};
  for (std::size_t bytes : {std::size_t{1}, std::size_t{64},
                            std::size_t{1024}, std::size_t{16} * 1024,
                            std::size_t{256} * 1024,
                            std::size_t{4} * 1024 * 1024}) {
    const net::ProtocolModel tcp(net::Protocol::TcpIp, platform, freq);
    const net::ProtocolModel omx(net::Protocol::OpenMx, platform, freq);
    const double simTcp =
        core::simulatedPingPongLatency(platform, net::Protocol::TcpIp, freq,
                                       bytes, 8);
    table.addRow({std::to_string(bytes),
                  fmt(toUs(tcp.pingPongLatency(bytes)), 1),
                  fmt(toUs(omx.pingPongLatency(bytes)), 1),
                  fmt(tcp.effectiveBandwidth(bytes) / 1e6, 1),
                  fmt(omx.effectiveBandwidth(bytes) / 1e6, 1),
                  fmt(toUs(simTcp), 1)});
    tcpBw.x.push_back(static_cast<double>(bytes));
    tcpBw.y.push_back(tcp.effectiveBandwidth(bytes) / 1e6);
    omxBw.x.push_back(static_cast<double>(bytes));
    omxBw.y.push_back(omx.effectiveBandwidth(bytes) / 1e6);
  }
  std::cout << table.render() << '\n';

  ChartOptions opts;
  opts.title = "effective bandwidth (MB/s) vs message size (log x)";
  opts.logX = true;
  opts.xLabel = "message bytes";
  std::cout << renderChart({tcpBw, omxBw}, opts) << '\n';

  std::cout << "Estimated execution-time penalty from the TCP small-message "
               "latency (Section 4.1 method): +"
            << fmt(100 * net::latencyExecutionTimePenalty(
                             net::ProtocolModel(net::Protocol::TcpIp,
                                                platform, freq)
                                 .pingPongLatency(1),
                             0.55),
                   0)
            << "% on an Arndale-class core\n";
  return 0;
}
