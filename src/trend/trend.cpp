#include "tibsim/trend/trend.hpp"

#include <cmath>
#include <functional>

#include "tibsim/common/assert.hpp"

namespace tibsim::trend {

// Counts approximated from the TOP500 archives (architecture class per
// system, June lists) — the Figure 1 story: vector/SIMD displaced by RISC
// micros in the mid-90s, RISC displaced by x86 in the mid-2000s.
const std::vector<Top500Entry>& top500ArchitectureShare() {
  static const std::vector<Top500Entry> kData = {
      // year    x86  RISC  vector/SIMD
      {1993.5, 15, 155, 330},
      {1994.5, 18, 210, 272},
      {1995.5, 22, 270, 208},
      {1996.5, 45, 310, 145},
      {1997.5, 88, 335, 77},
      {1998.5, 95, 345, 60},
      {1999.5, 110, 348, 42},
      {2000.5, 125, 340, 35},
      {2001.5, 150, 320, 30},
      {2002.5, 185, 290, 25},
      {2003.5, 235, 245, 20},
      {2004.5, 300, 185, 15},
      {2005.5, 370, 118, 12},
      {2006.5, 400, 90, 10},
      {2007.5, 420, 72, 8},
      {2008.5, 440, 54, 6},
      {2009.5, 450, 45, 5},
      {2010.5, 458, 37, 5},
      {2011.5, 465, 30, 5},
      {2012.5, 470, 25, 5},
      {2013.5, 476, 19, 5},
  };
  return kData;
}

namespace {
/// Year at which series a(year) first exceeds b(year), linearly
/// interpolated between list editions.
double firstOvertake(const std::function<int(const Top500Entry&)>& a,
                     const std::function<int(const Top500Entry&)>& b) {
  const auto& data = top500ArchitectureShare();
  for (std::size_t i = 1; i < data.size(); ++i) {
    const double prevDelta = a(data[i - 1]) - b(data[i - 1]);
    const double delta = a(data[i]) - b(data[i]);
    if (prevDelta < 0.0 && delta >= 0.0) {
      const double t = prevDelta / (prevDelta - delta);
      return data[i - 1].year + t * (data[i].year - data[i - 1].year);
    }
  }
  TIB_REQUIRE_MSG(false, "no overtake found in the dataset");
  return 0.0;
}
}  // namespace

double yearX86OvertakesRisc() {
  return firstOvertake([](const Top500Entry& e) { return e.x86; },
                       [](const Top500Entry& e) { return e.risc; });
}

double yearRiscOvertakesVector() {
  return firstOvertake([](const Top500Entry& e) { return e.risc; },
                       [](const Top500Entry& e) { return e.vectorSimd; });
}

const std::vector<ProcessorPoint>& processorPoints(ProcessorClass cls) {
  // Peak FP64 per processor (MFLOPS), vendor datasheet values.
  static const std::vector<ProcessorPoint> kVector = {
      {"Cray-1", 1976, 160},        {"Cray X-MP", 1983, 235},
      {"Cray Y-MP", 1988, 333},     {"Cray C90", 1991, 952},
      {"NEC SX-4", 1995, 2000},     {"Cray T90", 1995, 1800},
      {"NEC SX-5", 1998, 8000},
  };
  static const std::vector<ProcessorPoint> kCommodity = {
      {"Intel i860", 1989, 80},      {"DEC Alpha EV4", 1992, 200},
      {"Intel Pentium", 1993, 66},   {"DEC Alpha EV5", 1995, 600},
      {"Intel Pentium Pro", 1995, 200},
      {"IBM P2SC", 1996, 640},       {"HP PA8200", 1997, 800},
      {"Intel Pentium II", 1997, 300},
      {"DEC Alpha EV6", 1998, 1000}, {"Intel Pentium III", 1999, 500},
  };
  static const std::vector<ProcessorPoint> kServer = {
      {"DEC Alpha EV4", 1992, 200},       {"DEC Alpha EV5", 1995, 600},
      {"DEC Alpha EV6", 1998, 1000},      {"Intel Pentium 4", 2001, 3000},
      {"AMD Opteron", 2003, 4400},        {"Intel Woodcrest", 2006, 21300},
      {"AMD Barcelona", 2007, 36800},     {"Intel Nehalem", 2009, 46900},
      {"Intel Westmere", 2010, 79900},    {"Intel Xeon E5-2670", 2012, 166400},
      {"Intel Xeon E5 v2", 2013, 230400},
  };
  static const std::vector<ProcessorPoint> kMobile = {
      {"ARM Cortex-A8 (VFP)", 2009, 250},
      {"NVIDIA Tegra 2", 2011, 2000},
      {"NVIDIA Tegra 3", 2012, 5200},
      {"Samsung Exynos 5250", 2012, 6800},
      {"Samsung Exynos 5410", 2013, 13600},
      {"4-core ARMv8 @ 2 GHz", 2014, 32000},
  };
  switch (cls) {
    case ProcessorClass::Vector: return kVector;
    case ProcessorClass::Commodity: return kCommodity;
    case ProcessorClass::Server: return kServer;
    case ProcessorClass::Mobile: return kMobile;
  }
  return kVector;
}

ExponentialFit fitClass(ProcessorClass cls) {
  const auto& points = processorPoints(cls);
  std::vector<double> years, mflops;
  years.reserve(points.size());
  mflops.reserve(points.size());
  for (const auto& p : points) {
    years.push_back(p.year);
    mflops.push_back(p.peakMflops);
  }
  return fitExponential(years, mflops);
}

double gapAt(ProcessorClass lhs, ProcessorClass rhs, double year) {
  return fitClass(lhs).at(year) / fitClass(rhs).at(year);
}

double projectedCrossover(ProcessorClass challenger,
                          ProcessorClass incumbent) {
  return crossover(fitClass(challenger), fitClass(incumbent));
}

}  // namespace tibsim::trend
