#include "tibsim/reliability/dram_errors.hpp"

#include <cmath>

#include "tibsim/common/assert.hpp"

namespace tibsim::reliability {

double DramErrorModel::dimmDailyErrorProbability() const {
  TIB_REQUIRE(dimmAnnualErrorProbability > 0.0 &&
              dimmAnnualErrorProbability < 1.0);
  // Constant hazard: p_year = 1 - exp(-lambda * 365) => p_day from the same
  // lambda.
  const double lambdaPerDay =
      -std::log(1.0 - dimmAnnualErrorProbability) / 365.0;
  return 1.0 - std::exp(-lambdaPerDay);
}

double DramErrorModel::systemDailyErrorProbability(int nodes) const {
  TIB_REQUIRE(nodes >= 1 && dimmsPerNode >= 1);
  const double pDay = dimmDailyErrorProbability();
  const double dimms = static_cast<double>(nodes) * dimmsPerNode;
  return 1.0 - std::pow(1.0 - pDay, dimms);
}

double DramErrorModel::expectedErrorsPerDay(int nodes) const {
  const double lambdaPerDay =
      -std::log(1.0 - dimmAnnualErrorProbability) / 365.0;
  return lambdaPerDay * static_cast<double>(nodes) * dimmsPerNode;
}

double DramErrorModel::monteCarloDailyErrorProbability(
    int nodes, int days, std::uint64_t seed) const {
  TIB_REQUIRE(days >= 1);
  Rng rng(seed);
  const double pDay = dimmDailyErrorProbability();
  const int dimms = nodes * dimmsPerNode;
  int hitDays = 0;
  for (int d = 0; d < days; ++d) {
    bool hit = false;
    for (int i = 0; i < dimms && !hit; ++i) hit = rng.bernoulli(pDay);
    if (hit) ++hitDays;
  }
  return static_cast<double>(hitDays) / days;
}

double DramErrorModel::jobSurvivalProbability(int nodes, double hours) const {
  TIB_REQUIRE(hours > 0.0);
  const double lambdaPerDay =
      -std::log(1.0 - dimmAnnualErrorProbability) / 365.0;
  const double lambdaJob =
      lambdaPerDay * (hours / 24.0) * static_cast<double>(nodes) *
      dimmsPerNode;
  return std::exp(-lambdaJob);
}

double DramErrorModel::effectiveThroughput(int nodes, double checkpointHours,
                                           double checkpointCostHours) const {
  TIB_REQUIRE(checkpointHours > 0.0 && checkpointCostHours >= 0.0);
  const double lambdaPerDay =
      -std::log(1.0 - dimmAnnualErrorProbability) / 365.0;
  const double lambdaPerHour =
      lambdaPerDay / 24.0 * static_cast<double>(nodes) * dimmsPerNode;
  // Per checkpoint interval: useful work = checkpointHours; overhead =
  // checkpoint write + expected rework (failures in the interval each lose
  // half the interval on average).
  const double failuresPerInterval = lambdaPerHour * checkpointHours;
  const double rework = failuresPerInterval * 0.5 * checkpointHours;
  return checkpointHours /
         (checkpointHours + checkpointCostHours + rework);
}

}  // namespace tibsim::reliability
