#include "tibsim/reliability/fault_injection.hpp"

#include "tibsim/common/assert.hpp"
#include "tibsim/common/rng.hpp"
#include "tibsim/mpi/collective_verify.hpp"

namespace tibsim::reliability {

FaultPlan planCollectiveFault(const DramErrorModel& model, int ranks,
                              int steps, std::uint64_t seed) {
  TIB_REQUIRE_MSG(ranks > 0, "fault plan needs at least one rank");
  TIB_REQUIRE_MSG(steps > 1, "fault plan needs at least two steps");
  FaultPlan plan;
  plan.dailyErrorProbability = model.systemDailyErrorProbability(ranks);
  Rng rng(seed ^ 0x5eedFa017ULL);
  plan.victimRank =
      static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(ranks)));
  plan.victimStep = 1 + static_cast<int>(rng.nextBelow(
                            static_cast<std::uint64_t>(steps - 1)));
  return plan;
}

std::string runCollectiveFaultDemo(mpi::WorldConfig config, int ranks,
                                   int steps, const FaultPlan& plan) {
  config.verifyCollectives = true;
  mpi::MpiWorld world(config, ranks);
  try {
    world.run([&](mpi::MpiContext& ctx) {
      mpi::Communicator comm = ctx.commWorld();
      double residual = 1.0;
      for (int step = 0; step < steps; ++step) {
        ctx.computeSeconds(1e-6);
        // The uncorrected bit flip: the victim's residual collapses to
        // zero, so its convergence test passes a step early.
        if (ctx.rank() == plan.victimRank && step == plan.victimStep)
          residual = 0.0;
        // Data-driven divergence the static collective-match rule cannot
        // see: the corrupted rank takes the cheap converged-vote
        // reduction while every peer still runs the residual max.
        if (residual > 0.5) {
          residual = comm.allreduce(residual, mpi::ReduceOp::Max);
        } else {
          comm.allreduce(1.0, mpi::ReduceOp::Sum);
        }
      }
    });
  } catch (const ContractError& error) {
    const std::string what = error.what();
    const std::size_t at = what.find("collective mismatch");
    return at == std::string::npos ? what : what.substr(at);
  }
  return std::string();
}

}  // namespace tibsim::reliability
