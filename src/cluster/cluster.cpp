#include "tibsim/cluster/cluster.hpp"

#include <algorithm>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/power/power_model.hpp"
#include "tibsim/sim/execution_context.hpp"
#include "tibsim/sim/shard_scheduler.hpp"

namespace tibsim::cluster {

using namespace tibsim::units;

ClusterSpec ClusterSpec::tibidabo() {
  ClusterSpec spec;
  spec.name = "Tibidabo";
  spec.nodePlatform = arch::PlatformRegistry::tegra2();
  spec.nodes = 192;
  spec.frequencyHz = spec.nodePlatform.maxFrequencyHz();
  spec.protocol = net::Protocol::TcpIp;
  spec.ranksPerNode = 2;
  spec.topology.nodesPerLeafSwitch = 32;
  spec.topology.linkRateBytesPerS = gbps(1.0);
  spec.topology.bisectionBytesPerS = gbps(8.0);
  spec.topology.switchLatency = 2.0e-6;
  return spec;
}

ClusterSpec ClusterSpec::tibidaboOpenMx() {
  ClusterSpec spec = tibidabo();
  spec.name = "Tibidabo (Open-MX)";
  spec.protocol = net::Protocol::OpenMx;
  return spec;
}

ClusterSpec ClusterSpec::tibidaboScaled(int nodes) {
  TIB_REQUIRE(nodes >= 1);
  ClusterSpec spec = tibidabo();
  spec.name = "Tibidabo x" + std::to_string(nodes);
  spec.nodes = nodes;
  // Keep the prototype's oversubscription: 8 Gb/s of bisection per 192
  // nodes (a fatter spine for a bigger tree, never thinner than the real
  // machine's).
  spec.topology.bisectionBytesPerS =
      std::max(gbps(8.0), gbps(8.0 * static_cast<double>(nodes) / 192.0));
  return spec;
}

ClusterSpec ClusterSpec::arndaleCluster(int nodes) {
  ClusterSpec spec;
  spec.name = "Arndale cluster";
  spec.nodePlatform = arch::PlatformRegistry::exynos5250();
  spec.nodes = nodes;
  spec.frequencyHz = spec.nodePlatform.maxFrequencyHz();
  spec.protocol = net::Protocol::OpenMx;
  spec.ranksPerNode = 2;
  spec.topology.nodesPerLeafSwitch = 32;
  spec.topology.linkRateBytesPerS = gbps(1.0);
  spec.topology.bisectionBytesPerS = gbps(8.0);
  return spec;
}

ClusterSimulation::ClusterSimulation(ClusterSpec spec)
    : spec_(std::move(spec)) {
  TIB_REQUIRE(spec_.nodes >= 1);
}

double ClusterSimulation::frequencyHz() const {
  return spec_.frequencyHz > 0.0 ? spec_.frequencyHz
                                 : spec_.nodePlatform.maxFrequencyHz();
}

JobResult ClusterSimulation::runJob(int nodesUsed,
                                    const mpi::MpiWorld::RankBody& body) {
  return runJob(nodesUsed, body, JobOptions{});
}

JobResult ClusterSimulation::runJob(int nodesUsed,
                                    const mpi::MpiWorld::RankBody& body,
                                    const JobOptions& options) {
  TIB_REQUIRE(nodesUsed >= 1 && nodesUsed <= spec_.nodes);

  mpi::WorldConfig cfg;
  cfg.platform = spec_.nodePlatform;
  cfg.frequencyHz = frequencyHz();
  cfg.protocol = spec_.protocol;
  cfg.ranksPerNode = spec_.ranksPerNode;
  cfg.topology = spec_.topology;
  cfg.traceSeed = options.traceSeed;
  cfg.fiberStackBytes = options.fiberStackBytes;

  const int ranks = nodesUsed * spec_.ranksPerNode;
  mpi::MpiWorld world(cfg, ranks);
  if (options.enableTracing) world.enableTracing();
  JobResult result;
  result.stats = world.run(body);
  result.nodes = nodesUsed;
  result.ranks = ranks;
  result.wallClockSeconds = result.stats.wallClockSeconds;

  // Whole-cluster energy: every participating node draws its static power
  // for the full job; busy core-seconds add dynamic power; DRAM traffic and
  // NIC activity add their shares. Nodes run the "performance" governor, so
  // idle cores still sit at the job frequency (as on the real machine).
  const power::PowerModel powerModel(spec_.nodePlatform);
  const double f = frequencyHz();
  const auto& pp = spec_.nodePlatform.power;
  double energy = 0.0;
  for (int nd = 0; nd < result.stats.nodes; ++nd) {
    const double busy =
        result.stats.nodeBusySeconds[static_cast<std::size_t>(nd)];
    energy += result.wallClockSeconds * (pp.boardStaticW + pp.socStaticW);
    energy += busy * powerModel.coreDynamicWatts(f);
    energy += result.stats.nodeCommCpuSeconds[static_cast<std::size_t>(nd)] *
              pp.nicActiveW;
  }
  energy += (result.stats.totalDramBytes / kGB) * pp.memDynamicWPerGBs;

  result.energyJ = energy;
  result.averagePowerW =
      result.wallClockSeconds > 0.0 ? energy / result.wallClockSeconds : 0.0;
  result.gflops = toGflops(result.stats.achievedFlopsPerSecond());
  result.peakGflops =
      toGflops(spec_.nodePlatform.soc.peakFlops(f, spec_.nodePlatform.soc.cores)) *
      nodesUsed;
  if (result.averagePowerW > 0.0 && result.wallClockSeconds > 0.0) {
    result.mflopsPerWatt = power::mflopsPerWatt(
        result.stats.totalFlops, result.wallClockSeconds,
        result.averagePowerW);
  }
  if (options.observer) options.observer(world, result);
  return result;
}

std::size_t autoFiberStackBytes(const ClusterSpec& spec, int probeNodes,
                                const mpi::MpiWorld::RankBody& body,
                                JobResult* probeResult) {
  TIB_REQUIRE(probeNodes >= 1);
  // The probe always runs single-shard: a fiber's stack high-water is a
  // property of the rank body's call depth, not of the event schedule, so
  // the telemetry (and the probe's deterministic accounting) is identical
  // under any shard count — while a small probe world would pay the window
  // barriers without ever amortising them.
  sim::ScopedSimShards probeShards(1);
  ClusterSimulation probe(spec);
  const JobResult result =
      probe.runJob(std::min(probeNodes, spec.nodes), body);
  if (probeResult != nullptr) *probeResult = result;
  return sim::recommendedStackBytes(result.stats.engine.stackHighWaterBytes);
}

}  // namespace tibsim::cluster
