#include "tibsim/cluster/software_stack.hpp"

namespace tibsim::cluster {

std::string toString(StackLayer layer) {
  switch (layer) {
    case StackLayer::Compiler: return "compilers";
    case StackLayer::RuntimeLibrary: return "runtime libraries";
    case StackLayer::ScientificLibrary: return "scientific libraries";
    case StackLayer::PerformanceTool: return "performance analysis";
    case StackLayer::Debugger: return "debugger";
    case StackLayer::ClusterManagement: return "cluster management";
    case StackLayer::OperatingSystem: return "operating system";
  }
  return "unknown";
}

std::string toString(ArmSupport support) {
  switch (support) {
    case ArmSupport::Full: return "full";
    case ArmSupport::PortedByTeam: return "ported";
    case ArmSupport::Experimental: return "experimental";
  }
  return "unknown";
}

const std::vector<StackComponent>& softwareStack() {
  static const std::vector<StackComponent> kStack = {
      {"GCC (gcc/gfortran/g++)", StackLayer::Compiler, ArmSupport::Full,
       "full ARM support; hardfp images built by the team"},
      {"Mercurium (OmpSs)", StackLayer::Compiler, ArmSupport::Full,
       "source-to-source OmpSs compiler"},
      {"MPICH2", StackLayer::RuntimeLibrary, ArmSupport::Full, ""},
      {"OpenMPI", StackLayer::RuntimeLibrary, ArmSupport::Full, ""},
      {"Open-MX", StackLayer::RuntimeLibrary, ArmSupport::Full,
       "kernel-bypass Ethernet messaging (Section 4.1)"},
      {"Nanos++", StackLayer::RuntimeLibrary, ArmSupport::Full,
       "OmpSs runtime"},
      {"libGOMP", StackLayer::RuntimeLibrary, ArmSupport::Full, ""},
      {"CUDA 4.2", StackLayer::RuntimeLibrary, ArmSupport::Experimental,
       "armel-only vendor preview on CARMA; far from optimal"},
      {"Mali OpenCL", StackLayer::RuntimeLibrary, ArmSupport::Experimental,
       "early driver; kernel lacks Exynos thermal support (capped 1 GHz)"},
      {"ATLAS", StackLayer::ScientificLibrary, ArmSupport::PortedByTeam,
       "needed CPU-identification patches and a pinned frequency for "
       "auto-tuning"},
      {"FFTW", StackLayer::ScientificLibrary, ArmSupport::Full,
       "natively compiled with per-platform flags"},
      {"HDF5", StackLayer::ScientificLibrary, ArmSupport::Full,
       "natively compiled"},
      {"Paraver", StackLayer::PerformanceTool, ArmSupport::Full,
       "trace visualisation"},
      {"PAPI", StackLayer::PerformanceTool, ArmSupport::Full,
       "hardware counters via kernel profiling support"},
      {"Scalasca", StackLayer::PerformanceTool, ArmSupport::Full, ""},
      {"Allinea DDT", StackLayer::Debugger, ArmSupport::Full, ""},
      {"SLURM", StackLayer::ClusterManagement, ArmSupport::Full,
       "client on every node"},
      {"Debian/armhf (custom kernels)", StackLayer::OperatingSystem,
       ArmSupport::PortedByTeam,
       "hardfp images, non-preemptive scheduler, performance governor, "
       "NFS root; vendor kernels required for each SoC"},
  };
  return kStack;
}

std::vector<StackComponent> componentsAt(StackLayer layer) {
  std::vector<StackComponent> out;
  for (const auto& c : softwareStack())
    if (c.layer == layer) out.push_back(c);
  return out;
}

double fullSupportFraction() {
  const auto& stack = softwareStack();
  std::size_t full = 0;
  for (const auto& c : stack)
    if (c.support == ArmSupport::Full) ++full;
  return static_cast<double>(full) / static_cast<double>(stack.size());
}

}  // namespace tibsim::cluster
