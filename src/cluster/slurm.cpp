#include "tibsim/cluster/slurm.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "tibsim/common/assert.hpp"
#include "tibsim/power/power_model.hpp"

namespace tibsim::cluster {

SlurmScheduler::SlurmScheduler(int totalNodes, bool enableBackfill)
    : totalNodes_(totalNodes), backfill_(enableBackfill) {
  TIB_REQUIRE(totalNodes_ >= 1);
}

void SlurmScheduler::submit(BatchJob job) {
  TIB_REQUIRE(job.nodes >= 1 && job.nodes <= totalNodes_);
  TIB_REQUIRE(job.durationSeconds > 0.0);
  TIB_REQUIRE(job.submitSeconds >= 0.0);
  if (job.requestedSeconds <= 0.0) job.requestedSeconds = job.durationSeconds;
  TIB_REQUIRE_MSG(job.requestedSeconds >= job.durationSeconds,
                  "wall-time request must cover the actual duration");
  jobs_.push_back(std::move(job));
}

SlurmScheduler::Result SlurmScheduler::schedule() const {
  struct Running {
    double actualEnd;
    double requestedEnd;
    int nodes;
  };

  std::vector<BatchJob> arrivals = jobs_;
  std::stable_sort(arrivals.begin(), arrivals.end(),
                   [](const BatchJob& a, const BatchJob& b) {
                     return a.submitSeconds < b.submitSeconds;
                   });

  std::deque<BatchJob> pending;
  std::vector<Running> running;
  Result result;
  double now = 0.0;
  int freeNodes = totalNodes_;
  std::size_t nextArrival = 0;
  double busyNodeSeconds = 0.0;

  const auto startJob = [&](const BatchJob& job, bool viaBackfill) {
    running.push_back(
        Running{now + job.durationSeconds, now + job.requestedSeconds,
                job.nodes});
    freeNodes -= job.nodes;
    busyNodeSeconds += static_cast<double>(job.nodes) * job.durationSeconds;
    result.jobs.push_back(ScheduledJob{job, now, now + job.durationSeconds});
    if (viaBackfill) ++result.backfilledJobs;
  };

  // EASY backfilling: the queue head gets a reservation at the earliest
  // time enough nodes are (conservatively, by requested wall time) free;
  // later jobs may start now if they fit the free nodes and either finish
  // before the reservation or do not touch the nodes it needs.
  const auto tryStartPending = [&] {
    bool started = true;
    while (started && !pending.empty()) {
      started = false;
      if (pending.front().nodes <= freeNodes) {
        startJob(pending.front(), false);
        pending.pop_front();
        started = true;
        continue;
      }
      if (!backfill_) return;

      // Reservation for the head: walk requested end times until enough
      // nodes accumulate.
      std::vector<Running> byRequestedEnd = running;
      std::sort(byRequestedEnd.begin(), byRequestedEnd.end(),
                [](const Running& a, const Running& b) {
                  return a.requestedEnd < b.requestedEnd;
                });
      int accumulated = freeNodes;
      double shadowTime = std::numeric_limits<double>::infinity();
      int shadowFree = 0;
      for (const Running& r : byRequestedEnd) {
        accumulated += r.nodes;
        if (accumulated >= pending.front().nodes) {
          shadowTime = r.requestedEnd;
          shadowFree = accumulated - pending.front().nodes;
          break;
        }
      }

      for (std::size_t i = 1; i < pending.size(); ++i) {
        const BatchJob& candidate = pending[static_cast<std::size_t>(i)];
        if (candidate.nodes > freeNodes) continue;
        const bool finishesBeforeShadow =
            now + candidate.requestedSeconds <= shadowTime;
        const bool fitsBesideReservation = candidate.nodes <= shadowFree;
        if (finishesBeforeShadow || fitsBesideReservation) {
          const BatchJob job = candidate;
          pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(i));
          startJob(job, true);
          started = true;
          break;
        }
      }
    }
  };

  while (nextArrival < arrivals.size() || !pending.empty() ||
         !running.empty()) {
    // Pull in all arrivals at or before `now`.
    while (nextArrival < arrivals.size() &&
           arrivals[nextArrival].submitSeconds <= now) {
      pending.push_back(arrivals[nextArrival++]);
    }
    tryStartPending();

    // Advance to the next event: a completion or the next arrival.
    double nextTime = std::numeric_limits<double>::infinity();
    for (const Running& r : running) nextTime = std::min(nextTime, r.actualEnd);
    if (nextArrival < arrivals.size())
      nextTime = std::min(nextTime, arrivals[nextArrival].submitSeconds);
    if (nextTime == std::numeric_limits<double>::infinity()) break;
    TIB_ASSERT(nextTime >= now);
    now = nextTime;

    // Retire completed jobs.
    for (auto it = running.begin(); it != running.end();) {
      if (it->actualEnd <= now + 1e-12) {
        freeNodes += it->nodes;
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  }
  TIB_REQUIRE_MSG(pending.empty(), "scheduler finished with queued jobs");

  result.makespanSeconds = 0.0;
  double totalWait = 0.0;
  for (const ScheduledJob& s : result.jobs) {
    result.makespanSeconds = std::max(result.makespanSeconds, s.endSeconds);
    totalWait += s.waitSeconds();
    result.maxWaitSeconds = std::max(result.maxWaitSeconds, s.waitSeconds());
  }
  if (!result.jobs.empty()) {
    result.averageWaitSeconds = totalWait / static_cast<double>(result.jobs.size());
    result.nodeUtilization =
        busyNodeSeconds /
        (static_cast<double>(totalNodes_) * result.makespanSeconds);
  }
  return result;
}

double SlurmScheduler::estimateEnergyJ(const Result& result,
                                       const ClusterSpec& spec,
                                       int totalNodes) {
  TIB_REQUIRE(totalNodes >= 1);
  const power::PowerModel model(spec.nodePlatform);
  power::LoadState loaded;
  loaded.activeCores = spec.nodePlatform.soc.cores;
  loaded.coreUtilization = 1.0;
  const double f = spec.frequencyHz > 0.0
                       ? spec.frequencyHz
                       : spec.nodePlatform.maxFrequencyHz();
  const double loadedW = model.watts(f, loaded);
  const double idleW = model.idleWatts();

  double busyNodeSeconds = 0.0;
  for (const ScheduledJob& s : result.jobs)
    busyNodeSeconds += static_cast<double>(s.job.nodes) *
                       (s.endSeconds - s.startSeconds);
  const double totalNodeSeconds =
      static_cast<double>(totalNodes) * result.makespanSeconds;
  return busyNodeSeconds * loadedW +
         (totalNodeSeconds - busyNodeSeconds) * idleW;
}

}  // namespace tibsim::cluster
