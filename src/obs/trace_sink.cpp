#include "tibsim/obs/trace_sink.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/rng.hpp"

namespace tibsim::obs {

std::string toString(SpanKind kind) {
  switch (kind) {
    case SpanKind::Compute: return "compute";
    case SpanKind::Send: return "send";
    case SpanKind::Recv: return "recv";
    case SpanKind::Wait: return "wait";
  }
  return "unknown";
}

const char* toString(TraceMode mode) {
  switch (mode) {
    case TraceMode::Full: return "full";
    case TraceMode::Sampled: return "sampled";
    case TraceMode::Aggregate: return "aggregate";
  }
  return "unknown";
}

TraceMode parseTraceMode(const std::string& name) {
  if (name == "full") return TraceMode::Full;
  if (name == "sampled") return TraceMode::Sampled;
  if (name == "aggregate") return TraceMode::Aggregate;
  TIB_REQUIRE_MSG(false, "unknown trace mode '" + name +
                             "' (expected 'full', 'sampled' or 'aggregate')");
  return TraceMode::Full;  // unreachable
}

namespace {

TraceMode readModeFromEnv() {
  if (const char* env = std::getenv("TIBSIM_TRACE_MODE")) {
    const std::string name(env);
    if (name == "sampled") return TraceMode::Sampled;
    if (name == "aggregate") return TraceMode::Aggregate;
  }
  return TraceMode::Full;
}

TraceMode& defaultModeSlot() {
  // Process-wide configuration, written from the host thread (CLI/env/
  // ScopedTraceMode) before any world runs and only snapshotted into
  // WorldConfig — never touched from inside shard windows.
  static TraceMode slot = readModeFromEnv();  // tibsim-lint: allow(shard-shared)
  return slot;
}

}  // namespace

TraceMode defaultTraceMode() { return defaultModeSlot(); }
void setDefaultTraceMode(TraceMode mode) { defaultModeSlot() = mode; }

// ---------------------------------------------------------------------------
// DurationHistogram
// ---------------------------------------------------------------------------

double DurationHistogram::bucketLowerSeconds(int bucket) {
  return std::exp2(static_cast<double>(bucket)) * 1e-9;
}

std::uint64_t DurationHistogram::total() const {
  std::uint64_t n = 0;
  for (const std::uint64_t c : counts) n += c;
  return n;
}

// ---------------------------------------------------------------------------
// TraceSink base: exact O(ranks) totals shared by every mode
// ---------------------------------------------------------------------------

void TraceSink::clear() {
  recorded_ = 0;
  totals_.clear();
  onClear();
}

std::vector<RankSummary> TraceSink::summarize(int ranks,
                                              double wallClock) const {
  TIB_REQUIRE(ranks >= 1);
  std::vector<RankSummary> summaries(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    RankSummary& s = summaries[static_cast<std::size_t>(r)];
    s.rank = r;
    if (static_cast<std::size_t>(r) < totals_.size()) {
      const RankTotals& t = totals_[static_cast<std::size_t>(r)];
      s.computeSeconds = t.seconds[static_cast<int>(SpanKind::Compute)];
      s.sendSeconds = t.seconds[static_cast<int>(SpanKind::Send)];
      s.recvSeconds = t.seconds[static_cast<int>(SpanKind::Recv)];
      s.waitSeconds = t.seconds[static_cast<int>(SpanKind::Wait)];
    }
    // Spans may overlap (a Recv span covers the same interval a Wait span
    // ended at) or exceed the wall clock; never report negative "other".
    s.otherSeconds = std::max(
        0.0, wallClock - s.computeSeconds - s.sendSeconds - s.recvSeconds -
                 s.waitSeconds);
  }
  return summaries;
}

double TraceSink::nonComputeFraction(int ranks, double wallClock) const {
  if (wallClock <= 0.0) return 0.0;
  const auto summaries = summarize(ranks, wallClock);
  double compute = 0.0;
  for (const auto& s : summaries) compute += s.computeSeconds;
  const double total = wallClock * static_cast<double>(ranks);
  return 1.0 - compute / total;
}

std::size_t TraceSink::totalsBytes() const {
  return totals_.capacity() * sizeof(RankTotals);
}

// ---------------------------------------------------------------------------
// The three sinks
// ---------------------------------------------------------------------------

namespace {

class FullSink final : public TraceSink {
 public:
  FullSink() : TraceSink(TraceMode::Full) {}

  std::vector<TraceSpan> retainedSpans() const override { return spans_; }
  std::size_t spansRetained() const override { return spans_.size(); }

 protected:
  void onRecord(const TraceSpan& span) override { spans_.push_back(span); }
  void onClear() override { spans_.clear(); }
  std::size_t retainedBytes() const override {
    return spans_.capacity() * sizeof(TraceSpan);
  }

 private:
  std::vector<TraceSpan> spans_;
};

/// Algorithm R per rank: the first K spans fill the reservoir; span number
/// n > K replaces a uniformly-chosen slot with probability K/n. Each rank
/// draws from its own RNG stream (seed mixed with the rank), and span
/// arrival order per rank is deterministic (the event loop is), so the
/// reservoir is a pure function of (seed, run) — identical across --jobs
/// and backends.
class SampledSink final : public TraceSink {
 public:
  SampledSink(std::size_t perRank, std::uint64_t seed)
      : TraceSink(TraceMode::Sampled),
        perRank_(perRank == 0 ? 1 : perRank),
        seed_(seed) {}

  std::vector<TraceSpan> retainedSpans() const override {
    std::vector<TraceSpan> out;
    out.reserve(spansRetained());
    for (const Reservoir& r : ranks_)
      out.insert(out.end(), r.spans.begin(), r.spans.end());
    return out;
  }

  std::size_t spansRetained() const override {
    std::size_t n = 0;
    for (const Reservoir& r : ranks_) n += r.spans.size();
    return n;
  }

 protected:
  void onRecord(const TraceSpan& span) override {
    if (span.rank < 0) return;
    const auto r = static_cast<std::size_t>(span.rank);
    if (r >= ranks_.size()) ranks_.resize(r + 1);
    Reservoir& res = ranks_[r];
    if (!res.primed) {
      res.rng.reseed(seed_ ^ (0x9e3779b97f4a7c15ULL * (r + 1)));
      res.primed = true;
    }
    ++res.seen;
    if (res.spans.size() < perRank_) {
      res.spans.push_back(span);
      return;
    }
    const std::uint64_t slot = res.rng.nextBelow(res.seen);
    if (slot < perRank_) res.spans[static_cast<std::size_t>(slot)] = span;
  }

  void onClear() override { ranks_.clear(); }

  std::size_t retainedBytes() const override {
    std::size_t bytes = ranks_.capacity() * sizeof(Reservoir);
    for (const Reservoir& r : ranks_)
      bytes += r.spans.capacity() * sizeof(TraceSpan);
    return bytes;
  }

 private:
  struct Reservoir {
    std::vector<TraceSpan> spans;
    Rng rng{0};
    std::uint64_t seen = 0;
    bool primed = false;
  };

  std::size_t perRank_;
  std::uint64_t seed_;
  std::vector<Reservoir> ranks_;
};

class AggregateSink final : public TraceSink {
 public:
  AggregateSink() : TraceSink(TraceMode::Aggregate) { aggGrid_ = &grid_; }

  std::vector<TraceSpan> retainedSpans() const override { return {}; }
  std::size_t spansRetained() const override { return 0; }

  const DurationHistogram* histogram(int rank, SpanKind kind) const override {
    if (rank < 0 || static_cast<std::size_t>(rank) >= grid_.size())
      return nullptr;
    return &grid_[static_cast<std::size_t>(rank)]
                 [static_cast<std::size_t>(kind)];
  }

 protected:
  // record() updates the installed grid inline; nothing reaches onRecord.
  void onRecord(const TraceSpan&) override {}

  void onClear() override { grid_.clear(); }

  std::size_t retainedBytes() const override {
    return grid_.capacity() * sizeof(grid_[0]);
  }

 private:
  HistogramGrid grid_;
};

}  // namespace

std::unique_ptr<TraceSink> TraceSink::create(const SinkConfig& config) {
  switch (config.mode) {
    case TraceMode::Full: return std::make_unique<FullSink>();
    case TraceMode::Sampled:
      return std::make_unique<SampledSink>(config.reservoirPerRank,
                                           config.seed);
    case TraceMode::Aggregate: return std::make_unique<AggregateSink>();
  }
  return std::make_unique<FullSink>();  // unreachable
}

}  // namespace tibsim::obs
