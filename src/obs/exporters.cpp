#include "tibsim/obs/exporters.hpp"

#include <cmath>
#include <string>

#include "tibsim/common/json.hpp"

namespace tibsim::obs {

namespace {

/// Simulated seconds -> integer nanoseconds for Paraver records.
std::uint64_t toNanos(double seconds) {
  return seconds <= 0.0
             ? 0
             : static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

int prvState(SpanKind kind) {
  switch (kind) {
    case SpanKind::Compute: return 1;  // Running
    case SpanKind::Wait: return 3;     // Waiting a message
    case SpanKind::Send: return 4;     // Blocking send
    case SpanKind::Recv: return 5;     // Immediate receive
  }
  return 0;
}

json::Value chromeEvent(const TraceSpan& span) {
  json::Value event = json::Value::object();
  event["name"] = json::Value(toString(span.kind));
  event["ph"] = json::Value("X");
  event["pid"] = json::Value(0);
  event["tid"] = json::Value(span.rank);
  event["ts"] = json::Value(span.begin * 1e6);
  event["dur"] = json::Value(span.duration() * 1e6);
  if (span.peer >= 0) {
    json::Value& args = event["args"];
    args["peer"] = json::Value(span.peer);
    args["bytes"] = json::Value(span.bytes);
  }
  return event;
}

}  // namespace

std::string exportCsv(std::span<const TraceSpan> spans) {
  std::string out = "rank,kind,begin,end,peer,bytes\n";
  for (const TraceSpan& span : spans) {
    out += std::to_string(span.rank);
    out += ',';
    out += toString(span.kind);
    out += ',';
    out += json::formatNumber(span.begin);
    out += ',';
    out += json::formatNumber(span.end);
    out += ',';
    out += std::to_string(span.peer);
    out += ',';
    out += std::to_string(span.bytes);
    out += '\n';
  }
  return out;
}

std::string exportChromeJson(std::span<const TraceSpan> spans) {
  return exportChromeJson(spans, std::string());
}

std::string exportChromeJson(std::span<const TraceSpan> spans,
                             const std::string& processName) {
  // Built on the json::Value document model so every string — span names
  // today, caller-supplied process names with quotes or backslashes
  // tomorrow — goes through one escaping path, and numbers keep their
  // shortest-round-trip form instead of ostream's 6-digit rounding.
  json::Value doc = json::Value::object();
  json::Value& events = doc["traceEvents"];
  events = json::Value::array();
  if (!processName.empty()) {
    json::Value meta = json::Value::object();
    meta["name"] = json::Value("process_name");
    meta["ph"] = json::Value("M");
    meta["pid"] = json::Value(0);
    meta["args"]["name"] = json::Value(processName);
    events.push(std::move(meta));
  }
  for (const TraceSpan& span : spans) events.push(chromeEvent(span));
  doc["displayTimeUnit"] = json::Value("ms");
  return doc.dump();
}

std::string exportPrv(std::span<const TraceSpan> spans, int ranks,
                      double wallClockSeconds) {
  // Header: #Paraver (date):duration:nodes(cpus):apps:app_list
  // Dates are banned (byte-determinism), so the date field is left blank the
  // way wxparaver tolerates.
  std::string out = "#Paraver ():";
  out += std::to_string(toNanos(wallClockSeconds));
  out += "_ns:1(";
  out += std::to_string(ranks);
  out += "):1:";
  out += std::to_string(ranks);
  out += '(';
  for (int r = 0; r < ranks; ++r) {
    if (r > 0) out += ',';
    out += "1:1";
  }
  out += ")\n";
  // State records: 1:cpu:appl:task:thread:begin:end:state
  for (const TraceSpan& span : spans) {
    out += "1:";
    out += std::to_string(span.rank + 1);
    out += ":1:";
    out += std::to_string(span.rank + 1);
    out += ":1:";
    out += std::to_string(toNanos(span.begin));
    out += ':';
    out += std::to_string(toNanos(span.end));
    out += ':';
    out += std::to_string(prvState(span.kind));
    out += '\n';
  }
  return out;
}

std::string exportBreakdownCsv(const std::vector<RankSummary>& summaries) {
  std::string out = "rank,compute_s,send_s,recv_s,wait_s,other_s\n";
  for (const RankSummary& s : summaries) {
    out += std::to_string(s.rank);
    out += ',';
    out += json::formatNumber(s.computeSeconds);
    out += ',';
    out += json::formatNumber(s.sendSeconds);
    out += ',';
    out += json::formatNumber(s.recvSeconds);
    out += ',';
    out += json::formatNumber(s.waitSeconds);
    out += ',';
    out += json::formatNumber(s.otherSeconds);
    out += '\n';
  }
  return out;
}

}  // namespace tibsim::obs
