#include "tibsim/obs/exporters.hpp"

#include <cmath>
#include <sstream>

namespace tibsim::obs {

namespace {

/// Simulated seconds -> integer nanoseconds for Paraver records.
std::uint64_t toNanos(double seconds) {
  return seconds <= 0.0
             ? 0
             : static_cast<std::uint64_t>(std::llround(seconds * 1e9));
}

int prvState(SpanKind kind) {
  switch (kind) {
    case SpanKind::Compute: return 1;  // Running
    case SpanKind::Wait: return 3;     // Waiting a message
    case SpanKind::Send: return 4;     // Blocking send
    case SpanKind::Recv: return 5;     // Immediate receive
  }
  return 0;
}

}  // namespace

std::string exportCsv(std::span<const TraceSpan> spans) {
  std::ostringstream out;
  out << "rank,kind,begin,end,peer,bytes\n";
  for (const TraceSpan& span : spans) {
    out << span.rank << ',' << toString(span.kind) << ',' << span.begin
        << ',' << span.end << ',' << span.peer << ',' << span.bytes << '\n';
  }
  return out.str();
}

std::string exportChromeJson(std::span<const TraceSpan> spans) {
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceSpan& span : spans) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << toString(span.kind)
        << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << span.rank
        << ",\"ts\":" << span.begin * 1e6 << ",\"dur\":" << span.duration() * 1e6;
    if (span.peer >= 0) {
      out << ",\"args\":{\"peer\":" << span.peer << ",\"bytes\":" << span.bytes
          << '}';
    }
    out << '}';
  }
  out << "],\"displayTimeUnit\":\"ms\"}";
  return out.str();
}

std::string exportPrv(std::span<const TraceSpan> spans, int ranks,
                      double wallClockSeconds) {
  // Header: #Paraver (date):duration:nodes(cpus):apps:app_list
  // Dates are banned (byte-determinism), so the date field is left blank the
  // way wxparaver tolerates.
  std::ostringstream out;
  const std::uint64_t duration = toNanos(wallClockSeconds);
  out << "#Paraver ():" << duration << "_ns:1(" << ranks << "):1:" << ranks
      << '(';
  for (int r = 0; r < ranks; ++r) {
    if (r > 0) out << ',';
    out << "1:1";
  }
  out << ")\n";
  // State records: 1:cpu:appl:task:thread:begin:end:state
  for (const TraceSpan& span : spans) {
    out << "1:" << span.rank + 1 << ":1:" << span.rank + 1 << ":1:"
        << toNanos(span.begin) << ':' << toNanos(span.end) << ':'
        << prvState(span.kind) << '\n';
  }
  return out.str();
}

std::string exportBreakdownCsv(const std::vector<RankSummary>& summaries) {
  std::ostringstream out;
  out << "rank,compute_s,send_s,recv_s,wait_s,other_s\n";
  for (const RankSummary& s : summaries) {
    out << s.rank << ',' << s.computeSeconds << ',' << s.sendSeconds << ','
        << s.recvSeconds << ',' << s.waitSeconds << ',' << s.otherSeconds
        << '\n';
  }
  return out.str();
}

}  // namespace tibsim::obs
