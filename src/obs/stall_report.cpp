#include "tibsim/obs/stall_report.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "tibsim/common/json.hpp"

namespace tibsim::obs {

namespace {

bool readStallReportFromEnv() {
  const char* env = std::getenv("TIBSIM_STALL_REPORT");
  if (env == nullptr) return false;
  const std::string value(env);
  return value == "1" || value == "on" || value == "true";
}

bool& stallReportSlot() {
  // Process-wide default, mutated only from the host thread between runs
  // (socbench flag parsing, ScopedStallReport in tests) — never from
  // inside a shard window. tibsim-lint: allow(shard-shared)
  static bool slot = readStallReportFromEnv();
  return slot;
}

/// Shortest-round-trip decimal, shared with the JSON emitters so the
/// report is byte-stable wherever it is rendered.
std::string seconds(double value) { return json::formatNumber(value); }

}  // namespace

bool defaultStallReport() { return stallReportSlot(); }
void setDefaultStallReport(bool on) { stallReportSlot() = on; }

std::string formatStallReport(const std::vector<StallEntry>& entries,
                              double now) {
  std::vector<StallEntry> sorted = entries;
  std::sort(sorted.begin(), sorted.end(),
            [](const StallEntry& a, const StallEntry& b) {
              return a.rank < b.rank;
            });
  std::ostringstream out;
  out << "stall report: " << sorted.size() << " rank(s) blocked at t="
      << seconds(now) << "s\n";
  for (const StallEntry& e : sorted) {
    out << "  rank " << e.rank << " node " << e.node << ": " << e.op
        << "(peer=";
    if (e.peer < 0)
      out << '*';
    else
      out << e.peer;
    out << ", tag=";
    if (e.tag < 0)
      out << '*';
    else
      out << e.tag;
    out << ") comm=" << e.comm << " blocked " << seconds(now - e.blockedSince)
        << "s since t=" << seconds(e.blockedSince) << "s\n";
    if (e.lastSpans.empty()) continue;
    out << "    recent:";
    for (const TraceSpan& span : e.lastSpans) {
      out << ' ' << toString(span.kind) << '[' << seconds(span.begin)
          << "s.." << seconds(span.end) << 's';
      if (span.peer >= 0) out << " peer=" << span.peer;
      out << ']';
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace tibsim::obs
