#include "tibsim/obs/stack_telemetry.hpp"

#include <cstring>

namespace tibsim::obs {

void patternFillStack(void* base, std::size_t bytes) {
  std::memset(base, kStackFillByte, bytes);
}

std::size_t scanStackHighWater(const void* base, std::size_t bytes) {
  // The stack grows down from base + bytes, so the deepest touched byte is
  // the lowest non-pattern byte. Scan up from the low end; the first
  // mismatch marks the high-water line.
  const auto* p = static_cast<const unsigned char*>(base);
  std::size_t untouched = 0;
  while (untouched < bytes && p[untouched] == kStackFillByte) ++untouched;
  return bytes - untouched;
}

}  // namespace tibsim::obs
