#include "tibsim/sim/simulation.hpp"

#include "tibsim/common/assert.hpp"

namespace tibsim::sim {

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Simulation& sim, std::uint64_t id, std::string name,
                 Body body)
    : sim_(sim), id_(id), name_(std::move(name)), body_(std::move(body)) {}

Process::~Process() { kill(); }

void Process::start() {
  thread_ = std::thread([this] {
    {
      // Wait for the scheduler to hand over the baton the first time.
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return batonWithProcess_; });
    }
    if (!killRequested_) {
      try {
        body_(*this);
      } catch (const ProcessKilled&) {
        // Simulation torn down while this process was blocked: unwind.
      } catch (...) {
        // Keep the simulation alive; the owner inspects exception() after
        // the event loop drains and rethrows on its own thread.
        exception_ = std::current_exception();
      }
    }
    std::lock_guard lock(mutex_);
    finished_ = true;
    batonWithProcess_ = false;
    cv_.notify_all();
  });
}

void Process::switchIn() {
  {
    std::lock_guard lock(mutex_);
    TIB_ASSERT(!finished_);
    batonWithProcess_ = true;
  }
  cv_.notify_all();
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [this] { return !batonWithProcess_; });
}

void Process::yieldToHost() {
  std::unique_lock lock(mutex_);
  batonWithProcess_ = false;
  cv_.notify_all();
  cv_.wait(lock, [this] { return batonWithProcess_; });
  if (killRequested_) throw ProcessKilled{};
}

std::uint64_t Process::beginSuspend() {
  suspended_ = true;
  return ++suspendSeq_;
}

void Process::delay(double dt) {
  TIB_REQUIRE_MSG(dt >= 0.0, "cannot delay by negative time");
  beginSuspend();
  sim_.resumeAt(sim_.now() + dt, *this);
  yieldToHost();
}

void Process::suspend() {
  beginSuspend();
  yieldToHost();
}

double Process::now() const { return sim_.now(); }

void Process::kill() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard lock(mutex_);
    killRequested_ = true;
    batonWithProcess_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

Simulation::~Simulation() {
  // Kill blocked processes before members are destroyed; Process::~Process
  // would do it too, but doing it explicitly keeps the order obvious.
  for (auto& p : processes_) p->kill();
}

void Simulation::scheduleAt(double t, std::function<void()> fn) {
  TIB_REQUIRE_MSG(t >= now_, "cannot schedule an event in the past");
  queue_.push(Event{t, nextSeq_++, std::move(fn)});
}

void Simulation::scheduleIn(double dt, std::function<void()> fn) {
  TIB_REQUIRE(dt >= 0.0);
  scheduleAt(now_ + dt, std::move(fn));
}

Process& Simulation::spawn(std::string name, Process::Body body) {
  auto process = std::unique_ptr<Process>(
      new Process(*this, nextProcessId_++, std::move(name), std::move(body)));
  Process& ref = *process;
  ref.start();
  processes_.push_back(std::move(process));
  scheduleAt(now_, [&ref] {
    if (!ref.finished()) ref.switchIn();
  });
  return ref;
}

void Simulation::resumeAt(double t, Process& p) {
  TIB_REQUIRE_MSG(t >= now_, "cannot resume a process in the past");
  // Tag the wake-up with the suspension it belongs to: a resume scheduled
  // against suspension N must not fire into suspension N+1 (e.g. a stale
  // mailbox wake-up arriving while the process already sleeps in delay()).
  const std::uint64_t id = p.suspendSeq_;
  scheduleAt(t, [&p, id] {
    if (!p.finished() && p.suspended_ && p.suspendSeq_ == id) {
      p.suspended_ = false;
      p.switchIn();
    }
  });
}

void Simulation::resume(Process& p) { resumeAt(now_, p); }

double Simulation::run() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(ev);
  }
  return now_;
}

double Simulation::runUntil(double deadline) {
  while (!queue_.empty() && queue_.top().t <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    dispatch(ev);
  }
  if (now_ < deadline && queue_.empty()) now_ = deadline;
  return now_;
}

void Simulation::dispatch(Event& ev) {
  TIB_ASSERT(ev.t >= now_);
  now_ = ev.t;
  ++processedEvents_;
  ev.fn();
}

std::size_t Simulation::liveProcessCount() const {
  std::size_t live = 0;
  for (const auto& p : processes_)
    if (!p->finished()) ++live;
  return live;
}

}  // namespace tibsim::sim
