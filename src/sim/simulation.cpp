#include "tibsim/sim/simulation.hpp"

#include <chrono>

#include "tibsim/common/assert.hpp"

namespace tibsim::sim {

namespace {
// Host-side engine profiling only (EngineStats::hostSeconds, the run-summary
// host s/sim s column) — never serialised into campaign artefacts, so the
// wall-clock reads are safe to allow here.
using HostTimePoint = std::chrono::steady_clock::time_point;  // tibsim-lint: allow(wall-clock)

double secondsSince(HostTimePoint start) {
  const auto now = std::chrono::steady_clock::now();  // tibsim-lint: allow(wall-clock)
  return std::chrono::duration<double>(now - start).count();
}
}  // namespace

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Simulation& sim, std::uint64_t id, std::string name,
                 Body body)
    : sim_(sim), id_(id), name_(std::move(name)), body_(std::move(body)) {}

Process::~Process() { kill(); }

void Process::start(ExecBackend backend, std::size_t stackBytes,
                    bool pooledStack) {
  context_ = ExecutionContext::create(backend, stackBytes, pooledStack);
  context_->start([this] {
    if (!killRequested_) {
      try {
        body_(*this);
      } catch (const ProcessKilled&) {
        // Simulation torn down while this process was blocked: unwind.
      } catch (...) {
        // Keep the simulation alive; the owner inspects exception() after
        // the event loop drains and rethrows on its own thread.
        exception_ = std::current_exception();
      }
    }
    finished_ = true;
  });
}

void Process::switchIn() {
  TIB_ASSERT(context_ != nullptr && !finished_);
  sim_.noteContextSwitch();
  context_->switchIn();
  if (finished_) sim_.noteProcessFinished(*this);
}

void Process::yieldToHost() {
  context_->yieldToHost();
  if (killRequested_) throw ProcessKilled{};
}

std::uint64_t Process::beginSuspend() {
  suspended_ = true;
  return ++suspendSeq_;
}

void Process::delay(double dt) {
  TIB_REQUIRE_MSG(dt >= 0.0, "cannot delay by negative time");
  beginSuspend();
  sim_.resumeAt(sim_.now() + dt, *this);
  yieldToHost();
}

void Process::suspend() {
  beginSuspend();
  yieldToHost();
}

double Process::now() const { return sim_.now(); }

void Process::kill() {
  if (context_ == nullptr || finished_) return;
  killRequested_ = true;
  // Run the context until the body has unwound (yieldToHost rethrows the
  // kill as ProcessKilled). A body that swallows ProcessKilled and keeps
  // blocking would loop here — the same hang the thread backend always had.
  while (!finished_) switchIn();
}

// ---------------------------------------------------------------------------
// Simulation::EventQueue
// ---------------------------------------------------------------------------

void Simulation::EventQueue::push(Event ev) {
  if ((ev.ord1 & kProvisionalOrd) != 0) ++provisional_;
  heap_.push_back(std::move(ev));
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Simulation::Event Simulation::EventQueue::pop() {
  TIB_ASSERT(!heap_.empty());
  Event out = std::move(heap_.front());
  if ((out.ord1 & kProvisionalOrd) != 0) --provisional_;
  Event last = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift the former tail down from the root without intermediate swaps.
    std::size_t i = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
      if (!before(heap_[child], last)) break;
      heap_[i] = std::move(heap_[child]);
      i = child;
    }
    heap_[i] = std::move(last);
  }
  return out;
}

void Simulation::EventQueue::finalizeKeys(
    const std::vector<std::uint64_t>& gByD) {
  // Most windows leave no provisional survivors (compute phases push and
  // consume within the window); the counter makes those barriers O(1)
  // instead of a full heap walk per shard per window.
  if (provisional_ == 0) return;
  for (Event& ev : heap_) {
    if ((ev.ord1 & kProvisionalOrd) == 0) continue;
    const std::uint64_t d = ev.ord1 & ~kProvisionalOrd;
    TIB_ASSERT(d < gByD.size());
    ev.ord1 = gByD[d];
  }
  provisional_ = 0;
  // Final ordinals order provisional entries exactly as their (D, idx)
  // provisional keys did within this shard, but the sift keeps the heap
  // valid against channel pushes that interleaved between them.
  for (std::size_t i = 1; i < heap_.size(); ++i) {
    std::size_t j = i;
    while (j > 0) {
      const std::size_t parent = (j - 1) / 2;
      if (!before(heap_[j], heap_[parent])) break;
      std::swap(heap_[j], heap_[parent]);
      j = parent;
    }
  }
}

// ---------------------------------------------------------------------------
// Simulation
// ---------------------------------------------------------------------------

Simulation::~Simulation() {
  // Kill blocked processes before members are destroyed; Process::~Process
  // would do it too, but doing it explicitly keeps the order obvious.
  for (auto& p : processes_) p->kill();
}

std::uint32_t Simulation::stashClosure(UniqueFunction fn) {
  if (freeClosureSlots_.empty()) {
    closures_.push_back(std::move(fn));
    return static_cast<std::uint32_t>(closures_.size() - 1);
  }
  const std::uint32_t slot = freeClosureSlots_.back();
  freeClosureSlots_.pop_back();
  closures_[slot] = std::move(fn);
  return slot;
}

void Simulation::pushQueue(double t, Process* proc, std::uint64_t aux) {
  if (!shardMode_) {
    // Legacy single-queue order: (t, global sequence) — bit-identical to
    // the historical tie-break.
    queue_.push(Event{t, nextSeq_++, 0, proc, aux});
  } else if (inDispatch_) {
    // Key by pushing dispatch (provisionally, by its local index — the
    // barrier resolves it to the global ordinal) and push position within
    // the dispatch: the legacy push-sequence order, reconstructed.
    const std::uint64_t d = dispatchLog_.size() - 1;
    queue_.push(Event{t, kProvisionalOrd | d,
                      dispatchLog_.back().pushes++, proc, aux});
  } else if (inSpawnPush_) {
    // Spawn start events sort by process id (= global rank): final key,
    // ordinal 0 — before every dispatched event's pushes, as in the legacy
    // engine where all spawns precede the first dispatch.
    queue_.push(Event{t, 0, spawnOrdHint_, proc, aux});
  } else {
    // Other host-context pushes (generic Simulation API use; simMPI never
    // schedules from the host mid-run). Keyed after all spawn ids.
    queue_.push(Event{t, 0, (1ull << 40) + hostSeq_++, proc, aux});
  }
  stats_.queueHighWater = std::max(stats_.queueHighWater, queue_.size());
}

void Simulation::enableShardMode(std::uint64_t firstProcessId) {
  TIB_REQUIRE_MSG(processes_.empty() && queue_.empty(),
                  "enableShardMode must precede the first spawn/schedule");
  shardMode_ = true;
  idBase_ = firstProcessId;
  nextProcessId_ = firstProcessId;
}

double Simulation::nextEventTime() const {
  TIB_ASSERT(!queue_.empty());
  return queue_.top().t;
}

std::uint64_t Simulation::runWindow(double windowEnd) {
  std::uint64_t dispatched = 0;
  while (!queue_.empty() && queue_.top().t < windowEnd) {
    Event ev = queue_.pop();
    dispatch(ev);
    ++dispatched;
  }
  return dispatched;
}

void Simulation::scheduleChannel(double t, std::uint64_t g,
                                 std::uint64_t pushIdx, UniqueFunction fn) {
  TIB_REQUIRE_MSG(t >= now_,
                  "cross-shard event would land in this shard's past "
                  "(lookahead bound violated)");
  TIB_ASSERT((g & kProvisionalOrd) == 0);
  queue_.push(Event{t, g, pushIdx, nullptr, stashClosure(std::move(fn))});
  stats_.queueHighWater = std::max(stats_.queueHighWater, queue_.size());
}

void Simulation::finalizeWindowKeys(const std::vector<std::uint64_t>& gByD) {
  queue_.finalizeKeys(gByD);
  dispatchLog_.clear();
}

void Simulation::scheduleAt(double t, UniqueFunction fn) {
  TIB_REQUIRE_MSG(t >= now_, "cannot schedule an event in the past");
  pushQueue(t, nullptr, stashClosure(std::move(fn)));
}

void Simulation::scheduleIn(double dt, UniqueFunction fn) {
  TIB_REQUIRE(dt >= 0.0);
  scheduleAt(now_ + dt, std::move(fn));
}

Process& Simulation::spawn(std::string name, Process::Body body) {
  auto process = std::unique_ptr<Process>(
      new Process(*this, nextProcessId_++, std::move(name), std::move(body)));
  Process& ref = *process;
  ref.start(backend_, stackBytes_, pooledStacks_);
  processes_.push_back(std::move(process));
  ++stats_.processesSpawned;
  ++liveNow_;
  stats_.peakLiveProcesses = std::max(stats_.peakLiveProcesses, liveNow_);
  // The start event is keyed by the new process id in shard mode so start
  // events across shards merge in spawn (rank) order.
  inSpawnPush_ = true;
  spawnOrdHint_ = ref.id_;
  scheduleAt(now_, [&ref] {
    if (!ref.finished()) ref.switchIn();
  });
  inSpawnPush_ = false;
  return ref;
}

void Simulation::resumeAt(double t, Process& p) {
  TIB_REQUIRE_MSG(t >= now_, "cannot resume a process in the past");
  // Tag the wake-up with the suspension it belongs to: a resume scheduled
  // against suspension N must not fire into suspension N+1 (e.g. a stale
  // mailbox wake-up arriving while the process already sleeps in delay()).
  // Encoded directly in the event — no closure, no slab slot.
  pushQueue(t, &p, p.suspendSeq_);
}

void Simulation::resume(Process& p) { resumeAt(now_, p); }

double Simulation::run() {
  const auto start = std::chrono::steady_clock::now();  // tibsim-lint: allow(wall-clock)
  while (!queue_.empty()) {
    Event ev = queue_.pop();
    dispatch(ev);
  }
  stats_.hostSeconds += secondsSince(start);
  return now_;
}

double Simulation::runUntil(double deadline) {
  const auto start = std::chrono::steady_clock::now();  // tibsim-lint: allow(wall-clock)
  while (!queue_.empty() && queue_.top().t <= deadline) {
    Event ev = queue_.pop();
    dispatch(ev);
  }
  if (now_ < deadline && queue_.empty()) now_ = deadline;
  stats_.hostSeconds += secondsSince(start);
  return now_;
}

void Simulation::dispatch(const Event& ev) {
  TIB_ASSERT(ev.t >= now_);
  now_ = ev.t;
  ++stats_.eventsDispatched;
  if (shardMode_) {
    dispatchLog_.push_back(DispatchRecord{ev.t, ev.ord1, ev.ord2, 0});
    inDispatch_ = true;
  }
  if (ev.proc != nullptr) {
    Process& p = *ev.proc;
    if (!p.finished_ && p.suspended_ && p.suspendSeq_ == ev.aux) {
      p.suspended_ = false;
      p.switchIn();
    }
    inDispatch_ = false;
    return;
  }
  // Move the closure out and free its slot before invoking: the callback
  // may schedule again and immediately reuse the slot.
  UniqueFunction fn =
      std::move(closures_[static_cast<std::size_t>(ev.aux)]);
  freeClosureSlots_.push_back(static_cast<std::uint32_t>(ev.aux));
  fn();
  inDispatch_ = false;
}

void Simulation::noteProcessFinished(Process& p) {
  TIB_ASSERT(liveNow_ > 0);
  --liveNow_;
  // Harvest stack telemetry while the context is still alive: the fiber
  // stack is quiescent once the body has unwound, so the scan is exact.
  stats_.fiberStackBytes =
      std::max(stats_.fiberStackBytes, p.context_->stackBytes());
  stats_.stackHighWaterBytes =
      std::max(stats_.stackHighWaterBytes, p.context_->stackHighWaterBytes());
}

std::size_t Simulation::liveProcessCount() const {
  std::size_t live = 0;
  for (const auto& p : processes_)
    if (!p->finished()) ++live;
  return live;
}

EngineStats Simulation::engineStats() const {
  EngineStats out = stats_;
  out.simSeconds = now_;
  return out;
}

}  // namespace tibsim::sim
