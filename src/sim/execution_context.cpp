#include "tibsim/sim/execution_context.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "tibsim/common/assert.hpp"
#include "tibsim/obs/stack_telemetry.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <setjmp.h>
#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>
#define TIBSIM_HAVE_UCONTEXT 1
#else
#define TIBSIM_HAVE_UCONTEXT 0
#endif

// ThreadSanitizer cannot follow swapcontext (it loses the shadow stack and
// reports false races), so fiber requests are serviced by the thread backend
// in TSan builds. AddressSanitizer *can* follow fibers, but only if every
// switch is announced through the fiber annotations below.
#if defined(__SANITIZE_THREAD__)
#define TIBSIM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TIBSIM_TSAN 1
#endif
#endif
#ifndef TIBSIM_TSAN
#define TIBSIM_TSAN 0
#endif

#if defined(__SANITIZE_ADDRESS__)
#define TIBSIM_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define TIBSIM_ASAN 1
#endif
#endif
#ifndef TIBSIM_ASAN
#define TIBSIM_ASAN 0
#endif

#if TIBSIM_ASAN
#include <sanitizer/common_interface_defs.h>
#endif

namespace tibsim::sim {

namespace {

#if TIBSIM_ASAN
void asanStartSwitch(void** fakeStackSave, const void* bottom,
                     std::size_t size) {
  __sanitizer_start_switch_fiber(fakeStackSave, bottom, size);
}
void asanFinishSwitch(void* fakeStackSave, const void** bottomOld,
                      std::size_t* sizeOld) {
  __sanitizer_finish_switch_fiber(fakeStackSave, bottomOld, sizeOld);
}
#else
// Unused in TSan builds, where FiberContext is compiled out entirely.
[[maybe_unused]] void asanStartSwitch(void**, const void*, std::size_t) {}
[[maybe_unused]] void asanFinishSwitch(void*, const void**, std::size_t*) {}
#endif

// ---------------------------------------------------------------------------
// ThreadContext — the original baton handoff, verbatim semantics: one OS
// thread per context, parked on a condition variable whenever the host side
// holds the baton. Two kernel wake-ups per simulated context switch.
// ---------------------------------------------------------------------------

class ThreadContext final : public ExecutionContext {
 public:
  ThreadContext() = default;

  ~ThreadContext() override {
    // Process guarantees the entry has returned (normally or by ProcessKilled
    // unwinding) before destroying the context, so join() only reaps.
    if (thread_.joinable()) thread_.join();
  }

  void start(Entry entry) override {
    TIB_ASSERT(!thread_.joinable());
    entry_ = std::move(entry);
    thread_ = std::thread([this] {
      {
        // Wait for the host to hand over the baton the first time.
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return batonWithContext_; });
      }
      entry_();
      std::lock_guard lock(mutex_);
      done_ = true;
      batonWithContext_ = false;
      cv_.notify_all();
    });
  }

  void switchIn() override {
    {
      std::lock_guard lock(mutex_);
      TIB_ASSERT(!done_);
      batonWithContext_ = true;
    }
    cv_.notify_all();
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return !batonWithContext_; });
  }

  void yieldToHost() override {
    std::unique_lock lock(mutex_);
    batonWithContext_ = false;
    cv_.notify_all();
    cv_.wait(lock, [this] { return batonWithContext_; });
  }

  ExecBackend backend() const override { return ExecBackend::Thread; }

 private:
  Entry entry_;
  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool batonWithContext_ = false;
  bool done_ = false;
};

// ---------------------------------------------------------------------------
// FiberContext — stackful user-space fiber on an owned mmap'd stack; no OS
// thread is created. The mapping carries one PROT_NONE guard page below the
// stack (stacks grow down), so an overflow faults immediately instead of
// silently corrupting whatever the allocator placed next door — essential
// once sweeps auto-size stacks near the measured high-water mark.
// ucontext (getcontext/makecontext) builds the initial stack frame and
// performs the first entry; steady-state switches use _setjmp/_longjmp,
// which save and restore only the register file — glibc's swapcontext
// issues a rt_sigprocmask syscall on every call, and that syscall is the
// bulk of its cost (the libtask/libaco technique).
//
// Under AddressSanitizer every switch goes through swapcontext instead and
// is announced with the ASan fiber annotations: ASan intercepts longjmp and
// rejects a jump onto a different stack, while the annotated swapcontext
// path is the documented way to switch stacks under ASan. The perf budget
// does not apply to sanitizer builds.
// ---------------------------------------------------------------------------

#if TIBSIM_HAVE_UCONTEXT && !TIBSIM_TSAN

// ---------------------------------------------------------------------------
// FiberStackArena — slab-allocated fiber stacks for huge worlds. Each kernel
// VMA is a protection boundary, so the per-fiber layout (PROT_NONE guard +
// RW stack) costs 2 VMAs per fiber and a 65,536-rank world blows through
// vm.max_map_count (default 65530) before the last rank spawns. The arena
// instead mmaps multi-megabyte slabs of [sentinel page][stack] units behind
// a single PROT_NONE guard page: uniform RW protection keeps the whole unit
// run in one VMA, so a slab costs 2 VMAs regardless of how many stacks it
// carries. The sentinel page below each stack stays pattern-filled; release
// verifies it, converting a silent overflow into a deterministic contract
// failure (detection moves from fault-at-write to checked-at-release — the
// bottom stack of each slab still faults on the slab guard). Released
// stacks are recycled across worlds and their pages returned to the kernel
// with MADV_DONTNEED, so campaign RSS tracks the largest live world, not
// the sum of worlds run.
// ---------------------------------------------------------------------------

class FiberStackArena {
 public:
  struct Lease {
    char* stack = nullptr;     ///< lowest usable address (stacks grow down)
    std::size_t bytes = 0;     ///< usable stack bytes (page-rounded)
    char* sentinel = nullptr;  ///< pattern page directly below the stack
  };

  static FiberStackArena& instance() {
    // tibsim-lint: allow(shard-shared) — mutex-guarded process-wide arena
    static FiberStackArena arena;
    return arena;
  }

  Lease acquire(std::size_t stackBytes) {
    const std::size_t page = pageBytes();
    std::lock_guard lock(mutex_);
    auto& free = free_[stackBytes];
    if (free.empty()) addSlab(stackBytes, page, free);
    Lease lease = free.back();
    free.pop_back();
    return lease;
  }

  void release(const Lease& lease) {
    const std::size_t page = pageBytes();
    TIB_REQUIRE_MSG(
        obs::scanStackHighWater(lease.sentinel, page) == 0,
        "fiber stack overflow: the sentinel page below a pooled stack was "
        "overwritten (raise the stack size or TIBSIM_FIBER_STACK_KB)");
    // Hand the pages back to the kernel; the next acquire pattern-fills
    // anyway, so dropping the contents costs nothing but keeps campaign
    // RSS bounded by the largest concurrently-live world.
    madvise(lease.stack, lease.bytes, MADV_DONTNEED);
    std::lock_guard lock(mutex_);
    free_[lease.bytes].push_back(lease);
  }

 private:
  void addSlab(std::size_t stackBytes, std::size_t page,
               std::vector<Lease>& free) {
    const std::size_t unit = stackBytes + page;  // sentinel + stack
    const std::size_t count =
        std::clamp<std::size_t>(kSlabTargetBytes / unit, 16, 512);
    const std::size_t mapBytes = page + count * unit;  // + slab guard
    void* map = mmap(nullptr, mapBytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    TIB_REQUIRE_MSG(map != MAP_FAILED, "fiber stack slab mmap failed");
    TIB_REQUIRE_MSG(mprotect(map, page, PROT_NONE) == 0,
                    "fiber stack slab guard mprotect failed");
    char* base = static_cast<char*>(map) + page;
    for (std::size_t i = 0; i < count; ++i) {
      Lease lease;
      lease.sentinel = base + i * unit;
      lease.stack = lease.sentinel + page;
      lease.bytes = stackBytes;
      obs::patternFillStack(lease.sentinel, page);
      free.push_back(lease);
    }
    // Slabs are never unmapped: leases reference into them for the process
    // lifetime and MADV_DONTNEED already returns idle pages.
  }

  static constexpr std::size_t kSlabTargetBytes = std::size_t{4} << 20;

  std::mutex mutex_;
  std::map<std::size_t, std::vector<Lease>> free_;  ///< keyed by stack size
};

class FiberContext final : public ExecutionContext {
 public:
  FiberContext(std::size_t stackBytes, bool pooled) : pooled_(pooled) {
    const std::size_t page = pageBytes();
    stackBytes_ = std::max(stackBytes, kMinFiberStackBytes);
    stackBytes_ = (stackBytes_ + page - 1) / page * page;
    if (pooled_) {
      lease_ = FiberStackArena::instance().acquire(stackBytes_);
      stack_ = lease_.stack;
    } else {
      mapBytes_ = stackBytes_ + page;  // + guard page below the stack
      void* map = mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      TIB_REQUIRE_MSG(map != MAP_FAILED, "fiber stack mmap failed");
      map_ = map;
      TIB_REQUIRE_MSG(mprotect(map, page, PROT_NONE) == 0,
                      "fiber stack guard mprotect failed");
      stack_ = static_cast<char*>(map) + page;
    }
    // Pattern-fill before makecontext arms the stack so the high-water scan
    // can tell touched bytes from untouched ones (recycled pooled stacks
    // carry the previous tenant's writes until this refill).
    obs::patternFillStack(stack_, stackBytes_);
  }

  // Process guarantees the entry has returned before destruction, so the
  // stack is quiescent here: release the lease (which checks the overflow
  // sentinel) or unmap the private mapping.
  ~FiberContext() override {
    if (pooled_) {
      FiberStackArena::instance().release(lease_);
    } else {
      munmap(map_, mapBytes_);
    }
  }

  void start(Entry entry) override {
    TIB_ASSERT(!armed_);
    entry_ = std::move(entry);
    TIB_REQUIRE(getcontext(&fiberCtx_) == 0);
    fiberCtx_.uc_stack.ss_sp = stack_;
    fiberCtx_.uc_stack.ss_size = stackBytes_;
    fiberCtx_.uc_link = nullptr;  // exit is an explicit transfer in run()
    // makecontext passes ints only; smuggle `this` as two 32-bit halves.
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    makecontext(&fiberCtx_, reinterpret_cast<void (*)()>(&FiberContext::run),
                2, static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xffffffffu));
    armed_ = true;
  }

#if TIBSIM_ASAN

  void switchIn() override {
    TIB_ASSERT(armed_ && !done_);
    void* fakeStack = nullptr;
    asanStartSwitch(&fakeStack, stack_, stackBytes_);
    TIB_REQUIRE(swapcontext(&hostCtx_, &fiberCtx_) == 0);
    // Back on the host stack; tell ASan and remember where the host stack
    // lives so yieldToHost() can announce the reverse switch.
    asanFinishSwitch(fakeStack, &hostStackBottom_, &hostStackSize_);
  }

  void yieldToHost() override {
    void* fakeStack = nullptr;
    asanStartSwitch(&fakeStack, hostStackBottom_, hostStackSize_);
    TIB_REQUIRE(swapcontext(&fiberCtx_, &hostCtx_) == 0);
    asanFinishSwitch(fakeStack, &hostStackBottom_, &hostStackSize_);
  }

#else  // !TIBSIM_ASAN

  void switchIn() override {
    TIB_ASSERT(armed_ && !done_);
    if (_setjmp(hostJmp_) == 0) {
      if (!entered_) {
        // First entry: only makecontext can start a frame on the new
        // stack. Control returns via _longjmp(hostJmp_), never through
        // this swapcontext call.
        entered_ = true;
        TIB_REQUIRE(swapcontext(&hostCtx_, &fiberCtx_) == 0);
      } else {
        _longjmp(fiberJmp_, 1);
      }
    }
  }

  void yieldToHost() override {
    if (_setjmp(fiberJmp_) == 0) _longjmp(hostJmp_, 1);
  }

#endif  // TIBSIM_ASAN

  ExecBackend backend() const override { return ExecBackend::Fiber; }

  std::size_t stackBytes() const override { return stackBytes_; }

  std::size_t stackHighWaterBytes() const override {
    return obs::scanStackHighWater(stack_, stackBytes_);
  }

 private:
  static void run(unsigned selfHi, unsigned selfLo) {
    auto* self = reinterpret_cast<FiberContext*>(
        (static_cast<std::uintptr_t>(selfHi) << 32) |
        static_cast<std::uintptr_t>(selfLo));
    // First time on the fiber stack: complete the switch the host started.
    asanFinishSwitch(nullptr, &self->hostStackBottom_, &self->hostStackSize_);
    self->entry_();
    self->done_ = true;
#if TIBSIM_ASAN
    // Final exit: a nullptr fake-stack save tells ASan this fiber is dying.
    asanStartSwitch(nullptr, self->hostStackBottom_, self->hostStackSize_);
    swapcontext(&self->fiberCtx_, &self->hostCtx_);
#else
    _longjmp(self->hostJmp_, 1);
#endif
    TIB_ASSERT(false && "resumed a finished fiber");
  }

  Entry entry_;
  std::size_t stackBytes_ = 0;  ///< usable bytes (excludes the guard page)
  bool pooled_ = false;         ///< stack leased from FiberStackArena
  FiberStackArena::Lease lease_;
  std::size_t mapBytes_ = 0;    ///< private mapping only (pooled_ == false)
  void* map_ = nullptr;
  char* stack_ = nullptr;
  ucontext_t fiberCtx_{};
  ucontext_t hostCtx_{};
#if !TIBSIM_ASAN
  jmp_buf hostJmp_{};
  jmp_buf fiberJmp_{};
  bool entered_ = false;
#endif
  const void* hostStackBottom_ = nullptr;
  std::size_t hostStackSize_ = 0;
  bool armed_ = false;
  bool done_ = false;
};

#endif  // TIBSIM_HAVE_UCONTEXT && !TIBSIM_TSAN

ExecBackend readBackendFromEnv() {
  const char* env = std::getenv("TIBSIM_SIM_BACKEND");
  if (env != nullptr) {
    const std::string name(env);
    if (name == "thread") return ExecBackend::Thread;
    if (name == "fiber") return ExecBackend::Fiber;
  }
  return ExecBackend::Fiber;
}

std::atomic<ExecBackend>& defaultBackendSlot() {
  static std::atomic<ExecBackend> slot{readBackendFromEnv()};
  return slot;
}

}  // namespace

std::size_t pageBytes() {
#if defined(__unix__) || defined(__APPLE__)
  static const std::size_t page = [] {
    const long v = sysconf(_SC_PAGESIZE);
    return v > 0 ? static_cast<std::size_t>(v) : std::size_t{4096};
  }();
  return page;
#else
  return 4096;
#endif
}

std::size_t recommendedStackBytes(std::size_t highWaterBytes) {
  if (highWaterBytes == 0) return 0;  // no telemetry: keep the default
  const std::size_t page = pageBytes();
  const std::size_t doubled = 2 * highWaterBytes;
  const std::size_t rounded = (doubled + page - 1) / page * page;
  return std::max(rounded, kMinFiberStackBytes);
}

const char* toString(ExecBackend backend) {
  return backend == ExecBackend::Fiber ? "fiber" : "thread";
}

ExecBackend parseExecBackend(const std::string& name) {
  if (name == "fiber") return ExecBackend::Fiber;
  if (name == "thread") return ExecBackend::Thread;
  TIB_REQUIRE_MSG(false, "unknown sim backend '" + name +
                             "' (expected 'fiber' or 'thread')");
  return ExecBackend::Fiber;  // unreachable
}

ExecBackend defaultExecBackend() {
  return defaultBackendSlot().load(std::memory_order_relaxed);
}

void setDefaultExecBackend(ExecBackend backend) {
  defaultBackendSlot().store(backend, std::memory_order_relaxed);
}

std::size_t ExecutionContext::defaultStackBytes() {
  static const std::size_t bytes = [] {
    if (const char* env = std::getenv("TIBSIM_FIBER_STACK_KB")) {
      const long kb = std::strtol(env, nullptr, 10);
      if (kb > 0) return static_cast<std::size_t>(kb) * 1024;
    }
    return static_cast<std::size_t>(256) * 1024;
  }();
  return bytes;
}

std::unique_ptr<ExecutionContext> ExecutionContext::create(
    ExecBackend backend, std::size_t stackBytes, bool pooledStack) {
#if TIBSIM_HAVE_UCONTEXT && !TIBSIM_TSAN
  if (backend == ExecBackend::Fiber) {
    return std::make_unique<FiberContext>(
        stackBytes != 0 ? stackBytes : defaultStackBytes(), pooledStack);
  }
#else
  (void)stackBytes;  // fiber unavailable: serviced by the thread backend
#endif
  (void)backend;
  (void)pooledStack;
  return std::make_unique<ThreadContext>();
}

}  // namespace tibsim::sim
