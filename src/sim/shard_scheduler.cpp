#include "tibsim/sim/shard_scheduler.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <string>

#include "tibsim/common/assert.hpp"

namespace tibsim::sim {

namespace {

int clampShards(int shards) { return std::clamp(shards, 1, 1024); }

int readDefaultSimShards() {
  // Same pattern as TIBSIM_SIM_BACKEND / TIBSIM_TRACE_MODE: the environment
  // seeds the process-wide default once; --sim-shards and ScopedSimShards
  // override it explicitly afterwards.
  const char* env = std::getenv("TIBSIM_SIM_SHARDS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0') return 1;
  return clampShards(static_cast<int>(value));
}

int& defaultSimShardsSlot() {
  // tibsim-lint: allow(shard-shared) — host-side config slot, set before runs
  static int shards = readDefaultSimShards();
  return shards;
}

// One busy-wait step. Windows are so short that parked workers would pay a
// futex wake per window; spinning across the serial barrier keeps the gang
// hot through communication bursts.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield");
#else
  // tibsim-lint: allow(fiber-block) — gang-worker spin hint, not fiber code
  std::this_thread::yield();
#endif
}

// Spin budget before a worker parks on the condition variable: long enough
// to cover a typical barrier (~tens of µs), short enough not to burn a core
// through a compute phase (single-shard windows run inline, so the gang
// sees no epochs for milliseconds at a time there).
constexpr std::uint32_t kGangSpinLimit = 20000;

}  // namespace

int defaultSimShards() { return defaultSimShardsSlot(); }

void setDefaultSimShards(int shards) {
  defaultSimShardsSlot() = clampShards(shards);
}

ShardScheduler::ShardScheduler(double lookaheadSeconds)
    : lookahead_(lookaheadSeconds) {
  TIB_REQUIRE_MSG(lookahead_ > 0.0,
                  "shard scheduler needs a positive lookahead; a zero-latency"
                  " fabric must run single-shard");
}

ShardScheduler::~ShardScheduler() { stopGang(); }

std::size_t ShardScheduler::addShard(Simulation* shard) {
  TIB_REQUIRE(shard != nullptr);
  TIB_REQUIRE_MSG(gang_.empty(), "cannot add shards while the gang runs");
  shards_.push_back(shard);
  return shards_.size() - 1;
}

void ShardScheduler::teardownShard(std::size_t shard) {
  TIB_REQUIRE(shard < shards_.size());
  shards_[shard] = nullptr;
}

Simulation& ShardScheduler::shard(std::size_t index) {
  TIB_REQUIRE(index < shards_.size() && shards_[index] != nullptr);
  return *shards_[index];
}

void ShardScheduler::channelPush(std::size_t dstShard, double t,
                                 std::uint64_t g, std::uint64_t pushIdx,
                                 UniqueFunction fn) {
  TIB_REQUIRE_MSG(dstShard < shards_.size() && shards_[dstShard] != nullptr,
                  "cross-shard event routed to a torn-down shard");
  shards_[dstShard]->scheduleChannel(t, g, pushIdx, std::move(fn));
}

std::size_t ShardScheduler::gangParticipants() const {
  const char* env = std::getenv("TIBSIM_SHARD_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long value = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && value >= 1) {
      return std::min(static_cast<std::size_t>(value), shards_.size());
    }
  }
  const std::size_t cores =
      std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  return std::min(shards_.size(), cores);
}

void ShardScheduler::startGang() {
  const std::size_t participants = gangParticipants();
  if (participants < 2) return;  // caller-only: every window runs inline
  gang_.reserve(participants - 1);
  for (std::size_t i = 0; i + 1 < participants; ++i)
    gang_.emplace_back([this] { gangLoop(); });
}

void ShardScheduler::stopGang() {
  if (gang_.empty()) return;
  gangStop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(gangMutex_);
  }
  gangWake_.notify_all();
  for (std::thread& t : gang_) t.join();
  gang_.clear();
  gangStop_.store(false, std::memory_order_relaxed);
}

void ShardScheduler::runClaimedShards() {
  for (;;) {
    const std::uint32_t i = nextShard_.fetch_add(1, std::memory_order_relaxed);
    if (i >= active_.size()) return;
    try {
      shards_[active_[i]]->runWindow(windowEnd_);
    } catch (...) {
      std::lock_guard<std::mutex> lock(gangMutex_);
      if (gangError_ == nullptr) gangError_ = std::current_exception();
    }
  }
}

void ShardScheduler::gangLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint32_t spins = 0;
    while (epoch_.load(std::memory_order_acquire) == seen) {
      if (gangStop_.load(std::memory_order_acquire)) return;
      if (++spins >= kGangSpinLimit) {
        std::unique_lock<std::mutex> lock(gangMutex_);
        sleepers_.fetch_add(1, std::memory_order_relaxed);
        gangWake_.wait(lock, [&] {
          return epoch_.load(std::memory_order_acquire) != seen ||
                 gangStop_.load(std::memory_order_acquire);
        });
        sleepers_.fetch_sub(1, std::memory_order_relaxed);
        spins = 0;
      } else {
        cpuRelax();
      }
    }
    seen = epoch_.load(std::memory_order_acquire);
    runClaimedShards();
    doneWorkers_.fetch_add(1, std::memory_order_release);
  }
}

double ShardScheduler::run(const std::function<void()>& barrier) {
  startGang();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (;;) {
    double minNext = kInf;
    for (Simulation* shard : shards_) {
      if (shard != nullptr && shard->hasEvents())
        minNext = std::min(minNext, shard->nextEventTime());
    }
    if (minNext == kInf) {
      // Queues drained — but the barrier may still hold deferred ops whose
      // replay pushes fresh events (a window that ended exactly on a batch
      // of cross-shard sends). One flush decides: still empty means done.
      barrier();
      bool any = false;
      for (Simulation* shard : shards_) {
        if (shard != nullptr && shard->hasEvents()) any = true;
      }
      if (!any) break;
      continue;
    }

    const double windowEnd = minNext + lookahead_;
    active_.clear();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Simulation* shard = shards_[i];
      if (shard != nullptr && shard->hasEvents() &&
          shard->nextEventTime() < windowEnd)
        active_.push_back(i);
    }
    TIB_ASSERT(!active_.empty());
    windowEnd_ = windowEnd;
    if (active_.size() == 1 || gang_.empty()) {
      // Inline path: serial and pipelined phases put all the work in one
      // shard per window, where even a hot gang's fan-out would dominate —
      // and a single-core host (empty gang) runs everything here.
      nextShard_.store(0, std::memory_order_relaxed);
      runClaimedShards();
    } else {
      ++parallelWindowsRun_;
      nextShard_.store(0, std::memory_order_relaxed);
      doneWorkers_.store(0, std::memory_order_relaxed);
      epoch_.fetch_add(1, std::memory_order_release);
      if (sleepers_.load(std::memory_order_relaxed) > 0) {
        // Pairing the notify with the lock closes the park/bump race: a
        // worker re-checks the epoch under the mutex before sleeping.
        std::lock_guard<std::mutex> lock(gangMutex_);
        gangWake_.notify_all();
      }
      runClaimedShards();
      while (doneWorkers_.load(std::memory_order_acquire) <
             static_cast<std::uint32_t>(gang_.size())) {
        cpuRelax();
      }
    }
    if (gangError_ != nullptr) {
      std::exception_ptr error;
      {
        std::lock_guard<std::mutex> lock(gangMutex_);
        error = gangError_;
        gangError_ = nullptr;
      }
      stopGang();
      std::rethrow_exception(error);
    }
    ++windowsRun_;
    barrier();
  }
  stopGang();

  double finalTime = 0.0;
  for (Simulation* shard : shards_) {
    if (shard != nullptr) finalTime = std::max(finalTime, shard->now());
  }
  return finalTime;
}

}  // namespace tibsim::sim
