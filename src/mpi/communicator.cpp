// Communicator implementation: rank translation, comm-scoped
// point-to-point, split()/dup() derivation, and the request plumbing for
// non-blocking operations. The collective algorithms themselves live in
// collectives.cpp so they sit next to the legacy MpiContext delegations.
//
// tibsim-lint: allowfile(wildcard-recv) — this file implements the wildcard
// plumbing itself.

#include "tibsim/mpi/communicator.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "tibsim/common/assert.hpp"
#include "tibsim/mpi/simmpi.hpp"

namespace tibsim::mpi {

void Communicator::requireMember() const {
  TIB_REQUIRE_MSG(ctx_ != nullptr,
                  "operation on a null communicator (default-constructed, or "
                  "split() returned kUndefinedColor for this rank)");
}

int Communicator::size() const {
  requireMember();
  return group_ ? static_cast<int>(group_->size()) : ctx_->world_.ranks();
}

int Communicator::worldRank(int commRank) const {
  requireMember();
  TIB_REQUIRE(commRank >= 0 && commRank < size());
  return group_ ? (*group_)[static_cast<std::size_t>(commRank)] : commRank;
}

int Communicator::commRankOf(int worldRank) const {
  requireMember();
  if (!group_)
    return worldRank >= 0 && worldRank < ctx_->world_.ranks() ? worldRank : -1;
  // Linear scan: groups are either the whole world (handled above) or small
  // app-defined subsets, and this only runs on receive-side translation.
  for (std::size_t i = 0; i < group_->size(); ++i)
    if ((*group_)[i] == worldRank) return static_cast<int>(i);
  return -1;
}

// ---------------------------------------------------------------------------
// Point-to-point (ranks are comm-local; messages carry the comm id)
// ---------------------------------------------------------------------------

void Communicator::send(int dst, int tag, std::size_t bytes,
                        std::span<const std::byte> payload) const {
  requireMember();
  ctx_->world_.doSend(*ctx_, id_, worldRank(dst), tag, bytes, payload);
}

void Communicator::sendDoubles(int dst, int tag,
                               std::span<const double> values) const {
  send(dst, tag, values.size_bytes(), std::as_bytes(values));
}

std::vector<std::byte> Communicator::recv(int src, int tag,
                                          std::size_t* receivedBytes,
                                          int* srcOut, int* tagOut) const {
  requireMember();
  const int worldSrc = src == kAnySource ? kAnySource : worldRank(src);
  int matchedWorldSrc = -1;
  std::vector<std::byte> out = ctx_->world_.doRecv(
      *ctx_, id_, worldSrc, tag, receivedBytes, &matchedWorldSrc, tagOut);
  if (srcOut != nullptr) *srcOut = commRankOf(matchedWorldSrc);
  return out;
}

std::vector<double> Communicator::recvDoubles(int src, int tag,
                                              int* srcOut) const {
  int actualSrc = src;
  std::size_t bytes = 0;
  const std::vector<std::byte> raw = recv(src, tag, &bytes, &actualSrc);
  TIB_REQUIRE_MSG(raw.size() % sizeof(double) == 0,
                  "recvDoubles: " + std::to_string(raw.size()) +
                      "-byte payload from rank " + std::to_string(actualSrc) +
                      " is not a multiple of sizeof(double) — the sender "
                      "did not use sendDoubles");
  std::vector<double> values(raw.size() / sizeof(double));
  if (!values.empty())
    std::memcpy(values.data(), raw.data(), values.size() * sizeof(double));
  if (srcOut != nullptr) *srcOut = actualSrc;
  return values;
}

void Communicator::sendrecv(int peer, int tag, std::size_t sendBytes,
                            std::size_t* recvBytes) const {
  requireMember();
  TIB_REQUIRE(peer != rank_);
  // Rank-ordered exchange on comm-local ids: lower rank sends first, the
  // classic deadlock-free pairing (same schedule as MpiContext::sendrecv).
  if (rank_ < peer) {
    send(peer, tag, sendBytes);
    recv(peer, tag, recvBytes);
  } else {
    recv(peer, tag, recvBytes);
    send(peer, tag, sendBytes);
  }
}

// ---------------------------------------------------------------------------
// Non-blocking point-to-point
// ---------------------------------------------------------------------------

Communicator::Request Communicator::isend(
    int dst, int tag, std::size_t bytes,
    std::span<const std::byte> payload) const {
  requireMember();
  // Same eager-buffered semantics as MpiContext::isend: charged and on the
  // wire now, complete by construction, but must still be waited.
  ctx_->world_.doSend(*ctx_, id_, worldRank(dst), tag, bytes, payload,
                      /*allowRendezvous=*/false);
  MpiContext::PendingOp op;
  op.kind = MpiContext::PendingOp::Kind::Send;
  op.peer = worldRank(dst);
  op.tag = tag;
  op.comm = *this;
  return ctx_->pushPending(std::move(op));
}

Communicator::Request Communicator::irecv(int src, int tag) const {
  requireMember();
  MpiContext::PendingOp op;
  op.kind = MpiContext::PendingOp::Kind::Recv;
  op.peer = src == kAnySource ? kAnySource : worldRank(src);
  op.tag = tag;
  op.comm = *this;
  return ctx_->pushPending(std::move(op));
}

std::vector<std::byte> Communicator::wait(Request request,
                                          std::size_t* receivedBytes) const {
  requireMember();
  return ctx_->wait(request, receivedBytes);
}

void Communicator::waitall(std::span<const Request> requests) const {
  requireMember();
  ctx_->waitall(requests);
}

std::vector<double> Communicator::waitDoubles(Request request) const {
  requireMember();
  const std::vector<std::byte> raw = ctx_->wait(request);
  TIB_REQUIRE_MSG(raw.size() % sizeof(double) == 0,
                  "waitDoubles: " + std::to_string(raw.size()) +
                      "-byte payload is not a whole number of doubles");
  std::vector<double> values(raw.size() / sizeof(double));
  if (!values.empty())
    std::memcpy(values.data(), raw.data(), values.size() * sizeof(double));
  return values;
}

// ---------------------------------------------------------------------------
// Derivation (collective over the parent communicator)
// ---------------------------------------------------------------------------

Communicator Communicator::split(int color, int key,
                                 std::source_location loc) const {
  requireMember();
  // The three allgathers below are the split's traffic; the verifier
  // stamps them all with the split's own call site.
  MpiContext::CollectiveGuard guard(*ctx_, id_, CollectiveKind::Split,
                                    kNoReduceOp, 0, loc.file_name(),
                                    loc.line());
  // Every member burns one creation ordinal whether or not it joins a new
  // communicator: the id derivation below needs the *leader's* ordinal to
  // be unique per creation event, and the leader is not known until the
  // exchange completes.
  const std::uint64_t myOrdinal = ctx_->nextCommOrdinal_++;
  // Three parent-comm allgathers carry everyone's (color, key, ordinal);
  // afterwards each member derives the new communicator locally from
  // identical data — no shared mutable state, so the ids come out the same
  // for every --sim-shards value and both backends.
  const std::vector<double> colors = allgather(static_cast<double>(color));
  const std::vector<double> keys = allgather(static_cast<double>(key));
  const std::vector<double> ordinals =
      allgather(static_cast<double>(myOrdinal));
  if (color < 0) return Communicator{};  // kUndefinedColor: not a member

  struct Member {
    int key;
    int worldRank;
    int parentRank;
  };
  std::vector<Member> members;
  const int p = size();
  for (int r = 0; r < p; ++r) {
    if (static_cast<int>(colors[static_cast<std::size_t>(r)]) != color)
      continue;
    members.push_back(
        Member{static_cast<int>(keys[static_cast<std::size_t>(r)]),
               worldRank(r), r});
  }
  std::stable_sort(members.begin(), members.end(),
                   [](const Member& a, const Member& b) {
                     return a.key != b.key ? a.key < b.key
                                           : a.worldRank < b.worldRank;
                   });

  auto group = std::make_shared<std::vector<int>>();
  group->reserve(members.size());
  int myCommRank = -1;
  int leaderWorld = members.front().worldRank;
  int leaderParent = members.front().parentRank;
  for (std::size_t i = 0; i < members.size(); ++i) {
    group->push_back(members[i].worldRank);
    if (members[i].worldRank < leaderWorld) {
      leaderWorld = members[i].worldRank;
      leaderParent = members[i].parentRank;
    }
    if (members[i].parentRank == rank_) myCommRank = static_cast<int>(i);
  }
  TIB_ASSERT(myCommRank >= 0);
  const std::uint64_t leaderOrdinal = static_cast<std::uint64_t>(
      ordinals[static_cast<std::size_t>(leaderParent)]);
  const std::uint64_t id =
      (static_cast<std::uint64_t>(leaderWorld) << 32) | leaderOrdinal;
  return Communicator(ctx_, id, myCommRank, std::move(group));
}

Communicator Communicator::dup(std::source_location loc) const {
  requireMember();
  MpiContext::CollectiveGuard guard(*ctx_, id_, CollectiveKind::Dup,
                                    kNoReduceOp, 0, loc.file_name(),
                                    loc.line());
  const std::uint64_t myOrdinal = ctx_->nextCommOrdinal_++;
  // Comm-rank 0's fresh ordinal names the duplicate; a one-element bcast
  // over the parent teaches it to every member. Sharing the parent's group
  // table keeps dup O(1) per rank — important when duplicating the world at
  // thousands of ranks just to isolate a tag space.
  const std::vector<double> root =
      bcast(std::vector<double>{static_cast<double>(myOrdinal)}, 0);
  const std::uint64_t leaderOrdinal = static_cast<std::uint64_t>(root[0]);
  const std::uint64_t id =
      (static_cast<std::uint64_t>(worldRank(0)) << 32) | leaderOrdinal;
  return Communicator(ctx_, id, rank_, group_);
}

// ---------------------------------------------------------------------------
// Non-blocking collectives (lazy: wait() executes them)
// ---------------------------------------------------------------------------

Communicator::Request Communicator::ibarrier(
    std::source_location loc) const {
  requireMember();
  MpiContext::PendingOp op;
  op.kind = MpiContext::PendingOp::Kind::Barrier;
  op.comm = *this;
  op.file = loc.file_name();
  op.line = loc.line();
  return ctx_->pushPending(std::move(op));
}

Communicator::Request Communicator::ibcast(std::vector<double> values,
                                           int root,
                                           std::source_location loc) const {
  requireMember();
  MpiContext::PendingOp op;
  op.kind = MpiContext::PendingOp::Kind::Bcast;
  op.comm = *this;
  op.root = root;
  op.values = std::move(values);
  op.file = loc.file_name();
  op.line = loc.line();
  return ctx_->pushPending(std::move(op));
}

Communicator::Request Communicator::iallreduce(
    std::span<const double> values, ReduceOp rop,
    std::source_location loc) const {
  requireMember();
  MpiContext::PendingOp op;
  op.kind = MpiContext::PendingOp::Kind::Allreduce;
  op.comm = *this;
  op.op = rop;
  op.values.assign(values.begin(), values.end());
  op.file = loc.file_name();
  op.line = loc.line();
  return ctx_->pushPending(std::move(op));
}

}  // namespace tibsim::mpi
