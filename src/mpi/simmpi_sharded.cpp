// Sharded logical-process execution for MpiWorld (simShards > 1).
//
// The world is cut at leaf-switch boundaries into contiguous rank ranges,
// one Simulation per shard, driven in conservative windows by
// sim::ShardScheduler with the fabric's one-hop cut-through latency as the
// lookahead bound. Everything here exists to keep the serialised campaign
// artefacts byte-identical to the single-queue engine for ANY shard count:
//
//  * each shard logs its dispatches under canonical (t, ord1, ord2) keys
//    (sim/simulation.hpp); the window barrier k-way-merges the logs into
//    the exact order the single global queue would have dispatched,
//    assigning every dispatch its global ordinal along the way;
//  * side effects whose result depends on that global order — fabric
//    occupancy, totalFlops/totalDramBytes folds, trace spans, the
//    serialised payload-pool counters, the queue high-water mark, and every
//    event pushed toward another shard — were deferred in-window and are
//    replayed here, serially, in the merged order;
//  * order-free counters (message counts, per-node CPU seconds, per-rank
//    finish times) stay in-window on shard-disjoint state and are summed at
//    the end.
//
// Anything in-window therefore touches only shard-local state; anything
// global happens at a barrier on one thread. That split is also what the
// tibsim_lint shared-state rule enforces syntactically.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "tibsim/common/assert.hpp"
#include "tibsim/mpi/simmpi.hpp"

namespace tibsim::mpi {

namespace {
// Host-side profiling only (EngineStats::hostSeconds — never serialised).
double secondsSince(std::chrono::steady_clock::time_point start) {  // tibsim-lint: allow(wall-clock)
  const auto now = std::chrono::steady_clock::now();  // tibsim-lint: allow(wall-clock)
  return std::chrono::duration<double>(now - start).count();
}

}  // namespace

int MpiWorld::effectiveSimShards() const {
  const int requested = std::clamp(config_.simShards, 1, 1024);
  if (requested <= 1) return 1;
  // No positive lookahead means no conservative window: single queue.
  if (config_.topology.switchLatency <= 0.0) return 1;
  const int perLeaf = std::max(config_.topology.nodesPerLeafSwitch, 1);
  const int leafCount = (nodes_ + perLeaf - 1) / perLeaf;
  // Shards are cut at leaf-switch boundaries, so a one-leaf world (where
  // every message is at most one hop from every other rank) cannot shard.
  if (leafCount < 2) return 1;
  return std::min(requested, leafCount);
}

void MpiWorld::submitWireOp(Engine& eng, DeferredOp&& op) {
  op.dispatchIndex = eng.sim->currentDispatchIndex();
  op.submitT = eng.sim->now();
  // Reserve the push's position within the submitting dispatch: the event
  // pushed at the barrier sorts exactly where the single-queue engine's
  // immediate push would have — (G of this dispatch, this index).
  op.pushIdx = eng.sim->notePendingPush();
  ++pendingChannelOps_;
  eng.ops.push_back(std::move(op));
}

void MpiWorld::executeOp(DeferredOp& op, std::uint64_t g) {
  switch (op.kind) {
    case DeferredOp::Kind::Deliver: {
      const double arrival = fabric_->scheduleWire(op.fromNode, op.toNode,
                                                   op.wireBytes, op.submitT);
      const int dst = op.dstRank;
      TIB_ASSERT(op.hasMessage);
      const std::uint32_t slot = stashFor(dst, std::move(op.message));
      scheduler_->channelPush(
          static_cast<std::size_t>(shardOfRank(dst)), arrival, g, op.pushIdx,
          [this, dst, slot] { deliver(dst, slot); });
      break;
    }
    case DeferredOp::Kind::DataArrival: {
      const double arrival = fabric_->scheduleWire(op.fromNode, op.toNode,
                                                   op.wireBytes, op.submitT);
      const int dst = op.dstRank;
      const std::uint64_t id = op.id;
      const obs::PathSnapshot path = op.path;
      const double depart = op.submitT;
      scheduler_->channelPush(
          static_cast<std::size_t>(shardOfRank(dst)), arrival, g, op.pushIdx,
          [this, dst, id, path, depart] { dataArrived(dst, id, path, depart); });
      break;
    }
    case DeferredOp::Kind::CtsResume: {
      const double arrival = fabric_->scheduleWire(op.fromNode, op.toNode,
                                                   op.wireBytes, op.submitT);
      sim::Simulation* sim =
          engines_[static_cast<std::size_t>(op.targetShard)].sim.get();
      sim::Process* sender = op.sender;
      // The sender adopts the receiver's chain (plus the CTS hop) inside
      // its own shard's window, exactly when the single queue would.
      MpiContext* senderCtx = op.senderCtx;
      const obs::PathSnapshot path = op.path;
      const double link = std::max(0.0, arrival - op.submitT);
      scheduler_->channelPush(static_cast<std::size_t>(op.targetShard),
                              arrival, g, op.pushIdx,
                              [sim, sender, senderCtx, path, link] {
                                senderCtx->adoptPath(path, link);
                                sim->resume(*sender);
                              });
      break;
    }
    case DeferredOp::Kind::StatFold:
      stats_.totalFlops += op.flops;
      stats_.totalDramBytes += op.dramBytes;
      break;
    case DeferredOp::Kind::PoolAcquire: {
      auto& caps = poolTicketCaps_[static_cast<std::size_t>(op.id >> 32)];
      const std::size_t seq = static_cast<std::size_t>(op.id & 0xffffffffu);
      if (seq >= caps.size()) caps.resize(seq + 1);
      caps[seq].legacy = worldPoolCompat_.acquire(op.bytes);
      caps[seq].classed = worldPoolClass_.acquire(op.bytes);
      break;
    }
    case DeferredOp::Kind::PoolRelease: {
      const PoolTicketCaps& caps =
          poolTicketCaps_[static_cast<std::size_t>(op.id >> 32)]
                         [static_cast<std::size_t>(op.id & 0xffffffffu)];
      worldPoolCompat_.release(caps.legacy);
      worldPoolClass_.release(caps.classed);
      break;
    }
  }
}

void MpiWorld::shardBarrier() {
  const std::size_t shardCount = engines_.size();
  if (shardOrdByDispatch_.size() < shardCount)
    shardOrdByDispatch_.resize(shardCount);
  for (std::size_t s = 0; s < shardCount; ++s) {
    Engine& e = engines_[s];
    e.logCursor = 0;
    e.opCursor = 0;
    e.spanCursor = 0;
    shardOrdByDispatch_[s].assign(e.sim->dispatchLog().size(), 0);
  }
  // K-way merge of the shards' dispatch logs into the order the single
  // global queue would have dispatched this window's events, numbering
  // each dispatch with its global ordinal as it merges. A provisional
  // record key references an earlier dispatch in the SAME shard's log, so
  // by the time a record reaches its log's head its ordinal is resolvable.
  // Scan only shards that still hold unmerged records; most windows have
  // one busy shard, where the merge degenerates to a linear walk.
  mergeScratch_.clear();
  for (std::size_t s = 0; s < shardCount; ++s) {
    if (!engines_[s].sim->dispatchLog().empty()) mergeScratch_.push_back(s);
  }
  for (;;) {
    std::size_t bestShard = 0;
    const sim::Simulation::DispatchRecord* bestRec = nullptr;
    std::uint64_t bestOrd1 = 0;
    for (std::size_t live = 0; live < mergeScratch_.size(); ++live) {
      const std::size_t s = mergeScratch_[live];
      Engine& e = engines_[s];
      const auto& log = e.sim->dispatchLog();
      if (e.logCursor >= log.size()) continue;
      const auto& rec = log[e.logCursor];
      std::uint64_t ord1 = rec.ord1;
      if ((ord1 & sim::Simulation::kProvisionalOrd) != 0) {
        ord1 = shardOrdByDispatch_[s][static_cast<std::size_t>(
            ord1 & ~sim::Simulation::kProvisionalOrd)];
      }
      if (bestRec == nullptr || rec.t < bestRec->t ||
          (rec.t == bestRec->t &&
           (ord1 < bestOrd1 ||
            (ord1 == bestOrd1 && rec.ord2 < bestRec->ord2)))) {
        bestShard = s;
        bestRec = &rec;
        bestOrd1 = ord1;
      }
    }
    if (bestRec == nullptr) break;
    Engine* best = &engines_[bestShard];
    const auto idx = static_cast<std::uint32_t>(best->logCursor++);
    shardOrdByDispatch_[bestShard][idx] = nextGlobalOrd_++;
    ++shardMergeRecords_;

    // Virtual single-queue size replay: the dispatch popped one event and
    // pushed `pushes` (in-window pushes plus deferred channel pushes, which
    // the legacy engine would have pushed during this same dispatch). The
    // high-water candidate peaks after the last push.
    if (bestRec->pushes > 0) {
      mergedQueueHighWater_ = std::max(
          mergedQueueHighWater_, mergedQueueSize_ - 1 + bestRec->pushes);
    }
    mergedQueueSize_ = mergedQueueSize_ - 1 + bestRec->pushes;

    const std::uint64_t g = shardOrdByDispatch_[bestShard][idx];
    while (best->opCursor < best->ops.size() &&
           best->ops[best->opCursor].dispatchIndex == idx)
      executeOp(best->ops[best->opCursor++], g);
    while (best->spanCursor < best->spans.size() &&
           best->spans[best->spanCursor].dispatchIndex == idx)
      tracer_.record(best->spans[best->spanCursor++].span);
    if (best->logCursor >= best->sim->dispatchLog().size()) {
      const auto drained = std::find(mergeScratch_.begin(),
                                     mergeScratch_.end(), bestShard);
      *drained = mergeScratch_.back();
      mergeScratch_.pop_back();
    }
  }
  for (std::size_t s = 0; s < shardCount; ++s) {
    Engine& e = engines_[s];
    TIB_ASSERT(e.opCursor == e.ops.size());
    TIB_ASSERT(e.spanCursor == e.spans.size());
    e.ops.clear();
    e.spans.clear();
    // Resolve surviving provisional event keys against this window's
    // ordinals and clear the dispatch log.
    e.sim->finalizeWindowKeys(shardOrdByDispatch_[s]);
  }
  pendingChannelOps_ = 0;
}

WorldStats MpiWorld::runSharded(const RankBody& body, int shards) {
  sharded_ = true;
  sim_.reset();  // the single-queue engine is unused on this path
  net::TopologySpec topo = config_.topology;
  topo.nodes = nodes_;
  fabric_ = std::make_unique<net::Fabric>(topo, config_.linkTelemetry);
  scheduler_ =
      std::make_unique<sim::ShardScheduler>(fabric_->lookaheadSeconds());

  mailboxes_.clear();
  mailboxes_.resize(static_cast<std::size_t>(ranks_));
  contexts_.clear();
  inflight_.clear();
  freeSlots_.clear();
  while (shardPools_.size() < static_cast<std::size_t>(shards)) {
    shardPools_.emplace_back();
    // The serialised counters come from worldPoolCompat_, replayed in
    // canonical order; the per-shard models would be shard-order-local.
    shardPools_.back().disableCompat();
  }
  for (PayloadPool& pool : shardPools_) pool.resetStats();
  worldPoolCompat_.resetStats();
  worldPoolClass_.resetStats();
  poolTicketCaps_.assign(static_cast<std::size_t>(shards), {});

  stats_ = WorldStats{};
  stats_.nodes = nodes_;
  stats_.rankFinishSeconds.assign(static_cast<std::size_t>(ranks_), 0.0);
  stats_.nodeBusySeconds.assign(static_cast<std::size_t>(nodes_), 0.0);
  stats_.nodeCommCpuSeconds.assign(static_cast<std::size_t>(nodes_), 0.0);

  // Leaf-switch-contiguous partition: shardOfLeaf = leaf * S / leafCount.
  // Contiguous leaves (hence nodes, hence ranks) per shard means every
  // same-node and same-leaf message stays shard-local.
  const int perLeaf = std::max(config_.topology.nodesPerLeafSwitch, 1);
  const int leafCount = (nodes_ + perLeaf - 1) / perLeaf;
  shardOfRank_.assign(static_cast<std::size_t>(ranks_), 0);
  for (int r = 0; r < ranks_; ++r) {
    const int leaf = nodeOfRank(r) / perLeaf;
    shardOfRank_[static_cast<std::size_t>(r)] = (leaf * shards) / leafCount;
  }
  engines_.clear();
  engines_.resize(static_cast<std::size_t>(shards));
  for (Engine& e : engines_) e.firstRank = -1;
  for (int r = 0; r < ranks_; ++r) {
    Engine& e = engines_[static_cast<std::size_t>(shardOfRank_[
        static_cast<std::size_t>(r)])];
    if (e.firstRank < 0) e.firstRank = r;
    e.endRank = r + 1;
  }
  for (Engine& e : engines_) {
    TIB_ASSERT(e.firstRank >= 0);  // the leaf map is surjective for
                                   // shards <= leafCount
    e.sim = std::make_unique<sim::Simulation>(config_.simBackend,
                                              config_.fiberStackBytes);
    // World-level (not per-shard) rank count decides stack pooling so the
    // policy is identical under every --sim-shards value.
    e.sim->setPooledStacks(ranks_ >= sim::kPooledStacksMinRanks);
    // Process ids ARE global ranks: canonical keys across shards then merge
    // in rank order, matching the single queue's spawn-order tie-break.
    e.sim->enableShardMode(static_cast<std::uint64_t>(e.firstRank));
    e.sim->reserveEvents(static_cast<std::size_t>(e.endRank - e.firstRank) *
                         4);
    scheduler_->addShard(e.sim.get());
  }

  std::vector<sim::Process*> processes;
  processes.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    auto& process = engines_[static_cast<std::size_t>(shardOfRank_[
        static_cast<std::size_t>(r)])].sim->spawn(
        "rank" + std::to_string(r),
        [this, r, &body](sim::Process& p) {
          MpiContext& ctx = *contexts_[static_cast<std::size_t>(r)];
          (void)p;
          body(ctx);
          stats_.rankFinishSeconds[static_cast<std::size_t>(r)] = ctx.now();
        });
    contexts_.push_back(std::unique_ptr<MpiContext>(
        new MpiContext(*this, process, r, nodeOfRank(r))));
    processes.push_back(&process);
  }

  // Seed the virtual global-queue replay with the spawn start events (the
  // legacy engine pushes one per rank before the first dispatch).
  mergedQueueSize_ = static_cast<std::uint64_t>(ranks_);
  mergedQueueHighWater_ = static_cast<std::uint64_t>(ranks_);

  // TIBSIM_SHARD_PROFILE=1 prints a host-side timing split (window vs
  // barrier) to stderr — a tuning aid, never part of the artefacts. The
  // counters themselves now feed EngineStats unconditionally (two clock
  // reads per window barrier, noise next to the merge itself).
  const bool profile = std::getenv("TIBSIM_SHARD_PROFILE") != nullptr;
  double barrierSeconds = 0.0;
  std::uint64_t barrierCalls = 0;
  std::uint64_t barrierSkips = 0;
  shardMergeRecords_ = 0;
  // A barrier with no pending channel ops has nothing another shard can
  // observe: defer the merge and let compute-phase windows batch. The cap
  // bounds the accumulated dispatch-log/op memory between real merges.
  constexpr std::size_t kBarrierBatchRecords = 32768;
  const auto maybeBarrier = [this, &barrierSkips, &barrierCalls] {
    if (pendingChannelOps_ == 0) {
      std::size_t records = 0;
      for (Engine& e : engines_) records += e.sim->dispatchLog().size();
      if (records < kBarrierBatchRecords) {
        ++barrierSkips;
        return;
      }
    }
    ++barrierCalls;
    shardBarrier();
  };
  const auto start = std::chrono::steady_clock::now();  // tibsim-lint: allow(wall-clock)
  const double finalTime = scheduler_->run([&maybeBarrier, &barrierSeconds] {
    const auto t0 = std::chrono::steady_clock::now();  // tibsim-lint: allow(wall-clock)
    maybeBarrier();
    barrierSeconds += secondsSince(t0);
  });
  // Final flush: merge whatever the batching left behind (the drain-time
  // barrier may have skipped) before the stats below are assembled.
  {
    const auto t0 = std::chrono::steady_clock::now();  // tibsim-lint: allow(wall-clock)
    ++barrierCalls;
    shardBarrier();
    barrierSeconds += secondsSince(t0);
  }
  const double hostSeconds = secondsSince(start);
  if (profile) {
    std::uint64_t dispatched = 0;
    for (Engine& e : engines_) dispatched += e.sim->engineStats().eventsDispatched;
    std::fprintf(stderr,
                 "[shard-profile] shards=%d windows=%llu parallel=%llu "
                 "barriers=%llu skipped=%llu barrierS=%.3f hostS=%.3f "
                 "dispatched=%llu\n",
                 shards,
                 static_cast<unsigned long long>(scheduler_->windowsRun()),
                 static_cast<unsigned long long>(
                     scheduler_->parallelWindowsRun()),
                 static_cast<unsigned long long>(barrierCalls),
                 static_cast<unsigned long long>(barrierSkips), barrierSeconds,
                 hostSeconds, static_cast<unsigned long long>(dispatched));
  }

  sim::EngineStats merged;
  merged.simSeconds = finalTime;
  merged.hostSeconds = hostSeconds;
  merged.queueHighWater = static_cast<std::size_t>(mergedQueueHighWater_);
  merged.shardCount = static_cast<std::size_t>(shards);
  merged.shardWindows = scheduler_->windowsRun();
  merged.shardParallelWindows = scheduler_->parallelWindowsRun();
  merged.shardBarrierCalls = barrierCalls;
  merged.shardBarrierSkips = barrierSkips;
  merged.shardMergeRecords = shardMergeRecords_;
  merged.shardBarrierHostSeconds = barrierSeconds;
  for (Engine& e : engines_) {
    const sim::EngineStats es = e.sim->engineStats();
    merged.eventsDispatched += es.eventsDispatched;
    merged.contextSwitches += es.contextSwitches;
    merged.processesSpawned += es.processesSpawned;
    // Every rank is spawned before the first event, so the per-shard peaks
    // are simultaneous and their sum is the global peak (= ranks), exactly
    // what the single queue reports.
    merged.peakLiveProcesses += es.peakLiveProcesses;
    merged.fiberStackBytes =
        std::max(merged.fiberStackBytes, es.fiberStackBytes);
    merged.stackHighWaterBytes =
        std::max(merged.stackHighWaterBytes, es.stackHighWaterBytes);
    stats_.messageCount += e.messageCount;
    stats_.payloadBytes += e.payloadBytes;
  }
  stats_.engine = merged;
  stats_.traceSpansRecorded = tracer_.spansRecorded();
  stats_.traceSpansRetained = tracer_.spansRetained();
  stats_.traceMemoryBytes = tracer_.memoryBytes();

  // World-teardown checkpoint, mirroring the single-queue path: trim the
  // real per-shard pools, trim the canonical models, and serialise the
  // canonical counters (plus order-free per-shard sums). The per-class
  // table comes from worldPoolClass_ — the canonical replay — NOT from
  // summing the per-shard pools, whose donor choices are shard-order-local
  // and would make the serialised table depend on the shard count.
  for (std::size_t s = 0; s < static_cast<std::size_t>(shards); ++s)
    shardPools_[s].trimToHighWater();
  worldPoolCompat_.trimToHighWater();
  worldPoolClass_.trimToHighWater();
  const PayloadPool::Stats& poolStats = worldPoolCompat_.stats();
  stats_.payloadPoolReuses = poolStats.reuses;
  stats_.payloadPoolAllocations = poolStats.allocations;
  stats_.payloadPoolReturns = poolStats.returns;
  stats_.payloadPoolTrimmedBuffers = poolStats.trimmedBuffers;
  stats_.payloadPoolLiveHighWater = poolStats.liveHighWater;
  stats_.payloadPoolClassStats = worldPoolClass_.classStats();
  for (std::size_t s = 0; s < static_cast<std::size_t>(shards); ++s) {
    const PayloadPool::Stats& ps = shardPools_[s].stats();
    stats_.payloadInlineMessages += ps.inlineMessages;
    stats_.payloadPooledMessages += ps.pooledMessages;
  }
  // Per-rank verifier counters fold after the shard threads joined, so the
  // sum is single-threaded and shard-invariant.
  for (const auto& ctx : contexts_)
    stats_.collectiveChecks += ctx->collectiveChecks_;

  for (sim::Process* p : processes) {
    if (p->exception() != nullptr) std::rethrow_exception(p->exception());
  }
  std::size_t live = 0;
  for (Engine& e : engines_) live += e.sim->liveProcessCount();
  TIB_REQUIRE_MSG(live == 0, deadlockMessage(finalTime));

  stats_.wallClockSeconds = *std::max_element(
      stats_.rankFinishSeconds.begin(), stats_.rankFinishSeconds.end());
  stats_.wireBytes = fabric_->totalWireBytes();
  stats_.fabricQueueingSeconds = fabric_->totalQueueingSeconds();
  harvestPathAndLinks();
  return stats_;
}

}  // namespace tibsim::mpi
