#include "tibsim/mpi/payload_pool.hpp"

#include <cstring>

namespace tibsim::mpi {

std::vector<std::byte> PayloadPool::acquire(std::span<const std::byte> data) {
  std::vector<std::byte> buffer;
  if (!free_.empty()) {
    buffer = std::move(free_.back());
    free_.pop_back();
    if (buffer.capacity() >= data.size())
      ++stats_.reuses;
    else
      ++stats_.allocations;  // parked buffer too small: insert reallocates
  } else {
    ++stats_.allocations;
  }
  buffer.clear();
  buffer.insert(buffer.end(), data.begin(), data.end());
  ++outstanding_;
  if (outstanding_ > stats_.liveHighWater) stats_.liveHighWater = outstanding_;
  return buffer;
}

void PayloadPool::release(std::vector<std::byte>&& buffer) {
  if (outstanding_ > 0) --outstanding_;
  if (buffer.capacity() == 0) return;  // nothing worth parking
  ++stats_.returns;
  buffer.clear();
  free_.push_back(std::move(buffer));
}

std::size_t PayloadPool::trimToHighWater() {
  // Peak demand was liveHighWater simultaneous buffers; outstanding_ of
  // those are checked out right now, so any parked surplus beyond the
  // difference can never be needed at once again.
  const std::size_t hwm = static_cast<std::size_t>(stats_.liveHighWater);
  const std::size_t keep = hwm > outstanding_ ? hwm - outstanding_ : 0;
  if (free_.size() <= keep) return 0;
  const std::size_t drop = free_.size() - keep;
  free_.erase(free_.begin(),
              free_.begin() + static_cast<std::ptrdiff_t>(drop));
  stats_.trimmedBuffers += drop;
  return drop;
}

MessagePayload::MessagePayload(std::span<const std::byte> data,
                               PayloadPool& pool) {
  size_ = data.size();
  if (data.empty()) return;
  if (data.size() <= kInlineCapacity) {
    std::memcpy(inline_.data(), data.data(), data.size());
    ++pool.stats_.inlineMessages;
    return;
  }
  buffer_ = pool.acquire(data);
  pooled_ = true;
  ++pool.stats_.pooledMessages;
}

std::vector<std::byte> MessagePayload::intoVector(PayloadPool& pool) {
  std::vector<std::byte> out(view().begin(), view().end());
  if (pooled_) {
    pool.release(std::move(buffer_));
    pooled_ = false;
  }
  size_ = 0;
  return out;
}

}  // namespace tibsim::mpi
