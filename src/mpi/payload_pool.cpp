#include "tibsim/mpi/payload_pool.hpp"

#include <algorithm>
#include <bit>

#include "tibsim/common/assert.hpp"

namespace tibsim::mpi {

// ---------------------------------------------------------------------------
// PayloadPool::CompatModel — the pre-size-class pool, counts only
// ---------------------------------------------------------------------------

std::size_t PayloadPool::CompatModel::acquire(std::size_t bytes) {
  std::size_t capacity = 0;
  if (!freeCaps_.empty()) {
    capacity = freeCaps_.back();
    freeCaps_.pop_back();
    if (capacity >= bytes) {
      ++stats_.reuses;
    } else {
      // The legacy pool cleared the vector before reserving, so libstdc++
      // grew it to exactly the requested size — not geometrically.
      ++stats_.allocations;
      capacity = bytes;
    }
  } else {
    ++stats_.allocations;
    capacity = bytes;
  }
  ++outstanding_;
  stats_.liveHighWater =
      std::max<std::uint64_t>(stats_.liveHighWater, outstanding_);
  return capacity;
}

void PayloadPool::CompatModel::release(std::size_t capacity) {
  if (outstanding_ > 0) --outstanding_;
  if (capacity == 0) return;  // nothing worth parking
  ++stats_.returns;
  freeCaps_.push_back(capacity);
}

std::size_t PayloadPool::CompatModel::trimToHighWater() {
  // Peak demand was liveHighWater simultaneous buffers; outstanding_ of
  // those are checked out right now, so any parked surplus beyond the
  // difference can never be needed at once again.
  const std::size_t highWater = static_cast<std::size_t>(stats_.liveHighWater);
  const std::size_t keep =
      highWater > outstanding_ ? highWater - outstanding_ : 0;
  if (freeCaps_.size() <= keep) return 0;
  const std::size_t drop = freeCaps_.size() - keep;
  // Oldest (coldest) capacities sit at the front of the LIFO.
  freeCaps_.erase(freeCaps_.begin(),
                  freeCaps_.begin() + static_cast<std::ptrdiff_t>(drop));
  stats_.trimmedBuffers += drop;
  return drop;
}

// ---------------------------------------------------------------------------
// PayloadPool::ClassModel — the size-classed pool, capacities only
// ---------------------------------------------------------------------------
// Every branch below mirrors the corresponding branch of PayloadPool::
// acquire/release/trimToHighWater exactly; the equivalence holds because
// buffer capacities are always rounded up to a class size, so classIndex of
// a capacity recovers the class a real buffer would park in.

void PayloadPool::ClassModel::ensureClass(std::size_t index) {
  if (index < freeCaps_.size()) return;
  freeCaps_.resize(index + 1);
  classStats_.resize(index + 1);
  for (std::size_t c = kMinClassIndex; c < classStats_.size(); ++c)
    classStats_[c].classBytes = classBytes(c);
}

std::size_t PayloadPool::ClassModel::acquire(std::size_t bytes) {
  const std::size_t cls = classIndex(bytes);
  ensureClass(cls);
  ++classStats_[cls].acquires;

  std::size_t capacity = 0;
  if (freeTotal_ > 0) {
    // Donor selection identical to the real pool: own class, smallest
    // larger class, largest smaller class.
    std::size_t donor = cls;
    if (freeCaps_[donor].empty()) {
      donor = freeCaps_.size();
      for (std::size_t c = cls + 1; c < freeCaps_.size(); ++c) {
        if (!freeCaps_[c].empty()) {
          donor = c;
          break;
        }
      }
      if (donor == freeCaps_.size()) {
        for (std::size_t c = cls; c-- > 0;) {
          if (!freeCaps_[c].empty()) {
            donor = c;
            break;
          }
        }
      }
    }
    TIB_ASSERT(donor < freeCaps_.size() && !freeCaps_[donor].empty());
    capacity = freeCaps_[donor].back();
    freeCaps_[donor].pop_back();
    --freeTotal_;
    if (capacity >= bytes)
      ++classStats_[cls].reuses;
    else
      ++classStats_[cls].allocations;
  } else {
    ++classStats_[cls].allocations;
  }
  // The real pool reserves up to the class size (reserve() allocates
  // exactly, never geometrically), so the resulting capacity is the donor's
  // capacity or the class size, whichever is larger.
  if (capacity < classBytes(cls)) capacity = classBytes(cls);

  ++outstanding_;
  liveHighWater_ = std::max(liveHighWater_, outstanding_);
  return capacity;
}

void PayloadPool::ClassModel::release(std::size_t capacity) {
  if (outstanding_ > 0) --outstanding_;
  if (capacity == 0) return;
  const std::size_t cls = classIndex(capacity);
  ensureClass(cls);
  freeCaps_[cls].push_back(capacity);
  ++freeTotal_;
  ++classStats_[cls].parked;
}

std::size_t PayloadPool::ClassModel::trimToHighWater() {
  const std::size_t keep =
      liveHighWater_ > outstanding_ ? liveHighWater_ - outstanding_ : 0;
  std::size_t dropped = 0;
  for (std::size_t c = kMinClassIndex;
       c < freeCaps_.size() && freeTotal_ > keep; ++c) {
    auto& list = freeCaps_[c];
    while (!list.empty() && freeTotal_ > keep) {
      list.erase(list.begin());
      --freeTotal_;
      ++dropped;
    }
  }
  return dropped;
}

void PayloadPool::ClassModel::resetStats() {
  liveHighWater_ = outstanding_;
  for (auto& cs : classStats_) {
    const std::size_t bytes = cs.classBytes;
    cs = ClassStats{};
    cs.classBytes = bytes;
  }
}

// ---------------------------------------------------------------------------
// PayloadPool — the size-classed pool that actually holds memory
// ---------------------------------------------------------------------------

std::size_t PayloadPool::classIndex(std::size_t bytes) {
  const std::size_t width = static_cast<std::size_t>(
      std::bit_width(std::max<std::size_t>(bytes, 2) - 1));
  return std::max(width, kMinClassIndex);
}

void PayloadPool::ensureClass(std::size_t index) {
  if (index < free_.size()) return;
  free_.resize(index + 1);
  classStats_.resize(index + 1);
  for (std::size_t c = kMinClassIndex; c < classStats_.size(); ++c)
    classStats_[c].classBytes = classBytes(c);
}

std::uint32_t PayloadPool::mintTicket(std::size_t compatCap) {
  if (freeTickets_.empty()) {
    ticketCaps_.push_back(compatCap);
    return static_cast<std::uint32_t>(ticketCaps_.size() - 1);
  }
  const std::uint32_t ticket = freeTickets_.back();
  freeTickets_.pop_back();
  ticketCaps_[ticket] = compatCap;
  return ticket;
}

std::vector<std::byte> PayloadPool::acquire(std::span<const std::byte> data,
                                            std::uint32_t& ticket) {
  const std::size_t bytes = data.size();
  const std::size_t cls = classIndex(bytes);
  ensureClass(cls);
  ++classStats_[cls].acquires;

  std::vector<std::byte> buffer;
  if (freeTotal_ > 0) {
    // Best fit: own class, else the smallest larger class (its buffer
    // already fits), else the largest smaller class (the reserve below
    // grows it — still cheaper than leaving warm memory parked while the
    // allocator is hit for a brand-new buffer).
    std::size_t donor = cls;
    if (free_[donor].empty()) {
      donor = free_.size();
      for (std::size_t c = cls + 1; c < free_.size(); ++c) {
        if (!free_[c].empty()) {
          donor = c;
          break;
        }
      }
      if (donor == free_.size()) {
        for (std::size_t c = cls; c-- > 0;) {
          if (!free_[c].empty()) {
            donor = c;
            break;
          }
        }
      }
    }
    TIB_ASSERT(donor < free_.size() && !free_[donor].empty());
    buffer = std::move(free_[donor].back());
    free_[donor].pop_back();
    --freeTotal_;
    if (buffer.capacity() >= bytes)
      ++classStats_[cls].reuses;
    else
      ++classStats_[cls].allocations;
  } else {
    ++classStats_[cls].allocations;
  }

  if (buffer.capacity() < classBytes(cls)) buffer.reserve(classBytes(cls));
  buffer.clear();
  buffer.insert(buffer.end(), data.begin(), data.end());

  ++outstanding_;
  liveHighWater_ = std::max(liveHighWater_, outstanding_);
  ticket = compatEnabled_ ? mintTicket(compat_.acquire(bytes)) : kNoTicket;
  return buffer;
}

void PayloadPool::release(std::vector<std::byte>&& buffer,
                          std::uint32_t ticket) {
  if (outstanding_ > 0) --outstanding_;
  if (compatEnabled_ && ticket != kNoTicket) {
    compat_.release(ticketCaps_[ticket]);
    freeTickets_.push_back(ticket);
  }
  if (buffer.capacity() == 0) return;
  // Capacities are rounded up to a class size on acquire, so this maps the
  // buffer straight back to the class it was reserved for (or the larger
  // donor class whose capacity it kept).
  const std::size_t cls = classIndex(buffer.capacity());
  ensureClass(cls);
  buffer.clear();
  free_[cls].push_back(std::move(buffer));
  ++freeTotal_;
  ++classStats_[cls].parked;
}

std::size_t PayloadPool::trimToHighWater() {
  const std::size_t keep =
      liveHighWater_ > outstanding_ ? liveHighWater_ - outstanding_ : 0;
  std::size_t dropped = 0;
  // Drop the smallest classes' coldest (oldest, front-of-list) buffers
  // first: the large classes hold the buffers that are expensive to
  // re-create, so they are the last to go.
  for (std::size_t c = kMinClassIndex; c < free_.size() && freeTotal_ > keep;
       ++c) {
    auto& list = free_[c];
    while (!list.empty() && freeTotal_ > keep) {
      list.erase(list.begin());
      --freeTotal_;
      ++dropped;
    }
  }
  if (compatEnabled_) compat_.trimToHighWater();
  return dropped;
}

void PayloadPool::resetStats() {
  compat_.resetStats();
  liveHighWater_ = outstanding_;
  for (auto& cs : classStats_) {
    const std::size_t bytes = cs.classBytes;
    cs = ClassStats{};
    cs.classBytes = bytes;
  }
}

// ---------------------------------------------------------------------------
// MessagePayload
// ---------------------------------------------------------------------------

MessagePayload::MessagePayload(std::span<const std::byte> data,
                               PayloadPool& pool)
    : size_(data.size()) {
  if (data.empty()) return;  // empty payloads count as neither kind
  if (size_ <= kInlineCapacity) {
    std::memcpy(inline_.data(), data.data(), size_);
    pool.noteInlineMessage();
    return;
  }
  buffer_ = pool.acquire(data, ticket_);
  pooled_ = true;
  pool.notePooledMessage();
}

std::vector<std::byte> MessagePayload::intoVector(PayloadPool& pool) {
  std::vector<std::byte> out(view().begin(), view().end());
  if (pooled_) {
    pool.release(std::move(buffer_),
                 std::exchange(ticket_, PayloadPool::kNoTicket));
    pooled_ = false;
  }
  size_ = 0;
  return out;
}

}  // namespace tibsim::mpi
