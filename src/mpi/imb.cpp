#include "tibsim/mpi/imb.hpp"

#include "tibsim/common/assert.hpp"

namespace tibsim::mpi::imb {

namespace {
Result makeResult(std::size_t bytes, double perOpSeconds) {
  Result r;
  r.bytes = bytes;
  r.seconds = perOpSeconds;
  r.bandwidthBytesPerS =
      perOpSeconds > 0.0 ? static_cast<double>(bytes) / perOpSeconds : 0.0;
  return r;
}
}  // namespace

std::vector<std::size_t> messageSizes(std::size_t maxBytes) {
  std::vector<std::size_t> sizes = {0};
  for (std::size_t s = 1; s <= maxBytes; s *= 2) sizes.push_back(s);
  return sizes;
}

std::vector<Result> pingPong(const WorldConfig& config,
                             const std::vector<std::size_t>& sizes,
                             int repetitions, const StatsHook& hook) {
  TIB_REQUIRE(repetitions >= 1);
  std::vector<Result> results;
  for (std::size_t bytes : sizes) {
    MpiWorld world(config, 2);
    const WorldStats stats =
        world.run([bytes, repetitions](MpiContext& ctx) {
          for (int i = 0; i < repetitions; ++i) {
            if (ctx.rank() == 0) {
              ctx.send(1, 1, bytes);
              ctx.recv(1, 2);
            } else {
              ctx.recv(0, 1);
              ctx.send(0, 2, bytes);
            }
          }
        });
    if (hook) hook(stats);
    results.push_back(makeResult(
        bytes, stats.wallClockSeconds / (2.0 * repetitions)));
  }
  return results;
}

std::vector<Result> pingPing(const WorldConfig& config,
                             const std::vector<std::size_t>& sizes,
                             int repetitions, const StatsHook& hook) {
  TIB_REQUIRE(repetitions >= 1);
  std::vector<Result> results;
  for (std::size_t bytes : sizes) {
    MpiWorld world(config, 2);
    const WorldStats stats =
        world.run([bytes, repetitions](MpiContext& ctx) {
          const int peer = 1 - ctx.rank();
          for (int i = 0; i < repetitions; ++i) {
            // Both sides send concurrently, then receive.
            const auto req = ctx.irecv(peer, 3);
            ctx.isend(peer, 3, bytes);
            ctx.wait(req);
          }
        });
    if (hook) hook(stats);
    results.push_back(
        makeResult(bytes, stats.wallClockSeconds / repetitions));
  }
  return results;
}

std::vector<Result> exchange(const WorldConfig& config, int ranks,
                             const std::vector<std::size_t>& sizes,
                             int repetitions, const StatsHook& hook) {
  TIB_REQUIRE(ranks >= 2 && repetitions >= 1);
  std::vector<Result> results;
  for (std::size_t bytes : sizes) {
    MpiWorld world(config, ranks);
    const WorldStats stats =
        world.run([bytes, repetitions](MpiContext& ctx) {
          for (int i = 0; i < repetitions; ++i)
            ctx.neighborExchange(bytes, 4);
        });
    if (hook) hook(stats);
    results.push_back(
        makeResult(bytes, stats.wallClockSeconds / repetitions));
  }
  return results;
}

std::vector<Result> allreduce(const WorldConfig& config, int ranks,
                              const std::vector<std::size_t>& sizes,
                              int repetitions, const StatsHook& hook) {
  TIB_REQUIRE(ranks >= 2 && repetitions >= 1);
  std::vector<Result> results;
  for (std::size_t bytes : sizes) {
    const std::size_t elements = std::max<std::size_t>(1, bytes / 8);
    MpiWorld world(config, ranks);
    const WorldStats stats =
        world.run([elements, repetitions](MpiContext& ctx) {
          const std::vector<double> values(elements, 1.0);
          for (int i = 0; i < repetitions; ++i) ctx.allreduceSum(values);
        });
    if (hook) hook(stats);
    results.push_back(
        makeResult(elements * 8, stats.wallClockSeconds / repetitions));
  }
  return results;
}

std::vector<Result> bcast(const WorldConfig& config, int ranks,
                          const std::vector<std::size_t>& sizes,
                          int repetitions, const StatsHook& hook) {
  TIB_REQUIRE(ranks >= 2 && repetitions >= 1);
  std::vector<Result> results;
  for (std::size_t bytes : sizes) {
    MpiWorld world(config, ranks);
    const WorldStats stats =
        world.run([bytes, repetitions](MpiContext& ctx) {
          for (int i = 0; i < repetitions; ++i) ctx.bcastBytes(bytes, 0);
        });
    if (hook) hook(stats);
    results.push_back(
        makeResult(bytes, stats.wallClockSeconds / repetitions));
  }
  return results;
}

Result barrier(const WorldConfig& config, int ranks, int repetitions,
               const StatsHook& hook) {
  TIB_REQUIRE(ranks >= 2 && repetitions >= 1);
  MpiWorld world(config, ranks);
  const WorldStats stats = world.run([repetitions](MpiContext& ctx) {
    for (int i = 0; i < repetitions; ++i) ctx.barrier();
  });
  if (hook) hook(stats);
  return makeResult(0, stats.wallClockSeconds / repetitions);
}

}  // namespace tibsim::mpi::imb
