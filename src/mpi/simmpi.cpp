#include "tibsim/mpi/simmpi.hpp"

#include <algorithm>
#include <cstring>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"

namespace tibsim::mpi {

using perfmodel::AccessPattern;

WorldConfig WorldConfig::tibidaboNode() {
  WorldConfig cfg;
  cfg.platform = arch::PlatformRegistry::tegra2();
  cfg.frequencyHz = cfg.platform.maxFrequencyHz();
  cfg.protocol = net::Protocol::TcpIp;
  cfg.ranksPerNode = 2;  // one MPI rank per Cortex-A9 core
  cfg.topology.nodesPerLeafSwitch = 32;
  cfg.topology.linkRateBytesPerS = units::gbps(1.0);
  cfg.topology.bisectionBytesPerS = units::gbps(8.0);
  return cfg;
}

// ---------------------------------------------------------------------------
// MpiContext
// ---------------------------------------------------------------------------

MpiContext::MpiContext(MpiWorld& world, sim::Process& process, int rank,
                       int node)
    : world_(world), process_(process), rank_(rank), node_(node) {}

int MpiContext::size() const { return world_.ranks(); }

double MpiContext::now() const { return process_.now(); }

void MpiContext::compute(const perfmodel::WorkProfile& work) {
  const double seconds = world_.execModel_.time(
      world_.platform(), work, world_.frequencyHz(), /*cores=*/1);
  world_.stats_.totalFlops += work.flops;
  world_.stats_.totalDramBytes += work.bytes;
  world_.stats_.nodeBusySeconds[static_cast<std::size_t>(node_)] += seconds;
  const double begin = now();
  process_.delay(seconds);
  world_.traceSpan(rank_, SpanKind::Compute, begin, now());
}

void MpiContext::computeSeconds(double seconds) {
  TIB_REQUIRE(seconds >= 0.0);
  world_.stats_.nodeBusySeconds[static_cast<std::size_t>(node_)] += seconds;
  const double begin = now();
  process_.delay(seconds);
  world_.traceSpan(rank_, SpanKind::Compute, begin, now());
}

void MpiContext::send(int dst, int tag, std::size_t bytes,
                      std::span<const std::byte> payload) {
  world_.doSend(*this, dst, tag, bytes, payload);
}

void MpiContext::sendDoubles(int dst, int tag,
                             std::span<const double> values) {
  send(dst, tag, values.size_bytes(),
       std::as_bytes(values));
}

std::vector<std::byte> MpiContext::recv(int src, int tag,
                                        std::size_t* receivedBytes) {
  return world_.doRecv(*this, src, tag, receivedBytes);
}

std::vector<double> MpiContext::recvDoubles(int src, int tag) {
  const std::vector<std::byte> raw = recv(src, tag);
  std::vector<double> values(raw.size() / sizeof(double));
  if (!values.empty())
    std::memcpy(values.data(), raw.data(), values.size() * sizeof(double));
  return values;
}

MpiContext::Request MpiContext::isend(int dst, int tag, std::size_t bytes,
                                      std::span<const std::byte> payload) {
  // Eager buffered send: costs are charged now, delivery proceeds in the
  // background; rendezvous is suppressed so the caller never blocks.
  world_.doSend(*this, dst, tag, bytes, payload, /*allowRendezvous=*/false);
  const Request request = nextRequest_++;
  pending_.emplace(request, PendingOp{false, dst, tag});
  return request;
}

MpiContext::Request MpiContext::irecv(int src, int tag) {
  const Request request = nextRequest_++;
  pending_.emplace(request, PendingOp{true, src, tag});
  return request;
}

std::vector<std::byte> MpiContext::wait(Request request,
                                        std::size_t* receivedBytes) {
  const auto it = pending_.find(request);
  TIB_REQUIRE_MSG(it != pending_.end(), "unknown or already-waited request");
  const PendingOp op = it->second;
  pending_.erase(it);
  if (!op.isRecv) return {};  // isend completed at initiation
  return world_.doRecv(*this, op.peer, op.tag, receivedBytes);
}

void MpiContext::waitall(std::span<const Request> requests) {
  for (Request r : requests) wait(r);
}

void MpiContext::sendrecv(int peer, int tag, std::size_t sendBytes,
                          std::size_t* recvBytes) {
  TIB_REQUIRE(peer != rank_);
  // Rank-ordered exchange: lower rank sends first. Safe for both eager and
  // rendezvous messages (the classic deadlock-free pairing).
  if (rank_ < peer) {
    send(peer, tag, sendBytes);
    recv(peer, tag, recvBytes);
  } else {
    recv(peer, tag, recvBytes);
    send(peer, tag, sendBytes);
  }
}

// ---------------------------------------------------------------------------
// MpiWorld
// ---------------------------------------------------------------------------

MpiWorld::MpiWorld(WorldConfig config, int ranks)
    : config_(std::move(config)), ranks_(ranks) {
  TIB_REQUIRE(ranks_ >= 1);
  TIB_REQUIRE(config_.ranksPerNode >= 1 &&
              config_.ranksPerNode <= config_.platform.soc.cores);
  nodes_ = (ranks_ + config_.ranksPerNode - 1) / config_.ranksPerNode;
  frequencyHz_ = config_.frequencyHz > 0.0 ? config_.frequencyHz
                                           : config_.platform.maxFrequencyHz();
  protocol_ = std::make_unique<net::ProtocolModel>(
      config_.protocol, config_.platform, frequencyHz_);
}

MpiWorld::~MpiWorld() = default;

void MpiWorld::chargeCpu(int node, double seconds) {
  stats_.nodeBusySeconds[static_cast<std::size_t>(node)] += seconds;
  stats_.nodeCommCpuSeconds[static_cast<std::size_t>(node)] += seconds;
}

void MpiWorld::traceSpan(int rank, SpanKind kind, double begin, double end,
                         int peer, std::size_t bytes) {
  if (!tracing_) return;
  tracer_.record(TraceSpan{rank, kind, begin, end, peer, bytes});
}

void MpiWorld::doSend(MpiContext& ctx, int dst, int tag, std::size_t bytes,
                      std::span<const std::byte> payload,
                      bool allowRendezvous) {
  TIB_REQUIRE(dst >= 0 && dst < ranks_);
  TIB_REQUIRE(dst != ctx.rank());
  ++stats_.messageCount;
  stats_.payloadBytes += static_cast<double>(bytes);

  std::vector<std::byte> copy(payload.begin(), payload.end());
  const int srcNode = ctx.node();
  const int dstNode = nodeOfRank(dst);

  const double sendBegin = sim_->now();
  if (srcNode == dstNode) {
    // Shared-memory path: one copy in, one copy out, no NIC.
    const double copyBw = 0.5 * execModel_.achievableBandwidth(
                                    platform(), AccessPattern::Streaming, 1,
                                    frequencyHz_);
    const double side = 0.3e-6 + static_cast<double>(bytes) / copyBw;
    chargeCpu(srcNode, side);
    ctx.process_.delay(side);
    traceSpan(ctx.rank(), SpanKind::Send, sendBegin, sim_->now(), dst,
              bytes);
    Message msg{ctx.rank(), tag, bytes, std::move(copy), Stage::Delivered,
                side, nullptr, nextMessageId_++};
    const int dstRank = dst;
    auto deliverLocal = [this, dstRank, m = std::move(msg)]() mutable {
      deliver(dstRank, std::move(m));
    };
    sim_->scheduleIn(0.2e-6, std::move(deliverLocal));
    return;
  }

  net::MessageCosts costs = protocol_->messageCosts(bytes);
  if (!allowRendezvous) costs.rendezvous = false;

  if (!costs.rendezvous) {
    // Eager: pay the sender stack, put the bytes on the wire, return.
    chargeCpu(srcNode, costs.senderSeconds);
    ctx.process_.delay(costs.senderSeconds);
    traceSpan(ctx.rank(), SpanKind::Send, sendBegin, sim_->now(), dst,
              bytes);
    const double wireBytes =
        costs.wireSeconds * platform().nicLinkRateBytesPerS;
    const double arrival =
        fabric_->scheduleWire(srcNode, dstNode, wireBytes, sim_->now());
    Message msg{ctx.rank(), tag, bytes, std::move(copy), Stage::Delivered,
                costs.receiverSeconds, nullptr, nextMessageId_++};
    sim_->scheduleAt(arrival, [this, dst, m = std::move(msg)]() mutable {
      deliver(dst, std::move(m));
    });
    return;
  }

  // Rendezvous (Open-MX >= 32 KiB): send RTS, block until the CTS wakes us,
  // then stream the data with zero-copy send semantics.
  const net::MessageCosts rts = protocol_->messageCosts(0);
  chargeCpu(srcNode, rts.senderSeconds);
  ctx.process_.delay(rts.senderSeconds);
  const double rtsArrival =
      fabric_->scheduleWire(srcNode, dstNode, 84.0, sim_->now());
  Message msg{ctx.rank(), tag, bytes, std::move(copy), Stage::RtsPending,
              costs.receiverSeconds, &ctx.process_, nextMessageId_++};
  const std::uint64_t id = msg.id;
  sim_->scheduleAt(rtsArrival, [this, dst, m = std::move(msg)]() mutable {
    deliver(dst, std::move(m));
  });
  ctx.process_.suspend();  // woken by the receiver's CTS

  // CTS received: stream the payload.
  chargeCpu(srcNode, costs.senderSeconds);
  ctx.process_.delay(costs.senderSeconds);
  const double wireBytes = costs.wireSeconds * platform().nicLinkRateBytesPerS;
  const double dataArrival =
      fabric_->scheduleWire(srcNode, dstNode, wireBytes, sim_->now());
  traceSpan(ctx.rank(), SpanKind::Send, sendBegin, sim_->now(), dst, bytes);
  sim_->scheduleAt(dataArrival, [this, dst, id] {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
    for (auto& m : box.messages) {
      if (m.id == id) {
        m.stage = Stage::Delivered;
        break;
      }
    }
    if (box.waiting) {
      box.waiting = false;
      sim_->resume(*box.waiter);
    }
  });
}

void MpiWorld::deliver(int dstRank, Message message) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dstRank)];
  box.messages.push_back(std::move(message));
  if (box.waiting && box.messages.back().src == box.waitSrc &&
      box.messages.back().tag == box.waitTag) {
    box.waiting = false;
    sim_->resume(*box.waiter);
  }
}

std::vector<std::byte> MpiWorld::doRecv(MpiContext& ctx, int src, int tag,
                                        std::size_t* receivedBytes) {
  TIB_REQUIRE(src >= 0 && src < ranks_);
  TIB_REQUIRE(src != ctx.rank());
  Mailbox& box = mailboxes_[static_cast<std::size_t>(ctx.rank())];
  const double recvEntry = sim_->now();

  while (true) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      if (it->src != src || it->tag != tag) continue;
      if (it->stage == Stage::Delivered) {
        Message msg = std::move(*it);
        box.messages.erase(it);
        traceSpan(ctx.rank(), SpanKind::Wait, recvEntry, sim_->now(), src);
        const double cpuBegin = sim_->now();
        chargeCpu(ctx.node(), msg.receiverCost);
        ctx.process_.delay(msg.receiverCost);
        traceSpan(ctx.rank(), SpanKind::Recv, cpuBegin, sim_->now(), src,
                  msg.bytes);
        if (receivedBytes != nullptr) *receivedBytes = msg.bytes;
        return std::move(msg.payload);
      }
      if (it->stage == Stage::RtsPending) {
        // Matched a rendezvous request: return a CTS and wait for the data.
        it->stage = Stage::AwaitingData;
        sim::Process* sender = it->sender;  // before delay(): the yield may
                                            // grow the deque and invalidate it
        const net::MessageCosts cts = protocol_->messageCosts(0);
        chargeCpu(ctx.node(), cts.senderSeconds);
        ctx.process_.delay(cts.senderSeconds);
        const double ctsArrival = fabric_->scheduleWire(
            ctx.node(), nodeOfRank(src), 84.0, sim_->now());
        sim_->scheduleAt(ctsArrival, [this, sender] {
          sim_->resume(*sender);
        });
        break;  // fall through to waiting for the data-arrival wake-up
      }
      // AwaitingData: the exchange is in flight; keep waiting.
      break;
    }
    box.waiting = true;
    box.waitSrc = src;
    box.waitTag = tag;
    box.waiter = &ctx.process_;
    ctx.process_.suspend();
    box.waiting = false;
  }
}

WorldStats MpiWorld::run(const RankBody& body) {
  sim_ = std::make_unique<sim::Simulation>(config_.simBackend,
                                           config_.fiberStackBytes);
  // Roughly eager-send + wake-up per rank in flight at any moment.
  sim_->reserveEvents(static_cast<std::size_t>(ranks_) * 4);
  net::TopologySpec topo = config_.topology;
  topo.nodes = nodes_;
  fabric_ = std::make_unique<net::Fabric>(topo);
  mailboxes_.assign(static_cast<std::size_t>(ranks_), Mailbox{});
  contexts_.clear();
  stats_ = WorldStats{};
  stats_.nodes = nodes_;
  stats_.rankFinishSeconds.assign(static_cast<std::size_t>(ranks_), 0.0);
  stats_.nodeBusySeconds.assign(static_cast<std::size_t>(nodes_), 0.0);
  stats_.nodeCommCpuSeconds.assign(static_cast<std::size_t>(nodes_), 0.0);

  std::vector<sim::Process*> processes;
  processes.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    auto& process = sim_->spawn(
        "rank" + std::to_string(r),
        [this, r, &body](sim::Process& p) {
          MpiContext& ctx = *contexts_[static_cast<std::size_t>(r)];
          (void)p;
          body(ctx);
          stats_.rankFinishSeconds[static_cast<std::size_t>(r)] = ctx.now();
        });
    contexts_.push_back(std::unique_ptr<MpiContext>(
        new MpiContext(*this, process, r, nodeOfRank(r))));
    processes.push_back(&process);
  }

  sim_->run();
  stats_.engine = sim_->engineStats();
  stats_.traceSpansRecorded = tracer_.spansRecorded();
  stats_.traceSpansRetained = tracer_.spansRetained();
  stats_.traceMemoryBytes = tracer_.memoryBytes();

  for (sim::Process* p : processes) {
    if (p->exception() != nullptr) std::rethrow_exception(p->exception());
  }
  TIB_REQUIRE_MSG(sim_->liveProcessCount() == 0,
                  "simMPI deadlock: ranks still blocked after event queue "
                  "drained");

  stats_.wallClockSeconds = *std::max_element(
      stats_.rankFinishSeconds.begin(), stats_.rankFinishSeconds.end());
  stats_.wireBytes = fabric_->totalWireBytes();
  stats_.fabricQueueingSeconds = fabric_->totalQueueingSeconds();
  return stats_;
}

}  // namespace tibsim::mpi
