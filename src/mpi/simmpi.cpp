#include "tibsim/mpi/simmpi.hpp"

#include <algorithm>
#include <cstring>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"

namespace tibsim::mpi {

using perfmodel::AccessPattern;

WorldConfig WorldConfig::tibidaboNode() {
  WorldConfig cfg;
  cfg.platform = arch::PlatformRegistry::tegra2();
  cfg.frequencyHz = cfg.platform.maxFrequencyHz();
  cfg.protocol = net::Protocol::TcpIp;
  cfg.ranksPerNode = 2;  // one MPI rank per Cortex-A9 core
  cfg.topology.nodesPerLeafSwitch = 32;
  cfg.topology.linkRateBytesPerS = units::gbps(1.0);
  cfg.topology.bisectionBytesPerS = units::gbps(8.0);
  return cfg;
}

// ---------------------------------------------------------------------------
// MpiContext
// ---------------------------------------------------------------------------

MpiContext::MpiContext(MpiWorld& world, sim::Process& process, int rank,
                       int node)
    : world_(world), process_(process), rank_(rank), node_(node) {}

int MpiContext::size() const { return world_.ranks(); }

double MpiContext::now() const { return process_.now(); }

void MpiContext::compute(const perfmodel::WorkProfile& work) {
  const double seconds = world_.execModel_.time(
      world_.platform(), work, world_.frequencyHz(), /*cores=*/1);
  world_.stats_.totalFlops += work.flops;
  world_.stats_.totalDramBytes += work.bytes;
  world_.stats_.nodeBusySeconds[static_cast<std::size_t>(node_)] += seconds;
  const double begin = now();
  process_.delay(seconds);
  world_.traceSpan(rank_, SpanKind::Compute, begin, now());
}

void MpiContext::computeSeconds(double seconds) {
  TIB_REQUIRE(seconds >= 0.0);
  world_.stats_.nodeBusySeconds[static_cast<std::size_t>(node_)] += seconds;
  const double begin = now();
  process_.delay(seconds);
  world_.traceSpan(rank_, SpanKind::Compute, begin, now());
}

void MpiContext::send(int dst, int tag, std::size_t bytes,
                      std::span<const std::byte> payload) {
  world_.doSend(*this, dst, tag, bytes, payload);
}

void MpiContext::sendDoubles(int dst, int tag,
                             std::span<const double> values) {
  send(dst, tag, values.size_bytes(),
       std::as_bytes(values));
}

std::vector<std::byte> MpiContext::recv(int src, int tag,
                                        std::size_t* receivedBytes) {
  return world_.doRecv(*this, src, tag, receivedBytes);
}

std::vector<double> MpiContext::recvDoubles(int src, int tag) {
  const std::vector<std::byte> raw = recv(src, tag);
  TIB_REQUIRE_MSG(raw.size() % sizeof(double) == 0,
                  "recvDoubles: payload size is not a multiple of "
                  "sizeof(double) — sender did not use sendDoubles");
  std::vector<double> values(raw.size() / sizeof(double));
  if (!values.empty())
    std::memcpy(values.data(), raw.data(), values.size() * sizeof(double));
  return values;
}

MpiContext::Request MpiContext::isend(int dst, int tag, std::size_t bytes,
                                      std::span<const std::byte> payload) {
  // Eager buffered send: costs are charged now, delivery proceeds in the
  // background; rendezvous is suppressed so the caller never blocks.
  world_.doSend(*this, dst, tag, bytes, payload, /*allowRendezvous=*/false);
  const Request request = nextRequest_++;
  pending_.push_back(PendingOp{request, false, dst, tag});
  return request;
}

MpiContext::Request MpiContext::irecv(int src, int tag) {
  const Request request = nextRequest_++;
  pending_.push_back(PendingOp{request, true, src, tag});
  return request;
}

std::vector<std::byte> MpiContext::wait(Request request,
                                        std::size_t* receivedBytes) {
  auto it = pending_.begin();
  while (it != pending_.end() && it->request != request) ++it;
  TIB_REQUIRE_MSG(it != pending_.end(), "unknown or already-waited request");
  const PendingOp op = *it;
  *it = pending_.back();
  pending_.pop_back();
  if (!op.isRecv) return {};  // isend completed at initiation
  return world_.doRecv(*this, op.peer, op.tag, receivedBytes);
}

void MpiContext::waitall(std::span<const Request> requests) {
  for (Request r : requests) wait(r);
}

void MpiContext::sendrecv(int peer, int tag, std::size_t sendBytes,
                          std::size_t* recvBytes) {
  TIB_REQUIRE(peer != rank_);
  // Rank-ordered exchange: lower rank sends first. Safe for both eager and
  // rendezvous messages (the classic deadlock-free pairing).
  if (rank_ < peer) {
    send(peer, tag, sendBytes);
    recv(peer, tag, recvBytes);
  } else {
    recv(peer, tag, recvBytes);
    send(peer, tag, sendBytes);
  }
}

// ---------------------------------------------------------------------------
// MpiWorld
// ---------------------------------------------------------------------------

MpiWorld::MpiWorld(WorldConfig config, int ranks)
    : config_(std::move(config)), ranks_(ranks) {
  TIB_REQUIRE(ranks_ >= 1);
  TIB_REQUIRE(config_.ranksPerNode >= 1 &&
              config_.ranksPerNode <= config_.platform.soc.cores);
  nodes_ = (ranks_ + config_.ranksPerNode - 1) / config_.ranksPerNode;
  frequencyHz_ = config_.frequencyHz > 0.0 ? config_.frequencyHz
                                           : config_.platform.maxFrequencyHz();
  protocol_ = std::make_unique<net::ProtocolModel>(
      config_.protocol, config_.platform, frequencyHz_);
  // Pure function of per-world constants; hoisted out of the per-send
  // shared-memory path.
  sameNodeCopyBandwidth_ = 0.5 * execModel_.achievableBandwidth(
                                     platform(), AccessPattern::Streaming, 1,
                                     frequencyHz_);
}

MpiWorld::~MpiWorld() = default;

void MpiWorld::chargeCpu(int node, double seconds) {
  stats_.nodeBusySeconds[static_cast<std::size_t>(node)] += seconds;
  stats_.nodeCommCpuSeconds[static_cast<std::size_t>(node)] += seconds;
}

void MpiWorld::traceSpan(int rank, SpanKind kind, double begin, double end,
                         int peer, std::size_t bytes) {
  if (!tracing_) return;
  tracer_.record(TraceSpan{rank, kind, begin, end, peer, bytes});
}

void MpiWorld::doSend(MpiContext& ctx, int dst, int tag, std::size_t bytes,
                      std::span<const std::byte> payload,
                      bool allowRendezvous) {
  TIB_REQUIRE(dst >= 0 && dst < ranks_);
  TIB_REQUIRE(dst != ctx.rank());
  ++stats_.messageCount;
  stats_.payloadBytes += static_cast<double>(bytes);

  // Small payloads ride inline in the Message; larger ones borrow a warm
  // buffer from the world's pool (recycled by doRecv/wait), so a
  // steady-state send performs no heap allocation.
  MessagePayload copy(payload, pool_);
  const int srcNode = ctx.node();
  const int dstNode = nodeOfRank(dst);

  const double sendBegin = sim_->now();
  if (srcNode == dstNode) {
    // Shared-memory path: one copy in, one copy out, no NIC.
    const double side =
        0.3e-6 + static_cast<double>(bytes) / sameNodeCopyBandwidth_;
    chargeCpu(srcNode, side);
    ctx.process_.delay(side);
    traceSpan(ctx.rank(), SpanKind::Send, sendBegin, sim_->now(), dst,
              bytes);
    const std::uint32_t slot =
        stashInflight(Message{ctx.rank(), tag, bytes, std::move(copy),
                              Stage::Delivered, side, nullptr,
                              nextMessageId_++});
    sim_->scheduleIn(0.2e-6, [this, dst, slot] { deliver(dst, slot); });
    return;
  }

  net::MessageCosts costs = protocol_->messageCosts(bytes);
  if (!allowRendezvous) costs.rendezvous = false;

  if (!costs.rendezvous) {
    // Eager: pay the sender stack, put the bytes on the wire, return.
    chargeCpu(srcNode, costs.senderSeconds);
    ctx.process_.delay(costs.senderSeconds);
    traceSpan(ctx.rank(), SpanKind::Send, sendBegin, sim_->now(), dst,
              bytes);
    const double wireBytes =
        costs.wireSeconds * platform().nicLinkRateBytesPerS;
    const double arrival =
        fabric_->scheduleWire(srcNode, dstNode, wireBytes, sim_->now());
    const std::uint32_t slot =
        stashInflight(Message{ctx.rank(), tag, bytes, std::move(copy),
                              Stage::Delivered, costs.receiverSeconds,
                              nullptr, nextMessageId_++});
    sim_->scheduleAt(arrival, [this, dst, slot] { deliver(dst, slot); });
    return;
  }

  // Rendezvous (Open-MX >= 32 KiB): send RTS, block until the CTS wakes us,
  // then stream the data with zero-copy send semantics.
  const net::MessageCosts rts = protocol_->messageCosts(0);
  chargeCpu(srcNode, rts.senderSeconds);
  ctx.process_.delay(rts.senderSeconds);
  const double rtsArrival =
      fabric_->scheduleWire(srcNode, dstNode, 84.0, sim_->now());
  const std::uint64_t id = nextMessageId_++;
  const std::uint32_t slot =
      stashInflight(Message{ctx.rank(), tag, bytes, std::move(copy),
                            Stage::RtsPending, costs.receiverSeconds,
                            &ctx.process_, id});
  sim_->scheduleAt(rtsArrival, [this, dst, slot] { deliver(dst, slot); });
  ctx.process_.suspend();  // woken by the receiver's CTS

  // CTS received: stream the payload.
  chargeCpu(srcNode, costs.senderSeconds);
  ctx.process_.delay(costs.senderSeconds);
  const double wireBytes = costs.wireSeconds * platform().nicLinkRateBytesPerS;
  const double dataArrival =
      fabric_->scheduleWire(srcNode, dstNode, wireBytes, sim_->now());
  traceSpan(ctx.rank(), SpanKind::Send, sendBegin, sim_->now(), dst, bytes);
  sim_->scheduleAt(dataArrival, [this, dst, id] {
    Mailbox& box = mailboxes_[static_cast<std::size_t>(dst)];
    Message* arrived = nullptr;
    for (const std::uint32_t s : box.messages) {
      if (inflight_[s].id == id) {
        arrived = &inflight_[s];
        arrived->stage = Stage::Delivered;
        break;
      }
    }
    if (!box.waiting) return;
    box.waiting = false;
    // Fold the receive cost into the wake-up only when the waiter will
    // consume exactly this message, i.e. it is the first (src, tag) match
    // in mailbox order; otherwise a plain wake and the receiver rescans.
    Message* firstMatch = nullptr;
    for (const std::uint32_t s : box.messages) {
      if (inflight_[s].src == box.waitSrc && inflight_[s].tag == box.waitTag) {
        firstMatch = &inflight_[s];
        break;
      }
    }
    if (arrived != nullptr && firstMatch == arrived) {
      chargeCpu(nodeOfRank(dst), arrived->receiverCost);
      arrived->receiverCharged = true;
      sim_->resumeAt(sim_->now() + arrived->receiverCost, *box.waiter);
    } else {
      sim_->resume(*box.waiter);
    }
  });
}

std::uint32_t MpiWorld::stashInflight(Message&& message) {
  if (freeSlots_.empty()) {
    inflight_.push_back(std::move(message));
    return static_cast<std::uint32_t>(inflight_.size() - 1);
  }
  const std::uint32_t slot = freeSlots_.back();
  freeSlots_.pop_back();
  inflight_[slot] = std::move(message);
  return slot;
}

std::vector<std::byte> MpiWorld::consumeSlot(std::uint32_t slot) {
  std::vector<std::byte> out = inflight_[slot].payload.intoVector(pool_);
  freeSlots_.push_back(slot);
  return out;
}

void MpiWorld::deliver(int dstRank, std::uint32_t slot) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dstRank)];
  box.messages.push_back(slot);
  Message& msg = inflight_[slot];
  if (box.waiting && msg.src == box.waitSrc && msg.tag == box.waitTag) {
    box.waiting = false;
    if (msg.stage == Stage::Delivered) {
      // The receiver is already blocked on exactly this message, so the
      // receive-side protocol cost can be charged here and folded into the
      // wake-up time: one context switch instead of wake + delay. The
      // receiver resumes at the same simulated instant either way.
      chargeCpu(nodeOfRank(dstRank), msg.receiverCost);
      msg.receiverCharged = true;
      sim_->resumeAt(sim_->now() + msg.receiverCost, *box.waiter);
    } else {
      sim_->resume(*box.waiter);
    }
  }
}

std::vector<std::byte> MpiWorld::doRecv(MpiContext& ctx, int src, int tag,
                                        std::size_t* receivedBytes) {
  TIB_REQUIRE(src >= 0 && src < ranks_);
  TIB_REQUIRE(src != ctx.rank());
  Mailbox& box = mailboxes_[static_cast<std::size_t>(ctx.rank())];
  const double recvEntry = sim_->now();

  while (true) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      const std::uint32_t slot = *it;
      Message& m = inflight_[slot];
      if (m.src != src || m.tag != tag) continue;
      if (m.stage == Stage::Delivered) {
        if (m.receiverCharged) {
          // Delivery already charged receiverCost and folded it into the
          // wake-up; reconstruct the span boundary and consume in place.
          // The clamp covers the rare case where a pre-charged message is
          // consumed by a later recv call (its cost was absorbed while we
          // blocked elsewhere).
          const double cpuBegin =
              std::max(recvEntry, sim_->now() - m.receiverCost);
          traceSpan(ctx.rank(), SpanKind::Wait, recvEntry, cpuBegin, src);
          traceSpan(ctx.rank(), SpanKind::Recv, cpuBegin, sim_->now(), src,
                    m.bytes);
          if (receivedBytes != nullptr) *receivedBytes = m.bytes;
          box.messages.erase(it);
          return consumeSlot(slot);
        }
        // Dequeue before delay(): deliveries during the yield push into
        // this deque and invalidate iterators, and they can also grow the
        // slab — so keep the slot index, not the Message reference.
        const double cost = m.receiverCost;
        const std::size_t bytes = m.bytes;
        box.messages.erase(it);
        traceSpan(ctx.rank(), SpanKind::Wait, recvEntry, sim_->now(), src);
        const double cpuBegin = sim_->now();
        chargeCpu(ctx.node(), cost);
        ctx.process_.delay(cost);
        traceSpan(ctx.rank(), SpanKind::Recv, cpuBegin, sim_->now(), src,
                  bytes);
        if (receivedBytes != nullptr) *receivedBytes = bytes;
        return consumeSlot(slot);
      }
      if (m.stage == Stage::RtsPending) {
        // Matched a rendezvous request: return a CTS and wait for the data.
        m.stage = Stage::AwaitingData;
        sim::Process* sender = m.sender;  // before delay(): the yield may
                                          // grow the slab and move Messages
        const net::MessageCosts cts = protocol_->messageCosts(0);
        chargeCpu(ctx.node(), cts.senderSeconds);
        ctx.process_.delay(cts.senderSeconds);
        const double ctsArrival = fabric_->scheduleWire(
            ctx.node(), nodeOfRank(src), 84.0, sim_->now());
        sim_->scheduleAt(ctsArrival, [this, sender] {
          sim_->resume(*sender);
        });
        break;  // fall through to waiting for the data-arrival wake-up
      }
      // AwaitingData: the exchange is in flight; keep waiting.
      break;
    }
    box.waiting = true;
    box.waitSrc = src;
    box.waitTag = tag;
    box.waiter = &ctx.process_;
    ctx.process_.suspend();
    box.waiting = false;
  }
}

WorldStats MpiWorld::run(const RankBody& body) {
  sim_ = std::make_unique<sim::Simulation>(config_.simBackend,
                                           config_.fiberStackBytes);
  // Roughly eager-send + wake-up per rank in flight at any moment.
  sim_->reserveEvents(static_cast<std::size_t>(ranks_) * 4);
  net::TopologySpec topo = config_.topology;
  topo.nodes = nodes_;
  fabric_ = std::make_unique<net::Fabric>(topo);
  // clear + resize, not assign: Mailbox holds move-only Messages now.
  mailboxes_.clear();
  mailboxes_.resize(static_cast<std::size_t>(ranks_));
  contexts_.clear();
  inflight_.clear();
  freeSlots_.clear();
  pool_.resetStats();  // parked buffers survive: repeat runs start warm
  stats_ = WorldStats{};
  stats_.nodes = nodes_;
  stats_.rankFinishSeconds.assign(static_cast<std::size_t>(ranks_), 0.0);
  stats_.nodeBusySeconds.assign(static_cast<std::size_t>(nodes_), 0.0);
  stats_.nodeCommCpuSeconds.assign(static_cast<std::size_t>(nodes_), 0.0);

  std::vector<sim::Process*> processes;
  processes.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    auto& process = sim_->spawn(
        "rank" + std::to_string(r),
        [this, r, &body](sim::Process& p) {
          MpiContext& ctx = *contexts_[static_cast<std::size_t>(r)];
          (void)p;
          body(ctx);
          stats_.rankFinishSeconds[static_cast<std::size_t>(r)] = ctx.now();
        });
    contexts_.push_back(std::unique_ptr<MpiContext>(
        new MpiContext(*this, process, r, nodeOfRank(r))));
    processes.push_back(&process);
  }

  sim_->run();
  stats_.engine = sim_->engineStats();
  stats_.traceSpansRecorded = tracer_.spansRecorded();
  stats_.traceSpansRetained = tracer_.spansRetained();
  stats_.traceMemoryBytes = tracer_.memoryBytes();
  // World-teardown checkpoint: drop parked buffers this run's peak demand
  // could never use at once, then harvest the counters (trim included).
  pool_.trimToHighWater();
  const PayloadPool::Stats& poolStats = pool_.stats();
  stats_.payloadInlineMessages = poolStats.inlineMessages;
  stats_.payloadPooledMessages = poolStats.pooledMessages;
  stats_.payloadPoolReuses = poolStats.reuses;
  stats_.payloadPoolAllocations = poolStats.allocations;
  stats_.payloadPoolReturns = poolStats.returns;
  stats_.payloadPoolTrimmedBuffers = poolStats.trimmedBuffers;
  stats_.payloadPoolLiveHighWater = poolStats.liveHighWater;

  for (sim::Process* p : processes) {
    if (p->exception() != nullptr) std::rethrow_exception(p->exception());
  }
  TIB_REQUIRE_MSG(sim_->liveProcessCount() == 0,
                  "simMPI deadlock: ranks still blocked after event queue "
                  "drained");

  stats_.wallClockSeconds = *std::max_element(
      stats_.rankFinishSeconds.begin(), stats_.rankFinishSeconds.end());
  stats_.wireBytes = fabric_->totalWireBytes();
  stats_.fabricQueueingSeconds = fabric_->totalQueueingSeconds();
  return stats_;
}

}  // namespace tibsim::mpi
