// tibsim-lint: allowfile(wildcard-recv) — this file implements the
// wildcard matching machinery (doRecv/deliver/dataArrived) itself.

#include "tibsim/mpi/simmpi.hpp"

#include <algorithm>
#include <cstring>

#include "tibsim/arch/registry.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"

namespace tibsim::mpi {

using perfmodel::AccessPattern;

WorldConfig WorldConfig::tibidaboNode() {
  WorldConfig cfg;
  cfg.platform = arch::PlatformRegistry::tegra2();
  cfg.frequencyHz = cfg.platform.maxFrequencyHz();
  cfg.protocol = net::Protocol::TcpIp;
  cfg.ranksPerNode = 2;  // one MPI rank per Cortex-A9 core
  cfg.topology.nodesPerLeafSwitch = 32;
  cfg.topology.linkRateBytesPerS = units::gbps(1.0);
  cfg.topology.bisectionBytesPerS = units::gbps(8.0);
  return cfg;
}

// ---------------------------------------------------------------------------
// MpiContext
// ---------------------------------------------------------------------------

MpiContext::MpiContext(MpiWorld& world, sim::Process& process, int rank,
                       int node)
    : world_(world), process_(process), rank_(rank), node_(node) {}

MpiContext::CollectiveGuard::CollectiveGuard(MpiContext& ctx,
                                             std::uint64_t comm,
                                             CollectiveKind kind,
                                             std::uint8_t op,
                                             std::uint64_t count,
                                             const char* file,
                                             std::uint32_t line)
    : ctx_(ctx) {
  if (!ctx_.world_.config_.verifyCollectives) return;
  tracking_ = true;
  if (ctx_.collectiveDepth_++ > 0) return;  // building block: inherit outer
  engaged_ = true;
  CollectiveStamp stamp;
  stamp.kind = kind;
  stamp.op = op;
  stamp.seq = ctx_.nextCollectiveSeq(comm);
  stamp.count = count;
  stamp.file = file;
  stamp.line = line;
  ctx_.activeCollective_ = stamp;
}

MpiContext::CollectiveGuard::~CollectiveGuard() {
  if (!tracking_) return;
  --ctx_.collectiveDepth_;
  if (engaged_) ctx_.activeCollective_ = CollectiveStamp{};
}

int MpiContext::size() const { return world_.ranks(); }

double MpiContext::now() const { return process_.now(); }

void MpiContext::compute(const perfmodel::WorkProfile& work) {
  const double seconds = world_.execModel_.time(
      world_.platform(), work, world_.frequencyHz(), /*cores=*/1);
  world_.foldCompute(rank_, work.flops, work.bytes);
  world_.stats_.nodeBusySeconds[static_cast<std::size_t>(node_)] += seconds;
  path_.computeSeconds += seconds;
  const double begin = now();
  process_.delay(seconds);
  world_.traceSpan(rank_, SpanKind::Compute, begin, now());
}

void MpiContext::computeSeconds(double seconds) {
  TIB_REQUIRE(seconds >= 0.0);
  world_.stats_.nodeBusySeconds[static_cast<std::size_t>(node_)] += seconds;
  path_.computeSeconds += seconds;
  const double begin = now();
  process_.delay(seconds);
  world_.traceSpan(rank_, SpanKind::Compute, begin, now());
}

void MpiContext::send(int dst, int tag, std::size_t bytes,
                      std::span<const std::byte> payload) {
  world_.doSend(*this, /*comm=*/0, dst, tag, bytes, payload);
}

void MpiContext::sendDoubles(int dst, int tag,
                             std::span<const double> values) {
  send(dst, tag, values.size_bytes(),
       std::as_bytes(values));
}

std::vector<std::byte> MpiContext::recv(int src, int tag,
                                        std::size_t* receivedBytes) {
  return world_.doRecv(*this, /*comm=*/0, src, tag, receivedBytes);
}

std::vector<double> MpiContext::recvDoubles(int src, int tag) {
  std::size_t bytes = 0;
  int actualSrc = src;
  const std::vector<std::byte> raw =
      world_.doRecv(*this, /*comm=*/0, src, tag, &bytes, &actualSrc);
  TIB_REQUIRE_MSG(raw.size() % sizeof(double) == 0,
                  "recvDoubles: " + std::to_string(raw.size()) +
                      "-byte payload from rank " + std::to_string(actualSrc) +
                      " is not a multiple of sizeof(double) — the sender "
                      "did not use sendDoubles");
  std::vector<double> values(raw.size() / sizeof(double));
  if (!values.empty())
    std::memcpy(values.data(), raw.data(), values.size() * sizeof(double));
  return values;
}

MpiContext::Request MpiContext::isend(int dst, int tag, std::size_t bytes,
                                      std::span<const std::byte> payload) {
  // Eager buffered send: costs are charged now, delivery proceeds in the
  // background; rendezvous is suppressed so the caller never blocks.
  world_.doSend(*this, /*comm=*/0, dst, tag, bytes, payload,
                /*allowRendezvous=*/false);
  PendingOp op;
  op.kind = PendingOp::Kind::Send;
  op.peer = dst;
  op.tag = tag;
  return pushPending(std::move(op));
}

MpiContext::Request MpiContext::irecv(int src, int tag) {
  PendingOp op;
  op.kind = PendingOp::Kind::Recv;
  op.peer = src;
  op.tag = tag;
  return pushPending(std::move(op));
}

namespace {
std::vector<std::byte> doublesToBytes(std::span<const double> values,
                                      std::size_t* receivedBytes) {
  std::vector<std::byte> raw(values.size_bytes());
  if (!raw.empty()) std::memcpy(raw.data(), values.data(), raw.size());
  if (receivedBytes != nullptr) *receivedBytes = raw.size();
  return raw;
}
}  // namespace

std::vector<std::byte> MpiContext::wait(Request request,
                                        std::size_t* receivedBytes) {
  auto it = pending_.begin();
  while (it != pending_.end() && it->request != request) ++it;
  TIB_REQUIRE_MSG(it != pending_.end(), "unknown or already-waited request");
  PendingOp op = std::move(*it);
  *it = std::move(pending_.back());
  pending_.pop_back();
  switch (op.kind) {
    case PendingOp::Kind::Send:
      return {};  // isend completed at initiation
    case PendingOp::Kind::Recv:
      // op.comm is the null communicator for a legacy world irecv; its id()
      // is 0 either way, which is all the match needs.
      return world_.doRecv(*this, op.comm.id(), op.peer, op.tag,
                           receivedBytes);
    case PendingOp::Kind::Barrier: {
      // Lazy collectives replay the i-collective's recorded call site into
      // the verifier stamp; the inner (blocking) collective's own guard
      // nests beneath this one and inherits it.
      CollectiveGuard guard(*this, op.comm.id(), CollectiveKind::Barrier,
                            kNoReduceOp, 0, op.file, op.line);
      op.comm.barrier();
      if (receivedBytes != nullptr) *receivedBytes = 0;
      return {};
    }
    case PendingOp::Kind::Bcast: {
      CollectiveGuard guard(*this, op.comm.id(), CollectiveKind::Bcast,
                            kNoReduceOp, op.values.size(), op.file, op.line);
      return doublesToBytes(op.comm.bcast(std::move(op.values), op.root),
                            receivedBytes);
    }
    case PendingOp::Kind::Allreduce: {
      CollectiveGuard guard(*this, op.comm.id(), CollectiveKind::Allreduce,
                            static_cast<std::uint8_t>(op.op),
                            op.values.size(), op.file, op.line);
      return doublesToBytes(op.comm.allreduce(op.values, op.op),
                            receivedBytes);
    }
  }
  return {};
}

void MpiContext::waitall(std::span<const Request> requests) {
  for (Request r : requests) wait(r);
}

void MpiContext::sendrecv(int peer, int tag, std::size_t sendBytes,
                          std::size_t* recvBytes) {
  TIB_REQUIRE(peer != rank_);
  // Rank-ordered exchange: lower rank sends first. Safe for both eager and
  // rendezvous messages (the classic deadlock-free pairing).
  if (rank_ < peer) {
    send(peer, tag, sendBytes);
    recv(peer, tag, recvBytes);
  } else {
    recv(peer, tag, recvBytes);
    send(peer, tag, sendBytes);
  }
}

// ---------------------------------------------------------------------------
// MpiWorld
// ---------------------------------------------------------------------------

MpiWorld::MpiWorld(WorldConfig config, int ranks)
    : config_(std::move(config)), ranks_(ranks) {
  TIB_REQUIRE(ranks_ >= 1);
  TIB_REQUIRE(config_.ranksPerNode >= 1 &&
              config_.ranksPerNode <= config_.platform.soc.cores);
  nodes_ = (ranks_ + config_.ranksPerNode - 1) / config_.ranksPerNode;
  frequencyHz_ = config_.frequencyHz > 0.0 ? config_.frequencyHz
                                           : config_.platform.maxFrequencyHz();
  protocol_ = std::make_unique<net::ProtocolModel>(
      config_.protocol, config_.platform, frequencyHz_);
  // Pure function of per-world constants; hoisted out of the per-send
  // shared-memory path.
  sameNodeCopyBandwidth_ = 0.5 * execModel_.achievableBandwidth(
                                     platform(), AccessPattern::Streaming, 1,
                                     frequencyHz_);
}

MpiWorld::~MpiWorld() = default;

void MpiWorld::chargeCpu(int node, double seconds) {
  stats_.nodeBusySeconds[static_cast<std::size_t>(node)] += seconds;
  stats_.nodeCommCpuSeconds[static_cast<std::size_t>(node)] += seconds;
}

void MpiWorld::traceSpan(int rank, SpanKind kind, double begin, double end,
                         int peer, std::size_t bytes, std::uint64_t comm) {
  if (!tracing_) return;
  if (!sharded_) {
    tracer_.record(TraceSpan{rank, kind, begin, end, peer, bytes, comm});
    return;
  }
  // Span order (and the sink's capacity evolution) is serialised, so spans
  // buffer per shard and flush at the barrier in canonical dispatch order.
  Engine& eng = engineOf(rank);
  eng.spans.push_back(PendingSpan{TraceSpan{rank, kind, begin, end, peer,
                                            bytes, comm},
                                  eng.sim->currentDispatchIndex()});
}

void MpiWorld::foldCompute(int rank, double flops, double dramBytes) {
  if (!sharded_) {
    stats_.totalFlops += flops;
    stats_.totalDramBytes += dramBytes;
    return;
  }
  // totalFlops/totalDramBytes accumulate fractional values whose FP sum is
  // order-dependent (and gflops is serialised), so the fold replays at the
  // barrier in canonical order.
  Engine& eng = engineOf(rank);
  DeferredOp op;
  op.kind = DeferredOp::Kind::StatFold;
  op.dispatchIndex = eng.sim->currentDispatchIndex();
  op.flops = flops;
  op.dramBytes = dramBytes;
  eng.ops.push_back(std::move(op));
}

void MpiWorld::doSend(MpiContext& ctx, std::uint64_t comm, int dst, int tag,
                      std::size_t bytes, std::span<const std::byte> payload,
                      bool allowRendezvous) {
  TIB_REQUIRE(dst >= 0 && dst < ranks_);
  TIB_REQUIRE(dst != ctx.rank());
  Engine* eng = sharded_ ? &engineOf(ctx.rank()) : nullptr;
  if (eng != nullptr) {
    ++eng->messageCount;
    eng->payloadBytes += static_cast<double>(bytes);
  } else {
    ++stats_.messageCount;
    stats_.payloadBytes += static_cast<double>(bytes);
  }

  // Small payloads ride inline in the Message; larger ones borrow a warm
  // buffer from the pool (recycled by doRecv/wait), so a steady-state send
  // performs no heap allocation. Sharded runs use this shard's pool and
  // additionally record the acquire against the world-level compat model
  // (replayed canonically at the barrier — see payload_pool.hpp).
  const int srcShard = shardOfRank(ctx.rank());
  MessagePayload copy(
      payload,
      eng != nullptr ? shardPools_[static_cast<std::size_t>(srcShard)]
                     : pool_);
  std::uint64_t poolTicket = kNoPoolTicket;
  if (eng != nullptr && copy.pooled()) {
    poolTicket = (static_cast<std::uint64_t>(srcShard) << 32) |
                 eng->nextPoolTicket++;
    DeferredOp op;
    op.kind = DeferredOp::Kind::PoolAcquire;
    op.dispatchIndex = eng->sim->currentDispatchIndex();
    op.bytes = payload.size();
    op.id = poolTicket;
    eng->ops.push_back(std::move(op));
  }
  const int srcNode = ctx.node();
  const int dstNode = nodeOfRank(dst);
  sim::Simulation& sim = simFor(ctx.rank());

  const double sendBegin = sim.now();
  if (srcNode == dstNode) {
    // Shared-memory path: one copy in, one copy out, no NIC. Same node
    // means same shard, so this path stays fully in-window on sharded runs.
    const double side =
        0.3e-6 + static_cast<double>(bytes) / sameNodeCopyBandwidth_;
    chargeCpu(srcNode, side);
    ctx.path_.sendSeconds += side;
    ctx.process_.delay(side);
    traceSpan(ctx.rank(), SpanKind::Send, sendBegin, sim.now(), dst,
              bytes, comm);
    Message msg{ctx.rank(), tag, bytes, std::move(copy), Stage::Delivered,
                side, nullptr, nextLocalMessageId(eng)};
    msg.poolTicket = poolTicket;
    msg.comm = comm;
    msg.verify = ctx.activeCollective_;
    msg.path = ctx.path_;
    msg.departTime = sim.now();
    const std::uint32_t slot = stashFor(dst, std::move(msg));
    sim.scheduleIn(0.2e-6, [this, dst, slot] { deliver(dst, slot); });
    return;
  }

  net::MessageCosts costs = protocol_->messageCosts(bytes);
  if (!allowRendezvous) costs.rendezvous = false;

  if (!costs.rendezvous) {
    // Eager: pay the sender stack, put the bytes on the wire, return.
    chargeCpu(srcNode, costs.senderSeconds);
    ctx.path_.sendSeconds += costs.senderSeconds;
    ctx.process_.delay(costs.senderSeconds);
    traceSpan(ctx.rank(), SpanKind::Send, sendBegin, sim.now(), dst,
              bytes, comm);
    const double wireBytes =
        costs.wireSeconds * platform().nicLinkRateBytesPerS;
    Message msg{ctx.rank(), tag, bytes, std::move(copy), Stage::Delivered,
                costs.receiverSeconds, nullptr, nextLocalMessageId(eng)};
    msg.poolTicket = poolTicket;
    msg.comm = comm;
    msg.verify = ctx.activeCollective_;
    msg.path = ctx.path_;
    msg.departTime = sim.now();
    if (eng == nullptr) {
      const double arrival =
          fabric_->scheduleWire(srcNode, dstNode, wireBytes, sim.now());
      const std::uint32_t slot = stashFor(dst, std::move(msg));
      sim.scheduleAt(arrival, [this, dst, slot] { deliver(dst, slot); });
    } else {
      // Fabric occupancy is global state: defer the wire arithmetic and the
      // delivery push to the barrier, replayed in canonical order.
      DeferredOp op;
      op.kind = DeferredOp::Kind::Deliver;
      op.fromNode = srcNode;
      op.toNode = dstNode;
      op.dstRank = dst;
      op.wireBytes = wireBytes;
      op.hasMessage = true;
      op.message = std::move(msg);
      submitWireOp(*eng, std::move(op));
    }
    return;
  }

  // Rendezvous (Open-MX >= 32 KiB): send RTS, block until the CTS wakes us,
  // then stream the data with zero-copy send semantics.
  const net::MessageCosts rts = protocol_->messageCosts(0);
  chargeCpu(srcNode, rts.senderSeconds);
  ctx.path_.sendSeconds += rts.senderSeconds;
  ctx.process_.delay(rts.senderSeconds);
  const std::uint64_t id = nextLocalMessageId(eng);
  Message msg{ctx.rank(), tag,     bytes, std::move(copy),
              Stage::RtsPending,   costs.receiverSeconds,
              &ctx.process_,       id};
  msg.poolTicket = poolTicket;
  msg.comm = comm;
  msg.verify = ctx.activeCollective_;
  if (eng == nullptr) {
    const double rtsArrival =
        fabric_->scheduleWire(srcNode, dstNode, 84.0, sim.now());
    const std::uint32_t slot = stashFor(dst, std::move(msg));
    sim.scheduleAt(rtsArrival, [this, dst, slot] { deliver(dst, slot); });
  } else {
    DeferredOp op;
    op.kind = DeferredOp::Kind::Deliver;
    op.fromNode = srcNode;
    op.toNode = dstNode;
    op.dstRank = dst;
    op.wireBytes = 84.0;  // RTS frame
    op.hasMessage = true;
    op.message = std::move(msg);
    submitWireOp(*eng, std::move(op));
  }
  // Stall-watchdog bookkeeping: the rank is about to block outside any
  // mailbox wait, so record what it is blocked on here.
  ctx.sendBlocked_ = true;
  ctx.sendPeer_ = dst;
  ctx.sendTag_ = tag;
  ctx.sendComm_ = comm;
  ctx.sendBlockedSince_ = sim.now();
  ctx.process_.suspend();  // woken by the receiver's CTS
  ctx.sendBlocked_ = false;

  // CTS received: stream the payload. The wake-up already adopted the
  // receiver's chain (the CTS is what unblocked us); the stream CPU and
  // the data wire extend it toward the receiver.
  chargeCpu(srcNode, costs.senderSeconds);
  ctx.path_.sendSeconds += costs.senderSeconds;
  ctx.process_.delay(costs.senderSeconds);
  const double wireBytes = costs.wireSeconds * platform().nicLinkRateBytesPerS;
  traceSpan(ctx.rank(), SpanKind::Send, sendBegin, sim.now(), dst, bytes,
            comm);
  const obs::PathSnapshot dataPath = ctx.path_;
  const double dataDepart = sim.now();
  if (eng == nullptr) {
    const double dataArrival =
        fabric_->scheduleWire(srcNode, dstNode, wireBytes, sim.now());
    sim.scheduleAt(dataArrival, [this, dst, id, dataPath, dataDepart] {
      dataArrived(dst, id, dataPath, dataDepart);
    });
  } else {
    DeferredOp op;
    op.kind = DeferredOp::Kind::DataArrival;
    op.fromNode = srcNode;
    op.toNode = dstNode;
    op.dstRank = dst;
    op.wireBytes = wireBytes;
    op.id = id;
    op.path = dataPath;
    op.submitT = dataDepart;
    submitWireOp(*eng, std::move(op));
  }
}

void MpiWorld::dataArrived(int dstRank, std::uint64_t id,
                           const obs::PathSnapshot& path, double departTime) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dstRank)];
  Message* arrived = nullptr;
  for (const std::uint32_t s : box.messages) {
    Message& m = messageAt(dstRank, s);
    if (m.id == id) {
      arrived = &m;
      arrived->stage = Stage::Delivered;
      // Rendezvous completion: the chain that matters is the sender's at
      // data-stream time, not the stale RTS-time snapshot.
      arrived->path = path;
      arrived->departTime = departTime;
      arrived->arrivalTime = simFor(dstRank).now();
      break;
    }
  }
  if (!box.waiting) return;
  box.waiting = false;
  // Fold the receive cost into the wake-up only when the waiter will
  // consume exactly this message, i.e. it is the first (src, tag) match
  // in mailbox order; otherwise a plain wake and the receiver rescans.
  Message* firstMatch = nullptr;
  for (const std::uint32_t s : box.messages) {
    Message& m = messageAt(dstRank, s);
    if (matches(m, box.waitComm, box.waitSrc, box.waitTag)) {
      firstMatch = &m;
      break;
    }
  }
  sim::Simulation& sim = simFor(dstRank);
  if (arrived != nullptr && firstMatch == arrived) {
    chargeCpu(nodeOfRank(dstRank), arrived->receiverCost);
    arrived->receiverCharged = true;
    sim.resumeAt(sim.now() + arrived->receiverCost, *box.waiter);
  } else {
    sim.resume(*box.waiter);
  }
}

std::uint32_t MpiWorld::stashInflight(Message&& message) {
  if (freeSlots_.empty()) {
    inflight_.push_back(std::move(message));
    return static_cast<std::uint32_t>(inflight_.size() - 1);
  }
  const std::uint32_t slot = freeSlots_.back();
  freeSlots_.pop_back();
  inflight_[slot] = std::move(message);
  return slot;
}

std::uint32_t MpiWorld::stashFor(int dstRank, Message&& message) {
  if (!sharded_) return stashInflight(std::move(message));
  // Messages live in the *destination* shard's slab: delivery, matching and
  // consumption all run there, so only one shard ever touches the slot.
  Engine& eng = engineOf(dstRank);
  if (eng.freeSlots.empty()) {
    eng.inflight.push_back(std::move(message));
    return static_cast<std::uint32_t>(eng.inflight.size() - 1);
  }
  const std::uint32_t slot = eng.freeSlots.back();
  eng.freeSlots.pop_back();
  eng.inflight[slot] = std::move(message);
  return slot;
}

std::vector<std::byte> MpiWorld::consumeSlot(int rank, std::uint32_t slot) {
  if (!sharded_) {
    std::vector<std::byte> out = inflight_[slot].payload.intoVector(pool_);
    freeSlots_.push_back(slot);
    return out;
  }
  Engine& eng = engineOf(rank);
  Message& msg = eng.inflight[slot];
  if (msg.payload.pooled() && msg.poolTicket != kNoPoolTicket) {
    // Mirror the release into the world compat model in canonical order.
    DeferredOp op;
    op.kind = DeferredOp::Kind::PoolRelease;
    op.dispatchIndex = eng.sim->currentDispatchIndex();
    op.id = msg.poolTicket;
    eng.ops.push_back(std::move(op));
  }
  // The buffer parks in the *consuming* shard's pool: warm buffers migrate
  // toward the ranks that actually receive large payloads.
  std::vector<std::byte> out = msg.payload.intoVector(
      shardPools_[static_cast<std::size_t>(shardOfRank(rank))]);
  eng.freeSlots.push_back(slot);
  return out;
}

void MpiWorld::deliver(int dstRank, std::uint32_t slot) {
  Mailbox& box = mailboxes_[static_cast<std::size_t>(dstRank)];
  box.messages.push_back(slot);
  Message& msg = messageAt(dstRank, slot);
  msg.arrivalTime = simFor(dstRank).now();
  if (box.waiting && matches(msg, box.waitComm, box.waitSrc, box.waitTag)) {
    box.waiting = false;
    if (msg.stage == Stage::Delivered) {
      // The receiver is already blocked on exactly this message, so the
      // receive-side protocol cost can be charged here and folded into the
      // wake-up time: one context switch instead of wake + delay. The
      // receiver resumes at the same simulated instant either way.
      chargeCpu(nodeOfRank(dstRank), msg.receiverCost);
      msg.receiverCharged = true;
      sim::Simulation& sim = simFor(dstRank);
      sim.resumeAt(sim.now() + msg.receiverCost, *box.waiter);
    } else {
      simFor(dstRank).resume(*box.waiter);
    }
  }
}

std::vector<std::byte> MpiWorld::doRecv(MpiContext& ctx, std::uint64_t comm,
                                        int src, int tag,
                                        std::size_t* receivedBytes,
                                        int* srcOut, int* tagOut) {
  TIB_REQUIRE(src == kAnySource || (src >= 0 && src < ranks_));
  TIB_REQUIRE(src != ctx.rank());
  TIB_REQUIRE(tag == kAnyTag || tag >= 0);
  Mailbox& box = mailboxes_[static_cast<std::size_t>(ctx.rank())];
  sim::Simulation& sim = simFor(ctx.rank());
  const double recvEntry = sim.now();

  while (true) {
    for (auto it = box.messages.begin(); it != box.messages.end(); ++it) {
      const std::uint32_t slot = *it;
      Message& m = messageAt(ctx.rank(), slot);
      // Wildcards resolve here: the first match in mailbox order is the
      // canonical choice (delivery order is already shard- and
      // backend-invariant), so kAnySource/kAnyTag stay deterministic.
      if (!matches(m, comm, src, tag)) continue;
      const int msgSrc = m.src;
      const int msgTag = m.tag;
      if (srcOut != nullptr) *srcOut = msgSrc;
      if (tagOut != nullptr) *tagOut = msgTag;
      if (m.stage == Stage::Delivered) {
        // Collective verifier: the consumed message's stamp must agree
        // with whatever collective this rank is executing. The comparison
        // rides the canonical match order, so any report is byte-identical
        // across shard counts and backends.
        verifyCollectiveMatch(ctx, m);
        if (m.receiverCharged) {
          // Delivery already charged receiverCost and folded it into the
          // wake-up; reconstruct the span boundary and consume in place.
          // The clamp covers the rare case where a pre-charged message is
          // consumed by a later recv call (its cost was absorbed while we
          // blocked elsewhere).
          const double cpuBegin =
              std::max(recvEntry, sim.now() - m.receiverCost);
          traceSpan(ctx.rank(), SpanKind::Wait, recvEntry, cpuBegin, msgSrc,
                    0, comm);
          traceSpan(ctx.rank(), SpanKind::Recv, cpuBegin, sim.now(), msgSrc,
                    m.bytes, comm);
          // Critical path: the message arriving after we started waiting
          // means the sender's chain (plus the hop) bounded this rank.
          if (m.arrivalTime > recvEntry)
            ctx.adoptPath(m.path,
                          std::max(0.0, m.arrivalTime - m.departTime));
          ctx.path_.recvSeconds += m.receiverCost;
          if (receivedBytes != nullptr) *receivedBytes = m.bytes;
          box.messages.erase(it);
          return consumeSlot(ctx.rank(), slot);
        }
        // Dequeue before delay(): deliveries during the yield push into
        // this deque and invalidate iterators, and they can also grow the
        // slab — so keep the slot index, not the Message reference.
        const double cost = m.receiverCost;
        const std::size_t bytes = m.bytes;
        if (m.arrivalTime > recvEntry)
          ctx.adoptPath(m.path, std::max(0.0, m.arrivalTime - m.departTime));
        ctx.path_.recvSeconds += cost;
        box.messages.erase(it);
        traceSpan(ctx.rank(), SpanKind::Wait, recvEntry, sim.now(), msgSrc,
                  0, comm);
        const double cpuBegin = sim.now();
        chargeCpu(ctx.node(), cost);
        ctx.process_.delay(cost);
        traceSpan(ctx.rank(), SpanKind::Recv, cpuBegin, sim.now(), msgSrc,
                  bytes, comm);
        if (receivedBytes != nullptr) *receivedBytes = bytes;
        return consumeSlot(ctx.rank(), slot);
      }
      if (m.stage == Stage::RtsPending) {
        // Matched a rendezvous request: return a CTS and wait for the data.
        // msgSrc (not the possibly-wildcard src) names the sender.
        m.stage = Stage::AwaitingData;
        sim::Process* sender = m.sender;  // before delay(): the yield may
                                          // grow the slab and move Messages
        const net::MessageCosts cts = protocol_->messageCosts(0);
        chargeCpu(ctx.node(), cts.senderSeconds);
        ctx.path_.recvSeconds += cts.senderSeconds;
        ctx.process_.delay(cts.senderSeconds);
        // The CTS is what unblocks the rendezvous sender, so the sender's
        // chain becomes this receiver's chain plus the CTS hop. The
        // adoption is applied inside the sender's shard at wake-up.
        const obs::PathSnapshot ctsPath = ctx.path_;
        MpiContext* senderCtx =
            contexts_[static_cast<std::size_t>(msgSrc)].get();
        if (!sharded_) {
          const double ctsDepart = sim.now();
          const double ctsArrival = fabric_->scheduleWire(
              ctx.node(), nodeOfRank(msgSrc), 84.0, ctsDepart);
          const double ctsLink = std::max(0.0, ctsArrival - ctsDepart);
          sim.scheduleAt(ctsArrival,
                         [this, sender, senderCtx, ctsPath, ctsLink] {
                           senderCtx->adoptPath(ctsPath, ctsLink);
                           sim_->resume(*sender);
                         });
        } else {
          // CTS wire + sender wake-up land in the sender's shard; both
          // defer to the barrier like every other cross-shard effect.
          Engine& eng = engineOf(ctx.rank());
          DeferredOp op;
          op.kind = DeferredOp::Kind::CtsResume;
          op.fromNode = ctx.node();
          op.toNode = nodeOfRank(msgSrc);
          op.wireBytes = 84.0;
          op.targetShard = shardOfRank(msgSrc);
          op.sender = sender;
          op.path = ctsPath;
          op.senderCtx = senderCtx;
          submitWireOp(eng, std::move(op));
        }
        break;  // fall through to waiting for the data-arrival wake-up
      }
      // AwaitingData: the exchange is in flight; keep waiting.
      break;
    }
    box.waiting = true;
    box.waitComm = comm;
    box.waitSrc = src;
    box.waitTag = tag;
    box.waiter = &ctx.process_;
    box.blockedSince = sim.now();
    ctx.process_.suspend();
    box.waiting = false;
  }
}

void MpiWorld::verifyCollectiveMatch(MpiContext& ctx, const Message& message) {
  if (!config_.verifyCollectives) return;
  const CollectiveStamp& local = ctx.activeCollective_;
  const CollectiveStamp& remote = message.verify;
  if (!local.engaged() && !remote.engaged()) return;  // plain point-to-point
  ++ctx.collectiveChecks_;
  if (local.engaged() && remote.engaged() && local.matches(remote)) return;
  throw ContractError(formatCollectiveMismatch(ctx.rank(), ctx.node(),
                                               message.src, message.comm,
                                               local, remote, ctx.now()));
}

WorldStats MpiWorld::run(const RankBody& body) {
  const int shards = effectiveSimShards();
  if (shards > 1) return runSharded(body, shards);
  sharded_ = false;
  sim_ = std::make_unique<sim::Simulation>(config_.simBackend,
                                           config_.fiberStackBytes);
  // Huge worlds lease fiber stacks from the slab arena so the VMA count
  // stays far below vm.max_map_count (private guarded stacks cost 2 each).
  sim_->setPooledStacks(ranks_ >= sim::kPooledStacksMinRanks);
  // Roughly eager-send + wake-up per rank in flight at any moment.
  sim_->reserveEvents(static_cast<std::size_t>(ranks_) * 4);
  net::TopologySpec topo = config_.topology;
  topo.nodes = nodes_;
  fabric_ = std::make_unique<net::Fabric>(topo, config_.linkTelemetry);
  // clear + resize, not assign: Mailbox holds move-only Messages now.
  mailboxes_.clear();
  mailboxes_.resize(static_cast<std::size_t>(ranks_));
  contexts_.clear();
  inflight_.clear();
  freeSlots_.clear();
  pool_.resetStats();  // parked buffers survive: repeat runs start warm
  stats_ = WorldStats{};
  stats_.nodes = nodes_;
  stats_.rankFinishSeconds.assign(static_cast<std::size_t>(ranks_), 0.0);
  stats_.nodeBusySeconds.assign(static_cast<std::size_t>(nodes_), 0.0);
  stats_.nodeCommCpuSeconds.assign(static_cast<std::size_t>(nodes_), 0.0);

  std::vector<sim::Process*> processes;
  processes.reserve(static_cast<std::size_t>(ranks_));
  for (int r = 0; r < ranks_; ++r) {
    auto& process = sim_->spawn(
        "rank" + std::to_string(r),
        [this, r, &body](sim::Process& p) {
          MpiContext& ctx = *contexts_[static_cast<std::size_t>(r)];
          (void)p;
          body(ctx);
          stats_.rankFinishSeconds[static_cast<std::size_t>(r)] = ctx.now();
        });
    contexts_.push_back(std::unique_ptr<MpiContext>(
        new MpiContext(*this, process, r, nodeOfRank(r))));
    processes.push_back(&process);
  }

  sim_->run();
  stats_.engine = sim_->engineStats();
  stats_.traceSpansRecorded = tracer_.spansRecorded();
  stats_.traceSpansRetained = tracer_.spansRetained();
  stats_.traceMemoryBytes = tracer_.memoryBytes();
  // World-teardown checkpoint: drop parked buffers this run's peak demand
  // could never use at once, then harvest the counters (trim included).
  pool_.trimToHighWater();
  const PayloadPool::Stats& poolStats = pool_.stats();
  stats_.payloadInlineMessages = poolStats.inlineMessages;
  stats_.payloadPooledMessages = poolStats.pooledMessages;
  stats_.payloadPoolReuses = poolStats.reuses;
  stats_.payloadPoolAllocations = poolStats.allocations;
  stats_.payloadPoolReturns = poolStats.returns;
  stats_.payloadPoolTrimmedBuffers = poolStats.trimmedBuffers;
  stats_.payloadPoolLiveHighWater = poolStats.liveHighWater;
  stats_.payloadPoolClassStats = pool_.classStats();
  for (const auto& ctx : contexts_)
    stats_.collectiveChecks += ctx->collectiveChecks_;

  for (sim::Process* p : processes) {
    if (p->exception() != nullptr) std::rethrow_exception(p->exception());
  }
  TIB_REQUIRE_MSG(sim_->liveProcessCount() == 0,
                  deadlockMessage(sim_->now()));

  stats_.wallClockSeconds = *std::max_element(
      stats_.rankFinishSeconds.begin(), stats_.rankFinishSeconds.end());
  stats_.wireBytes = fabric_->totalWireBytes();
  stats_.fabricQueueingSeconds = fabric_->totalQueueingSeconds();
  harvestPathAndLinks();
  return stats_;
}

void MpiWorld::harvestPathAndLinks() {
  stats_.linkStats = fabric_->linkStats();
  // The end rank bounds the world: argmax finish time, ties to the lowest
  // rank (max_element returns the first maximum).
  const auto last = std::max_element(stats_.rankFinishSeconds.begin(),
                                     stats_.rankFinishSeconds.end());
  const int endRank =
      static_cast<int>(last - stats_.rankFinishSeconds.begin());
  const obs::PathSnapshot& path =
      contexts_[static_cast<std::size_t>(endRank)]->path_;
  obs::CriticalPath& cp = stats_.criticalPath;
  cp.computeSeconds = path.computeSeconds;
  cp.sendSeconds = path.sendSeconds;
  cp.recvSeconds = path.recvSeconds;
  cp.linkSeconds = path.linkSeconds;
  cp.edges = path.edges;
  cp.endRank = endRank;
  // Everything the chain does not explain is time the path spent blocked
  // with no modelled predecessor (e.g. a receiver that out-waited the
  // adoption tie) — report it as wait rather than losing it.
  cp.waitSeconds =
      std::max(0.0, stats_.wallClockSeconds - path.lengthSeconds());
}

std::string MpiWorld::deadlockMessage(double now) {
  std::string message =
      "simMPI deadlock: ranks still blocked after event queue drained";
  if (!config_.stallReport) {
    return message +
           " (enable --stall-report / TIBSIM_STALL_REPORT=1 for the "
           "per-rank wait-state report)";
  }
  const std::vector<TraceSpan> retained =
      tracing_ ? tracer_.retainedSpans() : std::vector<TraceSpan>{};
  constexpr std::size_t kSpansPerRank = 3;
  std::vector<obs::StallEntry> entries;
  for (int r = 0; r < ranks_; ++r) {
    const Mailbox& box = mailboxes_[static_cast<std::size_t>(r)];
    const MpiContext* ctx = contexts_[static_cast<std::size_t>(r)].get();
    obs::StallEntry entry;
    if (box.waiting) {
      entry.op = "recv";
      entry.peer = box.waitSrc;
      entry.tag = box.waitTag;
      entry.comm = box.waitComm;
      entry.blockedSince = box.blockedSince;
    } else if (ctx != nullptr && ctx->sendBlocked_) {
      entry.op = "rendezvous-send";
      entry.peer = ctx->sendPeer_;
      entry.tag = ctx->sendTag_;
      entry.comm = ctx->sendComm_;
      entry.blockedSince = ctx->sendBlockedSince_;
    } else {
      continue;  // this rank finished (or never blocked)
    }
    entry.rank = r;
    entry.node = nodeOfRank(r);
    for (const TraceSpan& span : retained) {
      if (span.rank != r) continue;
      entry.lastSpans.push_back(span);
      if (entry.lastSpans.size() > kSpansPerRank)
        entry.lastSpans.erase(entry.lastSpans.begin());
    }
    entries.push_back(std::move(entry));
  }
  return message + "\n" + obs::formatStallReport(entries, now);
}

}  // namespace tibsim::mpi
