#include "tibsim/mpi/collective_verify.hpp"

#include <cstdlib>
#include <sstream>

#include "tibsim/common/json.hpp"

namespace tibsim::mpi {

namespace {

bool readVerifyCollectivesFromEnv() {
  const char* env = std::getenv("TIBSIM_VERIFY_COLLECTIVES");
  if (env == nullptr) return false;
  const std::string value(env);
  return value == "1" || value == "on" || value == "true";
}

bool& verifyCollectivesSlot() {
  // Process-wide default, mutated only from the host thread between runs
  // (socbench flag parsing, ScopedVerifyCollectives in tests) — never
  // from inside a shard window. tibsim-lint: allow(shard-shared)
  static bool slot = readVerifyCollectivesFromEnv();
  return slot;
}

/// Shortest-round-trip decimal, shared with the JSON emitters so the
/// report is byte-stable wherever it is rendered.
std::string seconds(double value) { return json::formatNumber(value); }

}  // namespace

bool defaultVerifyCollectives() { return verifyCollectivesSlot(); }
void setDefaultVerifyCollectives(bool on) { verifyCollectivesSlot() = on; }

const char* toString(CollectiveKind kind) {
  switch (kind) {
    case CollectiveKind::None: return "none";
    case CollectiveKind::Barrier: return "barrier";
    case CollectiveKind::Bcast: return "bcast";
    case CollectiveKind::BcastBytes: return "bcastBytes";
    case CollectiveKind::PipelinedBcastBytes: return "pipelinedBcastBytes";
    case CollectiveKind::Reduce: return "reduce";
    case CollectiveKind::Allreduce: return "allreduce";
    case CollectiveKind::AllreduceMax: return "allreduceMax";
    case CollectiveKind::Gather: return "gather";
    case CollectiveKind::Allgather: return "allgather";
    case CollectiveKind::AlltoallBytes: return "alltoallBytes";
    case CollectiveKind::Split: return "split";
    case CollectiveKind::Dup: return "dup";
  }
  return "unknown";
}

const char* reduceOpName(std::uint8_t op) {
  switch (op) {
    case 0: return "sum";
    case 1: return "min";
    case 2: return "max";
    case 3: return "prod";
    case kCustomCombineOp: return "custom";
    case kNoReduceOp: return "-";
  }
  return "unknown";
}

std::string describeStamp(const CollectiveStamp& stamp) {
  if (!stamp.engaged()) return "point-to-point traffic";
  std::ostringstream out;
  out << toString(stamp.kind) << " #" << stamp.seq << " (op="
      << reduceOpName(stamp.op) << ", count=" << stamp.count << ")";
  if (stamp.file != nullptr)
    out << " at " << stamp.file << ":" << stamp.line;
  return out.str();
}

std::string formatCollectiveMismatch(int rank, int node, int sender,
                                     std::uint64_t comm,
                                     const CollectiveStamp& local,
                                     const CollectiveStamp& remote,
                                     double now) {
  std::ostringstream out;
  out << "collective mismatch on comm " << comm << " at t=" << seconds(now)
      << "s\n"
      << "  rank " << rank << " node " << node
      << " entered: " << describeStamp(local) << "\n"
      << "  rank " << sender << " sent:    " << describeStamp(remote) << "\n"
      << "  every rank of a communicator must run the same collective "
         "sequence; rerun with --stall-report for wait-state detail";
  return out.str();
}

}  // namespace tibsim::mpi
