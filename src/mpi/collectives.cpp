// Collective operations built from point-to-point messages with the
// textbook algorithms an early-2010s OpenMPI would use on Ethernet:
// dissemination barrier, binomial-tree broadcast/reduce, reduce+bcast
// allreduce, linear gather (the root NIC is the bottleneck either way),
// ring all-to-all.
//
// The algorithms live on Communicator, operating on comm-local ranks; the
// legacy MpiContext entry points delegate to the world communicator (id 0,
// identity rank mapping), so world-scoped collective traffic — ranks, tags,
// sizes, charges — is unchanged byte-for-byte from the pre-communicator
// runtime. That identity is what keeps existing campaign artefacts stable.

#include <algorithm>
#include <cstring>

#include "tibsim/common/assert.hpp"
#include "tibsim/mpi/simmpi.hpp"

namespace tibsim::mpi {

namespace {
// Tags reserved for collective plumbing; applications should use tags below
// this range. Each communicator is its own match domain, so these tags only
// have to avoid the application's tags, not other communicators'.
constexpr int kBarrierTag = 1 << 24;
constexpr int kBcastTag = 2 << 24;
constexpr int kReduceTag = 3 << 24;
constexpr int kGatherTag = 4 << 24;
constexpr int kAlltoallTag = 5 << 24;

// FLOPs charged per element combined in a reduction.
constexpr double kReduceFlopPerElement = 1.0;

double combineSum(double a, double b) { return a + b; }
double combineMin(double a, double b) { return std::min(a, b); }
double combineMax(double a, double b) { return std::max(a, b); }
double combineProd(double a, double b) { return a * b; }

CombineFn combinerFor(ReduceOp op) {
  switch (op) {
    case ReduceOp::Sum:
      return &combineSum;
    case ReduceOp::Min:
      return &combineMin;
    case ReduceOp::Max:
      return &combineMax;
    case ReduceOp::Prod:
      return &combineProd;
  }
  return &combineSum;
}
}  // namespace

// ---------------------------------------------------------------------------
// Communicator collectives (comm-local ranks throughout)
// ---------------------------------------------------------------------------

void Communicator::barrier(std::source_location loc) const {
  requireMember();
  MpiContext::CollectiveGuard guard(*ctx_, id_, CollectiveKind::Barrier,
                                    kNoReduceOp, 0, loc.file_name(),
                                    loc.line());
  const int n = size();
  if (n == 1) return;
  // Dissemination barrier: ceil(log2 n) rounds; in round k, rank r signals
  // (r + 2^k) mod n and waits for (r - 2^k) mod n.
  for (int dist = 1, round = 0; dist < n; dist *= 2, ++round) {
    const int to = (rank_ + dist) % n;
    const int from = (rank_ - dist % n + n) % n;
    const int tag = kBarrierTag + round;
    if (to == from) {  // dist == n/2: the two directions coincide
      sendrecv(to, tag, 0);
      continue;
    }
    send(to, tag, 0);
    recv(from, tag);
  }
}

std::vector<double> Communicator::bcast(std::vector<double> values,
                                        int root,
                                        std::source_location loc) const {
  requireMember();
  MpiContext::CollectiveGuard guard(*ctx_, id_, CollectiveKind::Bcast,
                                    kNoReduceOp, values.size(),
                                    loc.file_name(), loc.line());
  const int n = size();
  if (n == 1) return values;
  // Binomial tree on rank ids relative to the root.
  const int rel = (rank_ - root + n) % n;

  if (rel != 0) {
    // Receive from the parent: clear the lowest set bit of rel.
    const int parentRel = rel & (rel - 1);
    const int parent = (parentRel + root) % n;
    values = recvDoubles(parent, kBcastTag);
  }
  // Forward to children: set bits above the lowest set bit of rel.
  const int lowBit = rel == 0 ? n : (rel & -rel);
  for (int bit = 1; bit < lowBit && rel + bit < n; bit *= 2) {
    const int child = (rel + bit + root) % n;
    sendDoubles(child, kBcastTag, values);
  }
  return values;
}

void Communicator::bcastBytes(std::size_t bytes, int root,
                              std::source_location loc) const {
  requireMember();
  MpiContext::CollectiveGuard guard(*ctx_, id_, CollectiveKind::BcastBytes,
                                    kNoReduceOp, bytes, loc.file_name(),
                                    loc.line());
  const int n = size();
  if (n == 1) return;
  const int rel = (rank_ - root + n) % n;
  if (rel != 0) {
    const int parentRel = rel & (rel - 1);
    recv((parentRel + root) % n, kBcastTag);
  }
  const int lowBit = rel == 0 ? n : (rel & -rel);
  for (int bit = 1; bit < lowBit && rel + bit < n; bit *= 2) {
    send((rel + bit + root) % n, kBcastTag, bytes);
  }
}

void Communicator::pipelinedBcastBytes(std::size_t bytes, int root,
                                       std::source_location loc) const {
  requireMember();
  MpiContext::CollectiveGuard guard(*ctx_, id_,
                                    CollectiveKind::PipelinedBcastBytes,
                                    kNoReduceOp, bytes, loc.file_name(),
                                    loc.line());
  const int n = size();
  if (n == 1 || bytes == 0) return;
  // Causality: nobody may consume the payload before the root produced it
  // and it reached them; the cheap control broadcast provides the ordering
  // and the per-hop latency component.
  bcastBytes(64, root);
  // Streaming component: in a chunked ring broadcast every rank receives
  // (and all but the last forward) the full payload exactly once, so each
  // rank is occupied for bytes / sustained-rate. CPU cost: one receive and
  // one send pass over the data.
  const net::ProtocolModel& protocol = ctx_->world_.protocolModel();
  const double streamSeconds =
      static_cast<double>(bytes) /
      protocol.effectiveBandwidth(std::max<std::size_t>(bytes, 64 * 1024));
  const net::MessageCosts perChunk = protocol.messageCosts(64 * 1024);
  const double chunks = static_cast<double>(bytes) / (64.0 * 1024.0);
  const double cpuSeconds = std::min(
      streamSeconds,
      chunks * (perChunk.senderSeconds + perChunk.receiverSeconds));
  ctx_->world_.chargeCpu(ctx_->node(), cpuSeconds);
  ctx_->process_.delay(streamSeconds);
}

std::vector<double> Communicator::reduce(std::span<const double> values,
                                         CombineFn combine, int root,
                                         std::source_location loc) const {
  requireMember();
  MpiContext::CollectiveGuard guard(*ctx_, id_, CollectiveKind::Reduce,
                                    kCustomCombineOp, values.size(),
                                    loc.file_name(), loc.line());
  const int n = size();
  std::vector<double> acc(values.begin(), values.end());
  if (n == 1) return acc;
  const int rel = (rank_ - root + n) % n;

  // Binomial combine: in round `bit`, ranks with that bit set send their
  // partial to rel - bit and drop out; the others receive and accumulate.
  // acc = combine(acc, incoming) in this fixed tree order, so the fold is
  // reproducible (and, for Sum, identical to the historical += loop).
  for (int bit = 1; bit < n; bit *= 2) {
    if (rel & bit) {
      const int dst = ((rel - bit) + root) % n;
      sendDoubles(dst, kReduceTag + bit, acc);
      return {};  // non-root ranks return empty
    }
    if (rel + bit < n) {
      const int src = ((rel + bit) + root) % n;
      const std::vector<double> incoming = recvDoubles(src, kReduceTag + bit);
      TIB_REQUIRE(incoming.size() == acc.size());
      for (std::size_t i = 0; i < acc.size(); ++i)
        acc[i] = combine(acc[i], incoming[i]);
      ctx_->compute(perfmodel::WorkProfile{
          kReduceFlopPerElement * static_cast<double>(acc.size()),
          16.0 * static_cast<double>(acc.size()),
          perfmodel::AccessPattern::Streaming, 0.8, 1.0, 0.0});
    }
  }
  return acc;
}

std::vector<double> Communicator::reduce(std::span<const double> values,
                                         ReduceOp op, int root,
                                         std::source_location loc) const {
  requireMember();
  MpiContext::CollectiveGuard guard(*ctx_, id_, CollectiveKind::Reduce,
                                    static_cast<std::uint8_t>(op),
                                    values.size(), loc.file_name(),
                                    loc.line());
  return reduce(values, combinerFor(op), root, loc);
}

std::vector<double> Communicator::allreduce(std::span<const double> values,
                                            ReduceOp op,
                                            std::source_location loc) const {
  requireMember();
  MpiContext::CollectiveGuard guard(*ctx_, id_, CollectiveKind::Allreduce,
                                    static_cast<std::uint8_t>(op),
                                    values.size(), loc.file_name(),
                                    loc.line());
  std::vector<double> reduced = reduce(values, op, 0, loc);
  if (rank_ != 0) reduced.assign(values.size(), 0.0);
  return bcast(std::move(reduced), 0, loc);
}

double Communicator::allreduce(double value, ReduceOp op,
                               std::source_location loc) const {
  const double v[1] = {value};
  return allreduce(std::span<const double>(v, 1), op, loc)[0];
}

std::vector<double> Communicator::gather(double value, int root,
                                         std::source_location loc) const {
  requireMember();
  MpiContext::CollectiveGuard guard(*ctx_, id_, CollectiveKind::Gather,
                                    kNoReduceOp, 1, loc.file_name(),
                                    loc.line());
  const int n = size();
  if (rank_ != root) {
    const double buf[1] = {value};
    sendDoubles(root, kGatherTag, std::span<const double>(buf, 1));
    return {};
  }
  std::vector<double> all(static_cast<std::size_t>(n), 0.0);
  all[static_cast<std::size_t>(rank_)] = value;
  for (int r = 0; r < n; ++r) {
    if (r == root) continue;
    all[static_cast<std::size_t>(r)] = recvDoubles(r, kGatherTag)[0];
  }
  return all;
}

std::vector<double> Communicator::allgather(double value,
                                            std::source_location loc) const {
  requireMember();
  MpiContext::CollectiveGuard guard(*ctx_, id_, CollectiveKind::Allgather,
                                    kNoReduceOp, 1, loc.file_name(),
                                    loc.line());
  std::vector<double> all = gather(value, 0, loc);
  if (rank_ != 0) all.assign(static_cast<std::size_t>(size()), 0.0);
  return bcast(std::move(all), 0, loc);
}

void Communicator::alltoallBytes(std::size_t bytesPerPeer,
                                 std::source_location loc) const {
  requireMember();
  MpiContext::CollectiveGuard guard(*ctx_, id_, CollectiveKind::AlltoallBytes,
                                    kNoReduceOp, bytesPerPeer,
                                    loc.file_name(), loc.line());
  const int n = size();
  // Tournament schedule: in round k the partner of r is (k - r) mod n, which
  // is symmetric (partner's partner is r), covers every pair exactly once
  // over k = 0..n-1, and lets each pair run a rank-ordered sendrecv —
  // deadlock-free even when every payload is a rendezvous message.
  for (int k = 0; k < n; ++k) {
    const int partner = ((k - rank_) % n + n) % n;
    if (partner == rank_) continue;  // this rank sits out round k
    sendrecv(partner, kAlltoallTag + k, bytesPerPeer);
  }
}

// ---------------------------------------------------------------------------
// Legacy MpiContext entry points: the world communicator's collectives
// ---------------------------------------------------------------------------

void MpiContext::barrier(std::source_location loc) {
  commWorld().barrier(loc);
}

std::vector<double> MpiContext::bcast(std::vector<double> values, int root,
                                      std::source_location loc) {
  return commWorld().bcast(std::move(values), root, loc);
}

void MpiContext::bcastBytes(std::size_t bytes, int root,
                            std::source_location loc) {
  commWorld().bcastBytes(bytes, root, loc);
}

void MpiContext::neighborExchange(std::size_t bytes, int tag) {
  const int n = size();
  const bool even = rank() % 2 == 0;
  for (int phase = 0; phase < 2; ++phase) {
    // Phase 0 pairs (0,1),(2,3),...; phase 1 pairs (1,2),(3,4),...
    const int dir = ((phase == 0) == even) ? +1 : -1;
    const int peer = rank() + dir;
    if (peer >= 0 && peer < n) sendrecv(peer, tag + phase, bytes);
  }
}

void MpiContext::pipelinedBcastBytes(std::size_t bytes, int root,
                                     std::source_location loc) {
  commWorld().pipelinedBcastBytes(bytes, root, loc);
}

std::vector<double> MpiContext::reduceSum(std::span<const double> values,
                                          int root,
                                          std::source_location loc) {
  return commWorld().reduce(values, ReduceOp::Sum, root, loc);
}

std::vector<double> MpiContext::allreduceSum(std::span<const double> values,
                                             std::source_location loc) {
  return commWorld().allreduce(values, ReduceOp::Sum, loc);
}

double MpiContext::allreduceSum(double value, std::source_location loc) {
  return commWorld().allreduce(value, ReduceOp::Sum, loc);
}

double MpiContext::allreduceMax(double value, std::source_location loc) {
  // Predates the communicator layer and is frozen as-is: its tag sub-space
  // (kReduceTag + (6 << 20) + bit) and message schedule are part of the
  // byte-identical artefact contract for existing campaigns. The verifier
  // stamp rides inside Message and adds no traffic, so it is safe here too.
  CollectiveGuard guard(*this, 0, CollectiveKind::AllreduceMax,
                        static_cast<std::uint8_t>(ReduceOp::Max), 1,
                        loc.file_name(), loc.line());
  const int n = size();
  double acc = value;
  if (n == 1) return acc;
  for (int bit = 1; bit < n; bit *= 2) {
    if (rank() & bit) {
      const double buf[1] = {acc};
      sendDoubles(rank() - bit, kReduceTag + (6 << 20) + bit,
                  std::span<const double>(buf, 1));
      break;
    }
    if (rank() + bit < n) {
      const std::vector<double> incoming =
          recvDoubles(rank() + bit, kReduceTag + (6 << 20) + bit);
      acc = std::max(acc, incoming[0]);
    }
  }
  std::vector<double> result(1, acc);
  return bcast(std::move(result), 0, loc)[0];
}

std::vector<double> MpiContext::gather(double value, int root,
                                       std::source_location loc) {
  return commWorld().gather(value, root, loc);
}

std::vector<double> MpiContext::allgather(double value,
                                          std::source_location loc) {
  return commWorld().allgather(value, loc);
}

void MpiContext::alltoallBytes(std::size_t bytesPerPeer,
                               std::source_location loc) {
  commWorld().alltoallBytes(bytesPerPeer, loc);
}

}  // namespace tibsim::mpi
