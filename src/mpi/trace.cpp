#include "tibsim/mpi/trace.hpp"

#include <algorithm>
#include <sstream>

#include "tibsim/common/assert.hpp"

namespace tibsim::mpi {

std::string toString(SpanKind kind) {
  switch (kind) {
    case SpanKind::Compute: return "compute";
    case SpanKind::Send: return "send";
    case SpanKind::Recv: return "recv";
    case SpanKind::Wait: return "wait";
  }
  return "unknown";
}

void Tracer::record(TraceSpan span) {
  TIB_REQUIRE(span.end >= span.begin);
  spans_.push_back(span);
}

void Tracer::clear() { spans_.clear(); }

std::vector<Tracer::RankSummary> Tracer::summarize(int ranks,
                                                   double wallClock) const {
  TIB_REQUIRE(ranks >= 1);
  std::vector<RankSummary> summaries(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r)
    summaries[static_cast<std::size_t>(r)].rank = r;
  for (const TraceSpan& span : spans_) {
    if (span.rank < 0 || span.rank >= ranks) continue;
    RankSummary& s = summaries[static_cast<std::size_t>(span.rank)];
    switch (span.kind) {
      case SpanKind::Compute: s.computeSeconds += span.duration(); break;
      case SpanKind::Send: s.sendSeconds += span.duration(); break;
      case SpanKind::Recv: s.recvSeconds += span.duration(); break;
      case SpanKind::Wait: s.waitSeconds += span.duration(); break;
    }
  }
  for (RankSummary& s : summaries) {
    s.otherSeconds = std::max(
        0.0, wallClock - s.computeSeconds - s.sendSeconds - s.recvSeconds -
                 s.waitSeconds);
  }
  return summaries;
}

double Tracer::nonComputeFraction(int ranks, double wallClock) const {
  if (wallClock <= 0.0) return 0.0;
  const auto summaries = summarize(ranks, wallClock);
  double compute = 0.0;
  for (const auto& s : summaries) compute += s.computeSeconds;
  const double total = wallClock * static_cast<double>(ranks);
  return 1.0 - compute / total;
}

std::string Tracer::exportCsv() const {
  std::ostringstream out;
  out << "rank,kind,begin,end,peer,bytes\n";
  for (const TraceSpan& span : spans_) {
    out << span.rank << ',' << toString(span.kind) << ',' << span.begin
        << ',' << span.end << ',' << span.peer << ',' << span.bytes << '\n';
  }
  return out.str();
}

}  // namespace tibsim::mpi
