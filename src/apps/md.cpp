#include "tibsim/apps/md.hpp"

#include <algorithm>
#include <cmath>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/rng.hpp"

namespace tibsim::apps {

using perfmodel::AccessPattern;
using perfmodel::WorkProfile;

// ---------------------------------------------------------------------------
// LennardJonesMd (real numerics)
// ---------------------------------------------------------------------------

LennardJonesMd::LennardJonesMd(Params params) : params_(params) {
  TIB_REQUIRE(params_.particles >= 2);
  TIB_REQUIRE(params_.boxSize > 2.0 * params_.cutoff);
  const std::size_t n = params_.particles;
  px_.resize(n);
  py_.resize(n);
  pz_.resize(n);
  vx_.assign(n, 0.0);
  vy_.assign(n, 0.0);
  vz_.assign(n, 0.0);
  fx_.assign(n, 0.0);
  fy_.assign(n, 0.0);
  fz_.assign(n, 0.0);

  // Lattice start (avoids overlaps), small random velocities with zero
  // total momentum.
  const auto side = static_cast<std::size_t>(std::ceil(std::cbrt(
      static_cast<double>(n))));
  const double spacing = params_.boxSize / static_cast<double>(side);
  Rng rng(params_.seed);
  for (std::size_t i = 0; i < n; ++i) {
    px_[i] = (0.5 + static_cast<double>(i % side)) * spacing;
    py_[i] = (0.5 + static_cast<double>((i / side) % side)) * spacing;
    pz_[i] = (0.5 + static_cast<double>(i / (side * side))) * spacing;
    vx_[i] = rng.normal(0.0, 0.3);
    vy_[i] = rng.normal(0.0, 0.3);
    vz_[i] = rng.normal(0.0, 0.3);
  }
  double mx = 0.0, my = 0.0, mz = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += vx_[i];
    my += vy_[i];
    mz += vz_[i];
  }
  for (std::size_t i = 0; i < n; ++i) {
    vx_[i] -= mx / static_cast<double>(n);
    vy_[i] -= my / static_cast<double>(n);
    vz_[i] -= mz / static_cast<double>(n);
  }

  cellsPerSide_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(params_.boxSize / params_.cutoff));
  cells_.resize(cellsPerSide_ * cellsPerSide_ * cellsPerSide_);
  computeForces();
}

double LennardJonesMd::minimumImage(double d) const {
  const double box = params_.boxSize;
  if (d > 0.5 * box) return d - box;
  if (d < -0.5 * box) return d + box;
  return d;
}

void LennardJonesMd::buildCells() {
  for (auto& cell : cells_) cell.clear();
  const double inv = static_cast<double>(cellsPerSide_) / params_.boxSize;
  for (std::size_t i = 0; i < px_.size(); ++i) {
    auto cx = static_cast<std::size_t>(px_[i] * inv) % cellsPerSide_;
    auto cy = static_cast<std::size_t>(py_[i] * inv) % cellsPerSide_;
    auto cz = static_cast<std::size_t>(pz_[i] * inv) % cellsPerSide_;
    cells_[(cz * cellsPerSide_ + cy) * cellsPerSide_ + cx].push_back(
        static_cast<int>(i));
  }
}

void LennardJonesMd::computeForces() {
  buildCells();
  std::fill(fx_.begin(), fx_.end(), 0.0);
  std::fill(fy_.begin(), fy_.end(), 0.0);
  std::fill(fz_.begin(), fz_.end(), 0.0);
  potential_ = 0.0;
  const double rc2 = params_.cutoff * params_.cutoff;
  const auto m = static_cast<std::ptrdiff_t>(cellsPerSide_);

  auto cellAt = [&](std::ptrdiff_t x, std::ptrdiff_t y, std::ptrdiff_t z)
      -> const std::vector<int>& {
    const auto wrap = [m](std::ptrdiff_t v) { return ((v % m) + m) % m; };
    return cells_[static_cast<std::size_t>(
        (wrap(z) * m + wrap(y)) * m + wrap(x))];
  };

  for (std::ptrdiff_t cz = 0; cz < m; ++cz) {
    for (std::ptrdiff_t cy = 0; cy < m; ++cy) {
      for (std::ptrdiff_t cx = 0; cx < m; ++cx) {
        const auto& home = cellAt(cx, cy, cz);
        for (std::ptrdiff_t dz = -1; dz <= 1; ++dz) {
          for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
            for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
              const auto& other = cellAt(cx + dx, cy + dy, cz + dz);
              for (int i : home) {
                for (int j : other) {
                  if (j <= i) continue;  // each pair once
                  const auto ii = static_cast<std::size_t>(i);
                  const auto jj = static_cast<std::size_t>(j);
                  const double rx = minimumImage(px_[ii] - px_[jj]);
                  const double ry = minimumImage(py_[ii] - py_[jj]);
                  const double rz = minimumImage(pz_[ii] - pz_[jj]);
                  const double r2 = rx * rx + ry * ry + rz * rz;
                  if (r2 >= rc2 || r2 < 1e-12) continue;
                  const double inv2 = 1.0 / r2;
                  const double inv6 = inv2 * inv2 * inv2;
                  // LJ: U = 4 (r^-12 - r^-6); F = 24 (2 r^-12 - r^-6)/r^2 r
                  const double fmag = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
                  potential_ += 4.0 * inv6 * (inv6 - 1.0);
                  fx_[ii] += fmag * rx;
                  fy_[ii] += fmag * ry;
                  fz_[ii] += fmag * rz;
                  fx_[jj] -= fmag * rx;
                  fy_[jj] -= fmag * ry;
                  fz_[jj] -= fmag * rz;
                }
              }
            }
          }
        }
      }
    }
  }
}

void LennardJonesMd::step() {
  const double dt = params_.dt;
  const double box = params_.boxSize;
  const std::size_t n = px_.size();
  // Velocity Verlet: half kick, drift (with periodic wrap), force, half kick.
  for (std::size_t i = 0; i < n; ++i) {
    vx_[i] += 0.5 * dt * fx_[i];
    vy_[i] += 0.5 * dt * fy_[i];
    vz_[i] += 0.5 * dt * fz_[i];
    px_[i] = std::fmod(px_[i] + dt * vx_[i] + box, box);
    py_[i] = std::fmod(py_[i] + dt * vy_[i] + box, box);
    pz_[i] = std::fmod(pz_[i] + dt * vz_[i] + box, box);
  }
  computeForces();
  for (std::size_t i = 0; i < n; ++i) {
    vx_[i] += 0.5 * dt * fx_[i];
    vy_[i] += 0.5 * dt * fy_[i];
    vz_[i] += 0.5 * dt * fz_[i];
  }
}

double LennardJonesMd::kineticEnergy() const {
  double ke = 0.0;
  for (std::size_t i = 0; i < px_.size(); ++i)
    ke += 0.5 * (vx_[i] * vx_[i] + vy_[i] * vy_[i] + vz_[i] * vz_[i]);
  return ke;
}

double LennardJonesMd::potentialEnergy() const { return potential_; }

double LennardJonesMd::momentumNorm() const {
  double mx = 0.0, my = 0.0, mz = 0.0;
  for (std::size_t i = 0; i < px_.size(); ++i) {
    mx += vx_[i];
    my += vy_[i];
    mz += vz_[i];
  }
  return std::sqrt(mx * mx + my * my + mz * mz);
}

// ---------------------------------------------------------------------------
// MdBenchmark (distributed skeleton)
// ---------------------------------------------------------------------------

int MdBenchmark::minimumNodes(const cluster::ClusterSpec& spec,
                              std::size_t atoms) {
  const double total = static_cast<double>(atoms) * bytesPerAtom();
  return static_cast<int>(std::ceil(total / spec.usableBytesPerNode()));
}

mpi::MpiWorld::RankBody MdBenchmark::rankBody(Params params) {
  TIB_REQUIRE(params.atoms >= 1000 && params.steps >= 1);
  return [params](mpi::MpiContext& ctx) {
    const int p = ctx.size();
    const double local = static_cast<double>(params.atoms) / p;
    // 1-D slab decomposition: boundary layer ~ cutoff-depth slab of the
    // local box => surface/volume shrinks as local^(2/3).
    const auto boundaryBytes = static_cast<std::size_t>(
        64.0 * std::cbrt(local) * std::cbrt(local));

    for (int step = 0; step < params.steps; ++step) {
      // Exchange boundary atoms with both slab neighbours.
      ctx.neighborExchange(boundaryBytes, 200);

      // Neighbour-list force computation: ~60 neighbours x ~45 FLOPs per
      // atom, half-counted via Newton's third law; gather-heavy and
      // moderately imbalanced (density fluctuations).
      ctx.compute(WorkProfile{1350.0 * local, 350.0 * local,
                              AccessPattern::Irregular, 0.65, 1.0, 0.10});

      // Return the partial forces of shared atoms to their home ranks.
      ctx.neighborExchange(boundaryBytes, 210);

      // Integration.
      ctx.compute(WorkProfile{18.0 * local, 96.0 * local,
                              AccessPattern::Streaming, 0.85, 1.0, 0.0});

      // Global energy/temperature reduction.
      const double e[2] = {1.0, 1.0};
      ctx.allreduceSum(std::span<const double>(e, 2));
    }
    ctx.barrier();
  };
}

}  // namespace tibsim::apps
