#include "tibsim/apps/hpl.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/power/power_model.hpp"

namespace tibsim::apps {

using perfmodel::AccessPattern;
using perfmodel::WorkProfile;

// ---------------------------------------------------------------------------
// DenseLu (real numerics)
// ---------------------------------------------------------------------------

bool DenseLu::factor(std::vector<double>& a, std::size_t n,
                     std::vector<std::size_t>& pivots) {
  TIB_REQUIRE(a.size() == n * n);
  pivots.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest |a[i][k]| for i >= k.
    std::size_t piv = k;
    double best = std::abs(a[k * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a[i * n + k]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    pivots[k] = piv;
    if (best == 0.0) return false;
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(a[k * n + j], a[piv * n + j]);
    }
    const double pivot = a[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      const double l = a[i * n + k] / pivot;
      a[i * n + k] = l;
      const double* urow = &a[k * n + k + 1];
      double* irow = &a[i * n + k + 1];
      for (std::size_t j = 0; j < n - k - 1; ++j) irow[j] -= l * urow[j];
    }
  }
  return true;
}

void DenseLu::solve(const std::vector<double>& lu, std::size_t n,
                    const std::vector<std::size_t>& pivots,
                    std::vector<double>& b) {
  TIB_REQUIRE(lu.size() == n * n && pivots.size() == n && b.size() == n);
  // Apply the row swaps, then Ly = Pb (unit lower), then Ux = y.
  for (std::size_t k = 0; k < n; ++k)
    if (pivots[k] != k) std::swap(b[k], b[pivots[k]]);
  for (std::size_t i = 1; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu[i * n + j] * b[j];
    b[i] = acc;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu[ii * n + j] * b[j];
    b[ii] = acc / lu[ii * n + ii];
  }
}

double DenseLu::scaledResidual(const std::vector<double>& a,
                               const std::vector<double>& x,
                               const std::vector<double>& b, std::size_t n) {
  TIB_REQUIRE(a.size() == n * n && x.size() == n && b.size() == n);
  double residualInf = 0.0, aInf = 0.0, xInf = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double acc = -b[i];
    double rowSum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      acc += a[i * n + j] * x[j];
      rowSum += std::abs(a[i * n + j]);
    }
    residualInf = std::max(residualInf, std::abs(acc));
    aInf = std::max(aInf, rowSum);
    xInf = std::max(xInf, std::abs(x[i]));
  }
  const double eps = std::numeric_limits<double>::epsilon();
  return residualInf /
         (aInf * xInf * static_cast<double>(n) * eps + 1e-300);
}

// ---------------------------------------------------------------------------
// HplBenchmark (distributed skeleton on simMPI)
// ---------------------------------------------------------------------------

double HplBenchmark::flopCount(std::size_t n) {
  const auto nd = static_cast<double>(n);
  return (2.0 / 3.0) * nd * nd * nd + 2.0 * nd * nd;
}

std::size_t HplBenchmark::problemSizeForNodes(
    const cluster::ClusterSpec& spec, int nodes, double memoryFraction) {
  TIB_REQUIRE(nodes >= 1);
  TIB_REQUIRE(memoryFraction > 0.0 && memoryFraction <= 1.0);
  const double bytes =
      spec.usableBytesPerNode() * memoryFraction * static_cast<double>(nodes);
  const auto n = static_cast<std::size_t>(std::sqrt(bytes / 8.0));
  return n - n % 512;  // align to the block size
}

mpi::MpiWorld::RankBody HplBenchmark::rankBody(Params params) {
  TIB_REQUIRE(params.n >= params.nb && params.nb >= 8);
  return [params](mpi::MpiContext& ctx) {
    const std::size_t n = params.n;
    const std::size_t nb = params.nb;
    const int p = ctx.size();
    const std::size_t blocks = (n + nb - 1) / nb;

    // HPL hides most of the panel factorisation behind the previous trailing
    // update (lookahead); only this fraction of the panel cost lands on the
    // critical path.
    constexpr double kPanelExposedFraction = 0.06;
    for (std::size_t k = 0; k < blocks; ++k) {
      const double h = static_cast<double>(n - k * nb);  // panel height
      const int owner = static_cast<int>(k % static_cast<std::size_t>(p));

      // Panel factorisation on the owner: nb^2 * h FLOPs of partially
      // sequential, bandwidth-unfriendly column work, mostly overlapped.
      if (ctx.rank() == owner) {
        ctx.compute(WorkProfile{
            kPanelExposedFraction * static_cast<double>(nb) * nb * h,
            kPanelExposedFraction * 8.0 * h * nb, AccessPattern::Strided,
            0.6, 1.0, 0.0});
      }

      // Broadcast the factored panel (L block + pivot rows) with HPL's
      // pipelined ring algorithm: each rank streams the panel through once.
      const auto panelBytes = static_cast<std::size_t>(h * nb * 8.0);
      ctx.pipelinedBcastBytes(panelBytes, owner);

      // Trailing-matrix update: everyone updates the rows it owns —
      // DGEMM-shaped work, 2*nb*t^2 FLOPs split across ranks with slight
      // block-cyclic imbalance. Tiled DGEMM sustains a higher fraction of
      // peak than the suite-average scalar efficiency, hence ce > 1.
      const double t = static_cast<double>(n - (k + 1) * nb);
      if (t > 0.0) {
        const double myRows = t / static_cast<double>(p);
        ctx.compute(WorkProfile{2.0 * nb * t * myRows,
                                8.0 * (t * myRows + t * nb),
                                AccessPattern::Blocked, 1.18, 1.0, 0.04});
      }
    }

    // Back-substitution (2 n^2 flops, pipelined over ranks — model the
    // owner's share) and the residual check with its reduction.
    const double nd = static_cast<double>(n);
    ctx.compute(WorkProfile{2.0 * nd * nd / ctx.size(), 8.0 * nd * nd / ctx.size(),
                            AccessPattern::Streaming, 0.8, 1.0, 0.0});
    ctx.allreduceSum(1.0);
    ctx.barrier();
  };
}

cluster::JobResult HplBenchmark::run(cluster::ClusterSimulation& sim,
                                     int nodes, double memoryFraction) {
  return run(sim, nodes, memoryFraction, cluster::JobOptions{});
}

cluster::JobResult HplBenchmark::run(cluster::ClusterSimulation& sim,
                                     int nodes, double memoryFraction,
                                     const cluster::JobOptions& options) {
  Params params;
  params.n = problemSizeForNodes(sim.spec(), nodes, memoryFraction);
  params.nb = 512;
  cluster::JobResult result = sim.runJob(nodes, rankBody(params), options);
  // Credit the official HPL flop count rather than the modelled ops.
  result.gflops = units::toGflops(flopCount(params.n) /
                                  result.wallClockSeconds);
  result.mflopsPerWatt =
      power::mflopsPerWatt(flopCount(params.n), result.wallClockSeconds,
                           result.averagePowerW);
  return result;
}

}  // namespace tibsim::apps
