#include "tibsim/apps/taskfarm.hpp"

#include "tibsim/common/assert.hpp"
#include "tibsim/common/rng.hpp"

namespace tibsim::apps {

namespace {
constexpr int kTaskTag = 1;    ///< master -> worker: {taskId, costSeconds}
constexpr int kResultTag = 2;  ///< worker -> master: {taskId, costSeconds}

void sendTask(const mpi::Communicator& world, int worker, double taskId,
              double costSeconds) {
  const double msg[2] = {taskId, costSeconds};
  world.sendDoubles(worker, kTaskTag, std::span<const double>(msg, 2));
}

void runMaster(mpi::MpiContext& ctx, const mpi::Communicator& world,
               const TaskFarm::Params& params) {
  const int p = world.size();
  Rng rng(params.seed);
  std::vector<double> costs(static_cast<std::size_t>(params.tasks));
  for (double& c : costs)
    c = rng.uniform(0.5 * params.meanTaskSeconds,
                    1.5 * params.meanTaskSeconds);

  std::vector<std::uint64_t> perWorker(static_cast<std::size_t>(p), 0);
  int nextTask = 0;
  int inFlight = 0;

  // Seed every worker with one task; workers the queue cannot feed are
  // released immediately.
  for (int w = 1; w < p; ++w) {
    if (nextTask < params.tasks) {
      sendTask(world, w, static_cast<double>(nextTask),
               costs[static_cast<std::size_t>(nextTask)]);
      ++nextTask;
      ++inFlight;
    } else {
      sendTask(world, w, -1.0, 0.0);  // poison pill
    }
  }

  // Self-scheduling loop: the wildcard receive hands the next task to
  // whichever worker drained first. Deterministic — the match is the first
  // result in canonical delivery order.
  while (inFlight > 0) {
    int src = -1;
    // The deterministic self-scheduling match this proxy demonstrates.
    const std::vector<double> result = world.recvDoubles(
        mpi::kAnySource, kResultTag, &src);  // tibsim-lint: allow(wildcard-recv)
    TIB_REQUIRE(result.size() == 2 && src >= 1 && src < p);
    --inFlight;
    ++perWorker[static_cast<std::size_t>(src)];
    if (nextTask < params.tasks) {
      sendTask(world, src, static_cast<double>(nextTask),
               costs[static_cast<std::size_t>(nextTask)]);
      ++nextTask;
      ++inFlight;
    } else {
      sendTask(world, src, -1.0, 0.0);
    }
  }
  (void)ctx;
  if (params.tasksPerWorkerOut != nullptr)
    *params.tasksPerWorkerOut = std::move(perWorker);
}

void runWorker(mpi::MpiContext& ctx, const mpi::Communicator& world) {
  while (true) {
    const std::vector<double> task =
        world.recvDoubles(TaskFarm::kMasterRank, kTaskTag);
    TIB_REQUIRE(task.size() == 2);
    if (task[0] < 0.0) break;  // poison pill: the queue is drained
    ctx.computeSeconds(task[1]);
    world.sendDoubles(TaskFarm::kMasterRank, kResultTag, task);
  }
}
}  // namespace

mpi::MpiWorld::RankBody TaskFarm::rankBody(Params params) {
  TIB_REQUIRE(params.tasks >= 1);
  TIB_REQUIRE(params.meanTaskSeconds > 0.0);
  return [params](mpi::MpiContext& ctx) {
    TIB_REQUIRE_MSG(ctx.size() >= 2,
                    "taskfarm needs a master and at least one worker");
    mpi::Communicator world = ctx.commWorld();
    if (ctx.rank() == kMasterRank)
      runMaster(ctx, world, params);
    else
      runWorker(ctx, world);
  };
}

}  // namespace tibsim::apps
