#include "tibsim/apps/hydro.hpp"

#include <algorithm>
#include <cmath>

#include "tibsim/common/assert.hpp"

namespace tibsim::apps {

using perfmodel::AccessPattern;
using perfmodel::WorkProfile;

// ---------------------------------------------------------------------------
// EulerSolver2D (real numerics)
// ---------------------------------------------------------------------------

EulerSolver2D::EulerSolver2D(std::size_t nx, std::size_t ny, double gamma)
    : nx_(nx), ny_(ny), gamma_(gamma) {
  TIB_REQUIRE(nx >= 4 && ny >= 2);
  TIB_REQUIRE(gamma > 1.0);
  dx_ = 1.0 / static_cast<double>(nx);
  dy_ = 1.0 / static_cast<double>(ny);
  cells_.assign(nx * ny, State{});
  next_.assign(nx * ny, State{});
}

EulerSolver2D::State& EulerSolver2D::at(std::size_t i, std::size_t j) {
  TIB_REQUIRE(i < nx_ && j < ny_);
  return cells_[j * nx_ + i];
}

const EulerSolver2D::State& EulerSolver2D::at(std::size_t i,
                                              std::size_t j) const {
  TIB_REQUIRE(i < nx_ && j < ny_);
  return cells_[j * nx_ + i];
}

void EulerSolver2D::initSodShockTube() {
  for (std::size_t j = 0; j < ny_; ++j) {
    for (std::size_t i = 0; i < nx_; ++i) {
      State& s = cells_[j * nx_ + i];
      const bool left = i < nx_ / 2;
      const double rho = left ? 1.0 : 0.125;
      const double pres = left ? 1.0 : 0.1;
      s.rho = rho;
      s.momx = 0.0;
      s.momy = 0.0;
      s.energy = pres / (gamma_ - 1.0);
    }
  }
  time_ = 0.0;
}

double EulerSolver2D::pressure(const State& s) const {
  const double kinetic = 0.5 * (s.momx * s.momx + s.momy * s.momy) / s.rho;
  return (gamma_ - 1.0) * (s.energy - kinetic);
}

double EulerSolver2D::soundSpeed(const State& s) const {
  return std::sqrt(std::max(0.0, gamma_ * pressure(s) / s.rho));
}

EulerSolver2D::Flux EulerSolver2D::physicalFluxX(const State& s) const {
  const double u = s.momx / s.rho;
  const double p = pressure(s);
  return {s.momx, s.momx * u + p, s.momy * u, (s.energy + p) * u};
}

EulerSolver2D::Flux EulerSolver2D::physicalFluxY(const State& s) const {
  const double v = s.momy / s.rho;
  const double p = pressure(s);
  return {s.momy, s.momx * v, s.momy * v + p, (s.energy + p) * v};
}

double EulerSolver2D::maxWaveSpeed() const {
  double speed = 1e-12;
  for (const State& s : cells_) {
    const double u = std::abs(s.momx / s.rho);
    const double v = std::abs(s.momy / s.rho);
    speed = std::max(speed, std::max(u, v) + soundSpeed(s));
  }
  return speed;
}

double EulerSolver2D::step(double cfl) {
  TIB_REQUIRE(cfl > 0.0 && cfl < 1.0);
  const double dt =
      cfl * std::min(dx_, dy_) / maxWaveSpeed();

  // Lax-Friedrichs: U_i' = avg(neighbours) - dt/(2dx) (F_{i+1} - F_{i-1}),
  // with reflecting x boundaries and periodic y (the tube is uniform in y).
  auto idx = [this](std::size_t i, std::size_t j) { return j * nx_ + i; };
  for (std::size_t j = 0; j < ny_; ++j) {
    const std::size_t jm = (j + ny_ - 1) % ny_;
    const std::size_t jp = (j + 1) % ny_;
    for (std::size_t i = 0; i < nx_; ++i) {
      const std::size_t im = i == 0 ? 0 : i - 1;
      const std::size_t ip = i + 1 == nx_ ? nx_ - 1 : i + 1;
      const State& left = cells_[idx(im, j)];
      const State& right = cells_[idx(ip, j)];
      const State& down = cells_[idx(i, jm)];
      const State& up = cells_[idx(i, jp)];

      const Flux fxl = physicalFluxX(left);
      const Flux fxr = physicalFluxX(right);
      const Flux fyd = physicalFluxY(down);
      const Flux fyu = physicalFluxY(up);

      State& out = next_[idx(i, j)];
      out.rho = 0.25 * (left.rho + right.rho + down.rho + up.rho) -
                dt / (2.0 * dx_) * (fxr.rho - fxl.rho) -
                dt / (2.0 * dy_) * (fyu.rho - fyd.rho);
      out.momx = 0.25 * (left.momx + right.momx + down.momx + up.momx) -
                 dt / (2.0 * dx_) * (fxr.momx - fxl.momx) -
                 dt / (2.0 * dy_) * (fyu.momx - fyd.momx);
      out.momy = 0.25 * (left.momy + right.momy + down.momy + up.momy) -
                 dt / (2.0 * dx_) * (fxr.momy - fxl.momy) -
                 dt / (2.0 * dy_) * (fyu.momy - fyd.momy);
      out.energy =
          0.25 * (left.energy + right.energy + down.energy + up.energy) -
          dt / (2.0 * dx_) * (fxr.energy - fxl.energy) -
          dt / (2.0 * dy_) * (fyu.energy - fyd.energy);
    }
  }
  std::swap(cells_, next_);
  time_ += dt;
  return dt;
}

double EulerSolver2D::totalMass() const {
  double mass = 0.0;
  for (const State& s : cells_) mass += s.rho;
  return mass * dx_ * dy_;
}

double EulerSolver2D::totalEnergy() const {
  double energy = 0.0;
  for (const State& s : cells_) energy += s.energy;
  return energy * dx_ * dy_;
}

// ---------------------------------------------------------------------------
// HydroBenchmark (distributed skeleton)
// ---------------------------------------------------------------------------

mpi::MpiWorld::RankBody HydroBenchmark::rankBody(Params params) {
  TIB_REQUIRE(params.nx >= 64 && params.ny >= 64 && params.steps >= 1);
  return [params](mpi::MpiContext& ctx) {
    const int p = ctx.size();
    const double rows = static_cast<double>(params.ny) / p;
    const double nx = static_cast<double>(params.nx);
    // 4 conserved variables, 2 ghost rows per side.
    const auto haloBytes = static_cast<std::size_t>(nx * 4.0 * 8.0);

    for (int step = 0; step < params.steps; ++step) {
      // Dimensional splitting: an x-sweep and a y-sweep per step, each
      // preceded by a halo exchange with the row neighbours (red-black
      // schedule). ~75 FLOPs per cell per sweep, with a small imbalance
      // from the refinement pattern.
      for (int sweep = 0; sweep < 2; ++sweep) {
        ctx.neighborExchange(haloBytes, 100 + 2 * sweep);
        ctx.compute(WorkProfile{75.0 * nx * rows, 40.0 * nx * rows,
                                AccessPattern::Spatial, 0.75, 1.0, 0.06});
      }

      // Global CFL time-step reduction: latency-bound on every step.
      ctx.allreduceMax(1.0);
    }
    ctx.barrier();
  };
}

mpi::MpiWorld::RankBody HydroBenchmark::asyncRankBody(Params params) {
  TIB_REQUIRE(params.nx >= 64 && params.ny >= 64 && params.steps >= 1);
  TIB_REQUIRE(params.groupSize >= 1);
  return [params](mpi::MpiContext& ctx) {
    const int p = ctx.size();
    const int rank = ctx.rank();
    mpi::Communicator world = ctx.commWorld();
    const int groupSize = std::min(params.groupSize, p);
    // Row groups: contiguous blocks of groupSize ranks, keyed by world rank
    // so comm-local order matches domain order. Leaders (group rank 0) form
    // a second communicator for the upper level of the CFL reduction.
    const mpi::Communicator rowComm = world.split(rank / groupSize, rank);
    const bool leader = rowComm.rank() == 0;
    const mpi::Communicator leaders =
        world.split(leader ? 0 : mpi::kUndefinedColor, rank);
    // Halo traffic rides a duplicate of the world communicator: same ranks,
    // own match domain, so the in-flight isend/irecv pairs can never collide
    // with collective plumbing or application tags on the world.
    const mpi::Communicator halo = world.dup();

    const double rows = static_cast<double>(params.ny) / p;
    const double nx = static_cast<double>(params.nx);
    const auto haloBytes = static_cast<std::size_t>(nx * 4.0 * 8.0);
    // Interior cells can be updated while the ghost rows are on the wire;
    // the two boundary rows per side wait for the halos.
    const double interiorFrac = rows > 4.0 ? (rows - 4.0) / rows : 0.0;

    for (int step = 0; step < params.steps; ++step) {
      for (int sweep = 0; sweep < 2; ++sweep) {
        const int tag = 200 + sweep;
        std::vector<mpi::Communicator::Request> reqs;
        if (rank > 0) {
          reqs.push_back(halo.irecv(rank - 1, tag));
          reqs.push_back(halo.isend(rank - 1, tag, haloBytes));
        }
        if (rank + 1 < p) {
          reqs.push_back(halo.irecv(rank + 1, tag));
          reqs.push_back(halo.isend(rank + 1, tag, haloBytes));
        }
        // Interior update overlaps the in-flight halos.
        ctx.compute(WorkProfile{75.0 * nx * rows * interiorFrac,
                                40.0 * nx * rows * interiorFrac,
                                AccessPattern::Spatial, 0.75, 1.0, 0.06});
        halo.waitall(reqs);
        // Boundary rows once the ghosts are in.
        ctx.compute(WorkProfile{75.0 * nx * rows * (1.0 - interiorFrac),
                                40.0 * nx * rows * (1.0 - interiorFrac),
                                AccessPattern::Spatial, 0.75, 1.0, 0.06});
      }

      // Two-level CFL reduction: row-local max to the group leader, a
      // non-blocking allreduce across leaders, then a group broadcast.
      const double local[1] = {1.0};
      std::vector<double> rowMax =
          rowComm.reduce(std::span<const double>(local, 1),
                         mpi::ReduceOp::Max, 0);
      double seed = 0.0;
      if (leader) {
        const mpi::Communicator::Request req =
            leaders.iallreduce(rowMax, mpi::ReduceOp::Max);
        seed = leaders.waitDoubles(req)[0];
      }
      std::vector<double> result(1, seed);
      rowComm.bcast(std::move(result), 0);
    }
    world.barrier();
  };
}

}  // namespace tibsim::apps
