#include "tibsim/apps/pepc.hpp"

#include <algorithm>
#include <cmath>

#include "tibsim/common/assert.hpp"

namespace tibsim::apps {

using perfmodel::AccessPattern;
using perfmodel::WorkProfile;

// ---------------------------------------------------------------------------
// BarnesHutTree (real numerics)
// ---------------------------------------------------------------------------

BarnesHutTree::BarnesHutTree(std::vector<Body> bodies)
    : bodies_(std::move(bodies)) {
  TIB_REQUIRE(!bodies_.empty());
  double lo = bodies_[0].x, hi = bodies_[0].x;
  for (const auto& b : bodies_) {
    lo = std::min({lo, b.x, b.y, b.z});
    hi = std::max({hi, b.x, b.y, b.z});
  }
  const double half = 0.5 * (hi - lo) + 1e-9;
  const double mid = 0.5 * (hi + lo);
  std::vector<int> indices(bodies_.size());
  for (std::size_t i = 0; i < indices.size(); ++i)
    indices[i] = static_cast<int>(i);
  nodes_.reserve(2 * bodies_.size());
  root_ = build(std::move(indices), mid, mid, mid, half, 0);
}

int BarnesHutTree::build(std::vector<int> indices, double cx, double cy,
                         double cz, double half, int depth) {
  if (indices.empty()) return -1;
  const int nodeIndex = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  {
    Node& node = nodes_.back();
    node.cx = cx;
    node.cy = cy;
    node.cz = cz;
    node.half = half;
    node.count = static_cast<int>(indices.size());
  }

  // Charge-weighted centroid.
  double q = 0.0, mx = 0.0, my = 0.0, mz = 0.0, aq = 0.0;
  for (int i : indices) {
    const Body& b = bodies_[static_cast<std::size_t>(i)];
    q += b.charge;
    const double w = std::abs(b.charge);
    aq += w;
    mx += w * b.x;
    my += w * b.y;
    mz += w * b.z;
  }
  nodes_[static_cast<std::size_t>(nodeIndex)].charge = q;
  if (aq > 0.0) {
    nodes_[static_cast<std::size_t>(nodeIndex)].mx = mx / aq;
    nodes_[static_cast<std::size_t>(nodeIndex)].my = my / aq;
    nodes_[static_cast<std::size_t>(nodeIndex)].mz = mz / aq;
  } else {
    nodes_[static_cast<std::size_t>(nodeIndex)].mx = cx;
    nodes_[static_cast<std::size_t>(nodeIndex)].my = cy;
    nodes_[static_cast<std::size_t>(nodeIndex)].mz = cz;
  }

  if (indices.size() == 1 || depth > 48) {
    nodes_[static_cast<std::size_t>(nodeIndex)].body = indices[0];
    return nodeIndex;
  }

  std::vector<int> buckets[8];
  for (int i : indices) {
    const Body& b = bodies_[static_cast<std::size_t>(i)];
    const int oct = (b.x >= cx ? 1 : 0) | (b.y >= cy ? 2 : 0) |
                    (b.z >= cz ? 4 : 0);
    buckets[oct].push_back(i);
  }
  const double h2 = half * 0.5;
  for (int oct = 0; oct < 8; ++oct) {
    if (buckets[oct].empty()) continue;
    const double ox = cx + ((oct & 1) != 0 ? h2 : -h2);
    const double oy = cy + ((oct & 2) != 0 ? h2 : -h2);
    const double oz = cz + ((oct & 4) != 0 ? h2 : -h2);
    const int child = build(std::move(buckets[oct]), ox, oy, oz, h2,
                            depth + 1);
    nodes_[static_cast<std::size_t>(nodeIndex)].children[oct] = child;
  }
  return nodeIndex;
}

void BarnesHutTree::accumulate(int nodeIndex, std::size_t i, double theta,
                               Force& force) const {
  const Node& node = nodes_[static_cast<std::size_t>(nodeIndex)];
  const Body& body = bodies_[i];
  const double dx = node.mx - body.x;
  const double dy = node.my - body.y;
  const double dz = node.mz - body.z;
  const double dist2 = dx * dx + dy * dy + dz * dz;

  const bool isLeaf = node.body >= 0;
  const bool farEnough =
      !isLeaf && theta > 0.0 &&
      (2.0 * node.half) * (2.0 * node.half) < theta * theta * dist2;

  if (isLeaf || farEnough) {
    if (isLeaf && static_cast<std::size_t>(node.body) == i) return;
    const double soft = dist2 + 1e-9;
    const double inv = 1.0 / std::sqrt(soft);
    const double w = node.charge * body.charge * inv * inv * inv;
    force.fx += w * dx;
    force.fy += w * dy;
    force.fz += w * dz;
    return;
  }
  for (int child : node.children) {
    if (child >= 0) accumulate(child, i, theta, force);
  }
}

BarnesHutTree::Force BarnesHutTree::forceOn(std::size_t i,
                                            double theta) const {
  TIB_REQUIRE(i < bodies_.size());
  Force f;
  if (root_ >= 0) accumulate(root_, i, theta, f);
  return f;
}

std::vector<BarnesHutTree::Force> BarnesHutTree::allForces(
    double theta) const {
  std::vector<Force> forces(bodies_.size());
  for (std::size_t i = 0; i < bodies_.size(); ++i)
    forces[i] = forceOn(i, theta);
  return forces;
}

std::vector<BarnesHutTree::Force> BarnesHutTree::directForces() const {
  std::vector<Force> forces(bodies_.size());
  for (std::size_t i = 0; i < bodies_.size(); ++i) {
    for (std::size_t j = 0; j < bodies_.size(); ++j) {
      if (i == j) continue;
      const double dx = bodies_[j].x - bodies_[i].x;
      const double dy = bodies_[j].y - bodies_[i].y;
      const double dz = bodies_[j].z - bodies_[i].z;
      const double dist2 = dx * dx + dy * dy + dz * dz + 1e-9;
      const double inv = 1.0 / std::sqrt(dist2);
      const double w =
          bodies_[j].charge * bodies_[i].charge * inv * inv * inv;
      forces[i].fx += w * dx;
      forces[i].fy += w * dy;
      forces[i].fz += w * dz;
    }
  }
  return forces;
}

// ---------------------------------------------------------------------------
// PepcBenchmark (distributed skeleton)
// ---------------------------------------------------------------------------

int PepcBenchmark::minimumNodes(const cluster::ClusterSpec& spec,
                                std::size_t particles) {
  const double total = static_cast<double>(particles) * bytesPerParticle();
  return static_cast<int>(std::ceil(total / spec.usableBytesPerNode()));
}

mpi::MpiWorld::RankBody PepcBenchmark::rankBody(Params params) {
  TIB_REQUIRE(params.particles >= 1000 && params.steps >= 1);
  return [params](mpi::MpiContext& ctx) {
    const double n = static_cast<double>(params.particles);
    const double p = static_cast<double>(ctx.size());
    const double local = n / p;

    for (int step = 0; step < params.steps; ++step) {
      // Space-filling-curve domain decomposition (parallel sort of keys).
      ctx.compute(WorkProfile{8.0 * local * std::log2(local), 48.0 * local,
                              AccessPattern::Blocked, 0.5, 1.0, 0.05});

      // Local tree construction.
      ctx.compute(WorkProfile{60.0 * local, 120.0 * local,
                              AccessPattern::Irregular, 0.5, 1.0, 0.05});

      // Branch-node exchange: every rank ships its essential-tree summary
      // to every peer. The per-peer payload shrinks only slowly with p, so
      // total traffic grows ~p per rank — the scaling killer.
      const auto branchBytes = static_cast<std::size_t>(
          32.0 * (std::cbrt(local) * std::cbrt(local) +
                  60.0 * std::log2(p + 1.0)));
      ctx.alltoallBytes(branchBytes);

      // Tree-walk force evaluation: ~36 flops per interaction, ~log n
      // interactions per particle, with tree-depth load imbalance.
      ctx.compute(WorkProfile{36.0 * local * std::log2(n), 200.0 * local,
                              AccessPattern::Irregular, 0.6, 1.0, 0.18});

      // Integration + global diagnostics.
      ctx.compute(WorkProfile{12.0 * local, 48.0 * local,
                              AccessPattern::Streaming, 0.8, 1.0, 0.0});
      const double energy[4] = {1.0, 1.0, 1.0, 1.0};
      ctx.allreduceSum(std::span<const double>(energy, 4));
    }
    ctx.barrier();
  };
}

}  // namespace tibsim::apps
