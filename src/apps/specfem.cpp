#include "tibsim/apps/specfem.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "tibsim/common/assert.hpp"

namespace tibsim::apps {

using perfmodel::AccessPattern;
using perfmodel::WorkProfile;

// ---------------------------------------------------------------------------
// AcousticWave2D (real numerics)
// ---------------------------------------------------------------------------

AcousticWave2D::AcousticWave2D(Params params) : params_(params) {
  TIB_REQUIRE(params_.n >= 16);
  TIB_REQUIRE(params_.waveSpeed > 0.0 && params_.cfl > 0.0 &&
              params_.cfl < 1.0);
  // 4th-order spatial stencil stability bound ~ cfl/sqrt(2) in 2-D.
  dt_ = params_.cfl * params_.dx / (params_.waveSpeed * std::sqrt(2.0));
  const std::size_t cells = params_.n * params_.n;
  prev_.assign(cells, 0.0);
  curr_.assign(cells, 0.0);
  next_.assign(cells, 0.0);
}

double AcousticWave2D::at(std::size_t i, std::size_t j) const {
  TIB_REQUIRE(i < params_.n && j < params_.n);
  return curr_[j * params_.n + i];
}

void AcousticWave2D::step() {
  const std::size_t n = params_.n;
  const double c2dt2 =
      params_.waveSpeed * params_.waveSpeed * dt_ * dt_ /
      (params_.dx * params_.dx);
  auto idx = [n](std::size_t i, std::size_t j) { return j * n + i; };

  // 4th-order Laplacian: (-1/12, 4/3, -5/2, 4/3, -1/12) per axis.
  for (std::size_t j = 2; j + 2 < n; ++j) {
    for (std::size_t i = 2; i + 2 < n; ++i) {
      const double lap =
          (-1.0 / 12.0) * (curr_[idx(i - 2, j)] + curr_[idx(i + 2, j)] +
                           curr_[idx(i, j - 2)] + curr_[idx(i, j + 2)]) +
          (4.0 / 3.0) * (curr_[idx(i - 1, j)] + curr_[idx(i + 1, j)] +
                         curr_[idx(i, j - 1)] + curr_[idx(i, j + 1)]) -
          5.0 * curr_[idx(i, j)];
      next_[idx(i, j)] =
          2.0 * curr_[idx(i, j)] - prev_[idx(i, j)] + c2dt2 * lap;
    }
  }

  // Ricker wavelet source at the centre, active for the first ~2 periods.
  const double f0 = params_.sourceFrequency;
  const double t0 = 1.5 / f0;
  const double t = static_cast<double>(steps_);
  const double arg = std::numbers::pi * f0 * (t - t0);
  const double ricker = (1.0 - 2.0 * arg * arg) * std::exp(-arg * arg);
  if (t < 3.0 / f0) next_[idx(n / 2, n / 2)] += ricker * dt_ * dt_;

  std::swap(prev_, curr_);
  std::swap(curr_, next_);
  time_ += dt_;
  ++steps_;
}

double AcousticWave2D::energy() const {
  const std::size_t n = params_.n;
  double e = 0.0;
  for (std::size_t j = 1; j + 1 < n; ++j) {
    for (std::size_t i = 1; i + 1 < n; ++i) {
      const double ut = (curr_[j * n + i] - prev_[j * n + i]) / dt_;
      const double ux =
          (curr_[j * n + i + 1] - curr_[j * n + i - 1]) / (2.0 * params_.dx);
      const double uy =
          (curr_[(j + 1) * n + i] - curr_[(j - 1) * n + i]) /
          (2.0 * params_.dx);
      e += 0.5 * ut * ut +
           0.5 * params_.waveSpeed * params_.waveSpeed * (ux * ux + uy * uy);
    }
  }
  return e * params_.dx * params_.dx;
}

double AcousticWave2D::wavefrontRadius() const {
  const std::size_t n = params_.n;
  double peak = 0.0;
  for (double v : curr_) peak = std::max(peak, std::abs(v));
  if (peak <= 0.0) return 0.0;
  const double threshold = 0.01 * peak;
  double radius = 0.0;
  const double cx = static_cast<double>(n / 2);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      if (std::abs(curr_[j * n + i]) >= threshold) {
        const double dx = (static_cast<double>(i) - cx) * params_.dx;
        const double dy = (static_cast<double>(j) - cx) * params_.dx;
        radius = std::max(radius, std::sqrt(dx * dx + dy * dy));
      }
    }
  }
  return radius;
}

// ---------------------------------------------------------------------------
// SpecfemBenchmark (distributed skeleton)
// ---------------------------------------------------------------------------

int SpecfemBenchmark::minimumNodes(const cluster::ClusterSpec& spec,
                                   std::size_t elements) {
  const double total = static_cast<double>(elements) * bytesPerElement();
  return static_cast<int>(std::ceil(total / spec.usableBytesPerNode()));
}

mpi::MpiWorld::RankBody SpecfemBenchmark::rankBody(Params params) {
  TIB_REQUIRE(params.elements >= 100 && params.steps >= 1);
  return [params](mpi::MpiContext& ctx) {
    const int p = ctx.size();
    const double local = static_cast<double>(params.elements) / p;
    // Each 5x5x5-GLL element costs ~9000 FLOPs per step; only the shared
    // faces travel: ~25 points x 8 B per boundary element.
    const auto faceBytes = static_cast<std::size_t>(
        200.0 * std::cbrt(local) * std::cbrt(local));

    for (int step = 0; step < params.steps; ++step) {
      ctx.neighborExchange(faceBytes, 300);

      // Spectral-element stiffness: dense small-matrix work, cache-blocked.
      ctx.compute(WorkProfile{9000.0 * local, 600.0 * local,
                              AccessPattern::Blocked, 0.8, 1.0, 0.03});

      // Newmark update.
      ctx.compute(WorkProfile{150.0 * local, 240.0 * local,
                              AccessPattern::Streaming, 0.85, 1.0, 0.0});

      // Seismogram flush: an occasional cheap gather to rank 0.
      if (step % 20 == 19) ctx.gather(1.0, 0);
    }
    ctx.barrier();
  };
}

}  // namespace tibsim::apps
