#include "tibsim/perfmodel/execution_model.hpp"

#include <algorithm>
#include <cmath>

#include "tibsim/common/assert.hpp"

namespace tibsim::perfmodel {

std::string toString(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::Streaming: return "streaming";
    case AccessPattern::Strided: return "strided";
    case AccessPattern::Blocked: return "blocked";
    case AccessPattern::Spatial: return "spatial";
    case AccessPattern::Irregular: return "irregular";
    case AccessPattern::Random: return "random";
    case AccessPattern::Resident: return "resident";
  }
  return "unknown";
}

MicroarchEfficiency efficiencyOf(arch::Microarch microarch) {
  using arch::Microarch;
  switch (microarch) {
    case Microarch::CortexA9:
      // 2-wide, short OoO window, FMA every other cycle already folded into
      // fp64FlopsPerCycle; scalar code keeps the unit fairly busy.
      return {0.55, 0.78};
    case Microarch::CortexA15:
      // Wider and deeper than A9 but the fully-pipelined FMA is harder to
      // keep fed from scalar code: per-core speedup over A9 at equal
      // frequency is ~1.3x (paper Fig. 3), not the 2x peak ratio.
      return {0.34, 0.88};
    case Microarch::CortexA57:
      // ARMv8 projection: NEON FP64 doubles peak; compiled code vectorises
      // moderately well.
      return {0.33, 0.90};
    case Microarch::SandyBridge:
      // 8 FLOP/cycle AVX peak; non-hand-tuned kernels sustain ~1.6
      // FLOP/cycle, giving the ~3x gap to Cortex-A15 the paper reports.
      return {0.198, 1.0};
  }
  return {};
}

double patternBandwidthFactor(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::Streaming: return 1.00;
    case AccessPattern::Strided: return 0.55;
    case AccessPattern::Blocked: return 0.85;
    case AccessPattern::Spatial: return 0.80;
    case AccessPattern::Irregular: return 0.35;
    case AccessPattern::Random: return 0.20;
    case AccessPattern::Resident: return 1.00;
  }
  return 1.0;
}

double ExecutionModel::achievableBandwidth(const arch::Platform& platform,
                                           AccessPattern pattern, int cores,
                                           double frequencyHz) const {
  TIB_REQUIRE(cores >= 1 && cores <= platform.soc.cores);
  const auto& mem = platform.soc.memory;
  const double factor = patternBandwidthFactor(pattern);
  const double socLimit =
      mem.peakBandwidthBytesPerS * mem.streamEfficiency * factor;
  // A single core is limited by outstanding misses; the request rate (and so
  // the achievable single-core bandwidth) scales partially with CPU clock.
  const double fRatio = frequencyHz / platform.soc.maxFrequencyHz();
  const double perCore = mem.singleCoreBandwidthBytesPerS *
                         (0.30 + 0.70 * fRatio) * factor;
  return std::min(socLimit, perCore * static_cast<double>(cores));
}

double ExecutionModel::achievableFlops(const arch::Platform& platform,
                                       const WorkProfile& work,
                                       double frequencyHz) const {
  const MicroarchEfficiency eff = efficiencyOf(platform.soc.core.microarch);
  double factor = eff.scalarFpEfficiency * work.computeEfficiency;
  if (work.pattern == AccessPattern::Irregular ||
      work.pattern == AccessPattern::Random) {
    factor *= eff.irregularCodeFactor;
  }
  return platform.soc.core.fp64FlopsPerCycle * frequencyHz * factor;
}

double ExecutionModel::time(const arch::Platform& platform,
                            const WorkProfile& work, double frequencyHz,
                            int cores) const {
  TIB_REQUIRE(cores >= 1 && cores <= platform.soc.cores);
  TIB_REQUIRE(frequencyHz > 0.0);
  TIB_REQUIRE(work.flops >= 0.0 && work.bytes >= 0.0);

  // Amdahl + imbalance: the parallel part runs on `cores` streams, the
  // slowest of which carries (1 + imbalance) of the mean share.
  const double serialShare = 1.0 - work.parallelFraction;
  const double parallelShare =
      work.parallelFraction * (1.0 + work.loadImbalance) /
      static_cast<double>(cores);
  const double effectiveShare = serialShare + parallelShare;

  const double flopRate = achievableFlops(platform, work, frequencyHz);
  const double computeTime = work.flops * effectiveShare / flopRate;

  double memoryTime = 0.0;
  if (work.bytes > 0.0 && work.pattern != AccessPattern::Resident) {
    // The serial portion sees single-core bandwidth; the parallel portion
    // sees all-core bandwidth.
    const double bwAll =
        achievableBandwidth(platform, work.pattern, cores, frequencyHz);
    const double bwOne =
        achievableBandwidth(platform, work.pattern, 1, frequencyHz);
    memoryTime = work.bytes * serialShare / bwOne +
                 work.bytes * work.parallelFraction *
                     (1.0 + work.loadImbalance) / bwAll;
  }
  return std::max(computeTime, memoryTime);
}

double ExecutionModel::consumedBandwidth(const arch::Platform& platform,
                                         const WorkProfile& work,
                                         double frequencyHz, int cores) const {
  const double t = time(platform, work, frequencyHz, cores);
  if (t <= 0.0) return 0.0;
  return work.bytes / t;
}

}  // namespace tibsim::perfmodel
