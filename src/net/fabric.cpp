#include "tibsim/net/fabric.hpp"

#include <algorithm>

namespace tibsim::net {

Fabric::Fabric(TopologySpec spec) : spec_(spec) {
  TIB_REQUIRE(spec_.nodes >= 1);
  TIB_REQUIRE(spec_.nodesPerLeafSwitch >= 1);
  TIB_REQUIRE(spec_.linkRateBytesPerS > 0.0);
  TIB_REQUIRE(spec_.bisectionBytesPerS > 0.0);
  uplink_.assign(static_cast<std::size_t>(spec_.nodes),
                 Resource{spec_.linkRateBytesPerS, 0.0});
  downlink_.assign(static_cast<std::size_t>(spec_.nodes),
                   Resource{spec_.linkRateBytesPerS, 0.0});
  core_ = Resource{spec_.bisectionBytesPerS, 0.0};
}

bool Fabric::sameLeaf(int src, int dst) const {
  return src / spec_.nodesPerLeafSwitch == dst / spec_.nodesPerLeafSwitch;
}

int Fabric::hopCount(int src, int dst) const {
  TIB_REQUIRE(src >= 0 && src < spec_.nodes);
  TIB_REQUIRE(dst >= 0 && dst < spec_.nodes);
  if (src == dst) return 0;
  return sameLeaf(src, dst) ? 1 : 3;
}

double Fabric::occupy(Resource& resource, double bytes, double earliest) {
  const double start = std::max(earliest, resource.nextFree);
  totalQueueingSeconds_ += start - earliest;
  const double finish = start + bytes / resource.rateBytesPerS;
  resource.nextFree = finish;
  return finish;
}

double Fabric::scheduleWire(int src, int dst, double wireBytes,
                            double startTime) {
  TIB_REQUIRE(src >= 0 && src < spec_.nodes);
  TIB_REQUIRE(dst >= 0 && dst < spec_.nodes);
  TIB_REQUIRE(src != dst);
  TIB_REQUIRE(wireBytes >= 0.0);

  totalWireBytes_ += wireBytes;
  ++transferCount_;

  // Cut-through forwarding: each downstream stage can begin as soon as the
  // first bytes of the previous stage arrive, so when a resource is free its
  // serialisation fully overlaps the previous stage (earliest start =
  // previous finish minus its own serialisation time); when it is busy the
  // message queues. A fixed per-hop switch latency is added at the end.
  const double serialise = wireBytes / spec_.linkRateBytesPerS;
  double t = occupy(uplink_[static_cast<std::size_t>(src)], wireBytes,
                    startTime);
  if (!sameLeaf(src, dst)) {
    const double coreSerialise = wireBytes / spec_.bisectionBytesPerS;
    t = occupy(core_, wireBytes, std::max(startTime, t - coreSerialise));
  }
  t = occupy(downlink_[static_cast<std::size_t>(dst)], wireBytes,
             std::max(startTime, t - serialise));
  return t + spec_.switchLatency * hopCount(src, dst);
}

}  // namespace tibsim::net
