#include "tibsim/net/fabric.hpp"

#include <algorithm>

namespace tibsim::net {

Fabric::Fabric(TopologySpec spec, bool telemetry)
    : spec_(spec), telemetry_(telemetry) {
  TIB_REQUIRE(spec_.nodes >= 1);
  TIB_REQUIRE(spec_.nodesPerLeafSwitch >= 1);
  TIB_REQUIRE(spec_.linkRateBytesPerS > 0.0);
  TIB_REQUIRE(spec_.bisectionBytesPerS > 0.0);
  uplink_.assign(static_cast<std::size_t>(spec_.nodes),
                 Resource{spec_.linkRateBytesPerS, 0.0});
  downlink_.assign(static_cast<std::size_t>(spec_.nodes),
                   Resource{spec_.linkRateBytesPerS, 0.0});
  core_ = Resource{spec_.bisectionBytesPerS, 0.0};
}

bool Fabric::sameLeaf(int src, int dst) const {
  return src / spec_.nodesPerLeafSwitch == dst / spec_.nodesPerLeafSwitch;
}

int Fabric::hopCount(int src, int dst) const {
  TIB_REQUIRE(src >= 0 && src < spec_.nodes);
  TIB_REQUIRE(dst >= 0 && dst < spec_.nodes);
  if (src == dst) return 0;
  return sameLeaf(src, dst) ? 1 : 3;
}

double Fabric::occupy(Resource& resource,
                      obs::DurationHistogram& delayHistogram, double bytes,
                      double earliest) {
  const double start = std::max(earliest, resource.nextFree);
  const double queued = start - earliest;
  totalQueueingSeconds_ += queued;
  const double serialise = bytes / resource.rateBytesPerS;
  const double finish = start + serialise;
  resource.nextFree = finish;
  if (telemetry_) {
    resource.busySeconds += serialise;
    resource.bytes += bytes;
    resource.queueSeconds += queued;
    ++resource.transfers;
    delayHistogram.record(queued);
  }
  return finish;
}

void Fabric::fold(const Resource& resource, obs::LinkKindCounters& into) {
  into.busySeconds += resource.busySeconds;
  into.bytes += resource.bytes;
  into.transfers += resource.transfers;
  into.queueSeconds += resource.queueSeconds;
  if (resource.busySeconds > into.maxLinkBusySeconds)
    into.maxLinkBusySeconds = resource.busySeconds;
}

obs::LinkStats Fabric::linkStats() const {
  obs::LinkStats stats;
  for (const Resource& link : uplink_) fold(link, stats.uplink);
  fold(core_, stats.core);
  for (const Resource& link : downlink_) fold(link, stats.downlink);
  stats.uplink.queueDelay = uplinkDelay_;
  stats.core.queueDelay = coreDelay_;
  stats.downlink.queueDelay = downlinkDelay_;
  return stats;
}

double Fabric::scheduleWire(int src, int dst, double wireBytes,
                            double startTime) {
  TIB_REQUIRE(src >= 0 && src < spec_.nodes);
  TIB_REQUIRE(dst >= 0 && dst < spec_.nodes);
  TIB_REQUIRE(src != dst);
  TIB_REQUIRE(wireBytes >= 0.0);

  totalWireBytes_ += wireBytes;
  ++transferCount_;

  // Cut-through forwarding: each downstream stage can begin as soon as the
  // first bytes of the previous stage arrive, so when a resource is free its
  // serialisation fully overlaps the previous stage (earliest start =
  // previous finish minus its own serialisation time); when it is busy the
  // message queues. A fixed per-hop switch latency is added at the end.
  const double serialise = wireBytes / spec_.linkRateBytesPerS;
  double t = occupy(uplink_[static_cast<std::size_t>(src)], uplinkDelay_,
                    wireBytes, startTime);
  if (!sameLeaf(src, dst)) {
    const double coreSerialise = wireBytes / spec_.bisectionBytesPerS;
    t = occupy(core_, coreDelay_, wireBytes,
               std::max(startTime, t - coreSerialise));
  }
  t = occupy(downlink_[static_cast<std::size_t>(dst)], downlinkDelay_,
             wireBytes, std::max(startTime, t - serialise));
  return t + spec_.switchLatency * hopCount(src, dst);
}

}  // namespace tibsim::net
