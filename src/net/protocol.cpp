#include "tibsim/net/protocol.hpp"

#include <algorithm>
#include <cmath>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"

namespace tibsim::net {

using namespace tibsim::units;

std::string toString(Protocol protocol) {
  switch (protocol) {
    case Protocol::TcpIp: return "TCP/IP";
    case Protocol::OpenMx: return "Open-MX";
  }
  return "unknown";
}

namespace {
// One switch in the path for the two-board ping-pong measurements.
constexpr double kSwitchLatency = 2.0e-6;
// Ethernet wire time for a minimum frame (preamble + IFG included).
constexpr double kMinFrameBytes = 84.0;
}  // namespace

ProtocolModel::ProtocolModel(Protocol protocol, const arch::Platform& platform,
                             double frequencyHz)
    : protocol_(protocol), platform_(platform), frequencyHz_(frequencyHz) {
  TIB_REQUIRE(frequencyHz > 0.0);
  switch (protocol_) {
    case Protocol::TcpIp:
      // Full socket path: syscall, skb allocation, TCP/IP traversal, IRQ,
      // scheduler wakeup. Two copies each side (user<->kernel, kernel<->NIC
      // ring). Calibrated on the Tegra 2 measurements: ~100 us ping-pong
      // latency and ~65 MB/s sustained at 1 GHz.
      baseCyclesPerSide_ = 39000.0;
      perSegmentCycles_ = 19000.0;
      segmentBytes_ = 1500.0;
      wireEfficiency_ = 0.941;  // 1460/1552 incl. headers, preamble, IFG
      rendezvousThreshold_ = 0;
      copyPassesSender_ = 2.0;
      copyPassesReceiver_ = 2.0;
      break;
    case Protocol::OpenMx:
      // User-space message layer over raw Ethernet: no socket path, large
      // MX frames, eager single-copy under 32 KiB, rendezvous zero-copy
      // send / single-copy receive above. Calibrated on the Tegra 2
      // measurements: ~65 us latency and ~117 MB/s at 1 GHz.
      baseCyclesPerSide_ = 29000.0;
      perSegmentCycles_ = 3000.0;
      segmentBytes_ = 4096.0;
      wireEfficiency_ = 0.936;
      rendezvousThreshold_ = 32 * 1024;
      copyPassesSender_ = 1.0;
      copyPassesReceiver_ = 1.0;
      break;
  }

  switch (platform_.nicAttachment) {
    case arch::NicAttachment::Pcie:
      nicPerMessageSeconds_ = 1.0e-6;
      nicPerByteSeconds_ = 0.0;
      nicPerByteCycles_ = 0.0;
      break;
    case arch::NicAttachment::Usb3:
      // USB host stack: URB submission/completion costs dominate small
      // messages and are mostly frequency-insensitive (controller + DMA);
      // the per-byte path through the xHCI/adapter caps bandwidth around
      // 70 MB/s regardless of protocol (Fig. 7(e)-(f)).
      nicPerMessageSeconds_ = 33.0e-6;
      nicPerByteSeconds_ = 9.45e-9;
      nicPerByteCycles_ = 7.26;  // ns per byte at the 1 GHz reference clock
      break;
    case arch::NicAttachment::OnChip:
      nicPerMessageSeconds_ = 0.5e-6;
      nicPerByteSeconds_ = 0.0;
      nicPerByteCycles_ = 0.0;
      break;
  }
}

double ProtocolModel::stackArchFactor() const {
  using arch::Microarch;
  switch (platform_.soc.core.microarch) {
    case Microarch::CortexA9: return 1.0;
    case Microarch::CortexA15: return 0.53;
    case Microarch::CortexA57: return 0.45;
    case Microarch::SandyBridge: return 0.22;
  }
  return 1.0;
}

double ProtocolModel::cyclesToSeconds(double cycles) const {
  return cycles * stackArchFactor() / frequencyHz_;
}

double ProtocolModel::memcpyBytesPerS() const {
  // A single core's copy bandwidth: reads + writes both cross the memory
  // interface, so a one-pass copy moves 2 bytes per payload byte.
  const auto& mem = platform_.soc.memory;
  const double fRatio = frequencyHz_ / platform_.soc.maxFrequencyHz();
  return 0.5 * mem.singleCoreBandwidthBytesPerS * (0.30 + 0.70 * fRatio);
}

MessageCosts ProtocolModel::messageCosts(std::size_t bytes) const {
  const double payload = static_cast<double>(bytes);
  const double segments = std::max(1.0, std::ceil(payload / segmentBytes_));

  const bool rendezvous =
      rendezvousThreshold_ > 0 && bytes >= rendezvousThreshold_;
  double sendPasses = copyPassesSender_;
  double recvPasses = copyPassesReceiver_;
  if (rendezvous) {
    sendPasses = 0.0;  // zero-copy send via memory pinning
    recvPasses = 1.0;
  }

  const double usbPerByte =
      nicPerByteSeconds_ + nicPerByteCycles_ * stackArchFactor() *
                               (units::kGHz / frequencyHz_) * 1e-9;

  MessageCosts costs;
  costs.rendezvous = rendezvous;
  costs.senderSeconds = cyclesToSeconds(baseCyclesPerSide_) +
                        nicPerMessageSeconds_ +
                        cyclesToSeconds(perSegmentCycles_ * segments) +
                        payload * sendPasses / memcpyBytesPerS() +
                        payload * usbPerByte;
  costs.receiverSeconds = cyclesToSeconds(baseCyclesPerSide_) +
                          nicPerMessageSeconds_ +
                          payload * recvPasses / memcpyBytesPerS() +
                          payload * usbPerByte;
  const double wireBytes =
      std::max(kMinFrameBytes, payload / wireEfficiency_);
  costs.wireSeconds = wireBytes / platform_.nicLinkRateBytesPerS;
  return costs;
}

double ProtocolModel::pingPongLatency(std::size_t bytes) const {
  const MessageCosts costs = messageCosts(bytes);
  double latency = costs.total() + kSwitchLatency;
  if (costs.rendezvous) {
    // RTS/CTS handshake: one extra small-message round trip.
    const MessageCosts rts = messageCosts(0);
    latency += 2.0 * (rts.total() + kSwitchLatency);
  }
  return latency;
}

double ProtocolModel::effectiveBandwidth(std::size_t bytes) const {
  TIB_REQUIRE(bytes > 0);
  const double payload = static_cast<double>(bytes);
  if (payload <= segmentBytes_) {
    // Not enough data to pipeline: bandwidth is payload over full latency.
    return payload / pingPongLatency(bytes);
  }
  // Segments pipeline through sender stack -> wire -> receiver stack; the
  // sustained rate is set by the slowest per-segment stage.
  const double usbPerByte =
      nicPerByteSeconds_ + nicPerByteCycles_ * stackArchFactor() *
                               (units::kGHz / frequencyHz_) * 1e-9;
  const bool rendezvous =
      rendezvousThreshold_ > 0 && bytes >= rendezvousThreshold_;
  const double sendPasses = rendezvous ? 0.0 : copyPassesSender_;
  const double recvPasses = rendezvous ? 1.0 : copyPassesReceiver_;

  const double senderStage = cyclesToSeconds(perSegmentCycles_) +
                             segmentBytes_ * sendPasses / memcpyBytesPerS() +
                             segmentBytes_ * usbPerByte;
  const double receiverStage = cyclesToSeconds(perSegmentCycles_) +
                               segmentBytes_ * recvPasses / memcpyBytesPerS() +
                               segmentBytes_ * usbPerByte;
  const double wireStage =
      (segmentBytes_ / wireEfficiency_) / platform_.nicLinkRateBytesPerS;
  const double bottleneck =
      std::max({senderStage, receiverStage, wireStage});
  const double steadyRate = segmentBytes_ / bottleneck;

  // Amortise the per-message startup over the message size.
  const double startup = pingPongLatency(0);
  const double totalTime = payload / steadyRate + startup;
  return payload / totalTime;
}

double latencyExecutionTimePenalty(double latencySeconds,
                                   double relativeSingleCorePerformance) {
  TIB_REQUIRE(latencySeconds >= 0.0);
  TIB_REQUIRE(relativeSingleCorePerformance > 0.0);
  // Saravanan et al. (ISPASS'13): on Sandy Bridge-class cores, 100 us of
  // added communication latency costs ~+90 % execution time, roughly linear
  // in the latency. A core that is k times slower spends k times longer
  // computing between the same messages, so the *relative* penalty shrinks
  // by k (the paper's first-order estimate: ~+50 % on the Arndale at 100 us).
  constexpr double kPenaltyPerSecond = 0.90 / 100.0e-6;
  return kPenaltyPerSecond * latencySeconds * relativeSingleCorePerformance;
}

}  // namespace tibsim::net
