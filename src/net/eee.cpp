#include "tibsim/net/eee.hpp"

#include <algorithm>

#include "tibsim/common/assert.hpp"

namespace tibsim::net {

EnergyEfficientEthernet::EnergyEfficientEthernet(Config config)
    : config_(config) {
  TIB_REQUIRE(config_.wakeSeconds >= 0.0);
  TIB_REQUIRE(config_.sleepSeconds >= 0.0);
  TIB_REQUIRE(config_.idleEntrySeconds >= 0.0);
  TIB_REQUIRE(config_.lpiPowerFraction >= 0.0 &&
              config_.lpiPowerFraction <= 1.0);
  TIB_REQUIRE(config_.activePhyWatts > 0.0);
}

double EnergyEfficientEthernet::addedLatencySeconds(double gapSeconds) const {
  TIB_REQUIRE(gapSeconds >= 0.0);
  if (!config_.enabled) return 0.0;
  // The link only sleeps if the gap outlasted the entry policy plus the
  // sleep transition itself.
  if (gapSeconds < config_.idleEntrySeconds + config_.sleepSeconds)
    return 0.0;
  return config_.wakeSeconds;
}

double EnergyEfficientEthernet::averagePhyWatts(double wireSeconds,
                                                double intervalSeconds) const {
  TIB_REQUIRE(wireSeconds >= 0.0);
  TIB_REQUIRE(intervalSeconds > 0.0);
  if (!config_.enabled) return config_.activePhyWatts;

  const double gap = std::max(0.0, intervalSeconds - wireSeconds);
  const double sleepable =
      std::max(0.0, gap - config_.idleEntrySeconds - config_.sleepSeconds);
  // Active during: transmission, idle-entry window, sleep and wake
  // transitions (transitions burn active-level power).
  const double wake = sleepable > 0.0 ? config_.wakeSeconds : 0.0;
  const double activeSeconds =
      std::min(intervalSeconds, intervalSeconds - sleepable + wake);
  const double lpiSeconds = intervalSeconds - activeSeconds;
  return (activeSeconds * config_.activePhyWatts +
          lpiSeconds * config_.activePhyWatts * config_.lpiPowerFraction) /
         intervalSeconds;
}

double EnergyEfficientEthernet::energySavingFraction(
    double wireSeconds, double intervalSeconds) const {
  return 1.0 -
         averagePhyWatts(wireSeconds, intervalSeconds) /
             config_.activePhyWatts;
}

double EnergyEfficientEthernet::effectiveLatencySeconds(
    double baseLatencySeconds, double intervalSeconds) const {
  TIB_REQUIRE(baseLatencySeconds >= 0.0);
  return baseLatencySeconds + addedLatencySeconds(intervalSeconds);
}

}  // namespace tibsim::net
