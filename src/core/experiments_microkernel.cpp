// Built-in experiments for the Section-3.1 single-node evaluation: the
// platform inventory (Table 1), the micro-kernel DVFS sweeps (Figures 3
// and 4), STREAM (Figure 5) and the suite self-check (Table 2). Ported
// from the former standalone bench mains into registry entries.

#include <memory>
#include <utility>

#include "builtin_experiments.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/thread_pool.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiment.hpp"
#include "tibsim/core/experiments.hpp"
#include "tibsim/kernels/microkernel.hpp"
#include "tibsim/kernels/suite.hpp"

namespace tibsim::core {

namespace {

using namespace tibsim::units;

ResultSet runTab01(ExperimentContext&) {
  TextTable table({"platform", "uarch", "cores", "fmax GHz", "FP64 GFLOPS",
                   "mem peak GB/s", "DRAM", "NIC attach"});
  for (const auto& p : arch::PlatformRegistry::evaluated()) {
    table.addRow({p.shortName, arch::toString(p.soc.core.microarch),
                  std::to_string(p.soc.cores),
                  fmt(toGhz(p.maxFrequencyHz()), 1),
                  fmt(toGflops(p.peakFlops()), 1),
                  fmt(p.soc.memory.peakBandwidthBytesPerS / kGB, 2),
                  p.dramType, arch::toString(p.nicAttachment)});
  }
  ResultSet results;
  results.addTable("platform inventory", std::move(table));
  results.addMetric("evaluated platforms",
                    static_cast<double>(
                        arch::PlatformRegistry::evaluated().size()),
                    "platforms");
  results.addNote(
      "the four development boards of Table 1: Tegra 2 and Tegra 3 "
      "(Cortex-A9), Arndale (Cortex-A15), and the Core i7 laptop "
      "reference");
  return results;
}

/// The shared Figure 3 / Figure 4 report: sweep table, speedup chart,
/// normalised-energy chart.
ResultSet microKernelReport(const std::vector<PlatformSweep>& sweeps,
                            const std::string& figure) {
  TextTable table({"platform", "freq GHz", "suite s/iter", "energy J/iter",
                   "speedup vs Tegra2@1GHz", "energy vs baseline"});
  std::vector<Series> perf, energy;
  for (const auto& sweep : sweeps) {
    Series sp{sweep.platform, {}, {}};
    Series se{sweep.platform, {}, {}};
    for (const auto& pt : sweep.points) {
      table.addRow({sweep.platform, fmt(toGhz(pt.frequencyHz), 2),
                    fmt(pt.suiteSeconds, 3), fmt(pt.suiteEnergyJ, 2),
                    fmt(pt.speedupVsBaseline, 2),
                    fmt(pt.energyVsBaseline, 2)});
      sp.x.push_back(toGhz(pt.frequencyHz));
      sp.y.push_back(pt.speedupVsBaseline);
      se.x.push_back(toGhz(pt.frequencyHz));
      se.y.push_back(pt.energyVsBaseline);
    }
    perf.push_back(std::move(sp));
    energy.push_back(std::move(se));
  }

  ResultSet results;
  results.addTable("frequency sweep", std::move(table));
  ChartOptions perfOpts;
  perfOpts.title = figure + "(a): speedup vs Tegra2@1GHz (log y)";
  perfOpts.logY = true;
  perfOpts.xLabel = "frequency (GHz)";
  perfOpts.yLabel = "speedup";
  results.addChart(figure + "(a): speedup", std::move(perf), perfOpts);
  ChartOptions energyOpts;
  energyOpts.title = figure + "(b): per-iteration energy vs baseline";
  energyOpts.xLabel = "frequency (GHz)";
  energyOpts.yLabel = "normalised energy";
  results.addChart(figure + "(b): energy", std::move(energy), energyOpts);

  for (const auto& sweep : sweeps) {
    const auto& top = sweep.points.back();
    results.addMetric(sweep.platform + " speedup at fmax",
                      top.speedupVsBaseline, "x");
    results.addMetric(sweep.platform + " energy at fmax", top.suiteEnergyJ,
                      "J/iter");
  }
  return results;
}

ResultSet runFig03(ExperimentContext& ctx) {
  const auto sweeps =
      MicroKernelExperiment(MicroKernelExperiment::Mode::SingleCore).run(ctx);
  ResultSet results = microKernelReport(sweeps, "Figure 3");
  results.addNote(
      "paper anchors: Tegra3@1GHz +9%, Arndale@1GHz +30%; at max "
      "frequency Tegra3 1.36x, Arndale 2.3x, Intel ~3x Arndale; energies "
      "23.93 / 19.62 / 16.95 / 28.57 J per iteration");
  results.addNote("platform inventory moved to the tab01 experiment");
  return results;
}

ResultSet runFig04(ExperimentContext& ctx) {
  const auto multi =
      MicroKernelExperiment(MicroKernelExperiment::Mode::MultiCore).run(ctx);
  const auto single =
      MicroKernelExperiment(MicroKernelExperiment::Mode::SingleCore)
          .run(ctx);
  ResultSet results = microKernelReport(multi, "Figure 4");

  // The paper's headline multicore observation: OpenMP versions use less
  // energy than serial, by roughly 1.7x (Tegra2/3), 2.25x (Arndale) and
  // 2.5x (Intel).
  TextTable gains({"platform", "serial J/iter", "multicore J/iter",
                   "energy gain (paper)"});
  const char* paperGain[] = {"1.7x", "1.7x", "2.25x", "2.5x"};
  for (std::size_t i = 0; i < multi.size(); ++i) {
    const double es = single[i].points.back().suiteEnergyJ;
    const double em = multi[i].points.back().suiteEnergyJ;
    gains.addRow({multi[i].platform, fmt(es, 2), fmt(em, 2),
                  fmt(es / em, 2) + "x (" + paperGain[i] + ")"});
    results.addMetric(multi[i].platform + " multicore energy gain",
                      es / em, "x");
  }
  results.addTable("multicore energy gain", std::move(gains));
  results.addNote(
      "the Arndale's paper value (2.25x with 2 cores) implies superlinear "
      "scaling the roofline model does not reproduce; see EXPERIMENTS.md");
  return results;
}

ResultSet runFig05(ExperimentContext&) {
  const auto rows = streamExperiment();
  ResultSet results;

  TextTable single({"platform", "Copy", "Scale", "Add", "Triad"});
  for (const auto& row : rows) {
    std::vector<std::string> cells = {row.platform};
    for (std::size_t op = 0; op < StreamRow::kOps; ++op)
      cells.push_back(fmt(row.singleCoreBytesPerS[op] / kGB, 2));
    single.addRow(cells);
  }
  results.addTable("Figure 5(a): single core (GB/s)", std::move(single));

  TextTable multi({"platform", "Copy", "Scale", "Add", "Triad", "peak GB/s",
                   "efficiency (paper)"});
  const char* paperEff[4] = {"62%", "27%", "52%", "57%"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto platform = arch::PlatformRegistry::evaluated()[i];
    std::vector<std::string> cells = {row.platform};
    for (std::size_t op = 0; op < StreamRow::kOps; ++op)
      cells.push_back(fmt(row.multiCoreBytesPerS[op] / kGB, 2));
    cells.push_back(fmt(platform.soc.memory.peakBandwidthBytesPerS / kGB, 2));
    cells.push_back(fmt(row.efficiencyVsPeak * 100, 0) + "% (" +
                    paperEff[i] + ")");
    multi.addRow(cells);
    results.addMetric(row.platform + " efficiency vs peak",
                      row.efficiencyVsPeak * 100, "%");
  }
  results.addTable("Figure 5(b): all cores / MPSoC (GB/s)",
                   std::move(multi));

  std::vector<Series> bars;
  for (const auto& row : rows) {
    Series s{row.platform, {}, {}};
    for (std::size_t op = 0; op < StreamRow::kOps; ++op) {
      s.x.push_back(static_cast<double>(op));
      s.y.push_back(row.multiCoreBytesPerS[op] / kGB);
    }
    bars.push_back(std::move(s));
  }
  ChartOptions barOpts;
  barOpts.title = "MPSoC bandwidth (GB/s); x = op index Copy..Triad";
  barOpts.xLabel = "STREAM op";
  barOpts.yLabel = "GB/s";
  results.addChart("MPSoC bandwidth", std::move(bars), barOpts);

  results.addMetric(
      "Exynos5250 / Tegra2 multicore triad ratio",
      rows[2].multiCoreBytesPerS[StreamRow::Triad] /
          rows[0].multiCoreBytesPerS[StreamRow::Triad],
      "x");
  results.addNote("paper: Exynos 5250 triad is \"about 4.5 times\" Tegra 2");
  return results;
}

std::size_t verifySize(const std::string& tag) {
  if (tag == "dmmm") return 48;
  if (tag == "3dstc") return 16;
  if (tag == "2dcon") return 64;
  if (tag == "fft") return 1024;
  if (tag == "nbody") return 96;
  if (tag == "amcd") return 50000;
  if (tag == "spvm") return 200;
  return 5000;
}

ResultSet runTab02(ExperimentContext& ctx) {
  // The kernels themselves fork-join on a private two-thread ThreadPool,
  // matching the original bench binary; the campaign-level TaskPool is not
  // involved, so nesting is safe.
  ThreadPool pool(2);
  TextTable table({"tag", "full name", "properties", "MFLOP/iter", "MB/iter",
                   "pattern", "verified"});
  std::size_t verified = 0;
  const auto tags = kernels::suiteTags();
  for (const auto& tag : tags) {
    auto kernel = kernels::makeKernel(tag);
    kernel->setup(verifySize(tag), static_cast<unsigned>(ctx.seed() % 1000));
    kernel->runSerial();
    const bool serialOk = kernel->verify();
    kernel->runParallel(pool);
    const bool parallelOk = kernel->verify();
    const auto profile = kernel->referenceProfile();
    table.addRow({tag, kernel->fullName(), kernel->properties(),
                  fmt(profile.flops / 1e6, 0), fmt(profile.bytes / 1e6, 0),
                  toString(profile.pattern),
                  serialOk && parallelOk ? "yes" : "NO"});
    if (serialOk && parallelOk) ++verified;
  }
  ResultSet results;
  results.addTable("micro-kernel suite", std::move(table));
  results.addMetric("kernels verified", static_cast<double>(verified),
                    "of " + std::to_string(tags.size()));
  results.addNote(
      "profiles are the Section-3 evaluation sizes; the native runs above "
      "execute the real implementations at test sizes and verify their "
      "output (see bench/kernels_native for host-machine timings)");
  return results;
}

}  // namespace

void registerMicroKernelExperiments(ExperimentRegistry& registry) {
  registry.add(std::make_unique<LambdaExperiment>(
      "tab01", "Table 1", "evaluated platform inventory", runTab01));
  registry.add(std::make_unique<LambdaExperiment>(
      "fig03", "Figure 3",
      "single-core micro-kernel performance & energy, frequency sweep",
      runFig03));
  registry.add(std::make_unique<LambdaExperiment>(
      "fig04", "Figure 4",
      "multi-core micro-kernel performance & energy, frequency sweep",
      runFig04));
  registry.add(std::make_unique<LambdaExperiment>(
      "fig05", "Figure 5", "STREAM memory bandwidth", runFig05));
  registry.add(std::make_unique<LambdaExperiment>(
      "tab02", "Table 2", "micro-kernels used for platform evaluation",
      runTab02));
}

}  // namespace tibsim::core
