#include "tibsim/core/result_cache.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "tibsim/arch/table1.hpp"
#include "tibsim/common/assert.hpp"
#include "tibsim/common/json.hpp"

namespace tibsim::core {

namespace {

namespace fs = std::filesystem;

// --- hashing -----------------------------------------------------------------

void hashOperatingPoints(CacheHasher& h, const arch::table1::SocSpec& soc) {
  h.u64(soc.dvfsCount);
  for (std::size_t i = 0; i < soc.dvfsCount; ++i) {
    h.f64(soc.dvfs[i].frequencyHz);
    h.f64(soc.dvfs[i].voltage);
  }
}

void hashSpec(CacheHasher& h, const arch::table1::PlatformSpec& p) {
  h.str(p.name);
  h.str(p.shortName);
  h.str(p.socName);
  const arch::table1::SocSpec& soc = p.soc;
  h.i64(static_cast<long long>(soc.core.microarch));
  h.f64(soc.core.fp64FlopsPerCycle);
  h.i64(soc.core.maxOutstandingMisses);
  h.f64(soc.core.issueWidth);
  h.boolean(soc.core.outOfOrder);
  h.i64(soc.cores);
  h.i64(soc.threadsPerCore);
  h.u64(soc.cacheCount);
  for (std::size_t i = 0; i < soc.cacheCount; ++i) {
    h.u64(soc.caches[i].sizeBytes);
    h.boolean(soc.caches[i].shared);
  }
  const arch::MemorySystemModel& m = soc.memory;
  h.i64(m.channels);
  h.i64(m.widthBits);
  h.f64(m.frequencyHz);
  h.f64(m.peakBandwidthBytesPerS);
  h.boolean(m.eccCapable);
  h.f64(m.streamEfficiency);
  h.f64(m.singleCoreBandwidthBytesPerS);
  h.boolean(soc.computeCapableGpu);
  hashOperatingPoints(h, soc);
  h.f64(p.dramBytes);
  h.str(p.dramType);
  h.i64(static_cast<long long>(p.nicAttachment));
  h.f64(p.nicLinkRateBytesPerS);
  h.f64(p.power.boardStaticW);
  h.f64(p.power.socStaticW);
  h.f64(p.power.corePeakDynamicW);
  h.f64(p.power.memDynamicWPerGBs);
  h.f64(p.power.nicActiveW);
}

std::uint64_t computeExecutableFingerprint() {
  std::ifstream exe("/proc/self/exe", std::ios::binary);
  if (!exe.good()) return 0;
  CacheHasher h;
  char buffer[65536];
  std::uint64_t total = 0;
  while (exe.read(buffer, sizeof buffer) || exe.gcount() > 0) {
    const std::streamsize n = exe.gcount();
    h.bytes(buffer, static_cast<std::size_t>(n));
    total += static_cast<std::uint64_t>(n);
    if (n < static_cast<std::streamsize>(sizeof buffer)) break;
  }
  h.u64(total);
  return h.digest();
}

// --- entry (de)serialisation -------------------------------------------------
//
// Doubles are emitted through json::Value (shortest-round-trip) and parse
// back to the exact bit pattern, so counters reconstructed from an entry
// regenerate byte-identical CSV artefacts. Integer counters are stored as
// JSON numbers; every counter in the artefacts is far below 2^53.

json::Value engineToJson(const sim::EngineStats& e) {
  json::Value v = json::Value::object();
  v["eventsDispatched"] = static_cast<double>(e.eventsDispatched);
  v["contextSwitches"] = static_cast<double>(e.contextSwitches);
  v["processesSpawned"] = static_cast<double>(e.processesSpawned);
  v["peakLiveProcesses"] = static_cast<double>(e.peakLiveProcesses);
  v["queueHighWater"] = static_cast<double>(e.queueHighWater);
  v["simSeconds"] = e.simSeconds;
  return v;
}

double member(const json::Value& v, const char* key) {
  const json::Value* m = v.find(key);
  TIB_REQUIRE_MSG(m != nullptr && m->isNumber(),
                  std::string("cache entry missing number \"") + key + "\"");
  return m->asDouble();
}

sim::EngineStats engineFromJson(const json::Value& v) {
  sim::EngineStats e;
  e.eventsDispatched = static_cast<std::uint64_t>(member(v, "eventsDispatched"));
  e.contextSwitches = static_cast<std::uint64_t>(member(v, "contextSwitches"));
  e.processesSpawned = static_cast<std::uint64_t>(member(v, "processesSpawned"));
  e.peakLiveProcesses =
      static_cast<std::size_t>(member(v, "peakLiveProcesses"));
  e.queueHighWater = static_cast<std::size_t>(member(v, "queueHighWater"));
  e.simSeconds = member(v, "simSeconds");
  return e;
}

json::Value linkKindToJson(const obs::LinkKindCounters& kind) {
  json::Value v = json::Value::object();
  v["busySeconds"] = kind.busySeconds;
  v["bytes"] = kind.bytes;
  v["transfers"] = static_cast<double>(kind.transfers);
  v["queueSeconds"] = kind.queueSeconds;
  v["maxLinkBusySeconds"] = kind.maxLinkBusySeconds;
  json::Value delay = json::Value::array();
  for (int b = 0; b < obs::DurationHistogram::kBuckets; ++b) {
    const std::uint64_t count =
        kind.queueDelay.counts[static_cast<std::size_t>(b)];
    if (count == 0) continue;
    json::Value bucket = json::Value::array();
    bucket.push(static_cast<double>(b));
    bucket.push(static_cast<double>(count));
    delay.push(std::move(bucket));
  }
  v["queueDelay"] = std::move(delay);
  return v;
}

obs::LinkKindCounters linkKindFromJson(const json::Value& v) {
  obs::LinkKindCounters kind;
  kind.busySeconds = member(v, "busySeconds");
  kind.bytes = member(v, "bytes");
  kind.transfers = static_cast<std::uint64_t>(member(v, "transfers"));
  kind.queueSeconds = member(v, "queueSeconds");
  kind.maxLinkBusySeconds = member(v, "maxLinkBusySeconds");
  const json::Value* delay = v.find("queueDelay");
  TIB_REQUIRE_MSG(delay != nullptr && delay->isArray(),
                  "cache entry missing queueDelay");
  for (const json::Value& bucket : delay->items()) {
    TIB_REQUIRE_MSG(bucket.isArray() && bucket.size() == 2,
                    "malformed queueDelay bucket");
    const int b = static_cast<int>(bucket.at(0).asDouble());
    TIB_REQUIRE_MSG(b >= 0 && b < obs::DurationHistogram::kBuckets,
                    "queueDelay bucket out of range");
    kind.queueDelay.counts[static_cast<std::size_t>(b)] =
        static_cast<std::uint64_t>(bucket.at(1).asDouble());
  }
  return kind;
}

json::Value countersToJson(const obs::RunCounters& c) {
  json::Value v = json::Value::object();
  v["worlds"] = static_cast<double>(c.worlds);
  v["messages"] = static_cast<double>(c.messages);
  v["collectiveChecks"] = static_cast<double>(c.collectiveChecks);
  v["payloadBytes"] = c.payloadBytes;
  v["wireBytes"] = c.wireBytes;
  v["spansRecorded"] = static_cast<double>(c.spansRecorded);
  v["spansRetained"] = static_cast<double>(c.spansRetained);
  v["traceMemoryPeakBytes"] = static_cast<double>(c.traceMemoryPeakBytes);
  v["payloadInlineMessages"] = static_cast<double>(c.payloadInlineMessages);
  v["payloadPooledMessages"] = static_cast<double>(c.payloadPooledMessages);
  v["payloadPoolReuses"] = static_cast<double>(c.payloadPoolReuses);
  v["payloadPoolAllocations"] =
      static_cast<double>(c.payloadPoolAllocations);
  v["payloadPoolReturns"] = static_cast<double>(c.payloadPoolReturns);
  v["payloadPoolTrimmedBuffers"] =
      static_cast<double>(c.payloadPoolTrimmedBuffers);
  v["payloadPoolLiveHighWater"] =
      static_cast<double>(c.payloadPoolLiveHighWater);
  json::Value classes = json::Value::array();
  for (const obs::PayloadClassCounters& cls : c.payloadPoolClasses) {
    json::Value row = json::Value::array();
    row.push(static_cast<double>(cls.classBytes));
    row.push(static_cast<double>(cls.acquires));
    row.push(static_cast<double>(cls.reuses));
    row.push(static_cast<double>(cls.allocations));
    row.push(static_cast<double>(cls.parked));
    classes.push(std::move(row));
  }
  v["payloadPoolClasses"] = std::move(classes);
  json::Value links = json::Value::object();
  links["uplink"] = linkKindToJson(c.links.uplink);
  links["core"] = linkKindToJson(c.links.core);
  links["downlink"] = linkKindToJson(c.links.downlink);
  v["links"] = std::move(links);
  json::Value path = json::Value::object();
  path["computeSeconds"] = c.criticalPath.computeSeconds;
  path["sendSeconds"] = c.criticalPath.sendSeconds;
  path["recvSeconds"] = c.criticalPath.recvSeconds;
  path["linkSeconds"] = c.criticalPath.linkSeconds;
  path["waitSeconds"] = c.criticalPath.waitSeconds;
  path["edges"] = static_cast<double>(c.criticalPath.edges);
  path["endRank"] = c.criticalPath.endRank;
  v["criticalPath"] = std::move(path);
  return v;
}

obs::RunCounters countersFromJson(const json::Value& v) {
  obs::RunCounters c;
  c.worlds = static_cast<std::uint64_t>(member(v, "worlds"));
  c.messages = static_cast<std::uint64_t>(member(v, "messages"));
  // Optional: entries written before the collective verifier existed lack
  // it (they can never hit the new key, but fail softly regardless).
  const json::Value* checks = v.find("collectiveChecks");
  c.collectiveChecks = checks != nullptr && checks->isNumber()
                           ? static_cast<std::uint64_t>(checks->asDouble())
                           : 0;
  c.payloadBytes = member(v, "payloadBytes");
  c.wireBytes = member(v, "wireBytes");
  c.spansRecorded = static_cast<std::uint64_t>(member(v, "spansRecorded"));
  c.spansRetained = static_cast<std::uint64_t>(member(v, "spansRetained"));
  c.traceMemoryPeakBytes =
      static_cast<std::uint64_t>(member(v, "traceMemoryPeakBytes"));
  c.payloadInlineMessages =
      static_cast<std::uint64_t>(member(v, "payloadInlineMessages"));
  c.payloadPooledMessages =
      static_cast<std::uint64_t>(member(v, "payloadPooledMessages"));
  c.payloadPoolReuses =
      static_cast<std::uint64_t>(member(v, "payloadPoolReuses"));
  c.payloadPoolAllocations =
      static_cast<std::uint64_t>(member(v, "payloadPoolAllocations"));
  c.payloadPoolReturns =
      static_cast<std::uint64_t>(member(v, "payloadPoolReturns"));
  c.payloadPoolTrimmedBuffers =
      static_cast<std::uint64_t>(member(v, "payloadPoolTrimmedBuffers"));
  c.payloadPoolLiveHighWater =
      static_cast<std::uint64_t>(member(v, "payloadPoolLiveHighWater"));
  const json::Value* classes = v.find("payloadPoolClasses");
  TIB_REQUIRE_MSG(classes != nullptr && classes->isArray(),
                  "cache entry missing payloadPoolClasses");
  for (const json::Value& row : classes->items()) {
    TIB_REQUIRE_MSG(row.isArray() && row.size() == 5,
                    "malformed payloadPoolClasses row");
    obs::PayloadClassCounters cls;
    cls.classBytes = static_cast<std::size_t>(row.at(0).asDouble());
    cls.acquires = static_cast<std::uint64_t>(row.at(1).asDouble());
    cls.reuses = static_cast<std::uint64_t>(row.at(2).asDouble());
    cls.allocations = static_cast<std::uint64_t>(row.at(3).asDouble());
    cls.parked = static_cast<std::uint64_t>(row.at(4).asDouble());
    c.payloadPoolClasses.push_back(cls);
  }
  const json::Value* links = v.find("links");
  TIB_REQUIRE_MSG(links != nullptr && links->isObject(),
                  "cache entry missing links");
  const auto kind = [&](const char* key) {
    const json::Value* k = links->find(key);
    TIB_REQUIRE_MSG(k != nullptr, std::string("missing link kind ") + key);
    return linkKindFromJson(*k);
  };
  c.links.uplink = kind("uplink");
  c.links.core = kind("core");
  c.links.downlink = kind("downlink");
  const json::Value* path = v.find("criticalPath");
  TIB_REQUIRE_MSG(path != nullptr && path->isObject(),
                  "cache entry missing criticalPath");
  c.criticalPath.computeSeconds = member(*path, "computeSeconds");
  c.criticalPath.sendSeconds = member(*path, "sendSeconds");
  c.criticalPath.recvSeconds = member(*path, "recvSeconds");
  c.criticalPath.linkSeconds = member(*path, "linkSeconds");
  c.criticalPath.waitSeconds = member(*path, "waitSeconds");
  c.criticalPath.edges = static_cast<std::uint64_t>(member(*path, "edges"));
  c.criticalPath.endRank = static_cast<int>(member(*path, "endRank"));
  return c;
}

void writeFileAtomic(const fs::path& finalPath, const std::string& text) {
  const fs::path tmp =
      finalPath.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    TIB_REQUIRE_MSG(out.good(), "cannot open " + tmp.string());
    out << text;
    out.flush();
    TIB_REQUIRE_MSG(out.good(), "cannot write " + tmp.string());
  }
  fs::rename(tmp, finalPath);  // atomic within one directory
}

}  // namespace

void CacheHasher::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    hash_ ^= p[i];
    hash_ *= 1099511628211ULL;  // FNV prime
  }
}

void CacheHasher::u64(std::uint64_t v) {
  unsigned char raw[8];
  for (int i = 0; i < 8; ++i)
    raw[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  bytes(raw, sizeof raw);
}

void CacheHasher::f64(double v) {
  std::uint64_t raw = 0;
  static_assert(sizeof raw == sizeof v);
  std::memcpy(&raw, &v, sizeof raw);
  u64(raw);
}

void CacheHasher::str(const std::string& s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

std::uint64_t hashPlatformSpecs() {
  CacheHasher h;
  h.u64(arch::table1::kAll.size());
  for (const arch::table1::PlatformSpec* spec : arch::table1::kAll)
    hashSpec(h, *spec);
  return h.digest();
}

std::uint64_t executableFingerprint() {
  // Computed once per process: the binary cannot change under a running
  // campaign, and hashing it costs a full read of the executable.
  static const std::uint64_t fingerprint = computeExecutableFingerprint();
  return fingerprint;
}

std::string cacheKey(const CacheKeyInputs& inputs) {
  CacheHasher h;
  h.str(kResultCacheSchema);
  h.str(inputs.experiment);
  h.str(inputs.versionTag);
  h.u64(inputs.seed);
  h.str(inputs.simBackend);
  h.str(inputs.traceMode);
  h.i64(inputs.simShards);
  h.boolean(inputs.stallReport);
  h.boolean(inputs.verifyCollectives);
  h.u64(inputs.platformSpecHash);
  h.u64(inputs.binaryFingerprint);
  const std::uint64_t digest = h.digest();
  std::string hex(16, '0');
  for (int i = 0; i < 16; ++i)
    hex[static_cast<std::size_t>(i)] =
        "0123456789abcdef"[(digest >> (60 - 4 * i)) & 0xf];
  return hex;
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  TIB_REQUIRE_MSG(!dir_.empty(), "result cache directory must be non-empty");
}

std::string ResultCache::entryFileName(const std::string& experiment,
                                       const std::string& key) {
  return experiment + "-" + key + ".json";
}

std::optional<CachedRun> ResultCache::load(const std::string& experiment,
                                           const std::string& key) const {
  const fs::path path = fs::path(dir_) / entryFileName(experiment, key);
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return std::nullopt;  // plain miss
  std::ostringstream buffer;
  buffer << in.rdbuf();
  // From here on, every defect — truncation, malformed JSON, a missing or
  // mistyped member, a stale schema — is treated as a miss so the caller
  // recomputes and overwrites the entry. A cache must never be trusted
  // over the simulator.
  try {
    const json::Value doc = json::Value::parse(buffer.str());
    const json::Value* schema = doc.find("schema");
    const json::Value* name = doc.find("experiment");
    const json::Value* storedKey = doc.find("key");
    if (schema == nullptr || schema->asString() != kResultCacheSchema)
      return std::nullopt;
    if (name == nullptr || name->asString() != experiment) return std::nullopt;
    if (storedKey == nullptr || storedKey->asString() != key)
      return std::nullopt;
    CachedRun run;
    run.cells = static_cast<std::size_t>(member(doc, "cells"));
    const json::Value* engine = doc.find("engine");
    const json::Value* counters = doc.find("counters");
    const json::Value* resultJson = doc.find("resultJson");
    if (engine == nullptr || counters == nullptr || resultJson == nullptr)
      return std::nullopt;
    run.engine = engineFromJson(*engine);
    run.counters = countersFromJson(*counters);
    run.resultJson = resultJson->asString();
    const json::Value resultDoc = json::Value::parse(run.resultJson);
    const json::Value* results = resultDoc.find("results");
    if (results == nullptr) return std::nullopt;
    run.results = ResultSet::fromJson(*results);
    return run;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void ResultCache::store(const std::string& experiment, const std::string& key,
                        const CachedRun& run) const {
  fs::create_directories(dir_);
  json::Value doc = json::Value::object();
  doc["schema"] = kResultCacheSchema;
  doc["experiment"] = experiment;
  doc["key"] = key;
  doc["cells"] = static_cast<double>(run.cells);
  doc["engine"] = engineToJson(run.engine);
  doc["counters"] = countersToJson(run.counters);
  doc["resultJson"] = run.resultJson;
  writeFileAtomic(fs::path(dir_) / entryFileName(experiment, key),
                  doc.dump(2) + "\n");
}

void ResultCache::writeIndex() const {
  if (!fs::is_directory(dir_)) return;
  // Directory iteration order is filesystem-defined; collect and sort so
  // the index bytes are a function of the cache content alone.
  std::vector<std::string> names;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name == "index.json") continue;
    if (name.size() < 5 || name.rfind(".json") != name.size() - 5) continue;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  json::Value index = json::Value::object();
  index["schema"] = "socbench-cache-index-v1";
  json::Value entries = json::Value::array();
  for (const std::string& name : names) {
    std::ifstream in(fs::path(dir_) / name, std::ios::binary);
    if (!in.good()) continue;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      const json::Value doc = json::Value::parse(buffer.str());
      const json::Value* schema = doc.find("schema");
      const json::Value* experiment = doc.find("experiment");
      const json::Value* key = doc.find("key");
      if (schema == nullptr || schema->asString() != kResultCacheSchema)
        continue;
      if (experiment == nullptr || key == nullptr) continue;
      json::Value row = json::Value::object();
      row["file"] = name;
      row["experiment"] = experiment->asString();
      row["key"] = key->asString();
      entries.push(std::move(row));
    } catch (const std::exception&) {
      continue;  // invalid entries are invisible to the index
    }
  }
  index["entries"] = std::move(entries);
  writeFileAtomic(fs::path(dir_) / "index.json", index.dump(2) + "\n");
}

}  // namespace tibsim::core
