// Built-in experiments for the operations/outlook studies: the Section-6.3
// ECC / DRAM reliability estimates, the DVFS-governor ablation and the
// ARMv8 projection. Ported from the former standalone bench mains into
// registry entries.

#include <algorithm>
#include <array>
#include <memory>
#include <string>
#include <utility>

#include "builtin_experiments.hpp"
#include "tibsim/apps/hpl.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/statistics.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiment.hpp"
#include "tibsim/core/experiments.hpp"
#include "tibsim/kernels/microkernel.hpp"
#include "tibsim/kernels/stream.hpp"
#include "tibsim/obs/critical_path.hpp"
#include "tibsim/obs/exporters.hpp"
#include "tibsim/obs/trace_sink.hpp"
#include "tibsim/power/dvfs_governor.hpp"
#include "tibsim/power/power_model.hpp"
#include "tibsim/reliability/dram_errors.hpp"

namespace tibsim::core {

namespace {

using namespace tibsim::units;

ResultSet runEccReliability(ExperimentContext& ctx) {
  reliability::DramErrorModel model;  // paper-arithmetic default (4.5 %/yr)
  ResultSet results;

  TextTable daily({"nodes", "P(error today)", "expected errors/day",
                   "Monte-Carlo check"});
  for (int nodes : {192, 500, 1000, 1500, 5000}) {
    daily.addRow({std::to_string(nodes),
                  fmt(100 * model.systemDailyErrorProbability(nodes), 1) +
                      "%",
                  fmt(model.expectedErrorsPerDay(nodes), 2),
                  fmt(100 * model.monteCarloDailyErrorProbability(
                                nodes, 2000, ctx.seed()),
                      1) +
                      "%"});
  }
  results.addTable("daily error probability", std::move(daily));
  results.addMetric("P(error today) at 1,500 nodes",
                    100 * model.systemDailyErrorProbability(1500), "%");
  results.addNote(
      "paper: \"a 1,500 node system, with 2 DIMMs per node, has a 30% "
      "error probability on any given day\"");

  TextTable band({"annual DIMM error rate", "P(error today)"});
  for (double annual : {0.04, 0.08, 0.12, 0.20}) {
    reliability::DramErrorModel m;
    m.dimmAnnualErrorProbability = annual;
    band.addRow({fmt(100 * annual, 0) + "%",
                 fmt(100 * m.systemDailyErrorProbability(1500), 1) + "%"});
  }
  results.addTable(
      "sensitivity over the Schroeder et al. 4-20 % annual band "
      "(1,500 nodes)",
      std::move(band));

  TextTable jobs({"nodes", "job hours", "P(survive)"});
  for (int nodes : {192, 1500}) {
    for (double hours : {1.0, 12.0, 48.0}) {
      jobs.addRow({std::to_string(nodes), fmt(hours, 0),
                   fmt(100 * model.jobSurvivalProbability(nodes, hours), 1) +
                       "%"});
    }
  }
  results.addTable("consequence without ECC (any error kills the job)",
                   std::move(jobs));

  TextTable ckpt({"checkpoint interval h", "useful-work fraction"});
  for (double interval : {0.5, 2.0, 8.0, 24.0}) {
    ckpt.addRow({fmt(interval, 1),
                 fmt(100 * model.effectiveThroughput(1500, interval, 0.05),
                     1) +
                     "%"});
  }
  results.addTable("checkpoint/restart throughput (checkpoint costs 3 min)",
                   std::move(ckpt));

  results.addNote(
      "ECC-capable controllers exist in server-class ARM SoCs (Calxeda "
      "EnergyCore, TI KeyStone II) — a design decision, not a technical "
      "limitation (Section 6.3)");
  return results;
}

ResultSet runAblationDvfs(ExperimentContext&) {
  const perfmodel::WorkProfile shape{
      1.0, 0.0, perfmodel::AccessPattern::Resident, 0.9, 1.0, 0.0};
  // 20 bursts of 1 GFLOP with 0.2 s gaps: an MPI application iterating.
  const std::vector<power::WorkPhase> trace(20, power::WorkPhase{1e9, 0.2});

  ResultSet results;
  for (const auto& platform : {arch::PlatformRegistry::tegra2(),
                               arch::PlatformRegistry::exynos5250(),
                               arch::PlatformRegistry::corei7_2760qm()}) {
    TextTable table({"governor", "time s", "energy J", "avg freq GHz",
                     "vs performance"});
    double baseEnergy = 0.0;
    for (auto policy :
         {power::GovernorPolicy::Performance, power::GovernorPolicy::OnDemand,
          power::GovernorPolicy::Conservative,
          power::GovernorPolicy::Powersave}) {
      power::DvfsGovernor::Config cfg;
      cfg.policy = policy;
      const auto result =
          power::DvfsGovernor(platform, cfg).run(trace, shape);
      if (baseEnergy == 0.0) baseEnergy = result.energyJ;
      table.addRow({toString(policy), fmt(result.seconds, 2),
                    fmt(result.energyJ, 1),
                    fmt(toGhz(result.averageFrequencyHz), 2),
                    fmt(result.energyJ / baseEnergy, 2) + "x energy"});
    }
    results.addTable(platform.name, std::move(table));
  }

  results.addNote(
      "on the board-static-dominated mobile platforms the performance "
      "governor is fastest AND most energy-efficient (race-to-idle) — the "
      "same effect as the Figure 3(b) frequency sweep, and the reason the "
      "paper pinned the performance governor for its measurements");
  return results;
}

ResultSet runAblationArmv8(ExperimentContext& ctx) {
  const auto armv8 = arch::PlatformRegistry::armv8Quad2GHz();
  auto platforms = arch::PlatformRegistry::evaluated();
  platforms.push_back(armv8);

  // Suite speedups vs the usual baseline; one cell per platform.
  const auto base = MicroKernelExperiment::baseline();
  struct Cell {
    double geoOne = 0.0, geoAll = 0.0, watts = 0.0, gflopsPerW = 0.0;
  };
  std::vector<Cell> cells(platforms.size());
  ctx.parallelFor(platforms.size(), [&](std::size_t p) {
    const auto& platform = platforms[p];
    const double f = platform.maxFrequencyHz();
    const auto one = MicroKernelExperiment::measureSuite(platform, f, 1);
    const auto all = MicroKernelExperiment::measureSuite(
        platform, f, platform.soc.cores);
    auto geo = [&](const auto& suite) {
      std::vector<double> r;
      for (std::size_t i = 0; i < suite.size(); ++i)
        r.push_back(base[i].seconds / suite[i].seconds);
      return stats::geomean(r);
    };
    double watts = 0.0, seconds = 0.0, flops = 0.0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      watts += all[i].watts * all[i].seconds;
      seconds += all[i].seconds;
      flops += kernels::referenceProfileFor(kernels::suiteTags()[i]).flops;
    }
    watts /= seconds;
    cells[p] = {geo(one), geo(all), watts,
                toGflops(flops / seconds) / watts};
  });

  ResultSet results;
  TextTable table({"platform", "peak GFLOPS", "suite speedup (1 core)",
                   "suite speedup (all cores)", "platform W (loaded)",
                   "suite GFLOPS/W"});
  for (std::size_t p = 0; p < platforms.size(); ++p) {
    table.addRow({platforms[p].shortName,
                  fmt(toGflops(platforms[p].peakFlops()), 1),
                  fmt(cells[p].geoOne, 2) + "x",
                  fmt(cells[p].geoAll, 2) + "x", fmt(cells[p].watts, 1),
                  fmt(cells[p].gflopsPerW, 3)});
  }
  results.addTable("suite speedups incl. ARMv8 projection",
                   std::move(table));
  results.addMetric("ARMv8 suite speedup (all cores)", cells.back().geoAll,
                    "x");
  results.addMetric("ARMv8 suite efficiency", cells.back().gflopsPerW,
                    "GFLOPS/W");

  // Cluster projection: replace Tibidabo's Tegra 2 nodes with ARMv8 nodes.
  cluster::ClusterSpec armv8Cluster = cluster::ClusterSpec::tibidabo();
  armv8Cluster.name = "ARMv8 cluster (projected)";
  armv8Cluster.nodePlatform = armv8;
  armv8Cluster.protocol = net::Protocol::OpenMx;
  armv8Cluster.topology.linkRateBytesPerS = gbps(10.0);
  armv8Cluster.topology.bisectionBytesPerS = gbps(80.0);

  const std::vector<cluster::ClusterSpec> specs = {
      cluster::ClusterSpec::tibidabo(), armv8Cluster};
  std::vector<cluster::JobResult> hplRuns(specs.size());
  ctx.parallelFor(specs.size(), [&](std::size_t i) {
    cluster::ClusterSimulation sim(specs[i]);
    hplRuns[i] = apps::HplBenchmark::run(sim, 96, 0.5);
  });

  TextTable hpl({"cluster", "GFLOPS", "efficiency", "MFLOPS/W"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    hpl.addRow({specs[i].name, fmt(hplRuns[i].gflops, 1),
                fmt(hplRuns[i].efficiency() * 100, 0) + "%",
                fmt(hplRuns[i].mflopsPerWatt, 0)});
  }
  results.addTable("96-node HPL: Tegra2 cluster vs ARMv8 cluster",
                   std::move(hpl));
  results.addMetric("ARMv8 cluster Green500 metric",
                    hplRuns.back().mflopsPerWatt, "MFLOPS/W");

  results.addNote(
      "the ARMv8 part doubles per-cycle FP64 (NEON), adds an on-chip "
      "10 GbE NIC and ECC-capable memory path — the Section 6.3 wish list "
      "— and the Green500 metric responds accordingly");
  return results;
}

/// An ARMv8-node variant of the tibidaboScaled tree: same fat-tree recipe,
/// but every node replaced by the projected quad-core ARMv8 part with its
/// on-chip 10 GbE NIC, and the spine kept at the 10x-Tibidabo ratio the
/// 96-node projection used (80 vs 8 Gb/s per 192 nodes).
cluster::ClusterSpec armv8Scaled(int nodes) {
  cluster::ClusterSpec spec = cluster::ClusterSpec::tibidaboScaled(nodes);
  spec.name = "ARMv8 x" + std::to_string(nodes) + " (projected)";
  spec.nodePlatform = arch::PlatformRegistry::armv8Quad2GHz();
  spec.frequencyHz = spec.nodePlatform.maxFrequencyHz();
  spec.protocol = net::Protocol::OpenMx;
  spec.topology.linkRateBytesPerS = gbps(10.0);
  spec.topology.bisectionBytesPerS = std::max(
      gbps(80.0), gbps(80.0 * static_cast<double>(nodes) / 192.0));
  return spec;
}

/// The laptop-class reference the paper's Figure 2 compares against: one
/// Core i7-2760QM node, one rank per core, no network to speak of.
cluster::ClusterSpec laptopReference() {
  cluster::ClusterSpec spec;
  spec.name = "Core i7-2760QM laptop";
  spec.nodePlatform = arch::PlatformRegistry::corei7_2760qm();
  spec.nodes = 1;
  spec.frequencyHz = spec.nodePlatform.maxFrequencyHz();
  spec.protocol = net::Protocol::TcpIp;
  spec.ranksPerNode = spec.nodePlatform.soc.cores;
  spec.topology.nodesPerLeafSwitch = 1;
  spec.topology.linkRateBytesPerS = gbps(1.0);
  spec.topology.bisectionBytesPerS = gbps(1.0);
  return spec;
}

ResultSet runAblationArmv8BigCluster(ExperimentContext& ctx) {
  // The Figure-2(b) question at campaign scale: how do thousand-node trees
  // of today's Tegra 2 nodes and projected ARMv8 nodes compare against a
  // laptop-class x86 part, and where does the crossover sit? HPL,
  // weak-scaled at a small memory fraction (the scaling shape needs the
  // panel/bcast/update structure, not a full-memory matrix), on 2048- and
  // 4096-node trees — 8,192 ranks at the top, the largest worlds the
  // campaign builds.
  const std::vector<int> nodeCounts = {2048, 4096};
  constexpr double kMemoryFraction = 0.02;
  constexpr int kProbeNodes = 8;

  struct Tree {
    const char* label;
    cluster::ClusterSpec (*spec)(int nodes);
  };
  const std::array<Tree, 2> trees = {
      Tree{"tegra2", [](int n) { return cluster::ClusterSpec::tibidaboScaled(n); }},
      Tree{"armv8", armv8Scaled}};

  // Probe-then-sweep stack auto-sizing, one probe cell per tree family
  // (see cluster::autoFiberStackBytes): the 2048/4096-node sweeps below
  // then run their 4,096-8,192 fibers on guard-paged stacks sized 2x the
  // probed high-water mark instead of the conservative default.
  std::array<cluster::JobOptions, 2> sized;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    const cluster::ClusterSpec probeSpec = trees[t].spec(kProbeNodes);
    apps::HplBenchmark::Params probe;
    probe.n = apps::HplBenchmark::problemSizeForNodes(probeSpec, kProbeNodes,
                                                      kMemoryFraction);
    probe.nb = 512;  // what HplBenchmark::run uses at full scale
    cluster::JobResult probeResult;
    sized[t].fiberStackBytes = cluster::autoFiberStackBytes(
        probeSpec, kProbeNodes, apps::HplBenchmark::rankBody(probe),
        &probeResult);
    ctx.recordWorldStats(probeResult.stats);
  }

  struct Cell {
    std::size_t tree = 0;
    int nodes = 0;
    std::size_t n = 0;
    cluster::JobResult result;
  };
  std::vector<Cell> cells;
  for (std::size_t t = 0; t < trees.size(); ++t)
    for (int nodes : nodeCounts) cells.push_back({t, nodes, 0, {}});

  cluster::JobResult laptop;
  ctx.parallelFor(cells.size() + 1, [&](std::size_t i) {
    if (i == cells.size()) {
      cluster::ClusterSimulation sim(laptopReference());
      laptop = apps::HplBenchmark::run(sim, 1, kMemoryFraction);
      ctx.recordWorldStats(laptop.stats);
      return;
    }
    Cell& cell = cells[i];
    cluster::ClusterSimulation sim(trees[cell.tree].spec(cell.nodes));
    cell.n = apps::HplBenchmark::problemSizeForNodes(sim.spec(), cell.nodes,
                                                     kMemoryFraction);
    cell.result = apps::HplBenchmark::run(sim, cell.nodes, kMemoryFraction,
                                          sized[cell.tree]);
    ctx.recordWorldStats(cell.result.stats);
  });

  ResultSet results;
  TextTable table({"cluster", "nodes", "ranks", "n", "wallclock s", "GFLOPS",
                   "efficiency", "MFLOPS/W"});
  for (const Cell& cell : cells) {
    const cluster::JobResult& r = cell.result;
    table.addRow({trees[cell.tree].spec(cell.nodes).name,
                  std::to_string(cell.nodes), std::to_string(r.ranks),
                  std::to_string(cell.n), fmt(r.wallClockSeconds, 1),
                  fmt(r.gflops, 1), fmt(r.efficiency() * 100, 0) + "%",
                  fmt(r.mflopsPerWatt, 0)});
  }
  results.addTable("HPL weak scaling: Tegra2 trees vs ARMv8 trees",
                   std::move(table));

  // Crossover vs the laptop-class reference (Figure 2(b) redrawn at
  // cluster scale): nodes of each tree needed to match one laptop node's
  // HPL rate (at the 4096-node tree's delivered per-node rate), and the
  // energy-efficiency ratio that makes the trade worthwhile (or not).
  const Cell& tegraTop = cells[nodeCounts.size() - 1];
  const Cell& armv8Top = cells.back();
  TextTable cross({"reference / tree", "GFLOPS", "per-node GFLOPS",
                   "nodes per laptop", "MFLOPS/W", "vs laptop"});
  cross.addRow({laptopReference().name, fmt(laptop.gflops, 2),
                fmt(laptop.gflops, 2), "1", fmt(laptop.mflopsPerWatt, 0),
                "1.00x"});
  auto crossRow = [&](const Cell& cell) {
    const double perNode =
        cell.result.gflops / static_cast<double>(cell.nodes);
    cross.addRow({trees[cell.tree].spec(cell.nodes).name,
                  fmt(cell.result.gflops, 1), fmt(perNode, 3),
                  fmt(laptop.gflops / perNode, 1),
                  fmt(cell.result.mflopsPerWatt, 0),
                  fmt(cell.result.mflopsPerWatt / laptop.mflopsPerWatt, 2) +
                      "x"});
  };
  crossRow(tegraTop);
  crossRow(armv8Top);
  results.addTable("laptop crossover at 4096 nodes (Figure 2(b) projection)",
                   std::move(cross));

  results.addMetric("ranks simulated at 4096 nodes",
                    static_cast<double>(
                        armv8Top.result.stats.engine.peakLiveProcesses),
                    "processes");
  results.addMetric("ARMv8 vs Tegra2 HPL speedup at 4096 nodes",
                    armv8Top.result.gflops / tegraTop.result.gflops, "x");
  results.addMetric("Tegra2 nodes per laptop-class node",
                    laptop.gflops * tegraTop.nodes / tegraTop.result.gflops,
                    "nodes");
  results.addMetric("ARMv8 nodes per laptop-class node",
                    laptop.gflops * armv8Top.nodes / armv8Top.result.gflops,
                    "nodes");
  results.addMetric("ARMv8 Green500 metric at 4096 nodes",
                    armv8Top.result.mflopsPerWatt, "MFLOPS/W");

  // 8,192-rank traced comparison — bounded modes only: full mode would
  // retain every span of an 8,192-rank HPL run, the exact memory cliff
  // the bounded sinks exist to avoid.
  const obs::TraceMode traceMode = obs::defaultTraceMode();
  if (traceMode != obs::TraceMode::Full) {
    struct Traced {
      cluster::JobResult result;
      double computeS = 0.0, sendS = 0.0, recvS = 0.0, waitS = 0.0;
      double nonCompute = 0.0;
    };
    std::array<Traced, 2> traced;
    ctx.parallelFor(trees.size(), [&](std::size_t t) {
      cluster::ClusterSimulation sim(trees[t].spec(4096));
      cluster::JobOptions options = sized[t];
      options.enableTracing = true;
      options.traceSeed = ctx.rng(4096 + t).nextU64();
      options.observer = [&, t](const mpi::MpiWorld& world,
                                const cluster::JobResult& r) {
        const auto summaries =
            world.tracer().summarize(r.ranks, r.wallClockSeconds);
        for (const auto& s : summaries) {
          traced[t].computeS += s.computeSeconds;
          traced[t].sendS += s.sendSeconds;
          traced[t].recvS += s.recvSeconds;
          traced[t].waitS += s.waitSeconds;
        }
        traced[t].nonCompute =
            world.tracer().nonComputeFraction(r.ranks, r.wallClockSeconds);
        if (ctx.traceExportEnabled()) {
          ctx.exportArtefact(std::string("ablation_armv8_bigcluster__") +
                                 trees[t].label + "4096.breakdown.csv",
                             obs::exportBreakdownCsv(summaries));
        }
      };
      apps::HplBenchmark::Params params;
      params.n = apps::HplBenchmark::problemSizeForNodes(sim.spec(), 4096,
                                                         kMemoryFraction);
      params.nb = 512;
      traced[t].result =
          sim.runJob(4096, apps::HplBenchmark::rankBody(params), options);
      ctx.recordWorldStats(traced[t].result.stats);
    });

    TextTable comm({"cluster", "compute rank-s", "send rank-s",
                    "recv rank-s", "wait rank-s", "non-compute",
                    "trace KiB"});
    for (std::size_t t = 0; t < trees.size(); ++t) {
      comm.addRow({trees[t].spec(4096).name, fmt(traced[t].computeS, 1),
                   fmt(traced[t].sendS, 1), fmt(traced[t].recvS, 1),
                   fmt(traced[t].waitS, 1),
                   fmt(traced[t].nonCompute * 100, 1) + "%",
                   fmt(static_cast<double>(
                           traced[t].result.stats.traceMemoryBytes) /
                           1024.0,
                       1)});
    }
    results.addTable(std::string("8192-rank communication breakdown (") +
                         obs::toString(traceMode) + ")",
                     std::move(comm));
    results.addMetric(
        "ARMv8 non-compute fraction at 8192 ranks",
        traced[1].nonCompute * 100, "%");
    results.addMetric(
        "Tegra2 non-compute fraction at 8192 ranks",
        traced[0].nonCompute * 100, "%");
    results.addNote(
        "the projected on-chip 10 GbE NIC and fatter spine cut the "
        "non-compute fraction relative to the Tegra 2 tree at the same "
        "scale — the Section 4 scalability post-mortem, projected forward");
  }

  // 65,536-rank weak-scaled cell — aggregate trace mode only. A 32,768-node
  // ARMv8 tree at 2 ranks/node is the largest world the campaign builds
  // (8x the Figure-2 sweep top); aggregate mode keeps trace memory O(ranks)
  // and the guard-paged probe-sized stacks keep resident memory bounded by
  // the pages each fiber actually touches.
  if (traceMode == obs::TraceMode::Aggregate) {
    constexpr int kHugeNodes = 32768;
    cluster::ClusterSimulation sim(armv8Scaled(kHugeNodes));
    cluster::JobOptions options = sized[1];
    options.enableTracing = true;
    options.traceSeed = ctx.rng(static_cast<std::uint64_t>(kHugeNodes)).nextU64();
    double nonCompute = 0.0;
    options.observer = [&](const mpi::MpiWorld& world,
                           const cluster::JobResult& r) {
      nonCompute =
          world.tracer().nonComputeFraction(r.ranks, r.wallClockSeconds);
    };
    apps::HplBenchmark::Params params;
    params.n = apps::HplBenchmark::problemSizeForNodes(sim.spec(), kHugeNodes,
                                                       kMemoryFraction);
    params.nb = 512;
    const cluster::JobResult huge =
        sim.runJob(kHugeNodes, apps::HplBenchmark::rankBody(params), options);
    ctx.recordWorldStats(huge.stats);
    // The campaign JSON criticalPath object rolls up every world in the
    // experiment, so surface the huge cell's own bounding chain here —
    // this is the table EXPERIMENTS.md quotes for the 65,536-rank cell.
    const obs::CriticalPath& hugePath = huge.stats.criticalPath;
    TextTable hugePathTable({"ranks", "compute s", "send s", "recv s",
                             "link s", "wait s", "hops", "end rank"});
    hugePathTable.addRow(
        {std::to_string(huge.ranks), fmt(hugePath.computeSeconds, 3),
         fmt(hugePath.sendSeconds, 3), fmt(hugePath.recvSeconds, 3),
         fmt(hugePath.linkSeconds, 3), fmt(hugePath.waitSeconds, 3),
         std::to_string(hugePath.edges), std::to_string(hugePath.endRank)});
    results.addTable("65536-rank critical path (sim time)",
                     std::move(hugePathTable));
    results.addMetric("ranks simulated at 32768 nodes",
                      static_cast<double>(huge.ranks), "processes");
    results.addMetric("ARMv8 HPL at 32768 nodes", huge.gflops, "GFLOPS");
    results.addMetric("ARMv8 efficiency at 32768 nodes",
                      huge.efficiency() * 100, "%");
    results.addMetric("ARMv8 non-compute fraction at 65536 ranks",
                      nonCompute * 100, "%");
    results.addNote(
        "the 65,536-rank cell weak-scales the same 2% memory fraction; it "
        "exists to exercise the engine at ~10x the paper's cluster scale "
        "and runs only under the bounded aggregate trace mode");
  }

  results.addNote(
      "weak-scaled HPL at a 2% memory fraction; the ARMv8 node's 4 GiB "
      "LPDDR4 gives it a larger per-node matrix than the 1 GiB Tegra 2 "
      "node at the same fraction, as weak scaling intends");
  return results;
}

}  // namespace

void registerOpsExperiments(ExperimentRegistry& registry) {
  registry.add(std::make_unique<LambdaExperiment>(
      "ecc_reliability", "Section 6.3", "ECC / DRAM reliability estimates",
      runEccReliability));
  registry.add(std::make_unique<LambdaExperiment>(
      "ablation_dvfs", "Section 5", "ablation: DVFS governor policy",
      runAblationDvfs));
  registry.add(std::make_unique<LambdaExperiment>(
      "ablation_armv8", "Section 3.1.2",
      "ablation / projection: hypothetical quad-core ARMv8 @ 2 GHz",
      runAblationArmv8));
  registry.add(std::make_unique<LambdaExperiment>(
      "ablation_armv8_bigcluster", "Section 6 / Figure 2",
      "projection: 2048/4096-node Tegra2 vs ARMv8 trees, laptop crossover",
      runAblationArmv8BigCluster));
}

}  // namespace tibsim::core
