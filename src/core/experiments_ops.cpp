// Built-in experiments for the operations/outlook studies: the Section-6.3
// ECC / DRAM reliability estimates, the DVFS-governor ablation and the
// ARMv8 projection. Ported from the former standalone bench mains into
// registry entries.

#include <memory>
#include <utility>

#include "builtin_experiments.hpp"
#include "tibsim/apps/hpl.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/statistics.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiment.hpp"
#include "tibsim/core/experiments.hpp"
#include "tibsim/kernels/microkernel.hpp"
#include "tibsim/kernels/stream.hpp"
#include "tibsim/power/dvfs_governor.hpp"
#include "tibsim/power/power_model.hpp"
#include "tibsim/reliability/dram_errors.hpp"

namespace tibsim::core {

namespace {

using namespace tibsim::units;

ResultSet runEccReliability(ExperimentContext& ctx) {
  reliability::DramErrorModel model;  // paper-arithmetic default (4.5 %/yr)
  ResultSet results;

  TextTable daily({"nodes", "P(error today)", "expected errors/day",
                   "Monte-Carlo check"});
  for (int nodes : {192, 500, 1000, 1500, 5000}) {
    daily.addRow({std::to_string(nodes),
                  fmt(100 * model.systemDailyErrorProbability(nodes), 1) +
                      "%",
                  fmt(model.expectedErrorsPerDay(nodes), 2),
                  fmt(100 * model.monteCarloDailyErrorProbability(
                                nodes, 2000, ctx.seed()),
                      1) +
                      "%"});
  }
  results.addTable("daily error probability", std::move(daily));
  results.addMetric("P(error today) at 1,500 nodes",
                    100 * model.systemDailyErrorProbability(1500), "%");
  results.addNote(
      "paper: \"a 1,500 node system, with 2 DIMMs per node, has a 30% "
      "error probability on any given day\"");

  TextTable band({"annual DIMM error rate", "P(error today)"});
  for (double annual : {0.04, 0.08, 0.12, 0.20}) {
    reliability::DramErrorModel m;
    m.dimmAnnualErrorProbability = annual;
    band.addRow({fmt(100 * annual, 0) + "%",
                 fmt(100 * m.systemDailyErrorProbability(1500), 1) + "%"});
  }
  results.addTable(
      "sensitivity over the Schroeder et al. 4-20 % annual band "
      "(1,500 nodes)",
      std::move(band));

  TextTable jobs({"nodes", "job hours", "P(survive)"});
  for (int nodes : {192, 1500}) {
    for (double hours : {1.0, 12.0, 48.0}) {
      jobs.addRow({std::to_string(nodes), fmt(hours, 0),
                   fmt(100 * model.jobSurvivalProbability(nodes, hours), 1) +
                       "%"});
    }
  }
  results.addTable("consequence without ECC (any error kills the job)",
                   std::move(jobs));

  TextTable ckpt({"checkpoint interval h", "useful-work fraction"});
  for (double interval : {0.5, 2.0, 8.0, 24.0}) {
    ckpt.addRow({fmt(interval, 1),
                 fmt(100 * model.effectiveThroughput(1500, interval, 0.05),
                     1) +
                     "%"});
  }
  results.addTable("checkpoint/restart throughput (checkpoint costs 3 min)",
                   std::move(ckpt));

  results.addNote(
      "ECC-capable controllers exist in server-class ARM SoCs (Calxeda "
      "EnergyCore, TI KeyStone II) — a design decision, not a technical "
      "limitation (Section 6.3)");
  return results;
}

ResultSet runAblationDvfs(ExperimentContext&) {
  const perfmodel::WorkProfile shape{
      1.0, 0.0, perfmodel::AccessPattern::Resident, 0.9, 1.0, 0.0};
  // 20 bursts of 1 GFLOP with 0.2 s gaps: an MPI application iterating.
  const std::vector<power::WorkPhase> trace(20, power::WorkPhase{1e9, 0.2});

  ResultSet results;
  for (const auto& platform : {arch::PlatformRegistry::tegra2(),
                               arch::PlatformRegistry::exynos5250(),
                               arch::PlatformRegistry::corei7_2760qm()}) {
    TextTable table({"governor", "time s", "energy J", "avg freq GHz",
                     "vs performance"});
    double baseEnergy = 0.0;
    for (auto policy :
         {power::GovernorPolicy::Performance, power::GovernorPolicy::OnDemand,
          power::GovernorPolicy::Conservative,
          power::GovernorPolicy::Powersave}) {
      power::DvfsGovernor::Config cfg;
      cfg.policy = policy;
      const auto result =
          power::DvfsGovernor(platform, cfg).run(trace, shape);
      if (baseEnergy == 0.0) baseEnergy = result.energyJ;
      table.addRow({toString(policy), fmt(result.seconds, 2),
                    fmt(result.energyJ, 1),
                    fmt(toGhz(result.averageFrequencyHz), 2),
                    fmt(result.energyJ / baseEnergy, 2) + "x energy"});
    }
    results.addTable(platform.name, std::move(table));
  }

  results.addNote(
      "on the board-static-dominated mobile platforms the performance "
      "governor is fastest AND most energy-efficient (race-to-idle) — the "
      "same effect as the Figure 3(b) frequency sweep, and the reason the "
      "paper pinned the performance governor for its measurements");
  return results;
}

ResultSet runAblationArmv8(ExperimentContext& ctx) {
  const auto armv8 = arch::PlatformRegistry::armv8Quad2GHz();
  auto platforms = arch::PlatformRegistry::evaluated();
  platforms.push_back(armv8);

  // Suite speedups vs the usual baseline; one cell per platform.
  const auto base = MicroKernelExperiment::baseline();
  struct Cell {
    double geoOne = 0.0, geoAll = 0.0, watts = 0.0, gflopsPerW = 0.0;
  };
  std::vector<Cell> cells(platforms.size());
  ctx.parallelFor(platforms.size(), [&](std::size_t p) {
    const auto& platform = platforms[p];
    const double f = platform.maxFrequencyHz();
    const auto one = MicroKernelExperiment::measureSuite(platform, f, 1);
    const auto all = MicroKernelExperiment::measureSuite(
        platform, f, platform.soc.cores);
    auto geo = [&](const auto& suite) {
      std::vector<double> r;
      for (std::size_t i = 0; i < suite.size(); ++i)
        r.push_back(base[i].seconds / suite[i].seconds);
      return stats::geomean(r);
    };
    double watts = 0.0, seconds = 0.0, flops = 0.0;
    for (std::size_t i = 0; i < all.size(); ++i) {
      watts += all[i].watts * all[i].seconds;
      seconds += all[i].seconds;
      flops += kernels::referenceProfileFor(kernels::suiteTags()[i]).flops;
    }
    watts /= seconds;
    cells[p] = {geo(one), geo(all), watts,
                toGflops(flops / seconds) / watts};
  });

  ResultSet results;
  TextTable table({"platform", "peak GFLOPS", "suite speedup (1 core)",
                   "suite speedup (all cores)", "platform W (loaded)",
                   "suite GFLOPS/W"});
  for (std::size_t p = 0; p < platforms.size(); ++p) {
    table.addRow({platforms[p].shortName,
                  fmt(toGflops(platforms[p].peakFlops()), 1),
                  fmt(cells[p].geoOne, 2) + "x",
                  fmt(cells[p].geoAll, 2) + "x", fmt(cells[p].watts, 1),
                  fmt(cells[p].gflopsPerW, 3)});
  }
  results.addTable("suite speedups incl. ARMv8 projection",
                   std::move(table));
  results.addMetric("ARMv8 suite speedup (all cores)", cells.back().geoAll,
                    "x");
  results.addMetric("ARMv8 suite efficiency", cells.back().gflopsPerW,
                    "GFLOPS/W");

  // Cluster projection: replace Tibidabo's Tegra 2 nodes with ARMv8 nodes.
  cluster::ClusterSpec armv8Cluster = cluster::ClusterSpec::tibidabo();
  armv8Cluster.name = "ARMv8 cluster (projected)";
  armv8Cluster.nodePlatform = armv8;
  armv8Cluster.protocol = net::Protocol::OpenMx;
  armv8Cluster.topology.linkRateBytesPerS = gbps(10.0);
  armv8Cluster.topology.bisectionBytesPerS = gbps(80.0);

  const std::vector<cluster::ClusterSpec> specs = {
      cluster::ClusterSpec::tibidabo(), armv8Cluster};
  std::vector<cluster::JobResult> hplRuns(specs.size());
  ctx.parallelFor(specs.size(), [&](std::size_t i) {
    cluster::ClusterSimulation sim(specs[i]);
    hplRuns[i] = apps::HplBenchmark::run(sim, 96, 0.5);
  });

  TextTable hpl({"cluster", "GFLOPS", "efficiency", "MFLOPS/W"});
  for (std::size_t i = 0; i < specs.size(); ++i) {
    hpl.addRow({specs[i].name, fmt(hplRuns[i].gflops, 1),
                fmt(hplRuns[i].efficiency() * 100, 0) + "%",
                fmt(hplRuns[i].mflopsPerWatt, 0)});
  }
  results.addTable("96-node HPL: Tegra2 cluster vs ARMv8 cluster",
                   std::move(hpl));
  results.addMetric("ARMv8 cluster Green500 metric",
                    hplRuns.back().mflopsPerWatt, "MFLOPS/W");

  results.addNote(
      "the ARMv8 part doubles per-cycle FP64 (NEON), adds an on-chip "
      "10 GbE NIC and ECC-capable memory path — the Section 6.3 wish list "
      "— and the Green500 metric responds accordingly");
  return results;
}

}  // namespace

void registerOpsExperiments(ExperimentRegistry& registry) {
  registry.add(std::make_unique<LambdaExperiment>(
      "ecc_reliability", "Section 6.3", "ECC / DRAM reliability estimates",
      runEccReliability));
  registry.add(std::make_unique<LambdaExperiment>(
      "ablation_dvfs", "Section 5", "ablation: DVFS governor policy",
      runAblationDvfs));
  registry.add(std::make_unique<LambdaExperiment>(
      "ablation_armv8", "Section 3.1.2",
      "ablation / projection: hypothetical quad-core ARMv8 @ 2 GHz",
      runAblationArmv8));
}

}  // namespace tibsim::core
