#pragma once
// Private registration index for the built-in experiments (one function per
// src/core/experiments_*.cpp). Called lazily by ExperimentRegistry::global()
// so registrations survive static-library linking without self-registration
// tricks.

namespace tibsim::core {

class ExperimentRegistry;

void registerTrendExperiments(ExperimentRegistry& registry);
void registerMicroKernelExperiments(ExperimentRegistry& registry);
void registerClusterExperiments(ExperimentRegistry& registry);
void registerNetworkExperiments(ExperimentRegistry& registry);
void registerOpsExperiments(ExperimentRegistry& registry);
void registerProxyExperiments(ExperimentRegistry& registry);

inline void registerBuiltinExperiments(ExperimentRegistry& registry) {
  registerTrendExperiments(registry);
  registerMicroKernelExperiments(registry);
  registerClusterExperiments(registry);
  registerNetworkExperiments(registry);
  registerOpsExperiments(registry);
  registerProxyExperiments(registry);
}

}  // namespace tibsim::core
