#include "tibsim/core/campaign.hpp"

#include <spawn.h>
#include <sys/wait.h>

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/core/result_cache.hpp"
#include "tibsim/mpi/collective_verify.hpp"
#include "tibsim/obs/stall_report.hpp"
#include "tibsim/obs/trace_sink.hpp"
#include "tibsim/sim/execution_context.hpp"
#include "tibsim/sim/shard_scheduler.hpp"

extern char** environ;

namespace tibsim::core {

namespace {

constexpr const char* kPaperLine =
    "(reproduction of \"Supercomputing with Commodity CPUs: Are Mobile SoCs "
    "Ready for HPC?\", SC'13)";

void writeFile(const std::filesystem::path& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  TIB_REQUIRE_MSG(out.good(), "cannot open " + path.string());
  out << text;
  TIB_REQUIRE_MSG(out.good(), "cannot write " + path.string());
}

// Run-summary wall-clock columns only ("wall s", campaign total). These are
// host measurements the summary prints for the operator; they never enter
// the byte-identical JSON/CSV artefacts (see resultDocument), which is what
// the wall-clock lint rule protects.
using HostTimePoint = std::chrono::steady_clock::time_point;  // tibsim-lint: allow(wall-clock)

double secondsSince(HostTimePoint start) {
  const auto now = std::chrono::steady_clock::now();  // tibsim-lint: allow(wall-clock)
  return std::chrono::duration<double>(now - start).count();
}

json::Value linkKindJson(const obs::LinkKindCounters& kind) {
  json::Value out = json::Value::object();
  out["busySeconds"] = kind.busySeconds;
  out["bytes"] = kind.bytes;
  out["transfers"] = static_cast<double>(kind.transfers);
  out["queueSeconds"] = kind.queueSeconds;
  out["maxLinkBusySeconds"] = kind.maxLinkBusySeconds;
  // Queueing-delay histogram, nonzero buckets only as [lowerSeconds, count]
  // pairs — O(occupied buckets), independent of kBuckets growth.
  json::Value delay = json::Value::array();
  for (int b = 0; b < obs::DurationHistogram::kBuckets; ++b) {
    if (kind.queueDelay.counts[static_cast<std::size_t>(b)] == 0) continue;
    json::Value bucket = json::Value::array();
    bucket.push(obs::DurationHistogram::bucketLowerSeconds(b));
    bucket.push(static_cast<double>(
        kind.queueDelay.counts[static_cast<std::size_t>(b)]));
    delay.push(std::move(bucket));
  }
  out["queueDelay"] = std::move(delay);
  return out;
}

std::vector<std::string> splitCommaList(const std::string& text) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) parts.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

/// Re-invoke this binary once per worker with an exact --worker-cells list,
/// blocking until every worker exits. Workers communicate results through
/// the cache only (no pipes), so the parent replays them afterwards in the
/// existing canonical order. A worker that fails is a campaign failure:
/// its cells would silently fall back to in-process recomputation
/// otherwise, hiding the breakage.
void runWorkerProcesses(const std::vector<std::vector<std::string>>& shards,
                        const CampaignOptions& options, int workerJobs) {
  std::vector<pid_t> pids;
  for (const std::vector<std::string>& cells : shards) {
    if (cells.empty()) continue;
    std::string joined;
    for (const std::string& name : cells)
      joined += (joined.empty() ? "" : ",") + name;
    std::vector<std::string> args = {
        "socbench",     "run",
        "--worker-cells", joined,
        "--cache",      options.cacheDir,
        "--seed",       std::to_string(options.seed),
        "--jobs",       std::to_string(workerJobs),
        "--no-summary"};
    if (!options.simBackend.empty()) {
      args.push_back("--sim-backend");
      args.push_back(options.simBackend);
    }
    if (!options.traceMode.empty()) {
      args.push_back("--trace-mode");
      args.push_back(options.traceMode);
    }
    if (options.simShards > 0) {
      args.push_back("--sim-shards");
      args.push_back(std::to_string(options.simShards));
    }
    if (options.stallReport) args.push_back("--stall-report");
    if (options.verifyCollectives) args.push_back("--verify-collectives");
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    // /proc/self/exe pins the image this process is running (even if the
    // file was replaced since exec), so workers share our binary
    // fingerprint and their cache entries replay here.
    pid_t pid = -1;
    const int rc = ::posix_spawn(&pid, "/proc/self/exe", nullptr, nullptr,
                                 argv.data(), environ);
    TIB_REQUIRE_MSG(rc == 0, "cannot spawn campaign worker: " +
                                 std::string(std::strerror(rc)));
    pids.push_back(pid);
  }
  // Collect every worker before judging any: leaking live children on a
  // first-failure throw would leave them racing the parent's fallback.
  std::vector<int> statuses(pids.size(), 0);
  for (std::size_t i = 0; i < pids.size(); ++i)
    TIB_REQUIRE_MSG(::waitpid(pids[i], &statuses[i], 0) == pids[i],
                    "waitpid lost a campaign worker");
  for (const int status : statuses) {
    TIB_REQUIRE_MSG(WIFEXITED(status) && WEXITSTATUS(status) == 0,
                    "campaign worker failed with status " +
                        std::to_string(WIFEXITED(status)
                                           ? WEXITSTATUS(status)
                                           : -WTERMSIG(status)));
  }
}

}  // namespace

std::string resultDocument(const Experiment& experiment, std::uint64_t seed,
                           const ResultSet& results,
                           const sim::EngineStats* engine,
                           const obs::RunCounters* counters) {
  json::Value doc = json::Value::object();
  doc["schema"] = "socbench-result-v1";
  doc["experiment"] = experiment.name();
  doc["paperRef"] = experiment.paperRef();
  doc["title"] = experiment.title();
  doc["seed"] = static_cast<double>(seed);
  if (engine != nullptr) {
    // Deterministic counters only: hostSeconds is a wall-clock measurement
    // and would break byte-identical output across runs/backends/--jobs.
    json::Value stats = json::Value::object();
    stats["eventsDispatched"] = static_cast<double>(engine->eventsDispatched);
    stats["contextSwitches"] = static_cast<double>(engine->contextSwitches);
    stats["processesSpawned"] = static_cast<double>(engine->processesSpawned);
    stats["peakLiveProcesses"] =
        static_cast<double>(engine->peakLiveProcesses);
    stats["queueHighWater"] = static_cast<double>(engine->queueHighWater);
    stats["simSeconds"] = engine->simSeconds;
    doc["engine"] = std::move(stats);
  }
  if (counters != nullptr) {
    // World traffic + trace accounting. Everything here is a function of
    // the simulated runs (counts, modelled bytes, sink bookkeeping), so it
    // stays byte-identical across runs/backends/--jobs.
    json::Value worlds = json::Value::object();
    worlds["worlds"] = static_cast<double>(counters->worlds);
    worlds["messages"] = static_cast<double>(counters->messages);
    worlds["payloadBytes"] = counters->payloadBytes;
    worlds["wireBytes"] = counters->wireBytes;
    worlds["traceSpansRecorded"] =
        static_cast<double>(counters->spansRecorded);
    worlds["traceSpansRetained"] =
        static_cast<double>(counters->spansRetained);
    worlds["traceMemoryPeakBytes"] =
        static_cast<double>(counters->traceMemoryPeakBytes);
    worlds["payloadInlineMessages"] =
        static_cast<double>(counters->payloadInlineMessages);
    worlds["payloadPooledMessages"] =
        static_cast<double>(counters->payloadPooledMessages);
    worlds["payloadPoolReuses"] =
        static_cast<double>(counters->payloadPoolReuses);
    worlds["payloadPoolAllocations"] =
        static_cast<double>(counters->payloadPoolAllocations);
    worlds["payloadPoolReturns"] =
        static_cast<double>(counters->payloadPoolReturns);
    worlds["payloadPoolTrimmedBuffers"] =
        static_cast<double>(counters->payloadPoolTrimmedBuffers);
    worlds["payloadPoolLiveHighWater"] =
        static_cast<double>(counters->payloadPoolLiveHighWater);
    // Present only on verified runs (--verify-collectives), so unverified
    // campaign artefacts keep their exact historical bytes.
    if (counters->collectiveChecks > 0)
      worlds["collectiveChecks"] =
          static_cast<double>(counters->collectiveChecks);
    doc["worlds"] = std::move(worlds);
    // Link-utilization telemetry (net/fabric.hpp): per-kind busy time,
    // bytes, transfer counts and queueing-delay histograms. Recorded at
    // canonical fabric occupancy points only, so the object is
    // byte-identical across runs, backends, --jobs and --sim-shards.
    if (counters->links.any()) {
      json::Value links = json::Value::object();
      links["uplink"] = linkKindJson(counters->links.uplink);
      links["core"] = linkKindJson(counters->links.core);
      links["downlink"] = linkKindJson(counters->links.downlink);
      doc["links"] = std::move(links);
    }
    // Sim-time critical path (obs/critical_path.hpp): the dependency chain
    // bounding the slowest world, decomposed by segment. endRank is -1 when
    // the experiment ran more than one world.
    const obs::CriticalPath& path = counters->criticalPath;
    if (path.edges > 0 || path.lengthSeconds() > 0.0) {
      json::Value cp = json::Value::object();
      cp["computeSeconds"] = path.computeSeconds;
      cp["sendSeconds"] = path.sendSeconds;
      cp["recvSeconds"] = path.recvSeconds;
      cp["linkSeconds"] = path.linkSeconds;
      cp["waitSeconds"] = path.waitSeconds;
      cp["edges"] = static_cast<double>(path.edges);
      cp["endRank"] = path.endRank;
      doc["criticalPath"] = std::move(cp);
    }
  }
  doc["results"] = ResultSet::toJson(results);
  return doc.dump(2) + "\n";
}

CampaignResult runCampaign(const CampaignOptions& options,
                           std::ostream& out) {
  const ExperimentRegistry& registry = ExperimentRegistry::global();
  const bool workerMode = !options.workerCells.empty();
  std::vector<const Experiment*> selected;
  if (workerMode) {
    // Internal worker invocation: the parent hands down exact names (no
    // globs), and this process computes them into the cache.
    for (const std::string& name : splitCommaList(options.workerCells)) {
      const Experiment* experiment = registry.find(name);
      TIB_REQUIRE_MSG(experiment != nullptr,
                      "worker cell not registered: " + name);
      selected.push_back(experiment);
    }
    TIB_REQUIRE_MSG(!selected.empty(), "--worker-cells names no experiment");
    TIB_REQUIRE_MSG(!options.cacheDir.empty(),
                    "--worker-cells requires --cache");
  } else {
    selected = registry.match(options.patterns);
    std::string patternText;
    for (const std::string& p : options.patterns)
      patternText += (patternText.empty() ? "" : " ") + p;
    TIB_REQUIRE_MSG(!selected.empty(),
                    "no experiment matches: " + patternText);
  }

  int jobs = options.jobs;
  if (jobs < 1)
    jobs = static_cast<int>(
        std::max<unsigned>(1, std::thread::hardware_concurrency()));

  // Backend override for the whole campaign (restored on return). The
  // WorldConfig of every simulation built below snapshots this default.
  std::optional<sim::ScopedExecBackend> backendOverride;
  if (!options.simBackend.empty())
    backendOverride.emplace(sim::parseExecBackend(options.simBackend));

  // Trace-mode override, same snapshot pattern: every WorldConfig built
  // below captures the default trace mode at construction.
  std::optional<obs::ScopedTraceMode> traceOverride;
  if (!options.traceMode.empty())
    traceOverride.emplace(obs::parseTraceMode(options.traceMode));

  // Shard-count override, same snapshot pattern again: every WorldConfig
  // captures sim::defaultSimShards() at construction. Artefacts stay
  // byte-identical for any value; only wall-clock changes.
  std::optional<sim::ScopedSimShards> shardOverride;
  if (options.simShards > 0) shardOverride.emplace(options.simShards);

  // Stall-watchdog override (--stall-report): WorldConfig snapshots the
  // default, so every world built below inherits it. Leaving the flag off
  // keeps whatever TIBSIM_STALL_REPORT set process-wide.
  std::optional<obs::ScopedStallReport> stallOverride;
  if (options.stallReport) stallOverride.emplace(true);

  // Collective-verifier override (--verify-collectives): same snapshot
  // mechanism; off keeps whatever TIBSIM_VERIFY_COLLECTIVES set.
  std::optional<mpi::ScopedVerifyCollectives> verifyOverride;
  if (options.verifyCollectives) verifyOverride.emplace(true);

  CampaignResult campaign;
  campaign.jobs = jobs;
  campaign.seed = options.seed;
  campaign.runs.resize(selected.size());

  // Result cache. Keys are computed after the scoped overrides above, so
  // the resolved-effective settings key identically whether they came from
  // a flag, the environment or the default. --trace-export disables the
  // cache entirely: timeline artefacts are written while an experiment
  // runs and a replayed cell cannot reproduce them.
  const bool cacheEnabled =
      !options.cacheDir.empty() && options.traceExportDir.empty();
  const int procs = std::max(1, options.procs);
  TIB_REQUIRE_MSG(procs == 1 || (cacheEnabled && !workerMode),
                  "--procs > 1 requires --cache (workers exchange results "
                  "through the cache) and is incompatible with "
                  "--trace-export");
  std::optional<ResultCache> cache;
  std::vector<std::string> keys(selected.size());
  if (cacheEnabled) {
    cache.emplace(options.cacheDir);
    CacheKeyInputs base;
    base.seed = options.seed;
    base.simBackend = sim::toString(sim::defaultExecBackend());
    base.traceMode = obs::toString(obs::defaultTraceMode());
    base.simShards = sim::defaultSimShards();
    base.stallReport = obs::defaultStallReport();
    base.verifyCollectives = mpi::defaultVerifyCollectives();
    base.platformSpecHash = hashPlatformSpecs();
    base.binaryFingerprint = executableFingerprint();
    for (std::size_t i = 0; i < selected.size(); ++i) {
      CacheKeyInputs inputs = base;
      inputs.experiment = selected[i]->name();
      inputs.versionTag = selected[i]->versionTag();
      keys[i] = cacheKey(inputs);
    }
  }

  if (options.summary) {
    out << "=== socbench: " << selected.size() << " experiment"
        << (selected.size() == 1 ? "" : "s") << ", jobs=" << jobs
        << (procs > 1 ? ", procs=" + std::to_string(procs) : "")
        << ", seed=" << options.seed
        << ", sim-backend=" << sim::toString(sim::defaultExecBackend())
        << ", sim-shards=" << sim::defaultSimShards()
        << ", trace-mode=" << obs::toString(obs::defaultTraceMode())
        << " ===\n"
        << kPaperLine << "\n\n";
  }

  // One pool shared by the campaign level and every experiment's inner
  // sweep; TaskPool::parallelFor is nested-safe. jobs == 1 runs serial.
  TaskPool pool(static_cast<std::size_t>(jobs));
  const auto campaignStart = std::chrono::steady_clock::now();  // tibsim-lint: allow(wall-clock)

  const auto replay = [](ExperimentRun& run, CachedRun&& hit) {
    run.cells = hit.cells;
    run.engine = hit.engine;  // deterministic fields; host-only stay zero
    run.counters = std::move(hit.counters);
    run.results = std::move(hit.results);
    run.json = std::move(hit.resultJson);
    run.fromCache = true;
  };

  // Probe: hits replay immediately, misses queue for computation. The
  // canonical selection order is preserved throughout — runs[i] is filled
  // wherever its bytes come from, so emission below never reorders.
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < selected.size(); ++i) {
    const Experiment& experiment = *selected[i];
    ExperimentRun& run = campaign.runs[i];
    run.name = experiment.name();
    run.paperRef = experiment.paperRef();
    run.title = experiment.title();
    if (cache) {
      if (std::optional<CachedRun> hit = cache->load(run.name, keys[i])) {
        replay(run, std::move(*hit));
        ++campaign.cacheHits;
        continue;
      }
    }
    missing.push_back(i);
  }
  campaign.cacheMisses = missing.size();

  // Multi-process scheduling: partition the misses round-robin over the
  // canonical order, let workers compute them into the cache, then replay
  // what they stored. Anything a worker somehow failed to store (it would
  // have exited nonzero first) falls through to in-process computation.
  if (procs > 1 && !missing.empty()) {
    std::vector<std::vector<std::string>> shards(
        static_cast<std::size_t>(procs));
    for (std::size_t m = 0; m < missing.size(); ++m)
      shards[m % static_cast<std::size_t>(procs)].push_back(
          campaign.runs[missing[m]].name);
    runWorkerProcesses(shards, options, std::max(1, jobs / procs));
    std::vector<std::size_t> still;
    for (const std::size_t i : missing) {
      ExperimentRun& run = campaign.runs[i];
      if (std::optional<CachedRun> hit = cache->load(run.name, keys[i]))
        replay(run, std::move(*hit));
      else
        still.push_back(i);
    }
    missing = std::move(still);
  }

  pool.parallelFor(missing.size(), [&](std::size_t m) {
    const std::size_t i = missing[m];
    const Experiment& experiment = *selected[i];
    ExperimentRun& run = campaign.runs[i];
    const std::uint64_t seed = experimentSeed(options.seed, run.name);
    ExperimentContext ctx(seed, jobs > 1 ? &pool : nullptr);
    ctx.setTraceExportDir(options.traceExportDir);
    const auto start = std::chrono::steady_clock::now();  // tibsim-lint: allow(wall-clock)
    run.results = experiment.run(ctx);
    run.wallSeconds = secondsSince(start);
    run.cells = ctx.cellsExecuted();
    run.engine = ctx.engineStats();
    run.counters = ctx.runCounters();
    run.json = resultDocument(
        experiment, seed, run.results,
        run.engine.eventsDispatched > 0 ? &run.engine : nullptr,
        run.counters.worlds > 0 ? &run.counters : nullptr);
    if (cache) {
      CachedRun entry;
      entry.cells = run.cells;
      entry.engine = run.engine;  // store() keeps deterministic fields only
      entry.counters = run.counters;
      entry.resultJson = run.json;
      cache->store(run.name, keys[i], entry);
    }
  });
  campaign.wallSeconds = secondsSince(campaignStart);
  // The index is the parent's job: workers writing it concurrently would
  // race, and the parent's post-campaign scan sees every entry anyway.
  if (cache && !workerMode) cache->writeIndex();

  if (!options.jsonDir.empty()) {
    const std::filesystem::path dir(options.jsonDir);
    std::filesystem::create_directories(dir);
    for (const ExperimentRun& run : campaign.runs)
      writeFile(dir / (run.name + ".json"), run.json);
  }
  if (!options.csvDir.empty()) {
    const std::filesystem::path dir(options.csvDir);
    std::filesystem::create_directories(dir);
    for (const ExperimentRun& run : campaign.runs) {
      for (const auto& [stem, csv] : run.results.toCsvFiles())
        writeFile(dir / (run.name + "__" + stem + ".csv"), csv);
      if (run.engine.eventsDispatched > 0) {
        // Deterministic counters only — no hostSeconds (see resultDocument).
        std::ostringstream csv;
        csv << "eventsDispatched,contextSwitches,processesSpawned,"
               "peakLiveProcesses,queueHighWater,simSeconds\n"
            << run.engine.eventsDispatched << ','
            << run.engine.contextSwitches << ','
            << run.engine.processesSpawned << ','
            << run.engine.peakLiveProcesses << ','
            << run.engine.queueHighWater << ',' << run.engine.simSeconds
            << '\n';
        writeFile(dir / (run.name + "__engine.csv"), csv.str());
      }
      if (run.counters.worlds > 0) {
        std::ostringstream csv;
        csv << "worlds,messages,payloadBytes,wireBytes,traceSpansRecorded,"
               "traceSpansRetained,traceMemoryPeakBytes,"
               "payloadInlineMessages,payloadPooledMessages,"
               "payloadPoolReuses,payloadPoolAllocations,payloadPoolReturns,"
               "payloadPoolTrimmedBuffers,payloadPoolLiveHighWater\n"
            << run.counters.worlds << ',' << run.counters.messages << ','
            << run.counters.payloadBytes << ',' << run.counters.wireBytes
            << ',' << run.counters.spansRecorded << ','
            << run.counters.spansRetained << ','
            << run.counters.traceMemoryPeakBytes << ','
            << run.counters.payloadInlineMessages << ','
            << run.counters.payloadPooledMessages << ','
            << run.counters.payloadPoolReuses << ','
            << run.counters.payloadPoolAllocations << ','
            << run.counters.payloadPoolReturns << ','
            << run.counters.payloadPoolTrimmedBuffers << ','
            << run.counters.payloadPoolLiveHighWater << '\n';
        // Per-size-class pool table, appended after a blank line so the
        // first table keeps its historical byte layout. Only classes with
        // activity are emitted (acquires or parked), keeping the artefact
        // independent of how far any world's class vector happened to grow.
        bool classHeader = false;
        for (const obs::PayloadClassCounters& cls :
             run.counters.payloadPoolClasses) {
          if (cls.acquires == 0 && cls.parked == 0) continue;
          if (!classHeader) {
            csv << "\nclassBytes,acquires,reuses,allocations,parked\n";
            classHeader = true;
          }
          csv << cls.classBytes << ',' << cls.acquires << ',' << cls.reuses
              << ',' << cls.allocations << ',' << cls.parked << '\n';
        }
        writeFile(dir / (run.name + "__worlds.csv"), csv.str());
      }
      if (run.counters.links.any()) {
        // Link telemetry: per-kind scalar table, then (after a blank line,
        // the __worlds.csv convention) the nonzero queueing-delay buckets.
        // Doubles go through json::formatNumber so the artefact is
        // byte-identical across runs, backends, --jobs and --sim-shards.
        std::string csv =
            "kind,busySeconds,bytes,transfers,queueSeconds,"
            "maxLinkBusySeconds\n";
        const std::pair<const char*, const obs::LinkKindCounters*> kinds[] =
            {{"uplink", &run.counters.links.uplink},
             {"core", &run.counters.links.core},
             {"downlink", &run.counters.links.downlink}};
        for (const auto& [name, kind] : kinds) {
          csv += name;
          csv += ',';
          csv += json::formatNumber(kind->busySeconds);
          csv += ',';
          csv += json::formatNumber(kind->bytes);
          csv += ',';
          csv += std::to_string(kind->transfers);
          csv += ',';
          csv += json::formatNumber(kind->queueSeconds);
          csv += ',';
          csv += json::formatNumber(kind->maxLinkBusySeconds);
          csv += '\n';
        }
        bool delayHeader = false;
        for (const auto& [name, kind] : kinds) {
          for (int b = 0; b < obs::DurationHistogram::kBuckets; ++b) {
            const std::uint64_t count =
                kind->queueDelay.counts[static_cast<std::size_t>(b)];
            if (count == 0) continue;
            if (!delayHeader) {
              csv += "\nkind,bucketLowerSeconds,count\n";
              delayHeader = true;
            }
            csv += name;
            csv += ',';
            csv += json::formatNumber(
                obs::DurationHistogram::bucketLowerSeconds(b));
            csv += ',';
            csv += std::to_string(count);
            csv += '\n';
          }
        }
        writeFile(dir / (run.name + "__links.csv"), csv);
      }
    }
  }

  if (options.compat) {
    for (const ExperimentRun& run : campaign.runs) {
      out << "=== " << run.paperRef << ": " << run.title << " ===\n"
          << kPaperLine << "\n\n"
          << run.results.renderText() << '\n';
    }
  }

  if (options.summary) {
    TextTable table({"experiment", "paper ref", "wall s", "cells", "tables",
                     "charts", "metrics"});
    for (const ExperimentRun& run : campaign.runs) {
      table.addRow({run.name, run.paperRef, fmt(run.wallSeconds, 2),
                    std::to_string(run.cells),
                    std::to_string(run.results.tables().size()),
                    std::to_string(run.results.charts().size()),
                    std::to_string(run.results.metrics().size())});
    }
    out << "-- run summary --\n"
        << table.render() << '\n'
        << "campaign wall-clock: " << fmt(campaign.wallSeconds, 2)
        << " s with " << jobs << " job" << (jobs == 1 ? "" : "s");
    if (procs > 1)
      out << " across " << procs << " worker processes";
    out << '\n';
    if (cache) {
      out << "result cache: " << campaign.cacheHits << " hit"
          << (campaign.cacheHits == 1 ? "" : "s") << ", "
          << campaign.cacheMisses << " miss"
          << (campaign.cacheMisses == 1 ? "" : "es") << " (" << cache->dir()
          << ")\n";
    } else if (!options.cacheDir.empty()) {
      out << "result cache disabled: --trace-export artefacts are written "
             "during the run and cannot replay\n";
    }
    // Engine block: only experiments that ran discrete-event simulations.
    bool anyEngine = false;
    TextTable engineTable({"experiment", "events", "switches", "peak procs",
                           "queue hwm", "sim s", "host s/sim s"});
    for (const ExperimentRun& run : campaign.runs) {
      if (run.engine.eventsDispatched == 0) continue;
      anyEngine = true;
      engineTable.addRow({run.name,
                          std::to_string(run.engine.eventsDispatched),
                          std::to_string(run.engine.contextSwitches),
                          std::to_string(run.engine.peakLiveProcesses),
                          std::to_string(run.engine.queueHighWater),
                          fmt(run.engine.simSeconds, 2),
                          fmt(run.engine.hostSecondsPerSimSecond(), 4)});
    }
    if (anyEngine) {
      out << "-- engine (sim-backend="
          << sim::toString(sim::defaultExecBackend()) << ") --\n"
          << engineTable.render() << '\n';
    }
    // Shard-gang block: only when a sharded engine actually ran. Window
    // counts and barrier host time are run-summary-only (never serialised).
    bool anyShards = false;
    TextTable shardTable({"experiment", "shards", "windows", "parallel",
                          "barriers", "skipped", "merged recs", "ev/window",
                          "barrier s"});
    for (const ExperimentRun& run : campaign.runs) {
      if (run.engine.shardCount <= 1 || run.engine.shardWindows == 0)
        continue;
      anyShards = true;
      shardTable.addRow({run.name, std::to_string(run.engine.shardCount),
                         std::to_string(run.engine.shardWindows),
                         std::to_string(run.engine.shardParallelWindows),
                         std::to_string(run.engine.shardBarrierCalls),
                         std::to_string(run.engine.shardBarrierSkips),
                         std::to_string(run.engine.shardMergeRecords),
                         fmt(run.engine.eventsPerShardWindow(), 1),
                         fmt(run.engine.shardBarrierHostSeconds, 2)});
    }
    if (anyShards) {
      out << "-- shard gangs --\n" << shardTable.render() << '\n';
    }
    // Critical-path block: where the slowest dependency chain spent its
    // simulated time (compute / protocol / wire / residual wait).
    bool anyPath = false;
    TextTable pathTable({"experiment", "compute s", "send s", "recv s",
                         "link s", "wait s", "hops", "end rank"});
    for (const ExperimentRun& run : campaign.runs) {
      const obs::CriticalPath& path = run.counters.criticalPath;
      if (path.edges == 0 && path.lengthSeconds() == 0.0) continue;
      anyPath = true;
      pathTable.addRow({run.name, fmt(path.computeSeconds, 4),
                        fmt(path.sendSeconds, 4), fmt(path.recvSeconds, 4),
                        fmt(path.linkSeconds, 4), fmt(path.waitSeconds, 4),
                        std::to_string(path.edges),
                        path.endRank >= 0 ? std::to_string(path.endRank)
                                          : std::string("-")});
    }
    if (anyPath) {
      out << "-- critical path (sim time) --\n" << pathTable.render() << '\n';
    }
    // Worlds block: message traffic and trace accounting, plus the fiber
    // stack high-water marks (host-dependent, so summary-only — never in
    // the serialised artefacts).
    bool anyWorlds = false;
    TextTable worldsTable({"experiment", "worlds", "messages", "spans rec",
                           "spans kept", "trace KiB", "pool reuse",
                           "pool alloc", "stack KiB", "stack hwm KiB"});
    for (const ExperimentRun& run : campaign.runs) {
      if (run.counters.worlds == 0) continue;
      anyWorlds = true;
      const auto toKiB = [](std::size_t bytes) {
        return fmt(static_cast<double>(bytes) / 1024.0, 1);
      };
      worldsTable.addRow(
          {run.name, std::to_string(run.counters.worlds),
           std::to_string(run.counters.messages),
           std::to_string(run.counters.spansRecorded),
           std::to_string(run.counters.spansRetained),
           toKiB(run.counters.traceMemoryPeakBytes),
           std::to_string(run.counters.payloadPoolReuses),
           std::to_string(run.counters.payloadPoolAllocations),
           toKiB(run.engine.fiberStackBytes),
           toKiB(run.engine.stackHighWaterBytes)});
    }
    if (anyWorlds) {
      out << "-- worlds (trace-mode="
          << obs::toString(obs::defaultTraceMode()) << ") --\n"
          << worldsTable.render() << '\n';
    }
    // Collective-verifier roll-up: reaching this line means no experiment
    // threw a mismatch, so the count is always paired with 0 mismatches
    // (CI pins this exact line over the full campaign).
    if (options.verifyCollectives || mpi::defaultVerifyCollectives()) {
      std::uint64_t totalChecks = 0;
      for (const ExperimentRun& run : campaign.runs)
        totalChecks += run.counters.collectiveChecks;
      out << "collective verify: " << totalChecks
          << " checks, 0 mismatches\n";
    }
    if (!options.jsonDir.empty())
      out << "JSON written to " << options.jsonDir << "/\n";
    if (!options.csvDir.empty())
      out << "CSV written to " << options.csvDir << "/\n";
    if (!options.traceExportDir.empty())
      out << "trace exports written to " << options.traceExportDir << "/\n";
  }
  return campaign;
}

namespace {

/// from_chars-backed numeric flag parsing: the whole token must be one
/// in-range number. Returns false — no exception, no std::stoi abort — on
/// anything else ("banana", "12x", overflow, empty).
template <typename T>
bool parseNumber(const std::string& text, T& out) {
  const char* first = text.data();
  const char* last = text.data() + text.size();
  T value{};
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last || first == last) return false;
  out = value;
  return true;
}

int listCommand(const std::vector<std::string>& patterns, std::ostream& out) {
  const std::vector<const Experiment*> selected =
      ExperimentRegistry::global().match(patterns);
  TextTable table({"name", "paper ref", "title"});
  for (const Experiment* experiment : selected)
    table.addRow(
        {experiment->name(), experiment->paperRef(), experiment->title()});
  out << table.render() << selected.size() << " experiment"
      << (selected.size() == 1 ? "" : "s") << " registered\n";
  return selected.empty() ? 1 : 0;
}

void printUsage(std::ostream& out) {
  out << "socbench — registry-driven campaign driver for the tibsim "
         "evaluation suite\n\n"
         "usage:\n"
         "  socbench list [glob...]\n"
         "  socbench run [glob...] [--json DIR] [--csv DIR] [--jobs N]\n"
         "               [--seed S] [--cache DIR] [--procs N]\n"
         "               [--sim-backend fiber|thread]\n"
         "               [--sim-shards N]\n"
         "               [--trace-mode full|sampled|aggregate]\n"
         "               [--trace-export DIR] [--stall-report]\n"
         "               [--verify-collectives]\n"
         "               [--compat] [--no-summary]\n\n"
         "Globs match experiment names ('fig0?', 'ablation_*'); no glob "
         "selects every experiment.\n"
         "Flags accept both '--flag value' and '--flag=value'.\n"
         "--cache DIR keys every experiment cell by a content hash "
         "(experiment + version tag, platform spec bytes, seed, resolved\n"
         "backend/trace/shard options, binary fingerprint): hits replay "
         "their JSON/CSV byte-identically from DIR, misses are computed\n"
         "and stored atomically. Any ingredient change — a rebuilt binary, "
         "an edited Table-1 number — is an automatic miss.\n"
         "--procs N partitions uncached cells across N worker processes "
         "(re-invocations of this binary) that fill the cache; the parent\n"
         "folds results in canonical order, so artefacts are byte-identical "
         "for every --procs/--jobs/--sim-shards combination. Requires\n"
         "--cache.\n"
         "--sim-backend picks the cooperative-process implementation "
         "(user-space fibers by default; 'thread' is the portable\n"
         "one-OS-thread-per-rank fallback). TIBSIM_SIM_BACKEND sets the "
         "same default from the environment.\n"
         "--sim-shards partitions every simulated world's switch tree into "
         "N per-subtree event engines under conservative (lookahead)\n"
         "synchronisation. Artefacts are byte-identical for any N; shards "
         "run windows concurrently on multi-core hosts. TIBSIM_SIM_SHARDS\n"
         "sets the same default.\n"
         "--trace-mode bounds traced worlds' span memory: 'full' keeps "
         "every span, 'sampled' a deterministic per-rank reservoir,\n"
         "'aggregate' streaming per-rank histograms only (O(ranks), the "
         "choice at scale). TIBSIM_TRACE_MODE sets the same default.\n"
         "--trace-export DIR writes the traced jobs' timelines as tool-"
         "ready artefacts (Chrome trace_event JSON for chrome://tracing/\n"
         "Perfetto, Paraver .prv, per-rank breakdown CSV). Timeline "
         "formats need retained spans (full/sampled mode); aggregate mode\n"
         "still exports the exact per-rank breakdown CSV.\n"
         "--stall-report arms the deterministic stall watchdog: a world "
         "whose event queue drains with ranks still blocked fails with a\n"
         "per-rank wait-state report (rank, pending op, peer, blocked "
         "since) instead of the bare deadlock error. TIBSIM_STALL_REPORT=1\n"
         "sets the same default.\n"
         "--verify-collectives arms the runtime collective-matching "
         "verifier: every collective entry stamps its traffic with a\n"
         "(communicator, kind, op, sequence, count) tuple and any rank "
         "matching a disagreeing stamp fails with a deterministic report\n"
         "naming both ranks, both tuples and the call sites — the dynamic "
         "cross-check for tibsim_lint's collective-match rule.\n"
         "TIBSIM_VERIFY_COLLECTIVES=1 sets the same default.\n";
}

}  // namespace

int socbenchMain(int argc, const char* const* argv) {
  // argv[0] is the program name, as main() receives it; skip it. Split
  // "--flag=value" into "--flag value" so both spellings parse the same.
  std::vector<std::string> args;
  for (int i = std::min(argc, 1); i < argc; ++i) {
    const std::string arg = argv[i];
    const std::size_t eq = arg.find('=');
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-' &&
        eq != std::string::npos) {
      args.push_back(arg.substr(0, eq));
      args.push_back(arg.substr(eq + 1));
    } else {
      args.push_back(arg);
    }
  }
  if (args.empty() || args[0] == "--help" || args[0] == "-h") {
    printUsage(std::cout);
    return args.empty() ? 2 : 0;
  }

  const std::string command = args[0];
  CampaignOptions options;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto flagValue = [&](const char* flag) -> const std::string* {
      if (arg != flag) return nullptr;
      if (++i >= args.size()) {
        std::cerr << "socbench: " << flag << " needs a value\n";
        return nullptr;
      }
      return &args[i];
    };
    if (arg == "--compat") {
      options.compat = true;
      options.summary = false;
    } else if (arg == "--no-summary") {
      options.summary = false;
    } else if (arg == "--json") {
      const std::string* v = flagValue("--json");
      if (v == nullptr) return 2;
      options.jsonDir = *v;
    } else if (arg == "--csv") {
      const std::string* v = flagValue("--csv");
      if (v == nullptr) return 2;
      options.csvDir = *v;
    } else if (arg == "--jobs") {
      const std::string* v = flagValue("--jobs");
      if (v == nullptr) return 2;
      if (!parseNumber(*v, options.jobs)) {
        std::cerr << "socbench: --jobs expects an integer, got \"" << *v
                  << "\"\n";
        return 2;
      }
    } else if (arg == "--seed") {
      const std::string* v = flagValue("--seed");
      if (v == nullptr) return 2;
      if (!parseNumber(*v, options.seed)) {
        std::cerr << "socbench: --seed expects an unsigned integer, got \""
                  << *v << "\"\n";
        return 2;
      }
    } else if (arg == "--sim-backend") {
      const std::string* v = flagValue("--sim-backend");
      if (v == nullptr) return 2;
      options.simBackend = *v;
    } else if (arg == "--sim-shards") {
      const std::string* v = flagValue("--sim-shards");
      if (v == nullptr) return 2;
      if (!parseNumber(*v, options.simShards)) {
        std::cerr << "socbench: --sim-shards expects an integer, got \""
                  << *v << "\"\n";
        return 2;
      }
    } else if (arg == "--cache") {
      const std::string* v = flagValue("--cache");
      if (v == nullptr) return 2;
      options.cacheDir = *v;
    } else if (arg == "--procs") {
      const std::string* v = flagValue("--procs");
      if (v == nullptr) return 2;
      if (!parseNumber(*v, options.procs) || options.procs < 1) {
        std::cerr << "socbench: --procs expects a positive integer, got \""
                  << *v << "\"\n";
        return 2;
      }
    } else if (arg == "--worker-cells") {
      // Internal: set by the parent of a --procs campaign; see
      // CampaignOptions::workerCells.
      const std::string* v = flagValue("--worker-cells");
      if (v == nullptr) return 2;
      options.workerCells = *v;
    } else if (arg == "--trace-mode") {
      const std::string* v = flagValue("--trace-mode");
      if (v == nullptr) return 2;
      options.traceMode = *v;
    } else if (arg == "--trace-export") {
      const std::string* v = flagValue("--trace-export");
      if (v == nullptr) return 2;
      options.traceExportDir = *v;
    } else if (arg == "--stall-report") {
      options.stallReport = true;
    } else if (arg == "--verify-collectives") {
      options.verifyCollectives = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "socbench: unknown flag " << arg << "\n";
      printUsage(std::cerr);
      return 2;
    } else {
      options.patterns.push_back(arg);
    }
  }

  if (command == "list") return listCommand(options.patterns, std::cout);
  if (command != "run") {
    std::cerr << "socbench: unknown command \"" << command << "\"\n";
    printUsage(std::cerr);
    return 2;
  }
  if (options.procs > 1 && options.cacheDir.empty()) {
    std::cerr << "socbench: --procs " << options.procs
              << " requires --cache DIR (workers exchange results through "
                 "the cache)\n";
    return 2;
  }

  try {
    runCampaign(options, std::cout);
  } catch (const std::exception& error) {
    std::cerr << "socbench: " << error.what() << "\n";
    return 1;
  }
  return 0;
}

int runCompatBinary(const std::string& pattern, int argc,
                    const char* const* argv) {
  std::vector<const char*> args = {"socbench", "run", pattern.c_str(),
                                   "--compat"};
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  return socbenchMain(static_cast<int>(args.size()), args.data());
}

}  // namespace tibsim::core
