// Built-in experiments over the historical-trend datasets: Figure 1
// (TOP500 architecture transitions) and Figure 2 (peak FP64 trends).
// Ported from the former standalone bench mains into registry entries.

#include <memory>

#include "builtin_experiments.hpp"
#include "tibsim/core/experiment.hpp"
#include "tibsim/trend/trend.hpp"

namespace tibsim::core {

namespace {

ResultSet runFig01(ExperimentContext&) {
  const auto& data = trend::top500ArchitectureShare();

  Series x86{"x86", {}, {}};
  Series risc{"RISC", {}, {}};
  Series vec{"Vector/SIMD", {}, {}};
  TextTable table({"year", "x86", "RISC", "Vector/SIMD"});
  for (const auto& e : data) {
    x86.x.push_back(e.year);
    x86.y.push_back(e.x86);
    risc.x.push_back(e.year);
    risc.y.push_back(e.risc);
    vec.x.push_back(e.year);
    vec.y.push_back(e.vectorSimd);
    table.addRow({fmt(e.year, 1), std::to_string(e.x86),
                  std::to_string(e.risc), std::to_string(e.vectorSimd)});
  }

  ResultSet results;
  results.addTable("systems per architecture class", std::move(table));
  ChartOptions opts;
  opts.title = "Number of systems in TOP500";
  opts.xLabel = "year";
  opts.yLabel = "systems";
  results.addChart("TOP500 share", {x86, risc, vec}, opts);
  results.addMetric("RISC overtakes Vector/SIMD",
                    trend::yearRiscOvertakesVector(), "year");
  results.addMetric("x86 overtakes RISC", trend::yearX86OvertakesRisc(),
                    "year");
  results.addMetric("x86 systems, June 2013 list", data.back().x86,
                    "systems");
  results.addNote(
      "paper narrative: RISC overtakes vector mid-1990s, x86 overtakes "
      "RISC mid-2000s, the June 2013 list is \"still dominated by x86\"");
  return results;
}

Series classSeries(trend::ProcessorClass cls, const std::string& name) {
  Series s{name, {}, {}};
  for (const auto& p : trend::processorPoints(cls)) {
    s.x.push_back(p.year);
    s.y.push_back(p.peakMflops);
  }
  return s;
}

void addClassTable(ResultSet& results, trend::ProcessorClass cls,
                   const std::string& name) {
  TextTable table({"processor", "year", "peak MFLOPS"});
  for (const auto& p : trend::processorPoints(cls))
    table.addRow({p.name, fmt(p.year, 0), fmt(p.peakMflops, 0)});
  results.addTable(name, std::move(table));
  const ExponentialFit fit = trend::fitClass(cls);
  results.addMetric(name + ": growth per year", fit.growthPerUnit(), "x");
  results.addMetric(name + ": doubling time", fit.doublingTime(), "years");
  results.addMetric(name + ": fit r^2", fit.r2, "");
}

ResultSet runFig02(ExperimentContext&) {
  using trend::ProcessorClass;
  ResultSet results;

  addClassTable(results, ProcessorClass::Vector, "HPC vector processors");
  addClassTable(results, ProcessorClass::Commodity,
                "commodity microprocessors");
  ChartOptions optsA;
  optsA.title = "Figure 2(a): MFLOPS vs year (log y)";
  optsA.logY = true;
  optsA.xLabel = "year";
  optsA.yLabel = "MFLOPS";
  results.addChart("Figure 2(a): vector vs commodity",
                   {classSeries(ProcessorClass::Vector, "vector"),
                    classSeries(ProcessorClass::Commodity, "commodity")},
                   optsA);

  addClassTable(results, ProcessorClass::Server, "server processors");
  addClassTable(results, ProcessorClass::Mobile, "mobile SoCs");
  ChartOptions optsB;
  optsB.title = "Figure 2(b): MFLOPS vs year (log y)";
  optsB.logY = true;
  optsB.xLabel = "year";
  optsB.yLabel = "MFLOPS";
  results.addChart("Figure 2(b): server vs mobile",
                   {classSeries(ProcessorClass::Server, "server"),
                    classSeries(ProcessorClass::Mobile, "mobile")},
                   optsB);

  results.addMetric(
      "vector / commodity gap, 1995",
      trend::gapAt(ProcessorClass::Vector, ProcessorClass::Commodity,
                   1995.0),
      "x");
  results.addMetric(
      "server / mobile gap, 2013",
      trend::gapAt(ProcessorClass::Server, ProcessorClass::Mobile, 2013.0),
      "x");
  results.addMetric("projected crossover (mobile matches server)",
                    trend::projectedCrossover(ProcessorClass::Mobile,
                                              ProcessorClass::Server),
                    "year");
  results.addNote(
      "paper: commodity was \"around ten times slower\" than vector in "
      "1995; mobile is \"still ten times slower, but the gap is quickly "
      "being closed\" in 2013");
  return results;
}

}  // namespace

void registerTrendExperiments(ExperimentRegistry& registry) {
  registry.add(std::make_unique<LambdaExperiment>(
      "fig01", "Figure 1", "TOP500 architecture transitions", runFig01));
  registry.add(std::make_unique<LambdaExperiment>(
      "fig02", "Figure 2",
      "peak FP64 performance: vector vs commodity (a), server vs mobile (b)",
      runFig02));
}

}  // namespace tibsim::core
