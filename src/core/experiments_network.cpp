// Built-in experiments for the Section-4.1 interconnect evaluation:
// Figure 7 ping-pong panels, the IMB-style suite, Table 4 bytes/FLOP,
// the latency-penalty estimate, and the interconnect / EEE ablations.
// Ported from the former standalone bench mains into registry entries.

#include <memory>
#include <utility>

#include "builtin_experiments.hpp"
#include "tibsim/apps/hpl.hpp"
#include "tibsim/apps/hydro.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiment.hpp"
#include "tibsim/core/experiments.hpp"
#include "tibsim/mpi/imb.hpp"
#include "tibsim/net/eee.hpp"
#include "tibsim/net/protocol.hpp"

namespace tibsim::core {

namespace {

using namespace tibsim::units;

struct Panel {
  std::string name;
  arch::Platform platform;
  double frequencyHz;
};

std::vector<Panel> figure7Panels() {
  return {
      {"(a/d) Tegra 2 @ 1.0 GHz", arch::PlatformRegistry::tegra2(),
       ghz(1.0)},
      {"(b/e) Exynos 5 @ 1.0 GHz", arch::PlatformRegistry::exynos5250(),
       ghz(1.0)},
      {"(c/f) Exynos 5 @ 1.4 GHz", arch::PlatformRegistry::exynos5250(),
       ghz(1.4)},
  };
}

void latencyPanel(ResultSet& results, const Panel& panel) {
  const auto sizes = latencyMessageSizes();
  TextTable table({"bytes", "TCP/IP us", "Open-MX us"});
  Series tcp{"TCP/IP", {}, {}}, omx{"Open-MX", {}, {}};
  const auto tcpSweep = pingPongSweep(panel.platform, net::Protocol::TcpIp,
                                      panel.frequencyHz, sizes);
  const auto omxSweep = pingPongSweep(panel.platform, net::Protocol::OpenMx,
                                      panel.frequencyHz, sizes);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    table.addRow({std::to_string(sizes[i]),
                  fmt(toUs(tcpSweep.latencySeconds[i]), 1),
                  fmt(toUs(omxSweep.latencySeconds[i]), 1)});
    tcp.x.push_back(static_cast<double>(sizes[i]));
    tcp.y.push_back(toUs(tcpSweep.latencySeconds[i]));
    omx.x.push_back(static_cast<double>(sizes[i]));
    omx.y.push_back(toUs(omxSweep.latencySeconds[i]));
  }
  results.addTable(panel.name + " latency", std::move(table));
  ChartOptions opts;
  opts.title = panel.name + ": latency (us) vs message size (B)";
  opts.height = 12;
  results.addChart(panel.name + " latency", {tcp, omx}, opts);
}

void bandwidthPanel(ResultSet& results, const Panel& panel) {
  const auto sizes = bandwidthMessageSizes();
  TextTable table({"bytes", "TCP/IP MB/s", "Open-MX MB/s"});
  Series tcp{"TCP/IP", {}, {}}, omx{"Open-MX", {}, {}};
  const auto tcpSweep = pingPongSweep(panel.platform, net::Protocol::TcpIp,
                                      panel.frequencyHz, sizes);
  const auto omxSweep = pingPongSweep(panel.platform, net::Protocol::OpenMx,
                                      panel.frequencyHz, sizes);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    table.addRow({std::to_string(sizes[i]),
                  fmt(tcpSweep.bandwidthBytesPerS[i] / 1e6, 1),
                  fmt(omxSweep.bandwidthBytesPerS[i] / 1e6, 1)});
    tcp.x.push_back(static_cast<double>(sizes[i]));
    tcp.y.push_back(tcpSweep.bandwidthBytesPerS[i] / 1e6);
    omx.x.push_back(static_cast<double>(sizes[i]));
    omx.y.push_back(omxSweep.bandwidthBytesPerS[i] / 1e6);
  }
  results.addTable(panel.name + " bandwidth", std::move(table));
  ChartOptions opts;
  opts.title = panel.name + ": bandwidth (MB/s) vs message size (log x)";
  opts.logX = true;
  opts.height = 12;
  results.addChart(panel.name + " bandwidth", {tcp, omx}, opts);
}

ResultSet runFig07(ExperimentContext& ctx) {
  const auto panels = figure7Panels();

  // Six independent panels (3 latency + 3 bandwidth) built into per-cell
  // ResultSets, then merged in panel order.
  std::vector<ResultSet> parts(2 * panels.size());
  ctx.parallelFor(parts.size(), [&](std::size_t i) {
    if (i < panels.size())
      latencyPanel(parts[i], panels[i]);
    else
      bandwidthPanel(parts[i], panels[i - panels.size()]);
  });

  ResultSet results;
  for (ResultSet& part : parts) results.merge(std::move(part));

  TextTable check({"config", "analytic us", "simulated us"});
  for (const auto& panel : panels) {
    for (net::Protocol proto :
         {net::Protocol::TcpIp, net::Protocol::OpenMx}) {
      const double analytic =
          net::ProtocolModel(proto, panel.platform, panel.frequencyHz)
              .pingPongLatency(64);
      const double simulated = simulatedPingPongLatency(
          panel.platform, proto, panel.frequencyHz, 64);
      check.addRow({panel.name + " " + net::toString(proto),
                    fmt(toUs(analytic), 1), fmt(toUs(simulated), 1)});
    }
  }
  results.addTable("end-to-end cross-check (simMPI over the fabric model)",
                   std::move(check));

  results.addNote(
      "paper anchors: Tegra2 ~100 us TCP / ~65 us Open-MX, 65 / 117 MB/s; "
      "Exynos5 ~125 / ~93 us at 1 GHz, ~10 % lower at 1.4 GHz; Open-MX "
      "bandwidth 69 MB/s (1.0 GHz) and 75 MB/s (1.4 GHz), USB-limited");
  return results;
}

ResultSet runImbSuite(ExperimentContext& ctx) {
  mpi::WorldConfig cfg = mpi::WorldConfig::tibidaboNode();
  cfg.ranksPerNode = 1;  // one rank per node: pure network measurement

  const std::vector<std::size_t> sizes = {0,     64,     1024,
                                          16384, 262144, 1 << 20};

  ResultSet results;
  // Every benchmark world reports its WorldStats through this hook, so the
  // campaign accounts for the whole suite's engine work and message
  // traffic, not just the showcase Exchange run below.
  const auto record = [&ctx](const mpi::WorldStats& s) {
    ctx.recordWorldStats(s);
  };
  TextTable p2p({"bytes", "PingPong us", "PingPong MB/s", "PingPing us",
                 "PingPing MB/s"});
  const auto pong = mpi::imb::pingPong(cfg, sizes, 8, record);
  const auto ping = mpi::imb::pingPing(cfg, sizes, 8, record);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    p2p.addRow({std::to_string(sizes[i]), fmt(toUs(pong[i].seconds), 1),
                fmt(pong[i].bandwidthBytesPerS / 1e6, 1),
                fmt(toUs(ping[i].seconds), 1),
                fmt(ping[i].bandwidthBytesPerS / 1e6, 1)});
  }
  results.addTable("two nodes", std::move(p2p));

  const std::vector<std::size_t> collSizes = {8, 1024, 65536};
  TextTable coll({"bytes", "Exchange us", "Allreduce us", "Bcast us"});
  const auto ex = mpi::imb::exchange(cfg, 32, collSizes, 4, record);
  const auto ar = mpi::imb::allreduce(cfg, 32, collSizes, 4, record);
  const auto bc = mpi::imb::bcast(cfg, 32, collSizes, 4, record);
  for (std::size_t i = 0; i < collSizes.size(); ++i) {
    coll.addRow({std::to_string(collSizes[i]), fmt(toUs(ex[i].seconds), 1),
                 fmt(toUs(ar[i].seconds), 1), fmt(toUs(bc[i].seconds), 1)});
  }
  results.addTable("32-node partition", std::move(coll));

  TextTable barrier({"ranks", "Barrier us"});
  for (int ranks : {2, 8, 32, 128}) {
    barrier.addRow(
        {std::to_string(ranks),
         fmt(toUs(mpi::imb::barrier(cfg, ranks, 16, record).seconds), 1)});
  }
  results.addTable("barrier", std::move(barrier));

  // Trace-based breakdown of one Exchange run (the Paraver view).
  mpi::MpiWorld world(cfg, 8);
  world.enableTracing();
  const auto stats = world.run([](mpi::MpiContext& mpiCtx) {
    for (int i = 0; i < 4; ++i) {
      mpiCtx.computeSeconds(1e-3);
      mpiCtx.neighborExchange(65536, 4);
    }
  });
  ctx.recordWorldStats(stats);
  TextTable trace({"rank", "compute ms", "send ms", "recv ms", "wait ms"});
  for (const auto& s :
       world.tracer().summarize(8, stats.wallClockSeconds)) {
    trace.addRow({std::to_string(s.rank), fmt(toMs(s.computeSeconds), 2),
                  fmt(toMs(s.sendSeconds), 2), fmt(toMs(s.recvSeconds), 2),
                  fmt(toMs(s.waitSeconds), 2)});
  }
  results.addTable("post-mortem trace: 8-rank Exchange, 64 KiB halos",
                   std::move(trace));
  results.addMetric("non-compute fraction",
                    100 * world.tracer().nonComputeFraction(
                              8, stats.wallClockSeconds),
                    "%");
  results.addMetric("trace spans recorded",
                    static_cast<double>(world.tracer().spansRecorded()),
                    "spans");
  results.addNote("exportCsv() feeds a trace viewer");
  return results;
}

ResultSet runTab04(ExperimentContext&) {
  ResultSet results;
  TextTable table({"platform", "1GbE", "10GbE", "40Gb InfiniBand"});
  for (const auto& row : bytesPerFlopTable()) {
    table.addRow({row.platform, fmt(row.gbe1, 2), fmt(row.gbe10, 2),
                  fmt(row.ib40, 2)});
  }
  results.addTable("network bytes per FLOP", std::move(table));
  TextTable paper({"platform", "1GbE", "10GbE", "40Gb InfiniBand"});
  paper.addRow({"Tegra 2", "0.06", "0.63", "2.50"});
  paper.addRow({"Tegra 3", "0.02", "0.24", "0.96"});
  paper.addRow({"Exynos 5250", "0.02", "0.18", "0.74"});
  paper.addRow({"Sandy Bridge", "0.00", "0.02", "0.07"});
  results.addTable("paper values", std::move(paper));
  results.addNote(
      "a plain 1 GbE NIC gives a Tegra 3 / Exynos 5250 a bytes-per-FLOP "
      "ratio close to a dual-socket Sandy Bridge with 40 Gb InfiniBand — "
      "the balance argument of Section 4.1");
  return results;
}

ResultSet runLatencyPenalty(ExperimentContext&) {
  // Relative single-core performance vs the Sandy Bridge reference, from
  // the Figure 3 results. The paper quotes "~50 % and 40 %" for the Arndale
  // at 100 us and 65 us; its first-order scaling uses a performance ratio
  // of roughly 0.55 rather than the stricter 1/3 suite geomean.
  const struct {
    const char* core;
    double relativePerf;
  } cores[] = {
      {"Sandy Bridge-class", 1.0},
      {"Arndale (Cortex-A15), paper scaling", 0.55},
      {"Arndale (Cortex-A15), suite geomean", 1.0 / 3.0},
      {"Tegra 2 (Cortex-A9)", 1.0 / 7.0},
  };

  ResultSet results;
  TextTable table({"core", "latency us", "est. execution-time penalty"});
  for (const auto& core : cores) {
    for (double latency : {65e-6, 100e-6}) {
      table.addRow({core.core, fmt(toUs(latency), 0),
                    "+" + fmt(100.0 * net::latencyExecutionTimePenalty(
                                          latency, core.relativePerf),
                              0) +
                        "%"});
    }
  }
  results.addTable("latency penalty", std::move(table));

  TextTable measured({"platform / protocol", "small-message latency us"});
  const auto tegra2 = arch::PlatformRegistry::tegra2();
  const double tcpUs = toUs(
      net::ProtocolModel(net::Protocol::TcpIp, tegra2, ghz(1.0))
          .pingPongLatency(1));
  const double omxUs = toUs(
      net::ProtocolModel(net::Protocol::OpenMx, tegra2, ghz(1.0))
          .pingPongLatency(1));
  measured.addRow({"Tegra2 TCP/IP", fmt(tcpUs, 0)});
  measured.addRow({"Tegra2 Open-MX", fmt(omxUs, 0)});
  results.addTable("measured protocol latencies", std::move(measured));
  results.addMetric("Tegra2 TCP/IP small-message latency", tcpUs, "us");
  results.addMetric("Tegra2 Open-MX small-message latency", omxUs, "us");
  results.addNote(
      "paper: 100 us => ~+90 % (Sandy Bridge); first-order estimate "
      "~+50 % / ~+40 % on the Arndale for 100 us / 65 us");
  return results;
}

ResultSet runAblationInterconnect(ExperimentContext& ctx) {
  ResultSet results;

  // --- 1. protocol stack, application level -----------------------------
  {
    apps::HydroBenchmark::Params hydro;
    hydro.nx = 2048;
    hydro.ny = 2048;
    hydro.steps = 10;

    const std::vector<cluster::ClusterSpec> specs = {
        cluster::ClusterSpec::tibidabo(),
        cluster::ClusterSpec::tibidaboOpenMx()};
    struct Cell {
      double hydroSeconds = 0.0;
      cluster::JobResult hpl;
    };
    std::vector<Cell> cells(specs.size());
    ctx.parallelFor(specs.size(), [&](std::size_t i) {
      cluster::ClusterSimulation sim(specs[i]);
      cells[i].hydroSeconds =
          sim.runJob(32, apps::HydroBenchmark::rankBody(hydro))
              .wallClockSeconds;
      cells[i].hpl = apps::HplBenchmark::run(sim, 32, 0.3);
    });

    TextTable table({"protocol", "HYDRO wallclock s", "HPL GFLOPS",
                     "HPL efficiency"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
      table.addRow({net::toString(specs[i].protocol),
                    fmt(cells[i].hydroSeconds, 2),
                    fmt(cells[i].hpl.gflops, 1),
                    fmt(cells[i].hpl.efficiency() * 100, 0) + "%"});
    }
    results.addTable("TCP/IP vs Open-MX on Tibidabo (32 nodes)",
                     std::move(table));
  }

  // --- 2. NIC attachment, message level ---------------------------------
  {
    auto exynosPcie = arch::PlatformRegistry::exynos5250();
    exynosPcie.nicAttachment = arch::NicAttachment::Pcie;
    auto exynosOnChip = arch::PlatformRegistry::exynos5250();
    exynosOnChip.nicAttachment = arch::NicAttachment::OnChip;

    TextTable table({"attachment", "latency us", "bandwidth MB/s"});
    for (const auto& [label, platform] :
         {std::pair<std::string, arch::Platform>{
              "USB 3.0 (Arndale as built)",
              arch::PlatformRegistry::exynos5250()},
          {"PCIe (hypothetical)", exynosPcie},
          {"on-chip + offload (KeyStone-II-style)", exynosOnChip}}) {
      const net::ProtocolModel model(net::Protocol::OpenMx, platform,
                                     ghz(1.7));
      table.addRow({label, fmt(toUs(model.pingPongLatency(1)), 1),
                    fmt(model.effectiveBandwidth(4 << 20) / 1e6, 1)});
    }
    results.addTable("NIC attachment (Open-MX small-message latency)",
                     std::move(table));
  }

  // --- 3. offload NIC at cluster level ----------------------------------
  {
    apps::HydroBenchmark::Params hydro;
    hydro.nx = 2048;
    hydro.ny = 2048;
    hydro.steps = 10;

    cluster::ClusterSpec offload = cluster::ClusterSpec::tibidaboOpenMx();
    offload.name = "Tibidabo (offload NIC)";
    offload.nodePlatform.nicAttachment = arch::NicAttachment::OnChip;

    const std::vector<cluster::ClusterSpec> specs = {
        cluster::ClusterSpec::tibidabo(),
        cluster::ClusterSpec::tibidaboOpenMx(), offload};
    std::vector<double> seconds(specs.size(), 0.0);
    ctx.parallelFor(specs.size(), [&](std::size_t i) {
      cluster::ClusterSimulation sim(specs[i]);
      const cluster::JobResult result =
          sim.runJob(64, apps::HydroBenchmark::rankBody(hydro));
      seconds[i] = result.wallClockSeconds;
      // Fold engine counters and link telemetry into the campaign run so
      // the ablation emits __links.csv like the other cluster experiments.
      ctx.recordWorldStats(result.stats);
    });

    TextTable table({"cluster", "HYDRO wallclock s", "speedup vs TCP"});
    for (std::size_t i = 0; i < specs.size(); ++i) {
      table.addRow({specs[i].name, fmt(seconds[i], 2),
                    fmt(seconds[0] / seconds[i], 2) + "x"});
    }
    results.addTable("offload NIC on the whole cluster (HYDRO, 64 nodes)",
                     std::move(table));
    results.addMetric("offload NIC speedup vs TCP",
                      seconds[0] / seconds.back(), "x");
  }

  results.addNote(
      "shape: Open-MX helps most where messages are frequent and small; "
      "the USB attachment costs more than the protocol choice on Arndale "
      "boards; hardware offload recovers most of the remaining stack cost");
  return results;
}

ResultSet runAblationEee(ExperimentContext&) {
  const net::EnergyEfficientEthernet eee;
  const auto tegra2 = arch::PlatformRegistry::tegra2();
  const net::ProtocolModel tcp(net::Protocol::TcpIp, tegra2, ghz(1.0));
  const double baseLatency = tcp.pingPongLatency(64);
  const double frameWire = 1500.0 / tegra2.nicLinkRateBytesPerS;

  ResultSet results;
  TextTable table({"message interval", "PHY energy saved",
                   "one-way latency us", "est. app slowdown (Arndale)"});
  for (double interval : {200e-6, 1e-3, 10e-3, 100e-3, 1.0}) {
    const double latency = eee.effectiveLatencySeconds(baseLatency, interval);
    table.addRow(
        {fmtSi(interval, "s", 1),
         fmt(100 * eee.energySavingFraction(frameWire, interval), 1) + "%",
         fmt(toUs(latency), 1),
         "+" + fmt(100 * net::latencyExecutionTimePenalty(latency, 0.55),
                   0) +
             "%"});
  }
  results.addTable("EEE trade-off", std::move(table));

  // Whole-cluster view: 192 nodes x 2 PHY sides per link.
  const double phys = 192 * 2;
  results.addMetric("Tibidabo PHY power, always-on",
                    phys * eee.config().activePhyWatts, "W");
  results.addMetric("recoverable on an idle machine",
                    phys * eee.config().activePhyWatts *
                        (1.0 - eee.config().lpiPowerFraction),
                    "W");
  results.addMetric("network share of ~node power baseline", 192 * 8.5, "W");
  results.addNote(
      "for HPC traffic (sub-millisecond message intervals) EEE saves "
      "almost nothing and charges a wake penalty on exactly the "
      "latency-critical messages; for idle/bursty clusters the PHY saving "
      "is real. This is why the paper treats interconnect latency, not "
      "link power, as the binding constraint for mobile-SoC clusters");
  return results;
}

}  // namespace

void registerNetworkExperiments(ExperimentRegistry& registry) {
  registry.add(std::make_unique<LambdaExperiment>(
      "fig07", "Figure 7", "interconnect latency and bandwidth", runFig07));
  registry.add(std::make_unique<LambdaExperiment>(
      "imb_suite", "Figure 7",
      "IMB-style characterisation of the Tibidabo interconnect",
      runImbSuite));
  registry.add(std::make_unique<LambdaExperiment>(
      "tab04", "Table 4", "network bytes per FLOP", runTab04));
  registry.add(std::make_unique<LambdaExperiment>(
      "latency_penalty", "Section 4.1",
      "execution-time inflation from interconnect latency",
      runLatencyPenalty));
  registry.add(std::make_unique<LambdaExperiment>(
      "ablation_interconnect", "Section 4.1",
      "ablation: interconnect stack and NIC attachment",
      runAblationInterconnect));
  registry.add(std::make_unique<LambdaExperiment>(
      "ablation_eee", "Section 4.1",
      "ablation: Energy Efficient Ethernet vs HPC traffic", runAblationEee));
}

}  // namespace tibsim::core
