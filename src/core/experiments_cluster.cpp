// Built-in experiments for the Section-4/5 cluster evaluation: application
// scalability on Tibidabo (Figure 6), HPL / Green500 headline numbers,
// the energy-to-solution comparison, the software-stack readiness table
// (Figure 8) and the SLURM batch campaign. Ported from the former
// standalone bench/example mains into registry entries.

#include <algorithm>
#include <memory>
#include <string_view>
#include <utility>

#include "builtin_experiments.hpp"
#include "tibsim/apps/hpl.hpp"
#include "tibsim/apps/hydro.hpp"
#include "tibsim/apps/specfem.hpp"
#include "tibsim/arch/registry.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/cluster/slurm.hpp"
#include "tibsim/cluster/software_stack.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiment.hpp"
#include "tibsim/core/experiments.hpp"
#include "tibsim/obs/exporters.hpp"
#include "tibsim/obs/trace_sink.hpp"
#include "tibsim/reliability/dram_errors.hpp"

namespace tibsim::core {

namespace {

using namespace tibsim::units;

ResultSet runFig06(ExperimentContext& ctx) {
  ResultSet results;

  TextTable table3({"application", "description", "scaling"});
  table3.addRow({"HPL", "High-Performance LINPACK", "weak"});
  table3.addRow({"PEPC", "Tree code for N-body problem", "strong"});
  table3.addRow({"HYDRO", "2D Eulerian code for hydrodynamics", "strong"});
  table3.addRow({"GROMACS", "Molecular dynamics", "strong"});
  table3.addRow(
      {"SPECFEM3D", "3D seismic wave propagation (spectral elements)",
       "strong"});
  results.addTable("Table 3: applications", std::move(table3));

  const cluster::ClusterSpec spec = cluster::ClusterSpec::tibidabo();
  const std::vector<int> nodeCounts = {4, 8, 16, 24, 32, 48, 64, 96};
  results.addNote("cluster: " + spec.name + " (" +
                  std::to_string(spec.nodes) + " x " +
                  spec.nodePlatform.shortName + ", " +
                  net::toString(spec.protocol) + ", " +
                  std::to_string(spec.ranksPerNode) + " ranks/node)");

  const auto curves = scalabilityExperiment(spec, nodeCounts, ctx);

  TextTable table({"application", "nodes", "wallclock s", "speedup",
                   "efficiency"});
  std::vector<Series> chartSeries;
  Series ideal{"ideal", {}, {}};
  for (int n : nodeCounts) {
    ideal.x.push_back(n);
    ideal.y.push_back(n);
  }
  chartSeries.push_back(ideal);

  for (const auto& curve : curves) {
    Series s{curve.application, {}, {}};
    for (const auto& pt : curve.points) {
      table.addRow({curve.application, std::to_string(pt.nodes),
                    fmt(pt.wallClockSeconds, 2), fmt(pt.speedup, 1),
                    fmt(pt.speedup / pt.nodes, 2)});
      s.x.push_back(pt.nodes);
      s.y.push_back(pt.speedup);
    }
    if (!curve.points.empty())
      results.addMetric(curve.application + " speedup at " +
                            std::to_string(curve.points.back().nodes) +
                            " nodes",
                        curve.points.back().speedup, "x");
    chartSeries.push_back(std::move(s));
  }
  results.addTable("scalability", std::move(table));

  ChartOptions opts;
  opts.title = "Figure 6: speed-up vs number of nodes (log-log)";
  opts.logX = true;
  opts.logY = true;
  opts.xLabel = "nodes";
  opts.yLabel = "speed-up";
  results.addChart("Figure 6: speed-up", std::move(chartSeries), opts);

  results.addNote(
      "paper shape: SPECFEM3D near-ideal; HYDRO departs after ~16 nodes; "
      "GROMACS limited by its 2-node-sized input; PEPC (needs >= 24 nodes) "
      "scales poorly; HPL weak-scales at ~51 % efficiency");
  return results;
}

ResultSet runHplGreen500(ExperimentContext& ctx) {
  const std::vector<int> nodeCounts = {4, 8, 16, 32, 64, 96};
  const cluster::ClusterSpec spec = cluster::ClusterSpec::tibidabo();

  struct Cell {
    std::size_t n = 0;
    cluster::JobResult result;
  };
  std::vector<Cell> cells(nodeCounts.size());
  ctx.parallelFor(nodeCounts.size(), [&](std::size_t i) {
    cluster::ClusterSimulation sim(spec);
    cells[i].n =
        apps::HplBenchmark::problemSizeForNodes(sim.spec(), nodeCounts[i]);
    cells[i].result = apps::HplBenchmark::run(sim, nodeCounts[i]);
    ctx.recordWorldStats(cells[i].result.stats);
  });

  ResultSet results;
  TextTable table({"nodes", "N", "wallclock s", "GFLOPS", "efficiency",
                   "avg power W", "MFLOPS/W"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& r = cells[i].result;
    table.addRow({std::to_string(nodeCounts[i]), std::to_string(cells[i].n),
                  fmt(r.wallClockSeconds, 0), fmt(r.gflops, 1),
                  fmt(r.efficiency() * 100, 0) + "%",
                  fmt(r.averagePowerW, 0), fmt(r.mflopsPerWatt, 0)});
  }
  results.addTable("HPL weak scaling", std::move(table));

  // Sim-time critical-path attribution: which segment of the bounding
  // dependency chain grows as the panel broadcasts deepen with the machine.
  TextTable pathTable({"nodes", "compute s", "send s", "recv s", "link s",
                       "wait s", "hops", "end rank"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const obs::CriticalPath& path = cells[i].result.stats.criticalPath;
    pathTable.addRow({std::to_string(nodeCounts[i]),
                      fmt(path.computeSeconds, 3), fmt(path.sendSeconds, 3),
                      fmt(path.recvSeconds, 3), fmt(path.linkSeconds, 3),
                      fmt(path.waitSeconds, 3), std::to_string(path.edges),
                      std::to_string(path.endRank)});
  }
  results.addTable("critical path (sim time)", std::move(pathTable));

  const auto& top = cells.back().result;
  results.addMetric("GFLOPS at 96 nodes", top.gflops, "GFLOPS");
  results.addMetric("efficiency at 96 nodes", top.efficiency() * 100, "%");
  results.addMetric("Green500 metric at 96 nodes", top.mflopsPerWatt,
                    "MFLOPS/W");
  results.addNote(
      "paper anchors at 96 nodes: ~97 GFLOPS, 51 % efficiency, "
      "~120 MFLOPS/W");
  TextTable green({"June 2013 Green500 context", "MFLOPS/W", "vs Tibidabo"});
  green.addRow({"BlueGene/Q (best homogeneous)", "~2,300", "19x"});
  green.addRow({"Eurora (Xeon + K20 GPUs, #1)", "~3,200", "27x"});
  green.addRow({"AMD Opteron / Xeon E5660 clusters", "comparable", "~1x"});
  results.addTable("Green500 context", std::move(green));
  return results;
}

/// A dual-socket Nehalem-class compute node: the laptop's core model
/// downgraded to the Nehalem generation (128-bit SSE, 2.26 GHz) with
/// server-node power: redundant PSUs, fans, BMC, registered DIMMs.
cluster::ClusterSpec nehalemCluster(int nodes) {
  cluster::ClusterSpec spec;
  spec.name = "Nehalem-class x86 cluster";
  spec.nodePlatform = arch::PlatformRegistry::corei7_2760qm();
  spec.nodePlatform.name = "2-socket Nehalem-class node";
  spec.nodePlatform.shortName = "x86node";
  spec.nodePlatform.soc.core.fp64FlopsPerCycle = 4.0;
  spec.nodePlatform.soc.cores = 8;
  spec.nodePlatform.soc.dvfs = {{ghz(1.6), 0.9}, {ghz(2.26), 1.1}};
  spec.nodePlatform.dramBytes = static_cast<std::size_t>(gib(24.0));
  spec.nodePlatform.power =
      arch::BoardPowerParams{/*boardStaticW=*/240.0, /*socStaticW=*/30.0,
                             /*corePeakDynamicW=*/15.0,
                             /*memDynamicWPerGBs=*/0.4, /*nicActiveW=*/2.0};
  spec.nodePlatform.nicAttachment = arch::NicAttachment::OnChip;
  spec.nodes = nodes;
  spec.frequencyHz = spec.nodePlatform.maxFrequencyHz();
  spec.protocol = net::Protocol::TcpIp;
  spec.ranksPerNode = 8;
  spec.topology.linkRateBytesPerS = gbps(1.0);
  spec.topology.bisectionBytesPerS = gbps(8.0);
  return spec;
}

ResultSet runEnergyToSolution(ExperimentContext& ctx) {
  apps::SpecfemBenchmark::Params specfem;
  specfem.steps = 60;
  apps::HydroBenchmark::Params hydro;
  hydro.steps = 40;

  // Four independent (application, cluster) jobs.
  struct Job {
    const char* app;
    const char* clusterLabel;
    bool onTibidabo;
    int nodes;
    mpi::MpiWorld::RankBody body;
  };
  const std::vector<Job> jobs = {
      {"SPECFEM3D", "Tibidabo (96 x Tegra2)", true, 96,
       apps::SpecfemBenchmark::rankBody(specfem)},
      {"SPECFEM3D", "Nehalem-class x86", false, 24,
       apps::SpecfemBenchmark::rankBody(specfem)},
      {"HYDRO", "Tibidabo (96 x Tegra2)", true, 96,
       apps::HydroBenchmark::rankBody(hydro)},
      {"HYDRO", "Nehalem-class x86", false, 24,
       apps::HydroBenchmark::rankBody(hydro)},
  };
  std::vector<cluster::JobResult> runs(jobs.size());
  ctx.parallelFor(jobs.size(), [&](std::size_t i) {
    cluster::ClusterSimulation sim(jobs[i].onTibidabo
                                       ? cluster::ClusterSpec::tibidabo()
                                       : nehalemCluster(jobs[i].nodes));
    runs[i] = sim.runJob(jobs[i].nodes, jobs[i].body);
    ctx.recordWorldStats(runs[i].stats);
  });

  ResultSet results;
  TextTable table({"application", "cluster", "nodes", "time s",
                   "avg power W", "energy kJ"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    table.addRow({jobs[i].app, jobs[i].clusterLabel,
                  std::to_string(jobs[i].nodes),
                  fmt(runs[i].wallClockSeconds, 1),
                  fmt(runs[i].averagePowerW, 0),
                  fmt(runs[i].energyJ / 1e3, 1)});
  }
  results.addTable("energy to solution", std::move(table));

  TextTable summary(
      {"application", "time ratio (ARM/x86)", "energy ratio (x86/ARM)"});
  for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
    const auto& tib = runs[i];
    const auto& neh = runs[i + 1];
    summary.addRow({jobs[i].app,
                    fmt(tib.wallClockSeconds / neh.wallClockSeconds, 1) + "x",
                    fmt(neh.energyJ / tib.energyJ, 1) + "x lower on ARM"});
    results.addMetric(std::string(jobs[i].app) + " time ratio (ARM/x86)",
                      tib.wallClockSeconds / neh.wallClockSeconds, "x");
    results.addMetric(std::string(jobs[i].app) + " energy ratio (x86/ARM)",
                      neh.energyJ / tib.energyJ, "x");
  }
  results.addTable("ratios", std::move(summary));

  results.addNote(
      "paper (citing the JCP'13 study): ~4x longer time-to-solution on "
      "Tibidabo, up to 3x lower energy-to-solution — the trade the "
      "Conclusions section calls the opening for mobile SoCs");
  return results;
}

ResultSet runFig08(ExperimentContext&) {
  ResultSet results;
  for (auto layer : {cluster::StackLayer::Compiler,
                     cluster::StackLayer::RuntimeLibrary,
                     cluster::StackLayer::ScientificLibrary,
                     cluster::StackLayer::PerformanceTool,
                     cluster::StackLayer::Debugger,
                     cluster::StackLayer::ClusterManagement,
                     cluster::StackLayer::OperatingSystem}) {
    TextTable table({"component", "ARM status", "notes"});
    for (const auto& c : cluster::componentsAt(layer))
      table.addRow({c.name, toString(c.support), c.notes});
    results.addTable(toString(layer), std::move(table));
  }
  results.addMetric("out-of-the-box ARM support",
                    100 * cluster::fullSupportFraction(), "%");
  results.addNote(
      "the rest needed team porting (hardfp images, ATLAS patches) or was "
      "an experimental vendor preview (CUDA, Mali OpenCL)");
  return results;
}

ResultSet runCampaignExperiment(ExperimentContext& ctx) {
  const cluster::ClusterSpec spec = cluster::ClusterSpec::tibidabo();
  cluster::ClusterSimulation sim(spec);

  // Measure each job type once through the cluster simulation; the
  // scheduler then works with realistic durations.
  apps::HydroBenchmark::Params hydro;
  hydro.steps = 50;
  const cluster::JobResult hydroJob =
      sim.runJob(16, apps::HydroBenchmark::rankBody(hydro));
  const double hydroOn16 = hydroJob.wallClockSeconds;
  apps::SpecfemBenchmark::Params specfem;
  specfem.steps = 100;
  const cluster::JobResult specfemJob =
      sim.runJob(32, apps::SpecfemBenchmark::rankBody(specfem));
  const double specfemOn32 = specfemJob.wallClockSeconds;
  const cluster::JobResult hplJob = apps::HplBenchmark::run(sim, 64, 0.2);
  const double hplOn64 = hplJob.wallClockSeconds;
  ctx.recordWorldStats(hydroJob.stats);
  ctx.recordWorldStats(specfemJob.stats);
  ctx.recordWorldStats(hplJob.stats);

  // A morning's submissions: users over-request wall time, as users do.
  cluster::SlurmScheduler slurm(spec.nodes);
  auto submit = [&](const std::string& name, int nodes, double duration,
                    double submitAt) {
    cluster::BatchJob job;
    job.name = name;
    job.nodes = nodes;
    job.durationSeconds = duration;
    job.requestedSeconds = duration * 1.8;
    job.submitSeconds = submitAt;
    slurm.submit(job);
  };
  submit("hpl-64", 64, hplOn64, 0.0);
  submit("hydro-16-a", 16, hydroOn16, 10.0);
  submit("specfem-32", 32, specfemOn32, 20.0);
  submit("hpl-192", 192, hplOn64 * 1.4, 30.0);  // full-machine job queues
  submit("hydro-16-b", 16, hydroOn16, 40.0);
  submit("hydro-16-c", 16, hydroOn16, 41.0);
  submit("specfem-32-b", 32, specfemOn32, 60.0);

  const auto result = slurm.schedule();

  ResultSet results;
  TextTable table({"job", "nodes", "submit s", "start s", "end s",
                   "wait s"});
  for (const auto& s : result.jobs) {
    table.addRow({s.job.name, std::to_string(s.job.nodes),
                  fmt(s.job.submitSeconds, 0), fmt(s.startSeconds, 1),
                  fmt(s.endSeconds, 1), fmt(s.waitSeconds(), 1)});
  }
  results.addTable("schedule", std::move(table));

  const double energy =
      cluster::SlurmScheduler::estimateEnergyJ(result, spec, spec.nodes);
  results.addMetric("makespan", result.makespanSeconds / 60.0, "min");
  results.addMetric("node utilisation", 100 * result.nodeUtilization, "%");
  results.addMetric("backfilled jobs",
                    static_cast<double>(result.backfilledJobs), "jobs");
  results.addMetric("average wait", result.averageWaitSeconds, "s");
  results.addMetric("campaign energy", energy / 1e6, "MJ");
  results.addNote(
      "a week-in-the-life batch mix submitted through the SLURM-style "
      "scheduler (Section 5 / Figure 8), durations measured by the cluster "
      "simulation");
  return results;
}

ResultSet runScaleBigCluster(ExperimentContext& ctx) {
  // The thousand-node sweep the fiber execution backend exists for: HPL
  // (weak-scaled, modest memory fraction so the 1024-node factorisation
  // stays inside a CI budget — scaling shape needs the panel/bcast/update
  // structure, not a full-memory matrix) and HYDRO (strong-scaled, fixed
  // grid) on Tibidabo-style trees of 128..1024 Tegra 2 nodes.
  const std::vector<int> nodeCounts = {128, 256, 512, 1024};
  constexpr double kHplMemoryFraction = 0.05;
  apps::HydroBenchmark::Params hydro;
  hydro.steps = 5;

  // Probe-then-sweep stack auto-sizing: run each application once on an
  // 8-node slice, read the fiber stack high-water telemetry, and give
  // every sweep cell guard-paged stacks sized for the deeper of the two
  // (2x high-water, page-rounded — see sim::recommendedStackBytes). On
  // the thread backend the probes report no telemetry and the sweep keeps
  // the backend's default stacks. The probe worlds are folded into the
  // experiment's world accounting like any other run.
  constexpr int kProbeNodes = 8;
  const cluster::ClusterSpec probeSpec =
      cluster::ClusterSpec::tibidaboScaled(kProbeNodes);
  apps::HplBenchmark::Params probeHpl;
  probeHpl.n = apps::HplBenchmark::problemSizeForNodes(probeSpec, kProbeNodes,
                                                       kHplMemoryFraction);
  probeHpl.nb = 512;  // what HplBenchmark::run uses at full scale
  cluster::JobResult hplProbe, hydroProbe;
  cluster::JobOptions sized;
  sized.fiberStackBytes = std::max(
      cluster::autoFiberStackBytes(
          probeSpec, kProbeNodes, apps::HplBenchmark::rankBody(probeHpl),
          &hplProbe),
      cluster::autoFiberStackBytes(probeSpec, kProbeNodes,
                                   apps::HydroBenchmark::rankBody(hydro),
                                   &hydroProbe));
  ctx.recordWorldStats(hplProbe.stats);
  ctx.recordWorldStats(hydroProbe.stats);

  struct Cell {
    const char* app = "";
    int nodes = 0;
    std::size_t n = 0;  ///< HPL problem size (0 for HYDRO)
    cluster::JobResult result;
  };
  std::vector<Cell> cells;
  for (int nodes : nodeCounts) cells.push_back({"HPL", nodes, 0, {}});
  for (int nodes : nodeCounts) cells.push_back({"HYDRO", nodes, 0, {}});

  ctx.parallelFor(cells.size(), [&](std::size_t i) {
    Cell& cell = cells[i];
    cluster::ClusterSimulation sim(
        cluster::ClusterSpec::tibidaboScaled(cell.nodes));
    if (std::string_view(cell.app) == "HPL") {
      cell.n = apps::HplBenchmark::problemSizeForNodes(sim.spec(), cell.nodes,
                                                       kHplMemoryFraction);
      cell.result =
          apps::HplBenchmark::run(sim, cell.nodes, kHplMemoryFraction, sized);
    } else {
      cell.result =
          sim.runJob(cell.nodes, apps::HydroBenchmark::rankBody(hydro), sized);
    }
    ctx.recordWorldStats(cell.result.stats);
  });

  ResultSet results;
  TextTable table({"application", "nodes", "ranks", "wallclock s", "GFLOPS",
                   "efficiency", "events", "peak procs"});
  std::vector<Series> chartSeries;
  for (const char* app : {"HPL", "HYDRO"}) {
    Series s{app, {}, {}};
    double baseTime = 0.0;
    double baseGflops = 0.0;
    for (const Cell& cell : cells) {
      if (std::string_view(cell.app) != app) continue;
      const cluster::JobResult& r = cell.result;
      table.addRow({cell.app, std::to_string(cell.nodes),
                    std::to_string(r.ranks), fmt(r.wallClockSeconds, 1),
                    fmt(r.gflops, 1), fmt(r.efficiency() * 100, 0) + "%",
                    std::to_string(r.stats.engine.eventsDispatched),
                    std::to_string(r.stats.engine.peakLiveProcesses)});
      s.x.push_back(cell.nodes);
      if (baseTime == 0.0) {
        baseTime = r.wallClockSeconds;
        baseGflops = r.gflops;
        s.y.push_back(static_cast<double>(cell.nodes));
      } else if (std::string_view(app) == "HPL") {
        // Weak scaling: speedup tracks the achieved rate.
        s.y.push_back(r.gflops / baseGflops * s.y.front());
      } else {
        s.y.push_back(baseTime / r.wallClockSeconds * s.y.front());
      }
    }
    chartSeries.push_back(std::move(s));
  }
  results.addTable("big-cluster scaling", std::move(table));

  ChartOptions opts;
  opts.title = "HPL + HYDRO speed-up, 128..1024 Tibidabo-style nodes";
  opts.logX = true;
  opts.logY = true;
  opts.xLabel = "nodes";
  opts.yLabel = "speed-up";
  results.addChart("big-cluster speed-up", std::move(chartSeries), opts);

  const Cell& hplTop = cells[nodeCounts.size() - 1];
  results.addMetric("HPL GFLOPS at 1024 nodes", hplTop.result.gflops,
                    "GFLOPS");
  results.addMetric("HPL efficiency at 1024 nodes",
                    hplTop.result.efficiency() * 100, "%");
  results.addMetric(
      "ranks simulated at 1024 nodes",
      static_cast<double>(hplTop.result.stats.engine.peakLiveProcesses),
      "processes");

  // Paraver-style per-rank breakdown at 2048 ranks (1024 nodes x 2
  // ranks/node, HYDRO) — the campaign-scale payoff of the bounded trace
  // sinks. Only emitted in the bounded modes: full mode would retain every
  // span (the very memory cliff the sinks exist to avoid), and full-mode
  // artefacts must stay identical to earlier releases.
  const obs::TraceMode traceMode = obs::defaultTraceMode();
  if (traceMode != obs::TraceMode::Full) {
    cluster::ClusterSimulation tracedSim(
        cluster::ClusterSpec::tibidaboScaled(1024));
    cluster::JobOptions options;
    options.enableTracing = true;
    options.traceSeed = ctx.rng(2048).nextU64();
    options.fiberStackBytes = sized.fiberStackBytes;
    TextTable breakdown(
        {"rank", "compute s", "send s", "recv s", "wait s", "other s"});
    options.observer = [&breakdown, &ctx](const mpi::MpiWorld& world,
                                          const cluster::JobResult& r) {
      const auto summaries =
          world.tracer().summarize(r.ranks, r.wallClockSeconds);
      for (const auto& s : summaries) {
        breakdown.addRow({std::to_string(s.rank), fmt(s.computeSeconds, 6),
                          fmt(s.sendSeconds, 6), fmt(s.recvSeconds, 6),
                          fmt(s.waitSeconds, 6), fmt(s.otherSeconds, 6)});
      }
      if (ctx.traceExportEnabled()) {
        // The exact per-rank breakdown exists in every mode; timeline
        // formats only when the sink retained spans (full/sampled).
        ctx.exportArtefact("scale_bigcluster__hydro1024.breakdown.csv",
                           obs::exportBreakdownCsv(summaries));
        if (world.tracer().spansRetained() > 0) {
          ctx.exportArtefact("scale_bigcluster__hydro1024.trace.json",
                             world.tracer().exportChromeJson());
          ctx.exportArtefact(
              "scale_bigcluster__hydro1024.prv",
              world.tracer().exportPrv(r.ranks, r.wallClockSeconds));
        }
      }
    };
    const cluster::JobResult traced = tracedSim.runJob(
        1024, apps::HydroBenchmark::rankBody(hydro), options);
    ctx.recordWorldStats(traced.stats);
    results.addTable(std::string("2048-rank breakdown (") +
                         obs::toString(traceMode) + ")",
                     std::move(breakdown));
    results.addMetric("2048-rank trace spans recorded",
                      static_cast<double>(traced.stats.traceSpansRecorded),
                      "spans");
    results.addMetric("2048-rank trace spans retained",
                      static_cast<double>(traced.stats.traceSpansRetained),
                      "spans");
    results.addMetric("2048-rank trace memory",
                      static_cast<double>(traced.stats.traceMemoryBytes) /
                          1024.0,
                      "KiB");
    results.addNote(
        "per-rank compute/send/recv/wait over the full HYDRO run; exact "
        "totals in every mode (the sink keeps O(ranks) duration "
        "accumulators even when spans are sampled or histogrammed)");
  }

  // Consistency check against ecc_reliability: run a real (short) job on
  // the 1,500-node machine §6.3 reasons about, then confirm the DRAM-error
  // model reproduces the paper's headline probability for that same size.
  cluster::ClusterSimulation bigSim(cluster::ClusterSpec::tibidaboScaled(1500));
  const cluster::JobResult relJob = bigSim.runJob(
      1500,
      [](mpi::MpiContext& mctx) {
        mctx.barrier();
        mctx.allreduceSum(static_cast<double>(mctx.rank()));
      },
      sized);
  ctx.recordWorldStats(relJob.stats);
  const reliability::DramErrorModel model;
  const double pDaily = 100 * model.systemDailyErrorProbability(1500);
  TextTable rel({"check", "value"});
  rel.addRow({"1,500-node job ranks",
              std::to_string(relJob.stats.engine.peakLiveProcesses)});
  rel.addRow({"1,500-node job wallclock s",
              fmt(relJob.wallClockSeconds, 3)});
  rel.addRow({"P(error today) at 1,500 nodes", fmt(pDaily, 1) + "%"});
  results.addTable("1,500-node reliability consistency", std::move(rel));
  results.addMetric("P(error today) at 1,500 nodes", pDaily, "%");
  results.addNote(
      "P(error today) must equal the ecc_reliability experiment's headline "
      "metric (same DramErrorModel defaults, same 1,500-node machine the "
      "paper's Section 6.3 argument assumes); the job itself demonstrates "
      "3,000 live ranks through the fiber execution backend");
  return results;
}

}  // namespace

void registerClusterExperiments(ExperimentRegistry& registry) {
  registry.add(std::make_unique<LambdaExperiment>(
      "fig06", "Figure 6", "application scalability on Tibidabo", runFig06));
  registry.add(std::make_unique<LambdaExperiment>(
      "hpl_green500", "Section 4",
      "weak-scaling Linpack on Tibidabo + Green500 context", runHplGreen500));
  registry.add(std::make_unique<LambdaExperiment>(
      "energy_to_solution", "Section 4",
      "Tibidabo vs Nehalem-class cluster, PDE-solver study",
      runEnergyToSolution));
  registry.add(std::make_unique<LambdaExperiment>(
      "fig08", "Figure 8", "software stack deployed on the clusters",
      runFig08));
  registry.add(std::make_unique<LambdaExperiment>(
      "campaign", "Section 5", "SLURM batch campaign on Tibidabo",
      runCampaignExperiment));
  registry.add(std::make_unique<LambdaExperiment>(
      "scale_bigcluster", "Section 6",
      "HPL + HYDRO on 128-1024-node Tibidabo-style trees (fiber-scale runs)",
      runScaleBigCluster));
}

}  // namespace tibsim::core
