#include "tibsim/core/experiments.hpp"

#include <algorithm>
#include <cmath>

#include "tibsim/apps/hpl.hpp"
#include "tibsim/apps/hydro.hpp"
#include "tibsim/apps/md.hpp"
#include "tibsim/apps/pepc.hpp"
#include "tibsim/apps/specfem.hpp"
#include "tibsim/arch/registry.hpp"
#include <functional>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/common/statistics.hpp"
#include "tibsim/common/units.hpp"
#include "tibsim/core/experiment.hpp"
#include "tibsim/kernels/microkernel.hpp"
#include "tibsim/mpi/simmpi.hpp"
#include "tibsim/perfmodel/execution_model.hpp"
#include "tibsim/power/power_model.hpp"

namespace tibsim::core {

using namespace tibsim::units;

// ---------------------------------------------------------------------------
// Figures 3 & 4
// ---------------------------------------------------------------------------

std::vector<KernelMeasurement> MicroKernelExperiment::measureSuite(
    const arch::Platform& platform, double frequencyHz, int cores) {
  const perfmodel::ExecutionModel exec;
  const power::PowerModel powerModel(platform);

  std::vector<KernelMeasurement> results;
  results.reserve(kernels::suiteTags().size());
  for (const auto& tag : kernels::suiteTags()) {
    const perfmodel::WorkProfile work = kernels::referenceProfileFor(tag);
    KernelMeasurement m;
    m.kernel = tag;
    m.seconds = exec.time(platform, work, frequencyHz, cores);
    power::LoadState load;
    load.activeCores = cores;
    load.coreUtilization = 1.0;
    load.memBandwidthBytesPerS =
        exec.consumedBandwidth(platform, work, frequencyHz, cores);
    m.watts = powerModel.watts(frequencyHz, load);
    m.energyJ = m.watts * m.seconds;
    results.push_back(m);
  }
  return results;
}

std::vector<KernelMeasurement> MicroKernelExperiment::baseline() {
  return measureSuite(arch::PlatformRegistry::tegra2(), ghz(1.0), 1);
}

namespace {
double suiteSeconds(const std::vector<KernelMeasurement>& suite) {
  double total = 0.0;
  for (const auto& m : suite) total += m.seconds;
  return total;
}

/// Meter one suite iteration through the simulated WT230: the power trace
/// is piecewise-constant across the kernels.
double meteredSuiteEnergy(const std::vector<KernelMeasurement>& suite) {
  const double duration = suiteSeconds(suite);
  power::SimulatedPowerMeter meter;
  const auto powerAt = [&suite](double t) {
    double acc = 0.0;
    for (const auto& m : suite) {
      acc += m.seconds;
      if (t < acc) return m.watts;
    }
    return suite.back().watts;
  };
  return meter.measure(powerAt, 0.0, duration).energyJ;
}

double geomeanSpeedup(const std::vector<KernelMeasurement>& base,
                      const std::vector<KernelMeasurement>& suite) {
  TIB_REQUIRE(base.size() == suite.size());
  std::vector<double> ratios;
  ratios.reserve(base.size());
  for (std::size_t i = 0; i < base.size(); ++i)
    ratios.push_back(base[i].seconds / suite[i].seconds);
  return stats::geomean(ratios);
}
}  // namespace

std::vector<PlatformSweep> MicroKernelExperiment::run() const {
  const ExperimentContext serial(0);
  return run(serial);
}

std::vector<PlatformSweep> MicroKernelExperiment::run(
    const ExperimentContext& ctx) const {
  const auto base = baseline();
  const double baseEnergy = meteredSuiteEnergy(base);
  const auto platforms = arch::PlatformRegistry::evaluated();

  // Pre-size the sweep structure, then fill independent (platform, DVFS
  // point) cells in parallel: each cell writes only its own slot, so the
  // result is identical for any job count.
  struct Cell {
    std::size_t platform;
    std::size_t point;
  };
  std::vector<Cell> cells;
  std::vector<PlatformSweep> sweeps(platforms.size());
  for (std::size_t p = 0; p < platforms.size(); ++p) {
    sweeps[p].platform = platforms[p].shortName;
    sweeps[p].points.resize(platforms[p].soc.dvfs.size());
    for (std::size_t i = 0; i < platforms[p].soc.dvfs.size(); ++i)
      cells.push_back({p, i});
  }

  ctx.parallelFor(cells.size(), [&](std::size_t c) {
    const auto [p, i] = cells[c];
    const arch::Platform& platform = platforms[p];
    const int cores = mode_ == Mode::MultiCore ? platform.soc.cores : 1;
    const arch::OperatingPoint& op = platform.soc.dvfs[i];
    SweepPoint point;
    point.frequencyHz = op.frequencyHz;
    point.kernels = measureSuite(platform, op.frequencyHz, cores);
    point.suiteSeconds = suiteSeconds(point.kernels);
    point.suiteEnergyJ = meteredSuiteEnergy(point.kernels);
    point.speedupVsBaseline = geomeanSpeedup(base, point.kernels);
    point.energyVsBaseline = point.suiteEnergyJ / baseEnergy;
    sweeps[p].points[i] = std::move(point);
  });
  return sweeps;
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

const char* StreamRow::opName(std::size_t op) {
  static constexpr const char* kNames[kOps] = {"Copy", "Scale", "Add",
                                               "Triad"};
  TIB_REQUIRE(op < kOps);
  return kNames[op];
}

kernels::StreamOp StreamRow::streamOp(std::size_t op) {
  static constexpr kernels::StreamOp kStreamOps[kOps] = {
      kernels::StreamOp::Copy, kernels::StreamOp::Scale,
      kernels::StreamOp::Add, kernels::StreamOp::Triad};
  TIB_REQUIRE(op < kOps);
  return kStreamOps[op];
}

std::vector<StreamRow> streamExperiment() {
  using kernels::StreamBenchmark;
  std::vector<StreamRow> rows;
  for (const arch::Platform& platform :
       arch::PlatformRegistry::evaluated()) {
    StreamRow row;
    row.platform = platform.shortName;
    const double f = platform.maxFrequencyHz();
    for (std::size_t i = 0; i < StreamRow::kOps; ++i) {
      row.singleCoreBytesPerS[i] = StreamBenchmark::modeledBandwidth(
          platform, StreamRow::streamOp(i), 1, f);
      row.multiCoreBytesPerS[i] = StreamBenchmark::modeledBandwidth(
          platform, StreamRow::streamOp(i), platform.soc.cores, f);
    }
    row.efficiencyVsPeak = row.multiCoreBytesPerS[StreamRow::Triad] /
                           platform.soc.memory.peakBandwidthBytesPerS;
    rows.push_back(row);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------------

std::vector<std::size_t> latencyMessageSizes() {
  return {0, 1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64};
}

std::vector<std::size_t> bandwidthMessageSizes() {
  std::vector<std::size_t> sizes;
  for (std::size_t s = 1; s <= (std::size_t{16} << 20); s *= 4)
    sizes.push_back(s);
  return sizes;
}

PingPongSeries pingPongSweep(const arch::Platform& platform,
                             net::Protocol protocol, double frequencyHz,
                             const std::vector<std::size_t>& sizes) {
  const net::ProtocolModel model(protocol, platform, frequencyHz);
  PingPongSeries series;
  series.label = platform.shortName + " " + net::toString(protocol) + " @" +
                 fmt(toGhz(frequencyHz), 1) + "GHz";
  for (std::size_t bytes : sizes) {
    series.messageBytes.push_back(static_cast<double>(bytes));
    series.latencySeconds.push_back(model.pingPongLatency(bytes));
    series.bandwidthBytesPerS.push_back(
        bytes > 0 ? model.effectiveBandwidth(bytes) : 0.0);
  }
  return series;
}

double simulatedPingPongLatency(const arch::Platform& platform,
                                net::Protocol protocol, double frequencyHz,
                                std::size_t bytes, int repetitions) {
  TIB_REQUIRE(repetitions >= 1);
  mpi::WorldConfig cfg;
  cfg.platform = platform;
  cfg.frequencyHz = frequencyHz;
  cfg.protocol = protocol;
  cfg.ranksPerNode = 1;
  cfg.topology.linkRateBytesPerS = platform.nicLinkRateBytesPerS;

  mpi::MpiWorld world(cfg, 2);
  const mpi::WorldStats stats =
      world.run([bytes, repetitions](mpi::MpiContext& ctx) {
        for (int i = 0; i < repetitions; ++i) {
          if (ctx.rank() == 0) {
            ctx.send(1, 7, bytes);
            ctx.recv(1, 8);
          } else {
            ctx.recv(0, 7);
            ctx.send(0, 8, bytes);
          }
        }
      });
  // IMB convention: half the mean round-trip.
  return stats.wallClockSeconds / (2.0 * repetitions);
}

// ---------------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------------

std::vector<ScalingCurve> scalabilityExperiment(
    const cluster::ClusterSpec& spec, const std::vector<int>& nodeCounts) {
  const ExperimentContext serial(0);
  return scalabilityExperiment(spec, nodeCounts, serial);
}

std::vector<ScalingCurve> scalabilityExperiment(
    const cluster::ClusterSpec& spec, const std::vector<int>& nodeCounts,
    const ExperimentContext& ctx) {
  struct App {
    std::string name;
    int minNodes;
    std::function<mpi::MpiWorld::RankBody(int ranks)> make;
    bool weakScaling;
  };

  apps::PepcBenchmark::Params pepc;
  apps::HydroBenchmark::Params hydro;
  apps::MdBenchmark::Params md;
  apps::SpecfemBenchmark::Params specfem;

  const std::vector<App> appList = {
      {"HP Linpack", 1, nullptr, true},
      {"SPECFEM3D",
       std::max(1, apps::SpecfemBenchmark::minimumNodes(spec,
                                                        specfem.elements)),
       [specfem](int) { return apps::SpecfemBenchmark::rankBody(specfem); },
       false},
      {"HYDRO", 2,
       [hydro](int) { return apps::HydroBenchmark::rankBody(hydro); },
       false},
      {"PEPC",
       apps::PepcBenchmark::minimumNodes(spec, pepc.particles),
       [pepc](int) { return apps::PepcBenchmark::rankBody(pepc); }, false},
      {"GROMACS",
       std::max(2, apps::MdBenchmark::minimumNodes(spec, md.atoms)),
       [md](int) { return apps::MdBenchmark::rankBody(md); }, false},
  };

  // Every feasible (application, node count) cell is an independent
  // cluster-simulation run; fan them out, then assemble the curves (whose
  // speedup normalisation is sequential per application) afterwards.
  struct Cell {
    std::size_t app;
    int nodes;
    cluster::JobResult result;
  };
  std::vector<Cell> cells;
  for (std::size_t a = 0; a < appList.size(); ++a)
    for (int nodes : nodeCounts)
      if (nodes >= appList[a].minNodes && nodes <= spec.nodes)
        cells.push_back({a, nodes, {}});

  ctx.parallelFor(cells.size(), [&](std::size_t c) {
    const App& app = appList[cells[c].app];
    cluster::ClusterSimulation sim(spec);
    if (app.weakScaling) {
      cells[c].result = apps::HplBenchmark::run(sim, cells[c].nodes);
    } else {
      cells[c].result = sim.runJob(
          cells[c].nodes, app.make(cells[c].nodes * spec.ranksPerNode));
    }
    ctx.recordWorldStats(cells[c].result.stats);
  });

  std::vector<ScalingCurve> curves;
  std::size_t cell = 0;
  for (std::size_t a = 0; a < appList.size(); ++a) {
    const App& app = appList[a];
    ScalingCurve curve;
    curve.application = app.name;
    curve.baseNodes = app.minNodes;
    double baseTime = 0.0;
    double baseGflops = 0.0;

    for (; cell < cells.size() && cells[cell].app == a; ++cell) {
      const cluster::JobResult& result = cells[cell].result;
      ScalingPoint point;
      point.nodes = cells[cell].nodes;
      point.wallClockSeconds = result.wallClockSeconds;
      if (baseTime == 0.0) {
        baseTime = result.wallClockSeconds;
        baseGflops = result.gflops;
        // Linear-scaling assumption below the smallest feasible node count
        // (the paper's method for PEPC and GROMACS).
        point.speedup = static_cast<double>(point.nodes);
      } else if (app.weakScaling) {
        // Weak scaling: speedup tracks the achieved rate.
        point.speedup =
            result.gflops / baseGflops * curve.points.front().speedup;
      } else {
        point.speedup = baseTime / result.wallClockSeconds *
                        curve.points.front().speedup;
      }
      curve.points.push_back(point);
    }
    if (!curve.points.empty()) curves.push_back(std::move(curve));
  }
  return curves;
}

// ---------------------------------------------------------------------------
// Table 4
// ---------------------------------------------------------------------------

std::vector<BytesPerFlopRow> bytesPerFlopTable() {
  std::vector<BytesPerFlopRow> rows;
  for (const arch::Platform& platform :
       arch::PlatformRegistry::evaluated()) {
    BytesPerFlopRow row;
    row.platform = platform.shortName;
    row.gbe1 = platform.bytesPerFlop(gbps(1.0));
    row.gbe10 = platform.bytesPerFlop(gbps(10.0));
    row.ib40 = platform.bytesPerFlop(gbps(40.0));
    rows.push_back(row);
  }
  return rows;
}

}  // namespace tibsim::core
