#include "tibsim/core/experiment.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <tuple>

#include "tibsim/common/assert.hpp"
#include "builtin_experiments.hpp"

namespace tibsim::core {

void ExperimentContext::parallelFor(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  cells_ += n;
  if (pool_ != nullptr && pool_->threadCount() > 1) {
    pool_->parallelFor(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

bool ExperimentContext::exportArtefact(const std::string& filename,
                                       const std::string& content) const {
  if (traceExportDir_.empty()) return false;
  TIB_REQUIRE_MSG(!filename.empty() &&
                      filename.find('/') == std::string::npos &&
                      filename.find("..") == std::string::npos,
                  "exportArtefact filename must be a plain file name");
  std::lock_guard lock(exportMutex_);
  const std::filesystem::path dir(traceExportDir_);
  std::filesystem::create_directories(dir);
  std::ofstream out(dir / filename, std::ios::binary);
  TIB_REQUIRE_MSG(out.good(),
                  "cannot open trace export file: " + filename);
  out << content;
  TIB_REQUIRE_MSG(out.good(), "failed writing trace export: " + filename);
  return true;
}

void ExperimentContext::recordEngineStats(const sim::EngineStats& stats) const {
  std::lock_guard lock(engineMutex_);
  engineRecords_.push_back(stats);
}

sim::EngineStats ExperimentContext::engineStats() const {
  std::vector<sim::EngineStats> records;
  {
    std::lock_guard lock(engineMutex_);
    records = engineRecords_;
  }
  // parallelFor cells record in completion order, which depends on --jobs;
  // double addition is not associative, so fold in a canonical order to
  // keep simSeconds (serialised into campaign JSON) byte-deterministic.
  std::sort(records.begin(), records.end(),
            [](const sim::EngineStats& a, const sim::EngineStats& b) {
              return std::tie(a.eventsDispatched, a.contextSwitches,
                              a.processesSpawned, a.simSeconds,
                              a.queueHighWater) <
                     std::tie(b.eventsDispatched, b.contextSwitches,
                              b.processesSpawned, b.simSeconds,
                              b.queueHighWater);
            });
  sim::EngineStats total;
  for (const sim::EngineStats& r : records) total.accumulate(r);
  return total;
}

void ExperimentContext::recordRunCounters(
    const obs::RunCounters& counters) const {
  std::lock_guard lock(engineMutex_);
  counterRecords_.push_back(counters);
}

obs::RunCounters ExperimentContext::runCounters() const {
  std::vector<obs::RunCounters> records;
  {
    std::lock_guard lock(engineMutex_);
    records = counterRecords_;
  }
  // Same canonical-order fold as engineStats(): payloadBytes/wireBytes are
  // double sums and land in the serialised campaign artefacts.
  std::sort(records.begin(), records.end(),
            [](const obs::RunCounters& a, const obs::RunCounters& b) {
              return std::tie(a.messages, a.spansRecorded, a.payloadBytes,
                              a.wireBytes, a.spansRetained) <
                     std::tie(b.messages, b.spansRecorded, b.payloadBytes,
                              b.wireBytes, b.spansRetained);
            });
  obs::RunCounters total;
  for (const obs::RunCounters& r : records) total.accumulate(r);
  return total;
}

ExperimentRegistry& ExperimentRegistry::global() {
  static ExperimentRegistry registry;
  static std::once_flag once;
  std::call_once(once, [] { registerBuiltinExperiments(registry); });
  return registry;
}

void ExperimentRegistry::add(std::unique_ptr<Experiment> experiment) {
  TIB_REQUIRE(experiment != nullptr);
  const std::string name = experiment->name();
  TIB_REQUIRE_MSG(!name.empty(), "experiment name must not be empty");
  const auto [it, inserted] =
      experiments_.emplace(name, std::move(experiment));
  TIB_REQUIRE_MSG(inserted, "duplicate experiment name: " + name);
}

std::vector<std::string> ExperimentRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(experiments_.size());
  for (const auto& [name, experiment] : experiments_) out.push_back(name);
  return out;  // std::map iterates sorted
}

const Experiment* ExperimentRegistry::find(const std::string& name) const {
  const auto it = experiments_.find(name);
  return it == experiments_.end() ? nullptr : it->second.get();
}

std::vector<const Experiment*> ExperimentRegistry::match(
    const std::vector<std::string>& patterns) const {
  std::vector<const Experiment*> out;
  for (const auto& [name, experiment] : experiments_) {
    if (patterns.empty()) {
      out.push_back(experiment.get());
      continue;
    }
    for (const std::string& pattern : patterns) {
      if (globMatch(pattern, name)) {
        out.push_back(experiment.get());
        break;
      }
    }
  }
  return out;
}

bool ExperimentRegistry::globMatch(const std::string& pattern,
                                   const std::string& text) {
  // Iterative glob with single-star backtracking.
  std::size_t p = 0, t = 0;
  std::size_t starP = std::string::npos, starT = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      starP = p++;
      starT = t;
    } else if (starP != std::string::npos) {
      p = starP + 1;
      t = ++starT;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::uint64_t experimentSeed(std::uint64_t campaignSeed,
                             const std::string& name) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : name) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return campaignSeed ^ hash;
}

}  // namespace tibsim::core
