// Communicator-era proxy applications: the `taskfarm` master/worker
// throughput farm (wildcard-receive self-scheduling at up to 2,048 ranks)
// and `hydro_async`, the communication-avoiding HYDRO variant built on
// comm.split()/dup() and non-blocking collectives. Both exist to exercise
// the communicator core at campaign scale with deterministic artefacts.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "builtin_experiments.hpp"
#include "tibsim/apps/hydro.hpp"
#include "tibsim/apps/taskfarm.hpp"
#include "tibsim/cluster/cluster.hpp"
#include "tibsim/common/table.hpp"
#include "tibsim/core/experiment.hpp"
#include "tibsim/core/experiments.hpp"

namespace tibsim::core {

namespace {

// One row of sim-time critical-path attribution (WorldStats.criticalPath):
// where the chain that bounded the job's finish actually spent its time.
void addPathRow(TextTable& table, const std::string& label,
                const obs::CriticalPath& path) {
  table.addRow({label, fmt(path.computeSeconds, 3), fmt(path.sendSeconds, 3),
                fmt(path.recvSeconds, 3), fmt(path.linkSeconds, 3),
                fmt(path.waitSeconds, 3), std::to_string(path.edges),
                std::to_string(path.endRank)});
}

const std::vector<std::string> kPathColumns = {
    "job",    "compute s", "send s", "recv s",
    "link s", "wait s",    "hops",   "end rank"};

ResultSet runTaskFarm(ExperimentContext& ctx) {
  // 2 ranks/node on Tibidabo-style trees: 128, 512 and 2,048 ranks. The
  // 2,048-rank point is the headline — a single master feeding 2,047
  // workers through one wildcard receive, byte-identical for every
  // --sim-shards value and both execution backends.
  const std::vector<int> nodeCounts = {64, 256, 1024};

  apps::TaskFarm::Params probeParams;
  probeParams.tasks = 64;
  cluster::JobResult probe;
  cluster::JobOptions sized;
  sized.fiberStackBytes = cluster::autoFiberStackBytes(
      cluster::ClusterSpec::tibidaboScaled(8), 8,
      apps::TaskFarm::rankBody(probeParams), &probe);
  ctx.recordWorldStats(probe.stats);

  struct Cell {
    int nodes = 0;
    int tasks = 0;
    std::vector<std::uint64_t> perWorker;
    cluster::JobResult result;
  };
  std::vector<Cell> cells;
  for (int nodes : nodeCounts) {
    Cell cell;
    cell.nodes = nodes;
    // Enough tasks that every worker cycles the queue a few times.
    cell.tasks = 4 * (2 * nodes - 1);
    cells.push_back(std::move(cell));
  }

  ctx.parallelFor(cells.size(), [&](std::size_t i) {
    Cell& cell = cells[i];
    apps::TaskFarm::Params params;
    params.tasks = cell.tasks;
    params.tasksPerWorkerOut = &cell.perWorker;
    cluster::ClusterSimulation sim(
        cluster::ClusterSpec::tibidaboScaled(cell.nodes));
    cell.result = sim.runJob(cell.nodes, apps::TaskFarm::rankBody(params),
                             sized);
    ctx.recordWorldStats(cell.result.stats);
  });

  ResultSet results;
  TextTable table({"nodes", "ranks", "tasks", "wallclock s", "tasks/s",
                   "min/worker", "max/worker"});
  for (const Cell& cell : cells) {
    std::uint64_t minTasks = 0;
    std::uint64_t maxTasks = 0;
    if (cell.perWorker.size() > 1) {
      minTasks = *std::min_element(cell.perWorker.begin() + 1,
                                   cell.perWorker.end());
      maxTasks = *std::max_element(cell.perWorker.begin() + 1,
                                   cell.perWorker.end());
    }
    table.addRow({std::to_string(cell.nodes),
                  std::to_string(cell.result.ranks),
                  std::to_string(cell.tasks),
                  fmt(cell.result.wallClockSeconds, 3),
                  fmt(cell.tasks / cell.result.wallClockSeconds, 0),
                  std::to_string(minTasks), std::to_string(maxTasks)});
  }
  results.addTable("task farm scaling", std::move(table));

  TextTable pathTable(kPathColumns);
  for (const Cell& cell : cells) {
    addPathRow(pathTable, std::to_string(cell.result.ranks) + " ranks",
               cell.result.stats.criticalPath);
  }
  results.addTable("critical path (sim time)", std::move(pathTable));

  const Cell& top = cells.back();
  std::uint64_t served = 0;
  for (std::uint64_t n : top.perWorker) served += n;
  results.addMetric("ranks at top scale", top.result.ranks, "ranks");
  results.addMetric("tasks served at top scale",
                    static_cast<double>(served), "tasks");
  results.addMetric("throughput at top scale",
                    top.tasks / top.result.wallClockSeconds, "tasks/s");
  results.addNote(
      "master self-scheduling via Communicator::recvDoubles(kAnySource): "
      "whichever worker drains first gets the next task, matched in the "
      "engine's canonical delivery order — the distribution table is "
      "byte-identical for every --sim-shards value and both backends");
  return results;
}

ResultSet runHydroAsync(ExperimentContext& ctx) {
  // Strong-scale the same HYDRO problem through the synchronous skeleton
  // (blocking neighborExchange + flat allreduceMax) and the
  // communicator-era schedule (dup()ed halo comm with isend/irecv overlap,
  // two-level CFL reduction over split() row groups). Same FLOPs, same
  // halo bytes — the delta is pure schedule.
  const std::vector<int> nodeCounts = {64, 128, 256};
  apps::HydroBenchmark::Params params;
  params.steps = 5;

  cluster::JobResult probe;
  cluster::JobOptions sized;
  sized.fiberStackBytes = cluster::autoFiberStackBytes(
      cluster::ClusterSpec::tibidaboScaled(8), 8,
      apps::HydroBenchmark::asyncRankBody(params), &probe);
  ctx.recordWorldStats(probe.stats);

  struct Cell {
    bool async = false;
    int nodes = 0;
    cluster::JobResult result;
  };
  std::vector<Cell> cells;
  for (int nodes : nodeCounts) cells.push_back({false, nodes, {}});
  for (int nodes : nodeCounts) cells.push_back({true, nodes, {}});

  ctx.parallelFor(cells.size(), [&](std::size_t i) {
    Cell& cell = cells[i];
    cluster::ClusterSimulation sim(
        cluster::ClusterSpec::tibidaboScaled(cell.nodes));
    cell.result = sim.runJob(
        cell.nodes,
        cell.async ? apps::HydroBenchmark::asyncRankBody(params)
                   : apps::HydroBenchmark::rankBody(params),
        sized);
    ctx.recordWorldStats(cell.result.stats);
  });

  ResultSet results;
  TextTable table({"schedule", "nodes", "ranks", "rows/rank", "wallclock s",
                   "speedup"});
  double firstSpeedup = 0.0;
  double topSpeedup = 0.0;
  for (std::size_t i = 0; i < nodeCounts.size(); ++i) {
    const Cell& sync = cells[i];
    const Cell& async = cells[nodeCounts.size() + i];
    const double speedup =
        async.result.wallClockSeconds > 0.0
            ? sync.result.wallClockSeconds / async.result.wallClockSeconds
            : 0.0;
    const std::string rowsPerRank = std::to_string(
        params.ny / static_cast<std::size_t>(sync.result.ranks));
    table.addRow({"sync", std::to_string(sync.nodes),
                  std::to_string(sync.result.ranks), rowsPerRank,
                  fmt(sync.result.wallClockSeconds, 3), "1.0"});
    table.addRow({"async", std::to_string(async.nodes),
                  std::to_string(async.result.ranks), rowsPerRank,
                  fmt(async.result.wallClockSeconds, 3), fmt(speedup, 2)});
    if (i == 0) firstSpeedup = speedup;
    topSpeedup = speedup;
  }
  results.addTable("sync vs async HYDRO", std::move(table));

  // Critical-path attribution per schedule and scale: this is the table
  // that explains the sync/async crossover — the async schedule removes
  // wait time from the path while compute dominates, and replaces it with
  // protocol CPU + deeper reduction hops that stop amortising at the
  // strong-scaling limit.
  TextTable pathTable(kPathColumns);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    addPathRow(pathTable,
               std::string(cell.async ? "async " : "sync ") +
                   std::to_string(cell.nodes) + " nodes",
               cell.result.stats.criticalPath);
  }
  results.addTable("critical path (sim time)", std::move(pathTable));
  const obs::CriticalPath& syncTop =
      cells[nodeCounts.size() - 1].result.stats.criticalPath;
  const obs::CriticalPath& asyncTop = cells.back().result.stats.criticalPath;
  if (syncTop.lengthSeconds() > 0.0) {
    results.addMetric("sync wait fraction at top scale",
                      100.0 * syncTop.waitSeconds / syncTop.lengthSeconds(),
                      "%");
  }
  if (asyncTop.lengthSeconds() > 0.0) {
    results.addMetric("async wait fraction at top scale",
                      100.0 * asyncTop.waitSeconds / asyncTop.lengthSeconds(),
                      "%");
  }
  results.addMetric("async speedup at first scale", firstSpeedup, "x");
  results.addMetric("async speedup at top scale", topSpeedup, "x");
  results.addNote(
      "async schedule: halo isend/irecv on a dup()ed communicator overlap "
      "the interior update; the per-step CFL reduction is two-level — "
      "row-group reduce over split(rank/groupSize) communicators, a "
      "non-blocking iallreduce across group leaders, then a group "
      "broadcast");
  results.addNote(
      "overlap wins while per-rank compute dominates; at the strong-scaling "
      "limit the boundary fraction grows, the extra small-message overhead "
      "stops amortising, and the two-level reduction is latency-deeper than "
      "flat recursive doubling — the same interconnect wall the paper's "
      "Section 4 identifies for Tibidabo");
  return results;
}

}  // namespace

void registerProxyExperiments(ExperimentRegistry& registry) {
  registry.add(std::make_unique<LambdaExperiment>(
      "taskfarm", "Section 5",
      "master/worker task farm via wildcard receives (up to 2,048 ranks)",
      runTaskFarm));
  registry.add(std::make_unique<LambdaExperiment>(
      "hydro_async", "Section 4",
      "HYDRO with overlapped halos and a two-level CFL reduction",
      runHydroAsync));
}

}  // namespace tibsim::core
