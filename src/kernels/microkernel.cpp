#include "tibsim/kernels/microkernel.hpp"

#include <unordered_map>

#include "tibsim/common/assert.hpp"
#include "tibsim/kernels/suite.hpp"

namespace tibsim::kernels {

using perfmodel::AccessPattern;
using perfmodel::WorkProfile;

namespace {

// Reference work profiles at the Section-3 evaluation sizes. The problem
// size is identical on every platform ("the same amount of work to perform
// in one iteration"); these constants are sized so one whole-suite iteration
// takes ~3 s single-core on the Tegra 2 at 1 GHz, reproducing the paper's
// 23.93 J/iteration wall-plug energy. flops for the integer kernels (hist,
// msort) count ALU ops, which is what bounds them.
const std::unordered_map<std::string, WorkProfile>& referenceProfiles() {
  static const std::unordered_map<std::string, WorkProfile> kProfiles = {
      // tag          flops    bytes    pattern                    ce    pf    imb
      {"vecop", {9.5e6, 113e6, AccessPattern::Streaming, 1.00, 0.99, 0.0}},
      {"dmmm",  {158e6, 24e6,  AccessPattern::Blocked,   0.90, 1.00, 0.0}},
      {"3dstc", {33e6,  67e6,  AccessPattern::Strided,   0.80, 1.00, 0.0}},
      {"2dcon", {124e6, 40e6,  AccessPattern::Spatial,   0.85, 1.00, 0.0}},
      {"fft",   {130e6, 59e6,  AccessPattern::Strided,   0.65, 0.97, 0.0}},
      {"red",   {9.9e6, 79e6,  AccessPattern::Streaming, 0.90, 0.98, 0.0}},
      {"hist",  {40e6,  40e6,  AccessPattern::Streaming, 0.45, 0.98, 0.0}},
      {"msort", {109e6, 236e6, AccessPattern::Blocked,   0.35, 0.90, 0.0}},
      {"nbody", {198e6, 2e6,   AccessPattern::Irregular, 0.75, 1.00, 0.0}},
      {"amcd",  {177e6, 1e6,   AccessPattern::Resident,  0.95, 1.00, 0.0}},
      {"spvm",  {9.4e6, 59e6,  AccessPattern::Irregular, 0.90, 0.97, 0.25}},
  };
  return kProfiles;
}

}  // namespace

perfmodel::WorkProfile MicroKernel::referenceProfile() const {
  return referenceProfileFor(tag());
}

perfmodel::WorkProfile referenceProfileFor(std::string_view tag) {
  const auto& profiles = referenceProfiles();
  const auto it = profiles.find(std::string(tag));
  TIB_REQUIRE_MSG(it != profiles.end(),
                  "unknown micro-kernel tag: " + std::string(tag));
  return it->second;
}

const std::vector<std::string>& suiteTags() {
  static const std::vector<std::string> kTags = {
      "vecop", "dmmm", "3dstc", "2dcon", "fft", "red",
      "hist",  "msort", "nbody", "amcd", "spvm"};
  return kTags;
}

std::unique_ptr<MicroKernel> makeKernel(std::string_view tag) {
  if (tag == "vecop") return std::make_unique<VecOp>();
  if (tag == "dmmm") return std::make_unique<Dmmm>();
  if (tag == "3dstc") return std::make_unique<Stencil3D>();
  if (tag == "2dcon") return std::make_unique<Conv2D>();
  if (tag == "fft") return std::make_unique<Fft1D>();
  if (tag == "red") return std::make_unique<Reduction>();
  if (tag == "hist") return std::make_unique<Histogram>();
  if (tag == "msort") return std::make_unique<MergeSort>();
  if (tag == "nbody") return std::make_unique<NBody>();
  if (tag == "amcd") return std::make_unique<Amcd>();
  if (tag == "spvm") return std::make_unique<Spvm>();
  TIB_REQUIRE_MSG(false, "unknown micro-kernel tag: " + std::string(tag));
  return nullptr;
}

std::vector<std::unique_ptr<MicroKernel>> makeSuite() {
  std::vector<std::unique_ptr<MicroKernel>> suite;
  suite.reserve(suiteTags().size());
  for (const auto& tag : suiteTags()) suite.push_back(makeKernel(tag));
  return suite;
}

}  // namespace tibsim::kernels
