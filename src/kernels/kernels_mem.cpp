// Memory-bound members of the Table-2 suite: vecop, red, hist, spvm.

#include <algorithm>
#include <cmath>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/rng.hpp"
#include "tibsim/kernels/suite.hpp"

namespace tibsim::kernels {

using perfmodel::AccessPattern;
using perfmodel::WorkProfile;

// ---------------------------------------------------------------------------
// vecop: z = alpha * x + y
// ---------------------------------------------------------------------------

void VecOp::setup(std::size_t n, std::uint64_t seed) {
  TIB_REQUIRE(n > 0);
  Rng rng(seed);
  alpha_ = rng.uniform(0.5, 2.0);
  x_.resize(n);
  y_.resize(n);
  z_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    x_[i] = rng.uniform(-1.0, 1.0);
    y_[i] = rng.uniform(-1.0, 1.0);
  }
}

void VecOp::runSerial() {
  TIB_REQUIRE(!x_.empty());
  for (std::size_t i = 0; i < x_.size(); ++i) z_[i] = alpha_ * x_[i] + y_[i];
}

void VecOp::runParallel(ThreadPool& pool) {
  TIB_REQUIRE(!x_.empty());
  pool.parallelFor(x_.size(), [this](std::size_t b, std::size_t e,
                                     std::size_t) {
    for (std::size_t i = b; i < e; ++i) z_[i] = alpha_ * x_[i] + y_[i];
  });
}

bool VecOp::verify() const {
  for (std::size_t i = 0; i < x_.size(); ++i) {
    if (std::abs(z_[i] - (alpha_ * x_[i] + y_[i])) > 1e-12) return false;
  }
  return true;
}

WorkProfile VecOp::currentProfile() const {
  const auto n = static_cast<double>(x_.size());
  return {2.0 * n, 3.0 * 8.0 * n, AccessPattern::Streaming, 1.0, 0.99, 0.0};
}

// ---------------------------------------------------------------------------
// red: scalar sum
// ---------------------------------------------------------------------------

void Reduction::setup(std::size_t n, std::uint64_t seed) {
  TIB_REQUIRE(n > 0);
  Rng rng(seed);
  data_.resize(n);
  expected_ = 0.0;
  for (auto& v : data_) {
    v = rng.uniform(0.0, 1.0);
    expected_ += v;
  }
  sum_ = 0.0;
}

void Reduction::runSerial() {
  TIB_REQUIRE(!data_.empty());
  double acc = 0.0;
  for (double v : data_) acc += v;
  sum_ = acc;
}

void Reduction::runParallel(ThreadPool& pool) {
  TIB_REQUIRE(!data_.empty());
  std::vector<double> partial(pool.threadCount(), 0.0);
  pool.parallelFor(data_.size(), [this, &partial](std::size_t b, std::size_t e,
                                                  std::size_t t) {
    double acc = 0.0;
    for (std::size_t i = b; i < e; ++i) acc += data_[i];
    partial[t] = acc;
  });
  double acc = 0.0;
  for (double v : partial) acc += v;
  sum_ = acc;
}

bool Reduction::verify() const {
  // Summation order differs between variants; allow FP reassociation slack.
  const double tol = 1e-9 * static_cast<double>(data_.size());
  return std::abs(sum_ - expected_) <= tol;
}

WorkProfile Reduction::currentProfile() const {
  const auto n = static_cast<double>(data_.size());
  return {n, 8.0 * n, AccessPattern::Streaming, 0.9, 0.98, 0.0};
}

// ---------------------------------------------------------------------------
// hist: privatised histogram + merge
// ---------------------------------------------------------------------------

void Histogram::setup(std::size_t n, std::uint64_t seed) {
  TIB_REQUIRE(n > 0);
  Rng rng(seed);
  keys_.resize(n);
  expected_.assign(kBins, 0);
  for (auto& k : keys_) {
    // Skewed distribution: low bins are hot, like real histogramming loads.
    const double u = rng.nextDouble();
    k = static_cast<std::uint32_t>(u * u * static_cast<double>(kBins)) %
        kBins;
    ++expected_[k];
  }
  bins_.assign(kBins, 0);
}

void Histogram::runSerial() {
  TIB_REQUIRE(!keys_.empty());
  bins_.assign(kBins, 0);
  for (std::uint32_t k : keys_) ++bins_[k];
}

void Histogram::runParallel(ThreadPool& pool) {
  TIB_REQUIRE(!keys_.empty());
  const std::size_t threads = pool.threadCount();
  std::vector<std::vector<std::uint64_t>> local(
      threads, std::vector<std::uint64_t>(kBins, 0));
  pool.parallelFor(keys_.size(), [this, &local](std::size_t b, std::size_t e,
                                                std::size_t t) {
    auto& mine = local[t];
    for (std::size_t i = b; i < e; ++i) ++mine[keys_[i]];
  });
  // Reduction stage.
  bins_.assign(kBins, 0);
  for (const auto& mine : local)
    for (std::size_t bin = 0; bin < kBins; ++bin) bins_[bin] += mine[bin];
}

bool Histogram::verify() const { return bins_ == expected_; }

WorkProfile Histogram::currentProfile() const {
  const auto n = static_cast<double>(keys_.size());
  // ~2.4 ALU ops per key (load, index, increment) at 4 B per key.
  return {2.4 * n, 4.0 * n, AccessPattern::Streaming, 0.45, 0.98, 0.0};
}

// ---------------------------------------------------------------------------
// spvm: CSR SpMV with skewed row lengths
// ---------------------------------------------------------------------------

void Spvm::setup(std::size_t n, std::uint64_t seed) {
  TIB_REQUIRE(n >= 4);
  Rng rng(seed);
  rows_ = n;
  rowPtr_.assign(rows_ + 1, 0);
  cols_.clear();
  vals_.clear();
  x_.resize(rows_);
  for (auto& v : x_) v = rng.uniform(-1.0, 1.0);

  // Power-law-ish row lengths: a few rows are much denser than the rest,
  // which is what creates the load imbalance the kernel exists to expose.
  for (std::size_t r = 0; r < rows_; ++r) {
    std::size_t len = 4 + rng.nextBelow(8);
    if (rng.nextDouble() < 0.02) len = 64 + rng.nextBelow(192);
    rowPtr_[r + 1] = rowPtr_[r] + len;
    for (std::size_t j = 0; j < len; ++j) {
      cols_.push_back(static_cast<std::uint32_t>(rng.nextBelow(rows_)));
      vals_.push_back(rng.uniform(-1.0, 1.0));
    }
  }
  y_.assign(rows_, 0.0);
  expected_.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t j = rowPtr_[r]; j < rowPtr_[r + 1]; ++j)
      acc += vals_[j] * x_[cols_[j]];
    expected_[r] = acc;
  }
}

void Spvm::multiplyRows(std::size_t rowBegin, std::size_t rowEnd) {
  for (std::size_t r = rowBegin; r < rowEnd; ++r) {
    double acc = 0.0;
    for (std::size_t j = rowPtr_[r]; j < rowPtr_[r + 1]; ++j)
      acc += vals_[j] * x_[cols_[j]];
    y_[r] = acc;
  }
}

void Spvm::runSerial() {
  TIB_REQUIRE(rows_ > 0);
  multiplyRows(0, rows_);
}

void Spvm::runParallel(ThreadPool& pool) {
  TIB_REQUIRE(rows_ > 0);
  pool.parallelFor(rows_, [this](std::size_t b, std::size_t e, std::size_t) {
    multiplyRows(b, e);
  });
}

bool Spvm::verify() const {
  for (std::size_t r = 0; r < rows_; ++r) {
    if (std::abs(y_[r] - expected_[r]) > 1e-9) return false;
  }
  return true;
}

WorkProfile Spvm::currentProfile() const {
  const auto nnz = static_cast<double>(vals_.size());
  return {2.0 * nnz, 12.0 * nnz, AccessPattern::Irregular, 0.9, 0.97, 0.25};
}

}  // namespace tibsim::kernels
