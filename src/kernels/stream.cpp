#include "tibsim/kernels/stream.hpp"

#include <cmath>

#include "tibsim/common/assert.hpp"
#include "tibsim/perfmodel/execution_model.hpp"

namespace tibsim::kernels {

using perfmodel::AccessPattern;

std::string toString(StreamOp op) {
  switch (op) {
    case StreamOp::Copy: return "Copy";
    case StreamOp::Scale: return "Scale";
    case StreamOp::Add: return "Add";
    case StreamOp::Triad: return "Triad";
  }
  return "unknown";
}

double streamBytesPerElement(StreamOp op) {
  switch (op) {
    case StreamOp::Copy:
    case StreamOp::Scale: return 16.0;
    case StreamOp::Add:
    case StreamOp::Triad: return 24.0;
  }
  return 0.0;
}

double streamFlopsPerElement(StreamOp op) {
  switch (op) {
    case StreamOp::Copy: return 0.0;
    case StreamOp::Scale:
    case StreamOp::Add: return 1.0;
    case StreamOp::Triad: return 2.0;
  }
  return 0.0;
}

void StreamBenchmark::setup(std::size_t n, double scalar) {
  TIB_REQUIRE(n > 0);
  scalar_ = scalar;
  a_.assign(n, 1.0);
  b_.assign(n, 2.0);
  c_.assign(n, 0.0);
}

void StreamBenchmark::runSerial(StreamOp op) {
  TIB_REQUIRE(!a_.empty());
  const std::size_t n = a_.size();
  switch (op) {
    case StreamOp::Copy:
      for (std::size_t i = 0; i < n; ++i) c_[i] = a_[i];
      break;
    case StreamOp::Scale:
      for (std::size_t i = 0; i < n; ++i) b_[i] = scalar_ * c_[i];
      break;
    case StreamOp::Add:
      for (std::size_t i = 0; i < n; ++i) c_[i] = a_[i] + b_[i];
      break;
    case StreamOp::Triad:
      for (std::size_t i = 0; i < n; ++i) a_[i] = b_[i] + scalar_ * c_[i];
      break;
  }
}

void StreamBenchmark::runParallel(StreamOp op, ThreadPool& pool) {
  TIB_REQUIRE(!a_.empty());
  pool.parallelFor(a_.size(), [this, op](std::size_t lo, std::size_t hi,
                                         std::size_t) {
    switch (op) {
      case StreamOp::Copy:
        for (std::size_t i = lo; i < hi; ++i) c_[i] = a_[i];
        break;
      case StreamOp::Scale:
        for (std::size_t i = lo; i < hi; ++i) b_[i] = scalar_ * c_[i];
        break;
      case StreamOp::Add:
        for (std::size_t i = lo; i < hi; ++i) c_[i] = a_[i] + b_[i];
        break;
      case StreamOp::Triad:
        for (std::size_t i = lo; i < hi; ++i) a_[i] = b_[i] + scalar_ * c_[i];
        break;
    }
  });
}

bool StreamBenchmark::verify(StreamOp op) const {
  // After the canonical STREAM sequence starting from a=1, b=2, c=0 the
  // checks below hold; verify only the array the op wrote.
  for (std::size_t i = 0; i < a_.size(); ++i) {
    double expected = 0.0, got = 0.0;
    switch (op) {
      case StreamOp::Copy: expected = a_[i]; got = c_[i]; break;
      case StreamOp::Scale: expected = scalar_ * c_[i]; got = b_[i]; break;
      case StreamOp::Add: expected = a_[i] + b_[i]; got = c_[i]; break;
      case StreamOp::Triad: expected = b_[i] + scalar_ * c_[i]; got = a_[i];
        break;
    }
    if (std::abs(expected - got) > 1e-12) return false;
  }
  return true;
}

perfmodel::WorkProfile StreamBenchmark::profile(StreamOp op) const {
  const auto n = static_cast<double>(a_.size());
  return {streamFlopsPerElement(op) * n, streamBytesPerElement(op) * n,
          AccessPattern::Streaming, 1.0, 1.0, 0.0};
}

double StreamBenchmark::modeledBandwidth(const arch::Platform& platform,
                                         StreamOp op, int cores,
                                         double frequencyHz) {
  const perfmodel::ExecutionModel model;
  // Two-operand ops run marginally faster than three-operand ones on most
  // memory controllers; read-modify-write ratios differ slightly per op.
  double opFactor = 1.0;
  switch (op) {
    case StreamOp::Copy: opFactor = 1.00; break;
    case StreamOp::Scale: opFactor = 0.985; break;
    case StreamOp::Add: opFactor = 1.03; break;
    case StreamOp::Triad: opFactor = 1.02; break;
  }
  return opFactor * model.achievableBandwidth(platform,
                                              AccessPattern::Streaming, cores,
                                              frequencyHz);
}

}  // namespace tibsim::kernels
