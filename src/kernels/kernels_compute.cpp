// Compute-bound members of the Table-2 suite: dmmm, 2dcon, nbody, amcd.

#include <algorithm>
#include <cmath>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/rng.hpp"
#include "tibsim/kernels/suite.hpp"

namespace tibsim::kernels {

using perfmodel::AccessPattern;
using perfmodel::WorkProfile;

// ---------------------------------------------------------------------------
// dmmm: blocked C = A * B
// ---------------------------------------------------------------------------

void Dmmm::setup(std::size_t n, std::uint64_t seed) {
  TIB_REQUIRE(n >= 2);
  Rng rng(seed);
  n_ = n;
  a_.resize(n * n);
  b_.resize(n * n);
  c_.assign(n * n, 0.0);
  for (auto& v : a_) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b_) v = rng.uniform(-1.0, 1.0);
}

void Dmmm::multiplyRows(std::size_t rowBegin, std::size_t rowEnd) {
  constexpr std::size_t kBlock = 48;
  for (std::size_t i = rowBegin; i < rowEnd; ++i)
    std::fill(c_.begin() + static_cast<std::ptrdiff_t>(i * n_),
              c_.begin() + static_cast<std::ptrdiff_t>((i + 1) * n_), 0.0);
  for (std::size_t kk = 0; kk < n_; kk += kBlock) {
    const std::size_t kEnd = std::min(kk + kBlock, n_);
    for (std::size_t i = rowBegin; i < rowEnd; ++i) {
      for (std::size_t k = kk; k < kEnd; ++k) {
        const double aik = a_[i * n_ + k];
        const double* brow = &b_[k * n_];
        double* crow = &c_[i * n_];
        for (std::size_t j = 0; j < n_; ++j) crow[j] += aik * brow[j];
      }
    }
  }
}

void Dmmm::runSerial() {
  TIB_REQUIRE(n_ > 0);
  multiplyRows(0, n_);
}

void Dmmm::runParallel(ThreadPool& pool) {
  TIB_REQUIRE(n_ > 0);
  pool.parallelFor(n_, [this](std::size_t b, std::size_t e, std::size_t) {
    multiplyRows(b, e);
  });
}

bool Dmmm::verify() const {
  // Spot-check a handful of entries against the naive dot product.
  const std::size_t stride = std::max<std::size_t>(1, n_ / 7);
  for (std::size_t i = 0; i < n_; i += stride) {
    for (std::size_t j = 0; j < n_; j += stride) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n_; ++k) acc += a_[i * n_ + k] * b_[k * n_ + j];
      if (std::abs(c_[i * n_ + j] - acc) >
          1e-9 * static_cast<double>(n_))
        return false;
    }
  }
  return true;
}

WorkProfile Dmmm::currentProfile() const {
  const auto n = static_cast<double>(n_);
  // Blocked: each B panel is streamed n/kBlock times; A and C stream once.
  const double bytes = 8.0 * (n * n * (2.0 + n / 48.0));
  return {2.0 * n * n * n, bytes, AccessPattern::Blocked, 0.9, 1.0, 0.0};
}

// ---------------------------------------------------------------------------
// 2dcon: 5x5 convolution
// ---------------------------------------------------------------------------

void Conv2D::setup(std::size_t n, std::uint64_t seed) {
  TIB_REQUIRE(n >= 8);
  Rng rng(seed);
  n_ = n;
  image_.resize(n * n);
  result_.assign(n * n, 0.0);
  for (auto& v : image_) v = rng.uniform(0.0, 1.0);
  double sum = 0.0;
  for (auto& row : filter_)
    for (auto& w : row) {
      w = rng.uniform(0.0, 1.0);
      sum += w;
    }
  for (auto& row : filter_)
    for (auto& w : row) w /= sum;  // normalised blur kernel
}

void Conv2D::convolveRows(std::size_t rowBegin, std::size_t rowEnd) {
  const auto n = static_cast<std::ptrdiff_t>(n_);
  for (std::size_t r = rowBegin; r < rowEnd; ++r) {
    for (std::size_t c = 0; c < n_; ++c) {
      double acc = 0.0;
      for (int dy = -2; dy <= 2; ++dy) {
        for (int dx = -2; dx <= 2; ++dx) {
          // Clamped borders.
          const auto yy = std::clamp<std::ptrdiff_t>(
              static_cast<std::ptrdiff_t>(r) + dy, 0, n - 1);
          const auto xx = std::clamp<std::ptrdiff_t>(
              static_cast<std::ptrdiff_t>(c) + dx, 0, n - 1);
          acc += filter_[dy + 2][dx + 2] *
                 image_[static_cast<std::size_t>(yy * n + xx)];
        }
      }
      result_[r * n_ + c] = acc;
    }
  }
}

void Conv2D::runSerial() {
  TIB_REQUIRE(n_ > 0);
  convolveRows(0, n_);
}

void Conv2D::runParallel(ThreadPool& pool) {
  TIB_REQUIRE(n_ > 0);
  pool.parallelFor(n_, [this](std::size_t b, std::size_t e, std::size_t) {
    convolveRows(b, e);
  });
}

bool Conv2D::verify() const {
  // The filter is normalised and the image is in [0,1]: every output pixel
  // must stay in [0,1], and the total mass must be approximately preserved
  // (borders are clamped, so allow a modest tolerance).
  double inSum = 0.0, outSum = 0.0;
  for (std::size_t i = 0; i < image_.size(); ++i) {
    if (result_[i] < -1e-12 || result_[i] > 1.0 + 1e-12) return false;
    inSum += image_[i];
    outSum += result_[i];
  }
  return std::abs(inSum - outSum) <
         0.05 * inSum + 1.0;  // clamped borders shift a little mass
}

WorkProfile Conv2D::currentProfile() const {
  const auto n = static_cast<double>(n_ * n_);
  return {2.0 * 25.0 * n, 16.0 * n, AccessPattern::Spatial, 0.85, 1.0, 0.0};
}

// ---------------------------------------------------------------------------
// nbody: all-pairs accelerations
// ---------------------------------------------------------------------------

void NBody::setup(std::size_t n, std::uint64_t seed) {
  TIB_REQUIRE(n >= 2);
  Rng rng(seed);
  px_.resize(n);
  py_.resize(n);
  pz_.resize(n);
  mass_.resize(n);
  ax_.assign(n, 0.0);
  ay_.assign(n, 0.0);
  az_.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    px_[i] = rng.uniform(-1.0, 1.0);
    py_[i] = rng.uniform(-1.0, 1.0);
    pz_[i] = rng.uniform(-1.0, 1.0);
    mass_[i] = rng.uniform(0.1, 1.0);
  }
}

void NBody::accelerate(std::size_t begin, std::size_t end) {
  constexpr double kSoftening = 1e-3;
  const std::size_t n = px_.size();
  for (std::size_t i = begin; i < end; ++i) {
    double axAcc = 0.0, ayAcc = 0.0, azAcc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double dx = px_[j] - px_[i];
      const double dy = py_[j] - py_[i];
      const double dz = pz_[j] - pz_[i];
      const double d2 = dx * dx + dy * dy + dz * dz + kSoftening;
      const double inv = 1.0 / std::sqrt(d2);
      const double w = mass_[j] * inv * inv * inv;
      axAcc += w * dx;
      ayAcc += w * dy;
      azAcc += w * dz;
    }
    ax_[i] = axAcc;
    ay_[i] = ayAcc;
    az_[i] = azAcc;
  }
}

void NBody::runSerial() {
  TIB_REQUIRE(!px_.empty());
  accelerate(0, px_.size());
}

void NBody::runParallel(ThreadPool& pool) {
  TIB_REQUIRE(!px_.empty());
  pool.parallelFor(px_.size(), [this](std::size_t b, std::size_t e,
                                      std::size_t) { accelerate(b, e); });
}

bool NBody::verify() const {
  // Newton's third law: sum of mass-weighted accelerations is ~zero.
  double fx = 0.0, fy = 0.0, fz = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < px_.size(); ++i) {
    fx += mass_[i] * ax_[i];
    fy += mass_[i] * ay_[i];
    fz += mass_[i] * az_[i];
    scale += mass_[i] * (std::abs(ax_[i]) + std::abs(ay_[i]) +
                         std::abs(az_[i]));
  }
  const double tol = 1e-9 * std::max(1.0, scale);
  return std::abs(fx) < tol && std::abs(fy) < tol && std::abs(fz) < tol;
}

WorkProfile NBody::currentProfile() const {
  const auto n = static_cast<double>(px_.size());
  // ~20 FLOPs per interaction (incl. rsqrt), working set is cache resident.
  return {20.0 * n * n, 32.0 * n, AccessPattern::Irregular, 0.75, 1.0, 0.0};
}

// ---------------------------------------------------------------------------
// amcd: Metropolis MCMC sampling of a standard normal
// ---------------------------------------------------------------------------

double Amcd::chain(std::uint64_t seed, std::size_t steps) const {
  Rng rng(seed);
  double x = 0.0;
  double sumSq = 0.0;
  std::size_t accepted = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    const double candidate = x + rng.uniform(-1.5, 1.5);
    // Metropolis acceptance for pi(x) ∝ exp(-x^2/2).
    const double logRatio = 0.5 * (x * x - candidate * candidate);
    if (logRatio >= 0.0 || rng.nextDouble() < std::exp(logRatio)) {
      x = candidate;
      ++accepted;
    }
    sumSq += x * x;
  }
  (void)accepted;
  return sumSq / static_cast<double>(steps);
}

void Amcd::setup(std::size_t n, std::uint64_t seed) {
  TIB_REQUIRE(n >= 1000);
  samples_ = n;
  seed_ = seed;
  estimate_ = 0.0;
}

void Amcd::runSerial() {
  TIB_REQUIRE(samples_ > 0);
  estimate_ = chain(seed_, samples_);
}

void Amcd::runParallel(ThreadPool& pool) {
  TIB_REQUIRE(samples_ > 0);
  const std::size_t threads = pool.threadCount();
  const std::size_t perChain = samples_ / threads;
  std::vector<double> partial(threads, 0.0);
  pool.parallelFor(threads, [this, perChain, &partial](
                                std::size_t b, std::size_t e, std::size_t) {
    for (std::size_t c = b; c < e; ++c)
      partial[c] = chain(seed_ + 0x9e37ULL * (c + 1), perChain);
  });
  double acc = 0.0;
  for (double v : partial) acc += v;
  estimate_ = acc / static_cast<double>(threads);
}

bool Amcd::verify() const {
  // E[x^2] of a standard normal is 1; MCMC error shrinks ~1/sqrt(n).
  const double tol =
      12.0 / std::sqrt(static_cast<double>(samples_)) + 0.02;
  return std::abs(estimate_ - 1.0) < tol;
}

WorkProfile Amcd::currentProfile() const {
  const auto n = static_cast<double>(samples_);
  // ~15 FLOPs per Metropolis step (proposal, log-ratio, exp, accumulate).
  return {15.0 * n, 0.0, AccessPattern::Resident, 0.95, 1.0, 0.0};
}

}  // namespace tibsim::kernels
