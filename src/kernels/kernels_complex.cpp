// Remaining Table-2 kernels with more involved control flow:
// 3dstc (stencil), fft, msort.

#include <algorithm>
#include <bit>
#include <cmath>
#include <numbers>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/rng.hpp"
#include "tibsim/kernels/suite.hpp"

namespace tibsim::kernels {

using perfmodel::AccessPattern;
using perfmodel::WorkProfile;

// ---------------------------------------------------------------------------
// 3dstc: 7-point stencil sweep over an n^3 grid
// ---------------------------------------------------------------------------

void Stencil3D::setup(std::size_t n, std::uint64_t seed) {
  TIB_REQUIRE(n >= 4);
  Rng rng(seed);
  n_ = n;
  in_.resize(n * n * n);
  out_.assign(n * n * n, 0.0);
  for (auto& v : in_) v = rng.uniform(0.0, 1.0);
}

void Stencil3D::sweepPlanes(std::size_t zBegin, std::size_t zEnd) {
  const std::size_t n = n_;
  const std::size_t plane = n * n;
  auto at = [&](std::size_t x, std::size_t y, std::size_t z) {
    return in_[z * plane + y * n + x];
  };
  for (std::size_t z = std::max<std::size_t>(zBegin, 1);
       z < std::min(zEnd, n - 1); ++z) {
    for (std::size_t y = 1; y + 1 < n; ++y) {
      for (std::size_t x = 1; x + 1 < n; ++x) {
        out_[z * plane + y * n + x] =
            (1.0 / 7.0) * (at(x, y, z) + at(x - 1, y, z) + at(x + 1, y, z) +
                           at(x, y - 1, z) + at(x, y + 1, z) +
                           at(x, y, z - 1) + at(x, y, z + 1));
      }
    }
  }
}

void Stencil3D::runSerial() {
  TIB_REQUIRE(n_ > 0);
  sweepPlanes(0, n_);
}

void Stencil3D::runParallel(ThreadPool& pool) {
  TIB_REQUIRE(n_ > 0);
  pool.parallelFor(n_, [this](std::size_t b, std::size_t e, std::size_t) {
    sweepPlanes(b, e);
  });
}

bool Stencil3D::verify() const {
  // Averaging stencil over values in [0,1]: interior outputs must stay in
  // [0,1]; spot-check a diagonal of points against direct evaluation.
  const std::size_t n = n_;
  const std::size_t plane = n * n;
  for (std::size_t i = 1; i + 1 < n; i += std::max<std::size_t>(1, n / 9)) {
    const double expected =
        (1.0 / 7.0) *
        (in_[i * plane + i * n + i] + in_[i * plane + i * n + i - 1] +
         in_[i * plane + i * n + i + 1] + in_[i * plane + (i - 1) * n + i] +
         in_[i * plane + (i + 1) * n + i] + in_[(i - 1) * plane + i * n + i] +
         in_[(i + 1) * plane + i * n + i]);
    if (std::abs(out_[i * plane + i * n + i] - expected) > 1e-12) return false;
  }
  for (double v : out_)
    if (v < -1e-12 || v > 1.0 + 1e-12) return false;
  return true;
}

WorkProfile Stencil3D::currentProfile() const {
  const auto n = static_cast<double>(n_ * n_ * n_);
  return {8.0 * n, 16.0 * n, AccessPattern::Strided, 0.8, 1.0, 0.0};
}

// ---------------------------------------------------------------------------
// fft: iterative radix-2 Cooley-Tukey
// ---------------------------------------------------------------------------

void Fft1D::setup(std::size_t n, std::uint64_t seed) {
  TIB_REQUIRE_MSG(n >= 8 && std::has_single_bit(n),
                  "FFT size must be a power of two");
  Rng rng(seed);
  n_ = n;
  data_.resize(n);
  for (auto& v : data_)
    v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  original_ = data_;
}

void Fft1D::bitReverse() {
  const std::size_t n = n_;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data_[i], data_[j]);
  }
}

void Fft1D::stages(ThreadPool* pool) {
  const std::size_t n = n_;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    const std::size_t blocks = n / len;
    auto butterflyBlock = [&](std::size_t blockBegin, std::size_t blockEnd) {
      for (std::size_t blk = blockBegin; blk < blockEnd; ++blk) {
        const std::size_t base = blk * len;
        std::complex<double> w(1.0, 0.0);
        for (std::size_t k = 0; k < len / 2; ++k) {
          const auto u = data_[base + k];
          const auto v = data_[base + k + len / 2] * w;
          data_[base + k] = u + v;
          data_[base + k + len / 2] = u - v;
          w *= wlen;
        }
      }
    };
    if (pool != nullptr && blocks >= pool->threadCount()) {
      pool->parallelFor(blocks, [&](std::size_t b, std::size_t e,
                                    std::size_t) { butterflyBlock(b, e); });
    } else {
      butterflyBlock(0, blocks);
    }
  }
}

void Fft1D::runSerial() {
  TIB_REQUIRE(n_ > 0);
  data_ = original_;
  bitReverse();
  stages(nullptr);
}

void Fft1D::runParallel(ThreadPool& pool) {
  TIB_REQUIRE(n_ > 0);
  data_ = original_;
  bitReverse();
  stages(&pool);
}

bool Fft1D::verify() const {
  // Parseval: sum |x|^2 * n == sum |X|^2, plus a direct DFT spot check.
  double inEnergy = 0.0, outEnergy = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    inEnergy += std::norm(original_[i]);
    outEnergy += std::norm(data_[i]);
  }
  if (std::abs(outEnergy - inEnergy * static_cast<double>(n_)) >
      1e-6 * inEnergy * static_cast<double>(n_))
    return false;

  for (std::size_t bin : {std::size_t{0}, n_ / 3, n_ - 1}) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n_; ++t) {
      const double angle = -2.0 * std::numbers::pi *
                           static_cast<double>(bin) *
                           static_cast<double>(t) / static_cast<double>(n_);
      acc += original_[t] * std::complex<double>(std::cos(angle),
                                                 std::sin(angle));
    }
    if (std::abs(acc - data_[bin]) >
        1e-6 * std::sqrt(static_cast<double>(n_)))
      return false;
  }
  return true;
}

WorkProfile Fft1D::currentProfile() const {
  const auto n = static_cast<double>(n_);
  const double stagesCount = std::log2(n);
  return {5.0 * n * stagesCount, 3.0 * 16.0 * n, AccessPattern::Strided,
          0.65, 0.97, 0.0};
}

// ---------------------------------------------------------------------------
// msort: bottom-up merge sort
// ---------------------------------------------------------------------------

void MergeSort::setup(std::size_t n, std::uint64_t seed) {
  TIB_REQUIRE(n >= 2);
  Rng rng(seed);
  data_.resize(n);
  for (auto& v : data_) v = rng.uniform(0.0, 1.0);
  original_ = data_;
  scratch_.assign(n, 0.0);
}

namespace {
void mergeRuns(std::vector<double>& src, std::vector<double>& dst,
               std::size_t lo, std::size_t mid, std::size_t hi) {
  std::size_t i = lo, j = mid, k = lo;
  while (i < mid && j < hi)
    dst[k++] = (src[i] <= src[j]) ? src[i++] : src[j++];
  while (i < mid) dst[k++] = src[i++];
  while (j < hi) dst[k++] = src[j++];
}

/// Bottom-up merge sort of src[lo, hi); result ends up back in src.
void sortRange(std::vector<double>& src, std::vector<double>& scratch,
               std::size_t lo, std::size_t hi) {
  const std::size_t n = hi - lo;
  bool inSrc = true;
  for (std::size_t width = 1; width < n; width *= 2) {
    auto& from = inSrc ? src : scratch;
    auto& to = inSrc ? scratch : src;
    for (std::size_t left = lo; left < hi; left += 2 * width) {
      const std::size_t mid = std::min(left + width, hi);
      const std::size_t right = std::min(left + 2 * width, hi);
      mergeRuns(from, to, left, mid, right);
    }
    inSrc = !inSrc;
  }
  if (!inSrc)
    std::copy(scratch.begin() + static_cast<std::ptrdiff_t>(lo),
              scratch.begin() + static_cast<std::ptrdiff_t>(hi),
              src.begin() + static_cast<std::ptrdiff_t>(lo));
}
}  // namespace

void MergeSort::runSerial() {
  TIB_REQUIRE(!data_.empty());
  data_ = original_;
  sortRange(data_, scratch_, 0, data_.size());
}

void MergeSort::runParallel(ThreadPool& pool) {
  TIB_REQUIRE(!data_.empty());
  data_ = original_;
  const std::size_t n = data_.size();
  const std::size_t threads = pool.threadCount();
  const std::size_t chunk = (n + threads - 1) / threads;

  // Phase 1: each thread sorts its contiguous chunk (barrier at the end —
  // the "barrier operations" this kernel exists to measure).
  pool.parallelFor(threads, [this, n, chunk](std::size_t b, std::size_t e,
                                             std::size_t) {
    for (std::size_t t = b; t < e; ++t) {
      const std::size_t lo = std::min(t * chunk, n);
      const std::size_t hi = std::min(lo + chunk, n);
      if (lo < hi) sortRange(data_, scratch_, lo, hi);
    }
  });

  // Phase 2: log(threads) pairwise merge rounds, each a fork-join barrier.
  for (std::size_t width = chunk; width < n; width *= 2) {
    const std::size_t pairs = (n + 2 * width - 1) / (2 * width);
    pool.parallelFor(pairs, [this, n, width](std::size_t b, std::size_t e,
                                             std::size_t) {
      for (std::size_t p = b; p < e; ++p) {
        const std::size_t left = p * 2 * width;
        const std::size_t mid = std::min(left + width, n);
        const std::size_t right = std::min(left + 2 * width, n);
        mergeRuns(data_, scratch_, left, mid, right);
      }
    });
    std::swap(data_, scratch_);
  }
}

bool MergeSort::verify() const {
  if (!std::is_sorted(data_.begin(), data_.end())) return false;
  // Same multiset as the input: compare sums (cheap permutation check).
  double a = 0.0, b = 0.0;
  for (double v : data_) a += v;
  for (double v : original_) b += v;
  return std::abs(a - b) < 1e-9 * static_cast<double>(data_.size());
}

WorkProfile MergeSort::currentProfile() const {
  const auto n = static_cast<double>(data_.size());
  const double passes = std::log2(n);
  return {n * passes, 16.0 * n * std::min(passes, 6.0),
          AccessPattern::Blocked, 0.35, 0.90, 0.0};
}

}  // namespace tibsim::kernels
