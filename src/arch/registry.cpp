#include "tibsim/arch/registry.hpp"

#include "tibsim/arch/table1.hpp"

namespace tibsim::arch {

// Board power parameters are calibrated against the paper's wall-plug energy
// measurements (Yokogawa WT230, whole platform including power supply):
// at 1 GHz a single-core micro-kernel iteration costs 23.93 J on Tegra 2,
// 19.62 J on Tegra 3, 16.95 J on the Arndale board, and 28.57 J on the Intel
// laptop; all platforms are dominated by non-SoC power, which is why energy
// efficiency *improves* as frequency rises (Section 3.1.1).
//
// Every number lives in the constexpr specs in tibsim/arch/table1.hpp, where
// static_asserts pin the derived peak-FLOPS / bandwidth / DVFS figures to the
// paper's Table 1; this file only inflates those specs into the runtime
// Platform representation (std::string names, std::vector tables).

namespace {

Platform fromSpec(const table1::PlatformSpec& spec) {
  Platform p;
  p.name = spec.name;
  p.shortName = spec.shortName;
  p.soc.name = spec.socName;
  p.soc.core = spec.soc.core;
  p.soc.cores = spec.soc.cores;
  p.soc.threadsPerCore = spec.soc.threadsPerCore;
  p.soc.caches.assign(spec.soc.caches.begin(),
                      spec.soc.caches.begin() +
                          static_cast<std::ptrdiff_t>(spec.soc.cacheCount));
  p.soc.memory = spec.soc.memory;
  p.soc.computeCapableGpu = spec.soc.computeCapableGpu;
  p.soc.dvfs.assign(spec.soc.dvfs.begin(),
                    spec.soc.dvfs.begin() +
                        static_cast<std::ptrdiff_t>(spec.soc.dvfsCount));
  p.dramBytes = static_cast<std::size_t>(spec.dramBytes);
  p.dramType = spec.dramType;
  p.nicAttachment = spec.nicAttachment;
  p.nicLinkRateBytesPerS = spec.nicLinkRateBytesPerS;
  p.power = spec.power;
  return p;
}

}  // namespace

Platform PlatformRegistry::tegra2() { return fromSpec(table1::kTegra2); }

Platform PlatformRegistry::tegra3() { return fromSpec(table1::kTegra3); }

Platform PlatformRegistry::exynos5250() {
  return fromSpec(table1::kExynos5250);
}

Platform PlatformRegistry::corei7_2760qm() {
  return fromSpec(table1::kCorei7_2760qm);
}

Platform PlatformRegistry::armv8Quad2GHz() {
  return fromSpec(table1::kArmv8Quad2GHz);
}

std::vector<Platform> PlatformRegistry::evaluated() {
  return {tegra2(), tegra3(), exynos5250(), corei7_2760qm()};
}

std::vector<Platform> PlatformRegistry::all() {
  auto v = evaluated();
  v.push_back(armv8Quad2GHz());
  return v;
}

}  // namespace tibsim::arch
