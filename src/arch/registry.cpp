#include "tibsim/arch/registry.hpp"

#include "tibsim/common/units.hpp"

namespace tibsim::arch {

using namespace tibsim::units;

// Board power parameters are calibrated against the paper's wall-plug energy
// measurements (Yokogawa WT230, whole platform including power supply):
// at 1 GHz a single-core micro-kernel iteration costs 23.93 J on Tegra 2,
// 19.62 J on Tegra 3, 16.95 J on the Arndale board, and 28.57 J on the Intel
// laptop; all platforms are dominated by non-SoC power, which is why energy
// efficiency *improves* as frequency rises (Section 3.1.1).

Platform PlatformRegistry::tegra2() {
  Platform p;
  p.name = "NVIDIA Tegra 2 (SECO Q7 module + carrier)";
  p.shortName = "Tegra2";
  p.soc.name = "NVIDIA Tegra 2";
  p.soc.core = CpuCoreModel{Microarch::CortexA9,
                            /*fp64FlopsPerCycle=*/1.0,
                            /*maxOutstandingMisses=*/4,
                            /*issueWidth=*/2.0,
                            /*outOfOrder=*/true};
  p.soc.cores = 2;
  p.soc.threadsPerCore = 1;
  p.soc.caches = {{32 * 1024, false}, {1024 * 1024, true}};
  p.soc.memory = MemorySystemModel{/*channels=*/1, /*widthBits=*/32,
                                   mhz(333), gbPerS(2.6), /*ecc=*/false,
                                   /*streamEfficiency=*/0.62,
                                   /*singleCoreBandwidth=*/gbPerS(1.25)};
  p.soc.computeCapableGpu = false;
  p.soc.dvfs = {{mhz(216), 0.77}, {mhz(456), 0.85}, {mhz(608), 0.91},
                {mhz(760), 0.98}, {mhz(912), 1.03}, {ghz(1.0), 1.08}};
  p.dramBytes = static_cast<std::size_t>(gib(1.0));
  p.dramType = "DDR2-667";
  p.nicAttachment = NicAttachment::Pcie;
  p.nicLinkRateBytesPerS = gbps(1.0);
  p.power = BoardPowerParams{/*boardStaticW=*/5.2, /*socStaticW=*/1.6,
                             /*corePeakDynamicW=*/0.85,
                             /*memDynamicWPerGBs=*/0.25,
                             /*nicActiveW=*/0.6};
  return p;
}

Platform PlatformRegistry::tegra3() {
  Platform p;
  p.name = "NVIDIA Tegra 3 (SECO CARMA)";
  p.shortName = "Tegra3";
  p.soc.name = "NVIDIA Tegra 3";
  p.soc.core = CpuCoreModel{Microarch::CortexA9, 1.0, 5, 2.0, true};
  p.soc.cores = 4;
  p.soc.threadsPerCore = 1;
  p.soc.caches = {{32 * 1024, false}, {1024 * 1024, true}};
  p.soc.memory = MemorySystemModel{1, 32, mhz(750), gbPerS(5.86), false,
                                   0.27, gbPerS(1.9)};
  p.soc.computeCapableGpu = false;
  p.soc.dvfs = {{mhz(204), 0.75}, {mhz(475), 0.84}, {mhz(640), 0.90},
                {mhz(860), 0.98}, {ghz(1.0), 1.03}, {ghz(1.2), 1.11},
                {ghz(1.3), 1.15}};
  p.dramBytes = static_cast<std::size_t>(gib(2.0));
  p.dramType = "DDR3L-1600";
  p.nicAttachment = NicAttachment::Pcie;
  p.nicLinkRateBytesPerS = gbps(1.0);
  p.power = BoardPowerParams{4.6, 1.5, 1.05, 0.22, 0.6};
  return p;
}

Platform PlatformRegistry::exynos5250() {
  Platform p;
  p.name = "Samsung Exynos 5250 (Arndale 5)";
  p.shortName = "Exynos5250";
  p.soc.name = "Samsung Exynos 5 Dual";
  p.soc.core = CpuCoreModel{Microarch::CortexA15, 2.0, 6, 3.0, true};
  p.soc.cores = 2;
  p.soc.threadsPerCore = 1;
  p.soc.caches = {{32 * 1024, false}, {1024 * 1024, true}};
  p.soc.memory = MemorySystemModel{2, 32, mhz(800), gbPerS(12.8), false,
                                   0.52, gbPerS(3.4)};
  p.soc.computeCapableGpu = true;  // Mali-T604, OpenCL (experimental driver)
  p.soc.dvfs = {{mhz(200), 0.85}, {mhz(400), 0.90}, {mhz(600), 0.95},
                {mhz(800), 1.00}, {ghz(1.0), 1.05}, {ghz(1.2), 1.11},
                {ghz(1.4), 1.17}, {ghz(1.7), 1.25}};
  p.dramBytes = static_cast<std::size_t>(gib(2.0));
  p.dramType = "DDR3L-1600";
  // The Arndale's GbE is reached through USB 3.0; the board itself exposes
  // only 100 Mb Ethernet (Table 1), and the interconnect study (Fig. 7)
  // drives a 1 GbE link through the USB stack.
  p.nicAttachment = NicAttachment::Usb3;
  p.nicLinkRateBytesPerS = gbps(1.0);
  p.power = BoardPowerParams{4.4, 1.8, 1.9, 0.18, 0.7};
  return p;
}

Platform PlatformRegistry::corei7_2760qm() {
  Platform p;
  p.name = "Intel Core i7-2760QM (Dell Latitude E6420)";
  p.shortName = "Corei7";
  p.soc.name = "Intel Core i7-2760QM";
  p.soc.core = CpuCoreModel{Microarch::SandyBridge, 8.0, 10, 4.0, true};
  p.soc.cores = 4;
  p.soc.threadsPerCore = 2;
  p.soc.caches = {
      {32 * 1024, false}, {256 * 1024, false}, {6 * 1024 * 1024, true}};
  p.soc.memory = MemorySystemModel{2, 64, mhz(800), gbPerS(25.6), false,
                                   0.57, gbPerS(9.5)};
  p.soc.computeCapableGpu = false;  // HD 3000, graphics only
  p.soc.dvfs = {{mhz(800), 0.80}, {ghz(1.2), 0.88}, {ghz(1.6), 0.95},
                {ghz(2.0), 1.05}, {ghz(2.4), 1.15}};
  p.dramBytes = static_cast<std::size_t>(gib(8.0));
  p.dramType = "DDR3-1133";
  p.nicAttachment = NicAttachment::OnChip;
  p.nicLinkRateBytesPerS = gbps(1.0);
  p.power = BoardPowerParams{48.0, 8.0, 9.5, 0.30, 0.8};
  return p;
}

Platform PlatformRegistry::armv8Quad2GHz() {
  Platform p;
  p.name = "Hypothetical 4-core ARMv8 @ 2 GHz";
  p.shortName = "ARMv8x4";
  p.soc.name = "ARMv8 quad (projection)";
  // Same micro-architecture class as Cortex-A15 but with FP64 in the NEON
  // SIMD unit: double the per-cycle FP64 throughput (Section 1).
  p.soc.core = CpuCoreModel{Microarch::CortexA57, 4.0, 8, 3.0, true};
  p.soc.cores = 4;
  p.soc.threadsPerCore = 1;
  p.soc.caches = {{32 * 1024, false}, {2 * 1024 * 1024, true}};
  p.soc.memory = MemorySystemModel{2, 64, mhz(933), gbPerS(25.6), false,
                                   0.60, gbPerS(10.0)};
  p.soc.computeCapableGpu = true;
  p.soc.dvfs = {{mhz(500), 0.85}, {ghz(1.0), 0.95}, {ghz(1.5), 1.05},
                {ghz(2.0), 1.15}};
  p.dramBytes = static_cast<std::size_t>(gib(4.0));
  p.dramType = "LPDDR4 (projected)";
  p.nicAttachment = NicAttachment::OnChip;
  p.nicLinkRateBytesPerS = gbps(10.0);
  p.power = BoardPowerParams{4.0, 2.0, 2.2, 0.15, 0.9};
  return p;
}

std::vector<Platform> PlatformRegistry::evaluated() {
  return {tegra2(), tegra3(), exynos5250(), corei7_2760qm()};
}

std::vector<Platform> PlatformRegistry::all() {
  auto v = evaluated();
  v.push_back(armv8Quad2GHz());
  return v;
}

}  // namespace tibsim::arch
