#include "tibsim/arch/platform.hpp"

#include <algorithm>

#include "tibsim/common/assert.hpp"

namespace tibsim::arch {

std::string toString(Microarch microarch) {
  switch (microarch) {
    case Microarch::CortexA9: return "Cortex-A9";
    case Microarch::CortexA15: return "Cortex-A15";
    case Microarch::CortexA57: return "ARMv8 (A57-class)";
    case Microarch::SandyBridge: return "Sandy Bridge";
  }
  return "unknown";
}

std::string toString(NicAttachment attach) {
  switch (attach) {
    case NicAttachment::Pcie: return "PCIe";
    case NicAttachment::Usb3: return "USB 3.0";
    case NicAttachment::OnChip: return "on-chip";
  }
  return "unknown";
}

double SocModel::peakFlops(double frequencyHz, int activeCores) const {
  TIB_REQUIRE(activeCores >= 1 && activeCores <= cores);
  TIB_REQUIRE(frequencyHz > 0.0);
  return core.fp64FlopsPerCycle * frequencyHz *
         static_cast<double>(activeCores);
}

double SocModel::peakFlops() const {
  return peakFlops(maxFrequencyHz(), cores);
}

double SocModel::maxFrequencyHz() const {
  TIB_REQUIRE(!dvfs.empty());
  return dvfs.back().frequencyHz;
}

double SocModel::minFrequencyHz() const {
  TIB_REQUIRE(!dvfs.empty());
  return dvfs.front().frequencyHz;
}

double SocModel::voltageAt(double frequencyHz) const {
  TIB_REQUIRE(!dvfs.empty());
  const auto& pts = dvfs;
  if (frequencyHz <= pts.front().frequencyHz) return pts.front().voltage;
  if (frequencyHz >= pts.back().frequencyHz) return pts.back().voltage;
  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (frequencyHz <= pts[i].frequencyHz) {
      const auto& lo = pts[i - 1];
      const auto& hi = pts[i];
      const double t =
          (frequencyHz - lo.frequencyHz) / (hi.frequencyHz - lo.frequencyHz);
      return lo.voltage + t * (hi.voltage - lo.voltage);
    }
  }
  return pts.back().voltage;
}

double Platform::bytesPerFlop(double linkRateBytesPerS) const {
  TIB_REQUIRE(linkRateBytesPerS > 0.0);
  return linkRateBytesPerS / peakFlops();
}

}  // namespace tibsim::arch
