#include "tibsim/power/dvfs_governor.hpp"

#include <algorithm>

#include "tibsim/common/assert.hpp"
#include "tibsim/perfmodel/execution_model.hpp"
#include "tibsim/power/power_model.hpp"

namespace tibsim::power {

std::string toString(GovernorPolicy policy) {
  switch (policy) {
    case GovernorPolicy::Performance: return "performance";
    case GovernorPolicy::Powersave: return "powersave";
    case GovernorPolicy::OnDemand: return "ondemand";
    case GovernorPolicy::Conservative: return "conservative";
  }
  return "unknown";
}

DvfsGovernor::DvfsGovernor(arch::Platform platform, Config config)
    : platform_(std::move(platform)), config_(config) {
  TIB_REQUIRE(!platform_.soc.dvfs.empty());
  TIB_REQUIRE(config_.samplePeriodSeconds > 0.0);
  TIB_REQUIRE(config_.upThreshold > 0.0 && config_.upThreshold <= 1.0);
}

std::size_t DvfsGovernor::opIndexAtOrBelow(double frequencyHz) const {
  const auto& dvfs = platform_.soc.dvfs;
  std::size_t index = 0;
  for (std::size_t i = 0; i < dvfs.size(); ++i)
    if (dvfs[i].frequencyHz <= frequencyHz + 1.0) index = i;
  return index;
}

double DvfsGovernor::nextFrequency(double currentHz,
                                   double utilization) const {
  const auto& dvfs = platform_.soc.dvfs;
  switch (config_.policy) {
    case GovernorPolicy::Performance:
      return dvfs.back().frequencyHz;
    case GovernorPolicy::Powersave:
      return dvfs.front().frequencyHz;
    case GovernorPolicy::OnDemand: {
      if (utilization >= config_.upThreshold) return dvfs.back().frequencyHz;
      // Scale down to the lowest point that still covers the load with the
      // threshold margin (the Linux ondemand heuristic).
      const double target =
          currentHz * utilization / config_.upThreshold;
      for (const auto& op : dvfs)
        if (op.frequencyHz >= target) return op.frequencyHz;
      return dvfs.back().frequencyHz;
    }
    case GovernorPolicy::Conservative: {
      const std::size_t index = opIndexAtOrBelow(currentHz);
      if (utilization >= config_.upThreshold) {
        return dvfs[std::min(index + 1, dvfs.size() - 1)].frequencyHz;
      }
      if (utilization < 0.3 && index > 0) return dvfs[index - 1].frequencyHz;
      return currentHz;
    }
  }
  return currentHz;
}

DvfsGovernor::RunResult DvfsGovernor::run(
    std::span<const WorkPhase> phases,
    const perfmodel::WorkProfile& shape) const {
  const perfmodel::ExecutionModel exec;
  const PowerModel powerModel(platform_);
  const double tick = config_.samplePeriodSeconds;

  RunResult result;
  double frequency = config_.policy == GovernorPolicy::Performance
                         ? platform_.soc.maxFrequencyHz()
                         : platform_.soc.minFrequencyHz();
  double freqTimeIntegral = 0.0;
  double busySeconds = 0.0;

  for (const WorkPhase& phase : phases) {
    double remainingFlops = phase.flops;
    while (remainingFlops > 0.0) {
      const double rate = exec.achievableFlops(platform_, shape, frequency);
      const double flopsThisTick = rate * tick;
      const double busy = std::min(1.0, remainingFlops / flopsThisTick);
      remainingFlops -= flopsThisTick;

      LoadState load;
      load.activeCores = 1;
      load.coreUtilization = busy;
      result.energyJ += powerModel.watts(frequency, load) * tick;
      result.seconds += tick;
      busySeconds += busy * tick;
      freqTimeIntegral += frequency * tick;
      result.frequencyTrace.push_back(frequency);
      frequency = nextFrequency(frequency, busy);
    }
    // Idle gap: utilization 0 for its duration, governor keeps sampling.
    double idle = phase.idleSeconds;
    while (idle > 0.0) {
      const double span = std::min(idle, tick);
      result.energyJ +=
          powerModel.watts(frequency, LoadState{1, 0.0, 0.0, false}) * span;
      result.seconds += span;
      freqTimeIntegral += frequency * span;
      result.frequencyTrace.push_back(frequency);
      frequency = nextFrequency(frequency, 0.0);
      idle -= span;
    }
  }

  if (result.seconds > 0.0) {
    result.averageFrequencyHz = freqTimeIntegral / result.seconds;
    result.busyFraction = busySeconds / result.seconds;
  }
  return result;
}

}  // namespace tibsim::power
