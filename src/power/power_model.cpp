#include "tibsim/power/power_model.hpp"

#include <algorithm>
#include <cmath>

#include "tibsim/common/assert.hpp"
#include "tibsim/common/units.hpp"

namespace tibsim::power {

PowerModel::PowerModel(arch::Platform platform)
    : platform_(std::move(platform)) {
  TIB_REQUIRE(!platform_.soc.dvfs.empty());
}

double PowerModel::coreDynamicWatts(double frequencyHz) const {
  const auto& soc = platform_.soc;
  const double fMax = soc.maxFrequencyHz();
  const double vMax = soc.voltageAt(fMax);
  const double v = soc.voltageAt(frequencyHz);
  // P_dyn ∝ f * V^2, anchored at the max operating point.
  return platform_.power.corePeakDynamicW * (frequencyHz / fMax) *
         (v / vMax) * (v / vMax);
}

double PowerModel::watts(double frequencyHz, const LoadState& load) const {
  TIB_REQUIRE(load.activeCores >= 0 && load.activeCores <= platform_.soc.cores);
  TIB_REQUIRE(load.coreUtilization >= 0.0 && load.coreUtilization <= 1.0);
  const auto& p = platform_.power;
  double total = p.boardStaticW + p.socStaticW;
  total += static_cast<double>(load.activeCores) * load.coreUtilization *
           coreDynamicWatts(frequencyHz);
  total += p.memDynamicWPerGBs * (load.memBandwidthBytesPerS / units::kGB);
  if (load.nicActive) total += p.nicActiveW;
  return total;
}

double PowerModel::idleWatts() const {
  return watts(platform_.soc.minFrequencyHz(), LoadState::idle());
}

SimulatedPowerMeter::SimulatedPowerMeter(Config config)
    : config_(config), rng_(config.seed) {
  TIB_REQUIRE(config_.sampleRateHz > 0.0);
  TIB_REQUIRE(config_.relativeError >= 0.0);
}

SimulatedPowerMeter::Reading SimulatedPowerMeter::measure(
    const std::function<double(double)>& powerAtTime, double t0, double t1) {
  TIB_REQUIRE_MSG(t1 > t0, "measurement window must have positive length");
  const double dt = 1.0 / config_.sampleRateHz;
  Reading reading;
  double energy = 0.0;
  // Sample at the middle of each meter interval (the WT230 reports the mean
  // power of its integration window); the final partial window is scaled.
  // Integer window indexing avoids a spurious extra sample from float
  // accumulation when (t1-t0) is an exact multiple of the period.
  const auto windows = static_cast<std::size_t>(
      std::ceil((t1 - t0) * config_.sampleRateHz - 1e-9));
  for (std::size_t w = 0; w < windows; ++w) {
    const double t = t0 + static_cast<double>(w) * dt;
    const double windowEnd = std::min(t + dt, t1);
    const double sampleT = 0.5 * (t + windowEnd);
    double watts = powerAtTime(sampleT);
    watts *= 1.0 + rng_.normal(0.0, config_.relativeError);
    energy += watts * (windowEnd - t);
    ++reading.samples;
  }
  reading.energyJ = energy;
  reading.averageW = energy / (t1 - t0);
  return reading;
}

double mflopsPerWatt(double flops, double seconds, double averageWatts) {
  TIB_REQUIRE(seconds > 0.0 && averageWatts > 0.0);
  return (flops / seconds) / units::kMFLOPS / averageWatts;
}

}  // namespace tibsim::power
