#include "tibsim/common/thread_pool.hpp"

#include <algorithm>

#include "tibsim/common/assert.hpp"

namespace tibsim {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t total = threads;
  if (total == 0) total = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // The calling thread participates, so spawn total-1 workers.
  workers_.reserve(total - 1);
  for (std::size_t i = 1; i < total; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::parallelFor(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  const std::size_t threads = threadCount();
  const std::size_t chunk = (n + threads - 1) / threads;

  Task myTask{0, std::min(chunk, n), 0};
  {
    std::lock_guard lock(mutex_);
    TIB_REQUIRE_MSG(body_ == nullptr, "parallelFor is not reentrant");
    tasks_.clear();
    for (std::size_t t = 1; t < threads; ++t) {
      const std::size_t begin = std::min(t * chunk, n);
      const std::size_t end = std::min(begin + chunk, n);
      tasks_.push_back(Task{begin, end, t});
    }
    pending_ = tasks_.size();
    body_ = &body;
    ++generation_;
  }
  wake_.notify_all();

  if (myTask.begin < myTask.end) body(myTask.begin, myTask.end, myTask.thread);

  std::unique_lock lock(mutex_);
  done_.wait(lock, [this] { return pending_ == 0; });
  body_ = nullptr;
}

void ThreadPool::workerLoop(std::size_t index) {
  std::size_t seen = 0;
  while (true) {
    Task task{};
    const std::function<void(std::size_t, std::size_t, std::size_t)>* body =
        nullptr;
    {
      std::unique_lock lock(mutex_);
      wake_.wait(lock, [this, &seen] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      for (auto& t : tasks_) {
        if (t.thread == index) {
          task = t;
          body = body_;
          break;
        }
      }
      if (body == nullptr) continue;  // no chunk for this worker
    }
    if (task.begin < task.end) (*body)(task.begin, task.end, task.thread);
    {
      std::lock_guard lock(mutex_);
      --pending_;
    }
    done_.notify_one();
  }
}

// ---------------------------------------------------------------------------
// TaskPool
// ---------------------------------------------------------------------------

TaskPool::TaskPool(std::size_t threads) {
  std::size_t total = threads;
  if (total == 0)
    total = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(total - 1);
  for (std::size_t i = 1; i < total; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& w : workers_) w.join();
}

bool TaskPool::runOneIndex(std::unique_lock<std::mutex>& lock,
                          const std::shared_ptr<Batch>& batch) {
  if (batch->next >= batch->n) return false;
  const std::size_t index = batch->next++;
  if (batch->next == batch->n) {
    // Batch exhausted: stop offering it to workers.
    std::erase(open_, batch);
  }
  lock.unlock();
  std::exception_ptr error;
  try {
    (*batch->fn)(index);
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  if (error && !batch->error) batch->error = error;
  ++batch->done;
  if (batch->done == batch->n) done_.notify_all();
  return true;
}

void TaskPool::parallelFor(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->n = n;

  std::unique_lock lock(mutex_);
  open_.push_back(batch);
  if (n > 1) wake_.notify_all();
  // Help run this batch; in-flight indices claimed by workers may still be
  // running after the last claim, so wait for the completion count.
  while (runOneIndex(lock, batch)) {
  }
  done_.wait(lock, [&batch] { return batch->done == batch->n; });
  if (batch->error) std::rethrow_exception(batch->error);
}

void TaskPool::workerLoop() {
  std::unique_lock lock(mutex_);
  while (true) {
    wake_.wait(lock, [this] { return stop_ || !open_.empty(); });
    if (stop_) return;
    const std::shared_ptr<Batch> batch = open_.front();
    runOneIndex(lock, batch);
  }
}

}  // namespace tibsim
