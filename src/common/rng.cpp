#include "tibsim/common/rng.hpp"

#include <cmath>

#include "tibsim/common/assert.hpp"

namespace tibsim {

double Rng::normal(double mean, double stddev) {
  // Box–Muller; draw u1 away from 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = nextDouble();
  } while (u1 <= 1e-300);
  const double u2 = nextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::exponential(double rate) {
  TIB_REQUIRE(rate > 0.0);
  double u = 0.0;
  do {
    u = nextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

}  // namespace tibsim
