#include "tibsim/common/regression.hpp"

#include <cmath>
#include <vector>

#include "tibsim/common/assert.hpp"

namespace tibsim {

LinearFit fitLinear(std::span<const double> xs, std::span<const double> ys) {
  TIB_REQUIRE(xs.size() == ys.size());
  TIB_REQUIRE(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());

  double sx = 0.0, sy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  TIB_REQUIRE_MSG(sxx > 0.0, "x values must not all be equal");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  // r^2 = 1 - SS_res / SS_tot; a constant-y series fits perfectly.
  if (syy > 0.0) {
    double ssRes = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - fit.at(xs[i]);
      ssRes += e * e;
    }
    fit.r2 = 1.0 - ssRes / syy;
  } else {
    fit.r2 = 1.0;
  }
  return fit;
}

double ExponentialFit::at(double x) const {
  return a * std::exp(b * (x - x0));
}

double ExponentialFit::doublingTime() const {
  TIB_REQUIRE(b != 0.0);
  return std::log(2.0) / b;
}

double ExponentialFit::growthPerUnit() const { return std::exp(b); }

ExponentialFit fitExponential(std::span<const double> xs,
                              std::span<const double> ys) {
  TIB_REQUIRE(xs.size() == ys.size());
  TIB_REQUIRE(!xs.empty());
  // Centre x so exp(intercept) stays representable when x is e.g. a
  // calendar year.
  double x0 = 0.0;
  for (double x : xs) x0 += x;
  x0 /= static_cast<double>(xs.size());

  std::vector<double> xc, logy;
  xc.reserve(xs.size());
  logy.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    TIB_REQUIRE_MSG(ys[i] > 0.0,
                    "exponential fit requires positive y values");
    xc.push_back(xs[i] - x0);
    logy.push_back(std::log(ys[i]));
  }
  const LinearFit lin = fitLinear(xc, logy);
  ExponentialFit fit;
  fit.a = std::exp(lin.intercept);
  fit.b = lin.slope;
  fit.r2 = lin.r2;
  fit.x0 = x0;
  return fit;
}

double crossover(const ExponentialFit& lhs, const ExponentialFit& rhs) {
  TIB_REQUIRE_MSG(lhs.b != rhs.b, "parallel growth curves never cross");
  // a1*exp(b1 (x-x01)) = a2*exp(b2 (x-x02))
  //   => x = (ln(a2/a1) + b1 x01 - b2 x02) / (b1 - b2)
  return (std::log(rhs.a / lhs.a) + lhs.b * lhs.x0 - rhs.b * rhs.x0) /
         (lhs.b - rhs.b);
}

}  // namespace tibsim
