#include "tibsim/common/statistics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "tibsim/common/assert.hpp"

namespace tibsim::stats {

double mean(std::span<const double> xs) {
  TIB_REQUIRE(!xs.empty());
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  TIB_REQUIRE(!xs.empty());
  double logSum = 0.0;
  for (double x : xs) {
    TIB_REQUIRE_MSG(x > 0.0, "geomean requires positive values");
    logSum += std::log(x);
  }
  return std::exp(logSum / static_cast<double>(xs.size()));
}

double stddev(std::span<const double> xs) {
  TIB_REQUIRE(xs.size() >= 2);
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  TIB_REQUIRE(!xs.empty());
  TIB_REQUIRE(p >= 0.0 && p <= 100.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double min(std::span<const double> xs) {
  TIB_REQUIRE(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  TIB_REQUIRE(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double sum(std::span<const double> xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

double harmonicMean(std::span<const double> xs) {
  TIB_REQUIRE(!xs.empty());
  double acc = 0.0;
  for (double x : xs) {
    TIB_REQUIRE_MSG(x > 0.0, "harmonic mean requires positive values");
    acc += 1.0 / x;
  }
  return static_cast<double>(xs.size()) / acc;
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
  TIB_REQUIRE(n_ > 0);
  return mean_;
}

double Accumulator::variance() const {
  TIB_REQUIRE(n_ >= 2);
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  TIB_REQUIRE(n_ > 0);
  return min_;
}

double Accumulator::max() const {
  TIB_REQUIRE(n_ > 0);
  return max_;
}

}  // namespace tibsim::stats
