#include "tibsim/common/result_set.hpp"

#include <cctype>
#include <sstream>

#include "tibsim/common/assert.hpp"

namespace tibsim {

namespace {

json::Value seriesToJson(const Series& series) {
  json::Value v = json::Value::object();
  v["name"] = series.name;
  json::Value xs = json::Value::array();
  for (const double x : series.x) xs.push(x);
  json::Value ys = json::Value::array();
  for (const double y : series.y) ys.push(y);
  v["x"] = std::move(xs);
  v["y"] = std::move(ys);
  return v;
}

Series seriesFromJson(const json::Value& v) {
  Series series;
  const json::Value* name = v.find("name");
  TIB_REQUIRE_MSG(name != nullptr, "series is missing \"name\"");
  series.name = name->asString();
  const json::Value* xs = v.find("x");
  const json::Value* ys = v.find("y");
  TIB_REQUIRE_MSG(xs != nullptr && ys != nullptr,
                  "series is missing \"x\"/\"y\"");
  for (const auto& x : xs->items()) series.x.push_back(x.asDouble());
  for (const auto& y : ys->items()) series.y.push_back(y.asDouble());
  return series;
}

std::string csvQuote(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// File-system-safe stem from a table/chart name.
std::string slug(const std::string& name) {
  std::string out;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)))
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    else if (!out.empty() && out.back() != '_')
      out += '_';
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out.empty() ? "unnamed" : out;
}

}  // namespace

json::Value ResultSet::toJson(const ResultSet& results) {
  json::Value doc = json::Value::object();

  json::Value tables = json::Value::array();
  for (const ResultTable& t : results.tables_) {
    json::Value table = json::Value::object();
    table["name"] = t.name;
    json::Value headers = json::Value::array();
    for (const auto& h : t.table.headers()) headers.push(h);
    table["headers"] = std::move(headers);
    json::Value rows = json::Value::array();
    for (const auto& row : t.table.rows()) {
      json::Value cells = json::Value::array();
      for (const auto& cell : row) cells.push(cell);
      rows.push(std::move(cells));
    }
    table["rows"] = std::move(rows);
    tables.push(std::move(table));
  }
  doc["tables"] = std::move(tables);

  json::Value charts = json::Value::array();
  for (const ResultChart& c : results.charts_) {
    json::Value chart = json::Value::object();
    chart["name"] = c.name;
    chart["logX"] = c.options.logX;
    chart["logY"] = c.options.logY;
    chart["xLabel"] = c.options.xLabel;
    chart["yLabel"] = c.options.yLabel;
    json::Value series = json::Value::array();
    for (const Series& s : c.series) series.push(seriesToJson(s));
    chart["series"] = std::move(series);
    charts.push(std::move(chart));
  }
  doc["charts"] = std::move(charts);

  json::Value metrics = json::Value::array();
  for (const ResultMetric& m : results.metrics_) {
    json::Value metric = json::Value::object();
    metric["name"] = m.name;
    metric["value"] = m.value;
    metric["unit"] = m.unit;
    metrics.push(std::move(metric));
  }
  doc["metrics"] = std::move(metrics);

  json::Value notes = json::Value::array();
  for (const std::string& note : results.notes_) notes.push(note);
  doc["notes"] = std::move(notes);

  return doc;
}

ResultSet ResultSet::fromJson(const json::Value& document) {
  ResultSet results;
  if (const json::Value* tables = document.find("tables")) {
    for (const auto& t : tables->items()) {
      const json::Value* headers = t.find("headers");
      TIB_REQUIRE_MSG(headers != nullptr, "table is missing \"headers\"");
      std::vector<std::string> headerCells;
      for (const auto& h : headers->items())
        headerCells.push_back(h.asString());
      TextTable table(headerCells);
      if (const json::Value* rows = t.find("rows")) {
        for (const auto& row : rows->items()) {
          std::vector<std::string> cells;
          for (const auto& cell : row.items())
            cells.push_back(cell.asString());
          table.addRow(std::move(cells));
        }
      }
      const json::Value* name = t.find("name");
      TIB_REQUIRE_MSG(name != nullptr, "table is missing \"name\"");
      results.addTable(name->asString(), std::move(table));
    }
  }
  if (const json::Value* charts = document.find("charts")) {
    for (const auto& c : charts->items()) {
      ChartOptions options;
      if (const json::Value* v = c.find("logX")) options.logX = v->asBool();
      if (const json::Value* v = c.find("logY")) options.logY = v->asBool();
      if (const json::Value* v = c.find("xLabel"))
        options.xLabel = v->asString();
      if (const json::Value* v = c.find("yLabel"))
        options.yLabel = v->asString();
      const json::Value* name = c.find("name");
      TIB_REQUIRE_MSG(name != nullptr, "chart is missing \"name\"");
      options.title = name->asString();
      std::vector<Series> series;
      if (const json::Value* list = c.find("series"))
        for (const auto& s : list->items())
          series.push_back(seriesFromJson(s));
      results.addChart(name->asString(), std::move(series),
                       std::move(options));
    }
  }
  if (const json::Value* metrics = document.find("metrics")) {
    for (const auto& m : metrics->items()) {
      const json::Value* name = m.find("name");
      const json::Value* value = m.find("value");
      TIB_REQUIRE_MSG(name != nullptr && value != nullptr,
                      "metric is missing \"name\"/\"value\"");
      const json::Value* unit = m.find("unit");
      results.addMetric(name->asString(), value->asDouble(),
                        unit != nullptr ? unit->asString() : "");
    }
  }
  if (const json::Value* notes = document.find("notes"))
    for (const auto& note : notes->items())
      results.addNote(note.asString());
  return results;
}

std::vector<std::pair<std::string, std::string>> ResultSet::toCsvFiles()
    const {
  std::vector<std::pair<std::string, std::string>> files;
  for (const ResultTable& t : tables_)
    files.emplace_back(slug(t.name), t.table.toCsv());
  for (const ResultChart& c : charts_) {
    // Charts flatten to long form: series,x,y — series may have distinct
    // x grids, so a wide table is not generally possible.
    std::string csv = "series,x,y\n";
    for (const Series& s : c.series) {
      TIB_REQUIRE(s.x.size() == s.y.size());
      for (std::size_t i = 0; i < s.x.size(); ++i) {
        csv += csvQuote(s.name);
        csv += ',';
        csv += json::formatNumber(s.x[i]);
        csv += ',';
        csv += json::formatNumber(s.y[i]);
        csv += '\n';
      }
    }
    files.emplace_back(slug(c.name), std::move(csv));
  }
  if (!metrics_.empty()) {
    std::string csv = "metric,value,unit\n";
    for (const ResultMetric& m : metrics_) {
      csv += csvQuote(m.name);
      csv += ',';
      csv += json::formatNumber(m.value);
      csv += ',';
      csv += csvQuote(m.unit);
      csv += '\n';
    }
    files.emplace_back("metrics", std::move(csv));
  }
  return files;
}

std::string ResultSet::renderText() const {
  std::ostringstream out;
  for (const ResultTable& t : tables_) {
    out << "-- " << t.name << " --\n" << t.table.render() << '\n';
  }
  for (const ResultChart& c : charts_) {
    ChartOptions options = c.options;
    if (options.title.empty()) options.title = c.name;
    out << renderChart(c.series, options) << '\n';
  }
  if (!metrics_.empty()) {
    TextTable table({"metric", "value", "unit"});
    for (const ResultMetric& m : metrics_)
      table.addRow({m.name, fmt(m.value, 3), m.unit});
    out << "-- metrics --\n" << table.render() << '\n';
  }
  for (const std::string& note : notes_) out << "  NOTE: " << note << "\n";
  return out.str();
}

}  // namespace tibsim
