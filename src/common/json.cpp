#include "tibsim/common/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "tibsim/common/assert.hpp"

namespace tibsim::json {

std::string formatNumber(double value) {
  if (!std::isfinite(value)) return "null";
  char buffer[32];
  const auto result =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  TIB_ASSERT(result.ec == std::errc{});
  return std::string(buffer, result.ptr);
}

bool Value::asBool() const {
  TIB_REQUIRE_MSG(isBool(), "json value is not a boolean");
  return bool_;
}

double Value::asDouble() const {
  TIB_REQUIRE_MSG(isNumber(), "json value is not a number");
  return number_;
}

const std::string& Value::asString() const {
  TIB_REQUIRE_MSG(isString(), "json value is not a string");
  return string_;
}

std::size_t Value::size() const {
  if (isArray()) return array_.size();
  if (isObject()) return object_.size();
  return 0;
}

Value& Value::push(Value element) {
  if (isNull()) type_ = Type::Array;
  TIB_REQUIRE_MSG(isArray(), "json push target is not an array");
  array_.push_back(std::move(element));
  return array_.back();
}

const Value& Value::at(std::size_t index) const {
  TIB_REQUIRE_MSG(isArray() && index < array_.size(),
                  "json array index out of range");
  return array_[index];
}

const Value::Array& Value::items() const {
  TIB_REQUIRE_MSG(isArray(), "json value is not an array");
  return array_;
}

Value& Value::operator[](const std::string& key) {
  if (isNull()) type_ = Type::Object;
  TIB_REQUIRE_MSG(isObject(), "json subscript target is not an object");
  for (auto& [name, value] : object_)
    if (name == key) return value;
  object_.emplace_back(key, Value());
  return object_.back().second;
}

const Value* Value::find(const std::string& key) const {
  if (!isObject()) return nullptr;
  for (const auto& [name, value] : object_)
    if (name == key) return &value;
  return nullptr;
}

const Value::Object& Value::members() const {
  TIB_REQUIRE_MSG(isObject(), "json value is not an object");
  return object_;
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Value::Type::Null:
      return true;
    case Value::Type::Boolean:
      return a.bool_ == b.bool_;
    case Value::Type::Number:
      return a.number_ == b.number_;
    case Value::Type::String:
      return a.string_ == b.string_;
    case Value::Type::Array:
      return a.array_ == b.array_;
    case Value::Type::Object:
      return a.object_ == b.object_;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dumpTo(const Value& v, std::string& out, int indent, int depth) {
  const bool pretty = indent >= 0;
  const std::string pad =
      pretty ? std::string(static_cast<std::size_t>(indent) *
                               static_cast<std::size_t>(depth + 1),
                           ' ')
             : std::string();
  const std::string closePad =
      pretty ? std::string(static_cast<std::size_t>(indent) *
                               static_cast<std::size_t>(depth),
                           ' ')
             : std::string();
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";

  switch (v.type()) {
    case Value::Type::Null:
      out += "null";
      break;
    case Value::Type::Boolean:
      out += v.asBool() ? "true" : "false";
      break;
    case Value::Type::Number:
      out += formatNumber(v.asDouble());
      break;
    case Value::Type::String:
      appendEscaped(out, v.asString());
      break;
    case Value::Type::Array: {
      if (v.items().empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const Value& item : v.items()) {
        if (!first) out += ',';
        first = false;
        out += nl;
        out += pad;
        dumpTo(item, out, indent, depth + 1);
      }
      out += nl;
      out += closePad;
      out += ']';
      break;
    }
    case Value::Type::Object: {
      if (v.members().empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : v.members()) {
        if (!first) out += ',';
        first = false;
        out += nl;
        out += pad;
        appendEscaped(out, key);
        out += colon;
        dumpTo(value, out, indent, depth + 1);
      }
      out += nl;
      out += closePad;
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  dumpTo(*this, out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json parse error at offset " + std::to_string(pos_) +
                     ": " + what);
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skipWhitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  Value parseValue() {
    switch (peek()) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return Value(parseString());
      case 't':
        if (consumeLiteral("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consumeLiteral("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consumeLiteral("null")) return Value();
        fail("invalid literal");
      default:
        return parseNumber();
    }
  }

  Value parseObject() {
    expect('{');
    Value v = Value::object();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parseString();
      expect(':');
      v[key] = parseValue();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parseArray() {
    expect('[');
    Value v = Value::array();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.push(parseValue());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail("invalid \\u escape");
          }
          // The emitter only produces \u00xx control escapes; encode the
          // code point as UTF-8 for completeness.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          fail("invalid escape");
      }
    }
  }

  Value parseNumber() {
    skipWhitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    double value = 0.0;
    const auto result =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (result.ec != std::errc{} || result.ptr != text_.data() + pos_)
      fail("invalid number");
    return Value(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value Value::parse(const std::string& text) {
  return Parser(text).parseDocument();
}

}  // namespace tibsim::json
