#include "tibsim/common/table.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tibsim/common/assert.hpp"

namespace tibsim {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TIB_REQUIRE(!headers_.empty());
}

void TextTable::addRow(std::vector<std::string> cells) {
  TIB_REQUIRE_MSG(cells.size() == headers_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size())
        out << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  emitRow(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emitRow(row);
  return out.str();
}

namespace {
std::string csvEscape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

std::string TextTable::toCsv() const {
  std::ostringstream out;
  auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << csvEscape(row[c]);
      if (c + 1 < row.size()) out << ',';
    }
    out << '\n';
  };
  emitRow(headers_);
  for (const auto& row : rows_) emitRow(row);
  return out.str();
}

std::string fmt(double value, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << value;
  return out.str();
}

std::string fmtSi(double value, const std::string& unit, int precision) {
  static constexpr struct {
    double factor;
    const char* prefix;
  } kScales[] = {{1e12, "T"}, {1e9, "G"}, {1e6, "M"}, {1e3, "k"},
                 {1.0, ""},   {1e-3, "m"}, {1e-6, "u"}, {1e-9, "n"}};
  for (const auto& s : kScales) {
    if (std::abs(value) >= s.factor || s.factor == 1e-9) {
      return fmt(value / s.factor, precision) + " " + s.prefix + unit;
    }
  }
  return fmt(value, precision) + " " + unit;
}

}  // namespace tibsim
